// Edge cases of the distributed runtime façade beyond test_dist.cpp's
// contract, run on both transport backends (emu threads and shm processes):
// single-rank degenerate collectives, empty alltoallv lanes, empty inbox
// drains, window ownership boundaries, collective-scratch reuse, cross-rank
// atomicity of window RMWs, and shared-array result publication.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "dist/pr_dist.hpp"
#include "dist/runtime.hpp"
#include "dist/tc_dist.hpp"
#include "dist_test_common.hpp"
#include "graph/generators.hpp"

namespace pushpull::dist {
namespace {

class RuntimeEdge : public pushpull::dist::testing::BackendTest {};

TEST_P(RuntimeEdge, SingleRankDegeneratePaths) {
  World world(1, backend());
  world.run([](Rank& rank) {
    EXPECT_EQ(rank.id(), 0);
    EXPECT_EQ(rank.nranks(), 1);
    rank.barrier();
    // Allreduce over one rank is the identity and crosses no network.
    EXPECT_EQ(rank.allreduce_sum(3.5), 3.5);
    // Alltoallv with one rank just hands the self-lane back.
    std::vector<std::vector<int>> out(1);
    out[0] = {1, 2, 3};
    EXPECT_EQ(rank.alltoallv(out), (std::vector<int>{1, 2, 3}));
  });
  EXPECT_EQ(world.stats(0).barriers, 1u);
  EXPECT_EQ(world.stats(0).msgs_sent, 0u);
  EXPECT_EQ(world.stats(0).bytes_sent, 0u);
}

TEST_P(RuntimeEdge, EmptyAlltoallvLanesSendNothing) {
  constexpr int kRanks = 3;
  World world(kRanks, backend());
  world.run([](Rank& rank) {
    std::vector<std::vector<double>> out(kRanks);  // all lanes empty
    EXPECT_TRUE(rank.alltoallv(out).empty());
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(world.stats(r).msgs_sent, 0u);
    EXPECT_EQ(world.stats(r).bytes_sent, 0u);
  }
}

TEST_P(RuntimeEdge, AlltoallvDeliversAcrossRanks) {
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  world.run([](Rank& rank) {
    // Rank r sends value 100*r + d to destination d; every rank checks its
    // own deliveries in place (shm ranks are separate processes).
    std::vector<std::vector<int>> out(kRanks);
    for (int d = 0; d < kRanks; ++d) {
      out[static_cast<std::size_t>(d)] = {100 * rank.id() + d};
    }
    auto in = rank.alltoallv(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(kRanks));
    std::sort(in.begin(), in.end());
    for (int s = 0; s < kRanks; ++s) {
      EXPECT_EQ(in[static_cast<std::size_t>(s)], 100 * s + rank.id());
    }
  });
  // Each rank shipped kRanks-1 non-self single-int lanes.
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(world.stats(r).msgs_sent, static_cast<std::uint64_t>(kRanks - 1));
    EXPECT_EQ(world.stats(r).bytes_sent, (kRanks - 1) * sizeof(int));
  }
}

TEST_P(RuntimeEdge, DrainOnEmptyInboxReturnsEmpty) {
  World world(2, backend());
  world.run([](Rank& rank) {
    EXPECT_TRUE(rank.template drain<std::int64_t>().empty());
    // Draining twice is also fine: the inbox stays empty.
    EXPECT_TRUE(rank.template drain<std::int64_t>().empty());
  });
}

TEST_P(RuntimeEdge, AllreduceScratchIsReusableAcrossRounds) {
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  world.run([&](Rank& rank) {
    const double first = rank.allreduce_sum(1.0);
    // Round 1 sums to 4 on every rank; round 2 sums four 4s to 16.
    EXPECT_EQ(rank.allreduce_sum(first), 16.0);
  });
}

TEST_P(RuntimeEdge, SelfSendIsDeliveredToOwnInbox) {
  World world(2, backend());
  world.run([](Rank& rank) {
    const int payload[2] = {rank.id(), rank.id() + 10};
    rank.send(rank.id(), payload, 2);
    const auto in = rank.template drain<int>();
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[0], rank.id());
    EXPECT_EQ(in[1], rank.id() + 10);
  });
}

TEST_P(RuntimeEdge, CrossRankSendArrivesAfterBarrier) {
  World world(2, backend());
  world.run([](Rank& rank) {
    if (rank.id() == 0) {
      const std::int64_t payload[3] = {7, 8, 9};
      rank.send(1, payload, 3);
    }
    rank.barrier();
    if (rank.id() == 1) {
      const auto in = rank.template drain<std::int64_t>();
      ASSERT_EQ(in.size(), 3u);
      EXPECT_EQ(in[0], 7);
      EXPECT_EQ(in[2], 9);
    }
  });
  EXPECT_EQ(world.stats(0).msgs_sent, 1u);
  EXPECT_EQ(world.stats(0).bytes_sent, 3 * sizeof(std::int64_t));
}

TEST_P(RuntimeEdge, SuperstepRecordsCloseAtBarriers) {
  constexpr int kRanks = 3;
  World world(kRanks, backend());
  world.enable_superstep_trace(8);
  EXPECT_TRUE(world.superstep_trace_enabled());
  world.run([](Rank& rank) {
    // Superstep 1: every rank ships one int to its successor.
    const int payload = rank.id();
    rank.send((rank.id() + 1) % kRanks, &payload, 1);
    rank.barrier();
    // Superstep 2: drain the inbox.
    EXPECT_EQ(rank.template drain<int>().size(), 1u);
    rank.barrier();
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto recs = world.superstep_records(r);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(world.superstep_dropped(r), 0u);
    // Interval 1: one message into the successor's lane, nothing drained.
    EXPECT_EQ(recs[0].delta.barriers, 1u);
    EXPECT_EQ(recs[0].delta.msgs_sent, 1u);
    EXPECT_EQ(recs[0].delta.bytes_sent, sizeof(int));
    EXPECT_EQ(recs[0].lane_bytes[(r + 1) % kRanks], sizeof(int));
    EXPECT_EQ(recs[0].lane_bytes[r], 0u);
    EXPECT_EQ(recs[0].delta.drains, 0u);
    // Interval 2: the drain shows up, and the lane bytes were reset.
    EXPECT_EQ(recs[1].delta.drains, 1u);
    EXPECT_EQ(recs[1].delta.bytes_drained, sizeof(int));
    EXPECT_EQ(recs[1].delta.msgs_sent, 0u);
    EXPECT_EQ(recs[1].lane_bytes[(r + 1) % kRanks], 0u);
    // Intervals are well-formed and abut exactly.
    EXPECT_LE(recs[0].t0_ns, recs[0].t1_ns);
    EXPECT_EQ(recs[0].t1_ns, recs[1].t0_ns);
    EXPECT_LE(recs[1].t0_ns, recs[1].t1_ns);
  }
}

TEST_P(RuntimeEdge, SuperstepLogDropsPastCapacity) {
  World world(2, backend());
  world.enable_superstep_trace(2);
  world.run([](Rank& rank) {
    for (int i = 0; i < 5; ++i) rank.barrier();
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(world.superstep_records(r).size(), 2u);
    EXPECT_EQ(world.superstep_dropped(r), 3u);
  }
}

TEST_P(RuntimeEdge, SuperstepTraceOffByDefault) {
  World world(2, backend());
  EXPECT_FALSE(world.superstep_trace_enabled());
  world.run([](Rank& rank) { rank.barrier(); });
  EXPECT_TRUE(world.superstep_records(0).empty());
  EXPECT_EQ(world.superstep_dropped(0), 0u);
}

TEST_P(RuntimeEdge, SharedArrayIsVisibleToParentAndAllRanks) {
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  const auto slots = world.shared_array<int>(kRanks);
  world.run([&](Rank& rank) {
    slots[static_cast<std::size_t>(rank.id())] = 10 + rank.id();
    rank.barrier();
    // Every rank sees every other rank's write after the barrier.
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_EQ(slots[static_cast<std::size_t>(r)], 10 + r);
    }
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(slots[static_cast<std::size_t>(r)], 10 + r);
  }
}

TEST_P(RuntimeEdge, RankWallTimeIsRecorded) {
  World world(2, backend());
  EXPECT_EQ(world.max_rank_wall_us(), 0.0);
  world.run([](Rank& rank) { rank.barrier(); });
  EXPECT_GT(world.max_rank_wall_us(), 0.0);
}

TEST(ShmRuntime, InRankAssertionFailurePropagatesToParent) {
  // The probe installed by dist_test_common turns a failed in-rank EXPECT
  // into kRankSoftFailExit, which ShmTransport::run converts to an exception
  // after all ranks finish — without it, process-backed rank failures would
  // pass silently. (The emu backend needs no machinery: its ranks are
  // threads of the test process.)
  PUSHPULL_SKIP_IF_BACKEND_UNAVAILABLE(BackendKind::Shm);
  pushpull::dist::testing::install_rank_status_probe();
  World world(2, BackendKind::Shm);
  EXPECT_THROW(world.run([](Rank& rank) {
    // The failure is recorded in the forked child only; its printed
    // assertion message below is expected output.
    EXPECT_NE(rank.nranks(), 2) << "deliberate in-rank failure (expected)";
  }),
               std::runtime_error);
}

class WindowEdge : public pushpull::dist::testing::BackendTest {};

TEST_P(WindowEdge, SingleRankOwnsEverythingAllOpsLocal) {
  World world(1, backend());
  Window<std::int64_t> win(world, 8);
  world.run([&](Rank& rank) {
    win.put(rank, 0, std::int64_t{5});
    win.accumulate(rank, 0, std::int64_t{2});
    EXPECT_EQ(win.faa(rank, 0, std::int64_t{1}), 7);
    EXPECT_EQ(win.get(rank, 0), 8);
  });
  const RankStats& s = world.stats(0);
  EXPECT_EQ(s.rma_puts + s.rma_gets + s.rma_accs + s.rma_faas, 0u);
  EXPECT_EQ(s.local_puts, 1u);
  EXPECT_EQ(s.local_accs, 1u);
  EXPECT_EQ(s.local_faas, 1u);
  EXPECT_EQ(s.local_gets, 1u);
}

TEST_P(WindowEdge, OwnershipBoundariesMatchBlockPartition) {
  // 10 elements over 3 ranks: chunk = ceil(10/3) = 4 → [0,4) [4,8) [8,10).
  World world(3, backend());
  Window<double> win(world, 10);
  EXPECT_EQ(win.owner(0), 0);
  EXPECT_EQ(win.owner(3), 0);
  EXPECT_EQ(win.owner(4), 1);
  EXPECT_EQ(win.owner(7), 1);
  EXPECT_EQ(win.owner(8), 2);
  EXPECT_EQ(win.owner(9), 2);
}

TEST_P(WindowEdge, IntegerFaaIsAtomicAcrossRanks) {
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  Window<std::int64_t> win(world, 4);
  world.run([&](Rank& rank) {
    for (int i = 0; i < 1000; ++i) win.faa(rank, 0, std::int64_t{1});
  });
  // Contended hardware-fast-path increments from 4 threads *or* 4 processes
  // must all land.
  EXPECT_EQ(win.raw()[0], 4000);
  std::uint64_t remote = 0;
  for (int r = 0; r < kRanks; ++r) remote += world.stats(r).rma_faas;
  EXPECT_EQ(remote, 3000u);
}

TEST_P(WindowEdge, FloatAccumulateLockProtocolIsExact) {
  // The §4.1 op class: float accumulates run a CAS loop (emu) or a real
  // process-shared striped lock (shm); either way no increment may be lost.
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  Window<double> win(world, 2);
  world.run([&](Rank& rank) {
    for (int i = 0; i < 500; ++i) win.accumulate(rank, 0, 1.0);
  });
  EXPECT_EQ(win.raw()[0], 2000.0);
}

TEST_P(WindowEdge, AccumulateMinClaimsResolveToMinimum) {
  constexpr int kRanks = 4;
  World world(kRanks, backend());
  Window<std::int64_t> claims(world, 1);
  std::fill(claims.raw().begin(), claims.raw().end(),
            std::numeric_limits<std::int64_t>::max());
  world.run([&](Rank& rank) {
    claims.accumulate_min(rank, 0, std::int64_t{100 + rank.id()});
  });
  EXPECT_EQ(claims.raw()[0], 100);
}

class DistEdge : public pushpull::dist::testing::BackendTest {};

TEST_P(DistEdge, MoreRanksThanNonEmptyPartsStillCorrect) {
  // 12 vertices over 7 ranks leaves trailing ranks with empty slices; both
  // kernels must run those ranks through every collective without deadlock.
  Csr g = make_undirected(12, cycle_edges(12));
  const auto pr = pagerank_dist(g, 7, 3, 0.85, DistVariant::MsgPassing,
                                CommCosts{}, backend());
  double sum = 0.0;
  for (double p : pr.pr) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  DistTcOptions opt;
  opt.variant = DistVariant::MsgPassing;
  opt.backend = backend();
  opt.mp_buffer_entries = 1;  // flush on every entry
  const auto tc = triangle_count_dist(g, 7, opt);
  for (std::int64_t c : tc.tc) EXPECT_EQ(c, 0);  // a 12-cycle has no triangles
}

TEST_P(DistEdge, ZeroIterationPagerankReturnsUniformVector) {
  Csr g = make_undirected(8, cycle_edges(8));
  const auto res = pagerank_dist(g, 2, 0, 0.85, DistVariant::PushRma,
                                 CommCosts{}, backend());
  for (double p : res.pr) EXPECT_EQ(p, 1.0 / 8);
  EXPECT_EQ(res.total.rma_accs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RuntimeEdge,
                         pushpull::dist::testing::AllBackends(),
                         pushpull::dist::testing::BackendParamName);
INSTANTIATE_TEST_SUITE_P(Backends, WindowEdge,
                         pushpull::dist::testing::AllBackends(),
                         pushpull::dist::testing::BackendParamName);
INSTANTIATE_TEST_SUITE_P(Backends, DistEdge,
                         pushpull::dist::testing::AllBackends(),
                         pushpull::dist::testing::BackendParamName);

}  // namespace
}  // namespace pushpull::dist
