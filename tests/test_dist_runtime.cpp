// Edge cases of the emulated distributed runtime beyond test_dist.cpp's
// contract: single-rank degenerate collectives, empty alltoallv lanes, empty
// inbox drains, window ownership boundaries, and collective-scratch reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/pr_dist.hpp"
#include "dist/runtime.hpp"
#include "dist/tc_dist.hpp"
#include "graph/generators.hpp"

namespace pushpull::dist {
namespace {

TEST(RuntimeEdge, SingleRankDegeneratePaths) {
  World world(1);
  world.run([](Rank& rank) {
    EXPECT_EQ(rank.id(), 0);
    EXPECT_EQ(rank.nranks(), 1);
    rank.barrier();
    // Allreduce over one rank is the identity and crosses no network.
    EXPECT_EQ(rank.allreduce_sum(3.5), 3.5);
    // Alltoallv with one rank just hands the self-lane back.
    std::vector<std::vector<int>> out(1);
    out[0] = {1, 2, 3};
    EXPECT_EQ(rank.alltoallv(out), (std::vector<int>{1, 2, 3}));
  });
  EXPECT_EQ(world.stats(0).barriers, 1u);
  EXPECT_EQ(world.stats(0).msgs_sent, 0u);
  EXPECT_EQ(world.stats(0).bytes_sent, 0u);
}

TEST(RuntimeEdge, EmptyAlltoallvLanesSendNothing) {
  constexpr int kRanks = 3;
  World world(kRanks);
  world.run([](Rank& rank) {
    std::vector<std::vector<double>> out(kRanks);  // all lanes empty
    EXPECT_TRUE(rank.alltoallv(out).empty());
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(world.stats(r).msgs_sent, 0u);
    EXPECT_EQ(world.stats(r).bytes_sent, 0u);
  }
}

TEST(RuntimeEdge, DrainOnEmptyInboxReturnsEmpty) {
  World world(2);
  world.run([](Rank& rank) {
    EXPECT_TRUE(rank.template drain<std::int64_t>().empty());
    // Draining twice is also fine: the inbox stays empty.
    EXPECT_TRUE(rank.template drain<std::int64_t>().empty());
  });
}

TEST(RuntimeEdge, AllreduceScratchIsReusableAcrossRounds) {
  constexpr int kRanks = 4;
  World world(kRanks);
  std::vector<double> second(kRanks);
  world.run([&](Rank& rank) {
    const double first = rank.allreduce_sum(1.0);
    second[static_cast<std::size_t>(rank.id())] = rank.allreduce_sum(first);
  });
  // Round 1 sums to 4 on every rank; round 2 sums four 4s to 16.
  for (double s : second) EXPECT_EQ(s, 16.0);
}

TEST(RuntimeEdge, SelfSendIsDeliveredToOwnInbox) {
  World world(2);
  world.run([](Rank& rank) {
    const int payload[2] = {rank.id(), rank.id() + 10};
    rank.send(rank.id(), payload, 2);
    const auto in = rank.template drain<int>();
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[0], rank.id());
    EXPECT_EQ(in[1], rank.id() + 10);
  });
}

TEST(WindowEdge, SingleRankOwnsEverythingAllOpsLocal) {
  World world(1);
  Window<std::int64_t> win(8, 1);
  world.run([&](Rank& rank) {
    win.put(rank, 0, std::int64_t{5});
    win.accumulate(rank, 0, std::int64_t{2});
    EXPECT_EQ(win.faa(rank, 0, std::int64_t{1}), 7);
    EXPECT_EQ(win.get(rank, 0), 8);
  });
  const RankStats& s = world.stats(0);
  EXPECT_EQ(s.rma_puts + s.rma_gets + s.rma_accs + s.rma_faas, 0u);
  EXPECT_EQ(s.local_puts, 1u);
  EXPECT_EQ(s.local_accs, 1u);
  EXPECT_EQ(s.local_faas, 1u);
  EXPECT_EQ(s.local_gets, 1u);
}

TEST(WindowEdge, OwnershipBoundariesMatchBlockPartition) {
  // 10 elements over 3 ranks: chunk = ceil(10/3) = 4 → [0,4) [4,8) [8,10).
  Window<double> win(10, 3);
  EXPECT_EQ(win.owner(0), 0);
  EXPECT_EQ(win.owner(3), 0);
  EXPECT_EQ(win.owner(4), 1);
  EXPECT_EQ(win.owner(7), 1);
  EXPECT_EQ(win.owner(8), 2);
  EXPECT_EQ(win.owner(9), 2);
}

TEST(DistEdge, MoreRanksThanNonEmptyPartsStillCorrect) {
  // 12 vertices over 7 ranks leaves trailing ranks with empty slices; both
  // kernels must run those ranks through every collective without deadlock.
  Csr g = make_undirected(12, cycle_edges(12));
  const auto pr = pagerank_dist(g, 7, 3, 0.85, DistVariant::MsgPassing);
  double sum = 0.0;
  for (double p : pr.pr) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  DistTcOptions opt;
  opt.variant = DistVariant::MsgPassing;
  opt.mp_buffer_entries = 1;  // flush on every entry
  const auto tc = triangle_count_dist(g, 7, opt);
  for (std::int64_t c : tc.tc) EXPECT_EQ(c, 0);  // a 12-cycle has no triangles
}

TEST(DistEdge, ZeroIterationPagerankReturnsUniformVector) {
  Csr g = make_undirected(8, cycle_edges(8));
  const auto res = pagerank_dist(g, 2, 0, 0.85, DistVariant::PushRma);
  for (double p : res.pr) EXPECT_EQ(p, 1.0 / 8);
  EXPECT_EQ(res.total.rma_accs, 0u);
}

}  // namespace
}  // namespace pushpull::dist
