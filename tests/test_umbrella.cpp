// Compile-and-link test for the umbrella header: src/pushpull.hpp advertises
// the complete public API (including the dist/ headers that once did not
// exist), so this TU guards against the umbrella silently rotting when a
// module is added, moved, or removed.
#include "pushpull.hpp"

#include <gtest/gtest.h>

namespace pushpull {
namespace {

TEST(Umbrella, PublicApiCompilesAndLinks) {
  // One symbol per layer, so a dropped library source shows up as a link
  // error here even if no dedicated test includes it.
  Csr g = make_undirected(16, cycle_edges(16));
  EXPECT_EQ(g.n(), 16);
  EXPECT_EQ(g.num_arcs(), 32);

  PageRankOptions opt;
  opt.iterations = 2;
  const auto pr = pagerank_seq(g, opt);
  EXPECT_EQ(pr.size(), 16u);

  const auto tc = triangle_count_fast(g);
  EXPECT_EQ(total_triangles(tc), 0);
}

TEST(Umbrella, DistributedLayerIsReachable) {
  dist::World world(2);
  world.run([](dist::Rank& rank) { rank.barrier(); });
  EXPECT_EQ(world.stats(0).barriers, 1u);
  EXPECT_EQ(world.stats(1).barriers, 1u);

  Csr g = make_undirected(32, cycle_edges(32));
  const auto res = dist::pagerank_dist(g, 2, 1, 0.85, dist::DistVariant::MsgPassing);
  EXPECT_EQ(res.pr.size(), 32u);

  dist::DistTcOptions tc_opt;
  tc_opt.variant = dist::DistVariant::PullRma;
  const auto tc = dist::triangle_count_dist(g, 2, tc_opt);
  EXPECT_EQ(tc.tc.size(), 32u);
}

TEST(Umbrella, DistributedFrontierSubsystemIsReachable) {
  Csr g = make_undirected(32, cycle_edges(32));

  const auto bfs = dist::bfs_dist(g, 0, 2);
  EXPECT_EQ(bfs.dist.size(), 32u);
  EXPECT_EQ(bfs.dist[16], 16);

  Csr wg = make_undirected_weighted(32, cycle_edges(32), 1.0f, 2.0f, 7);
  dist::SsspDistOptions sopt;
  sopt.variant = dist::DistVariant::PullRma;
  const auto sssp = dist::sssp_dist(wg, 0, 2, sopt);
  EXPECT_EQ(sssp.dist.size(), 32u);
  EXPECT_EQ(sssp.dist[0], 0.0f);

  dist::BcDistOptions bopt;
  bopt.variant = dist::DistVariant::PushRma;
  bopt.sources = {0, 5};
  const auto bc = dist::betweenness_centrality_dist(g, 2, bopt);
  EXPECT_EQ(bc.bc.size(), 32u);

  dist::World world(2);
  const Partition1D part(32, 2);
  dist::DistFrontier frontier(world, g, part);
  EXPECT_EQ(to_string(dist::FrontierMode::Sparse), std::string("sparse"));
  EXPECT_TRUE(world.backend() == dist::BackendKind::Emu);
  (void)frontier;
}

}  // namespace
}  // namespace pushpull
