#include <gtest/gtest.h>
#include <omp.h>

#include "core/baselines/baselines.hpp"
#include "core/coloring.hpp"
#include "gas/programs.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

using ColorParam = std::tuple<int, int>;

class ColoringProper : public ::testing::TestWithParam<ColorParam> {};

TEST_P(ColoringProper, AllSchemesProduceProperColorings) {
  const auto& zoo = testing::unweighted_zoo();
  const auto& [gi, threads] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(threads);

  ColoringOptions opt;
  opt.max_iterations = 200;

  const ColoringResult push = boman_color_push(g, opt);
  const ColoringResult pull = boman_color_pull(g, opt);
  const ColoringResult fe_push = fe_color(g, Direction::Push, opt);
  const ColoringResult fe_pull = fe_color(g, Direction::Pull, opt);
  const ColoringResult gs = gs_color(g, opt);
  const ColoringResult grs = grs_color(g, opt);
  const ColoringResult cr = cr_color(g, opt);

  EXPECT_TRUE(baseline::is_proper_coloring(g, push.color)) << name << "/push";
  EXPECT_TRUE(baseline::is_proper_coloring(g, pull.color)) << name << "/pull";
  EXPECT_TRUE(baseline::is_proper_coloring(g, fe_push.color)) << name << "/fe_push";
  EXPECT_TRUE(baseline::is_proper_coloring(g, fe_pull.color)) << name << "/fe_pull";
  EXPECT_TRUE(baseline::is_proper_coloring(g, gs.color)) << name << "/gs";
  EXPECT_TRUE(baseline::is_proper_coloring(g, grs.color)) << name << "/grs";
  EXPECT_TRUE(baseline::is_proper_coloring(g, cr.color)) << name << "/cr";
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, ColoringProper,
    ::testing::Combine(::testing::Range(0, 14), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<ColorParam>& info) {
      return pushpull::testing::unweighted_zoo()[std::get<0>(info.param)].name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Coloring, GreedyBaselineIsProperAndBounded) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const auto color = baseline::greedy_coloring(g);
    EXPECT_TRUE(baseline::is_proper_coloring(g, color)) << name;
    for (int c : color) EXPECT_LE(c, g.max_degree()) << name;
  }
}

TEST(Coloring, BipartiteUsesTwoColorsGreedy) {
  Csr g = make_undirected(22, complete_bipartite_edges(10, 12));
  const auto color = baseline::greedy_coloring(g);
  int max_c = 0;
  for (int c : color) max_c = std::max(max_c, c);
  EXPECT_EQ(max_c, 1);
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  Csr g = make_undirected(16, complete_edges(16));
  omp_set_num_threads(2);
  ColoringOptions opt;
  opt.max_iterations = 400;
  for (const auto& r : {boman_color_push(g, opt), boman_color_pull(g, opt),
                        grs_color(g, opt), cr_color(g, opt)}) {
    EXPECT_EQ(r.colors_used, 16);
  }
}

TEST(Coloring, ColorsBoundedByDegreePlusIterations) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    omp_set_num_threads(4);
    ColoringOptions opt;
    opt.max_iterations = 100;
    const auto r = boman_color_push(g, opt);
    EXPECT_LE(r.colors_used, g.max_degree() + opt.max_iterations + 2) << name;
  }
}

TEST(Coloring, ConvergedRunsReportZeroFinalConflicts) {
  Csr g = make_undirected(200, erdos_renyi_edges(200, 800, 13));
  omp_set_num_threads(4);
  ColoringOptions opt;
  opt.max_iterations = 500;
  const auto r = boman_color_pull(g, opt);
  ASSERT_FALSE(r.iter_conflicts.empty());
  EXPECT_EQ(r.iter_conflicts.back(), 0);
  EXPECT_EQ(r.iter_times.size(), static_cast<std::size_t>(r.iterations));
}

TEST(Coloring, FixedLRunsAllIterations) {
  // stop_on_converged = false reproduces the paper's fixed-L runs (Figure 6b
  // shows 49 iterations for plain pushing on every graph).
  Csr g = make_undirected(144, grid2d_edges(12, 12, 1.0, 7));
  ColoringOptions opt;
  opt.max_iterations = 49;
  opt.stop_on_converged = false;
  const auto r = boman_color_push(g, opt);
  EXPECT_EQ(r.iterations, 49);
}

TEST(Coloring, SinglePartitionIsSequentialGreedy) {
  // One partition = no border vertices = phase 1 colors everything once.
  Csr g = make_undirected(300, barabasi_albert_edges(300, 3, 19));
  ColoringOptions opt;
  opt.num_partitions = 1;
  const auto r = boman_color_push(g, opt);
  EXPECT_TRUE(baseline::is_proper_coloring(g, r.color));
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(r.iter_conflicts[0], 0);
}

TEST(Coloring, CrIsSingleIterationAndConflictFree) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    omp_set_num_threads(4);
    const auto r = cr_color(g);
    EXPECT_EQ(r.iterations, 1) << name;
    EXPECT_EQ(r.iter_conflicts[0], 0) << name;
  }
}

TEST(Coloring, GrsFinishesFasterThanFeOnDenseGraphs) {
  // The motivation for Greedy-Switch (§5, Figure 6b): FE needs many waves on
  // dense skewed graphs; GrS cuts the tail off.
  Csr g = make_undirected(512, rmat_edges(9, 16, 71));
  omp_set_num_threads(4);
  ColoringOptions opt;
  opt.max_iterations = 4 * 512;
  const auto fe = fe_color(g, Direction::Push, opt);
  const auto grs = grs_color(g, opt);
  EXPECT_LE(grs.iterations, fe.iterations);
  EXPECT_TRUE(baseline::is_proper_coloring(g, grs.color));
}

TEST(Coloring, GasColoringProperBothDirections) {
  for (int gi : {0, 1, 5, 6}) {  // low-degree graphs (≤ 64 colors)
    const auto& [name, g] = testing::unweighted_zoo()[static_cast<std::size_t>(gi)];
    EXPECT_TRUE(baseline::is_proper_coloring(g, gas::gas_coloring(g, Direction::Push)))
        << name;
    EXPECT_TRUE(baseline::is_proper_coloring(g, gas::gas_coloring(g, Direction::Pull)))
        << name;
  }
}

TEST(Coloring, EmptyAndTinyGraphs) {
  Csr empty = make_undirected(4, EdgeList{});
  const auto r = boman_color_push(empty);
  EXPECT_TRUE(baseline::is_proper_coloring(empty, r.color));
  EXPECT_EQ(r.colors_used, 1);

  Csr single = make_undirected(1, EdgeList{});
  EXPECT_EQ(boman_color_pull(single).colors_used, 1);
}

}  // namespace
}  // namespace pushpull
