// DeltaGraph: the versioned mutable store behind SnapshotView. Covers the
// writer API edge cases (duplicates, absent deletes, self-loops), epoch
// history, snapshot equivalence against statically built CSRs across the
// zoos, kernel bit-identity on SnapshotView vs the static views, compaction
// under live snapshots, and a concurrent writer/reader pass that the TSan CI
// job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/incremental.hpp"
#include "digraph_zoo.hpp"
#include "engine/graph_view.hpp"
#include "graph/builder.hpp"
#include "graph/delta_graph.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

static_assert(engine::GraphView<SnapshotView>);
static_assert(CsrLike<SnapshotCsr>);

// A small symmetric base: path 0-1-2-3-4 plus chord 1-3.
Csr small_base() {
  return make_undirected(
      5, EdgeList{{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 3, 1.0f}, {3, 4, 1.0f},
                  {1, 3, 1.0f}});
}

std::vector<vid_t> sorted_neighbors(const SnapshotCsr& g, vid_t v) {
  auto nb = g.neighbors(v);
  return std::vector<vid_t>(nb.begin(), nb.end());
}

TEST(DeltaGraph, DuplicateInsertsAndAbsentDeletesAreRejected) {
  DeltaGraph dg(small_base());
  EXPECT_FALSE(dg.add_edge(0, 1));  // already in the base
  EXPECT_FALSE(dg.add_edge(1, 0));  // symmetric alias of a base edge
  EXPECT_TRUE(dg.add_edge(0, 2));
  EXPECT_FALSE(dg.add_edge(2, 0));  // already staged
  EXPECT_FALSE(dg.remove_edge(0, 4));  // never existed
  EXPECT_TRUE(dg.remove_edge(4, 3));   // base edge, either orientation
  EXPECT_FALSE(dg.remove_edge(3, 4));  // already gone from staged state
  EXPECT_EQ(dg.pending_updates(), 2u);

  // Staged ops are invisible until commit.
  EXPECT_EQ(dg.snapshot().out().degree(0), 1);
  const epoch_t e = dg.commit();
  EXPECT_EQ(dg.pending_updates(), 0u);
  const SnapshotView snap = dg.snapshot(e);
  EXPECT_EQ(sorted_neighbors(snap.out(), 0), (std::vector<vid_t>{1, 2}));
  EXPECT_EQ(sorted_neighbors(snap.out(), 4), std::vector<vid_t>{});
}

TEST(DeltaGraph, SelfLoopsRoundTrip) {
  DeltaGraph dg(small_base());
  EXPECT_TRUE(dg.add_edge(2, 2));
  EXPECT_FALSE(dg.add_edge(2, 2));
  dg.commit();
  EXPECT_EQ(sorted_neighbors(dg.snapshot().out(), 2),
            (std::vector<vid_t>{1, 2, 3}));
  EXPECT_TRUE(dg.remove_edge(2, 2));
  dg.commit();
  EXPECT_EQ(sorted_neighbors(dg.snapshot().out(), 2),
            (std::vector<vid_t>{1, 3}));
}

TEST(DeltaGraph, ReinsertAfterDeleteWithinOneBatch) {
  DeltaGraph dg(small_base());
  EXPECT_TRUE(dg.remove_edge(1, 2));
  EXPECT_TRUE(dg.add_edge(1, 2));
  dg.commit();
  EXPECT_TRUE(dg.snapshot().out().has_edge(1, 2));
}

TEST(DeltaGraph, EpochHistoryAndBatchesSince) {
  DeltaGraph dg(small_base());
  const epoch_t e0 = dg.epoch();
  EXPECT_EQ(dg.commit(), e0);  // empty commit is a no-op

  dg.add_edge(0, 3);
  const epoch_t e1 = dg.commit();
  EXPECT_EQ(e1, e0 + 1);
  dg.remove_edge(0, 1);
  dg.add_edge(2, 4);
  const epoch_t e2 = dg.commit();
  EXPECT_EQ(e2, e1 + 1);

  const auto batches = dg.batches_since(e0);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].epoch, e1);
  ASSERT_EQ(batches[0].updates.size(), 1u);
  EXPECT_TRUE(batches[0].updates[0].insert);
  EXPECT_EQ(batches[1].epoch, e2);
  EXPECT_EQ(batches[1].updates.size(), 2u);
  EXPECT_TRUE(dg.batches_since(e2).empty());

  // Per-epoch snapshots observe exactly their batch prefix.
  EXPECT_FALSE(dg.snapshot(e0).out().has_edge(0, 3));
  EXPECT_TRUE(dg.snapshot(e1).out().has_edge(0, 3));
  EXPECT_TRUE(dg.snapshot(e1).out().has_edge(0, 1));
  EXPECT_FALSE(dg.snapshot(e2).out().has_edge(0, 1));
}

TEST(DeltaGraph, CompactKeepsLiveSnapshotsValid) {
  DeltaGraph dg(small_base());
  dg.add_edge(0, 4);
  const epoch_t e1 = dg.commit();
  const SnapshotView before = dg.snapshot(e1);

  dg.remove_edge(0, 4);
  const epoch_t e2 = dg.commit();
  const SnapshotView at_e2 = dg.snapshot(e2);
  dg.compact();

  // The pre-compaction snapshots still read their epochs' adjacency.
  EXPECT_TRUE(before.out().has_edge(0, 4));
  EXPECT_FALSE(at_e2.out().has_edge(0, 4));
  // The compacted store answers identically to the last committed epoch and
  // has folded the whole overlay away.
  EXPECT_EQ(dg.oldest_epoch(), e2);
  EXPECT_EQ(dg.overlay_entries(), 0u);
  const SnapshotView after = dg.snapshot();
  EXPECT_EQ(after.epoch(), e2);
  for (vid_t v = 0; v < dg.n(); ++v) {
    EXPECT_EQ(sorted_neighbors(after.out(), v),
              sorted_neighbors(at_e2.out(), v));
  }
  // Staged-but-uncommitted work survives compaction.
  dg.add_edge(0, 2);
  dg.compact();
  EXPECT_EQ(dg.pending_updates(), 1u);
  dg.commit();
  EXPECT_TRUE(dg.snapshot().out().has_edge(0, 2));
}

// Applies a reproducible random batch to both a DeltaGraph and a std::set
// model of the edge set; returns false if they ever disagree on accept.
template <class ApplyStatic>
void random_churn_equivalence(const Csr& base, bool symmetric,
                              std::uint64_t seed, ApplyStatic rebuild) {
  const vid_t n = base.n();
  std::set<std::pair<vid_t, vid_t>> model;  // canonical arcs
  const auto canon = [&](vid_t u, vid_t v) {
    if (symmetric && u > v) std::swap(u, v);
    return std::make_pair(u, v);
  };
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : base.neighbors(v)) model.insert(canon(v, u));
  }

  DeltaGraph dg{Csr(base)};
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) {
      const vid_t u = static_cast<vid_t>(rng() % n);
      const vid_t v = static_cast<vid_t>(rng() % n);
      if ((rng() & 1u) != 0) {
        EXPECT_EQ(dg.add_edge(u, v), model.insert(canon(u, v)).second);
      } else {
        EXPECT_EQ(dg.remove_edge(u, v), model.erase(canon(u, v)) > 0);
      }
    }
    dg.commit();
    if (round == 1) dg.compact();  // interleave compaction mid-churn

    // The snapshot must agree arc-for-arc with a statically rebuilt CSR.
    const SnapshotView snap = dg.snapshot();
    const Csr fresh = rebuild(n, model);
    ASSERT_EQ(snap.num_arcs(), fresh.num_arcs());
    for (vid_t v = 0; v < n; ++v) {
      ASSERT_EQ(sorted_neighbors(snap.out(), v),
                std::vector<vid_t>(fresh.neighbors(v).begin(),
                                   fresh.neighbors(v).end()))
          << "vertex " << v << " round " << round;
    }
  }
}

TEST(DeltaGraph, SnapshotMatchesStaticRebuildAcrossZoo) {
  std::uint64_t seed = 7;
  for (const auto& entry : pushpull::testing::unweighted_zoo()) {
    random_churn_equivalence(
        entry.graph, /*symmetric=*/true, seed++,
        [](vid_t n, const std::set<std::pair<vid_t, vid_t>>& model) {
          EdgeList edges;
          for (const auto& [u, v] : model) edges.push_back(Edge{u, v, 1.0f});
          // The churn legitimately adds self-loops; the rebuild must keep
          // them (make_undirected's builder default would drop them).
          BuildOptions opts;
          opts.remove_self_loops = false;
          return build_csr(n, std::move(edges), opts);
        });
  }
}

TEST(DeltaGraph, DigraphSnapshotKeepsTransposeConsistent) {
  std::uint64_t seed = 1234;
  for (const auto& entry : pushpull::testing::digraph_zoo()) {
    const Digraph& base = entry.graph;
    const vid_t n = base.out.n();
    std::set<std::pair<vid_t, vid_t>> model;
    for (vid_t v = 0; v < n; ++v) {
      for (vid_t u : base.out.neighbors(v)) model.emplace(v, u);
    }
    DeltaGraph dg(Digraph{Csr(base.out), Csr(base.in)});
    std::mt19937_64 rng(seed++);
    for (int i = 0; i < 60; ++i) {
      const vid_t u = static_cast<vid_t>(rng() % n);
      const vid_t v = static_cast<vid_t>(rng() % n);
      if ((rng() & 1u) != 0) {
        EXPECT_EQ(dg.add_edge(u, v), model.emplace(u, v).second);
      } else {
        EXPECT_EQ(dg.remove_edge(u, v), model.erase({u, v}) > 0);
      }
    }
    dg.commit();
    const SnapshotView snap = dg.snapshot();
    EXPECT_FALSE(snap.is_symmetric());
    // in() must be exactly the transpose of out().
    std::set<std::pair<vid_t, vid_t>> fwd, bwd;
    for (vid_t v = 0; v < n; ++v) {
      for (vid_t u : snap.out().neighbors(v)) fwd.emplace(v, u);
      for (vid_t u : snap.in().neighbors(v)) bwd.emplace(u, v);
    }
    EXPECT_EQ(fwd, model) << entry.name;
    EXPECT_EQ(bwd, model) << entry.name;
    // reversed() swaps the roles.
    EXPECT_EQ(&snap.reversed().out(), &snap.in());
  }
}

// Kernels must not be able to tell a SnapshotView from a statically built
// view of the same graph: identical traversal order → bit-identical results.
TEST(DeltaGraph, KernelsBitIdenticalToStaticViews) {
  for (const auto& entry : pushpull::testing::unweighted_zoo()) {
    const vid_t n = entry.graph.n();
    DeltaGraph dg{Csr(entry.graph)};
    std::mt19937_64 rng(n);
    for (int i = 0; i < 30; ++i) {
      const vid_t u = static_cast<vid_t>(rng() % n);
      const vid_t v = static_cast<vid_t>(rng() % n);
      if ((rng() & 1u) != 0) {
        dg.add_edge(u, v);
      } else {
        dg.remove_edge(u, v);
      }
    }
    dg.commit();
    const SnapshotView snap = dg.snapshot();
    const Csr static_g = snap.out().materialize();
    const engine::SymmetricView flat(static_g);

    EXPECT_EQ(bfs_levels(snap, 0), bfs_levels(flat, 0)) << entry.name;
    EXPECT_EQ(cc_labels(snap), cc_labels(flat)) << entry.name;
    const PrFixpoint a = pagerank_converged(snap);
    const PrFixpoint b = pagerank_converged(flat);
    EXPECT_EQ(a.iterations, b.iterations) << entry.name;
    EXPECT_EQ(a.ranks, b.ranks) << entry.name;  // bit-identical, not approx
  }
}

// Writer staging/committing/compacting while another thread snapshots and
// traverses — the TSan job runs this binary to certify the claimed thread
// model (immutable snapshots, mutex-guarded writer state).
TEST(DeltaGraph, ConcurrentWriterAndSnapshotReaders) {
  DeltaGraph dg(make_undirected(256, rmat_edges(8, 4, 99)));
  const vid_t n = dg.n();
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::mt19937_64 rng(5);
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 16; ++i) {
        const vid_t u = static_cast<vid_t>(rng() % n);
        const vid_t v = static_cast<vid_t>(rng() % n);
        if ((rng() & 3u) != 0) {
          dg.add_edge(u, v);
        } else {
          dg.remove_edge(u, v);
        }
      }
      dg.commit();
      if (round % 8 == 7) dg.compact();
    }
    stop.store(true, std::memory_order_release);
  });

  // do/while: at least one traversal runs even when the writer wins the
  // scheduling race and finishes before the first stop check.
  do {
    const SnapshotView snap = dg.snapshot();
    // A snapshot is frozen: within it, arc counts and adjacency agree no
    // matter how far the writer has advanced in the meantime.
    eid_t arcs = 0;
    for (vid_t v = 0; v < n; ++v) {
      arcs += snap.out().degree(v);
      for (vid_t u : snap.out().neighbors(v)) {
        ASSERT_TRUE(u >= 0 && u < n);
      }
    }
    ASSERT_EQ(arcs, snap.num_arcs());
  } while (!stop.load(std::memory_order_acquire));
  writer.join();
}

}  // namespace
}  // namespace pushpull
