#include <gtest/gtest.h>
#include <omp.h>

#include "core/baselines/baselines.hpp"
#include "core/baselines/legacy_kernels.hpp"
#include "core/triangle_count.hpp"
#include "graph_zoo.hpp"
#include "perf/instr.hpp"

namespace pushpull {
namespace {

using TcParam = std::tuple<int, int>;

class TcEquivalence : public ::testing::TestWithParam<TcParam> {};

TEST_P(TcEquivalence, PushPullFastMatchBruteForce) {
  const auto& zoo = testing::unweighted_zoo();
  const auto& [gi, threads] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(threads);

  const auto ref = baseline::brute_force_triangles(g);
  const auto pull = triangle_count_pull(g);
  const auto push = triangle_count_push(g);
  const auto fast = triangle_count_fast(g);
  ASSERT_EQ(pull.size(), ref.size());
  for (vid_t v = 0; v < g.n(); ++v) {
    EXPECT_EQ(pull[static_cast<std::size_t>(v)], ref[static_cast<std::size_t>(v)])
        << name << "/pull v" << v;
    EXPECT_EQ(push[static_cast<std::size_t>(v)], ref[static_cast<std::size_t>(v)])
        << name << "/push v" << v;
    EXPECT_EQ(fast[static_cast<std::size_t>(v)], ref[static_cast<std::size_t>(v)])
        << name << "/fast v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, TcEquivalence,
    ::testing::Combine(::testing::Range(0, 14), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<TcParam>& info) {
      return pushpull::testing::unweighted_zoo()[std::get<0>(info.param)].name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(TriangleCount, EngineMatchesFrozenLegacyOracle) {
  // The vertex_map rebase (plain pull / synchronized push) against the
  // frozen hand-rolled loops: integer counts, bit-identical at any thread
  // count.
  omp_set_num_threads(4);
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    EXPECT_EQ(triangle_count_pull(g), legacy::triangle_count_pull(g)) << name;
    EXPECT_EQ(triangle_count_push(g), legacy::triangle_count_push(g)) << name;
  }
}

TEST(TriangleCount, CompleteGraphClosedForm) {
  // Every vertex of K_n is in C(n-1, 2) triangles.
  const vid_t n = 16;
  Csr g = make_undirected(n, complete_edges(n));
  const auto tc = triangle_count_pull(g);
  for (vid_t v = 0; v < n; ++v) {
    EXPECT_EQ(tc[static_cast<std::size_t>(v)], (n - 1) * (n - 2) / 2);
  }
  EXPECT_EQ(total_triangles(tc), n * (n - 1) * (n - 2) / 6);
}

TEST(TriangleCount, TriangleFreeGraphsAreZero) {
  for (auto g : {make_undirected(64, cycle_edges(64)),
                 make_undirected(65, star_edges(65)),
                 make_undirected(22, complete_bipartite_edges(10, 12)),
                 make_undirected(63, binary_tree_edges(6)),
                 make_undirected(144, grid2d_edges(12, 12, 1.0, 7))}) {
    const auto tc = triangle_count_push(g);
    for (auto c : tc) EXPECT_EQ(c, 0);
  }
}

TEST(TriangleCount, SingleTriangle) {
  Csr g = make_undirected(3, EdgeList{Edge{0, 1, 1.f}, Edge{1, 2, 1.f}, Edge{0, 2, 1.f}});
  for (const auto& tc :
       {triangle_count_pull(g), triangle_count_push(g), triangle_count_fast(g)}) {
    EXPECT_EQ(tc[0], 1);
    EXPECT_EQ(tc[1], 1);
    EXPECT_EQ(tc[2], 1);
    EXPECT_EQ(total_triangles(tc), 1);
  }
}

TEST(TriangleCount, PushUsesAtomicsPullDoesNot) {
  // §4.2: pulling removes atomics completely; pushing needs FAA per hit.
  Csr g = make_undirected(24, complete_edges(24));
  PerfCounters pc(omp_get_max_threads());

  triangle_count_pull(g, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  const auto pull_writes = pc.total().writes;
  EXPECT_EQ(pull_writes, 24u);  // one write per vertex

  pc.reset();
  triangle_count_push(g, CountingInstr(pc));
  EXPECT_GT(pc.total().atomics, 0u);
  // Two FAAs per discovered (ordered-pair) triangle instance.
  const std::int64_t instances = 24 * (23 * 22 / 2);  // per-center pairs hit
  EXPECT_EQ(pc.total().atomics, static_cast<std::uint64_t>(2 * instances));
}

TEST(TriangleCount, ReadCountsSimilarAcrossVariants) {
  // §4.2: both variants generate the same O(m·d̂) read conflicts.
  Csr g = make_undirected(256, rmat_edges(8, 6, 33));
  PerfCounters pc(omp_get_max_threads());
  triangle_count_pull(g, CountingInstr(pc));
  const auto pull_reads = pc.total().reads;
  pc.reset();
  triangle_count_push(g, CountingInstr(pc));
  EXPECT_EQ(pc.total().reads, pull_reads);
}

TEST(TriangleCount, TotalTrianglesDividesByThree) {
  Csr g = make_undirected(200, erdos_renyi_edges(200, 800, 13));
  const auto tc = triangle_count_fast(g);
  const std::int64_t total = total_triangles(tc);
  EXPECT_GT(total, 0);  // ER with d̄=8 at n=200 almost surely has triangles
}

}  // namespace
}  // namespace pushpull
