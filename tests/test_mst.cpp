#include <gtest/gtest.h>
#include <omp.h>

#include "core/baselines/baselines.hpp"
#include "core/baselines/legacy_kernels.hpp"
#include "core/baselines/union_find.hpp"
#include "core/mst_boruvka.hpp"
#include "core/mst_prim.hpp"
#include "graph/stats.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

using MstParam = std::tuple<int, int>;

constexpr double kTol = 1e-3;

class MstEquivalence : public ::testing::TestWithParam<MstParam> {};

TEST_P(MstEquivalence, BoruvkaMatchesKruskalWeight) {
  const auto& zoo = testing::weighted_zoo();
  const auto& [gi, threads] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(threads);

  const double want = baseline::kruskal_msf_weight(g);
  const BoruvkaResult push = mst_boruvka_push(g);
  const BoruvkaResult pull = mst_boruvka_pull(g);
  EXPECT_NEAR(push.total_weight, want, kTol) << name << "/push";
  EXPECT_NEAR(pull.total_weight, want, kTol) << name << "/pull";

  // Forest size: n - #components edges.
  const vid_t expected_edges = g.n() - count_components(g);
  EXPECT_EQ(static_cast<vid_t>(push.tree_edges.size()), expected_edges) << name;
  EXPECT_EQ(static_cast<vid_t>(pull.tree_edges.size()), expected_edges) << name;
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, MstEquivalence,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<MstParam>& info) {
      return pushpull::testing::weighted_zoo()[std::get<0>(info.param)].name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Mst, BaselinesAgree) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    EXPECT_NEAR(baseline::kruskal_msf_weight(g), baseline::prim_msf_weight(g), kTol)
        << name;
  }
}

TEST(Mst, TreeEdgesFormAcyclicSpanningForest) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      const BoruvkaResult r = mst_boruvka(g, dir);
      UnionFind uf(g.n());
      for (const auto& [u, v] : r.tree_edges) {
        EXPECT_TRUE(g.has_edge(u, v)) << name;       // real edges only
        EXPECT_TRUE(uf.unite(u, v)) << name;         // no cycles
      }
      // Spanning: same number of components as the graph.
      const auto comp = component_ids(g);
      for (vid_t v = 1; v < g.n(); ++v) {
        if (comp[static_cast<std::size_t>(v)] == comp[0]) {
          EXPECT_TRUE(uf.same(0, v)) << name;
        }
      }
    }
  }
}

TEST(Mst, AllEqualWeightsTerminateAndSpan) {
  // The tie-heavy case: any spanning tree is minimal; the run must still
  // terminate (no hooking cycles) and produce n-1 edges.
  const auto& zoo = testing::weighted_zoo();
  const auto& [name, g] = zoo[7];  // w_ties_grid (weight 1.0 everywhere)
  ASSERT_EQ(name, "w_ties_grid");
  const BoruvkaResult push = mst_boruvka_push(g);
  const BoruvkaResult pull = mst_boruvka_pull(g);
  const vid_t expected = g.n() - count_components(g);
  EXPECT_EQ(static_cast<vid_t>(push.tree_edges.size()), expected);
  EXPECT_EQ(static_cast<vid_t>(pull.tree_edges.size()), expected);
  EXPECT_NEAR(push.total_weight, static_cast<double>(expected), kTol);
}

TEST(Mst, PathGraphTreeIsWholeGraph) {
  BuildOptions opts;
  opts.keep_weights = true;
  Csr g = build_csr(20, with_uniform_weights(path_edges(20), 1.f, 5.f, 7), opts);
  const BoruvkaResult r = mst_boruvka_pull(g);
  EXPECT_EQ(r.tree_edges.size(), 19u);
  EXPECT_NEAR(r.total_weight, baseline::kruskal_msf_weight(g), kTol);
}

TEST(Mst, IterationCountIsLogarithmic) {
  const auto& zoo = testing::weighted_zoo();
  const auto& [name, g] = zoo[3];  // w_er200
  const BoruvkaResult r = mst_boruvka_push(g);
  // Components at least halve per iteration: ≤ log2(n) + slack.
  EXPECT_LE(r.iterations, 12);
  EXPECT_EQ(r.phase_times.size(), static_cast<std::size_t>(r.iterations));
}

TEST(Mst, DisconnectedGraphYieldsForest) {
  BuildOptions opts;
  opts.keep_weights = true;
  // Two separate triangles plus an isolated vertex.
  EdgeList edges = {{0, 1, 1.f}, {1, 2, 2.f}, {0, 2, 3.f},
                    {3, 4, 1.f}, {4, 5, 2.f}, {3, 5, 3.f}};
  Csr g = build_csr(7, edges, opts);
  const BoruvkaResult r = mst_boruvka_push(g);
  EXPECT_EQ(r.tree_edges.size(), 4u);  // 2 edges per triangle
  EXPECT_NEAR(r.total_weight, 6.0, kTol);
}

TEST(Mst, SingleVertexAndEmptyGraph) {
  BuildOptions opts;
  opts.keep_weights = true;
  Csr single = build_csr(1, EdgeList{}, opts);
  EXPECT_EQ(mst_boruvka_push(single).tree_edges.size(), 0u);
  Csr empty = build_csr(5, EdgeList{}, opts);
  EXPECT_EQ(mst_boruvka_pull(empty).total_weight, 0.0);
}

TEST(MstPrim, PushAndPullMatchKruskalWeight) {
  // The §3.7 technical-report variant: push/pull Prim.
  for (const auto& [name, g] : testing::weighted_zoo()) {
    const double want = baseline::kruskal_msf_weight(g);
    EXPECT_NEAR(mst_prim(g, Direction::Push).total_weight, want, kTol) << name;
    EXPECT_NEAR(mst_prim(g, Direction::Pull).total_weight, want, kTol) << name;
  }
}

TEST(MstPrim, ParentEdgesExistAndRoundsEqualN) {
  const auto& [name, g] = testing::weighted_zoo()[3];  // w_er200
  const PrimResult r = mst_prim(g, Direction::Push);
  EXPECT_EQ(r.rounds, g.n());
  for (vid_t v = 0; v < g.n(); ++v) {
    const vid_t p = r.parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      EXPECT_TRUE(g.has_edge(p, v)) << name;
    }
  }
}

TEST(Mst, EngineMatchesFrozenLegacyOracleBitForBit) {
  // The edge_map/vertex_map rebase must reproduce the frozen pre-engine
  // loops exactly: same tree edges in the same order, bitwise-equal weight
  // sum, same iteration count — the canonical-arc tie-break makes both ends
  // deterministic, so this holds at any thread count.
  omp_set_num_threads(4);
  for (const auto& [name, g] : testing::weighted_zoo()) {
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      const BoruvkaResult r = mst_boruvka(g, dir);
      const legacy::BoruvkaRef ref = legacy::mst_boruvka(g, dir);
      EXPECT_EQ(r.tree_edges, ref.tree_edges) << name << "/" << to_string(dir);
      EXPECT_EQ(r.total_weight, ref.total_weight)
          << name << "/" << to_string(dir);
      EXPECT_EQ(r.iterations, ref.iterations) << name << "/" << to_string(dir);
    }
  }
}

TEST(Mst, PushAndPullSelectSameForestWeight) {
  // With the canonical-edge tie-break both runs are deterministic; weights
  // must agree exactly, not just within MST-uniqueness.
  for (const auto& [name, g] : testing::weighted_zoo()) {
    const double pw = mst_boruvka_push(g).total_weight;
    const double lw = mst_boruvka_pull(g).total_weight;
    EXPECT_NEAR(pw, lw, 1e-9) << name;
  }
}

}  // namespace
}  // namespace pushpull
