// Observability layer tests (DESIGN.md §6): tracer ring semantics, the
// Chrome exporter's golden invariants, tracer-on/off differential runs on the
// zoo, the multi-writer record path (exercised under TSan in CI), the metrics
// registry, and the JsonWriter escaping fix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/bfs.hpp"
#include "core/connected_components.hpp"
#include "core/incremental.hpp"
#include "core/pagerank.hpp"
#include "graph/delta_graph.hpp"
#include "graph_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace pushpull {
namespace {

obs::TraceEvent make_event(const char* name, std::uint64_t ts, int tid = 7) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = "test";
  ev.ts_ns = ts;
  ev.dur_ns = 10;
  ev.tid = tid;  // explicit lane: independent of which thread records
  return ev;
}

// --- ring semantics ----------------------------------------------------------

TEST(Tracer, RecordsAndCounts) {
  obs::Tracer t;
  EXPECT_EQ(t.recorded(), 0u);
  for (int i = 0; i < 5; ++i) t.record(make_event("e", 100 + i));
  EXPECT_EQ(t.recorded(), 5u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, OverflowDropsNewestAndCounts) {
  obs::TracerOptions opt;
  opt.events_per_thread = 4;
  obs::Tracer t(opt);
  for (int i = 0; i < 10; ++i) t.record(make_event("e", 100 + i));
  EXPECT_EQ(t.recorded(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The *oldest* events survive (drop-newest): ts 100..103.
  const auto events = t.sorted_events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].second.ts_ns, 100 + i);
  }
}

TEST(Tracer, DisabledRecordsNothing) {
  obs::TracerOptions opt;
  opt.start_enabled = false;
  obs::Tracer t(opt);
  t.record(make_event("e", 1));
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);  // disabled is not a drop
  t.set_enabled(true);
  t.record(make_event("e", 2));
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(Tracer, NullTracerHelpers) {
  obs::NullTracer* null_tracer = nullptr;
  EXPECT_FALSE(obs::tracing(null_tracer));
  obs::NullTracer nt;
  EXPECT_FALSE(obs::tracing(&nt));
  obs::Tracer* live_null = nullptr;
  EXPECT_FALSE(obs::tracing(live_null));
  // The NullTracer ScopedSpan specialization is an empty no-op.
  obs::ScopedSpan<obs::NullTracer> span(&nt, "x", "y");
  span.arg("a", 1.0);
  span.set_mode("m");
  static_assert(sizeof(span) <= sizeof(void*));
}

TEST(Tracer, ArgOverflowIsIgnored) {
  obs::TraceEvent ev;
  for (int i = 0; i < obs::TraceEvent::kMaxArgs + 5; ++i) ev.arg("k", i);
  EXPECT_EQ(ev.n_args, obs::TraceEvent::kMaxArgs);
}

// --- multi-writer record path (the CI TSan job runs this) --------------------

TEST(Tracer, ConcurrentWritersFromManyThreads) {
  obs::Tracer t;
  constexpr int kThreads = 8;
  constexpr int kEventsEach = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&t, &go, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kEventsEach; ++i) {
        obs::TraceEvent ev;
        ev.name = "w";
        ev.cat = "mt";
        ev.ts_ns = obs::now_ns();
        ev.tid = 100 + w;
        ev.arg("i", i);
        t.record(ev);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent reader: the release/acquire head handshake must make every
  // event it sees a complete write (TSan verifies no data race).
  std::uint64_t seen = 0;
  for (int i = 0; i < 50; ++i) seen = std::max(seen, t.recorded());
  for (auto& w : writers) w.join();
  EXPECT_LE(seen, static_cast<std::uint64_t>(kThreads) * kEventsEach);
  EXPECT_EQ(t.recorded() + t.dropped(),
            static_cast<std::uint64_t>(kThreads) * kEventsEach);
  // Every thread's events landed in its own lane, in order.
  const auto events = t.sorted_events();
  std::vector<int> per_lane(kThreads, 0);
  for (const auto& [tid, ev] : events) {
    ASSERT_GE(tid, 100);
    ASSERT_LT(tid, 100 + kThreads);
    ++per_lane[static_cast<std::size_t>(tid - 100)];
  }
}

// --- exporter golden invariants ----------------------------------------------

TEST(Tracer, SortedEventsMonotonePerLane) {
  obs::Tracer t;
  // Record out of timestamp order within one lane (nested-ScopedSpan shape:
  // the inner span records first with a later ts).
  t.record(make_event("outer", 500, 3));
  t.record(make_event("inner", 900, 3));
  t.record(make_event("early", 100, 3));
  t.record(make_event("other_lane", 50, 9));
  const auto events = t.sorted_events();
  ASSERT_EQ(events.size(), 4u);
  int prev_tid = -1;
  std::uint64_t prev_ts = 0;
  for (const auto& [tid, ev] : events) {
    EXPECT_GE(tid, prev_tid);
    if (tid == prev_tid) {
      EXPECT_GE(ev.ts_ns, prev_ts);
    }
    prev_tid = tid;
    prev_ts = ev.ts_ns;
  }
}

// Minimal structural JSON scan: quotes/braces/brackets balance outside
// strings, no raw control characters. Catches the classes of breakage a
// hand-rolled emitter can produce without needing a JSON library.
void check_json_well_formed(const std::string& s) {
  int depth = 0;
  int array_depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char";
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth; break;
      case '}': --depth; ASSERT_GE(depth, 0); break;
      case '[': ++array_depth; break;
      case ']': --array_depth; ASSERT_GE(array_depth, 0); break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(array_depth, 0);
}

TEST(Tracer, ChromeJsonGolden) {
  obs::Tracer t;
  obs::TraceEvent span = make_event("round \"quoted\"", 2000, 1);
  span.mode = "dense-pull";
  span.arg("frontier", 42).arg("alpha", 14.5);
  t.record(span);
  obs::TraceEvent instant = make_event("marker", 3000, 1);
  instant.ph = 'i';
  t.record(instant);

  const std::string json = t.chrome_json();
  check_json_well_formed(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  // The quote in the event name must be escaped.
  EXPECT_NE(json.find("round \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("round \"quoted\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"dense-pull\""), std::string::npos);
  // Timestamps are rebased to the earliest event: ts 2000ns -> 0us.
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
  // Instant events carry a scope, spans a duration.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 0.010"), std::string::npos);
}

TEST(Tracer, ChromeJsonEmptyTraceIsWellFormed) {
  obs::Tracer t;
  check_json_well_formed(t.chrome_json());
}

// --- scoped spans and round events -------------------------------------------

TEST(Tracer, ScopedSpanRecordsOnDestruction) {
  obs::Tracer t;
  {
    obs::ScopedSpan<obs::Tracer> span(&t, "commit", "storage");
    span.arg("updates", 17);
    span.set_mode("overlay");
    EXPECT_EQ(t.recorded(), 0u);  // nothing until close
  }
  ASSERT_EQ(t.recorded(), 1u);
  const auto events = t.sorted_events();
  EXPECT_STREQ(events[0].second.name, "commit");
  EXPECT_STREQ(events[0].second.cat, "storage");
  EXPECT_STREQ(events[0].second.mode, "overlay");
  ASSERT_EQ(events[0].second.n_args, 1);
  EXPECT_EQ(events[0].second.args[0].value, 17.0);
}

TEST(Tracer, RecordRoundCarriesDecisionInputs) {
  obs::Tracer t;
  obs::RoundEvent r;
  r.kernel = "cc";
  r.mode = "sparse-push";
  r.round = 3;
  r.frontier_size = 12;
  r.active_work = 99;
  r.total_work = 640;
  r.total_count = 200;
  r.alpha = 14.0;
  r.beta = 24.0;
  r.updates = 7;
  r.t0_ns = obs::now_ns();
  r.dur_ns = 1234;
  obs::record_round(&t, r);
  const auto events = t.sorted_events();
  ASSERT_EQ(events.size(), 1u);
  const obs::TraceEvent& ev = events[0].second;
  EXPECT_STREQ(ev.name, "cc");
  EXPECT_STREQ(ev.cat, "round");
  EXPECT_STREQ(ev.mode, "sparse-push");
  ASSERT_GE(ev.n_args, 8);
  EXPECT_EQ(ev.args[1].value, 12.0);   // frontier
  EXPECT_EQ(ev.args[2].value, 99.0);   // active_work
  EXPECT_EQ(ev.args[5].value, 14.0);   // alpha
  // Null tracer pointer: no-op, no crash.
  obs::Tracer* none = nullptr;
  obs::record_round(none, r);
  obs::NullTracer* null_policy = nullptr;
  obs::record_round(null_policy, r);
  EXPECT_EQ(t.recorded(), 1u);
}

// --- tracer-on/off differential: tracing must not change results -------------

TEST(TracerDifferential, KernelsBitIdenticalWithTracerOn) {
  for (const auto& entry : pushpull::testing::unweighted_zoo()) {
    const Csr& g = entry.graph;
    obs::Tracer t;

    CcOptions cc_opt;
    cc_opt.strategy = engine::StrategyKind::GreedySwitch;
    const CcResult cc_off = connected_components(g, cc_opt);
    const CcResult cc_on =
        connected_components(g, cc_opt, NullInstr{}, &t);
    EXPECT_EQ(cc_off.comp, cc_on.comp) << entry.name;
    EXPECT_EQ(cc_off.rounds, cc_on.rounds) << entry.name;

    const BfsResult bfs_off = bfs_direction_optimizing(g, 0);
    const BfsResult bfs_on =
        bfs_direction_optimizing(g, 0, {}, NullInstr{}, &t);
    EXPECT_EQ(bfs_off.dist, bfs_on.dist) << entry.name;
    EXPECT_EQ(bfs_off.parent, bfs_on.parent) << entry.name;

    PageRankOptions pr_opt;
    pr_opt.iterations = 5;
    const std::vector<double> pr_off = pagerank_pull(g, pr_opt);
    const std::vector<double> pr_on =
        pagerank_pull(g, pr_opt, NullInstr{}, &t);
    EXPECT_EQ(pr_off, pr_on) << entry.name;  // bit-identical, not approximate

    EXPECT_GT(t.recorded(), 0u) << entry.name;
  }
}

TEST(TracerDifferential, DeltaGraphCommitSpansDoNotChangeState) {
  const Csr base = make_undirected(6, path_edges(6));
  DeltaGraph plain{Csr(base)};
  DeltaGraph traced{Csr(base)};
  obs::Tracer t;
  traced.set_tracer(&t);
  for (DeltaGraph* dg : {&plain, &traced}) {
    dg->add_edge(0, 3);
    dg->add_edge(2, 5);
    dg->commit();
    dg->remove_edge(0, 1);
    dg->commit();
    dg->compact();
  }
  EXPECT_EQ(cc_labels(plain.snapshot()), cc_labels(traced.snapshot()));
  EXPECT_EQ(plain.num_arcs(), traced.num_arcs());
  // Two commits + one compact recorded as storage spans.
  EXPECT_EQ(t.recorded(), 3u);
}

TEST(TracerDifferential, IncrementalRepairSpansTagFellBack) {
  const Csr base = make_undirected(8, path_edges(8));
  DeltaGraph dg{Csr(base)};
  std::vector<vid_t> dist = bfs_levels(dg.snapshot(), 0);
  dg.add_edge(0, 7);
  const epoch_t e = dg.commit();
  const std::vector<EdgeUpdate> ups = flatten(dg.batches_since(e - 1));
  obs::Tracer t;
  IncrementalStats st;
  const std::vector<vid_t> repaired = incremental_bfs(
      dg.snapshot(), std::span<const EdgeUpdate>(ups), 0, dist, &st,
      NullInstr{}, &t);
  EXPECT_EQ(repaired, bfs_levels(dg.snapshot(), 0));
  const auto events = t.sorted_events();
  bool saw_repair = false;
  for (const auto& [tid, ev] : events) {
    if (std::string(ev.cat) == "repair") {
      saw_repair = true;
      EXPECT_STREQ(ev.name, "incremental_bfs");
      ASSERT_NE(ev.mode, nullptr);
      EXPECT_EQ(std::string(ev.mode),
                st.fell_back ? "fell-back" : "incremental");
    }
  }
  EXPECT_TRUE(saw_repair);
}

// --- metrics registry --------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
  obs::Gauge g;
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramPercentilesLandInBucket) {
  obs::Histogram h;
  // 90 samples around 1000ns (bucket [512, 1023]), 10 around 1M ns.
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  const std::uint64_t p50 = h.percentile(50.0);
  EXPECT_GE(p50, 512u);
  EXPECT_LE(p50, 1023u);
  const std::uint64_t p99 = h.percentile(99.0);
  EXPECT_GE(p99, 524288u);    // 2^19
  EXPECT_LE(p99, 1048575u);   // 2^20 - 1
  EXPECT_NEAR(h.mean(), 0.9 * 1000 + 0.1 * 1'000'000, 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
}

TEST(Metrics, HistogramEdgeBuckets) {
  obs::Histogram h;
  h.record(0);
  EXPECT_EQ(h.percentile(50.0), 0u);  // bucket 0 holds only zero
  h.record(~std::uint64_t{0});        // top bucket must not overflow
  EXPECT_GT(h.percentile(99.0), std::uint64_t{1} << 62);
}

TEST(Metrics, RegistryStableRefsAndSerialization) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("queries");
  obs::Counter& c2 = reg.counter("queries");
  EXPECT_EQ(&c, &c2);  // same name, same instrument
  c.inc(3);
  reg.gauge("load").set(0.75);
  reg.histogram("latency").record(1000);

  bench::JsonWriter w;
  reg.write_to(w);
  const std::string path = ::testing::TempDir() + "/metrics_dump.json";
  w.write(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  check_json_well_formed(content);
  EXPECT_NE(content.find("\"metrics.queries\": 3"), std::string::npos);
  EXPECT_NE(content.find("\"metrics.latency.count\": 1"), std::string::npos);
  EXPECT_NE(content.find("\"metrics.latency.p50_ns\""), std::string::npos);

  reg.reset_all();
  EXPECT_EQ(c.value(), 0);                       // reference still valid
  EXPECT_EQ(reg.gauge("load").value(), 0.75);    // gauges keep their value
}

// --- JsonWriter escaping (the add_string fix) --------------------------------

TEST(JsonWriter, EscapesKeysAndStringValues) {
  bench::JsonWriter w;
  w.add_string("path", "a\"b\\c\nd\te");
  w.add_string("weird \"key\"", "v");
  w.add("n", 1.5);
  const std::string path = ::testing::TempDir() + "/writer_escape.json";
  w.write(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  check_json_well_formed(content);
  EXPECT_NE(content.find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
  EXPECT_NE(content.find("weird \\\"key\\\""), std::string::npos);
}

}  // namespace
}  // namespace pushpull
