// Serving layer (src/serve/) differential + concurrency tests.
//
// Pillars:
//  - multi_source_bfs / multi_source_sssp: every lane of one batched pass is
//    bit-identical to the standalone single-source kernel on the zoo graphs,
//    at 1..64 lanes and 1/4 OpenMP threads.
//  - Snapshot pinning under a live writer (the PR's headline contract): k
//    reader queries pinned to distinct epochs while a writer thread commits
//    throughout; every payload matches a standalone run on the PINNED
//    snapshot, never a later one.
//  - Cache, admission, batching, staleness accounting semantics.
#include <gtest/gtest.h>
#include <omp.h>

#include <future>
#include <random>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "core/sssp_delta.hpp"
#include "graph/delta_graph.hpp"
#include "graph_zoo.hpp"
#include "serve/executor.hpp"
#include "serve/service.hpp"

namespace pushpull {
namespace {

using serve::Algo;
using serve::GraphService;
using serve::QueryRequest;
using serve::QueryResult;
using serve::Reject;

std::vector<vid_t> pick_sources(std::mt19937_64& rng, vid_t n, int k) {
  std::vector<vid_t> s;
  s.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    s.push_back(static_cast<vid_t>(rng() % static_cast<std::uint64_t>(n)));
  }
  return s;
}

// --- Multi-source kernels vs standalone single-source ------------------------

TEST(MultiSourceBfs, LanesMatchSingleSourceOnZoo) {
  std::mt19937_64 rng(42);
  for (int threads : {1, 4}) {
    omp_set_num_threads(threads);
    for (const auto& entry : testing::unweighted_zoo()) {
      engine::SymmetricView view(entry.graph);
      const vid_t n = view.n();
      for (int k : {1, 2, 17, 64}) {
        const std::vector<vid_t> sources = pick_sources(rng, n, k);
        const MultiSourceBfsResult ms = multi_source_bfs(
            view, std::span<const vid_t>(sources));
        ASSERT_EQ(ms.lanes, k);
        for (int l = 0; l < k; ++l) {
          EXPECT_EQ(ms.lane(l, n), bfs_levels(view, sources[l]))
              << entry.name << " lane " << l << " of " << k << " src "
              << sources[l] << " threads " << threads;
        }
      }
    }
  }
  omp_set_num_threads(4);
}

TEST(MultiSourceBfs, DuplicateSourcesShareLevels) {
  const auto& entry = testing::unweighted_zoo().front();
  engine::SymmetricView view(entry.graph);
  const vid_t n = view.n();
  const std::vector<vid_t> sources{3, 3, 3};
  const MultiSourceBfsResult ms =
      multi_source_bfs(view, std::span<const vid_t>(sources));
  const std::vector<vid_t> want = bfs_levels(view, vid_t{3});
  for (int l = 0; l < 3; ++l) EXPECT_EQ(ms.lane(l, n), want);
}

TEST(MultiSourceBfs, StaticDirectionsAgree) {
  std::mt19937_64 rng(7);
  const auto& entry = testing::unweighted_zoo()[8];  // er200
  engine::SymmetricView view(entry.graph);
  const vid_t n = view.n();
  const std::vector<vid_t> sources = pick_sources(rng, n, 9);
  MultiSourceBfsOptions push_opt, pull_opt;
  push_opt.strategy = engine::StrategyKind::StaticPush;
  pull_opt.strategy = engine::StrategyKind::StaticPull;
  const auto a =
      multi_source_bfs(view, std::span<const vid_t>(sources), push_opt);
  const auto b =
      multi_source_bfs(view, std::span<const vid_t>(sources), pull_opt);
  EXPECT_EQ(a.levels, b.levels);
}

TEST(MultiSourceSssp, LanesMatchDeltaSteppingOnZoo) {
  std::mt19937_64 rng(1234);
  for (int threads : {1, 4}) {
    omp_set_num_threads(threads);
    for (const auto& entry : testing::weighted_zoo()) {
      const Csr& g = entry.graph;
      const vid_t n = g.n();
      for (int k : {1, 2, 17}) {
        const std::vector<vid_t> sources = pick_sources(rng, n, k);
        const MultiSourceSsspResult ms =
            multi_source_sssp(g, std::span<const vid_t>(sources));
        ASSERT_EQ(ms.lanes, k);
        for (int l = 0; l < k; ++l) {
          const std::vector<weight_t> want =
              sssp_delta_push(g, sources[l], weight_t{2.0f}).dist;
          const std::vector<weight_t> got = ms.lane(l, n);
          ASSERT_EQ(got.size(), want.size());
          for (vid_t v = 0; v < n; ++v) {
            EXPECT_EQ(got[static_cast<std::size_t>(v)],
                      want[static_cast<std::size_t>(v)])
                << entry.name << " lane " << l << " src " << sources[l]
                << " v " << v << " threads " << threads;
          }
        }
      }
    }
  }
  omp_set_num_threads(4);
}

// --- DeltaGraph staleness exposure -------------------------------------------

TEST(DeltaGraphServe, NumBatchesSinceCountsCommits) {
  DeltaGraph dg(testing::unweighted_zoo().front().graph);
  const epoch_t e0 = dg.epoch();
  EXPECT_EQ(dg.num_batches_since(e0), 0u);
  for (int i = 0; i < 3; ++i) {
    dg.add_edge(0, static_cast<vid_t>(10 + i));
    dg.commit();
  }
  EXPECT_EQ(dg.num_batches_since(e0), 3u);
  EXPECT_EQ(dg.num_batches_since(dg.epoch()), 0u);
  EXPECT_EQ(dg.num_batches_since(e0 + 1), 2u);
}

// --- Service: snapshot pinning under a concurrent writer ---------------------

// Writer commits batches while k readers hold queries pinned to distinct
// epochs. Each payload must equal the standalone kernel on the PINNED
// snapshot — proving later commits never leak into a pinned answer.
TEST(GraphServicePinning, ReadersSeePinnedEpochUnderConcurrentCommits) {
  Csr base = testing::weighted_zoo().front().graph;
  DeltaGraph dg(std::move(base));
  const vid_t n = dg.n();

  // Lay down a few epochs to pin before the service starts.
  std::vector<epoch_t> epochs{dg.epoch()};
  std::mt19937_64 rng(99);
  for (int b = 0; b < 4; ++b) {
    for (int i = 0; i < 8; ++i) {
      const vid_t u = static_cast<vid_t>(rng() % static_cast<std::uint64_t>(n));
      const vid_t v = static_cast<vid_t>(rng() % static_cast<std::uint64_t>(n));
      if (u != v) dg.add_edge(u, v, 1.0f + 0.25f * static_cast<float>(b));
    }
    dg.commit();
    epochs.push_back(dg.epoch());
  }

  // Expected payloads from the pinned snapshots, computed BEFORE the writer
  // starts mutating — the pin contract says later commits cannot change them.
  std::vector<std::vector<vid_t>> want_levels;
  std::vector<std::vector<weight_t>> want_dist;
  for (const epoch_t e : epochs) {
    const SnapshotView snap = dg.snapshot(e);
    want_levels.push_back(
        serve::run_bfs(snap, 0, engine::StrategyKind::GenericSwitch));
    want_dist.push_back(serve::run_sssp(
        snap, 0, 2.0f, engine::StrategyKind::GenericSwitch));
  }

  serve::ServiceOptions opt;
  opt.workers = 3;
  opt.batch_window_us = 100;
  GraphService svc(dg, opt);

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    std::mt19937_64 wrng(7);
    while (!stop_writer.load()) {
      for (int i = 0; i < 8; ++i) {
        const vid_t u =
            static_cast<vid_t>(wrng() % static_cast<std::uint64_t>(n));
        const vid_t v =
            static_cast<vid_t>(wrng() % static_cast<std::uint64_t>(n));
        if (u != v) dg.add_edge(u, v, 0.5f);
      }
      dg.commit();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      QueryRequest req;
      req.algo = (round % 2 == 0) ? Algo::Bfs : Algo::Sssp;
      req.source = 0;
      req.pin_epoch = epochs[i];
      futs.push_back(svc.submit(req));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const QueryResult r = futs[i].get();
      ASSERT_TRUE(r.ok) << r.reject_detail;
      EXPECT_EQ(r.epoch, epochs[i]);
      if (r.algo == Algo::Bfs) {
        EXPECT_EQ(r.levels, want_levels[i]) << "epoch " << epochs[i];
      } else {
        EXPECT_EQ(r.dist, want_dist[i]) << "epoch " << epochs[i];
      }
    }
  }

  stop_writer.store(true);
  writer.join();
  svc.stop();
}

// Unpinned queries resolve to the latest epoch at submit time and report how
// many commits they are behind by completion.
TEST(GraphServicePinning, UnpinnedQueriesResolveLatestAndReportStaleness) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  GraphService svc(dg);
  QueryRequest req;
  req.algo = Algo::Bfs;
  req.source = 1;
  const QueryResult r = svc.submit(req).get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.epoch, dg.epoch());
  EXPECT_EQ(r.behind_batches, 0u);

  dg.add_edge(0, 5, 1.0f);
  dg.commit();
  // A result pinned to the old epoch is now one batch behind.
  QueryRequest old_req;
  old_req.algo = Algo::Bfs;
  old_req.source = 1;
  old_req.pin_epoch = r.epoch;
  const QueryResult r2 = svc.submit(old_req).get();
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.epoch, r.epoch);
  EXPECT_EQ(r2.behind_batches, 1u);
  EXPECT_EQ(r2.levels, r.levels);
}

// --- Service: cache semantics ------------------------------------------------

TEST(GraphServiceCache, HitsOnlyWithinOneEpoch) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  GraphService svc(dg);
  QueryRequest req;
  req.algo = Algo::Bfs;
  req.source = 2;

  const QueryResult r1 = svc.submit(req).get();
  ASSERT_TRUE(r1.ok);
  EXPECT_FALSE(r1.from_cache);

  const QueryResult r2 = svc.submit(req).get();
  ASSERT_TRUE(r2.ok);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r2.levels, r1.levels);
  EXPECT_EQ(r2.epoch, r1.epoch);

  dg.add_edge(2, 7, 1.0f);
  dg.commit();
  const QueryResult r3 = svc.submit(req).get();
  ASSERT_TRUE(r3.ok);
  EXPECT_FALSE(r3.from_cache);  // new epoch, new key
  EXPECT_EQ(r3.epoch, dg.epoch());

  const serve::ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 2u);
}

TEST(GraphServiceCache, WholeGraphAlgorithmsShareOneKeyPerEpoch) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  GraphService svc(dg);
  QueryRequest a, b;
  a.algo = b.algo = Algo::Cc;
  a.source = 3;  // source is normalized out of whole-graph cache keys
  b.source = 9;
  const QueryResult r1 = svc.submit(a).get();
  const QueryResult r2 = svc.submit(b).get();
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_FALSE(r1.from_cache);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r1.comp, r2.comp);
}

// --- Service: admission ------------------------------------------------------

TEST(GraphServiceAdmission, RejectsWithReason) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  GraphService svc(dg);

  QueryRequest bad_source;
  bad_source.algo = Algo::Bfs;
  bad_source.source = dg.n() + 100;
  const QueryResult r1 = svc.submit(bad_source).get();
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.reject, Reject::BadRequest);

  QueryRequest bad_epoch;
  bad_epoch.algo = Algo::Bfs;
  bad_epoch.pin_epoch = dg.epoch() + 50;
  const QueryResult r2 = svc.submit(bad_epoch).get();
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.reject, Reject::BadRequest);

  QueryRequest tiny_ops;
  tiny_ops.algo = Algo::Bfs;
  tiny_ops.op_budget = 1;
  const QueryResult r3 = svc.submit(tiny_ops).get();
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(r3.reject, Reject::OverOpBudget);
  EXPECT_FALSE(r3.reject_detail.empty());

  QueryRequest rushed;
  rushed.algo = Algo::PageRank;
  rushed.time_budget_s = 1e-9;
  const QueryResult r4 = svc.submit(rushed).get();
  EXPECT_FALSE(r4.ok);
  EXPECT_EQ(r4.reject, Reject::OverTimeBudget);

  const serve::ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected, 4u);
  EXPECT_EQ(st.completed, 0u);
}

TEST(GraphServiceAdmission, CapacityGatesInflightOps) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  serve::ServiceOptions opt;
  opt.admission.capacity_ops = 1;  // everything is over capacity
  GraphService svc(dg, opt);
  QueryRequest req;
  req.algo = Algo::Bfs;
  const QueryResult r = svc.submit(req).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reject, Reject::OverCapacity);
}

TEST(AdmissionController, QueueLimitAndLedger) {
  serve::AdmissionOptions opt;
  opt.max_queue = 2;
  opt.capacity_ops = 1000000;
  serve::AdmissionController ac(opt);
  QueryRequest req;
  req.algo = Algo::Bfs;

  const auto d1 = ac.admit(req, 100, 1000, /*queued=*/0);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1.priced_ops, serve::AdmissionController::price(Algo::Bfs, 100, 1000));
  EXPECT_EQ(ac.inflight_ops(), d1.priced_ops);

  const auto d2 = ac.admit(req, 100, 1000, /*queued=*/2);
  EXPECT_EQ(d2.reject, Reject::QueueFull);
  EXPECT_EQ(ac.inflight_ops(), d1.priced_ops);  // rejects charge nothing

  ac.release(d1.priced_ops);
  EXPECT_EQ(ac.inflight_ops(), 0u);
}

// --- Service: batching -------------------------------------------------------

// With a wide window and one worker, concurrently submitted same-policy BFS
// queries merge into one multi-source pass; each lane still equals the
// standalone run.
TEST(GraphServiceBatching, MergesCompatibleQueriesAndStaysExact) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  const SnapshotView snap = dg.snapshot();
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.batch_window_us = 100000;  // 100 ms: everything below lands in one pass
  opt.cache_entries = 0;         // force execution for every query
  GraphService svc(dg, opt);

  constexpr int kQueries = 6;
  std::vector<std::future<QueryResult>> futs;
  std::vector<vid_t> sources;
  for (int i = 0; i < kQueries; ++i) {
    QueryRequest req;
    req.algo = Algo::Bfs;
    req.source = static_cast<vid_t>(3 * i + 1);
    sources.push_back(req.source);
    futs.push_back(svc.submit(req));
  }
  int max_lanes = 0;
  for (int i = 0; i < kQueries; ++i) {
    const QueryResult r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.ok) << r.reject_detail;
    max_lanes = std::max(max_lanes, r.batch_lanes);
    EXPECT_EQ(r.levels, serve::run_bfs(snap, sources[static_cast<std::size_t>(i)],
                                       engine::StrategyKind::GenericSwitch));
  }
  EXPECT_GE(max_lanes, 2);  // the window did merge
  const serve::ServiceStats st = svc.stats();
  EXPECT_GT(st.batched_queries, 0u);
  EXPECT_LT(st.batches, static_cast<std::uint64_t>(kQueries));
}

// --- Service: lifecycle ------------------------------------------------------

TEST(GraphServiceLifecycle, StopIsIdempotentAndDtorSafe) {
  DeltaGraph dg(testing::weighted_zoo().front().graph);
  GraphService svc(dg);
  QueryRequest req;
  req.algo = Algo::Cc;
  EXPECT_TRUE(svc.submit(req).get().ok);
  svc.stop();
  svc.stop();
  QueryRequest fresh;  // uncached: a repeat CC would legitimately hit the cache
  fresh.algo = Algo::Bfs;
  fresh.source = 4;
  const QueryResult r = svc.submit(fresh).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reject, Reject::Shutdown);
}

}  // namespace
}  // namespace pushpull
