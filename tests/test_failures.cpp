// Failure injection: API misuse and corrupt inputs must fail loudly (the
// library promises PP_CHECK aborts, not silent corruption).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/mst_boruvka.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace pushpull {
namespace {

using ::testing::TempDir;

TEST(Failures, BuilderRejectsOutOfRangeEndpoints) {
  EXPECT_DEATH(build_csr(3, EdgeList{Edge{0, 5, 1.f}}), "CHECK failed");
  EXPECT_DEATH(build_csr(3, EdgeList{Edge{-1, 0, 1.f}}), "CHECK failed");
}

TEST(Failures, CsrRejectsMalformedOffsets) {
  // Offsets not ending at adjacency size.
  EXPECT_DEATH(Csr({0, 1, 4}, {0, 1}), "CHECK failed");
  // Offsets not starting at zero.
  EXPECT_DEATH(Csr({1, 2}, {0}), "CHECK failed");
  // Weight array of the wrong length.
  EXPECT_DEATH(Csr({0, 1}, {0}, {1.f, 2.f}), "CHECK failed");
}

TEST(Failures, IoMissingFileAborts) {
  EXPECT_DEATH(read_edge_list("/nonexistent/path/graph.txt", nullptr),
               "CHECK failed");
  EXPECT_DEATH(read_csr_binary("/nonexistent/path/graph.bin"), "CHECK failed");
}

TEST(Failures, BinaryFormatRejectsBadMagic) {
  const std::string path = TempDir() + "/pp_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = "not a pushpull graph";
    out.write(junk, sizeof junk);
  }
  EXPECT_DEATH(read_csr_binary(path), "CHECK failed");
  std::filesystem::remove(path);
}

TEST(Failures, BinaryFormatReadsLegacyV1Files) {
  // v1 layout: legacy magic, no version word, then the payload. Old caches
  // must stay readable behind the fallback.
  const std::string path = TempDir() + "/pp_legacy.bin";
  Csr g = make_undirected(10, path_edges(10));
  {
    std::ofstream out(path, std::ios::binary);
    auto put = [&out](const void* p, std::size_t bytes) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
    };
    const std::uint64_t magic = 0x70757368'70756c6cULL;  // "pushpull"
    const std::int64_t n = g.n();
    const std::int64_t arcs = g.num_arcs();
    const std::uint8_t weighted = 0;
    put(&magic, sizeof magic);
    put(&n, sizeof n);
    put(&arcs, sizeof arcs);
    put(&weighted, sizeof weighted);
    put(g.offsets().data(), g.offsets().size() * sizeof(eid_t));
    put(g.adj().data(), g.adj().size() * sizeof(vid_t));
  }
  const Csr back = read_csr_binary(path);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.num_arcs(), g.num_arcs());
  EXPECT_EQ(back.adj(), g.adj());
  std::filesystem::remove(path);
}

TEST(Failures, BinaryFormatRejectsFutureVersion) {
  const std::string path = TempDir() + "/pp_future.bin";
  Csr g = make_undirected(10, path_edges(10));
  write_csr_binary(path, g);
  {
    // Bump the version word (bytes 8..11) to something unknown.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint32_t future = 99;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&future), sizeof future);
  }
  EXPECT_DEATH(read_csr_binary(path), "CHECK failed");
  std::filesystem::remove(path);
}

TEST(Failures, BinaryFormatRejectsTrailingGarbage) {
  const std::string path = TempDir() + "/pp_trailing.bin";
  Csr g = make_undirected(10, path_edges(10));
  write_csr_binary(path, g);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("stale", 5);
  }
  EXPECT_DEATH(read_csr_binary(path), "CHECK failed");
  std::filesystem::remove(path);
}

TEST(Failures, BinaryFormatRoundTripsCurrentVersion) {
  const std::string path = TempDir() + "/pp_v2.bin";
  Csr g = make_undirected_weighted(20, cycle_edges(20), 1.0f, 5.0f, 7);
  write_csr_binary(path, g);
  const Csr back = read_csr_binary(path);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.adj(), g.adj());
  EXPECT_EQ(back.weight_array(), g.weight_array());
  std::filesystem::remove(path);
}

TEST(Failures, BinaryFormatRejectsTruncation) {
  const std::string path = TempDir() + "/pp_truncated.bin";
  Csr g = make_undirected(50, path_edges(50));
  write_csr_binary(path, g);
  // Chop off the tail.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_DEATH(read_csr_binary(path), "CHECK failed");
  std::filesystem::remove(path);
}

TEST(Failures, SsspRequiresWeightsAndValidSource) {
  Csr unweighted = make_undirected(10, path_edges(10));
  EXPECT_DEATH(sssp_delta_push(unweighted, 0, 1.0f), "CHECK failed");
  Csr weighted = make_undirected_weighted(10, path_edges(10), 1.f, 2.f, 1);
  EXPECT_DEATH(sssp_delta_push(weighted, 99, 1.0f), "CHECK failed");
  EXPECT_DEATH(sssp_delta_push(weighted, 0, 0.0f), "CHECK failed");  // Δ > 0
}

TEST(Failures, MstRequiresWeightsWhenEdgesExist) {
  Csr unweighted = make_undirected(10, cycle_edges(10));
  EXPECT_DEATH(mst_boruvka_push(unweighted), "CHECK failed");
}

TEST(Failures, PagerankRejectsEmptyVertexSet) {
  Csr empty;
  EXPECT_DEATH(pagerank_pull(empty, PageRankOptions{}), "CHECK failed");
}

TEST(Failures, GeneratorsValidateParameters) {
  EXPECT_DEATH(rmat_edges(0, 4, 1), "CHECK failed");
  EXPECT_DEATH(erdos_renyi_edges(4, 100, 1), "CHECK failed");  // m > C(n,2)
  EXPECT_DEATH(grid2d_edges(4, 4, 0.0, 1), "CHECK failed");    // keep_prob > 0
  EXPECT_DEATH(barabasi_albert_edges(3, 5, 1), "CHECK failed");
  EXPECT_DEATH(watts_strogatz_edges(10, 6, 0.1, 1), "CHECK failed");  // 2k < n
}

}  // namespace
}  // namespace pushpull
