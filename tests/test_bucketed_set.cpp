// BucketedVertexSet (engine/vertex_set.hpp): unit coverage of the Julienne
// mechanics — empty-bucket skip, overflow spill/refill, lazy duplicate and
// stale entries, the kInfKey drop — plus differential validation of the two
// kernels rebased onto it in PR 8: SSSP-Δ and k-core must stay bit-identical
// to the frozen pre-bucket implementations (core/baselines/legacy_kernels.hpp)
// across the zoo at 1 and 4 threads.
#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "core/baselines/legacy_kernels.hpp"
#include "core/kcore.hpp"
#include "core/sssp_delta.hpp"
#include "engine/vertex_set.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

using engine::BucketedVertexSet;
using key_t = BucketedVertexSet::key_t;
constexpr key_t kInf = BucketedVertexSet::kInfKey;

// key_of that reads a caller-owned key array and ignores the popped bucket —
// the SSSP-Δ shape.
struct KeyArray {
  std::vector<key_t> keys;
  key_t operator()(vid_t v, key_t) const {
    return keys[static_cast<std::size_t>(v)];
  }
};

TEST(BucketedVertexSet, PopsInKeyOrderSkippingEmptyBuckets) {
  BucketedVertexSet b(/*n=*/16);
  KeyArray keys{{3, 40, 3, 7, kInf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}};
  b.insert(0, 3);
  b.insert(1, 40);
  b.insert(2, 3);
  b.insert(3, 7);

  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 3);
  EXPECT_EQ(out, (std::vector<vid_t>{0, 2}));
  EXPECT_EQ(b.pop_bucket(out, keys), 7);
  EXPECT_EQ(out, (std::vector<vid_t>{3}));
  // Buckets 8..39 are empty and never materialize work.
  EXPECT_EQ(b.pop_bucket(out, keys), 40);
  EXPECT_EQ(out, (std::vector<vid_t>{1}));
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
  EXPECT_FALSE(b.has_entries());
}

TEST(BucketedVertexSet, DuplicateInsertsEmitOnce) {
  BucketedVertexSet b(/*n=*/4);
  KeyArray keys{{5, 5, 0, 0}};
  b.insert(0, 5);
  b.insert(0, 5);
  b.insert(0, 5);
  b.insert(1, 5);
  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 5);
  EXPECT_EQ(out, (std::vector<vid_t>{0, 1}));  // the epoch stamp dedups
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
}

TEST(BucketedVertexSet, StaleEntriesRequeueAtTheirTrueKey) {
  BucketedVertexSet b(/*n=*/4);
  // Enqueued at 2, but the key has since moved to 7 (a later relaxation).
  KeyArray keys{{7, 0, 0, 0}};
  b.insert(0, 2);
  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 7);
  EXPECT_EQ(out, (std::vector<vid_t>{0}));
  EXPECT_EQ(b.stale_requeues(), 1);
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
}

TEST(BucketedVertexSet, SettledEntriesAreDropped) {
  BucketedVertexSet b(/*n=*/4);
  KeyArray keys{{kInf, kInf, 0, 0}};
  b.insert(0, 2);
  b.insert(1, kInf);  // never enqueued at all
  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
  EXPECT_TRUE(out.empty());
}

TEST(BucketedVertexSet, InsertsBelowTheWindowBaseAreDropped) {
  BucketedVertexSet b(/*n=*/4);
  KeyArray keys{{3, 1, 0, 0}};
  b.insert(0, 3);
  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 3);
  b.insert(1, 1);  // behind the window: already-processed key space
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
}

TEST(BucketedVertexSet, OverflowSpillsAndRefills) {
  BucketedVertexSet b(/*n=*/8, /*open_buckets=*/4);
  KeyArray keys{{0, 2, 9, 10, 999, 0, 0, 0}};
  b.insert(0, 0);
  b.insert(1, 2);
  b.insert(2, 9);    // past the [0, 4) window -> overflow
  b.insert(3, 10);   // overflow
  b.insert(4, 999);  // overflow
  EXPECT_EQ(b.overflow_size(), 3u);

  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 0);
  EXPECT_EQ(out, (std::vector<vid_t>{0}));
  EXPECT_EQ(b.pop_bucket(out, keys), 2);
  // Window exhausted: refill finds min live overflow key 9, moves the base.
  EXPECT_EQ(b.pop_bucket(out, keys), 9);
  EXPECT_EQ(out, (std::vector<vid_t>{2}));
  EXPECT_EQ(b.window_base(), 9);
  EXPECT_EQ(b.refills(), 1);
  EXPECT_EQ(b.pop_bucket(out, keys), 10);
  // 999 is past [9, 13) too: second refill.
  EXPECT_EQ(b.pop_bucket(out, keys), 999);
  EXPECT_EQ(out, (std::vector<vid_t>{4}));
  EXPECT_EQ(b.refills(), 2);
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
}

TEST(BucketedVertexSet, RefillDropsSettledOverflowEntries) {
  BucketedVertexSet b(/*n=*/4, /*open_buckets=*/2);
  KeyArray keys{{kInf, 50, 0, 0}};
  b.insert(0, 40);  // will be settled by the time the window reaches it
  b.insert(1, 50);
  std::vector<vid_t> out;
  EXPECT_EQ(b.pop_bucket(out, keys), 50);
  EXPECT_EQ(out, (std::vector<vid_t>{1}));
  EXPECT_EQ(b.pop_bucket(out, keys), kInf);
}

// --- differential: the rebased kernels vs the frozen pre-bucket copies -------

class BucketedKernels : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { omp_set_num_threads(GetParam()); }
};

TEST_P(BucketedKernels, SsspDeltaPushMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    for (weight_t delta : {0.5f, 4.0f, 1e6f}) {
      const std::vector<weight_t> ref = legacy::sssp_delta_push(g, 0, delta);
      const DeltaSteppingResult got = sssp_delta_push(g, 0, delta);
      ASSERT_EQ(got.dist.size(), ref.size()) << name;
      for (std::size_t v = 0; v < ref.size(); ++v) {
        // Unique float fixpoint: exact equality, like the engine differential.
        ASSERT_EQ(got.dist[v], ref[v])
            << name << " d=" << delta << " v" << v;
      }
      EXPECT_GT(got.epochs, 0) << name;
    }
  }
}

TEST_P(BucketedKernels, SsspDeltaPullMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    for (weight_t delta : {0.5f, 4.0f}) {
      const std::vector<weight_t> ref = legacy::sssp_delta_pull(g, 0, delta);
      const DeltaSteppingResult got = sssp_delta_pull(g, 0, delta);
      ASSERT_EQ(got.dist.size(), ref.size()) << name;
      for (std::size_t v = 0; v < ref.size(); ++v) {
        ASSERT_EQ(got.dist[v], ref[v])
            << name << " d=" << delta << " v" << v;
      }
    }
  }
}

TEST_P(BucketedKernels, KcoreMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const std::vector<vid_t> ref = legacy::kcore(g);
    const KcoreResult got = kcore_decomposition(g);
    ASSERT_EQ(got.core, ref) << name;
    vid_t max_core = 0;
    for (vid_t c : ref) max_core = std::max(max_core, c);
    EXPECT_EQ(got.max_core, max_core) << name;
    EXPECT_GT(got.rounds, 0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BucketedKernels, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pushpull
