#include <gtest/gtest.h>

#include <cmath>

#include "pram/model.hpp"

namespace pushpull::pram {
namespace {

Params social() {
  // orc-like: n = 3M, m = 117M, d̂ = 30k, P = 16.
  return Params{3.0e6, 1.17e8, 3.0e4, 16};
}

Params road() {
  // rca-like: n = 2M, m = 2.8M, d̂ = 8, P = 16.
  return Params{2.0e6, 2.8e6, 8, 16};
}

TEST(Primitives, KBarFloorsAtOne) {
  EXPECT_EQ(k_bar(4, 16), 1.0);
  EXPECT_EQ(k_bar(64, 16), 4.0);
}

TEST(Primitives, PullRelaxationIsModelIndependent) {
  const Params p = social();
  const Cost crcw = k_relaxation(1e6, p, Model::CRCW_CB, Dir::Pull);
  const Cost crew = k_relaxation(1e6, p, Model::CREW, Dir::Pull);
  EXPECT_EQ(crcw.time, crew.time);
  EXPECT_EQ(crcw.work, crew.work);
}

TEST(Primitives, PushPaysLogFactorInCrew) {
  const Params p = social();
  const Cost cb = k_relaxation(1e6, p, Model::CRCW_CB, Dir::Push);
  const Cost crew = k_relaxation(1e6, p, Model::CREW, Dir::Push);
  EXPECT_GT(crew.time, cb.time);
  EXPECT_NEAR(crew.time / cb.time, std::log2(p.d_max), 1e-9);
}

TEST(Primitives, KFilterWorkCappedAtN) {
  const Params p{100, 1000, 10, 4};
  EXPECT_EQ(k_filter(5000, p).work, 100.0);
  EXPECT_EQ(k_filter(50, p).work, 50.0);
}

TEST(Simulation, LimitProcessorsScalesTime) {
  const Cost c{100, 1000};
  const Cost limited = limit_processors(c, 16, 4);
  EXPECT_EQ(limited.time, 400.0);
  EXPECT_EQ(limited.work, 1000.0);
  // No-op when P' >= P.
  EXPECT_EQ(limit_processors(c, 4, 16).time, 100.0);
}

TEST(Simulation, CrcwOnErewLogSlowdown) {
  const Cost c{10, 100};
  const Cost sim = crcw_on_erew(c, 1024);
  EXPECT_EQ(sim.time, 100.0);  // ×log2(1024) = 10
}

TEST(PageRank, PushEqualsPullInCrcwCb) {
  const Params p = social();
  const Cost push = pr_cost(p, 20, Model::CRCW_CB, Dir::Push);
  const Cost pull = pr_cost(p, 20, Model::CRCW_CB, Dir::Pull);
  EXPECT_EQ(push.time, pull.time);
  EXPECT_EQ(push.work, pull.work);
}

TEST(PageRank, PullBeatsPushInCrewByLogFactor) {
  // §4.9: "for PR and TC, pulling is faster than pushing in the PRAM CREW
  // model by a logarithmic factor."
  const Params p = social();
  const Cost push = pr_cost(p, 20, Model::CREW, Dir::Push);
  const Cost pull = pr_cost(p, 20, Model::CREW, Dir::Pull);
  EXPECT_NEAR(push.work / pull.work, std::log2(p.d_max), 1e-9);
}

TEST(PageRank, ProfileMatchesPaper) {
  const Params p = social();
  const double L = 20;
  const Profile push = pr_profile(p, L, Dir::Push);
  const Profile pull = pr_profile(p, L, Dir::Pull);
  // Pushing: O(Lm) write conflicts resolved with locks (floats).
  EXPECT_EQ(push.write_conflicts, L * p.m);
  EXPECT_EQ(push.locks, L * p.m);
  EXPECT_EQ(push.atomics, 0.0);
  // Pulling: read conflicts only, no atomics, no locks.
  EXPECT_EQ(pull.read_conflicts, L * p.m);
  EXPECT_EQ(pull.locks, 0.0);
  EXPECT_EQ(pull.atomics, 0.0);
  EXPECT_EQ(pull.write_conflicts, 0.0);
}

TEST(TriangleCounting, PullHasNoAtomics) {
  const Params p = social();
  EXPECT_EQ(tc_profile(p, Dir::Pull).atomics, 0.0);
  EXPECT_GT(tc_profile(p, Dir::Push).atomics, 0.0);
  // Both variants share the same read conflicts (adjacency checks).
  EXPECT_EQ(tc_profile(p, Dir::Pull).read_conflicts,
            tc_profile(p, Dir::Push).read_conflicts);
}

TEST(Bfs, PushIsWorkEfficientPullIsNot) {
  const Params p = social();
  const double D = 9;
  const Cost push = bfs_cost(p, D, Model::CRCW_CB, Dir::Push);
  const Cost pull = bfs_cost(p, D, Model::CRCW_CB, Dir::Pull);
  // Pull re-checks all edges every level: O(Dm) vs O(m).
  EXPECT_NEAR(pull.work / push.work, D, 1e-9);
}

TEST(Bfs, ProfileAtomicsVsReads) {
  const Params p = road();
  const double D = 849;
  const Profile push = bfs_profile(p, D, Dir::Push);
  const Profile pull = bfs_profile(p, D, Dir::Pull);
  EXPECT_EQ(push.atomics, p.m);        // one CAS per edge
  EXPECT_EQ(pull.atomics, 0.0);
  EXPECT_EQ(pull.read_conflicts, D * p.m);  // the road-network blowup
}

TEST(Sssp, PushRelaxesEachEdgeInOneEpoch) {
  const Params p = social();
  const double epochs = 10, l_delta = 3;
  const Cost push = sssp_cost(p, epochs, l_delta, Model::CRCW_CB, Dir::Push);
  const Cost pull = sssp_cost(p, epochs, l_delta, Model::CRCW_CB, Dir::Pull);
  EXPECT_NEAR(pull.work / push.work, epochs, 1e-9);
}

TEST(Bc, CostIs2nBfs) {
  const Params p = road();
  const double D = 100;
  const Cost bfs1 = bfs_cost(p, D, Model::CRCW_CB, Dir::Push);
  const Cost bc = bc_cost(p, D, Model::CRCW_CB, Dir::Push);
  EXPECT_NEAR(bc.work / bfs1.work, 2.0 * p.n, 1e-6);
}

TEST(Bc, BackwardPushTurnsAtomicsIntoLocks) {
  // §4.5/§4.9: the second phase accumulates floats, so pushing needs locks.
  const Params p = social();
  const Profile push = bc_profile(p, 9, Dir::Push);
  const Profile pull = bc_profile(p, 9, Dir::Pull);
  EXPECT_GT(push.locks, 0.0);
  EXPECT_EQ(pull.locks, 0.0);
}

TEST(Coloring, ConflictCountsMirrorDirection) {
  const Params p = road();
  const double L = 50;
  EXPECT_EQ(bgc_profile(p, L, Dir::Push).write_conflicts, L * p.m);
  EXPECT_EQ(bgc_profile(p, L, Dir::Pull).read_conflicts, L * p.m);
  EXPECT_EQ(bgc_profile(p, L, Dir::Pull).atomics, 0.0);
}

TEST(Mst, QuadraticWorkBothDirections) {
  const Params p = road();
  const Cost push = mst_cost(p, Model::CRCW_CB, Dir::Push);
  const Cost pull = mst_cost(p, Model::CRCW_CB, Dir::Pull);
  EXPECT_EQ(push.work, p.n * p.n);
  EXPECT_EQ(pull.work, p.n * p.n);
  EXPECT_GT(mst_cost(p, Model::CREW, Dir::Push).work, push.work);
}

TEST(AllAlgorithms, TimeDecreasesWithMoreProcessors) {
  Params p = social();
  Params p2 = p;
  p2.P = 256;
  EXPECT_LT(pr_cost(p2, 20, Model::CRCW_CB, Dir::Pull).time,
            pr_cost(p, 20, Model::CRCW_CB, Dir::Pull).time);
  EXPECT_LT(tc_cost(p2, Model::CRCW_CB, Dir::Push).time,
            tc_cost(p, Model::CRCW_CB, Dir::Push).time);
  EXPECT_LT(bfs_cost(p2, 9, Model::CRCW_CB, Dir::Push).time,
            bfs_cost(p, 9, Model::CRCW_CB, Dir::Push).time);
}

}  // namespace
}  // namespace pushpull::pram
