// Unit tests for the engine substrate itself: VertexSet, the four edge_map
// loop shapes, the update contexts' sync behavior, and the DirectionPolicy
// strategy vocabulary.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/policy.hpp"
#include "engine/vertex_set.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph_zoo.hpp"

namespace pushpull::engine {
namespace {

Csr path_graph(vid_t n) { return make_undirected(n, path_edges(n)); }

struct CountVisit {
  std::int64_t* per_vertex;  // indexed by destination

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    ctx.add(per_vertex[d], std::int64_t{1});
    return true;
  }
};

TEST(VertexSet, SparseDenseRoundTrip) {
  VertexSet s(10, {1, 3, 7});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.test(3));
  EXPECT_FALSE(s.test(4));
  s.mutable_ids().push_back(4);
  EXPECT_TRUE(s.test(4));  // dense view rebuilt after mutation
  EXPECT_EQ(VertexSet::all(5).size(), 5u);
  EXPECT_TRUE(VertexSet(8).empty());
}

TEST(VertexSet, OutDegreeSum) {
  Csr g = path_graph(4);  // degrees 1,2,2,1
  VertexSet s(4, {0, 1});
  EXPECT_DOUBLE_EQ(s.out_degree_sum(g), 3.0);
}

TEST(EdgeMap, SparsePushVisitsExactlyFrontierEdges) {
  Csr g = path_graph(5);
  std::vector<std::int64_t> visits(5, 0);
  Workspace ws(5);
  VertexSet in(5, {2});
  VertexSet out = sparse_push(g, ws, in, CountVisit{visits.data()});
  EXPECT_EQ(visits[1], 1);
  EXPECT_EQ(visits[3], 1);
  EXPECT_EQ(visits[0] + visits[4], 0);
  // Both neighbors returned true → both in the output set.
  std::vector<vid_t> ids(out.ids().begin(), out.ids().end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vid_t>{1, 3}));
}

TEST(EdgeMap, SparsePushDedupOutput) {
  // Star: every leaf pushes to the hub; dedup collapses the output to one id.
  Csr g = make_undirected(5, star_edges(5));
  std::vector<std::int64_t> visits(5, 0);
  Workspace ws(5);
  std::vector<vid_t> leaves{1, 2, 3, 4};
  EdgeMapOptions opt;
  opt.dedup_output = true;
  EdgeMapStats stats;
  VertexSet out = sparse_push(g, ws, std::span<const vid_t>(leaves),
                              CountVisit{visits.data()}, opt, NullInstr{}, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.ids()[0], 0);
  EXPECT_EQ(stats.updates, 4);  // dedup drops ids, not update counts
  EXPECT_EQ(visits[0], 4);
  // The dedup bitmap is cleaned up for the next call.
  VertexSet again = sparse_push(g, ws, std::span<const vid_t>(leaves),
                                CountVisit{visits.data()}, opt);
  EXPECT_EQ(again.size(), 1u);
}

struct PullFirstHit {
  std::int64_t* scans;

  static constexpr bool kBreakOnUpdate = true;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    ctx.add(scans[d], std::int64_t{1});
    return true;  // accept the first in-neighbor → early break
  }
};

TEST(EdgeMap, DensePullEarlyBreakStopsAfterFirstUpdate) {
  Csr g = make_undirected(6, complete_edges(6));  // 5 in-neighbors each
  std::vector<std::int64_t> scans(6, 0);
  Workspace ws(6);
  VertexSet out = dense_pull(g, ws, PullFirstHit{scans.data()});
  EXPECT_EQ(out.size(), 6u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(scans[static_cast<std::size_t>(v)], 1);
}

struct PullSumAll {
  std::int64_t* sum;

  bool cond(vid_t d) const { return d % 2 == 0; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    ctx.add(sum[d], std::int64_t{1});
    return false;
  }

  template <class Ctx>
  bool finalize(Ctx&, vid_t d) const {
    return sum[d] >= 2;  // finalize decides output membership
  }
};

TEST(EdgeMap, DensePullCondFilterAndFinalize) {
  Csr g = path_graph(6);  // interior vertices have 2 in-neighbors
  std::vector<std::int64_t> sum(6, 0);
  Workspace ws(6);
  VertexSet out = dense_pull(g, ws, PullSumAll{sum.data()});
  EXPECT_EQ(sum[1], 0);  // cond filtered the odd destinations
  EXPECT_EQ(sum[2], 2);
  std::vector<vid_t> ids(out.ids().begin(), out.ids().end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vid_t>{2, 4}));  // 0 has only 1 in-neighbor
}

TEST(EdgeMap, SparsePullVisitsOnlyGivenDestinations) {
  Csr g = make_undirected(6, complete_edges(6));
  std::vector<std::int64_t> scans(6, 0);
  Workspace ws(6);
  std::vector<vid_t> dests{1, 4};
  sparse_pull(g, ws, std::span<const vid_t>(dests), PullSumAll{scans.data()});
  EXPECT_EQ(scans[4], 5);
  EXPECT_EQ(scans[1], 0);  // cond still applies
  EXPECT_EQ(scans[0] + scans[2] + scans[3] + scans[5], 0);
}

TEST(EdgeMap, DensePushMembershipFilter) {
  Csr g = path_graph(5);
  std::vector<std::int64_t> visits(5, 0);
  Workspace ws(5);
  VertexSet sources(5, {0});
  dense_push(g, ws, &sources, CountVisit{visits.data()});
  EXPECT_EQ(visits[1], 1);
  EXPECT_EQ(visits[2] + visits[3] + visits[4], 0);
}

TEST(EdgeMap, VertexMapTracksAcceptedVertices) {
  Workspace ws(10);
  VertexSet evens = vertex_map(10, ws, [](auto&, vid_t v) { return v % 2 == 0; });
  EXPECT_EQ(evens.size(), 5u);
  for (vid_t v : evens.ids()) EXPECT_EQ(v % 2, 0);
}

// The same integer-add functor through both push sync policies must produce
// identical sums (the policies differ in cost model, not semantics).
TEST(EdgeMap, AtomicAndStripedLockAgree) {
  Csr g = make_undirected(64, rmat_edges(6, 8, 7));
  Workspace ws(64);
  std::vector<std::int64_t> a(64, 0), b(64, 0);
  EdgeMapOptions atomic_opt;
  atomic_opt.sync = Sync::Atomic;
  EdgeMapOptions lock_opt;
  lock_opt.sync = Sync::StripedLock;
  dense_push(g, ws, nullptr, CountVisit{a.data()}, atomic_opt);
  dense_push(g, ws, nullptr, CountVisit{b.data()}, lock_opt);
  EXPECT_EQ(a, b);
  const std::int64_t total = std::accumulate(a.begin(), a.end(), std::int64_t{0});
  EXPECT_EQ(total, g.num_arcs());
}

TEST(Policy, ParseVocabulary) {
  EXPECT_EQ(parse_strategy("push"), StrategyKind::StaticPush);
  EXPECT_EQ(parse_strategy("grs"), StrategyKind::GreedySwitch);
  EXPECT_EQ(parse_strategy_list("all").size(), 6u);
  EXPECT_EQ(parse_strategy_list("fe").size(), 1u);
  EXPECT_STREQ(to_string(StrategyKind::PartitionAware), "pa");
}

TEST(Policy, GenericSwitchFlipsBothWays) {
  DirectionPolicy p(StrategyKind::GenericSwitch, {4.0, 4.0, 0.0});
  EXPECT_EQ(p.current(), Direction::Push);
  // Heavy frontier → pull.
  EXPECT_EQ(p.choose(90, 100, 50, 100), Direction::Pull);
  // Tiny frontier → back to push.
  EXPECT_EQ(p.choose(1, 100, 1, 100), Direction::Push);
}

TEST(Policy, StaticAndFeNeverSwitch) {
  DirectionPolicy push(StrategyKind::StaticPush);
  DirectionPolicy pull(StrategyKind::StaticPull);
  DirectionPolicy fe(StrategyKind::FrontierExploit);
  EXPECT_EQ(push.choose(99, 100, 99, 100), Direction::Push);
  EXPECT_EQ(pull.choose(0, 100, 0, 100), Direction::Pull);
  EXPECT_EQ(fe.choose(99, 100, 99, 100), Direction::Push);
}

TEST(Policy, GreedySwitchSuggestsSequentialTail) {
  DirectionPolicy grs(StrategyKind::GreedySwitch, {14.0, 24.0, 0.1});
  EXPECT_FALSE(grs.suggest_sequential(50, 100));
  EXPECT_TRUE(grs.suggest_sequential(5, 100));
  DirectionPolicy gs(StrategyKind::GenericSwitch, {14.0, 24.0, 0.1});
  EXPECT_FALSE(gs.suggest_sequential(5, 100));  // only GrS suggests the tail
}

}  // namespace
}  // namespace pushpull::engine
