// Unit tests for the rank-partitioned frontier machinery
// (dist/frontier_dist.hpp), run on both transport backends: combining
// buffers, the dense membership window, global emptiness, the sparse/dense
// switch hysteresis, and the degenerate partitions (empty ranks, single-rank
// frontiers, more ranks than vertices). Assertions that concern a single
// rank's view run inside the rank function (shm ranks are processes — the
// probe in dist_test_common.hpp propagates their failures); cross-rank
// counter checks run in the parent on the shared RankStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/frontier_dist.hpp"
#include "dist_test_common.hpp"
#include "graph/generators.hpp"

namespace pushpull::dist {
namespace {

class FrontierBackend : public pushpull::dist::testing::BackendTest {};

TEST_P(FrontierBackend, CombiningBuffersCombinePerDestinationVertex) {
  constexpr int kRanks = 2;
  World world(kRanks, backend());
  const Partition1D part(10, kRanks);  // rank 0 owns [0,5), rank 1 owns [5,10)
  world.run([&](Rank& rank) {
    CombiningBuffers<int> buf(part, kRanks);
    const auto sum = [](int& a, int b) { a += b; };
    if (rank.id() == 0) {
      buf.stage(7, 1, sum);
      buf.stage(7, 2, sum);  // merges: one entry, value 3
      buf.stage(2, 5, sum);  // self lane
    }
    EXPECT_EQ(buf.all_empty(), rank.id() != 0);
    const auto got = buf.exchange(rank);
    EXPECT_TRUE(buf.all_empty());
    if (rank.id() == 0) {
      ASSERT_EQ(got.size(), 1u);  // self-lane delivery
      EXPECT_EQ(got[0].v, 2);
      EXPECT_EQ(got[0].val, 5);
    } else {
      ASSERT_EQ(got.size(), 1u);  // combined remote entry
      EXPECT_EQ(got[0].v, 7);
      EXPECT_EQ(got[0].val, 3);
    }
  });
  // One combined message (rank 0 → rank 1); the self lane is free.
  EXPECT_EQ(world.stats(0).msgs_sent, 1u);
  EXPECT_EQ(world.stats(1).msgs_sent, 0u);
}

TEST_P(FrontierBackend, CombiningBufferSlotsResetAcrossSupersteps) {
  World world(1, backend());
  const Partition1D part(4, 1);
  world.run([&](Rank& rank) {
    CombiningBuffers<int> buf(part, 1);
    const auto min = [](int& a, int b) { a = std::min(a, b); };
    buf.stage(3, 9, min);
    buf.stage(3, 4, min);
    auto first = buf.exchange(rank);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].val, 4);
    // Re-staging the same vertex after an exchange starts a fresh entry.
    buf.stage(3, 7, min);
    auto second = buf.exchange(rank);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].val, 7);
  });
}

TEST_P(FrontierBackend, DenseWindowCountsLocalAndRemoteProbes) {
  constexpr int kRanks = 2;
  World world(kRanks, backend());
  const Partition1D part(8, kRanks);
  DenseFrontierWindow win(world, 8, part);
  world.run([&](Rank& rank) {
    if (rank.id() == 0) win.set(rank, 1);  // local put
    rank.barrier();
    if (rank.id() == 1) {
      EXPECT_TRUE(win.test(rank, 1));   // remote probe
      EXPECT_FALSE(win.test(rank, 5));  // local probe
    }
    rank.barrier();
  });
  EXPECT_EQ(world.stats(0).local_puts, 1u);
  EXPECT_EQ(world.stats(1).rma_gets, 1u);
  EXPECT_EQ(world.stats(1).local_gets, 1u);
}

TEST_P(FrontierBackend, EmptyOnSubsetOfRanksStillGloballyNonEmpty) {
  constexpr int kRanks = 4;
  Csr g = make_undirected(64, cycle_edges(64));
  const Partition1D part(64, kRanks);
  World world(kRanks, backend());
  DistFrontier frontier(world, g, part);
  world.run([&](Rank& rank) {
    // Only rank 2 contributes vertices.
    std::vector<vid_t> mine;
    if (rank.id() == 2) mine = {part.begin(2), static_cast<vid_t>(part.begin(2) + 1)};
    frontier.advance(rank, std::move(mine));
    EXPECT_FALSE(frontier.globally_empty(rank));
    EXPECT_EQ(frontier.global_size(rank), 2u);
    EXPECT_EQ(frontier.owned(rank).size(), rank.id() == 2 ? 2u : 0u);
    // Every rank can probe the single owner's bits.
    EXPECT_TRUE(frontier.test(rank, part.begin(2)));
    EXPECT_FALSE(frontier.test(rank, part.begin(0)));
    // All-empty advance: emptiness is agreed on globally.
    frontier.advance(rank, {});
    EXPECT_TRUE(frontier.globally_empty(rank));
  });
}

TEST_P(FrontierBackend, FrontierEntirelyOnOneRank) {
  constexpr int kRanks = 3;
  Csr g = make_undirected(30, path_edges(30));
  const Partition1D part(30, kRanks);
  World world(kRanks, backend());
  DistFrontier frontier(world, g, part);
  world.run([&](Rank& rank) {
    std::vector<vid_t> mine;
    if (rank.id() == 0) {
      for (vid_t v = part.begin(0); v < part.end(0); ++v) mine.push_back(v);
    }
    frontier.advance(rank, std::move(mine));
    EXPECT_EQ(frontier.global_size(rank),
              static_cast<std::uint64_t>(part.part_size(0)));
    // Out-degree mass equals the sum of the slice's degrees, allreduced.
    double want = 0.0;
    for (vid_t v = part.begin(0); v < part.end(0); ++v) want += g.degree(v);
    EXPECT_DOUBLE_EQ(frontier.global_out_degree(rank), want);
  });
}

TEST_P(FrontierBackend, MoreRanksThanFrontierVertices) {
  constexpr int kRanks = 8;
  Csr g = make_undirected(4, path_edges(4));
  const Partition1D part(4, kRanks);  // ranks 4..7 own empty slices
  World world(kRanks, backend());
  DistFrontier frontier(world, g, part);
  world.run([&](Rank& rank) {
    std::vector<vid_t> mine;
    if (rank.id() < 4) mine = {static_cast<vid_t>(rank.id())};
    frontier.advance(rank, std::move(mine));
    EXPECT_EQ(frontier.global_size(rank), 4u);
    for (vid_t v = 0; v < 4; ++v) EXPECT_TRUE(frontier.test(rank, v));
    frontier.advance(rank, {});
    EXPECT_TRUE(frontier.globally_empty(rank));
  });
}

TEST_P(FrontierBackend, AdvanceSortsAndDeduplicatesOwnedSlice) {
  Csr g = make_undirected(16, cycle_edges(16));
  const Partition1D part(16, 1);
  World world(1, backend());
  DistFrontier frontier(world, g, part);
  world.run([&](Rank& rank) {
    frontier.advance(rank, {9, 3, 9, 1, 3});
    const std::vector<vid_t> want{1, 3, 9};
    EXPECT_EQ(frontier.owned(rank), want);
    EXPECT_EQ(frontier.global_size(rank), 3u);
  });
}

// The Beamer switch with hysteresis: star graph, n = 65, num_arcs = 128.
// alpha = 2 → sparse→dense when frontier out-edges > 64; beta = 4 →
// dense→sparse when frontier size < 65/4 = 16.25.
TEST_P(FrontierBackend, SparseDenseSwitchHysteresis) {
  Csr g = make_undirected(65, star_edges(65));
  ASSERT_EQ(g.num_arcs(), 128);
  const Partition1D part(65, 1);
  World world(1, backend());
  DistFrontier::Heuristic h;
  h.alpha = 2.0;
  h.beta = 4.0;
  DistFrontier frontier(world, g, part, h);
  world.run([&](Rank& rank) {
    // Center alone: 64 out-edges, not > 64 — stays sparse.
    frontier.advance(rank, {0});
    EXPECT_EQ(frontier.mode(rank), FrontierMode::Sparse);
    // Center + one leaf: 65 out-edges > 64 — switches to dense.
    frontier.advance(rank, {0, 1});
    EXPECT_EQ(frontier.mode(rank), FrontierMode::Dense);
    // 20 leaves: only 20 out-edges, but 20 ≥ 16.25 vertices — hysteresis
    // keeps it dense instead of flapping back.
    std::vector<vid_t> leaves;
    for (vid_t v = 1; v <= 20; ++v) leaves.push_back(v);
    frontier.advance(rank, std::move(leaves));
    EXPECT_EQ(frontier.mode(rank), FrontierMode::Dense);
    // 10 leaves: 10 < 16.25 — now it returns to sparse.
    frontier.advance(rank, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    EXPECT_EQ(frontier.mode(rank), FrontierMode::Sparse);
  });
}

TEST_P(FrontierBackend, ModeAgreesAcrossRanks) {
  constexpr int kRanks = 4;
  const Csr g = make_undirected(256, rmat_edges(8, 8, 17));  // skewed
  const Partition1D part(g.n(), kRanks);
  World world(kRanks, backend());
  DistFrontier frontier(world, g, part);
  world.run([&](Rank& rank) {
    // Simulated BFS-ish growth: every rank submits a growing slice and
    // checks agreement via an allreduce (works for process-backed ranks).
    for (int step = 1; step <= 4; ++step) {
      std::vector<vid_t> mine;
      const vid_t lo = part.begin(rank.id());
      const vid_t hi = std::min<vid_t>(part.end(rank.id()),
                                       static_cast<vid_t>(lo + (1 << (2 * step))));
      for (vid_t v = lo; v < hi; ++v) mine.push_back(v);
      frontier.advance(rank, std::move(mine));
      const double dense = frontier.mode(rank) == FrontierMode::Dense ? 1.0 : 0.0;
      const double agreeing = rank.allreduce_sum(dense);
      EXPECT_TRUE(agreeing == 0.0 || agreeing == static_cast<double>(kRanks))
          << "step " << step << ": ranks disagree on the mode";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, FrontierBackend,
                         pushpull::dist::testing::AllBackends(),
                         pushpull::dist::testing::BackendParamName);

}  // namespace
}  // namespace pushpull::dist
