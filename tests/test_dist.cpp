#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/pagerank.hpp"
#include "core/triangle_count.hpp"
#include "dist/pr_dist.hpp"
#include "dist/runtime.hpp"
#include "dist/tc_dist.hpp"
#include "graph_zoo.hpp"

namespace pushpull::dist {
namespace {

using DistParam = std::tuple<int, DistVariant>;

TEST(Runtime, RanksSeeTheirIds) {
  World world(4);
  std::vector<int> seen(4, -1);
  world.run([&](Rank& rank) { seen[static_cast<std::size_t>(rank.id())] = rank.id(); });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(Runtime, BarrierCountsPerRank) {
  World world(3);
  world.run([&](Rank& rank) {
    rank.barrier();
    rank.barrier();
  });
  for (int r = 0; r < 3; ++r) EXPECT_EQ(world.stats(r).barriers, 2u);
}

TEST(Runtime, AllreduceSumsContributions) {
  World world(5);
  std::vector<double> results(5);
  world.run([&](Rank& rank) {
    results[static_cast<std::size_t>(rank.id())] =
        rank.allreduce_sum(static_cast<double>(rank.id() + 1));
  });
  for (double r : results) EXPECT_EQ(r, 15.0);  // 1+2+3+4+5
}

TEST(Runtime, AlltoallvDeliversEverything) {
  constexpr int kRanks = 4;
  World world(kRanks);
  std::vector<std::vector<int>> received(kRanks);
  world.run([&](Rank& rank) {
    // Rank r sends value 100*r + d to destination d.
    std::vector<std::vector<int>> out(kRanks);
    for (int d = 0; d < kRanks; ++d) out[static_cast<std::size_t>(d)] = {100 * rank.id() + d};
    received[static_cast<std::size_t>(rank.id())] = rank.alltoallv(out);
  });
  for (int d = 0; d < kRanks; ++d) {
    auto& in = received[static_cast<std::size_t>(d)];
    ASSERT_EQ(in.size(), static_cast<std::size_t>(kRanks));
    std::sort(in.begin(), in.end());
    for (int s = 0; s < kRanks; ++s) EXPECT_EQ(in[static_cast<std::size_t>(s)], 100 * s + d);
  }
}

TEST(Runtime, MessageCountersTrackSends) {
  World world(2);
  world.run([&](Rank& rank) {
    if (rank.id() == 0) {
      const int payload[3] = {1, 2, 3};
      rank.send(1, payload, 3);
    }
    rank.barrier();
    if (rank.id() == 1) {
      const auto in = rank.template drain<int>();
      EXPECT_EQ(in.size(), 3u);
    }
  });
  EXPECT_EQ(world.stats(0).msgs_sent, 1u);
  EXPECT_EQ(world.stats(0).bytes_sent, 3 * sizeof(int));
  EXPECT_EQ(world.stats(1).msgs_sent, 0u);
}

TEST(Window, LocalAndRemoteOpsCountedSeparately) {
  World world(2);
  Window<double> win(world, 10);
  world.run([&](Rank& rank) {
    if (rank.id() == 0) {
      win.put(rank, 0, 1.0);   // local (rank 0 owns [0,5))
      win.put(rank, 7, 2.0);   // remote
      win.accumulate(rank, 8, 0.5);  // remote float accumulate
      (void)win.get(rank, 9);        // remote get
      (void)win.get(rank, 1);        // local get
    }
    rank.barrier();
  });
  EXPECT_EQ(world.stats(0).rma_puts, 1u);
  EXPECT_EQ(world.stats(0).rma_accs, 1u);
  EXPECT_EQ(world.stats(0).rma_gets, 1u);
  EXPECT_EQ(win.raw()[7], 2.0);
  EXPECT_EQ(win.raw()[8], 0.5);
}

TEST(Window, IntegerFaaIsAtomicAcrossRanks) {
  World world(4);
  Window<std::int64_t> win(world, 4);
  world.run([&](Rank& rank) {
    for (int i = 0; i < 1000; ++i) win.faa(rank, 0, std::int64_t{1});
  });
  EXPECT_EQ(win.raw()[0], 4000);
  // 3 of 4 ranks issued remote FAAs.
  std::uint64_t remote = 0;
  for (int r = 0; r < 4; ++r) remote += world.stats(r).rma_faas;
  EXPECT_EQ(remote, 3000u);
}

TEST(CommModel, AccumulateCostsDominateFaa) {
  const CommCosts costs;
  RankStats acc_heavy, faa_heavy;
  acc_heavy.rma_accs = 1000;
  faa_heavy.rma_faas = 1000;
  EXPECT_GT(acc_heavy.modeled_comm_us(costs), 5 * faa_heavy.modeled_comm_us(costs));
}

// --- Distributed PageRank -----------------------------------------------------

class DistPr : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistPr, MatchesSharedMemoryPageRank) {
  const auto& [nranks, variant] = GetParam();
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  PageRankOptions opt;
  opt.iterations = 10;
  const auto want = pagerank_seq(g, opt);
  const DistPrResult got = pagerank_dist(g, nranks, opt.iterations, opt.damping, variant);
  ASSERT_EQ(got.pr.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got.pr[v], want[v], 1e-9) << to_string(variant) << " v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndRanks, DistPr,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(DistVariant::PushRma, DistVariant::PullRma,
                                         DistVariant::MsgPassing)),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      std::string v = to_string(std::get<1>(info.param));
      std::replace(v.begin(), v.end(), '-', '_');
      return v + "_r" + std::to_string(std::get<0>(info.param));
    });

TEST(DistPrCounters, PushIssuesAccumulatesPullIssuesGets) {
  Csr g = make_undirected(128, erdos_renyi_edges(128, 512, 5));
  const auto push = pagerank_dist(g, 4, 2, 0.85, DistVariant::PushRma);
  EXPECT_GT(push.total.rma_accs, 0u);
  EXPECT_EQ(push.total.rma_gets, 0u);

  const auto pull = pagerank_dist(g, 4, 2, 0.85, DistVariant::PullRma);
  EXPECT_GT(pull.total.rma_gets, 0u);
  EXPECT_EQ(pull.total.rma_accs, 0u);
  // Pulling fetches rank AND degree: gets come in pairs.
  EXPECT_EQ(pull.total.rma_gets % 2, 0u);

  const auto mp = pagerank_dist(g, 4, 2, 0.85, DistVariant::MsgPassing);
  EXPECT_GT(mp.total.msgs_sent, 0u);
  EXPECT_EQ(mp.total.rma_accs, 0u);
  EXPECT_EQ(mp.total.rma_gets, 0u);
  // Alltoallv sends at most R-1 messages per rank per iteration (plus the
  // allreduce contribution), far fewer than push's per-edge accumulates.
  EXPECT_LT(mp.total.msgs_sent, push.total.rma_accs);
}

TEST(DistPrModel, MsgPassingModeledFasterThanPushRma) {
  // Figure 3's headline: MP ≫ RMA-push for PageRank.
  Csr g = make_undirected(512, rmat_edges(9, 8, 21));
  const CommCosts costs;
  const auto push = pagerank_dist(g, 8, 3, 0.85, DistVariant::PushRma, costs);
  const auto mp = pagerank_dist(g, 8, 3, 0.85, DistVariant::MsgPassing, costs);
  EXPECT_LT(mp.max_comm_us, push.max_comm_us / 5.0);
}

// --- Distributed Triangle Counting ---------------------------------------------

class DistTc : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistTc, MatchesSharedMemoryCounts) {
  const auto& [nranks, variant] = GetParam();
  Csr g = make_undirected(128, erdos_renyi_edges(128, 700, 29));
  const auto want = triangle_count_fast(g);
  DistTcOptions opt;
  opt.variant = variant;
  opt.mp_buffer_entries = 64;  // force mid-run flushes
  const DistTcResult got = triangle_count_dist(g, nranks, opt);
  ASSERT_EQ(got.tc.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got.tc[v], want[v]) << to_string(variant) << " v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndRanks, DistTc,
    ::testing::Combine(::testing::Values(1, 3, 4),
                       ::testing::Values(DistVariant::PushRma, DistVariant::PullRma,
                                         DistVariant::MsgPassing)),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      std::string v = to_string(std::get<1>(info.param));
      std::replace(v.begin(), v.end(), '-', '_');
      return v + "_r" + std::to_string(std::get<0>(info.param));
    });

TEST(DistTcCounters, VariantsIssueExpectedOps) {
  Csr g = make_undirected(128, erdos_renyi_edges(128, 700, 29));
  DistTcOptions opt;
  opt.variant = DistVariant::PushRma;
  const auto push = triangle_count_dist(g, 4, opt);
  EXPECT_GT(push.total.rma_faas, 0u);

  opt.variant = DistVariant::PullRma;
  const auto pull = triangle_count_dist(g, 4, opt);
  EXPECT_EQ(pull.total.rma_faas, 0u);
  EXPECT_GT(pull.total.rma_gets, 0u);  // adjacency fetches

  opt.variant = DistVariant::MsgPassing;
  opt.mp_buffer_entries = 16;
  const auto mp = triangle_count_dist(g, 4, opt);
  EXPECT_GT(mp.total.msgs_sent, 0u);
  EXPECT_EQ(mp.total.rma_faas, 0u);
}

TEST(DistTcModel, RmaModeledFasterThanMsgPassing) {
  // Figure 3 (TC): RMA variants beat MP; FAA fast path is cheap.
  Csr g = make_undirected(256, erdos_renyi_edges(256, 2000, 31));
  DistTcOptions rma_opt;
  rma_opt.variant = DistVariant::PushRma;
  DistTcOptions mp_opt;
  mp_opt.variant = DistVariant::MsgPassing;
  mp_opt.mp_buffer_entries = 8;  // paper's point: buffering/messaging overhead
  const auto rma = triangle_count_dist(g, 8, rma_opt);
  const auto mp = triangle_count_dist(g, 8, mp_opt);
  EXPECT_LT(rma.max_comm_us, mp.max_comm_us);
}

}  // namespace
}  // namespace pushpull::dist
