#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <vector>

#include "graph_zoo.hpp"
#include "la/algorithms.hpp"
#include "la/semiring.hpp"
#include "la/spmv.hpp"

namespace pushpull {
namespace {

using la::BoolOrAnd;
using la::MinPlus;
using la::PlusTimes;

// Dense reference: y[i] = ⊕_j A(i,j) ⊗ x[j] over the stored arcs.
template <class S>
std::vector<typename S::value_type> dense_reference(
    const Csr& g, const std::vector<typename S::value_type>& x, bool weights) {
  using T = typename S::value_type;
  std::vector<T> y(static_cast<std::size_t>(g.n()), S::zero());
  for (vid_t i = 0; i < g.n(); ++i) {
    for (eid_t e = g.edge_begin(i); e < g.edge_end(i); ++e) {
      const T a = weights ? static_cast<T>(g.edge_weight(e)) : S::one();
      y[static_cast<std::size_t>(i)] =
          S::add(y[static_cast<std::size_t>(i)],
                 S::mul(a, x[static_cast<std::size_t>(g.edge_target(e))]));
    }
  }
  return y;
}

TEST(Semiring, AxiomsSpotChecks) {
  EXPECT_EQ(PlusTimes<double>::add(PlusTimes<double>::zero(), 5.0), 5.0);
  EXPECT_EQ(PlusTimes<double>::mul(PlusTimes<double>::one(), 5.0), 5.0);
  EXPECT_EQ(PlusTimes<double>::mul(PlusTimes<double>::zero(), 5.0), 0.0);
  EXPECT_EQ(MinPlus<float>::add(MinPlus<float>::zero(), 3.f), 3.f);
  EXPECT_EQ(MinPlus<float>::mul(MinPlus<float>::one(), 3.f), 3.f);
  EXPECT_TRUE(std::isinf(MinPlus<float>::mul(MinPlus<float>::zero(), 3.f)));
  EXPECT_EQ(BoolOrAnd::add(false, true), true);
  EXPECT_EQ(BoolOrAnd::mul(true, false), false);
}

TEST(Spmv, PullMatchesDenseReferencePlusTimes) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    std::vector<double> x(static_cast<std::size_t>(g.n()));
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.25 * static_cast<double>(i % 7);
    const auto want = dense_reference<PlusTimes<double>>(g, x, false);
    std::vector<double> y(x.size());
    la::spmv_pull<PlusTimes<double>>(g, x, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(y[i], want[i], 1e-9) << name << " " << i;
    }
  }
}

TEST(Spmv, PushMatchesPull) {
  omp_set_num_threads(4);
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    std::vector<double> x(static_cast<std::size_t>(g.n()));
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + static_cast<double>(i % 5);
    std::vector<double> y_pull(x.size());
    std::vector<double> y_push(x.size(), 0.0);
    la::spmv_pull<PlusTimes<double>>(g, x, y_pull);
    la::spmv_push<PlusTimes<double>>(g, x, y_push);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(y_push[i], y_pull[i], 1e-9) << name << " " << i;
    }
  }
}

TEST(Spmv, WeightedMinPlusMatchesDense) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    std::vector<float> x(static_cast<std::size_t>(g.n()),
                         MinPlus<float>::zero());
    x[0] = 0.f;
    x[x.size() / 2] = 1.f;
    const auto want = dense_reference<MinPlus<float>>(g, x, true);
    std::vector<float> y_pull(x.size());
    std::vector<float> y_push(x.size(), MinPlus<float>::zero());
    la::spmv_pull<MinPlus<float>>(g, x, y_pull, true);
    la::spmv_push<MinPlus<float>>(g, x, y_push, true);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (std::isinf(want[i])) {
        EXPECT_TRUE(std::isinf(y_pull[i])) << name;
        EXPECT_TRUE(std::isinf(y_push[i])) << name;
      } else {
        EXPECT_NEAR(y_pull[i], want[i], 1e-4) << name;
        EXPECT_NEAR(y_push[i], want[i], 1e-4) << name;
      }
    }
  }
}

TEST(Spmspv, MatchesDenseSpmvOnSparseInput) {
  Csr g = make_undirected(200, erdos_renyi_edges(200, 800, 13));
  // Sparse x: three nonzero entries.
  la::SparseVec<double> sx;
  sx.idx = {3, 77, 150};
  sx.val = {2.0, 1.0, 4.0};
  std::vector<double> dense_x(200, 0.0);
  for (std::size_t k = 0; k < sx.idx.size(); ++k) {
    dense_x[static_cast<std::size_t>(sx.idx[k])] = sx.val[k];
  }
  const auto want = dense_reference<PlusTimes<double>>(g, dense_x, false);
  std::vector<double> y(200, 0.0);
  std::vector<vid_t> touched;
  la::spmspv_push<PlusTimes<double>>(g, sx, y, touched);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], want[i], 1e-9);
  // Touched covers exactly the union of the nonzero columns' neighborhoods.
  EXPECT_FALSE(touched.empty());
  for (vid_t t : touched) {
    EXPECT_TRUE(g.has_edge(3, t) || g.has_edge(77, t) || g.has_edge(150, t));
  }
}

TEST(Spmspv, EmptyInputTouchesNothing) {
  Csr g = make_undirected(50, path_edges(50));
  la::SparseVec<double> sx;
  std::vector<double> y(50, 0.0);
  std::vector<vid_t> touched;
  la::spmspv_push<PlusTimes<double>>(g, sx, y, touched);
  EXPECT_TRUE(touched.empty());
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(AtomicAccumulate, ConcurrentMinPlus) {
  float target = MinPlus<float>::zero();
#pragma omp parallel for num_threads(4)
  for (int i = 0; i < 10000; ++i) {
    la::atomic_accumulate<MinPlus<float>>(target, static_cast<float>(10000 - i));
  }
  EXPECT_EQ(target, 1.0f);
}

TEST(AtomicAccumulate, ConcurrentPlusTimes) {
  double target = 0.0;
#pragma omp parallel for num_threads(4)
  for (int i = 0; i < 20000; ++i) {
    la::atomic_accumulate<PlusTimes<double>>(target, 1.0);
  }
  EXPECT_EQ(target, 20000.0);
}

}  // namespace
}  // namespace pushpull
