#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "graph/analogs.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

TEST(Builder, SortedDedupedSymmetric) {
  // Duplicates, self loop, both orientations.
  EdgeList edges = {{0, 1, 1.f}, {1, 0, 1.f}, {0, 1, 1.f}, {2, 2, 1.f}, {1, 2, 1.f}};
  Csr g = build_csr(3, edges);
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.num_arcs(), 4);  // {0,1} and {1,2}, both directions
  EXPECT_EQ(g.m_undirected(), 2);
  EXPECT_TRUE(is_symmetric(g));
  for (vid_t v = 0; v < g.n(); ++v) {
    auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_FALSE(std::binary_search(nb.begin(), nb.end(), v));  // no self loop
  }
}

TEST(Builder, DedupKeepsMinimumWeight) {
  EdgeList edges = {{0, 1, 5.f}, {0, 1, 2.f}, {0, 1, 9.f}};
  BuildOptions opts;
  opts.keep_weights = true;
  Csr g = build_csr(2, edges, opts);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.weights(0)[0], 2.f);
  EXPECT_EQ(g.weights(1)[0], 2.f);  // symmetric copy carries the same weight
}

TEST(Builder, DirectedGraphKeepsOrientation) {
  Digraph d = build_digraph(3, {{0, 1, 1.f}, {1, 2, 1.f}});
  EXPECT_EQ(d.out.degree(0), 1);
  EXPECT_EQ(d.out.degree(2), 0);
  EXPECT_EQ(d.in.degree(0), 0);
  EXPECT_EQ(d.in.degree(2), 1);
}

TEST(Builder, RepresentationCellCount) {
  // n + 2m cells: offsets (n+1) plus adjacency (2m).
  Csr g = make_undirected(100, path_edges(100));
  EXPECT_EQ(g.offsets().size(), 101u);
  EXPECT_EQ(g.adj().size(), 2u * 99u);
}

TEST(Csr, HasEdgeMatchesAdjacency) {
  Csr g = make_undirected(6, {{0, 1, 1.f}, {1, 2, 1.f}, {4, 5, 1.f}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(5, 4));
}

TEST(Csr, TransposeOfSymmetricIsIdentical) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    Csr t = transpose(g);
    ASSERT_EQ(t.n(), g.n()) << name;
    ASSERT_EQ(t.adj(), g.adj()) << name;
    ASSERT_EQ(t.offsets(), g.offsets()) << name;
  }
}

TEST(Csr, TransposeReversesDirectedArcs) {
  Digraph d = build_digraph(4, {{0, 1, 2.f}, {0, 2, 3.f}, {3, 1, 4.f}}, true);
  EXPECT_EQ(d.in.degree(1), 2);
  EXPECT_EQ(d.in.neighbors(1)[0], 0);
  EXPECT_EQ(d.in.neighbors(1)[1], 3);
  // Weights follow the arcs.
  EXPECT_EQ(d.in.weights(1)[0], 2.f);
  EXPECT_EQ(d.in.weights(1)[1], 4.f);
}

TEST(Csr, MaxAndAvgDegree) {
  Csr g = make_undirected(65, star_edges(65));
  EXPECT_EQ(g.max_degree(), 64);
  EXPECT_NEAR(g.avg_degree(), 2.0 * 64 / 65, 1e-12);
}

TEST(Generators, PathCycleStarShapes) {
  Csr p = make_undirected(10, path_edges(10));
  EXPECT_EQ(p.m_undirected(), 9);
  EXPECT_EQ(p.degree(0), 1);
  EXPECT_EQ(p.degree(5), 2);

  Csr c = make_undirected(10, cycle_edges(10));
  EXPECT_EQ(c.m_undirected(), 10);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 2);

  Csr s = make_undirected(10, star_edges(10));
  EXPECT_EQ(s.degree(0), 9);
  EXPECT_EQ(s.degree(3), 1);
}

TEST(Generators, CompleteGraphEdgeCount) {
  Csr g = make_undirected(12, complete_edges(12));
  EXPECT_EQ(g.m_undirected(), 12 * 11 / 2);
  EXPECT_EQ(g.max_degree(), 11);
}

TEST(Generators, CompleteBipartiteStructure) {
  Csr g = make_undirected(7, complete_bipartite_edges(3, 4));
  EXPECT_EQ(g.m_undirected(), 12);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4);
  for (vid_t v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(Generators, BinaryTreeStructure) {
  Csr g = make_undirected(15, binary_tree_edges(4));
  EXPECT_EQ(g.m_undirected(), 14);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(count_components(g), 1);
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  Csr g = make_undirected(500, erdos_renyi_edges(500, 2000, 99));
  EXPECT_EQ(g.m_undirected(), 2000);  // distinct by construction
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  EdgeList a = erdos_renyi_edges(100, 300, 5);
  EdgeList b = erdos_renyi_edges(100, 300, 5);
  EdgeList c = erdos_renyi_edges(100, 300, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, RmatIsSkewed) {
  Csr g = make_undirected(1 << 10, rmat_edges(10, 8, 3));
  // Power-law-ish: max degree far above average.
  EXPECT_GT(g.max_degree(), 4 * g.avg_degree());
}

TEST(Generators, RmatDeterministicPerSeed) {
  EXPECT_EQ(rmat_edges(8, 4, 1), rmat_edges(8, 4, 1));
  EXPECT_NE(rmat_edges(8, 4, 1), rmat_edges(8, 4, 2));
}

TEST(Generators, GridFullKeepProbability) {
  // keep_prob = 1: interior degree 4, corner degree 2.
  Csr g = make_undirected(25, grid2d_edges(5, 5, 1.0, 1));
  EXPECT_EQ(g.m_undirected(), 2 * 5 * 4);  // 2 * rows * (cols-1)
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(12), 4);  // center
}

TEST(Generators, GridThinningReducesEdges) {
  Csr full = make_undirected(400, grid2d_edges(20, 20, 1.0, 2));
  Csr thin = make_undirected(400, grid2d_edges(20, 20, 0.5, 2));
  EXPECT_LT(thin.m_undirected(), full.m_undirected());
  EXPECT_GT(thin.m_undirected(), 0);
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  const vid_t n = 500;
  const int attach = 3;
  Csr g = make_undirected(n, barabasi_albert_edges(n, attach, 4));
  // Seed clique + ~attach edges per later vertex (dedup can only drop a few).
  EXPECT_GE(g.m_undirected(), static_cast<eid_t>((n - attach - 1) * attach));
  EXPECT_EQ(count_components(g), 1);  // attachment keeps it connected
  EXPECT_GT(g.max_degree(), 3 * g.avg_degree());  // hubs exist
}

TEST(Generators, WattsStrogatzRegularAtBetaZero) {
  Csr g = make_undirected(100, watts_strogatz_edges(100, 3, 0.0, 5));
  for (vid_t v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 6);
}

TEST(Stats, PathDiameterAndComponents) {
  Csr g = make_undirected(50, path_edges(50));
  EXPECT_EQ(pseudo_diameter(g), 49);
  EXPECT_EQ(count_components(g), 1);
}

TEST(Stats, CycleDiameter) {
  Csr g = make_undirected(64, cycle_edges(64));
  EXPECT_EQ(pseudo_diameter(g), 32);
}

TEST(Stats, StarDiameter) {
  Csr g = make_undirected(65, star_edges(65));
  EXPECT_EQ(pseudo_diameter(g), 2);
}

TEST(Stats, ComponentsAndIds) {
  EdgeList edges = {{0, 1, 1.f}, {2, 3, 1.f}};
  Csr g = make_undirected(6, edges);  // vertices 4, 5 isolated
  EXPECT_EQ(count_components(g), 4);
  const auto ids = component_ids(g);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[2], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
  EXPECT_NE(ids[4], ids[5]);
}

TEST(Stats, DegreeHistogramSumsToN) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const auto hist = degree_histogram(g);
    const eid_t total = std::accumulate(hist.begin(), hist.end(), eid_t{0});
    EXPECT_EQ(total, g.n()) << name;
  }
}

TEST(Stats, ComputeStatsConsistency) {
  Csr g = make_undirected(144, grid2d_edges(12, 12, 1.0, 7));
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.n, 144);
  EXPECT_EQ(s.m_undirected, g.m_undirected());
  EXPECT_EQ(s.components, 1);
  EXPECT_EQ(s.pseudo_diameter, 22);  // (12-1) + (12-1)
}

TEST(Io, EdgeListRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pp_edges.txt";
  Csr g = make_undirected_weighted(30, erdos_renyi_edges(30, 60, 21), 1.f, 5.f, 22);
  write_edge_list(path, g);
  vid_t n = 0;
  EdgeList edges = read_edge_list(path, &n);
  EXPECT_EQ(n, 30);
  BuildOptions opts;
  opts.symmetrize = false;  // the file already stores both directions
  opts.keep_weights = true;
  Csr h = build_csr(n, std::move(edges), opts);
  EXPECT_EQ(h.adj(), g.adj());
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.weight_array(), g.weight_array());
  std::filesystem::remove(path);
}

TEST(Io, BinaryRoundTripPreservesEverything) {
  const std::string path = ::testing::TempDir() + "/pp_graph.bin";
  Csr g = make_undirected_weighted(64, rmat_edges(6, 6, 8), 1.f, 9.f, 23);
  write_csr_binary(path, g);
  Csr h = read_csr_binary(path);
  EXPECT_EQ(h.n(), g.n());
  EXPECT_EQ(h.adj(), g.adj());
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.weight_array(), g.weight_array());
  std::filesystem::remove(path);
}

TEST(Io, DigraphBinaryRoundTripUnweighted) {
  const std::string path = ::testing::TempDir() + "/pp_digraph.bin";
  const Digraph g = build_digraph(64, rmat_edges(6, 6, 29));
  write_digraph_binary(path, g);
  const Digraph h = read_digraph_binary(path);
  EXPECT_EQ(h.out.adj(), g.out.adj());
  EXPECT_EQ(h.out.offsets(), g.out.offsets());
  EXPECT_EQ(h.in.adj(), g.in.adj());
  EXPECT_EQ(h.in.offsets(), g.in.offsets());
  EXPECT_FALSE(h.out.has_weights());
  std::filesystem::remove(path);
}

TEST(Io, DigraphBinaryRoundTripWeighted) {
  const std::string path = ::testing::TempDir() + "/pp_digraph_w.bin";
  const Digraph g = build_digraph(
      48, with_uniform_weights(erdos_renyi_edges(48, 150, 31), 1.f, 7.f, 33),
      /*keep_weights=*/true);
  write_digraph_binary(path, g);
  const Digraph h = read_digraph_binary(path);
  EXPECT_EQ(h.out.adj(), g.out.adj());
  EXPECT_EQ(h.out.weight_array(), g.out.weight_array());
  EXPECT_EQ(h.in.adj(), g.in.adj());
  EXPECT_EQ(h.in.weight_array(), g.in.weight_array());
  std::filesystem::remove(path);
}

TEST(Io, DigraphBinaryRejectsWrongMagic) {
  // A symmetric CSR binary must not parse as a digraph binary (and vice
  // versa) — the magics are distinct on purpose.
  const std::string csr_path = ::testing::TempDir() + "/pp_not_digraph.bin";
  write_csr_binary(csr_path, make_undirected(10, path_edges(10)));
  EXPECT_DEATH(read_digraph_binary(csr_path), "not a digraph binary");
  const std::string dig_path = ::testing::TempDir() + "/pp_not_csr.bin";
  write_digraph_binary(dig_path, build_digraph(10, path_edges(10)));
  EXPECT_DEATH(read_csr_binary(dig_path), "not a pushpull CSR binary");
  std::filesystem::remove(csr_path);
  std::filesystem::remove(dig_path);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/pp_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# header comment\n\n0 1\n# mid comment\n1 2 2.5\n", f);
  std::fclose(f);
  vid_t n = 0;
  EdgeList edges = read_edge_list(path, &n);
  EXPECT_EQ(n, 3);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1].w, 2.5f);
  std::filesystem::remove(path);
}

TEST(Analogs, AllFiveBuildAndMatchRegimes) {
  // Scaled down one notch to keep the test fast.
  const Csr orc = orc_analog(-2);
  const Csr rca = rca_analog(-2);
  const Csr am = am_analog(-2);
  // Social analog: dense and skewed.
  EXPECT_GT(orc.avg_degree(), 15.0);
  EXPECT_GT(orc.max_degree(), 8 * orc.avg_degree());
  // Road analog: sparse, huge diameter relative to social.
  EXPECT_LT(rca.avg_degree(), 4.0);
  EXPECT_GT(pseudo_diameter(rca), 20 * pseudo_diameter(orc));
  // Purchase analog: low degree, hubby.
  EXPECT_LT(am.avg_degree(), 8.0);
  EXPECT_GT(am.max_degree(), 10 * am.avg_degree());
}

TEST(Analogs, NamesResolve) {
  for (const auto& name : analog_names()) {
    const Csr g = analog_by_name(name, -3);
    EXPECT_GT(g.n(), 0) << name;
    EXPECT_TRUE(is_symmetric(g)) << name;
  }
  EXPECT_DEATH(analog_by_name("nope"), "unknown analog");
}

TEST(Analogs, WeightedVariantHasWeights) {
  const Csr g = pok_analog(-3, /*weighted=*/true);
  EXPECT_TRUE(g.has_weights());
  for (vid_t v = 0; v < std::min<vid_t>(g.n(), 100); ++v) {
    for (weight_t w : g.weights(v)) {
      EXPECT_GE(w, 1.0f);
      EXPECT_LT(w, 64.0f);
    }
  }
}

}  // namespace
}  // namespace pushpull
