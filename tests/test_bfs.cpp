#include <gtest/gtest.h>
#include <omp.h>

#include "core/baselines/baselines.hpp"
#include "core/bfs.hpp"
#include "graph_zoo.hpp"
#include "la/algorithms.hpp"

namespace pushpull {
namespace {

using BfsParam = std::tuple<int, int>;

void expect_distances_match(const std::vector<vid_t>& got,
                            const std::vector<vid_t>& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v], want[v]) << label << " vertex " << v;
  }
}

class BfsEquivalence : public ::testing::TestWithParam<BfsParam> {};

TEST_P(BfsEquivalence, AllVariantsMatchSequentialDistances) {
  const auto& zoo = testing::unweighted_zoo();
  const auto& [gi, threads] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(threads);

  const vid_t root = 0;
  const auto ref = baseline::bfs(g, root);

  const BfsResult push = bfs_push(g, root);
  const BfsResult pull = bfs_pull(g, root);
  const BfsResult diropt = bfs_direction_optimizing(g, root);
  const auto la = la::bfs_la(g, root, Direction::Push);
  const auto la_pull = la::bfs_la(g, root, Direction::Pull);

  expect_distances_match(push.dist, ref.dist, name + "/push");
  expect_distances_match(pull.dist, ref.dist, name + "/pull");
  expect_distances_match(diropt.dist, ref.dist, name + "/diropt");
  expect_distances_match(la, ref.dist, name + "/la_push");
  expect_distances_match(la_pull, ref.dist, name + "/la_pull");

  EXPECT_TRUE(validate_bfs(g, root, push)) << name;
  EXPECT_TRUE(validate_bfs(g, root, pull)) << name;
  EXPECT_TRUE(validate_bfs(g, root, diropt)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, BfsEquivalence,
    ::testing::Combine(::testing::Range(0, 14), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<BfsParam>& info) {
      return pushpull::testing::unweighted_zoo()[std::get<0>(info.param)].name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Bfs, LevelsEqualEccentricityPlusOne) {
  Csr g = make_undirected(50, path_edges(50));
  const BfsResult r = bfs_push(g, 0);
  // 50 frontiers are processed: {0}, {1}, ..., {49}.
  EXPECT_EQ(r.levels, 50);
  EXPECT_EQ(r.dist[49], 49);
}

TEST(Bfs, UnreachableVerticesStayInvalid) {
  Csr g = make_undirected(8, EdgeList{Edge{0, 1, 1.0f}, Edge{2, 3, 1.0f}});
  for (const BfsResult& r : {bfs_push(g, 0), bfs_pull(g, 0)}) {
    EXPECT_EQ(r.dist[2], -1);
    EXPECT_EQ(r.dist[3], -1);
    EXPECT_EQ(r.parent[2], -1);
    EXPECT_EQ(r.dist[1], 1);
  }
}

TEST(Bfs, RootFromEveryComponent) {
  const auto& zoo = testing::unweighted_zoo();
  const Csr& g = zoo[12].graph;  // two_components
  const auto ref20 = baseline::bfs(g, 25);
  const BfsResult push = bfs_push(g, 25);
  expect_distances_match(push.dist, ref20.dist, "two_components root 25");
}

TEST(Bfs, ParentEdgesFormTree) {
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  const BfsResult r = bfs_push(g, 0);
  // Every reachable non-root vertex has a parent one level up; count edges.
  vid_t reachable = 0, tree_edges = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (r.dist[static_cast<std::size_t>(v)] >= 0) ++reachable;
    if (r.parent[static_cast<std::size_t>(v)] >= 0) ++tree_edges;
  }
  EXPECT_EQ(tree_edges, reachable - 1);
}

TEST(Bfs, PushRecordsPushDirections) {
  Csr g = make_undirected(50, path_edges(50));
  const BfsResult r = bfs_push(g, 0);
  for (Direction d : r.level_dirs) EXPECT_EQ(d, Direction::Push);
  EXPECT_EQ(r.level_times.size(), static_cast<std::size_t>(r.levels));
}

TEST(DirectionOptimizing, SwitchesToPullOnDenseGraph) {
  // On a complete graph the first frontier already covers all edges: the
  // controller must flip to bottom-up immediately after level 1.
  Csr g = make_undirected(64, complete_edges(64));
  const BfsResult r = bfs_direction_optimizing(g, 0, {.alpha = 14.0, .beta = 1e9});
  ASSERT_GE(r.level_dirs.size(), 2u);
  EXPECT_EQ(r.level_dirs[0], Direction::Push);
  EXPECT_EQ(r.level_dirs[1], Direction::Pull);
}

TEST(DirectionOptimizing, StaysPushOnPath) {
  // Frontier size is always 1: never worth switching.
  Csr g = make_undirected(50, path_edges(50));
  const BfsResult r = bfs_direction_optimizing(g, 0);
  for (Direction d : r.level_dirs) EXPECT_EQ(d, Direction::Push);
}

TEST(DirectionOptimizing, SwitchesBackToPushWhenFrontierShrinks) {
  // Star from a leaf: level 1 = hub (push), level 2 = all other leaves
  // (big frontier → pull), then the frontier dies out.
  Csr g = make_undirected(1025, star_edges(1025));
  const BfsResult r =
      bfs_direction_optimizing(g, 1, {.alpha = 1.5, .beta = 4.0});
  ASSERT_EQ(r.dist[0], 1);
  ASSERT_EQ(r.dist[2], 2);
  // Frontiers processed: {1}, {hub}, {all other leaves}.
  EXPECT_EQ(r.levels, 3);
}

TEST(ValidateBfs, RejectsCorruptedResults) {
  Csr g = make_undirected(10, path_edges(10));
  BfsResult r = bfs_push(g, 0);
  ASSERT_TRUE(validate_bfs(g, 0, r));
  BfsResult bad = r;
  bad.dist[5] = 99;  // level skip
  EXPECT_FALSE(validate_bfs(g, 0, bad));
  bad = r;
  bad.parent[3] = 7;  // not a neighbor
  EXPECT_FALSE(validate_bfs(g, 0, bad));
  bad = r;
  bad.dist[0] = 1;  // root must be level 0
  EXPECT_FALSE(validate_bfs(g, 0, bad));
}

}  // namespace
}  // namespace pushpull
