// Property-based fuzzing: for a stream of seeded random graphs spanning all
// generator families, every push/pull/abstraction variant of every algorithm
// must agree with its oracle, and all structural invariants must hold.
// These tests catch interaction bugs the targeted suites miss (odd component
// structures, duplicate-heavy edge lists, degree-1 chains, ...).
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <numeric>

#include "core/baselines/baselines.hpp"
#include "core/bc.hpp"
#include "core/bfs.hpp"
#include "core/coloring.hpp"
#include "core/mst_boruvka.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "core/triangle_count.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "la/algorithms.hpp"
#include "util/rng.hpp"

namespace pushpull {
namespace {

// Deterministic random graph from a seed, cycling through families and
// mixing in degenerate features (duplicates, isolated vertices).
Csr fuzz_graph(std::uint64_t seed, bool weighted) {
  Rng rng(seed);
  const int family = static_cast<int>(rng.next_below(5));
  const vid_t n = 32 + static_cast<vid_t>(rng.next_below(200));
  EdgeList edges;
  switch (family) {
    case 0:
      edges = erdos_renyi_edges(n, static_cast<eid_t>(n) * (1 + rng.next_below(4)),
                                rng.next());
      break;
    case 1:
      edges = rmat_edges(8, 1 + static_cast<int>(rng.next_below(6)), rng.next());
      break;
    case 2:
      edges = barabasi_albert_edges(n, 1 + static_cast<int>(rng.next_below(3)),
                                    rng.next());
      break;
    case 3:
      edges = grid2d_edges(4 + static_cast<vid_t>(rng.next_below(12)),
                           4 + static_cast<vid_t>(rng.next_below(12)),
                           0.4 + 0.6 * rng.next_double(), rng.next());
      break;
    default:
      edges = watts_strogatz_edges(n, 2, rng.next_double(), rng.next());
      break;
  }
  // Inject duplicates to stress the builder.
  const std::size_t original = edges.size();
  for (std::size_t i = 0; i < original / 10 + 1 && !edges.empty(); ++i) {
    edges.push_back(edges[rng.next_below(edges.size())]);
  }
  vid_t max_v = 0;
  for (const Edge& e : edges) max_v = std::max({max_v, e.u, e.v});
  const vid_t nn = max_v + 1 + static_cast<vid_t>(rng.next_below(4));  // isolated tail
  if (weighted) {
    return make_undirected_weighted(nn, std::move(edges), 0.5f, 20.0f, rng.next());
  }
  return make_undirected(nn, std::move(edges));
}

class Fuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { omp_set_num_threads(1 + GetParam() % 4); }
};

TEST_P(Fuzz, PageRankInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 7919 + 1, false);
  PageRankOptions opt;
  opt.iterations = 12;
  const auto seq = pagerank_seq(g, opt);
  const auto push = pagerank_push(g, opt);
  const auto pull = pagerank_pull(g, opt);
  double mass = 0;
  for (std::size_t v = 0; v < seq.size(); ++v) {
    EXPECT_NEAR(push[v], seq[v], 1e-9);
    EXPECT_NEAR(pull[v], seq[v], 1e-12);
    EXPECT_GT(seq[v], 0.0);  // every vertex keeps positive rank
    mass += seq[v];
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST_P(Fuzz, TraversalInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 104729 + 2, false);
  const auto ref = baseline::bfs(g, 0);
  const BfsResult push = bfs_push(g, 0);
  const BfsResult pull = bfs_pull(g, 0);
  const BfsResult diropt = bfs_direction_optimizing(g, 0);
  EXPECT_EQ(push.dist, ref.dist);
  EXPECT_EQ(pull.dist, ref.dist);
  EXPECT_EQ(diropt.dist, ref.dist);
  EXPECT_TRUE(validate_bfs(g, 0, push));
  EXPECT_TRUE(validate_bfs(g, 0, diropt));
  EXPECT_EQ(la::bfs_la(g, 0, Direction::Push), ref.dist);
}

TEST_P(Fuzz, TriangleInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 1299709 + 3, false);
  const auto pull = triangle_count_pull(g);
  const auto fast = triangle_count_fast(g);
  EXPECT_EQ(pull, fast);
  // Total divisible by 3 and bounded by C(d(v), 2) per vertex.
  std::int64_t total = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    const std::int64_t d = g.degree(v);
    EXPECT_LE(pull[static_cast<std::size_t>(v)], d * (d - 1) / 2);
    total += pull[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(total % 3, 0);
}

TEST_P(Fuzz, SsspInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 15485863 + 4, true);
  const auto ref = baseline::dijkstra(g, 0);
  const weight_t delta = static_cast<weight_t>(1 + (GetParam() % 5) * 7);
  const auto push = sssp_delta_push(g, 0, delta);
  const auto pull = sssp_delta_pull(g, 0, delta);
  for (std::size_t v = 0; v < ref.size(); ++v) {
    if (std::isinf(ref[v])) {
      EXPECT_TRUE(std::isinf(push.dist[v]));
      EXPECT_TRUE(std::isinf(pull.dist[v]));
    } else {
      EXPECT_NEAR(push.dist[v], ref[v], 1e-3);
      EXPECT_NEAR(pull.dist[v], ref[v], 1e-3);
    }
  }
  // Triangle inequality along every edge.
  for (vid_t v = 0; v < g.n(); ++v) {
    if (std::isinf(push.dist[static_cast<std::size_t>(v)])) continue;
    const auto nb = g.neighbors(v);
    const auto w = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_LE(push.dist[static_cast<std::size_t>(nb[i])],
                push.dist[static_cast<std::size_t>(v)] + w[i] + 1e-3f);
    }
  }
}

TEST_P(Fuzz, ColoringInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 32452843 + 5, false);
  ColoringOptions opt;
  opt.max_iterations = 300;
  EXPECT_TRUE(baseline::is_proper_coloring(g, boman_color_push(g, opt).color));
  EXPECT_TRUE(baseline::is_proper_coloring(g, boman_color_pull(g, opt).color));
  ColoringOptions open;
  open.max_iterations = 8 * g.n() + 16;
  EXPECT_TRUE(baseline::is_proper_coloring(g, grs_color(g, open).color));
  EXPECT_TRUE(baseline::is_proper_coloring(g, cr_color(g, opt).color));
}

TEST_P(Fuzz, MstInvariants) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 49979687 + 6, true);
  const double want = baseline::kruskal_msf_weight(g);
  const BoruvkaResult push = mst_boruvka_push(g);
  const BoruvkaResult pull = mst_boruvka_pull(g);
  EXPECT_NEAR(push.total_weight, want, 1e-2);
  EXPECT_NEAR(pull.total_weight, want, 1e-2);
  EXPECT_EQ(static_cast<vid_t>(push.tree_edges.size()), g.n() - count_components(g));
}

TEST_P(Fuzz, BcPushPullAgree) {
  const Csr g = fuzz_graph(static_cast<std::uint64_t>(GetParam()) * 67867967 + 7, false);
  BcOptions a;
  a.sources = {0, g.n() / 2, g.n() - 1};
  a.forward = Direction::Push;
  a.backward = Direction::Push;
  BcOptions b = a;
  b.forward = Direction::Pull;
  b.backward = Direction::Pull;
  const auto ra = betweenness_centrality(g, a);
  const auto rb = betweenness_centrality(g, b);
  for (std::size_t v = 0; v < ra.bc.size(); ++v) {
    EXPECT_NEAR(ra.bc[v], rb.bc[v], 1e-6 * (1.0 + std::abs(ra.bc[v])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pushpull
