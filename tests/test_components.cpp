// The two algorithms written against the engine abstraction alone: connected
// components (label propagation, §5 strategies as policies) and k-core
// decomposition (peeling). Both are validated against independent sequential
// baselines across the zoo × every applicable policy.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "core/baselines/union_find.hpp"
#include "core/connected_components.hpp"
#include "core/kcore.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

// Union-find reference: comp[v] = smallest id in v's component.
std::vector<vid_t> cc_reference(const Csr& g) {
  UnionFind uf(g.n());
  for (vid_t v = 0; v < g.n(); ++v) {
    for (vid_t u : g.neighbors(v)) uf.unite(v, u);
  }
  std::vector<vid_t> smallest(static_cast<std::size_t>(g.n()), -1);
  for (vid_t v = 0; v < g.n(); ++v) {
    const vid_t r = uf.find(v);
    if (smallest[static_cast<std::size_t>(r)] == -1) {
      smallest[static_cast<std::size_t>(r)] = v;  // v ascending → first is min
    }
  }
  std::vector<vid_t> comp(static_cast<std::size_t>(g.n()));
  for (vid_t v = 0; v < g.n(); ++v) {
    comp[static_cast<std::size_t>(v)] = smallest[static_cast<std::size_t>(uf.find(v))];
  }
  return comp;
}

// Textbook sequential peeling: remove the minimum-residual-degree vertex; its
// coreness is the running maximum of removal degrees. O(n²), zoo-sized only.
std::vector<vid_t> kcore_reference(const Csr& g) {
  const vid_t n = g.n();
  std::vector<vid_t> deg(static_cast<std::size_t>(n));
  std::vector<vid_t> core(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> removed(static_cast<std::size_t>(n), 0);
  for (vid_t v = 0; v < n; ++v) deg[static_cast<std::size_t>(v)] = g.degree(v);
  vid_t k = 0;
  for (vid_t removed_count = 0; removed_count < n; ++removed_count) {
    vid_t best = -1;
    for (vid_t v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (best == -1 || deg[static_cast<std::size_t>(v)] < deg[static_cast<std::size_t>(best)]) {
        best = v;
      }
    }
    k = std::max(k, deg[static_cast<std::size_t>(best)]);
    core[static_cast<std::size_t>(best)] = k;
    removed[static_cast<std::size_t>(best)] = 1;
    for (vid_t u : g.neighbors(best)) {
      if (!removed[static_cast<std::size_t>(u)]) --deg[static_cast<std::size_t>(u)];
    }
  }
  return core;
}

TEST(ConnectedComponents, AllPoliciesMatchUnionFindOnZoo) {
  using engine::StrategyKind;
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const std::vector<vid_t> ref = cc_reference(g);
    for (StrategyKind k :
         {StrategyKind::StaticPush, StrategyKind::StaticPull,
          StrategyKind::FrontierExploit, StrategyKind::GenericSwitch,
          StrategyKind::GreedySwitch}) {
      CcOptions opt;
      opt.strategy = k;
      const CcResult r = connected_components(g, opt);
      ASSERT_EQ(r.comp.size(), ref.size()) << name;
      for (std::size_t v = 0; v < ref.size(); ++v) {
        ASSERT_EQ(r.comp[v], ref[v])
            << name << "/" << engine::to_string(k) << " v" << v;
      }
      EXPECT_GT(r.rounds, 0) << name;
    }
  }
}

TEST(ConnectedComponents, GreedySwitchRunsTheSequentialTail) {
  // A path wired so the minimum label (vertex 0) sits at the far end of the
  // sweep order: in-place min propagation (Gauss-Seidel along ascending ids)
  // moves label 0 only a couple of hops per round, so the frontier shrinks to
  // a trickle for hundreds of rounds. GrS must bail into the sequential tail
  // instead of grinding them out; FE grinds.
  constexpr vid_t n = 400;
  EdgeList edges{Edge{0, n - 1, 1.0f}};
  for (vid_t v = 1; v + 1 < n; ++v) edges.push_back(Edge{v, static_cast<vid_t>(v + 1), 1.0f});
  Csr g = make_undirected(n, edges);
  CcOptions grs;
  grs.strategy = engine::StrategyKind::GreedySwitch;
  grs.grs_threshold = 0.25;
  const CcResult r = connected_components(g, grs);
  EXPECT_EQ(r.sequential_tail_rounds, 1);
  CcOptions fe;
  fe.strategy = engine::StrategyKind::FrontierExploit;
  const CcResult rfe = connected_components(g, fe);
  EXPECT_EQ(rfe.sequential_tail_rounds, 0);
  EXPECT_LT(r.rounds, rfe.rounds);
  for (std::size_t v = 0; v < r.comp.size(); ++v) EXPECT_EQ(r.comp[v], 0);
}

TEST(ConnectedComponents, DisconnectedAndIsolatedVertices) {
  const auto& zoo = testing::unweighted_zoo();
  for (const char* want : {"two_components", "isolated"}) {
    const auto it = std::find_if(zoo.begin(), zoo.end(),
                                 [&](const auto& e) { return e.name == want; });
    ASSERT_NE(it, zoo.end());
    const std::vector<vid_t> ref = cc_reference(it->graph);
    const CcResult r = connected_components(it->graph);
    for (std::size_t v = 0; v < ref.size(); ++v) EXPECT_EQ(r.comp[v], ref[v]);
  }
}

TEST(Kcore, MatchesSequentialPeelingOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const std::vector<vid_t> ref = kcore_reference(g);
    const KcoreResult r = kcore_decomposition(g);
    ASSERT_EQ(r.core.size(), ref.size()) << name;
    for (std::size_t v = 0; v < ref.size(); ++v) {
      ASSERT_EQ(r.core[v], ref[v]) << name << " v" << v;
    }
    EXPECT_EQ(r.max_core, *std::max_element(ref.begin(), ref.end())) << name;
  }
}

TEST(Kcore, KnownShapes) {
  // A clique of k+1 vertices is a k-core.
  const KcoreResult clique = kcore_decomposition(make_undirected(8, complete_edges(8)));
  for (vid_t c : clique.core) EXPECT_EQ(c, 7);
  EXPECT_EQ(clique.max_core, 7);
  // A tree is 1-degenerate.
  const KcoreResult tree = kcore_decomposition(make_undirected(63, binary_tree_edges(6)));
  EXPECT_EQ(tree.max_core, 1);
  // A cycle is its own 2-core.
  const KcoreResult cyc = kcore_decomposition(make_undirected(16, cycle_edges(16)));
  for (vid_t c : cyc.core) EXPECT_EQ(c, 2);
}

}  // namespace
}  // namespace pushpull
