#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/partition_aware.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

TEST(Partition1D, CoversAllVerticesExactlyOnce) {
  for (vid_t n : {1, 7, 64, 1000}) {
    for (int p : {1, 2, 3, 8, 16}) {
      Partition1D part(n, p);
      vid_t covered = 0;
      for (int i = 0; i < p; ++i) {
        EXPECT_LE(part.begin(i), part.end(i));
        covered += part.part_size(i);
        for (vid_t v = part.begin(i); v < part.end(i); ++v) {
          EXPECT_EQ(part.owner(v), i);
        }
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Partition1D, MorePartsThanVertices) {
  Partition1D part(3, 8);
  std::set<int> owners;
  for (vid_t v = 0; v < 3; ++v) owners.insert(part.owner(v));
  EXPECT_EQ(owners.size(), 3u);
  vid_t covered = 0;
  for (int p = 0; p < 8; ++p) covered += part.part_size(p);
  EXPECT_EQ(covered, 3);
}

TEST(Partition1D, BlocksAreContiguousAndOrdered) {
  Partition1D part(100, 7);
  for (int p = 0; p + 1 < 7; ++p) EXPECT_EQ(part.end(p), part.begin(p + 1));
  EXPECT_EQ(part.begin(0), 0);
  EXPECT_EQ(part.end(6), 100);
}

TEST(BorderVertices, PathSplitInTwo) {
  Csr g = make_undirected(10, path_edges(10));
  Partition1D part(10, 2);
  const auto border = border_vertices(g, part);
  // Only the two endpoints of the cut edge (4,5) are border vertices.
  ASSERT_EQ(border.size(), 2u);
  EXPECT_EQ(border[0], 4);
  EXPECT_EQ(border[1], 5);
}

TEST(BorderVertices, SinglePartitionHasNoBorder) {
  Csr g = make_undirected(64, cycle_edges(64));
  Partition1D part(64, 1);
  EXPECT_TRUE(border_vertices(g, part).empty());
}

TEST(BorderVertices, CompleteGraphAllBorder) {
  Csr g = make_undirected(12, complete_edges(12));
  Partition1D part(12, 3);
  EXPECT_EQ(border_vertices(g, part).size(), 12u);
}

TEST(PartitionAware, SplitPreservesNeighborhoods) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    for (int p : {1, 2, 4}) {
      Partition1D part(g.n(), p);
      PartitionAwareCsr pa(g, part);
      ASSERT_EQ(pa.n(), g.n()) << name;
      for (vid_t v = 0; v < g.n(); ++v) {
        std::vector<vid_t> merged;
        const int owner = part.owner(v);
        for (vid_t u : pa.local_neighbors(v)) {
          EXPECT_EQ(part.owner(u), owner) << name;
          merged.push_back(u);
        }
        for (vid_t u : pa.remote_neighbors(v)) {
          EXPECT_NE(part.owner(u), owner) << name;
          merged.push_back(u);
        }
        std::sort(merged.begin(), merged.end());
        const auto nb = g.neighbors(v);
        ASSERT_TRUE(std::equal(merged.begin(), merged.end(), nb.begin(), nb.end()))
            << name << " vertex " << v;
        EXPECT_EQ(pa.degree(v), g.degree(v));
      }
    }
  }
}

TEST(PartitionAware, RepresentationIs2nPlus2m) {
  Csr g = make_undirected(100, erdos_renyi_edges(100, 400, 77));
  Partition1D part(100, 4);
  PartitionAwareCsr pa(g, part);
  // 2(n+1) offset cells + 2m adjacency cells.
  EXPECT_EQ(pa.representation_cells(),
            2 * (static_cast<std::size_t>(g.n()) + 1) +
                static_cast<std::size_t>(g.num_arcs()));
  EXPECT_EQ(pa.num_local_arcs() + pa.num_remote_arcs(), g.num_arcs());
}

TEST(PartitionAware, SinglePartitionAllLocal) {
  Csr g = make_undirected(64, cycle_edges(64));
  PartitionAwareCsr pa(g, Partition1D(64, 1));
  EXPECT_EQ(pa.num_remote_arcs(), 0);
  EXPECT_EQ(pa.num_local_arcs(), g.num_arcs());
}

TEST(PartitionAware, BipartiteSplitAllRemote) {
  // Complete bipartite with the parts exactly matching the partition blocks:
  // every edge crosses, the paper's zero-local extreme (§5).
  Csr g = make_undirected(8, complete_bipartite_edges(4, 4));
  PartitionAwareCsr pa(g, Partition1D(8, 2));
  EXPECT_EQ(pa.num_local_arcs(), 0);
  EXPECT_EQ(pa.num_remote_arcs(), g.num_arcs());
}

}  // namespace
}  // namespace pushpull
