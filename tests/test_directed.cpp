#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <numeric>
#include <queue>

#include "core/directed.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "perf/instr.hpp"

namespace pushpull {
namespace {

// Directed test graphs: keep the raw (asymmetric) arcs.
Digraph digraph_from(vid_t n, EdgeList edges) {
  return build_digraph(n, std::move(edges));
}

Digraph random_digraph(int scale, int ef, std::uint64_t seed) {
  return digraph_from(vid_t{1} << scale, rmat_edges(scale, ef, seed));
}

std::vector<vid_t> seq_directed_bfs(const Digraph& g, vid_t root) {
  std::vector<vid_t> dist(static_cast<std::size_t>(g.out.n()), -1);
  std::queue<vid_t> q;
  dist[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const vid_t v = q.front();
    q.pop();
    for (vid_t u : g.out.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

class DirectedSweep : public ::testing::TestWithParam<int> {};

TEST_P(DirectedSweep, PageRankPushPullMatchSequential) {
  omp_set_num_threads(GetParam());
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = random_digraph(9, 6, seed);
    DirectedPageRankOptions opt;
    opt.iterations = 15;
    const auto ref = pagerank_digraph_seq(g, opt);
    const auto push = pagerank_digraph(g, opt, Direction::Push);
    const auto pull = pagerank_digraph(g, opt, Direction::Pull);
    for (std::size_t v = 0; v < ref.size(); ++v) {
      EXPECT_NEAR(push[v], ref[v], 1e-10) << "seed " << seed;
      EXPECT_NEAR(pull[v], ref[v], 1e-10) << "seed " << seed;
    }
  }
}

TEST_P(DirectedSweep, BfsPushPullMatchSequential) {
  omp_set_num_threads(GetParam());
  for (std::uint64_t seed : {4ull, 5ull}) {
    const Digraph g = random_digraph(9, 4, seed);
    const auto ref = seq_directed_bfs(g, 0);
    EXPECT_EQ(bfs_digraph(g, 0, Direction::Push), ref) << "seed " << seed;
    EXPECT_EQ(bfs_digraph(g, 0, Direction::Pull), ref) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DirectedSweep, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name("t");
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(DirectedPr, MassConservation) {
  const Digraph g = random_digraph(10, 8, 77);
  DirectedPageRankOptions opt;
  opt.iterations = 30;
  const auto pr = pagerank_digraph(g, opt, Direction::Pull);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
}

TEST(DirectedPr, DirectedCycleIsUniform) {
  // 0 -> 1 -> 2 -> ... -> n-1 -> 0: stationary distribution is uniform.
  const vid_t n = 32;
  EdgeList edges;
  for (vid_t v = 0; v < n; ++v) edges.push_back(Edge{v, static_cast<vid_t>((v + 1) % n), 1.f});
  const Digraph g = digraph_from(n, edges);
  const auto pr = pagerank_digraph(g, {.iterations = 100, .damping = 0.85},
                                   Direction::Push);
  for (double r : pr) EXPECT_NEAR(r, 1.0 / n, 1e-10);
}

TEST(DirectedPr, SinkAccumulatesRank) {
  // Star pointing inward: the center out-degree is 0 (dangling), leaves all
  // point at it — center rank must exceed any leaf's.
  const vid_t n = 16;
  EdgeList edges;
  for (vid_t v = 1; v < n; ++v) edges.push_back(Edge{v, 0, 1.f});
  const Digraph g = digraph_from(n, edges);
  const auto pr = pagerank_digraph(g, {.iterations = 60, .damping = 0.85},
                                   Direction::Pull);
  for (vid_t v = 1; v < n; ++v) {
    EXPECT_GT(pr[0], pr[static_cast<std::size_t>(v)]);
  }
}

TEST(DirectedBfs, ReachabilityRespectsArcDirection) {
  // Chain 0 -> 1 -> 2; from 2 nothing is reachable.
  const Digraph g = digraph_from(3, {{0, 1, 1.f}, {1, 2, 1.f}});
  const auto from0 = bfs_digraph(g, 0, Direction::Push);
  EXPECT_EQ(from0, (std::vector<vid_t>{0, 1, 2}));
  const auto from2 = bfs_digraph(g, 2, Direction::Pull);
  EXPECT_EQ(from2, (std::vector<vid_t>{-1, -1, 0}));
}

TEST(DirectedCost, PullReadsScaleWithInDegreeStructure) {
  // §4.8: pulling iterates incoming arcs of all vertices; pushing iterates
  // outgoing arcs of the active ones. Verify the counters see the in/out
  // split: a high-in-degree sink makes pull read from it repeatedly.
  const Digraph g = random_digraph(9, 8, 11);
  PerfCounters pc(omp_get_max_threads());
  DirectedPageRankOptions opt;
  opt.iterations = 2;
  pagerank_digraph(g, opt, Direction::Pull, CountingInstr(pc));
  // One read per in-arc per iteration (plus none anywhere else).
  EXPECT_EQ(pc.total().reads,
            static_cast<std::uint64_t>(opt.iterations) *
                static_cast<std::uint64_t>(g.in.num_arcs()));
  pc.reset();
  pagerank_digraph(g, opt, Direction::Push, CountingInstr(pc));
  EXPECT_EQ(pc.total().locks,
            static_cast<std::uint64_t>(opt.iterations) *
                static_cast<std::uint64_t>(g.out.num_arcs()));
}

}  // namespace
}  // namespace pushpull
