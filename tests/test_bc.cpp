#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>

#include "core/baselines/baselines.hpp"
#include "core/bc.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

using BcParam = std::tuple<int, Direction, Direction>;

constexpr double kTol = 1e-7;

void expect_bc_match(const std::vector<double>& got,
                     const std::vector<double>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], kTol * (1.0 + std::abs(want[v])))
        << label << " vertex " << v;
  }
}

// (zoo index, forward dir, backward dir)
class BcEquivalence
    : public ::testing::TestWithParam<BcParam> {};

TEST_P(BcEquivalence, MatchesSequentialBrandes) {
  const auto& zoo = testing::unweighted_zoo();
  const auto& [gi, fwd, bwd] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(4);

  const auto ref = baseline::brandes_bc(g);
  BcOptions opt;
  opt.forward = fwd;
  opt.backward = bwd;
  const BcResult r = betweenness_centrality(g, opt);
  expect_bc_match(r.bc, ref, name);
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, BcEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 6, 8, 9, 12, 13),
                       ::testing::Values(Direction::Push, Direction::Pull),
                       ::testing::Values(Direction::Push, Direction::Pull)),
    [](const ::testing::TestParamInfo<BcParam>& info) {
      const int gi = std::get<0>(info.param);
      return pushpull::testing::unweighted_zoo()[gi].name + "_f" +
             to_string(std::get<1>(info.param)) + "_b" +
             to_string(std::get<2>(info.param));
    });

TEST(Bc, PathClosedForm) {
  // On a path 0–1–2–…–(n-1): bc(v) = v·(n-1-v).
  const vid_t n = 9;
  Csr g = make_undirected(n, path_edges(n));
  const BcResult r = betweenness_centrality(g);
  for (vid_t v = 0; v < n; ++v) {
    EXPECT_NEAR(r.bc[static_cast<std::size_t>(v)],
                static_cast<double>(v) * (n - 1 - v), kTol);
  }
}

TEST(Bc, StarClosedForm) {
  // Hub lies on every leaf pair's unique shortest path: bc = C(k,2).
  const int k = 12;
  Csr g = make_undirected(k + 1, star_edges(k + 1));
  const BcResult r = betweenness_centrality(g);
  EXPECT_NEAR(r.bc[0], k * (k - 1) / 2.0, kTol);
  for (int v = 1; v <= k; ++v) EXPECT_NEAR(r.bc[static_cast<std::size_t>(v)], 0.0, kTol);
}

TEST(Bc, CompleteGraphAllZero) {
  Csr g = make_undirected(10, complete_edges(10));
  const BcResult r = betweenness_centrality(g);
  for (double x : r.bc) EXPECT_NEAR(x, 0.0, kTol);
}

TEST(Bc, CycleUniform) {
  Csr g = make_undirected(12, cycle_edges(12));
  const BcResult r = betweenness_centrality(g);
  for (std::size_t v = 1; v < r.bc.size(); ++v) {
    EXPECT_NEAR(r.bc[v], r.bc[0], kTol);
  }
  EXPECT_GT(r.bc[0], 0.0);
}

TEST(Bc, SampledSourcesConsistentAcrossDirections) {
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  BcOptions a, b;
  a.sources = {0, 17, 101};
  b.sources = {0, 17, 101};
  a.forward = Direction::Push;
  a.backward = Direction::Push;
  b.forward = Direction::Pull;
  b.backward = Direction::Pull;
  const BcResult ra = betweenness_centrality(g, a);
  const BcResult rb = betweenness_centrality(g, b);
  expect_bc_match(ra.bc, rb.bc, "sampled push vs pull");
}

TEST(Bc, PhaseTimersPopulated) {
  Csr g = make_undirected(128, watts_strogatz_edges(128, 4, 0.1, 23));
  const BcResult r = betweenness_centrality(g);
  EXPECT_GT(r.forward_s, 0.0);
  EXPECT_GT(r.backward_s, 0.0);
}

TEST(Bc, DisconnectedGraphContributesPerComponent) {
  const auto& zoo = testing::unweighted_zoo();
  const Csr& g = zoo[12].graph;  // two_components: cycle(20) + clique(10)
  const auto ref = baseline::brandes_bc(g);
  const BcResult r = betweenness_centrality(g);
  expect_bc_match(r.bc, ref, "two_components");
  // Clique vertices have zero centrality.
  for (vid_t v = 20; v < 30; ++v) EXPECT_NEAR(r.bc[static_cast<std::size_t>(v)], 0.0, kTol);
}

}  // namespace
}  // namespace pushpull
