#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "perf/cache_sim.hpp"
#include "perf/counters.hpp"
#include "perf/instr.hpp"

namespace pushpull {
namespace {

TEST(Counters, AggregateAcrossThreads) {
  PerfCounters pc(4);
  pc.at(0).reads = 10;
  pc.at(1).reads = 5;
  pc.at(2).atomics = 3;
  pc.at(3).locks = 7;
  const CounterBlock total = pc.total();
  EXPECT_EQ(total.reads, 15u);
  EXPECT_EQ(total.atomics, 3u);
  EXPECT_EQ(total.locks, 7u);
  pc.reset();
  EXPECT_EQ(pc.total().reads, 0u);
}

TEST(CountingInstr, CountsFromParallelRegion) {
  PerfCounters pc(omp_get_max_threads());
  CountingInstr instr(pc);
  constexpr int kIters = 10000;
  int dummy = 0;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    instr.read(&dummy, sizeof(int));
    instr.write(&dummy, sizeof(int));
    instr.atomic(&dummy, sizeof(int));
    instr.lock(&dummy);
    instr.branch_cond();
    instr.branch_uncond();
  }
  const CounterBlock t = pc.total();
  EXPECT_EQ(t.reads, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(t.writes, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(t.atomics, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(t.locks, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(t.branch_cond, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(t.branch_uncond, static_cast<std::uint64_t>(kIters));
}

TEST(NullInstr, IsZeroCostInterface) {
  NullInstr instr;
  instr.read(nullptr, 8);
  instr.write(nullptr, 8);
  instr.atomic(nullptr, 8);
  instr.lock(nullptr);
  instr.branch_cond();
  instr.branch_uncond();
  instr.code_region(1);
  EXPECT_FALSE(NullInstr::kEnabled);
  SUCCEED();
}

TEST(CacheLevel, HitsAfterInstall) {
  CacheLevel l1(1024, 2, 64);  // 8 sets x 2 ways
  EXPECT_FALSE(l1.access(0));  // cold miss
  EXPECT_TRUE(l1.access(0));   // hit
}

TEST(CacheLevel, LruEvictsOldest) {
  CacheLevel l1(1024, 2, 64);  // 8 sets, 2 ways
  // Three lines mapping to the same set (stride = #sets).
  EXPECT_FALSE(l1.access(0));
  EXPECT_FALSE(l1.access(8));
  EXPECT_FALSE(l1.access(16));  // evicts line 0 (LRU)
  EXPECT_FALSE(l1.access(0));   // line 0 gone
  EXPECT_TRUE(l1.access(16));   // line 16 still resident
}

TEST(CacheLevel, AssociativityHoldsWorkingSet) {
  CacheLevel l1(1024, 2, 64);
  l1.access(0);
  l1.access(8);
  // Two-way set holds both lines; repeat hits.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(l1.access(0));
    EXPECT_TRUE(l1.access(8));
  }
}

TEST(CacheHierarchy, SequentialStreamMissesOncePerLine) {
  CacheHierarchy cache;
  std::vector<char> buf(64 * 100);
  for (std::size_t i = 0; i < buf.size(); ++i) cache.access(&buf[i], 1);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, buf.size());
  // One L1 miss per distinct 64B line (modulo the buffer's alignment: at
  // most one extra line straddle).
  EXPECT_GE(s.l1_misses, 100u);
  EXPECT_LE(s.l1_misses, 101u);
}

TEST(CacheHierarchy, RepeatedSmallWorkingSetStaysInL1) {
  CacheHierarchy cache;
  std::vector<char> buf(4096);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < buf.size(); i += 64) cache.access(&buf[i], 1);
  }
  // Only the first round misses.
  EXPECT_LE(cache.stats().l1_misses, 65u);
}

TEST(CacheHierarchy, LargeWorkingSetSpillsToL2ButNotL3) {
  CacheHierarchy cache;
  // 128 KiB: exceeds 32 KiB L1, fits 256 KiB L2.
  std::vector<char> buf(128 * 1024);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < buf.size(); i += 64) cache.access(&buf[i], 1);
  }
  const CacheStats& s = cache.stats();
  EXPECT_GT(s.l1_misses, 3 * 2048u);   // L1 thrashes on every round
  EXPECT_LE(s.l2_misses, 2100u);       // ~cold misses only
}

TEST(CacheHierarchy, AccessSpanningTwoLinesTouchesBoth) {
  CacheHierarchy cache;
  alignas(64) char buf[128];
  cache.access(buf + 60, 8);  // straddles the 64B boundary
  EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST(CacheHierarchy, DtlbMissesOncePerPage) {
  CacheHierarchy cache;
  std::vector<char> buf(4096 * 8);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < buf.size(); i += 4096) cache.access(&buf[i], 1);
  }
  // 8 pages fit the 64-entry dTLB: only cold misses.
  EXPECT_LE(cache.stats().dtlb_misses, 9u);
}

TEST(CacheHierarchy, DtlbThrashesBeyondReach) {
  CacheHierarchyConfig cfg;
  cfg.dtlb_entries = 4;
  cfg.dtlb_ways = 4;
  CacheHierarchy cache(cfg);
  std::vector<char> buf(4096 * 16);
  std::uint64_t rounds = 5;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < buf.size(); i += 4096) cache.access(&buf[i], 1);
  }
  // 16 pages > 4 entries: every access misses.
  EXPECT_GE(cache.stats().dtlb_misses, rounds * 16 - 16);
}

TEST(CacheHierarchy, ItlbCountsRegionChurn) {
  CacheHierarchyConfig cfg;
  cfg.itlb_entries = 2;
  CacheHierarchy cache(cfg);
  cache.code_region(1);
  cache.code_region(1);
  EXPECT_EQ(cache.stats().itlb_misses, 1u);  // second touch hits
  cache.code_region(2);
  cache.code_region(3);  // evicts region 1
  cache.code_region(1);
  EXPECT_GE(cache.stats().itlb_misses, 3u);
}

TEST(CacheHierarchy, ResetClearsEverything) {
  CacheHierarchy cache;
  int x = 0;
  cache.access(&x, 4);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  cache.access(&x, 4);
  EXPECT_EQ(cache.stats().l1_misses, 1u);  // cold again after reset
}

TEST(CacheSimInstr, FeedsCountersAndCache) {
  PerfCounters pc(1);
  CacheHierarchy cache;
  CacheSimInstr instr(pc, cache);
  std::vector<double> data(100);
  for (auto& d : data) instr.read(&d, sizeof(double));
  EXPECT_EQ(pc.total().reads, 100u);
  EXPECT_GT(cache.stats().accesses, 0u);
  instr.lock(&data[0]);
  EXPECT_EQ(pc.total().locks, 1u);
}

TEST(CacheSimInstr, RandomAccessMissesMoreThanSequential) {
  // The central locality effect behind Table 1: scattered reads (pull-style
  // neighbor access) miss more than streaming reads.
  std::vector<double> data(1 << 20);  // 8 MiB > L1/L2

  PerfCounters pc_seq(1);
  CacheHierarchy cache_seq;
  CacheSimInstr seq(pc_seq, cache_seq);
  for (std::size_t i = 0; i < (1 << 16); ++i) seq.read(&data[i], sizeof(double));

  PerfCounters pc_rnd(1);
  CacheHierarchy cache_rnd;
  CacheSimInstr rnd(pc_rnd, cache_rnd);
  std::uint64_t state = 12345;
  for (std::size_t i = 0; i < (1 << 16); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    rnd.read(&data[(state >> 33) % data.size()], sizeof(double));
  }

  EXPECT_GT(cache_rnd.stats().l1_misses, 2 * cache_seq.stats().l1_misses);
  EXPECT_GT(cache_rnd.stats().dtlb_misses, cache_seq.stats().dtlb_misses);
}

}  // namespace
}  // namespace pushpull
