#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>

#include "core/baselines/baselines.hpp"
#include "gas/gas.hpp"
#include "gas/programs.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

TEST(GasEngine, SsspConvergesBothDirections) {
  const auto& zoo = testing::weighted_zoo();
  for (const auto& [name, g] : zoo) {
    const auto ref = baseline::dijkstra(g, 0);
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      const auto got = gas::gas_sssp(g, 0, dir);
      ASSERT_EQ(got.size(), ref.size()) << name;
      for (std::size_t v = 0; v < got.size(); ++v) {
        if (std::isinf(ref[v])) {
          EXPECT_TRUE(std::isinf(got[v])) << name << " v" << v;
        } else {
          EXPECT_NEAR(got[v], ref[v], 1e-4) << name << " v" << v;
        }
      }
    }
  }
}

TEST(GasEngine, StatsReportIterationsAndActivations) {
  const auto& zoo = testing::weighted_zoo();
  const Csr& g = zoo[0].graph;  // w_path50
  gas::SsspProgram prog(g.n(), 0);
  const gas::GasStats stats = gas::run_gas(g, prog, Direction::Push);
  // A path needs ~n rounds for the wave to travel.
  EXPECT_GE(stats.iterations, 25);
  EXPECT_GT(stats.total_activations, g.n());
}

TEST(GasEngine, MaxIterationsBoundsWork) {
  const auto& zoo = testing::weighted_zoo();
  const Csr& g = zoo[0].graph;
  gas::SsspProgram prog(g.n(), 0);
  const gas::GasStats stats = gas::run_gas(g, prog, Direction::Pull, 3);
  EXPECT_LE(stats.iterations, 3);
}

TEST(GasColoring, ProperOnLowDegreeZoo) {
  for (int gi : {0, 1, 5, 6, 7, 11}) {
    const auto& [name, g] = testing::unweighted_zoo()[static_cast<std::size_t>(gi)];
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      const auto colors = gas::gas_coloring(g, dir);
      EXPECT_TRUE(baseline::is_proper_coloring(g, colors))
          << name << "/" << to_string(dir);
    }
  }
}

TEST(GasColoring, PathUsesFewColors) {
  Csr g = make_undirected(50, path_edges(50));
  const auto colors = gas::gas_coloring(g, Direction::Pull);
  int max_c = 0;
  for (int c : colors) max_c = std::max(max_c, c);
  EXPECT_LE(max_c, 2);  // paths are 2-colorable; engine may use 3
}

TEST(GasEngine, PushAndPullGiveSameSsspFixpoint) {
  Csr g = testing::weighted_zoo()[4].graph;  // w_rmat8
  const auto push = gas::gas_sssp(g, 0, Direction::Push);
  const auto pull = gas::gas_sssp(g, 0, Direction::Pull);
  for (std::size_t v = 0; v < push.size(); ++v) {
    if (std::isinf(push[v])) {
      EXPECT_TRUE(std::isinf(pull[v]));
    } else {
      EXPECT_NEAR(push[v], pull[v], 1e-4);
    }
  }
}

}  // namespace
}  // namespace pushpull
