#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>

#include "util/json.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pushpull {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const std::uint64_t x0 = sm.next();
  const std::uint64_t x1 = sm.next();
  EXPECT_NE(x0, x1);
}

TEST(Timer, ElapsedIsMonotone) {
  WallTimer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Timer, PhaseTimerAccumulates) {
  PhaseTimer p;
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  p.stop();
  const double first = p.total_s();
  EXPECT_GT(first, 0.0);
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  p.stop();
  EXPECT_GT(p.total_s(), first);
  p.reset();
  EXPECT_EQ(p.total_s(), 0.0);
}

TEST(Timer, ScopedPhaseAddsTime) {
  PhaseTimer p;
  { ScopedPhase scope(p); }
  EXPECT_GE(p.total_s(), 0.0);
}

TEST(Padded, ElementsOnDistinctCacheLines) {
  std::vector<Padded<int>> v(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1].value);
  EXPECT_GE(b - a, kCacheLineBytes);
  EXPECT_EQ(a % kCacheLineBytes, 0u);
}

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"Graph", "Time"});
  t.add_row({"orc", Table::num(1.5, 1)});
  t.add_row({"livejournal", Table::num(10.25, 2)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Graph"), std::string::npos);
  EXPECT_NE(s.find("livejournal"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("10.25"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("plain-key_1.2/path"), "plain-key_1.2/path");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("C:\\graphs\\orc.el"), "C:\\\\graphs\\\\orc.el");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("\b\f"), "\\b\\f");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("x\x1f", 2)), "x\\u001f");
}

TEST(JsonEscape, LeavesNonAsciiBytesAlone) {
  // UTF-8 passes through untouched: JSON strings are Unicode.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Table, CountInsertsThousandsSeparators) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(999), "999");
  EXPECT_EQ(Table::count(1000), "1,000");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
  EXPECT_EQ(Table::count(1000000000ull), "1,000,000,000");
}

}  // namespace
}  // namespace pushpull
