// Shared corpus of small graphs for correctness tests: deterministic shapes
// with known analytic properties plus seeded random graphs from every
// generator family. All are undirected CSRs with sorted adjacency.
#pragma once

#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace pushpull::testing {

struct ZooEntry {
  std::string name;
  Csr graph;
};

namespace detail {

// Unweighted zoo: covers degenerate shapes, regular structures, skewed and
// flat random graphs, and a disconnected case.
inline std::vector<ZooEntry> build_unweighted_zoo() {
  std::vector<ZooEntry> zoo;
  zoo.push_back({"path50", make_undirected(50, path_edges(50))});
  zoo.push_back({"cycle64", make_undirected(64, cycle_edges(64))});
  zoo.push_back({"star65", make_undirected(65, star_edges(65))});
  zoo.push_back({"complete24", make_undirected(24, complete_edges(24))});
  zoo.push_back({"bipartite10x12", make_undirected(22, complete_bipartite_edges(10, 12))});
  zoo.push_back({"tree6", make_undirected(63, binary_tree_edges(6))});
  zoo.push_back({"grid12x12", make_undirected(144, grid2d_edges(12, 12, 1.0, 7))});
  zoo.push_back({"grid_thin", make_undirected(240, grid2d_edges(12, 20, 0.7, 11))});
  zoo.push_back({"er200", make_undirected(200, erdos_renyi_edges(200, 800, 13))});
  zoo.push_back({"rmat8", make_undirected(256, rmat_edges(8, 8, 17))});
  zoo.push_back({"ba300", make_undirected(300, barabasi_albert_edges(300, 3, 19))});
  zoo.push_back({"ws128", make_undirected(128, watts_strogatz_edges(128, 4, 0.1, 23))});
  {
    // Two components: a cycle and a clique, no edges between them.
    EdgeList edges = cycle_edges(20);
    for (const Edge& e : complete_edges(10)) {
      edges.push_back(Edge{static_cast<vid_t>(e.u + 20), static_cast<vid_t>(e.v + 20), 1.0f});
    }
    zoo.push_back({"two_components", make_undirected(30, edges)});
  }
  zoo.push_back({"isolated", make_undirected(8, EdgeList{Edge{0, 1, 1.0f}, Edge{2, 3, 1.0f}})});
  return zoo;
}

// Weighted zoo: same structures with seeded uniform weights in [1, 10), plus
// an all-equal-weights case (ties stress MST/SSSP determinism).
inline std::vector<ZooEntry> build_weighted_zoo() {
  std::vector<ZooEntry> zoo;
  auto weighted = [](vid_t n, EdgeList edges, std::uint64_t seed) {
    return make_undirected_weighted(n, std::move(edges), 1.0f, 10.0f, seed);
  };
  zoo.push_back({"w_path50", weighted(50, path_edges(50), 31)});
  zoo.push_back({"w_cycle64", weighted(64, cycle_edges(64), 37)});
  zoo.push_back({"w_grid12x12", weighted(144, grid2d_edges(12, 12, 1.0, 7), 41)});
  zoo.push_back({"w_er200", weighted(200, erdos_renyi_edges(200, 800, 13), 43)});
  zoo.push_back({"w_rmat8", weighted(256, rmat_edges(8, 8, 17), 47)});
  zoo.push_back({"w_ba300", weighted(300, barabasi_albert_edges(300, 3, 19), 53)});
  {
    // All weights equal: exercises tie-breaking.
    BuildOptions opts;
    opts.keep_weights = true;
    zoo.push_back({"w_ties_er", build_csr(150, erdos_renyi_edges(150, 600, 59), opts)});
  }
  {
    BuildOptions opts;
    opts.keep_weights = true;
    zoo.push_back({"w_ties_grid", build_csr(100, grid2d_edges(10, 10, 1.0, 61), opts)});
  }
  return zoo;
}

}  // namespace detail

// Cached accessors: references stay valid for the whole test run, so tests
// may bind references to individual entries.
inline const std::vector<ZooEntry>& unweighted_zoo() {
  static const std::vector<ZooEntry> zoo = detail::build_unweighted_zoo();
  return zoo;
}

inline const std::vector<ZooEntry>& weighted_zoo() {
  static const std::vector<ZooEntry> zoo = detail::build_weighted_zoo();
  return zoo;
}

}  // namespace pushpull::testing
