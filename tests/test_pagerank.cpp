#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <numeric>

#include "core/pagerank.hpp"
#include "graph/partition_aware.hpp"
#include "graph_zoo.hpp"
#include "la/algorithms.hpp"

namespace pushpull {
namespace {

using PrParam = std::tuple<int, int>;

constexpr double kTol = 1e-9;

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

// Parameterized over (zoo graph index, thread count).
class PageRankEquivalence
    : public ::testing::TestWithParam<PrParam> {};

TEST_P(PageRankEquivalence, AllVariantsMatchSequential) {
  const auto& zoo = testing::unweighted_zoo();
  const auto& [gi, threads] = GetParam();
  const Csr& g = zoo[static_cast<std::size_t>(gi)].graph;
  omp_set_num_threads(threads);

  PageRankOptions opt;
  opt.iterations = 15;
  const auto ref = pagerank_seq(g, opt);
  const auto pull = pagerank_pull(g, opt);
  const auto push = pagerank_push(g, opt);
  PartitionAwareCsr pa(g, Partition1D(g.n(), threads));
  const auto push_pa = pagerank_push_pa(g, pa, opt);
  const auto la_pull = la::pagerank_la(g, opt.iterations, opt.damping, Direction::Pull);
  const auto la_push = la::pagerank_la(g, opt.iterations, opt.damping, Direction::Push);

  EXPECT_LT(max_abs_diff(pull, ref), kTol) << zoo[gi].name;
  EXPECT_LT(max_abs_diff(push, ref), kTol) << zoo[gi].name;
  EXPECT_LT(max_abs_diff(push_pa, ref), kTol) << zoo[gi].name;
  EXPECT_LT(max_abs_diff(la_pull, ref), kTol) << zoo[gi].name;
  EXPECT_LT(max_abs_diff(la_push, ref), kTol) << zoo[gi].name;
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, PageRankEquivalence,
    ::testing::Combine(::testing::Range(0, 14), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<PrParam>& info) {
      return pushpull::testing::unweighted_zoo()[std::get<0>(info.param)].name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(PageRank, MassConservation) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    PageRankOptions opt;
    opt.iterations = 30;
    const auto pr = pagerank_pull(g, opt);
    const double mass = std::accumulate(pr.begin(), pr.end(), 0.0);
    EXPECT_NEAR(mass, 1.0, 1e-9) << name;
  }
}

TEST(PageRank, UniformOnRegularGraphs) {
  // On a d-regular graph PageRank is exactly uniform.
  Csr cycle = make_undirected(64, cycle_edges(64));
  const auto pr = pagerank_pull(cycle, {.iterations = 40, .damping = 0.85});
  for (double r : pr) EXPECT_NEAR(r, 1.0 / 64, 1e-12);

  Csr complete = make_undirected(24, complete_edges(24));
  const auto pr2 = pagerank_push(complete, {.iterations = 40, .damping = 0.85});
  for (double r : pr2) EXPECT_NEAR(r, 1.0 / 24, 1e-12);
}

TEST(PageRank, StarHubAnalyticValue) {
  // Star with k leaves: closed form from the stationary equations.
  const int k = 32;
  const double f = 0.85;
  Csr g = make_undirected(k + 1, star_edges(k + 1));
  const auto pr = pagerank_pull(g, {.iterations = 200, .damping = f});
  const double n = k + 1;
  // Fixpoint of hub = (1-f)/n + f·k·leaf and leaf = (1-f)/n + f·hub/k
  // resolves to hub = (1 + f·k) / (n·(1 + f)).
  const double hub = (1 + f * k) / (n * (1 + f));
  EXPECT_NEAR(pr[0], hub, 1e-9);
  for (int v = 1; v <= k; ++v) {
    EXPECT_NEAR(pr[static_cast<std::size_t>(v)], (1.0 - pr[0]) / k, 1e-9);
  }
}

TEST(PageRank, HubOutranksLeaves) {
  Csr g = make_undirected(300, barabasi_albert_edges(300, 3, 19));
  const auto pr = pagerank_pull(g, {.iterations = 50, .damping = 0.85});
  vid_t hub = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  vid_t leaf = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) < g.degree(leaf)) leaf = v;
  }
  EXPECT_GT(pr[static_cast<std::size_t>(hub)], pr[static_cast<std::size_t>(leaf)]);
}

TEST(PageRank, DanglingVerticesKeepMass) {
  // Graph with isolated vertices: mass must still sum to 1.
  Csr g = make_undirected(8, EdgeList{Edge{0, 1, 1.0f}, Edge{2, 3, 1.0f}});
  const auto pr = pagerank_pull(g, {.iterations = 25, .damping = 0.85});
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-12);
  // Isolated vertices receive only redistribution + base, all equal.
  EXPECT_NEAR(pr[4], pr[5], 1e-15);
}

TEST(PageRank, DampingZeroGivesUniform) {
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  const auto pr = pagerank_push(g, {.iterations = 5, .damping = 0.0});
  for (double r : pr) EXPECT_NEAR(r, 1.0 / 256, 1e-12);
}

TEST(PageRank, IterationCountZeroReturnsInitial) {
  Csr g = make_undirected(50, path_edges(50));
  const auto pr = pagerank_pull(g, {.iterations = 0, .damping = 0.85});
  for (double r : pr) EXPECT_EQ(r, 1.0 / 50);
}

TEST(PageRank, PushPaMatchesPushOnBipartiteAllRemote) {
  // The all-remote extreme (§5): PA's local phase is empty.
  Csr g = make_undirected(8, complete_bipartite_edges(4, 4));
  omp_set_num_threads(2);
  PartitionAwareCsr pa(g, Partition1D(8, 2));
  EXPECT_EQ(pa.num_local_arcs(), 0);
  PageRankOptions opt;
  opt.iterations = 10;
  EXPECT_LT(max_abs_diff(pagerank_push_pa(g, pa, opt), pagerank_seq(g, opt)), kTol);
}

}  // namespace
}  // namespace pushpull
