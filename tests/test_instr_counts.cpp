// Cross-checks the instrumentation layer against the PRAM analysis (§4):
// the measured operation counts of each kernel must match the paper's
// conflict/atomic/lock accounting in *shape* (who has zero, who scales with
// what), reproducing the qualitative content of Table 1.
#include <gtest/gtest.h>
#include <omp.h>

#include "core/bc.hpp"
#include "core/bfs.hpp"
#include "core/coloring.hpp"
#include "core/connected_components.hpp"
#include "core/kcore.hpp"
#include "core/mst_boruvka.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "engine/edge_map.hpp"
#include "core/triangle_count.hpp"
#include "graph/partition_aware.hpp"
#include "graph_zoo.hpp"
#include "perf/instr.hpp"

namespace pushpull {
namespace {

class InstrFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    omp_set_num_threads(4);
    g_ = make_undirected(256, rmat_edges(8, 8, 17));
    wg_ = make_undirected_weighted(256, rmat_edges(8, 8, 17), 1.f, 10.f, 99);
  }

  CounterBlock run_pr(Direction dir, int iters = 5) {
    PerfCounters pc(omp_get_max_threads());
    PageRankOptions opt;
    opt.iterations = iters;
    if (dir == Direction::Push) {
      pagerank_push(g_, opt, CountingInstr(pc));
    } else {
      pagerank_pull(g_, opt, CountingInstr(pc));
    }
    return pc.total();
  }

  Csr g_;
  Csr wg_;
};

TEST_F(InstrFixture, PageRankPushLocksAreLmPullHasNone) {
  const int L = 5;
  const CounterBlock push = run_pr(Direction::Push, L);
  const CounterBlock pull = run_pr(Direction::Pull, L);
  // §4.1: O(Lm) locks when pushing (one per edge per iteration), zero when
  // pulling; zero integer atomics in both.
  EXPECT_EQ(push.locks, static_cast<std::uint64_t>(L) * g_.num_arcs());
  EXPECT_EQ(pull.locks, 0u);
  EXPECT_EQ(push.atomics, 0u);
  EXPECT_EQ(pull.atomics, 0u);
  // Pulling reads both the neighbor rank and its degree: 2 reads per edge
  // per iteration plus the dangling scan.
  EXPECT_GE(pull.reads, static_cast<std::uint64_t>(L) * 2 * g_.num_arcs());
  EXPECT_GT(pull.writes, 0u);
}

TEST_F(InstrFixture, PageRankPaMovesLocksToCutEdges) {
  PerfCounters pc(omp_get_max_threads());
  const int threads = 4;
  PartitionAwareCsr pa(g_, Partition1D(g_.n(), threads));
  PageRankOptions opt;
  opt.iterations = 3;
#pragma omp parallel num_threads(1)
  {
  }
  pagerank_push_pa(g_, pa, opt, CountingInstr(pc));
  const CounterBlock t = pc.total();
  // Exactly one lock per remote arc per iteration — strictly fewer than
  // plain pushing's one per arc.
  EXPECT_EQ(t.locks, static_cast<std::uint64_t>(opt.iterations) * pa.num_remote_arcs());
  EXPECT_LT(t.locks, static_cast<std::uint64_t>(opt.iterations) * g_.num_arcs());
  // Local updates became plain writes.
  EXPECT_GE(t.writes, static_cast<std::uint64_t>(opt.iterations) * pa.num_local_arcs());
}

TEST_F(InstrFixture, BfsPushAtomicsBoundedByArcsPullHasNone) {
  PerfCounters pc(omp_get_max_threads());
  bfs_push(g_, 0, CountingInstr(pc));
  const CounterBlock push = pc.total();
  EXPECT_GT(push.atomics, 0u);
  EXPECT_LE(push.atomics, static_cast<std::uint64_t>(g_.num_arcs()));
  EXPECT_EQ(push.locks, 0u);

  pc.reset();
  bfs_pull(g_, 0, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);

  // The O(D·m) pull read blowup (§4.3) shows on *high-diameter* graphs (the
  // paper calls out rca): every level rescans the unvisited remainder. On a
  // grid, pull must read far more than push's one pass over each edge.
  Csr road = make_undirected(32 * 32, grid2d_edges(32, 32, 1.0, 5));
  pc.reset();
  bfs_push(road, 0, CountingInstr(pc));
  const std::uint64_t push_reads = pc.total().reads;
  pc.reset();
  bfs_pull(road, 0, CountingInstr(pc));
  EXPECT_GT(pc.total().reads, 5 * push_reads);
}

TEST_F(InstrFixture, SsspPushCasPerImprovingRelaxationPullNone) {
  PerfCounters pc(omp_get_max_threads());
  sssp_delta_push(wg_, 0, 4.0f, CountingInstr(pc));
  const CounterBlock push = pc.total();
  EXPECT_GT(push.atomics, 0u);
  EXPECT_EQ(push.locks, 0u);

  pc.reset();
  sssp_delta_pull(wg_, 0, 4.0f, CountingInstr(pc));
  const CounterBlock pull = pc.total();
  EXPECT_EQ(pull.atomics, 0u);
  EXPECT_GT(pull.reads, push.reads);  // §4.4 read-conflict blowup
}

TEST_F(InstrFixture, ColoringPushAtomicsPullPlainWrites) {
  ColoringOptions opt;
  opt.max_iterations = 50;
  PerfCounters pc(omp_get_max_threads());
  boman_color_push(g_, opt, CountingInstr(pc));
  const CounterBlock push = pc.total();

  pc.reset();
  boman_color_pull(g_, opt, CountingInstr(pc));
  const CounterBlock pull = pc.total();

  // Push resolves conflicts remotely via atomics; pull locally via writes.
  EXPECT_EQ(pull.atomics, 0u);
  EXPECT_GE(push.atomics, 0u);  // zero only if no conflicts occurred
  EXPECT_EQ(push.locks, 0u);
  EXPECT_EQ(pull.locks, 0u);
}

TEST_F(InstrFixture, MstPushAtomicMinsPullPrivateWrites) {
  PerfCounters pc(omp_get_max_threads());
  mst_boruvka(wg_, Direction::Push, CountingInstr(pc));
  const CounterBlock push = pc.total();
  EXPECT_GT(push.atomics, 0u);

  pc.reset();
  mst_boruvka(wg_, Direction::Pull, CountingInstr(pc));
  const CounterBlock pull = pc.total();
  EXPECT_EQ(pull.atomics, 0u);
  EXPECT_GT(pull.writes, 0u);
}

TEST_F(InstrFixture, BcBackwardPushLocksPullNone) {
  BcOptions push_opt;
  push_opt.sources = {0, 11, 42};
  push_opt.forward = Direction::Push;
  push_opt.backward = Direction::Push;
  PerfCounters pc(omp_get_max_threads());
  betweenness_centrality(g_, push_opt, CountingInstr(pc));
  const CounterBlock push = pc.total();
  // Forward phase: integer atomics (CAS + σ FAA). Backward: float locks.
  EXPECT_GT(push.atomics, 0u);
  EXPECT_GT(push.locks, 0u);

  BcOptions pull_opt = push_opt;
  pull_opt.forward = Direction::Pull;
  pull_opt.backward = Direction::Pull;
  pc.reset();
  betweenness_centrality(g_, pull_opt, CountingInstr(pc));
  const CounterBlock pull = pc.total();
  EXPECT_EQ(pull.atomics, 0u);
  EXPECT_EQ(pull.locks, 0u);
}

// --- engine-level counter invariants (the §3.8 defining properties) ----------

// A functor exercising every context primitive a pull or push kernel uses.
struct AllPrimsFunctor {
  std::int64_t* int_acc;
  double* dbl_acc;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    ctx.load(int_acc[s]);
    ctx.add(int_acc[d], std::int64_t{1});
    ctx.add(dbl_acc[d], 0.5);
    ctx.min(int_acc[d], std::int64_t{-1});
    std::int64_t expected = -1;
    ctx.claim(int_acc[d], expected, std::int64_t{-2});
    return false;
  }
};

// §3.8's defining property: a pull-mode edge_map can not issue a single
// atomic or lock, no matter what the functor does — PlainCtx is the only
// context pull traversals ever see.
TEST_F(InstrFixture, EnginePullModesIssueZeroSyncOps) {
  engine::Workspace ws(g_.n());
  std::vector<std::int64_t> ints(static_cast<std::size_t>(g_.n()), 0);
  std::vector<double> dbls(static_cast<std::size_t>(g_.n()), 0.0);
  PerfCounters pc(omp_get_max_threads());

  engine::dense_pull(g_, ws, AllPrimsFunctor{ints.data(), dbls.data()},
                     engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);
  EXPECT_GT(pc.total().reads, 0u);
  EXPECT_GT(pc.total().writes, 0u);

  pc.reset();
  std::vector<vid_t> dests{0, 5, 17};
  engine::sparse_pull(g_, ws, std::span<const vid_t>(dests),
                      AllPrimsFunctor{ints.data(), dbls.data()},
                      engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);

  // Frontier-aware pull is a pull shape like any other: the index narrows
  // which arcs are read, never how updates are applied.
  pc.reset();
  std::vector<vid_t> active{0, 3, 64, 65, 200};
  engine::FrontierIndex& idx = ws.frontier_index();
  idx.build(active);
  engine::frontier_pull(g_, ws, idx, AllPrimsFunctor{ints.data(), dbls.data()},
                        engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);
  EXPECT_GT(pc.total().reads, 0u);

  // Cache-blocked pull inherits the invariant: blocking re-orders which arcs
  // a sweep reads, never how updates are applied — still PlainCtx, zero sync
  // ops, in both the dense and the frontier-indexed shape.
  const engine::BlockedView<engine::SymmetricView> bv(
      engine::SymmetricView(g_), engine::BlockedOptions{.num_blocks = 7});
  pc.reset();
  engine::dense_pull(bv, ws, AllPrimsFunctor{ints.data(), dbls.data()},
                     engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);
  EXPECT_GT(pc.total().reads, 0u);

  pc.reset();
  engine::frontier_pull(bv, ws, idx, AllPrimsFunctor{ints.data(), dbls.data()},
                        engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);
}

// Integer-add push functor: counts exactly one synchronized update per edge.
struct IntAddFunctor {
  std::int64_t* acc;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    ctx.add(acc[d], std::int64_t{1});
    return false;
  }
};

// Push mode's atomics must equal the cross-owner updates: under the
// partition-aware split, exactly the remote arcs; under the flat CSR, every
// arc is potentially cross-owner and pays.
TEST_F(InstrFixture, EnginePushAtomicsEqualCrossOwnerUpdates) {
  const PartitionAwareCsr pa(g_, Partition1D(g_.n(), 4));
  engine::Workspace ws(g_.n());
  std::vector<std::int64_t> acc(static_cast<std::size_t>(g_.n()), 0);
  PerfCounters pc(omp_get_max_threads());

  engine::dense_push_pa(pa, ws, IntAddFunctor{acc.data()},
                        engine::EdgeMapOptions{}, CountingInstr(pc));
  // Local-half updates are thread-owned plain writes; only remote arcs sync.
  EXPECT_EQ(pc.total().atomics,
            static_cast<std::uint64_t>(pa.num_remote_arcs()));
  EXPECT_EQ(pc.total().writes, static_cast<std::uint64_t>(pa.num_local_arcs()));
  EXPECT_EQ(pc.total().locks, 0u);

  pc.reset();
  engine::EdgeMapOptions flat;
  flat.track_output = false;
  engine::dense_push(g_, ws, nullptr, IntAddFunctor{acc.data()}, flat,
                     CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, static_cast<std::uint64_t>(g_.num_arcs()));

  // The striped-lock policy prices the same updates as locks instead.
  pc.reset();
  flat.sync = engine::Sync::StripedLock;
  engine::dense_push(g_, ws, nullptr, IntAddFunctor{acc.data()}, flat,
                     CountingInstr(pc));
  EXPECT_EQ(pc.total().locks, static_cast<std::uint64_t>(g_.num_arcs()));
  EXPECT_EQ(pc.total().atomics, 0u);
}

// The NUMA-aware split attributes synced ops to cross-*socket* arcs exactly
// the way PA attributes them to cross-thread arcs: atomics == cross-node
// arcs, plain writes == node-local arcs. Structure (and therefore counts) is
// identical whether or not placement is compiled in or the machine actually
// has four nodes — the partition is what decides local vs cross.
TEST_F(InstrFixture, EngineNumaPushAtomicsEqualCrossNodeArcs) {
  const NumaAwareCsr ng(g_, /*nodes=*/4);
  EXPECT_EQ(ng.num_local_arcs() + ng.num_cross_arcs(), g_.num_arcs());
  engine::Workspace ws(g_.n());
  std::vector<std::int64_t> acc(static_cast<std::size_t>(g_.n()), 0);
  PerfCounters pc(omp_get_max_threads());

  engine::dense_push_numa(ng, ws, IntAddFunctor{acc.data()},
                          engine::EdgeMapOptions{}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics,
            static_cast<std::uint64_t>(ng.num_cross_arcs()));
  EXPECT_EQ(pc.total().writes, static_cast<std::uint64_t>(ng.num_local_arcs()));
  EXPECT_EQ(pc.total().locks, 0u);

  // At socket granularity the split must agree arc-for-arc with a PA split
  // over the same 1D partition — NumaAware generalizes PA, not replaces it.
  const PartitionAwareCsr pa4(g_, Partition1D(g_.n(), 4));
  EXPECT_EQ(ng.num_cross_arcs(), pa4.num_remote_arcs());
  EXPECT_EQ(ng.num_local_arcs(), pa4.num_local_arcs());
}

// The engine's attribution carries into the new algorithms for free: CC pull
// rounds are sync-free, CC push rounds pay one atomic per improving min, and
// k-core's peel decrements are integer FAAs.
TEST_F(InstrFixture, EngineClientsInheritAttribution) {
  PerfCounters pc(omp_get_max_threads());
  CcOptions pull_opt;
  pull_opt.strategy = engine::StrategyKind::StaticPull;
  connected_components(g_, pull_opt, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);

  pc.reset();
  CcOptions push_opt;
  push_opt.strategy = engine::StrategyKind::FrontierExploit;
  connected_components(g_, push_opt, CountingInstr(pc));
  EXPECT_GT(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);

  pc.reset();
  kcore_decomposition(g_, CountingInstr(pc));
  EXPECT_GT(pc.total().atomics, 0u);
  EXPECT_EQ(pc.total().locks, 0u);
}

TEST_F(InstrFixture, CacheSimPullMissesMoreThanPushForPr) {
  // Table 1, PR rows: pull's scattered reads produce more L1 misses than
  // push on the dense social graph (the paper reports 572M vs 335M).
  omp_set_num_threads(1);  // cache simulation is single-core
  PageRankOptions opt;
  opt.iterations = 3;

  PerfCounters pc1(1);
  CacheHierarchy cache_push;
  pagerank_push(g_, opt, CacheSimInstr(pc1, cache_push));

  PerfCounters pc2(1);
  CacheHierarchy cache_pull;
  pagerank_pull(g_, opt, CacheSimInstr(pc2, cache_pull));

  EXPECT_GT(cache_pull.stats().l1_misses, cache_push.stats().l1_misses);
  omp_set_num_threads(4);
}

TEST_F(InstrFixture, TcCountsScaleWithIterationStructure) {
  // Doubling the graph's edge factor increases both variants' reads;
  // push/pull read counts stay equal (§4.2).
  Csr small = make_undirected(128, rmat_edges(7, 4, 55));
  Csr dense = make_undirected(128, rmat_edges(7, 8, 55));
  PerfCounters pc(omp_get_max_threads());
  triangle_count_pull(small, CountingInstr(pc));
  const auto small_reads = pc.total().reads;
  pc.reset();
  triangle_count_pull(dense, CountingInstr(pc));
  EXPECT_GT(pc.total().reads, small_reads);
}

}  // namespace
}  // namespace pushpull
