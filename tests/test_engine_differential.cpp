// Differential tests for the engine refactor: every rebased kernel (BFS,
// SSSP-Δ, BC, PageRank, coloring) and both new engine algorithms run across
// the full graph zoo × their engine policies, asserted against the frozen
// pre-refactor implementations in core/baselines/legacy_kernels.hpp.
//
// Determinism tiers:
//   - integer results and float-min fixpoints (BFS dist, SSSP dist, colors at
//     one partition) are bit-identical at any thread count;
//   - ordered float folds (PR pull, BC pull/pull) are bit-identical at any
//     thread count because engine and legacy fold in the same neighbor order;
//   - racy float accumulation (PR push/PA, BC push phases) is bit-identical
//     under a single thread and tolerance-checked under four.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <vector>

#include "core/baselines/baselines.hpp"
#include "core/baselines/legacy_kernels.hpp"
#include "core/bc.hpp"
#include "core/bfs.hpp"
#include "core/coloring.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "graph/partition_aware.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

class EngineDifferential : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    saved_threads_ = omp_get_max_threads();
    omp_set_num_threads(GetParam());
  }
  void TearDown() override { omp_set_num_threads(saved_threads_); }

  bool single_threaded() const { return GetParam() == 1; }

  int saved_threads_ = 1;
};

void expect_eq_vec(const std::vector<vid_t>& got, const std::vector<vid_t>& want,
                   const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " index " << i;
  }
}

void expect_bitwise_eq(const std::vector<double>& got,
                       const std::vector<double>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " index " << i;
  }
}

void expect_near_vec(const std::vector<double>& got,
                     const std::vector<double>& want, double tol,
                     const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << label << " index " << i;
  }
}

TEST_P(EngineDifferential, BfsMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const legacy::BfsRef lpush = legacy::bfs_push(g, 0);
    const legacy::BfsRef lpull = legacy::bfs_pull(g, 0);
    const BfsResult push = bfs_push(g, 0);
    const BfsResult pull = bfs_pull(g, 0);
    const BfsResult diropt = bfs_direction_optimizing(g, 0);
    // Hop distances are race-free values: bit-identical at any thread count.
    expect_eq_vec(push.dist, lpush.dist, name + "/push dist");
    expect_eq_vec(pull.dist, lpull.dist, name + "/pull dist");
    expect_eq_vec(diropt.dist, lpush.dist, name + "/diropt dist");
    EXPECT_EQ(push.levels, lpush.levels) << name;
    EXPECT_EQ(pull.levels, lpull.levels) << name;
    // Pull adopts the first eligible in-neighbor in adjacency order — the
    // parent array is deterministic and must match exactly.
    expect_eq_vec(pull.parent, lpull.parent, name + "/pull parent");
    // Push parents are race winners; require a valid BFS tree instead.
    EXPECT_TRUE(validate_bfs(g, 0, push)) << name;
    EXPECT_TRUE(validate_bfs(g, 0, diropt)) << name;
  }
}

TEST_P(EngineDifferential, SsspMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    for (weight_t delta : {4.0f, 64.0f}) {
      const std::vector<weight_t> lpush = legacy::sssp_delta_push(g, 0, delta);
      const std::vector<weight_t> lpull = legacy::sssp_delta_pull(g, 0, delta);
      const DeltaSteppingResult push = sssp_delta_push(g, 0, delta);
      const DeltaSteppingResult pull = sssp_delta_pull(g, 0, delta);
      // Relaxation to fixpoint has a unique float solution: exact equality.
      ASSERT_EQ(push.dist.size(), lpush.size()) << name;
      for (std::size_t v = 0; v < lpush.size(); ++v) {
        ASSERT_EQ(push.dist[v], lpush[v]) << name << " d=" << delta << " v" << v;
        ASSERT_EQ(pull.dist[v], lpull[v]) << name << " d=" << delta << " v" << v;
        ASSERT_EQ(push.dist[v], pull.dist[v]) << name << " push-vs-pull v" << v;
      }
    }
  }
}

TEST_P(EngineDifferential, PageRankMatchesLegacyOnZoo) {
  PageRankOptions opt;
  opt.iterations = 12;
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    // Pull folds in neighbor order in both implementations: bitwise equal.
    expect_bitwise_eq(pagerank_pull(g, opt), legacy::pagerank_pull(g, opt),
                      name + "/pull");
    const std::vector<double> lpush = legacy::pagerank_push(g, opt);
    const std::vector<double> push = pagerank_push(g, opt);
    const PartitionAwareCsr pa(g, Partition1D(g.n(), 4));
    const std::vector<double> lpa = legacy::pagerank_push_pa(g, pa, opt);
    const std::vector<double> pa_pr = pagerank_push_pa(g, pa, opt);
    if (single_threaded()) {
      // One thread: the scatter order is the vertex order in both.
      expect_bitwise_eq(push, lpush, name + "/push");
    } else {
      expect_near_vec(push, lpush, 1e-12, name + "/push");
    }
    // PA spawns part.parts() threads regardless of the OMP default, so the
    // remote half always races: tolerance-checked in both fixtures.
    expect_near_vec(pa_pr, lpa, 1e-12, name + "/pa");
  }
}

TEST_P(EngineDifferential, BcMatchesLegacyOnZoo) {
  const std::vector<vid_t> sources{0, 3, 7};
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    if (g.n() <= 7) continue;
    for (Direction fwd : {Direction::Push, Direction::Pull}) {
      for (Direction bwd : {Direction::Push, Direction::Pull}) {
        const std::vector<double> ref =
            legacy::betweenness_centrality(g, sources, fwd, bwd);
        BcOptions opt;
        opt.sources = sources;
        opt.forward = fwd;
        opt.backward = bwd;
        const BcResult got = betweenness_centrality(g, opt);
        const std::string label = name + "/" + to_string(fwd) + "-" + to_string(bwd);
        const bool deterministic =
            single_threaded() ||
            (fwd == Direction::Pull && bwd == Direction::Pull);
        if (deterministic) {
          expect_bitwise_eq(got.bc, ref, label);
        } else {
          expect_near_vec(got.bc, ref, 1e-9, label);
        }
      }
    }
  }
}

TEST_P(EngineDifferential, ColoringMatchesLegacyOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      ColoringOptions opt;
      opt.max_iterations = 200;
      // One partition: phase 1 is a sequential greedy sweep and phase 2 finds
      // no cross-partition edges — fully deterministic in both versions.
      opt.num_partitions = 1;
      const ColoringResult ref = legacy::boman_color(g, dir, opt);
      const ColoringResult got = boman_color(g, dir, opt);
      const std::string label = name + "/" + to_string(dir);
      EXPECT_EQ(got.iterations, ref.iterations) << label;
      ASSERT_EQ(got.color.size(), ref.color.size()) << label;
      for (std::size_t v = 0; v < ref.color.size(); ++v) {
        ASSERT_EQ(got.color[v], ref.color[v]) << label << " v" << v;
      }

      // Multi-partition runs race on phase-1 reads by design; engine and
      // legacy must both converge to *a* proper coloring with the same
      // conflict accounting semantics (final iteration conflict-free).
      ColoringOptions par;
      par.max_iterations = 8 * g.n() + 50;
      par.num_partitions = 4;
      const ColoringResult pr = boman_color(g, dir, par);
      EXPECT_TRUE(baseline::is_proper_coloring(g, pr.color)) << label;
      EXPECT_EQ(pr.iter_conflicts.back(), 0) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, EngineDifferential, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // operator+ on the literal trips GCC-12's
                           // -Wrestrict false positive; append instead.
                           std::string name("t");
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace pushpull
