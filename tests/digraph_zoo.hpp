// Shared corpus of small *asymmetric* digraphs for the directed differential
// tests: deterministic shapes whose out- and in-CSRs genuinely differ (DAG,
// one-way bipartite, sink/source-heavy stars), a self-loop case, plus seeded
// random arc sets. All built through build_digraph, so every entry has been
// cross-validated (in == transpose(out)) on construction.
#pragma once

#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace pushpull::testing {

struct DigraphZooEntry {
  std::string name;
  Digraph graph;
};

namespace detail {

inline std::vector<DigraphZooEntry> build_digraph_zoo() {
  std::vector<DigraphZooEntry> zoo;
  auto dg = [](const std::string& name, vid_t n, EdgeList edges) {
    BuildOptions opts;
    return DigraphZooEntry{name, build_digraph(n, std::move(edges), opts, name)};
  };

  {
    // Layered DAG: every rmat edge oriented low → high id.
    EdgeList edges = rmat_edges(8, 6, 101);
    for (Edge& e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    zoo.push_back(dg("dag_rmat8", 256, std::move(edges)));
  }
  {
    // Directed cycle: exactly one out- and one in-arc per vertex, but a
    // D = n diameter that stresses level-by-level loops.
    EdgeList edges;
    const vid_t n = 48;
    for (vid_t v = 0; v < n; ++v) {
      edges.push_back(Edge{v, static_cast<vid_t>((v + 1) % n), 1.f});
    }
    zoo.push_back(dg("cycle48", n, std::move(edges)));
  }
  {
    // One-way complete bipartite: all arcs L → R; R is all sinks.
    EdgeList edges;
    const vid_t l = 10, r = 12;
    for (vid_t a = 0; a < l; ++a) {
      for (vid_t b = 0; b < r; ++b) {
        edges.push_back(Edge{a, static_cast<vid_t>(l + b), 1.f});
      }
    }
    zoo.push_back(dg("oneway_bipartite10x12", l + r, std::move(edges)));
  }
  {
    // Self loops on a directed path (kept: remove_self_loops off).
    EdgeList edges;
    const vid_t n = 20;
    for (vid_t v = 0; v + 1 < n; ++v) {
      edges.push_back(Edge{v, static_cast<vid_t>(v + 1), 1.f});
    }
    for (vid_t v = 0; v < n; v += 3) edges.push_back(Edge{v, v, 1.f});
    BuildOptions opts;
    opts.remove_self_loops = false;
    zoo.push_back(
        {"selfloop_path20", build_digraph(n, std::move(edges), opts,
                                          "selfloop_path20")});
  }
  {
    // Sink-heavy: three chains all draining into one high-in-degree sink.
    EdgeList edges;
    const vid_t n = 31;  // vertex 30 is the sink
    for (vid_t c = 0; c < 3; ++c) {
      for (vid_t i = 0; i < 9; ++i) {
        const vid_t v = static_cast<vid_t>(c * 10 + i);
        edges.push_back(Edge{v, static_cast<vid_t>(v + 1), 1.f});
      }
      edges.push_back(Edge{static_cast<vid_t>(c * 10 + 9), 30, 1.f});
    }
    for (vid_t v = 0; v < 30; ++v) edges.push_back(Edge{v, 30, 1.f});
    zoo.push_back(dg("sink_heavy31", n, std::move(edges)));
  }
  {
    // Source-heavy: one high-out-degree source feeding a forest of chains.
    EdgeList edges;
    const vid_t n = 41;  // vertex 0 is the source
    for (vid_t v = 1; v < n; ++v) edges.push_back(Edge{0, v, 1.f});
    for (vid_t v = 1; v + 2 < n; v += 2) {
      edges.push_back(Edge{v, static_cast<vid_t>(v + 2), 1.f});
    }
    zoo.push_back(dg("source_heavy41", n, std::move(edges)));
  }
  {
    // Two directed cycles joined by a single one-way bridge: two SCCs.
    EdgeList edges;
    for (vid_t v = 0; v < 12; ++v) {
      edges.push_back(Edge{v, static_cast<vid_t>((v + 1) % 12), 1.f});
    }
    for (vid_t v = 12; v < 20; ++v) {
      edges.push_back(
          Edge{v, static_cast<vid_t>(12 + (v - 12 + 1) % 8), 1.f});
    }
    edges.push_back(Edge{3, 15, 1.f});
    zoo.push_back(dg("two_sccs20", 20, std::move(edges)));
  }
  {
    // Raw rmat arcs: skewed, asymmetric, possibly disconnected.
    zoo.push_back(dg("rmat9", 512, rmat_edges(9, 5, 7)));
  }
  return zoo;
}

}  // namespace detail

inline const std::vector<DigraphZooEntry>& digraph_zoo() {
  static const std::vector<DigraphZooEntry> zoo = detail::build_digraph_zoo();
  return zoo;
}

}  // namespace pushpull::testing
