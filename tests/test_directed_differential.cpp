// Directed differential suite: the engine-rebased digraph kernels against the
// frozen pre-view oracles (core/baselines/legacy_kernels.hpp) across a zoo of
// asymmetric digraphs, every §5 strategy the directed BFS exposes, and 1 vs 4
// threads — plus the §4.8 instr-count invariants (pull is zero-sync on
// digraphs too; PA push atomics are exactly the remote out-arcs) and the
// Digraph cross-validation diagnostics.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>
#include <numeric>
#include <queue>

#include "core/baselines/legacy_kernels.hpp"
#include "core/directed.hpp"
#include "core/generalized_bfs.hpp"
#include "digraph_zoo.hpp"
#include "engine/edge_map.hpp"
#include "graph/partition.hpp"
#include "graph/partition_aware.hpp"
#include "perf/instr.hpp"

namespace pushpull {
namespace {

using testing::digraph_zoo;

// Counts arc landings; remote-half updates pay the sync policy.
struct AddOne {
  std::int64_t* acc;
  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    ctx.add(acc[d], std::int64_t{1});
    return false;
  }
};

std::vector<std::uint8_t> seq_reachable(const Digraph& g, vid_t root) {
  std::vector<std::uint8_t> vis(static_cast<std::size_t>(g.out.n()), 0);
  std::queue<vid_t> q;
  vis[static_cast<std::size_t>(root)] = 1;
  q.push(root);
  while (!q.empty()) {
    const vid_t v = q.front();
    q.pop();
    for (vid_t u : g.out.neighbors(v)) {
      if (!vis[static_cast<std::size_t>(u)]) {
        vis[static_cast<std::size_t>(u)] = 1;
        q.push(u);
      }
    }
  }
  return vis;
}

// --- BFS: every strategy must reproduce the frozen oracle ---------------------

class DirectedDiffSweep : public ::testing::TestWithParam<int> {};

TEST_P(DirectedDiffSweep, BfsMatchesLegacyOracle) {
  omp_set_num_threads(GetParam());
  for (const auto& [name, g] : digraph_zoo()) {
    const auto ref = legacy::bfs_digraph(g, 0, Direction::Push);
    ASSERT_EQ(legacy::bfs_digraph(g, 0, Direction::Pull), ref) << name;
    EXPECT_EQ(bfs_digraph(g, 0, Direction::Push), ref) << name << "/push";
    EXPECT_EQ(bfs_digraph(g, 0, Direction::Pull), ref) << name << "/pull";

    for (engine::StrategyKind k :
         {engine::StrategyKind::StaticPush, engine::StrategyKind::StaticPull,
          engine::StrategyKind::GenericSwitch,
          engine::StrategyKind::GreedySwitch,
          engine::StrategyKind::FrontierExploit}) {
      DigraphBfsOptions opt;
      opt.strategy = k;
      opt.grs_threshold = 0.2;  // make the GrS tail actually trigger
      const DigraphBfsResult r = bfs_digraph_strategy(g, 0, opt);
      EXPECT_EQ(r.dist, ref) << name << "/" << engine::to_string(k);
      if (k == engine::StrategyKind::GreedySwitch) {
        EXPECT_GE(r.sequential_tail_levels + r.levels, 1) << name;
      }
    }
  }
}

TEST_P(DirectedDiffSweep, PageRankMatchesLegacyOracle) {
  const int threads = GetParam();
  omp_set_num_threads(threads);
  DirectedPageRankOptions opt;
  opt.iterations = 12;
  for (const auto& [name, g] : digraph_zoo()) {
    const auto ref_pull = legacy::pagerank_digraph(g, opt.iterations,
                                                   opt.damping, Direction::Pull);
    const auto pull = pagerank_digraph(g, opt, Direction::Pull);
    const auto push = pagerank_digraph(g, opt, Direction::Push);
    ASSERT_EQ(pull.size(), ref_pull.size());
    if (threads == 1) {
      // Single-threaded, every float fold is ordered: both directions must
      // reproduce the oracle bit for bit.
      const auto ref_push = legacy::pagerank_digraph(
          g, opt.iterations, opt.damping, Direction::Push);
      for (std::size_t v = 0; v < ref_pull.size(); ++v) {
        EXPECT_EQ(pull[v], ref_pull[v]) << name << " v" << v;
        EXPECT_EQ(push[v], ref_push[v]) << name << " v" << v;
      }
    } else {
      // Multithreaded, two unordered float folds remain — the OpenMP
      // dangling-mass reduction (combine order is runtime-chosen, so even
      // oracle-vs-oracle is not bitwise here) and push's racy FAA order.
      // Documented tolerance: 1e-12.
      for (std::size_t v = 0; v < ref_pull.size(); ++v) {
        EXPECT_NEAR(pull[v], ref_pull[v], 1e-12) << name << " v" << v;
        EXPECT_NEAR(push[v], ref_pull[v], 1e-12) << name << " v" << v;
      }
    }
  }
}

TEST_P(DirectedDiffSweep, ReachabilityMatchesSequential) {
  omp_set_num_threads(GetParam());
  for (const auto& [name, g] : digraph_zoo()) {
    const auto ref = seq_reachable(g, 0);
    EXPECT_EQ(reachability_digraph(g, 0, Direction::Push), ref)
        << name << "/push";
    EXPECT_EQ(reachability_digraph(g, 0, Direction::Pull), ref)
        << name << "/pull";
  }
}

TEST_P(DirectedDiffSweep, SccMatchesPairwiseReachability) {
  omp_set_num_threads(GetParam());
  for (const auto& [name, g] : digraph_zoo()) {
    const vid_t n = g.out.n();
    const auto scc = scc_digraph(g);
    // Ids must form a partition: every vertex labeled, ids dense in [0, max].
    vid_t max_id = -1;
    for (vid_t v = 0; v < n; ++v) {
      ASSERT_GE(scc[static_cast<std::size_t>(v)], 0) << name;
      max_id = std::max(max_id, scc[static_cast<std::size_t>(v)]);
    }
    // Ground truth: u ~ v iff mutually reachable.
    std::vector<std::vector<std::uint8_t>> reach;
    reach.reserve(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) reach.push_back(seq_reachable(g, v));
    for (vid_t u = 0; u < n; ++u) {
      for (vid_t v = 0; v < n; ++v) {
        const bool same = scc[static_cast<std::size_t>(u)] ==
                          scc[static_cast<std::size_t>(v)];
        const bool mutual = reach[static_cast<std::size_t>(u)]
                                 [static_cast<std::size_t>(v)] &&
                            reach[static_cast<std::size_t>(v)]
                                 [static_cast<std::size_t>(u)];
        EXPECT_EQ(same, mutual) << name << " u" << u << " v" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DirectedDiffSweep, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name("t");
                           name += std::to_string(info.param);
                           return name;
                         });

// --- Generalized BFS over a DigraphView ---------------------------------------

TEST(DirectedGenBfs, DagPathCountsWithInDegreeReadyCounts) {
  // Diamond + tail: 0→{1,2}→3→4. ready = in-degree makes the wavefront
  // topological; op = sum counts source-to-vertex paths.
  BuildOptions opts;
  const Digraph g = build_digraph(
      5, {{0, 1, 1.f}, {0, 2, 1.f}, {1, 3, 1.f}, {2, 3, 1.f}, {3, 4, 1.f}},
      opts, "diamond5");
  auto run = [&](Direction dir) {
    std::vector<int> ready(5);
    for (vid_t v = 0; v < 5; ++v) ready[static_cast<std::size_t>(v)] = g.in.degree(v);
    std::vector<std::int64_t> values{1, 0, 0, 0, 0};
    auto op = [](std::int64_t& t, const std::int64_t& s) { t += s; };
    return generalized_bfs(g, std::move(ready), std::move(values), {0}, op, dir);
  };
  for (Direction dir : {Direction::Push, Direction::Pull}) {
    const auto r = run(dir);
    EXPECT_EQ(r.values, (std::vector<std::int64_t>{1, 1, 1, 2, 2}))
        << to_string(dir);
    EXPECT_EQ(r.levels, 4) << to_string(dir);  // {0} {1,2} {3} {4}
    EXPECT_EQ(r.frontier_sizes, (std::vector<std::size_t>{1, 2, 1, 1}))
        << to_string(dir);
  }
}

// --- §4.8 instr-count invariants on digraphs ----------------------------------

TEST(DirectedInstr, PullModesAreStructurallyZeroSync) {
  omp_set_num_threads(4);
  for (const auto& [name, g] : digraph_zoo()) {
    PerfCounters pc(omp_get_max_threads());
    DirectedPageRankOptions opt;
    opt.iterations = 3;
    pagerank_digraph(g, opt, Direction::Pull, CountingInstr(pc));
    bfs_digraph(g, 0, Direction::Pull, CountingInstr(pc));
    reachability_digraph(g, 0, Direction::Pull, CountingInstr(pc));
    EXPECT_EQ(pc.total().atomics, 0u) << name;
    EXPECT_EQ(pc.total().locks, 0u) << name;
  }
}

TEST(DirectedInstr, PullReadsAreExactlyInArcsPushLocksExactlyOutArcs) {
  // §4.8's asymmetric cost split, exact on every zoo entry: pulling scans
  // in-arcs (one counted read each), pushing pays one float-CAS "lock" per
  // out-arc.
  omp_set_num_threads(4);
  DirectedPageRankOptions opt;
  opt.iterations = 2;
  for (const auto& [name, g] : digraph_zoo()) {
    PerfCounters pc(omp_get_max_threads());
    pagerank_digraph(g, opt, Direction::Pull, CountingInstr(pc));
    EXPECT_EQ(pc.total().reads,
              static_cast<std::uint64_t>(opt.iterations) *
                  static_cast<std::uint64_t>(g.in.num_arcs()))
        << name;
    pc.reset();
    pagerank_digraph(g, opt, Direction::Push, CountingInstr(pc));
    EXPECT_EQ(pc.total().locks,
              static_cast<std::uint64_t>(opt.iterations) *
                  static_cast<std::uint64_t>(g.out.num_arcs()))
        << name;
    EXPECT_EQ(pc.total().atomics, 0u) << name;
  }
}

TEST(DirectedInstr, PaPushAtomicsAreExactlyRemoteOutArcs) {
  // Algorithm 8 over a digraph's out-CSR: the local half is plain writes,
  // every remote out-arc pays exactly one atomic.
  omp_set_num_threads(4);
  const Digraph& g = digraph_zoo().back().graph;  // rmat9
  const vid_t n = g.out.n();
  const PartitionAwareCsr pa(g.out, Partition1D(n, 4));
  std::vector<std::int64_t> acc(static_cast<std::size_t>(n), 0);
  PerfCounters pc(omp_get_max_threads());
  engine::Workspace ws(n);
  engine::dense_push_pa(pa, ws, AddOne{acc.data()}, {}, CountingInstr(pc));
  EXPECT_EQ(pc.total().atomics,
            static_cast<std::uint64_t>(pa.num_remote_arcs()));
  // Every out-arc landed exactly once, local or remote.
  EXPECT_EQ(std::accumulate(acc.begin(), acc.end(), std::int64_t{0}),
            static_cast<std::int64_t>(g.out.num_arcs()));
}

// --- Digraph cross-validation diagnostics -------------------------------------

TEST(DigraphValidate, AcceptsEveryZooEntry) {
  for (const auto& [name, g] : digraph_zoo()) {
    validate_digraph(g, name);  // must not abort
  }
}

TEST(DigraphValidateDeath, ArcCountMismatchNamesTheGraph) {
  BuildOptions nosym;
  nosym.symmetrize = false;
  Digraph bad;
  bad.out = build_csr(4, {{0, 1, 1.f}, {1, 2, 1.f}}, nosym);
  bad.in = build_csr(4, {}, nosym);
  EXPECT_DEATH(validate_digraph(bad, "badgraph"),
               "badgraph.*arc counts differ");
}

TEST(DigraphValidateDeath, InDegreeMismatchIsDetected) {
  BuildOptions nosym;
  nosym.symmetrize = false;
  Digraph bad;
  bad.out = build_csr(3, {{0, 1, 1.f}, {1, 2, 1.f}}, nosym);
  bad.in = build_csr(3, {{0, 1, 1.f}, {1, 2, 1.f}}, nosym);  // not a transpose
  EXPECT_DEATH(validate_digraph(bad, "skewed"),
               "skewed.*in-degrees disagree");
}

TEST(DigraphValidateDeath, TransposedMembershipMismatchIsDetected) {
  BuildOptions nosym;
  nosym.symmetrize = false;
  Digraph bad;
  bad.out = build_csr(4, {{0, 1, 1.f}, {2, 3, 1.f}}, nosym);
  // In-degrees match (one arc into 1, one into 3) but sources are swapped.
  bad.in = build_csr(4, {{1, 2, 1.f}, {3, 0, 1.f}}, nosym);
  EXPECT_DEATH(validate_digraph(bad, "crossed"),
               "crossed.*not a transpose");
}

}  // namespace
}  // namespace pushpull
