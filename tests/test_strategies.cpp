#include <gtest/gtest.h>
#include <omp.h>

#include "core/bfs.hpp"
#include "core/coloring.hpp"
#include "core/direction.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

TEST(SwitchController, StartsInRequestedDirection) {
  SwitchController a(10, 10, Direction::Push);
  EXPECT_EQ(a.current(), Direction::Push);
  SwitchController b(10, 10, Direction::Pull);
  EXPECT_EQ(b.current(), Direction::Pull);
}

TEST(SwitchController, PushToPullOnHeavyFrontier) {
  SwitchController ctl(10, 10, Direction::Push);
  // active_work below total/alpha: stay push.
  EXPECT_EQ(ctl.step(5, 100, 1, 100), Direction::Push);
  // active_work above total/alpha: flip to pull.
  EXPECT_EQ(ctl.step(50, 100, 50, 100), Direction::Pull);
}

TEST(SwitchController, PullToPushOnSmallFrontier) {
  SwitchController ctl(10, 10, Direction::Pull);
  EXPECT_EQ(ctl.step(50, 100, 50, 100), Direction::Pull);
  // active_count below total/beta: flip back to push.
  EXPECT_EQ(ctl.step(1, 100, 5, 100), Direction::Push);
}

TEST(SwitchController, ForceOverrides) {
  SwitchController ctl(10, 10, Direction::Push);
  ctl.force(Direction::Pull);
  EXPECT_EQ(ctl.current(), Direction::Pull);
}

TEST(DirOptBfs, UsesBothDirectionsOnSmallWorldGraph) {
  // RMAT social graphs have an exploding frontier: a correct controller
  // must spend the middle levels in pull mode.
  Csr g = make_undirected(1 << 12, rmat_edges(12, 16, 3));
  omp_set_num_threads(4);
  const BfsResult r = bfs_direction_optimizing(g, 0, {.alpha = 14.0, .beta = 24.0});
  bool saw_push = false, saw_pull = false;
  for (Direction d : r.level_dirs) {
    saw_push |= d == Direction::Push;
    saw_pull |= d == Direction::Pull;
  }
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_pull);
}

TEST(DirOptBfs, MatchesPlainBfsDistancesOnAllZooGraphs) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const BfsResult a = bfs_push(g, 0);
    const BfsResult b = bfs_direction_optimizing(g, 0);
    EXPECT_EQ(a.dist, b.dist) << name;
  }
}

TEST(GsColoring, SwitchReducesOrMatchesFePushIterations) {
  // Generic-Switch's purpose (§5): never meaningfully worse than fixed push,
  // much better when conflicts dominate.
  for (int gi : {8, 9, 10}) {  // er200, rmat8, ba300
    const auto& [name, g] = testing::unweighted_zoo()[static_cast<std::size_t>(gi)];
    omp_set_num_threads(4);
    ColoringOptions opt;
    opt.max_iterations = 5000;
    const auto fe = fe_color(g, Direction::Push, opt);
    const auto gs = gs_color(g, opt);
    EXPECT_LE(gs.iterations, fe.iterations + 2) << name;
  }
}

TEST(GrsColoring, UsesOneSequentialTailIteration) {
  Csr g = make_undirected(300, barabasi_albert_edges(300, 3, 19));
  omp_set_num_threads(4);
  ColoringOptions opt;
  opt.grs_threshold = 1.1;  // everything below threshold: greedy immediately
  const auto r = grs_color(g, opt);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(r.colors_used, [&] {
    int max_c = 0;
    for (int c : r.color) max_c = std::max(max_c, c);
    return max_c + 1;
  }());
}

TEST(FeColoring, PullGeneratesFewerConflictsThanPush) {
  // §5 Generic-Switch rationale: pull claims can observe same-wave
  // neighbors and avoid collisions; push claims cannot.
  Csr g = make_undirected(512, rmat_edges(9, 8, 77));
  omp_set_num_threads(4);
  ColoringOptions opt;
  opt.max_iterations = 5000;
  const auto push = fe_color(g, Direction::Push, opt);
  const auto pull = fe_color(g, Direction::Pull, opt);
  std::int64_t push_conflicts = 0, pull_conflicts = 0;
  for (auto c : push.iter_conflicts) push_conflicts += c;
  for (auto c : pull.iter_conflicts) pull_conflicts += c;
  EXPECT_LE(pull_conflicts, push_conflicts);
}

}  // namespace
}  // namespace pushpull
