// Incremental BFS/CC/PageRank (core/incremental.hpp) differentially tested
// against full recompute on the same post-update snapshot: exact agreement
// for BFS and CC, ≤1e-9 L∞ for PageRank, across ≥5 randomized commit batches
// on the symmetric and digraph zoos, at 1 and 4 OpenMP threads. Directed
// fallback and repair paths (orphaned BFS subtrees, component splits, probe
// budget exhaustion) get targeted cases.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/incremental.hpp"
#include "digraph_zoo.hpp"
#include "graph/delta_graph.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

constexpr int kBatches = 6;
constexpr int kBatchEdges = 24;
constexpr double kPrTol = 1e-9;

double linf(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

// Stages one random mixed batch (roughly 3:1 insert:delete, deletes drawn
// from live arcs) and returns the committed update list.
std::vector<EdgeUpdate> stage_batch(DeltaGraph& dg, std::mt19937_64& rng) {
  const SnapshotView before = dg.snapshot();
  const vid_t n = dg.n();
  int staged = 0;
  for (int guard = 0; staged < kBatchEdges && guard < kBatchEdges * 64;
       ++guard) {
    if ((rng() & 3u) != 0) {
      if (dg.add_edge(static_cast<vid_t>(rng() % n),
                      static_cast<vid_t>(rng() % n))) {
        ++staged;
      }
    } else {
      const vid_t u = static_cast<vid_t>(rng() % n);
      const auto nb = before.out().neighbors(u);
      if (nb.empty()) continue;
      if (dg.remove_edge(u, nb[rng() % nb.size()])) ++staged;
    }
  }
  const epoch_t epoch = dg.commit();
  return flatten(dg.batches_since(epoch - 1));
}

// The batch loop shared by the zoo sweeps: carry each kernel's fixpoint
// across batches, repair incrementally, and compare against full recompute
// on the identical snapshot.
void run_batches(DeltaGraph& dg, std::uint64_t seed, const std::string& name) {
  std::mt19937_64 rng(seed);
  const vid_t root = 0;
  SnapshotView snap = dg.snapshot();
  std::vector<vid_t> dist = bfs_levels(snap, root);
  std::vector<vid_t> comp = cc_labels(snap);
  PrFixpoint pr = pagerank_converged(snap);

  for (int b = 0; b < kBatches; ++b) {
    const std::vector<EdgeUpdate> updates = stage_batch(dg, rng);
    snap = dg.snapshot();
    IncrementalStats st;

    std::vector<vid_t> inc_dist =
        incremental_bfs(snap, std::span<const EdgeUpdate>(updates), root, dist,
                        &st);
    EXPECT_EQ(inc_dist, bfs_levels(snap, root))
        << name << " batch " << b << " bfs";

    std::vector<vid_t> inc_comp =
        incremental_cc(snap, std::span<const EdgeUpdate>(updates), comp, &st);
    EXPECT_EQ(inc_comp, cc_labels(snap)) << name << " batch " << b << " cc";

    PrFixpoint inc_pr = incremental_pagerank(
        snap, std::span<const EdgeUpdate>(updates), pr.ranks, {}, &st);
    const PrFixpoint full_pr = pagerank_converged(snap);
    EXPECT_LE(linf(inc_pr.ranks, full_pr.ranks), kPrTol)
        << name << " batch " << b << " pr";

    dist = std::move(inc_dist);
    comp = std::move(inc_comp);
    pr = std::move(inc_pr);
    if (b == kBatches / 2) dg.compact();  // repair must survive compaction
  }
}

TEST(Incremental, MatchesFullRecomputeAcrossZoo) {
  const int saved = omp_get_max_threads();
  for (const int threads : {1, 4}) {
    omp_set_num_threads(threads);
    std::uint64_t seed = 42;
    for (const auto& entry : pushpull::testing::unweighted_zoo()) {
      DeltaGraph dg(Csr(entry.graph));
      run_batches(dg, seed++, entry.name + "@" + std::to_string(threads));
    }
  }
  omp_set_num_threads(saved);
}

TEST(Incremental, MatchesFullRecomputeAcrossDigraphZoo) {
  const int saved = omp_get_max_threads();
  for (const int threads : {1, 4}) {
    omp_set_num_threads(threads);
    std::uint64_t seed = 77;
    for (const auto& entry : pushpull::testing::digraph_zoo()) {
      DeltaGraph dg(Digraph{Csr(entry.graph.out), Csr(entry.graph.in)});
      run_batches(dg, seed++, entry.name + "@" + std::to_string(threads));
    }
  }
  omp_set_num_threads(saved);
}

// Deleting a tree edge orphans a whole subtree; the decremental repair must
// re-settle it exactly (here: to unreachable) without full recompute.
TEST(Incremental, BfsRepairsOrphanedSubtree) {
  DeltaGraph dg(make_undirected(63, binary_tree_edges(6)));
  dg.remove_edge(1, 3);  // detach 3's subtree from the root side
  dg.commit();
  const SnapshotView snap = dg.snapshot();
  const std::vector<EdgeUpdate> updates =
      flatten(dg.batches_since(dg.epoch() - 1));
  // The pre-delete fixpoint: BFS on the original tree.
  DeltaGraph orig(make_undirected(63, binary_tree_edges(6)));
  std::vector<vid_t> warm = bfs_levels(orig.snapshot(), 0);

  IncrementalStats st;
  const std::vector<vid_t> inc =
      incremental_bfs(snap, std::span<const EdgeUpdate>(updates), 0, warm, &st);
  EXPECT_EQ(inc, bfs_levels(snap, 0));
  EXPECT_FALSE(st.fell_back);       // repaired locally
  EXPECT_GT(st.repair_rounds, 0);   // the orphan cascade actually ran
  EXPECT_EQ(inc[3], -1);            // subtree is now unreachable
}

// A deletion whose orphan region rivals the graph (cutting a path in half)
// trips the blast-radius guard and falls back to full recompute — exactly.
TEST(Incremental, BfsBlastRadiusFallsBack) {
  DeltaGraph dg(make_undirected(50, path_edges(50)));
  dg.remove_edge(10, 11);
  dg.commit();
  const SnapshotView snap = dg.snapshot();
  const std::vector<EdgeUpdate> updates =
      flatten(dg.batches_since(dg.epoch() - 1));
  DeltaGraph orig(make_undirected(50, path_edges(50)));
  const std::vector<vid_t> warm = bfs_levels(orig.snapshot(), 0);

  IncrementalStats st;
  const std::vector<vid_t> inc =
      incremental_bfs(snap, std::span<const EdgeUpdate>(updates), 0, warm, &st);
  EXPECT_EQ(inc, bfs_levels(snap, 0));
  EXPECT_TRUE(st.fell_back);
}

// Deleting a pendant edge splits off a singleton; the probe enumerates the
// small side and relabels it in place instead of recomputing.
TEST(Incremental, CcRelabelsSplitOffPiece) {
  DeltaGraph dg(make_undirected(50, path_edges(50)));
  dg.remove_edge(48, 49);
  dg.commit();
  const SnapshotView snap = dg.snapshot();
  const std::vector<EdgeUpdate> updates =
      flatten(dg.batches_since(dg.epoch() - 1));
  const std::vector<vid_t> warm(50, 0);  // one component before the cut

  IncrementalStats st;
  const std::vector<vid_t> inc =
      incremental_cc(snap, std::span<const EdgeUpdate>(updates), warm, &st);
  EXPECT_EQ(inc, cc_labels(snap));
  EXPECT_FALSE(st.fell_back);
  EXPECT_EQ(st.repair_rounds, 1);  // one split relabeled
  EXPECT_EQ(inc[49], 49);
}

// A bridge between two cliques: both sides exceed every probe budget, so the
// kernel must fall back to full recompute — and still be exact.
TEST(Incremental, CcBridgeBetweenCliquesFallsBack) {
  EdgeList edges = complete_edges(24);
  for (const Edge& e : complete_edges(24)) {
    edges.push_back(Edge{static_cast<vid_t>(e.u + 24),
                         static_cast<vid_t>(e.v + 24), 1.0f});
  }
  edges.push_back(Edge{0, 24, 1.0f});  // the bridge
  DeltaGraph dg(make_undirected(48, std::move(edges)));
  dg.remove_edge(0, 24);
  dg.commit();
  const SnapshotView snap = dg.snapshot();
  const std::vector<EdgeUpdate> updates =
      flatten(dg.batches_since(dg.epoch() - 1));
  const std::vector<vid_t> warm(48, 0);

  IncrementalStats st;
  const std::vector<vid_t> inc =
      incremental_cc(snap, std::span<const EdgeUpdate>(updates), warm, &st);
  EXPECT_EQ(inc, cc_labels(snap));
  EXPECT_TRUE(st.fell_back);
}

// Warm-started certification must match the cold run even when a batch only
// inserts (no dangling shift) and when it empties a vertex's adjacency
// (creating a fresh dangling vertex mid-stream).
TEST(Incremental, PagerankHandlesDanglingTransitions) {
  DeltaGraph dg(make_undirected(8, EdgeList{Edge{0, 1, 1.0f}, Edge{2, 3, 1.0f},
                                            Edge{4, 5, 1.0f}}));
  const PrFixpoint before = pagerank_converged(dg.snapshot());
  dg.remove_edge(4, 5);  // 4 and 5 become isolated (dangling)
  dg.add_edge(1, 2);     // merge two components
  dg.commit();
  const SnapshotView snap = dg.snapshot();
  const std::vector<EdgeUpdate> updates =
      flatten(dg.batches_since(dg.epoch() - 1));

  const PrFixpoint inc = incremental_pagerank(
      snap, std::span<const EdgeUpdate>(updates), before.ranks);
  const PrFixpoint full = pagerank_converged(snap);
  EXPECT_LE(linf(inc.ranks, full.ranks), kPrTol);
}

}  // namespace
}  // namespace pushpull
