#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>

#include "core/direction.hpp"
#include "core/frontier.hpp"

namespace pushpull {
namespace {

TEST(FrontierBuffers, MergeCollectsAllThreadBuffers) {
  FrontierBuffers buffers(omp_get_max_threads());
  constexpr int kItems = 10000;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < kItems; ++i) {
    buffers.push_local(i);
  }
  std::vector<vid_t> out;
  buffers.merge_into(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  std::sort(out.begin(), out.end());
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(FrontierBuffers, MergeEmptiesBuffers) {
  FrontierBuffers buffers(4);
  buffers.push_to(0, 1);
  buffers.push_to(3, 2);
  EXPECT_FALSE(buffers.all_empty());
  std::vector<vid_t> out;
  buffers.merge_into(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(buffers.all_empty());
  buffers.merge_into(out);
  EXPECT_TRUE(out.empty());  // second merge clears the output
}

TEST(FrontierBuffers, PushToTargetsSpecificBuffer) {
  FrontierBuffers buffers(3);
  buffers.push_to(1, 42);
  buffers.push_to(1, 43);
  std::vector<vid_t> out;
  buffers.merge_into(out);
  EXPECT_EQ(out, (std::vector<vid_t>{42, 43}));
}

TEST(DenseFrontier, SetTestClear) {
  DenseFrontier f(100);
  EXPECT_FALSE(f.test(5));
  f.set(5);
  f.set(99);
  EXPECT_TRUE(f.test(5));
  EXPECT_TRUE(f.test(99));
  EXPECT_FALSE(f.test(6));
  f.clear();
  EXPECT_FALSE(f.test(5));
}

TEST(DenseFrontier, BuildFromSparseReplacesContents) {
  DenseFrontier f(50);
  f.set(1);
  f.build_from({10, 20, 30});
  EXPECT_FALSE(f.test(1));
  EXPECT_TRUE(f.test(10));
  EXPECT_TRUE(f.test(20));
  EXPECT_TRUE(f.test(30));
}

TEST(Direction, ToStringNames) {
  EXPECT_STREQ(to_string(Direction::Push), "push");
  EXPECT_STREQ(to_string(Direction::Pull), "pull");
}

}  // namespace
}  // namespace pushpull
