#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>

#include "core/baselines/baselines.hpp"
#include "core/sssp_delta.hpp"
#include "gas/programs.hpp"
#include "graph_zoo.hpp"
#include "la/algorithms.hpp"

namespace pushpull {
namespace {

using SsspParam = std::tuple<int, int, float>;

constexpr float kTol = 1e-4f;

void expect_dist_match(const std::vector<weight_t>& got,
                       const std::vector<weight_t>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << label << " vertex " << v;
    } else {
      EXPECT_NEAR(got[v], want[v], kTol) << label << " vertex " << v;
    }
  }
}

// (zoo index, threads, delta)
class SsspEquivalence
    : public ::testing::TestWithParam<SsspParam> {};

TEST_P(SsspEquivalence, DeltaSteppingMatchesDijkstra) {
  const auto& zoo = testing::weighted_zoo();
  const auto& [gi, threads, delta] = GetParam();
  const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
  omp_set_num_threads(threads);

  const auto ref = baseline::dijkstra(g, 0);
  const auto push = sssp_delta_push(g, 0, delta);
  const auto pull = sssp_delta_pull(g, 0, delta);
  expect_dist_match(push.dist, ref, name + "/push");
  expect_dist_match(pull.dist, ref, name + "/pull");
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, SsspEquivalence,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 4),
                       ::testing::Values(0.5f, 4.0f, 1e6f)),
    [](const ::testing::TestParamInfo<SsspParam>& info) {
      const int gi = std::get<0>(info.param);
      const int t = std::get<1>(info.param);
      const float d = std::get<2>(info.param);
      std::string dn = d < 1 ? "small" : (d < 100 ? "mid" : "huge");
      return pushpull::testing::weighted_zoo()[gi].name + "_t" +
             std::to_string(t) + "_d" + dn;
    });

TEST(Sssp, BaselinesAgreeWithEachOther) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    const auto dij = baseline::dijkstra(g, 0);
    const auto bf = baseline::bellman_ford(g, 0);
    expect_dist_match(bf, dij, name + "/bellman_ford");
  }
}

TEST(Sssp, HugeDeltaDegeneratesToOneEpoch) {
  // Δ larger than any path weight: a single bucket (Bellman-Ford regime).
  const auto& zoo = testing::weighted_zoo();
  const Csr& g = zoo[3].graph;  // w_er200
  const auto r = sssp_delta_push(g, 0, 1e9f);
  EXPECT_EQ(r.epochs, 1);
}

TEST(Sssp, SmallerDeltaMoreEpochs) {
  const auto& zoo = testing::weighted_zoo();
  const Csr& g = zoo[2].graph;  // w_grid12x12
  const auto coarse = sssp_delta_push(g, 0, 50.0f);
  const auto fine = sssp_delta_push(g, 0, 1.0f);
  EXPECT_GT(fine.epochs, coarse.epochs);
  EXPECT_EQ(coarse.epoch_times.size(), static_cast<std::size_t>(coarse.epochs));
}

TEST(Sssp, PullDoesMoreInnerIterationsWorkThanPush) {
  // The pull variant rescans unsettled vertices every inner iteration; its
  // iteration count can only match or exceed push for the same Δ.
  const auto& zoo = testing::weighted_zoo();
  const Csr& g = zoo[4].graph;  // w_rmat8
  const auto push = sssp_delta_push(g, 0, 4.0f);
  const auto pull = sssp_delta_pull(g, 0, 4.0f);
  EXPECT_GE(pull.inner_iterations, push.epochs);
  EXPECT_EQ(push.epochs, pull.epochs);  // same bucket structure
}

TEST(Sssp, UnreachableVerticesAreInfinite) {
  BuildOptions opts;
  opts.keep_weights = true;
  Csr g = build_csr(6, EdgeList{Edge{0, 1, 2.f}, Edge{3, 4, 1.f}}, opts);
  const auto r = sssp_delta_push(g, 0, 1.0f);
  EXPECT_TRUE(std::isinf(r.dist[3]));
  EXPECT_TRUE(std::isinf(r.dist[5]));
  EXPECT_EQ(r.dist[1], 2.f);
}

TEST(Sssp, SourceDistanceIsZero) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    const auto r = sssp_delta_pull(g, 0, 2.0f);
    EXPECT_EQ(r.dist[0], 0.0f) << name;
  }
}

TEST(Sssp, GasVariantsMatchDijkstra) {
  const auto& zoo = testing::weighted_zoo();
  for (int gi : {0, 2, 4}) {
    const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
    const auto ref = baseline::dijkstra(g, 0);
    expect_dist_match(gas::gas_sssp(g, 0, Direction::Push), ref, name + "/gas_push");
    expect_dist_match(gas::gas_sssp(g, 0, Direction::Pull), ref, name + "/gas_pull");
  }
}

TEST(Sssp, LinearAlgebraVariantsMatchDijkstra) {
  const auto& zoo = testing::weighted_zoo();
  for (int gi : {1, 3, 5}) {
    const auto& [name, g] = zoo[static_cast<std::size_t>(gi)];
    const auto ref = baseline::dijkstra(g, 0);
    expect_dist_match(la::sssp_la(g, 0, Direction::Push), ref, name + "/la_push");
    expect_dist_match(la::sssp_la(g, 0, Direction::Pull), ref, name + "/la_pull");
  }
}

TEST(Sssp, TiedWeightsStillCorrect) {
  // All-equal weights stress deterministic relaxation ordering.
  const auto& zoo = testing::weighted_zoo();
  const auto& [name, g] = zoo[6];  // w_ties_er
  ASSERT_EQ(name, "w_ties_er");
  const auto ref = baseline::dijkstra(g, 0);
  expect_dist_match(sssp_delta_push(g, 0, 0.9f).dist, ref, name + "/push");
  expect_dist_match(sssp_delta_pull(g, 0, 0.9f).dist, ref, name + "/pull");
}

}  // namespace
}  // namespace pushpull
