// Shared plumbing for backend-parameterized distributed-runtime tests: the
// {emu, shm} parameter axis, graceful skipping where the shm backend cannot
// run, and the probe that turns in-rank gtest failures into a parent-visible
// World::run failure on the process backend.
//
// Usage:
//   class MySuite : public pushpull::dist::testing::BackendTest {};
//   TEST_P(MySuite, ...) { World world(4, backend()); ... }
//   INSTANTIATE_TEST_SUITE_P(Backends, MySuite, pushpull::dist::testing::AllBackends(),
//                            pushpull::dist::testing::BackendParamName);
//
// On the emu backend, EXPECT/ASSERT inside world.run run in threads of the
// test process and fail the test directly. On the shm backend they run in a
// forked rank process: the failure text is printed by the child, and the
// installed rank_status_probe makes the child exit kRankSoftFailExit, which
// ShmTransport::run converts into an exception after all ranks finish —
// gtest reports the thrown exception as the test failure.
//
// Set PUSHPULL_DIST_BACKENDS=emu (or shm) to restrict the matrix — the CI
// ThreadSanitizer job uses this: TSan instruments threads, not forked
// children, so the shm half is skipped there.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "dist/runtime.hpp"

namespace pushpull::dist::testing {

inline void install_rank_status_probe() {
  rank_status_probe() = [] {
    return ::testing::Test::HasFailure() ? kRankSoftFailExit : 0;
  };
}

// True when the given backend should be skipped in this environment: the
// platform lacks process-shared primitives, or PUSHPULL_DIST_BACKENDS
// excludes it.
inline bool backend_unavailable(BackendKind k) {
  if (k == BackendKind::Shm && !shm_backend_available()) return true;
  if (const char* env = std::getenv("PUSHPULL_DIST_BACKENDS")) {
    if (std::string(env).find(to_string(k)) == std::string::npos) return true;
  }
  return false;
}

#define PUSHPULL_SKIP_IF_BACKEND_UNAVAILABLE(kind)                            \
  do {                                                                        \
    if (pushpull::dist::testing::backend_unavailable(kind)) {                 \
      GTEST_SKIP() << "backend " << pushpull::dist::to_string(kind)           \
                   << " unavailable (platform or PUSHPULL_DIST_BACKENDS)";    \
    }                                                                         \
  } while (0)

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    install_rank_status_probe();
    PUSHPULL_SKIP_IF_BACKEND_UNAVAILABLE(GetParam());
  }

  BackendKind backend() const { return GetParam(); }
};

inline auto AllBackends() {
  return ::testing::Values(BackendKind::Emu, BackendKind::Shm);
}

inline std::string BackendParamName(
    const ::testing::TestParamInfo<BackendKind>& info) {
  return to_string(info.param);
}

}  // namespace pushpull::dist::testing
