// Differential tests for the cache-blocked pull view (engine/blocked_view.hpp):
// every pull-capable kernel must produce *bit-identical* results through a
// BlockedView — blocking moves arcs between loop iterations while preserving
// each destination's ascending-source scan order, so even float folds (PR)
// match exactly. Runs the zoo × block counts × {1, 4} threads, plus block-
// boundary edge cases (empty trailing blocks when n < K, a giant-degree hub
// row spanning every block) and the NumaAwareCsr structure/kernel checks.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/bfs.hpp"
#include "core/connected_components.hpp"
#include "core/directed.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "digraph_zoo.hpp"
#include "engine/blocked_view.hpp"
#include "engine/edge_map.hpp"
#include "graph/partition_aware.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

// Block counts that exercise K == 1 (must degenerate to the flat sweep), a
// small K, a K that does not divide typical zoo sizes, and K > n for the
// smallest zoo graphs (trailing empty blocks).
const int kBlockCounts[] = {1, 3, 7, 64};

engine::BlockedView<engine::SymmetricView> blocked(const Csr& g, int k) {
  engine::BlockedOptions opt;
  opt.num_blocks = k;
  return engine::BlockedView<engine::SymmetricView>(engine::SymmetricView(g),
                                                    opt);
}

class BlockedViewDifferential : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    saved_threads_ = omp_get_max_threads();
    omp_set_num_threads(GetParam());
  }
  void TearDown() override { omp_set_num_threads(saved_threads_); }

  int saved_threads_ = 1;
};

// Structural invariants of the cut representation: row 0 == edge_begin, row K
// == edge_end, cuts monotone per destination, every block's arcs fall inside
// its source range, and the blocks partition the arc set exactly.
TEST(BlockedViewStructure, CutsPartitionTheArcSet) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    for (const int k : kBlockCounts) {
      const auto bv = blocked(g, k);
      ASSERT_EQ(bv.num_blocks(), k) << name;
      ASSERT_EQ(bv.block_begin(0), 0) << name;
      ASSERT_EQ(bv.block_end(bv.num_blocks() - 1), g.n()) << name;
      eid_t total = 0;
      for (int b = 0; b < bv.num_blocks(); ++b) {
        ASSERT_LE(bv.block_begin(b), bv.block_end(b)) << name;
        const eid_t* lo = bv.cut_row(b);
        const eid_t* hi = bv.cut_row(b + 1);
        for (vid_t d = 0; d < g.n(); ++d) {
          ASSERT_LE(lo[d], hi[d]) << name << " block " << b << " dest " << d;
          for (eid_t e = lo[d]; e < hi[d]; ++e) {
            const vid_t s = g.edge_target(e);
            ASSERT_GE(s, bv.block_begin(b)) << name;
            ASSERT_LT(s, bv.block_end(b)) << name;
          }
        }
        total += bv.block_arcs(b);
      }
      ASSERT_EQ(total, g.num_arcs()) << name << " K=" << k;
      for (vid_t d = 0; d < g.n(); ++d) {
        ASSERT_EQ(bv.cut_row(0)[d], g.edge_begin(d)) << name;
        ASSERT_EQ(bv.cut_row(bv.num_blocks())[d], g.edge_end(d)) << name;
      }
    }
  }
}

// The budget model: K grows as the budget shrinks, clamped to max_blocks,
// and a zero budget falls back to the machine default (K >= 1).
TEST(BlockedViewStructure, BudgetModelSelectsK) {
  const Csr& g = testing::unweighted_zoo().front().graph;  // path50
  engine::BlockedOptions tiny;
  tiny.llc_budget_bytes = 8;  // one vertex per block -> clamped to max_blocks
  tiny.max_blocks = 16;
  EXPECT_EQ(blocked(g, 0).num_blocks() >= 1, true);
  const engine::BlockedView<engine::SymmetricView> bt(engine::SymmetricView(g),
                                                      tiny);
  EXPECT_EQ(bt.num_blocks(), 16);
  engine::BlockedOptions huge;
  huge.llc_budget_bytes = 1u << 30;
  const engine::BlockedView<engine::SymmetricView> bh(engine::SymmetricView(g),
                                                      huge);
  EXPECT_EQ(bh.num_blocks(), 1);
}

TEST_P(BlockedViewDifferential, PagerankPullBitIdenticalOnZoo) {
  PageRankOptions opt;
  opt.iterations = 10;
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const std::vector<double> flat = pagerank_pull(g, opt);
    for (const int k : kBlockCounts) {
      const std::vector<double> got = pagerank_pull(blocked(g, k), opt);
      ASSERT_EQ(got.size(), flat.size());
      for (std::size_t i = 0; i < flat.size(); ++i) {
        // Bit-identical: same per-destination fold order, same arithmetic.
        ASSERT_EQ(got[i], flat[i]) << name << " K=" << k << " v=" << i;
      }
    }
  }
}

TEST_P(BlockedViewDifferential, BfsPullBitIdenticalOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const BfsResult flat = bfs_pull(g, 0);
    for (const int k : kBlockCounts) {
      const BfsResult got = bfs_pull(blocked(g, k), 0);
      ASSERT_EQ(got.dist, flat.dist) << name << " K=" << k;
      // kBreakOnUpdate determinism: the adopted parent is the first live
      // in-neighbor in ascending source order, blocks or not.
      ASSERT_EQ(got.parent, flat.parent) << name << " K=" << k;
    }
  }
}

TEST_P(BlockedViewDifferential, ConnectedComponentsBitIdenticalOnZoo) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    for (const auto strategy : {engine::StrategyKind::StaticPull,
                                engine::StrategyKind::GenericSwitch}) {
      CcOptions opt;
      opt.strategy = strategy;
      const CcResult flat = connected_components(g, opt);
      for (const int k : kBlockCounts) {
        const CcResult got = connected_components(blocked(g, k), opt);
        ASSERT_EQ(got.comp, flat.comp)
            << name << " K=" << k << " strategy=" << static_cast<int>(strategy);
      }
    }
  }
}

// SSSP pull through a BlockedView validates the global-arc-id contract: the
// functor indexes the weight array by the engine-passed e, which only works
// because blocks are cuts into the parent arrays, not copies.
TEST_P(BlockedViewDifferential, SsspPullBitIdenticalOnWeightedZoo) {
  for (const auto& [name, g] : testing::weighted_zoo()) {
    const DeltaSteppingResult flat = sssp_delta_pull(g, 0, 4.0f);
    for (const int k : kBlockCounts) {
      const DeltaSteppingResult got = sssp_delta_pull(blocked(g, k), 0, 4.0f);
      ASSERT_EQ(got.dist, flat.dist) << name << " K=" << k;
    }
  }
}

// Digraph pull sweeps block the *in*-CSR while push keeps the flat out-CSR;
// the direction-optimizing BFS must agree level-for-level with the flat view.
TEST_P(BlockedViewDifferential, DigraphBfsStrategyBitIdenticalOnZoo) {
  for (const auto& [name, dg] : testing::digraph_zoo()) {
    const engine::DigraphView flat(dg);
    for (const auto strategy : {engine::StrategyKind::StaticPull,
                                engine::StrategyKind::GenericSwitch}) {
      DigraphBfsOptions opt;
      opt.strategy = strategy;
      const DigraphBfsResult want = bfs_digraph_strategy(flat, 0, opt);
      for (const int k : kBlockCounts) {
        engine::BlockedOptions bo;
        bo.num_blocks = k;
        const engine::BlockedView<engine::DigraphView> bv(flat, bo);
        const DigraphBfsResult got = bfs_digraph_strategy(bv, 0, opt);
        ASSERT_EQ(got.dist, want.dist) << name << " K=" << k;
        ASSERT_EQ(got.levels, want.levels) << name << " K=" << k;
      }
    }
  }
}

// Block-boundary edge cases the zoo sweep hits only incidentally, pinned
// explicitly: K > n (trailing empty blocks), and a hub whose row spans every
// block (star center adjacent to all of [1, n)).
TEST_P(BlockedViewDifferential, EdgeCasesSpanningAndEmptyBlocks) {
  // isolated: n = 8 with K = 64 -> 56 empty trailing blocks.
  const Csr tiny = make_undirected(8, EdgeList{Edge{0, 1, 1.0f}, Edge{2, 3, 1.0f}});
  const auto tiny_bv = blocked(tiny, 64);
  EXPECT_EQ(tiny_bv.num_blocks(), 64);
  const BfsResult tiny_flat = bfs_pull(tiny, 0);
  const BfsResult tiny_got = bfs_pull(tiny_bv, 0);
  EXPECT_EQ(tiny_got.dist, tiny_flat.dist);

  // star65: the center's 64-arc row is cut into 64 single-ish segments.
  const Csr star = make_undirected(65, star_edges(65));
  const auto star_bv = blocked(star, 64);
  vid_t center_segments = 0;
  for (int b = 0; b < star_bv.num_blocks(); ++b) {
    if (star_bv.cut_row(b + 1)[0] > star_bv.cut_row(b)[0]) ++center_segments;
  }
  EXPECT_GT(center_segments, 1);  // the hub row really does span blocks
  PageRankOptions opt;
  opt.iterations = 10;
  const std::vector<double> star_flat = pagerank_pull(star, opt);
  const std::vector<double> star_got = pagerank_pull(star_bv, opt);
  for (std::size_t i = 0; i < star_flat.size(); ++i) {
    ASSERT_EQ(star_got[i], star_flat[i]) << "star v=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BlockedViewDifferential,
                         ::testing::Values(1, 4));

// --- NumaAwareCsr ------------------------------------------------------------

TEST(NumaAwareCsr, SplitStructureMatchesFlatGraph) {
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const NumaAwareCsr ng(g, /*nodes=*/4);
    ASSERT_EQ(ng.n(), g.n()) << name;
    ASSERT_EQ(ng.nodes(), 4) << name;
    ASSERT_EQ(ng.num_local_arcs() + ng.num_cross_arcs(), g.num_arcs()) << name;
    const Partition1D& part = ng.partition();
    for (vid_t v = 0; v < g.n(); ++v) {
      ASSERT_EQ(ng.degree(v), g.degree(v)) << name << " v=" << v;
      const int owner = part.owner(v);
      for (vid_t u : ng.local_neighbors(v)) {
        ASSERT_EQ(part.owner(u), owner) << name;
      }
      for (vid_t u : ng.cross_neighbors(v)) {
        ASSERT_NE(part.owner(u), owner) << name;
      }
    }
  }
}

// Detected-topology construction must work whatever the machine looks like
// (1 node in CI): the partition covers the vertex space and the split is
// total. With one node every arc is local — the PA degenerate case.
TEST(NumaAwareCsr, DetectedTopologyConstructionIsTotal) {
  const Csr& g = testing::unweighted_zoo().back().graph;
  const NumaAwareCsr ng(g);
  EXPECT_GE(ng.nodes(), 1);
  EXPECT_EQ(ng.num_local_arcs() + ng.num_cross_arcs(), g.num_arcs());
  if (ng.nodes() == 1) {
    EXPECT_EQ(ng.num_cross_arcs(), 0);
  }
}

TEST(NumaAwareCsr, PagerankPushNumaMatchesSeq) {
  PageRankOptions opt;
  opt.iterations = 20;
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    if (g.num_arcs() == 0) continue;
    const NumaAwareCsr ng(g, /*nodes=*/4);
    const std::vector<double> want = pagerank_seq(g, opt);
    const std::vector<double> got = pagerank_push_numa(g, ng, opt);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Racy float accumulation across lanes: tolerance, like push/PA.
      ASSERT_NEAR(got[i], want[i], 1e-9) << name << " v=" << i;
    }
  }
}

}  // namespace
}  // namespace pushpull
