#include <gtest/gtest.h>
#include <omp.h>

#include <limits>

#include "core/baselines/baselines.hpp"
#include "core/baselines/legacy_kernels.hpp"
#include "core/generalized_bfs.hpp"
#include "graph_zoo.hpp"

namespace pushpull {
namespace {

// Standard BFS as a generalized BFS: ready = 1 everywhere, values = hop
// distance, op = min(target, source + 1).
GeneralizedBfsResult<vid_t> hop_bfs(const Csr& g, vid_t root, Direction dir) {
  std::vector<int> ready(static_cast<std::size_t>(g.n()), 1);
  ready[static_cast<std::size_t>(root)] = 0;
  std::vector<vid_t> values(static_cast<std::size_t>(g.n()),
                            std::numeric_limits<vid_t>::max() / 2);
  values[static_cast<std::size_t>(root)] = 0;
  auto op = [](vid_t& target, const vid_t& source) {
    target = std::min(target, static_cast<vid_t>(source + 1));
  };
  return generalized_bfs(g, std::move(ready), std::move(values), {root}, op, dir);
}

class GenBfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenBfsSweep, Ready1ReproducesStandardBfs) {
  omp_set_num_threads(1 + GetParam() % 4);
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    const auto ref = baseline::bfs(g, 0);
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      const auto r = hop_bfs(g, 0, dir);
      for (vid_t v = 0; v < g.n(); ++v) {
        if (ref.dist[static_cast<std::size_t>(v)] < 0) continue;  // unreachable
        EXPECT_EQ(r.values[static_cast<std::size_t>(v)],
                  ref.dist[static_cast<std::size_t>(v)])
            << name << "/" << to_string(dir) << " v" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GenBfsSweep, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name("t");
                           name += std::to_string(1 + info.param % 4);
                           return name;
                         });

TEST(GenBfs, EngineMatchesFrozenLegacyOracle) {
  // The fused per-edge engine round vs the frozen two-phase original: with
  // the min fold (hop BFS) every interleaving yields the same integers, so
  // values must be identical across the zoo in both directions.
  omp_set_num_threads(4);
  for (const auto& [name, g] : testing::unweighted_zoo()) {
    for (Direction dir : {Direction::Push, Direction::Pull}) {
      std::vector<int> ready(static_cast<std::size_t>(g.n()), 1);
      ready[0] = 0;
      std::vector<vid_t> values(static_cast<std::size_t>(g.n()),
                                std::numeric_limits<vid_t>::max() / 2);
      values[0] = 0;
      auto op = [](vid_t& target, const vid_t& source) {
        target = std::min(target, static_cast<vid_t>(source + 1));
      };
      const auto engine_r =
          generalized_bfs(g, ready, values, {0}, op, dir);
      const auto legacy_v =
          legacy::generalized_bfs(g, ready, values, {0}, op, dir);
      EXPECT_EQ(engine_r.values, legacy_v) << name << "/" << to_string(dir);
    }
  }
}

TEST(GenBfs, TreeAggregationWithExactReadyCounts) {
  // The BC-backward pattern (Algorithm 5): on a rooted tree, set ready[v] =
  // #children and seed the frontier with the leaves; op = sum. Every vertex
  // must end up with its subtree size.
  const int levels = 6;
  const vid_t n = (vid_t{1} << levels) - 1;
  Csr g = make_undirected(n, binary_tree_edges(levels));

  auto run = [&](Direction dir) {
    std::vector<int> ready(static_cast<std::size_t>(n), 2);  // two children
    std::vector<vid_t> frontier;
    for (vid_t v = n / 2; v < n; ++v) {  // leaves: last level
      ready[static_cast<std::size_t>(v)] = 0;
      frontier.push_back(v);
    }
    std::vector<long long> values(static_cast<std::size_t>(n), 1);  // own size
    auto op = [](long long& target, const long long& source) { target += source; };
    return generalized_bfs(g, std::move(ready), std::move(values),
                           std::move(frontier), op, dir);
  };

  for (Direction dir : {Direction::Push, Direction::Pull}) {
    const auto r = run(dir);
    // Root's subtree = whole tree; level-1 nodes = half; leaves = 1.
    EXPECT_EQ(r.values[0], n) << to_string(dir);
    EXPECT_EQ(r.values[1], (n - 1) / 2) << to_string(dir);
    EXPECT_EQ(r.values[static_cast<std::size_t>(n - 1)], 1) << to_string(dir);
    // Parent = 1 + sum of children, everywhere.
    for (vid_t v = 0; v < n / 2; ++v) {
      EXPECT_EQ(r.values[static_cast<std::size_t>(v)],
                1 + r.values[static_cast<std::size_t>(2 * v + 1)] +
                    r.values[static_cast<std::size_t>(2 * v + 2)])
          << to_string(dir);
    }
    // One wave per tree level: leaves, then each internal layer up to the root.
    EXPECT_EQ(r.levels, levels);
  }
}

TEST(GenBfs, FrontierSizesTrackWavefront) {
  Csr g = make_undirected(50, path_edges(50));
  const auto r = hop_bfs(g, 0, Direction::Push);
  // On a path the frontier is always a single vertex.
  for (std::size_t f : r.frontier_sizes) EXPECT_EQ(f, 1u);
  EXPECT_EQ(r.levels, 50);
}

TEST(GenBfs, UnreachableVerticesKeepInitialValues) {
  Csr g = make_undirected(6, EdgeList{Edge{0, 1, 1.f}, Edge{3, 4, 1.f}});
  const auto r = hop_bfs(g, 0, Direction::Pull);
  EXPECT_EQ(r.values[1], 1);
  EXPECT_EQ(r.values[3], std::numeric_limits<vid_t>::max() / 2);
}

TEST(GenBfs, RejectsFrontierWithNonzeroReady) {
  Csr g = make_undirected(4, path_edges(4));
  std::vector<int> ready(4, 1);  // root not marked ready
  std::vector<int> values(4, 0);
  auto op = [](int& t, const int& s) { t += s; };
  EXPECT_DEATH(generalized_bfs(g, ready, values, {0}, op, Direction::Push),
               "CHECK failed");
}

}  // namespace
}  // namespace pushpull
