// Validation of the distributed traversal kernels (dist/bfs_dist.hpp,
// dist/sssp_dist.hpp, dist/bc_dist.hpp) against the shared-memory
// implementations in src/core/, across all three DistVariants at 1, 2, 4 and
// 8 ranks on both transport backends (emu threads, shm processes), on
// undirected, disconnected, and directed graphs — plus direction
// optimization for BFS, SSSP bucket relaxation and BC's forward phase, and
// the Figure 3 modeled-communication ordering (message passing beats
// pushing-RMA for every frontier algorithm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "core/bc.hpp"
#include "core/bfs.hpp"
#include "core/directed.hpp"
#include "core/sssp_delta.hpp"
#include "dist/bc_dist.hpp"
#include "dist/bfs_dist.hpp"
#include "dist/sssp_dist.hpp"
#include "dist_test_common.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph_zoo.hpp"

namespace pushpull::dist {
namespace {

using DistParam = std::tuple<int, DistVariant, BackendKind>;

const std::vector<int> kRanks{1, 2, 4, 8};
const std::vector<DistVariant> kVariants{
    DistVariant::PushRma, DistVariant::PullRma, DistVariant::MsgPassing};
const std::vector<BackendKind> kBackends{BackendKind::Emu, BackendKind::Shm};

std::string param_name(const ::testing::TestParamInfo<DistParam>& info) {
  std::string v = to_string(std::get<1>(info.param));
  std::replace(v.begin(), v.end(), '-', '_');
  return std::string(to_string(std::get<2>(info.param))) + "_" + v + "_r" +
         std::to_string(std::get<0>(info.param));
}

// All result assertions run in the parent (the algorithms publish results
// through shared arrays), so the full matrix works unchanged on the process
// backend; SetUp skips backends this platform cannot run.
class TraversalTest : public ::testing::TestWithParam<DistParam> {
 protected:
  void SetUp() override {
    pushpull::dist::testing::install_rank_status_probe();
    PUSHPULL_SKIP_IF_BACKEND_UNAVAILABLE(std::get<2>(GetParam()));
  }
};

#define PUSHPULL_TRAVERSAL_SUITE(suite)                                  \
  INSTANTIATE_TEST_SUITE_P(                                              \
      VariantsRanksBackends, suite,                                      \
      ::testing::Combine(::testing::ValuesIn(kRanks),                    \
                         ::testing::ValuesIn(kVariants),                 \
                         ::testing::ValuesIn(kBackends)),                \
      param_name)

// Structural check that `parent` is a valid tree for the given distances:
// the parent sits one level up and the tree edge exists in the graph.
void check_parents(const Csr& g, const Csr& gin, vid_t root,
                   const std::vector<vid_t>& dist,
                   const std::vector<vid_t>& parent, const std::string& label) {
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (v == root || dist[i] < 0) {
      EXPECT_EQ(parent[i], -1) << label << " v" << v;
      continue;
    }
    ASSERT_GE(parent[i], 0) << label << " v" << v;
    EXPECT_EQ(dist[static_cast<std::size_t>(parent[i])], dist[i] - 1)
        << label << " v" << v;
    // Tree edge parent→v must exist (an out-edge of the parent).
    EXPECT_TRUE(g.has_edge(parent[i], v)) << label << " v" << v;
    (void)gin;
  }
}

// --- BFS -----------------------------------------------------------------

class DistBfs : public TraversalTest {};

TEST_P(DistBfs, MatchesCoreOnUndirectedAndDisconnected) {
  const auto& [nranks, variant, backend] = GetParam();
  for (const auto& entry : pushpull::testing::unweighted_zoo()) {
    // two_components covers the disconnected case (root side + unreached).
    const Csr& g = entry.graph;
    const vid_t root = 0;
    const BfsResult want = bfs_push(g, root);
    BfsDistOptions opt;
    opt.variant = variant;
    opt.backend = backend;
    const BfsDistResult got = bfs_dist(g, root, nranks, opt);
    ASSERT_EQ(got.dist.size(), want.dist.size());
    for (std::size_t v = 0; v < want.dist.size(); ++v) {
      EXPECT_EQ(got.dist[v], want.dist[v])
          << entry.name << " " << to_string(variant) << " v" << v;
    }
    EXPECT_EQ(got.levels, want.levels) << entry.name;
    check_parents(g, g, root, got.dist, got.parent,
                  entry.name + " " + to_string(variant));
  }
}

TEST_P(DistBfs, MatchesCoreOnDirectedGraphs) {
  const auto& [nranks, variant, backend] = GetParam();
  const Digraph dg = build_digraph(256, rmat_edges(8, 6, 77));
  const vid_t root = 0;
  const std::vector<vid_t> want = bfs_digraph(dg, root, Direction::Push);
  BfsDistOptions opt;
  opt.variant = variant;
  opt.backend = backend;
  const BfsDistResult got = bfs_dist(dg.out, root, nranks, opt, &dg.in);
  ASSERT_EQ(got.dist.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got.dist[v], want[v]) << to_string(variant) << " v" << v;
  }
  check_parents(dg.out, dg.in, root, got.dist, got.parent, to_string(variant));
}

PUSHPULL_TRAVERSAL_SUITE(DistBfs);

TEST(DistBfsDeterminism, ParentsIdenticalAcrossVariantsRanksAndBackends) {
  // Min-combined claims make the BFS tree canonical: every variant at every
  // rank count on every backend picks the minimum parent at the minimum
  // level.
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  BfsDistOptions base;
  base.variant = DistVariant::MsgPassing;
  const BfsDistResult ref = bfs_dist(g, 3, 1, base);
  for (BackendKind backend : kBackends) {
    if (pushpull::dist::testing::backend_unavailable(backend)) continue;
    for (int nranks : kRanks) {
      for (DistVariant variant : kVariants) {
        BfsDistOptions opt;
        opt.variant = variant;
        opt.backend = backend;
        const BfsDistResult got = bfs_dist(g, 3, nranks, opt);
        EXPECT_EQ(got.parent, ref.parent)
            << to_string(backend) << " " << to_string(variant) << " r" << nranks;
      }
    }
  }
}

TEST(DistBfsDirOpt, DirectionOptimizingMatchesAndGoesDense) {
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  // A low-degree but connected root: the first level must be sparse (the
  // controller only goes dense once the frontier's out-edge mass explodes).
  vid_t root = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) >= 1 && g.degree(v) <= 4) {
      root = v;
      break;
    }
  }
  const BfsResult want = bfs_push(g, root);
  for (BackendKind backend : kBackends) {
    if (pushpull::dist::testing::backend_unavailable(backend)) continue;
    for (DistVariant variant : {DistVariant::PushRma, DistVariant::MsgPassing}) {
      BfsDistOptions opt;
      opt.variant = variant;
      opt.backend = backend;
      opt.direction_optimizing = true;
      const BfsDistResult got = bfs_dist(g, root, 4, opt);
      EXPECT_EQ(got.dist, want.dist) << to_string(variant);
      // The skewed rmat frontier must actually trigger at least one dense
      // (bottom-up) round, or this test is vacuous.
      EXPECT_TRUE(std::any_of(got.level_modes.begin(), got.level_modes.end(),
                              [](FrontierMode m) { return m == FrontierMode::Dense; }))
          << to_string(variant);
      EXPECT_TRUE(std::any_of(got.level_modes.begin(), got.level_modes.end(),
                              [](FrontierMode m) { return m == FrontierMode::Sparse; }))
          << to_string(variant);
    }
  }
}

// --- SSSP ----------------------------------------------------------------

class DistSssp : public TraversalTest {};

TEST_P(DistSssp, MatchesCoreOnWeightedZoo) {
  const auto& [nranks, variant, backend] = GetParam();
  for (const auto& entry : pushpull::testing::weighted_zoo()) {
    const Csr& g = entry.graph;
    const weight_t delta = 2.0f;
    const DeltaSteppingResult want = sssp_delta_push(g, 0, delta);
    SsspDistOptions opt;
    opt.variant = variant;
    opt.backend = backend;
    opt.delta = delta;
    const SsspDistResult got = sssp_dist(g, 0, nranks, opt);
    ASSERT_EQ(got.dist.size(), want.dist.size());
    for (std::size_t v = 0; v < want.dist.size(); ++v) {
      EXPECT_EQ(got.dist[v], want.dist[v])
          << entry.name << " " << to_string(variant) << " v" << v;
    }
  }
}

TEST_P(DistSssp, MatchesCoreOnDisconnectedGraph) {
  const auto& [nranks, variant, backend] = GetParam();
  // A weighted cycle plus an unreachable clique: distances on the far
  // component must stay +inf on every rank layout.
  EdgeList edges = cycle_edges(20);
  for (const Edge& e : complete_edges(10)) {
    edges.push_back(Edge{static_cast<vid_t>(e.u + 20),
                         static_cast<vid_t>(e.v + 20), 1.0f});
  }
  const Csr g = make_undirected_weighted(30, std::move(edges), 1.0f, 8.0f, 71);
  const DeltaSteppingResult want = sssp_delta_push(g, 0, 3.0f);
  SsspDistOptions opt;
  opt.variant = variant;
  opt.backend = backend;
  opt.delta = 3.0f;
  const SsspDistResult got = sssp_dist(g, 0, nranks, opt);
  EXPECT_EQ(got.dist, want.dist) << to_string(variant);
  for (vid_t v = 20; v < 30; ++v) {
    EXPECT_EQ(got.dist[static_cast<std::size_t>(v)], kInfWeight);
  }
}

TEST_P(DistSssp, MatchesCoreOnDirectedGraphs) {
  const auto& [nranks, variant, backend] = GetParam();
  const Digraph dg =
      build_digraph(256, with_uniform_weights(rmat_edges(8, 6, 91), 1.0f, 9.0f, 93),
                    /*keep_weights=*/true);
  // Core Δ-stepping push relaxes out-edges: correct on a directed out-CSR.
  const DeltaSteppingResult want = sssp_delta_push(dg.out, 0, 4.0f);
  SsspDistOptions opt;
  opt.variant = variant;
  opt.backend = backend;
  opt.delta = 4.0f;
  const SsspDistResult got = sssp_dist(dg.out, 0, nranks, opt, &dg.in);
  EXPECT_EQ(got.dist, want.dist) << to_string(variant);
}

PUSHPULL_TRAVERSAL_SUITE(DistSssp);

TEST(DistSsspDirOpt, DirectionOptimizingMatchesAndUsesBothModes) {
  // A wide bucket on a skewed graph makes the active set balloon like a BFS
  // frontier: the switch must go dense mid-bucket and come back sparse as
  // the bucket drains, with distances identical to core Δ-stepping.
  const Csr g = make_undirected_weighted(512, rmat_edges(9, 8, 21), 1.0f, 9.0f, 23);
  const weight_t delta = 64.0f;  // every relaxation lands in bucket 0
  const DeltaSteppingResult want = sssp_delta_push(g, 0, delta);
  for (BackendKind backend : kBackends) {
    if (pushpull::dist::testing::backend_unavailable(backend)) continue;
    for (DistVariant variant : {DistVariant::PushRma, DistVariant::MsgPassing}) {
      SsspDistOptions opt;
      opt.variant = variant;
      opt.backend = backend;
      opt.delta = delta;
      opt.direction_optimizing = true;
      const SsspDistResult got = sssp_dist(g, 0, 4, opt);
      EXPECT_EQ(got.dist, want.dist)
          << to_string(backend) << " " << to_string(variant);
      EXPECT_GT(got.dense_rounds, 0) << to_string(variant);
      EXPECT_GT(got.sparse_rounds, 0) << to_string(variant);
      EXPECT_EQ(got.dense_rounds + got.sparse_rounds, got.inner_iterations);
    }
  }
}

TEST(DistSsspDirOpt, PullRmaIsAlwaysDense) {
  const Csr g = make_undirected_weighted(128, rmat_edges(7, 6, 5), 1.0f, 9.0f, 7);
  SsspDistOptions opt;
  opt.variant = DistVariant::PullRma;
  const SsspDistResult got = sssp_dist(g, 0, 4, opt);
  EXPECT_EQ(got.sparse_rounds, 0);
  EXPECT_EQ(got.dense_rounds, got.inner_iterations);
}

// --- BC ------------------------------------------------------------------

class DistBc : public TraversalTest {};

void expect_bc_near(const std::vector<double>& got, const std::vector<double>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-9 * (1.0 + std::abs(want[v])))
        << label << " v" << v;
  }
}

TEST_P(DistBc, MatchesCoreAllSourcesOnSmallGraphs) {
  const auto& [nranks, variant, backend] = GetParam();
  // Exact (all-sources) BC on shallow small shapes; deep graphs like path50
  // would be barrier-bound here (sources × levels supersteps) and their
  // traversal structure is already covered by the BFS/SSSP zoo sweeps.
  const std::vector<std::string> shapes{"star65",         "complete24",
                                        "bipartite10x12", "tree6",
                                        "two_components", "isolated"};
  const auto& zoo = pushpull::testing::unweighted_zoo();
  for (const auto& entry : zoo) {
    if (std::find(shapes.begin(), shapes.end(), entry.name) == shapes.end()) continue;
    const BcResult want = betweenness_centrality(entry.graph);
    BcDistOptions opt;
    opt.variant = variant;
    opt.backend = backend;
    const BcDistResult got = betweenness_centrality_dist(entry.graph, nranks, opt);
    expect_bc_near(got.bc, want.bc, entry.name + " " + to_string(variant));
  }
}

TEST_P(DistBc, MatchesCoreSampledSourcesOnSkewedGraph) {
  const auto& [nranks, variant, backend] = GetParam();
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  BcOptions core_opt;
  core_opt.sources = {0, 7, 31, 100, 200, 255};
  const BcResult want = betweenness_centrality(g, core_opt);
  BcDistOptions opt;
  opt.variant = variant;
  opt.backend = backend;
  opt.sources = core_opt.sources;
  const BcDistResult got = betweenness_centrality_dist(g, nranks, opt);
  expect_bc_near(got.bc, want.bc, to_string(variant));
}

TEST_P(DistBc, DirectedPathHasAnalyticCentrality) {
  const auto& [nranks, variant, backend] = GetParam();
  // Directed path 0→1→2→3→4 with sources {0,1,2,3}: δ counts pairs (s,t)
  // with v interior on the unique s→t path. Also exercises n < nranks.
  EdgeList edges;
  for (vid_t v = 0; v + 1 < 5; ++v) edges.push_back(Edge{v, static_cast<vid_t>(v + 1), 1.0f});
  const Digraph dg = build_digraph(5, std::move(edges));
  BcDistOptions opt;
  opt.variant = variant;
  opt.backend = backend;
  opt.sources = {0, 1, 2, 3};  // not all 5: no undirected halving
  const BcDistResult got = betweenness_centrality_dist(dg.out, nranks, opt, &dg.in);
  const std::vector<double> want{0.0, 3.0, 4.0, 3.0, 0.0};
  expect_bc_near(got.bc, want, to_string(variant));
}

PUSHPULL_TRAVERSAL_SUITE(DistBc);

TEST(DistBcDirOpt, ForwardDirectionOptimizingMatchesAndUsesBothModes) {
  // The skewed rmat frontier balloons after one hop from a hub source: the
  // forward σ-counting phase must flip to bottom-up and back, with BC values
  // identical (σ sums are exact integers under either expansion).
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  BcOptions core_opt;
  core_opt.sources = {0, 31, 100, 255};
  const BcResult want = betweenness_centrality(g, core_opt);
  for (BackendKind backend : kBackends) {
    if (pushpull::dist::testing::backend_unavailable(backend)) continue;
    for (DistVariant variant : {DistVariant::PushRma, DistVariant::MsgPassing}) {
      BcDistOptions opt;
      opt.variant = variant;
      opt.backend = backend;
      opt.sources = core_opt.sources;
      opt.direction_optimizing = true;
      const BcDistResult got = betweenness_centrality_dist(g, 4, opt);
      expect_bc_near(got.bc, want.bc,
                     std::string(to_string(backend)) + " " + to_string(variant));
      EXPECT_GT(got.dense_rounds, 0) << to_string(variant);
      EXPECT_GT(got.sparse_rounds, 0) << to_string(variant);
    }
  }
}

TEST(DistBcDirOpt, PullRmaForwardIsAlwaysDense) {
  Csr g = make_undirected(128, rmat_edges(7, 6, 5));
  BcDistOptions opt;
  opt.variant = DistVariant::PullRma;
  opt.sources = {0, 1};
  const BcDistResult got = betweenness_centrality_dist(g, 4, opt);
  EXPECT_EQ(got.sparse_rounds, 0);
  EXPECT_GT(got.dense_rounds, 0);
}

// --- Counters and the Figure 3 modeled ordering ---------------------------

TEST(DistTraversalCounters, VariantsIssueTheExpectedOpClasses) {
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  Csr wg = make_undirected_weighted(256, rmat_edges(8, 8, 17), 1.0f, 9.0f, 5);

  BfsDistOptions bfs_opt;
  bfs_opt.variant = DistVariant::PushRma;
  const auto bfs_push_res = bfs_dist(g, 0, 4, bfs_opt);
  EXPECT_GT(bfs_push_res.total.rma_accs, 0u);  // packed claim accumulates
  EXPECT_EQ(bfs_push_res.total.rma_gets, 0u);
  bfs_opt.variant = DistVariant::PullRma;
  const auto bfs_pull_res = bfs_dist(g, 0, 4, bfs_opt);
  EXPECT_GT(bfs_pull_res.total.rma_gets, 0u);  // bitmap probes
  EXPECT_EQ(bfs_pull_res.total.rma_accs, 0u);
  bfs_opt.variant = DistVariant::MsgPassing;
  const auto bfs_mp_res = bfs_dist(g, 0, 4, bfs_opt);
  EXPECT_EQ(bfs_mp_res.total.rma_accs, 0u);
  EXPECT_EQ(bfs_mp_res.total.rma_gets, 0u);
  EXPECT_GT(bfs_mp_res.total.msgs_sent, 0u);

  SsspDistOptions sssp_opt;
  sssp_opt.variant = DistVariant::PushRma;
  const auto sssp_push_res = sssp_dist(wg, 0, 4, sssp_opt);
  EXPECT_GT(sssp_push_res.total.rma_accs, 0u);  // float MIN accumulates
  EXPECT_EQ(sssp_push_res.total.rma_gets, 0u);

  // §4.5's asymmetry: BC's forward push is integer FAAs (fast path), its
  // backward push is float accumulates (lock protocol) — both present.
  BcDistOptions bc_opt;
  bc_opt.variant = DistVariant::PushRma;
  bc_opt.sources = {0, 1, 2, 3};
  const auto bc_push_res = betweenness_centrality_dist(g, 4, bc_opt);
  EXPECT_GT(bc_push_res.total.rma_faas, 0u);
  EXPECT_GT(bc_push_res.total.rma_accs, 0u);
  bc_opt.variant = DistVariant::MsgPassing;
  const auto bc_mp_res = betweenness_centrality_dist(g, 4, bc_opt);
  EXPECT_EQ(bc_mp_res.total.rma_faas, 0u);
  EXPECT_EQ(bc_mp_res.total.rma_accs, 0u);
  EXPECT_EQ(bc_mp_res.total.rma_gets, 0u);
}

TEST(DistTraversalCounters, CountersAreBackendIndependent) {
  // The façade attributes every counted operation above the transport, so a
  // run produces identical RankStats on emu threads and shm processes.
  if (pushpull::dist::testing::backend_unavailable(BackendKind::Shm)) {
    GTEST_SKIP() << "shm backend unavailable";
  }
  pushpull::dist::testing::install_rank_status_probe();
  Csr g = make_undirected(256, rmat_edges(8, 8, 17));
  for (DistVariant variant : kVariants) {
    BfsDistOptions opt;
    opt.variant = variant;
    opt.backend = BackendKind::Emu;
    const auto emu = bfs_dist(g, 0, 4, opt);
    opt.backend = BackendKind::Shm;
    const auto shm = bfs_dist(g, 0, 4, opt);
    EXPECT_EQ(emu.total.msgs_sent, shm.total.msgs_sent) << to_string(variant);
    EXPECT_EQ(emu.total.bytes_sent, shm.total.bytes_sent) << to_string(variant);
    EXPECT_EQ(emu.total.rma_accs, shm.total.rma_accs) << to_string(variant);
    EXPECT_EQ(emu.total.rma_gets, shm.total.rma_gets) << to_string(variant);
    EXPECT_EQ(emu.total.rma_faas, shm.total.rma_faas) << to_string(variant);
    EXPECT_EQ(emu.total.barriers, shm.total.barriers) << to_string(variant);
  }
}

TEST(DistTraversalModel, MsgPassingBeatsPushRmaForAllFrontierAlgorithms) {
  // Figure 3's frontier-side headline, reproduced at 8 ranks: combining
  // per-destination messages beats per-edge remote accumulates.
  Csr g = make_undirected(512, rmat_edges(9, 8, 21));
  Csr wg = make_undirected_weighted(512, rmat_edges(9, 8, 21), 1.0f, 9.0f, 23);
  const CommCosts costs;

  BfsDistOptions bfs_push_opt, bfs_mp_opt;
  bfs_push_opt.variant = DistVariant::PushRma;
  bfs_mp_opt.variant = DistVariant::MsgPassing;
  const auto bfs_push_res = bfs_dist(g, 0, 8, bfs_push_opt);
  const auto bfs_mp_res = bfs_dist(g, 0, 8, bfs_mp_opt);
  EXPECT_LT(bfs_mp_res.max_comm_us, bfs_push_res.max_comm_us);

  SsspDistOptions sssp_push_opt, sssp_mp_opt;
  sssp_push_opt.variant = DistVariant::PushRma;
  sssp_mp_opt.variant = DistVariant::MsgPassing;
  const auto sssp_push_res = sssp_dist(wg, 0, 8, sssp_push_opt);
  const auto sssp_mp_res = sssp_dist(wg, 0, 8, sssp_mp_opt);
  EXPECT_LT(sssp_mp_res.max_comm_us, sssp_push_res.max_comm_us);

  BcDistOptions bc_push_opt, bc_mp_opt;
  bc_push_opt.variant = DistVariant::PushRma;
  bc_push_opt.sources = {0, 1, 2, 3};
  bc_mp_opt.variant = DistVariant::MsgPassing;
  bc_mp_opt.sources = bc_push_opt.sources;
  const auto bc_push_res = betweenness_centrality_dist(g, 8, bc_push_opt);
  const auto bc_mp_res = betweenness_centrality_dist(g, 8, bc_mp_opt);
  EXPECT_LT(bc_mp_res.max_comm_us, bc_push_res.max_comm_us);
}

}  // namespace
}  // namespace pushpull::dist
