#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/atomics.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"

namespace pushpull {
namespace {

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  long counter = 0;
  constexpr int kIters = 20000;
#pragma omp parallel num_threads(4)
  {
#pragma omp for
    for (int i = 0; i < kIters; ++i) {
      SpinGuard guard(lock);
      ++counter;  // non-atomic increment protected by the lock
    }
  }
  EXPECT_EQ(counter, kIters);
}

TEST(Spinlock, TryLockReflectsState) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinlockPool, DistinctIndicesMayShare) {
  SpinlockPool pool(4);
  // Index i and i+4 hash to the same lock.
  Spinlock& a = pool.for_index(1);
  Spinlock& b = pool.for_index(5);
  EXPECT_EQ(&a, &b);
  Spinlock& c = pool.for_index(2);
  EXPECT_NE(&a, &c);
}

TEST(Atomics, FaaSumsAcrossThreads) {
  std::int64_t value = 0;
  constexpr int kIters = 50000;
#pragma omp parallel for num_threads(4)
  for (int i = 0; i < kIters; ++i) {
    faa(value, std::int64_t{1});
  }
  EXPECT_EQ(value, kIters);
}

TEST(Atomics, FaaReturnsPreviousValue) {
  int x = 5;
  EXPECT_EQ(faa(x, 3), 5);
  EXPECT_EQ(x, 8);
}

TEST(Atomics, CasSucceedsAndFails) {
  int x = 10;
  int expected = 10;
  EXPECT_TRUE(cas(x, expected, 20));
  EXPECT_EQ(x, 20);
  expected = 10;  // stale
  EXPECT_FALSE(cas(x, expected, 30));
  EXPECT_EQ(expected, 20);  // updated with the observed value
  EXPECT_EQ(x, 20);
}

TEST(Atomics, AtomicMinConvergesToMinimum) {
  float value = 1e30f;
  std::vector<float> inputs;
  for (int i = 0; i < 1000; ++i) inputs.push_back(static_cast<float>(1000 - i));
#pragma omp parallel for num_threads(4)
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    atomic_min(value, inputs[i]);
  }
  EXPECT_EQ(value, 1.0f);
}

TEST(Atomics, AtomicMinReportsWinner) {
  int value = 10;
  EXPECT_TRUE(atomic_min(value, 5));
  EXPECT_FALSE(atomic_min(value, 7));
  EXPECT_EQ(value, 5);
}

TEST(Atomics, FloatAtomicAddIsExactOnInts) {
  double value = 0.0;
  constexpr int kIters = 40000;
#pragma omp parallel for num_threads(4)
  for (int i = 0; i < kIters; ++i) {
    atomic_add(value, 1.0);  // integers ≤ 2^53 add exactly in double
  }
  EXPECT_EQ(value, static_cast<double>(kIters));
}

TEST(Atomics, LoadStoreRoundTrip) {
  double x = 0.0;
  atomic_store(x, 3.25);
  EXPECT_EQ(atomic_load(x), 3.25);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of round r has incremented.
        if (counter.load() < (r + 1) * kThreads) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace pushpull
