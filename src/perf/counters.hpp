// Software performance counters — the library's PAPI substitute.
//
// The paper's Table 1 reports eleven event classes per algorithm variant:
// L1/L2/L3 cache misses, data/instruction TLB misses, atomics, locks, reads,
// writes, and conditional/unconditional branches. Hardware counters are not
// available in this environment, so we count the events *exactly* in software:
// every instrumented kernel reports its memory reads/writes, issued atomics,
// acquired locks and executed branches through an instrumentation policy
// (see instr.hpp), and cache/TLB misses come from a cache simulator driven by
// the same access stream (see cache_sim.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/padded.hpp"

namespace pushpull {

// One thread's worth of event counts.
struct CounterBlock {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t atomics = 0;        // integer FAA / CAS
  std::uint64_t locks = 0;          // lock acquisitions (incl. float CAS loops)
  std::uint64_t branch_cond = 0;    // conditional branches
  std::uint64_t branch_uncond = 0;  // unconditional branches / calls

  CounterBlock& operator+=(const CounterBlock& o) noexcept {
    reads += o.reads;
    writes += o.writes;
    atomics += o.atomics;
    locks += o.locks;
    branch_cond += o.branch_cond;
    branch_uncond += o.branch_uncond;
    return *this;
  }

  void reset() noexcept { *this = CounterBlock{}; }
};

// Per-thread counter blocks, padded to avoid false sharing. Threads index
// their own block; aggregation happens once at the end of a measurement.
class PerfCounters {
 public:
  explicit PerfCounters(int max_threads) : blocks_(static_cast<std::size_t>(max_threads)) {
    PP_CHECK(max_threads > 0);
  }

  CounterBlock& at(int thread_id) noexcept {
    PP_DCHECK(thread_id >= 0 &&
              static_cast<std::size_t>(thread_id) < blocks_.size());
    return blocks_[static_cast<std::size_t>(thread_id)].value;
  }

  CounterBlock total() const noexcept {
    CounterBlock sum;
    for (const auto& b : blocks_) sum += b.value;
    return sum;
  }

  void reset() noexcept {
    for (auto& b : blocks_) b.value.reset();
  }

  int max_threads() const noexcept { return static_cast<int>(blocks_.size()); }

 private:
  std::vector<Padded<CounterBlock>> blocks_;
};

// Cache/TLB miss counts produced by the cache simulator.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t itlb_misses = 0;

  CacheStats& operator+=(const CacheStats& o) noexcept {
    accesses += o.accesses;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    l3_misses += o.l3_misses;
    dtlb_misses += o.dtlb_misses;
    itlb_misses += o.itlb_misses;
    return *this;
  }
};

// Full event record for one measured kernel — one column of Table 1.
struct EventRecord {
  CounterBlock ops;
  CacheStats cache;
};

}  // namespace pushpull
