// Set-associative cache-hierarchy and TLB simulator.
//
// Substitutes for the PAPI cache/TLB miss counters used in the paper's
// Table 1. The simulator is fed by the instrumented kernels' exact
// load/store address stream (CacheSimInstr in instr.hpp) and models:
//
//   * L1d:  32 KiB, 8-way, 64 B lines   (Xeon E5-2670 per-core L1)
//   * L2:  256 KiB, 8-way, 64 B lines
//   * L3:    8 MiB, 16-way, 64 B lines  (scaled-down shared LLC)
//   * dTLB: 64 entries, 4-way, 4 KiB pages
//   * iTLB: 16 entries, fully assoc., fed by synthetic code-region tags
//
// Replacement is LRU within a set. The hierarchy is modeled as strictly
// inclusive lookup (an access probes L1, on miss L2, on miss L3); this is
// enough to reproduce the paper's *relative* push/pull locality effects —
// pull variants make more scattered reads, push+PA improves reuse on dense
// graphs — without modeling coherence.
//
// The simulator is single-threaded by design: cache-miss measurements run the
// instrumented kernels with one thread for determinism (documented in
// DESIGN.md §3), while operation counts (reads/atomics/...) are measured in
// parallel runs.
#pragma once

#include <cstdint>
#include <vector>

#include "perf/counters.hpp"
#include "util/check.hpp"

namespace pushpull {

// One level of set-associative cache with LRU replacement.
class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes)
      : ways_(ways), line_bytes_(line_bytes) {
    PP_CHECK(ways >= 1 && line_bytes >= 1);
    PP_CHECK(size_bytes % (ways * line_bytes) == 0);
    sets_ = size_bytes / (ways * line_bytes);
    PP_CHECK((sets_ & (sets_ - 1)) == 0);  // power-of-two sets for masking
    tags_.assign(sets_ * ways_, kInvalid);
    stamps_.assign(sets_ * ways_, 0);
  }

  // Returns true on hit. Installs the line on miss.
  bool access(std::uint64_t line_addr) noexcept {
    const std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
    std::uint64_t* tag = &tags_[set * ways_];
    std::uint64_t* stamp = &stamps_[set * ways_];
    ++tick_;
    std::size_t victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (std::size_t w = 0; w < ways_; ++w) {
      if (tag[w] == line_addr) {
        stamp[w] = tick_;
        return true;
      }
      if (stamp[w] < oldest) {
        oldest = stamp[w];
        victim = w;
      }
    }
    tag[victim] = line_addr;
    stamp[victim] = tick_;
    return false;
  }

  void flush() noexcept {
    tags_.assign(tags_.size(), kInvalid);
    stamps_.assign(stamps_.size(), 0);
    tick_ = 0;
  }

  std::size_t line_bytes() const noexcept { return line_bytes_; }

 private:
  static constexpr std::uint64_t kInvalid = UINT64_MAX;

  std::size_t sets_ = 0;
  std::size_t ways_;
  std::size_t line_bytes_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t tick_ = 0;
};

struct CacheHierarchyConfig {
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l1_ways = 8;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t l2_ways = 8;
  std::size_t l3_bytes = 8 * 1024 * 1024;
  std::size_t l3_ways = 16;
  std::size_t line_bytes = 64;
  std::size_t dtlb_entries = 64;
  std::size_t dtlb_ways = 4;
  std::size_t itlb_entries = 16;
  std::size_t page_bytes = 4096;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& cfg = {})
      : cfg_(cfg),
        l1_(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
        l2_(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
        l3_(cfg.l3_bytes, cfg.l3_ways, cfg.line_bytes),
        dtlb_(cfg.dtlb_entries * cfg.page_bytes, cfg.dtlb_ways, cfg.page_bytes),
        itlb_(cfg.itlb_entries * cfg.page_bytes, cfg.itlb_entries, cfg.page_bytes) {}

  // Simulates a data access of `bytes` bytes at address `p`. Accesses that
  // straddle line/page boundaries touch every covered line/page.
  void access(const void* p, std::size_t bytes) noexcept {
    const std::uint64_t addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uint64_t first_line = addr / cfg_.line_bytes;
    const std::uint64_t last_line = (addr + (bytes ? bytes - 1 : 0)) / cfg_.line_bytes;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
      ++stats_.accesses;
      if (!l1_.access(line)) {
        ++stats_.l1_misses;
        if (!l2_.access(line)) {
          ++stats_.l2_misses;
          if (!l3_.access(line)) ++stats_.l3_misses;
        }
      }
    }
    const std::uint64_t first_page = addr / cfg_.page_bytes;
    const std::uint64_t last_page = (addr + (bytes ? bytes - 1 : 0)) / cfg_.page_bytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      if (!dtlb_.access(page)) ++stats_.dtlb_misses;
    }
  }

  // Simulates an instruction-stream touch of a synthetic code region. Kernels
  // tag their hot functions with small integer ids; each id maps to one code
  // page, so iTLB misses stay tiny (as in the paper) unless a kernel bounces
  // between many regions.
  void code_region(std::uint32_t region_id) noexcept {
    if (!itlb_.access(region_id)) ++stats_.itlb_misses;
  }

  const CacheStats& stats() const noexcept { return stats_; }

  void reset() noexcept {
    stats_ = CacheStats{};
    l1_.flush();
    l2_.flush();
    l3_.flush();
    dtlb_.flush();
    itlb_.flush();
  }

 private:
  CacheHierarchyConfig cfg_;
  CacheLevel l1_, l2_, l3_;
  CacheLevel dtlb_;  // reused as a TLB: "lines" are pages
  CacheLevel itlb_;
  CacheStats stats_;
};

}  // namespace pushpull
