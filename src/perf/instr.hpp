// Instrumentation policies.
//
// Every core kernel in libpushpull is a template over an instrumentation
// policy `Instr` and reports its fine-grained events through it:
//
//   instr.read(ptr, bytes)       — shared-memory load
//   instr.write(ptr, bytes)      — shared-memory store
//   instr.atomic(ptr, bytes)     — integer atomic (FAA / CAS), counts as a
//                                  read-modify-write access
//   instr.lock(ptr)              — lock acquisition (incl. float CAS loops,
//                                  which the paper accounts as locks, §4.1)
//   instr.branch_cond()          — conditional branch in the hot loop
//   instr.branch_uncond()        — unconditional branch / call
//   instr.code_region(id)        — synthetic instruction-stream tag (iTLB)
//
// Policies:
//   NullInstr     — all hooks are empty and inline away; the compiled kernel
//                   is the production kernel. All timing benchmarks use this.
//   CountingInstr — exact per-thread event counts (Table 1 op rows).
//   CacheSimInstr — counts + feeds the address stream into the cache/TLB
//                   simulator (Table 1 miss rows); single-threaded runs only.
#pragma once

#include <omp.h>

#include <cstddef>

#include "perf/cache_sim.hpp"
#include "perf/counters.hpp"
#include "util/check.hpp"

namespace pushpull {

// Zero-cost policy: production build of each kernel.
struct NullInstr {
  static constexpr bool kEnabled = false;

  void read(const void*, std::size_t) noexcept {}
  void write(const void*, std::size_t) noexcept {}
  void atomic(const void*, std::size_t) noexcept {}
  void lock(const void*) noexcept {}
  void branch_cond() noexcept {}
  void branch_uncond() noexcept {}
  void code_region(std::uint32_t) noexcept {}
};

// Exact operation counting; thread-safe via per-thread padded blocks.
class CountingInstr {
 public:
  static constexpr bool kEnabled = true;

  explicit CountingInstr(PerfCounters& pc) noexcept : pc_(&pc) {}

  void read(const void*, std::size_t) noexcept { ++tl().reads; }
  void write(const void*, std::size_t) noexcept { ++tl().writes; }
  void atomic(const void*, std::size_t) noexcept { ++tl().atomics; }
  void lock(const void*) noexcept { ++tl().locks; }
  void branch_cond() noexcept { ++tl().branch_cond; }
  void branch_uncond() noexcept { ++tl().branch_uncond; }
  void code_region(std::uint32_t) noexcept {}

  // The attached counter sink, for before/after snapshots around a traced
  // region (obs::instr_snapshot probes for exactly this accessor).
  const PerfCounters* counters() const noexcept { return pc_; }

 private:
  CounterBlock& tl() noexcept { return pc_->at(omp_get_thread_num()); }

  PerfCounters* pc_;
};

// Counting + cache simulation. Valid only in single-threaded execution: the
// cache simulator models one core and mutating it from several threads would
// be both racy and physically meaningless.
class CacheSimInstr {
 public:
  static constexpr bool kEnabled = true;

  CacheSimInstr(PerfCounters& pc, CacheHierarchy& cache) noexcept
      : pc_(&pc), cache_(&cache) {}

  void read(const void* p, std::size_t bytes) noexcept {
    check_single_thread();
    ++pc_->at(0).reads;
    cache_->access(p, bytes);
  }

  void write(const void* p, std::size_t bytes) noexcept {
    check_single_thread();
    ++pc_->at(0).writes;
    cache_->access(p, bytes);
  }

  void atomic(const void* p, std::size_t bytes) noexcept {
    check_single_thread();
    ++pc_->at(0).atomics;
    cache_->access(p, bytes);  // RMW touches the line once
  }

  void lock(const void* p) noexcept {
    check_single_thread();
    ++pc_->at(0).locks;
    cache_->access(p, sizeof(void*));
  }

  void branch_cond() noexcept { ++pc_->at(0).branch_cond; }
  void branch_uncond() noexcept { ++pc_->at(0).branch_uncond; }

  void code_region(std::uint32_t id) noexcept { cache_->code_region(id); }

 private:
  void check_single_thread() const noexcept {
    PP_DCHECK(omp_get_thread_num() == 0);
  }

  PerfCounters* pc_;
  CacheHierarchy* cache_;
};

}  // namespace pushpull
