#include "util/numa.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

#if defined(PUSHPULL_WITH_NUMA) && defined(PUSHPULL_HAVE_LIBNUMA)
#include <numa.h>
#endif

namespace pushpull::numa {

namespace {

// Reads a small sysfs file into a string; empty on any failure.
std::string read_sysfs(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[got] = '\0';
  return std::string(buf);
}

// Parses a cpulist string ("0-3,8,10-11") into cpu ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  const char* p = s.c_str();
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (*p == ',') ++p;
  }
  return cpus;
}

// Parses a sysfs cache size string ("32768K", "8M") into bytes; 0 on failure.
std::size_t parse_cache_size(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  std::size_t mult = 1;
  if (*end == 'K') mult = 1024;
  if (*end == 'M') mult = 1024 * 1024;
  if (*end == 'G') mult = 1024ull * 1024 * 1024;
  return static_cast<std::size_t>(v) * mult;
}

Topology probe() {
  Topology t;
#if defined(__linux__)
  const long cpus = sysconf(_SC_NPROCESSORS_CONF);
  t.cpus = cpus > 0 ? static_cast<int>(cpus) : 1;
#endif
  t.cpu_node.assign(static_cast<std::size_t>(t.cpus), 0);

  // Node structure. libnuma answers directly when compiled in and available;
  // otherwise walk /sys/devices/system/node/node*/cpulist.
#if defined(PUSHPULL_WITH_NUMA) && defined(PUSHPULL_HAVE_LIBNUMA)
  if (numa_available() >= 0) {
    t.nodes = numa_num_configured_nodes();
    if (t.nodes < 1) t.nodes = 1;
    for (int c = 0; c < t.cpus; ++c) {
      const int nd = numa_node_of_cpu(c);
      t.cpu_node[static_cast<std::size_t>(c)] = nd >= 0 ? nd : 0;
    }
    t.libnuma = true;
    t.from_sysfs = true;
  }
#endif
  if (!t.libnuma) {
    int nodes = 0;
    for (;; ++nodes) {
      const std::string list = read_sysfs("/sys/devices/system/node/node" +
                                          std::to_string(nodes) + "/cpulist");
      if (list.empty()) break;
      for (const int c : parse_cpulist(list)) {
        if (c >= 0 && c < t.cpus) t.cpu_node[static_cast<std::size_t>(c)] = nodes;
      }
    }
    if (nodes > 0) {
      t.nodes = nodes;
      t.from_sysfs = true;
    }
  }

  // Last-level cache: the largest cache reported for cpu0.
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx) + "/";
    const std::string size = read_sysfs(base + "size");
    if (size.empty()) break;
    const std::size_t bytes = parse_cache_size(size);
    if (bytes > t.llc_bytes) t.llc_bytes = bytes;
  }

  // Transparent hugepages: enabled unless the policy is pinned to [never].
  const std::string thp =
      read_sysfs("/sys/kernel/mm/transparent_hugepage/enabled");
  t.transparent_hugepages =
      !thp.empty() && thp.find("[never]") == std::string::npos;
  return t;
}

}  // namespace

const Topology& topology() {
  static const Topology t = probe();
  return t;
}

int current_node() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  const Topology& t = topology();
  if (cpu >= 0 && cpu < static_cast<int>(t.cpu_node.size())) {
    return t.cpu_node[static_cast<std::size_t>(cpu)];
  }
#endif
  return 0;
}

std::size_t default_llc_budget() {
  const std::size_t llc = topology().llc_bytes;
  return llc != 0 ? llc / 2 : std::size_t{16} << 20;
}

bool pin_current_thread_to_node(int node) {
#if defined(__linux__)
  if (!placement_enabled()) return false;
  const Topology& t = topology();
  if (node < 0 || t.nodes < 1) return false;
  const int target = node % t.nodes;
  cpu_set_t set;
  CPU_ZERO(&set);
  int members = 0;
  for (int c = 0; c < t.cpus; ++c) {
    if (t.cpu_node[static_cast<std::size_t>(c)] == target) {
      CPU_SET(c, &set);
      ++members;
    }
  }
  if (members == 0) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

ScopedNodePin::ScopedNodePin(int node) {
#if defined(__linux__)
  if (!placement_enabled()) return;
  static_assert(sizeof(cpu_set_t) <= sizeof(saved_));
  cpu_set_t saved;
  if (sched_getaffinity(0, sizeof(saved), &saved) != 0) return;
  if (!pin_current_thread_to_node(node)) return;
  std::memcpy(saved_, &saved, sizeof(saved));
  saved_bytes_ = sizeof(saved);
  active_ = true;
#else
  (void)node;
#endif
}

ScopedNodePin::~ScopedNodePin() {
#if defined(__linux__)
  if (!active_) return;
  cpu_set_t saved;
  std::memcpy(&saved, saved_, sizeof(saved));
  sched_setaffinity(0, saved_bytes_, &saved);
#endif
}

}  // namespace pushpull::numa
