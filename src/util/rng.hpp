// Seeded, reproducible random number generation.
//
// All randomness in libpushpull flows through these generators so that graph
// generators, workload sweeps, and property tests are bit-reproducible across
// runs and platforms. We use SplitMix64 for seeding and Xoshiro256** as the
// main engine (fast, passes BigCrush, trivially copyable).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pushpull {

// SplitMix64: used to expand a single 64-bit seed into a full generator
// state. Also a fine standalone generator for one-off draws.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the library's workhorse PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift without the
  // rejection step; bias is < 2^-32 for bound < 2^32, negligible for graph
  // sampling and acceptable for deterministic tests.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float next_float(float lo, float hi) noexcept {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Bernoulli draw with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  // Derive an independent stream (e.g. one per thread) from this generator.
  Rng split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pushpull
