// Lightweight runtime checks.
//
// PP_CHECK is always on (API misuse must fail loudly, even in Release);
// PP_DCHECK compiles out in NDEBUG builds and is safe to use in hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pushpull::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace pushpull::detail

#define PP_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::pushpull::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define PP_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define PP_DCHECK(expr) PP_CHECK(expr)
#endif
