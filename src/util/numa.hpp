// Machine topology and NUMA-aware thread/memory placement.
//
// The paper's §4.1 cost model prices remote accesses asymmetrically; on a
// multi-socket shared-memory machine the same asymmetry shows up as
// cross-socket cache-line traffic. This header gives the engine the three
// primitives that asymmetry needs, with a fallback-first design so the code
// compiles and runs identically on a single-socket CI container:
//
//   Topology   — NUMA node count, cpu→node map, last-level-cache size and
//                transparent-hugepage status, parsed from sysfs (pure file
//                reads, no library). When sysfs is absent (non-Linux,
//                sandboxes) everything degrades to one node / one cpu.
//   pinning    — sched_setaffinity-based best-effort thread→node pinning
//                (plain glibc). ScopedNodePin saves and restores the caller's
//                affinity mask so OpenMP pool threads are not permanently
//                confined after a NUMA-aware kernel returns.
//   first-touch — FirstTouchArray allocates without touching, so the thread
//                that fills a segment commits its pages (the Linux first-touch
//                policy places them on that thread's node).
//
// Build modes: the topology probe is always compiled (it also feeds the
// BlockedView LLC budget and the bench machine stanza). The *placement*
// actions — pinning and pinned first-touch fills — only act when the CMake
// option PUSHPULL_WITH_NUMA is ON; OFF builds keep every code path but the
// pin calls no-op, so results are bit-identical either way. When libnuma's
// headers are present, -DPUSHPULL_WITH_NUMA=ON additionally uses
// numa_node_of_cpu for the cpu→node map (PUSHPULL_HAVE_LIBNUMA); the sysfs
// parse is the fallback, not a second code path to validate.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace pushpull::numa {

struct Topology {
  int nodes = 1;              // NUMA domains ("sockets" at this granularity)
  int cpus = 1;               // configured logical cpus
  std::vector<int> cpu_node;  // cpu id -> owning node, size cpus
  std::size_t llc_bytes = 0;  // largest cache level found; 0 = unknown
  bool transparent_hugepages = false;  // THP not set to [never]
  bool from_sysfs = false;    // false: the single-node fallback defaults
  bool libnuma = false;       // cpu→node map came from libnuma
};

// The machine topology, probed once on first use and cached for the process.
const Topology& topology();

// Whether placement actions (pinning, pinned first-touch) are compiled in.
constexpr bool placement_enabled() noexcept {
#ifdef PUSHPULL_WITH_NUMA
  return true;
#else
  return false;
#endif
}

// NUMA node of the calling thread's current cpu; 0 when unknown.
int current_node();

// Default LLC budget for cache-blocked views: half the detected last-level
// cache (leaving room for the streamed adjacency), 16 MiB when undetected.
std::size_t default_llc_budget();

// Best-effort: confine the calling thread to `node`'s cpus. Returns false
// (and changes nothing) when placement is disabled, the node is out of range,
// or the syscall fails. `node` is taken modulo the topology's node count so
// callers can pin "partition p" on machines with fewer nodes than partitions.
bool pin_current_thread_to_node(int node);

// RAII pin: saves the calling thread's affinity mask, pins to `node`, and
// restores the saved mask on destruction. Inactive (no-op) whenever
// pin_current_thread_to_node would fail.
class ScopedNodePin {
 public:
  explicit ScopedNodePin(int node);
  ~ScopedNodePin();
  ScopedNodePin(const ScopedNodePin&) = delete;
  ScopedNodePin& operator=(const ScopedNodePin&) = delete;

  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  // Opaque saved cpu_set_t storage (kept out of the header to avoid leaking
  // <sched.h> into every includer).
  alignas(8) unsigned char saved_[128];
  std::size_t saved_bytes_ = 0;
};

// Heap buffer of trivial T that is allocated but *not* touched: the thread
// that first writes each page commits it, so a per-node fill loop places
// segments on their owning nodes (the kernel's default first-touch policy).
// Move-only; the empty state has data() == nullptr.
template <class T>
class FirstTouchArray {
  static_assert(std::is_trivial_v<T>,
                "first-touch fills skip constructors; T must be trivial");

 public:
  FirstTouchArray() = default;
  explicit FirstTouchArray(std::size_t count)
      : data_(count != 0 ? static_cast<T*>(::operator new(count * sizeof(T)))
                         : nullptr),
        size_(count) {}
  ~FirstTouchArray() { ::operator delete(data_); }

  FirstTouchArray(FirstTouchArray&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}
  FirstTouchArray& operator=(FirstTouchArray&& o) noexcept {
    if (this != &o) {
      ::operator delete(data_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  FirstTouchArray(const FirstTouchArray&) = delete;
  FirstTouchArray& operator=(const FirstTouchArray&) = delete;

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pushpull::numa
