// Minimal JSON string escaping, shared by the bench JsonWriter and the
// obs trace exporter. Escapes the two characters JSON forbids raw inside a
// string (`"` and `\`) plus all control characters below 0x20 — the named
// short escapes where they exist, \u00XX otherwise. Input is treated as
// opaque bytes: non-ASCII UTF-8 passes through untouched, which every JSON
// parser accepts.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace pushpull {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pushpull
