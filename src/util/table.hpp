// Minimal aligned-table printer used by the benchmark harnesses to emit
// paper-style tables (Table 1, Table 3, ...) on stdout.
#pragma once

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace pushpull {

// Collects rows of strings and prints them with aligned columns plus a
// header separator, e.g.
//
//   Graph   Push [ms]   Pull [ms]
//   -----   ---------   ---------
//   orc*        557.0       542.1
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  // Formats large counts with thousands separators (1,234,567) to match the
  // paper's Table 1 style.
  static std::string count(unsigned long long v) {
    std::string raw = std::to_string(v);
    std::string out;
    int c = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
      if (c != 0 && c % 3 == 0) out.push_back(',');
      out.push_back(*it);
      ++c;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  std::string to_string() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        os << std::setw(static_cast<int>(width[c])) << cell;
        if (c + 1 < width.size()) os << "   ";
      }
      os << '\n';
    };
    emit(header_);
    std::vector<std::string> sep;
    sep.reserve(header_.size());
    for (auto w : width) sep.emplace_back(w, '-');
    emit(sep);
    for (const auto& row : rows_) emit(row);
    return os.str();
  }

  void print() const { std::fputs(to_string().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pushpull
