// Tiny command-line flag parser for benchmark and example binaries.
//
// Supports `--key=value` and `--flag` forms. Unknown flags abort with a
// message so typos in experiment scripts fail loudly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

namespace pushpull {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq == std::string::npos) {
        args_.insert_or_assign(body, std::string("1"));
      } else {
        args_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
      }
    }
  }

  // Declare + read a flag. Every get_* call registers the key as known; after
  // all gets, call `check()` to reject unknown flags.
  long get_int(const std::string& key, long fallback) {
    known_.insert(key);
    auto it = args_.find(key);
    return it == args_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double fallback) {
    known_.insert(key);
    auto it = args_.find(key);
    return it == args_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  std::string get_string(const std::string& key, const std::string& fallback) {
    known_.insert(key);
    auto it = args_.find(key);
    return it == args_.end() ? fallback : it->second;
  }

  bool get_bool(const std::string& key, bool fallback = false) {
    known_.insert(key);
    auto it = args_.find(key);
    if (it == args_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

  void check() const {
    for (const auto& [k, v] : args_) {
      if (!known_.count(k)) {
        std::fprintf(stderr, "unknown flag: --%s\n", k.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> args_;
  std::set<std::string> known_;
};

}  // namespace pushpull
