// Cache-line padding utilities to avoid false sharing between threads.
#pragma once

#include <cstddef>
#include <new>

namespace pushpull {

// Destructive interference size; hardcoded to the x86-64 line size because
// libstdc++'s std::hardware_destructive_interference_size triggers ABI
// warnings when used in headers.
inline constexpr std::size_t kCacheLineBytes = 64;

// Wraps a T so that consecutive array elements land on distinct cache lines.
// Used for per-thread counters and per-thread frontier cursors.
template <class T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace pushpull
