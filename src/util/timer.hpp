// Wall-clock timing helpers for benchmarks and per-phase instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace pushpull {

// Monotonic wall-clock timer. `elapsed_s()` may be called repeatedly; the
// timer keeps running. `restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }
  double elapsed_us() const noexcept { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across several start/stop windows; used for the per-phase
// breakdowns (e.g. the Find-Minimum / Build-Merge-Tree / Merge phases of
// Boruvka MST in Figure 4).
class PhaseTimer {
 public:
  void start() noexcept { timer_.restart(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_s_ += timer_.elapsed_s();
      running_ = false;
    }
  }

  void reset() noexcept {
    total_s_ = 0.0;
    running_ = false;
  }

  double total_s() const noexcept { return total_s_; }
  double total_ms() const noexcept { return total_s_ * 1e3; }

 private:
  WallTimer timer_;
  double total_s_ = 0.0;
  bool running_ = false;
};

// RAII window that adds its lifetime to a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& t) noexcept : timer_(t) { timer_.start(); }
  ~ScopedPhase() { timer_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
};

}  // namespace pushpull
