// Executable PRAM cost model (§2.1, §4).
//
// The paper analyzes every push/pull algorithm pair on the PRAM variants
// CRCW-CB (Combining CRCW), CREW and EREW via two primitives:
//
//   k-relaxation — simultaneously propagate updates from/to k vertices
//                  to/from one of their neighbors (push/pull),
//   k-filter     — extract the vertices updated by one or more
//                  k-relaxations (non-trivial only when pushing).
//
// This module turns those analyses into callable cost formulas so that the
// asymptotic claims (e.g. "pushing in CREW pays a log d̂ factor", "pulling
// needs no atomics") can be evaluated, plotted and cross-checked against the
// measured operation counts from the instrumentation layer.
//
// Costs are asymptotic leading terms (constants dropped, as in the paper);
// they are intended for *comparisons between variants*, not absolute
// prediction.
#pragma once

#include <cstdint>

namespace pushpull::pram {

enum class Model { CRCW_CB, CREW, EREW };
enum class Dir { Push, Pull };

// Time = longest execution path S; Work = total instruction count W (§2.1).
struct Cost {
  double time = 0.0;
  double work = 0.0;

  Cost operator+(const Cost& o) const { return {time + o.time, work + o.work}; }
  Cost operator*(double s) const { return {time * s, work * s}; }
};

// Synchronization/communication profile of an algorithm variant (§4.9).
struct Profile {
  double read_conflicts = 0.0;
  double write_conflicts = 0.0;
  double atomics = 0.0;  // integer FAA/CAS
  double locks = 0.0;    // float-typed conflicts resolved by locks
};

// Machine and graph parameters shared by all formulas.
struct Params {
  double n = 0;      // |V|
  double m = 0;      // |E| (undirected edge count)
  double d_max = 0;  // d̂
  double P = 1;      // processors
};

// --- Primitives (§4, Cost Derivations) -------------------------------------

// k̄ = max(1, k/P).
double k_bar(double k, double P);

// Cost of one k-relaxation under the given model/direction.
Cost k_relaxation(double k, const Params& p, Model model, Dir dir);

// Cost of one k-filter (prefix-sum extraction); needed only when pushing.
Cost k_filter(double k, const Params& p);

// --- Simulation lemmas (§2.1) ----------------------------------------------

// Limiting P (LP): a P-processor PRAM algorithm runs on P' < P processors in
// time ceil(S * P / P').
Cost limit_processors(const Cost& c, double P, double P_prime);

// Simulating CRCW (M cells) on CREW/EREW: Θ(log n) slowdown.
Cost crcw_on_erew(const Cost& c, double n);

// --- Per-algorithm formulas (§4.1–§4.7) -------------------------------------

// PageRank with L power-iteration steps.
Cost pr_cost(const Params& p, double L, Model model, Dir dir);
Profile pr_profile(const Params& p, double L, Dir dir);

// Triangle Counting (NodeIterator).
Cost tc_cost(const Params& p, Model model, Dir dir);
Profile tc_profile(const Params& p, Dir dir);

// BFS on a graph of diameter D.
Cost bfs_cost(const Params& p, double D, Model model, Dir dir);
Profile bfs_profile(const Params& p, double D, Dir dir);

// Δ-stepping with L/Δ epochs and l_delta inner iterations per epoch.
Cost sssp_cost(const Params& p, double epochs, double l_delta, Model model, Dir dir);
Profile sssp_profile(const Params& p, double epochs, double l_delta, Dir dir);

// Betweenness centrality = 2n BFS invocations (§4.5).
Cost bc_cost(const Params& p, double D, Model model, Dir dir);
Profile bc_profile(const Params& p, double D, Dir dir);

// Boman graph coloring with L iterations.
Cost bgc_cost(const Params& p, double L, Model model, Dir dir);
Profile bgc_profile(const Params& p, double L, Dir dir);

// Boruvka MST (log n contraction rounds).
Cost mst_cost(const Params& p, Model model, Dir dir);
Profile mst_profile(const Params& p, Dir dir);

}  // namespace pushpull::pram
