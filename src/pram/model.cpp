#include "pram/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pushpull::pram {

namespace {
double log2p(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

double k_bar(double k, double P) { return std::max(1.0, k / std::max(1.0, P)); }

Cost k_relaxation(double k, const Params& p, Model model, Dir dir) {
  const double kb = k_bar(k, p.P);
  if (dir == Dir::Pull) {
    // Pulling avoids write conflicts entirely: O(k̄) time, O(k) work.
    return {kb, k};
  }
  switch (model) {
    case Model::CRCW_CB:
      // Combining CRCW merges concurrent writes for free: O(k̄), O(k).
      return {kb, k};
    case Model::CREW:
    case Model::EREW:
      // Binary merge-trees of height O(log d̂) resolve concurrent updates:
      // O(k̄ log d̂) time, O(k log d̂) work.
      return {kb * log2p(p.d_max), k * log2p(p.d_max)};
  }
  return {};
}

Cost k_filter(double k, const Params& p) {
  // Prefix-sum extraction: O(log P + k̄) time, O(min(k, n)) work.
  return {log2p(p.P) + k_bar(k, p.P), std::min(k, p.n)};
}

Cost limit_processors(const Cost& c, double P, double P_prime) {
  PP_CHECK(P_prime > 0 && P > 0);
  if (P_prime >= P) return c;
  return {std::ceil(c.time * P / P_prime), c.work};
}

Cost crcw_on_erew(const Cost& c, double n) {
  return {c.time * log2p(n), c.work * log2p(n)};
}

// --- PageRank (§4.1) --------------------------------------------------------

Cost pr_cost(const Params& p, double L, Model model, Dir dir) {
  // Per power-iteration step: k_i-relaxations with sum(k_i) = m over i <= d̂.
  const double logd = log2p(p.d_max);
  const bool creq = dir == Dir::Push && model != Model::CRCW_CB;
  const double f = creq ? logd : 1.0;
  return {L * f * (p.m / p.P + p.d_max), L * f * p.m};
}

Profile pr_profile(const Params& p, double L, Dir dir) {
  Profile prof;
  if (dir == Dir::Push) {
    prof.write_conflicts = L * p.m;
    prof.locks = L * p.m;  // float conflicts → locks (no CPU float atomics)
  } else {
    prof.read_conflicts = L * p.m;
  }
  return prof;
}

// --- Triangle Counting (§4.2) -----------------------------------------------

Cost tc_cost(const Params& p, Model model, Dir dir) {
  const double logd = log2p(p.d_max);
  const bool creq = dir == Dir::Push && model != Model::CRCW_CB;
  const double f = creq ? logd : 1.0;
  return {f * p.d_max * (p.m / p.P + p.d_max), f * p.m * p.d_max};
}

Profile tc_profile(const Params& p, Dir dir) {
  Profile prof;
  prof.read_conflicts = p.m * p.d_max;  // adjacency tests in both variants
  if (dir == Dir::Push) {
    prof.write_conflicts = p.m * p.d_max;
    prof.atomics = p.m * p.d_max;  // integer counters → FAA
  }
  return prof;
}

// --- BFS (§4.3) --------------------------------------------------------------

Cost bfs_cost(const Params& p, double D, Model model, Dir dir) {
  if (dir == Dir::Pull) {
    // Every iteration checks all edges: O(D(m/P + d̂)) time, O(Dm) work.
    return {D * (p.m / p.P + p.d_max), D * p.m};
  }
  const double logd = log2p(p.d_max);
  const double f = model == Model::CRCW_CB ? 1.0 : logd;
  // O(m/P + D(d̂ + log P)) time, O(m) work in CRCW-CB.
  return {f * (p.m / p.P + D * (p.d_max + log2p(p.P))), f * p.m};
}

Profile bfs_profile(const Params& p, double D, Dir dir) {
  Profile prof;
  if (dir == Dir::Push) {
    prof.write_conflicts = p.m;
    prof.atomics = p.m;  // CAS on integer visited/parent state
  } else {
    prof.read_conflicts = D * p.m;
  }
  return prof;
}

// --- Δ-Stepping (§4.4) --------------------------------------------------------

Cost sssp_cost(const Params& p, double epochs, double l_delta, Model model, Dir dir) {
  if (dir == Dir::Pull) {
    return {epochs * l_delta * (p.m / p.P + p.d_max), epochs * l_delta * p.m};
  }
  const double logd = log2p(p.d_max);
  const double f = model == Model::CRCW_CB ? 1.0 : logd;
  // Pushing relaxes each vertex's out-edges in only one epoch.
  return {f * (p.m * l_delta / p.P + epochs * l_delta * p.d_max),
          f * p.m * l_delta};
}

Profile sssp_profile(const Params& p, double epochs, double l_delta, Dir dir) {
  Profile prof;
  if (dir == Dir::Push) {
    prof.write_conflicts = p.m * l_delta;
    prof.atomics = p.m * l_delta;  // CAS-based distance relaxations
  } else {
    prof.read_conflicts = epochs * p.m * l_delta;
  }
  return prof;
}

// --- Betweenness Centrality (§4.5): 2n BFS invocations ------------------------

Cost bc_cost(const Params& p, double D, Model model, Dir dir) {
  return bfs_cost(p, D, model, dir) * (2.0 * p.n);
}

Profile bc_profile(const Params& p, double D, Dir dir) {
  Profile prof = bfs_profile(p, D, dir);
  prof.read_conflicts *= 2.0 * p.n;
  prof.write_conflicts *= 2.0 * p.n;
  prof.atomics *= 2.0 * p.n;
  if (dir == Dir::Push) {
    // The backward accumulation pushes floats: conflicts become locks (§4.5).
    prof.locks = prof.atomics / 2.0;
    prof.atomics /= 2.0;
  }
  return prof;
}

// --- Boman Graph Coloring (§4.6) ----------------------------------------------

Cost bgc_cost(const Params& p, double L, Model model, Dir dir) {
  const double logd = log2p(p.d_max);
  const bool creq = dir == Dir::Push && model != Model::CRCW_CB;
  const double f = creq ? logd : 1.0;
  return {L * f * (p.m / p.P + p.d_max), L * f * p.m};
}

Profile bgc_profile(const Params& p, double L, Dir dir) {
  Profile prof;
  if (dir == Dir::Push) {
    prof.write_conflicts = L * p.m;
    prof.atomics = L * p.m;  // integer avail-bit updates → CAS
  } else {
    prof.read_conflicts = L * p.m;
  }
  return prof;
}

// --- Boruvka MST (§4.7) --------------------------------------------------------

Cost mst_cost(const Params& p, Model model, Dir dir) {
  const double logn = log2p(p.n);
  const bool creq = dir == Dir::Push && model != Model::CRCW_CB;
  const double f = creq ? logn : 1.0;
  return {f * p.n * p.n / p.P, f * p.n * p.n};
}

Profile mst_profile(const Params& p, Dir dir) {
  Profile prof;
  if (dir == Dir::Push) {
    prof.write_conflicts = p.n * p.n;
    prof.atomics = p.n * p.n;  // CAS-based minimum-edge updates
  } else {
    prof.read_conflicts = p.n * p.n;
  }
  return prof;
}

}  // namespace pushpull::pram
