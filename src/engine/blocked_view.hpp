// Cache-blocked pull view (DESIGN.md §2 "Locality-aware views").
//
// Dense/frontier pull streams every in-arc of every destination per round;
// the per-arc *source* reads (pr[u], dist[u], comp[u]) are random accesses
// over the whole n-sized state array, which thrashes the LLC once the state
// outgrows it. BlockedView re-materializes the in-CSR as K contiguous
// source-range column blocks: block b holds exactly the arcs whose source id
// falls in [block_begin(b), block_end(b)), so a block-by-block sweep touches
// a source window of n/K vertices at a time — sized by construction to fit a
// configurable LLC budget (Gemini/GraphIt-style CSR segmenting; Grossman &
// Kozyrakis's locality argument applied to pull's random side).
//
// Because adjacency rows are sorted ascending, each block's share of a row is
// one contiguous *segment* of that row. The column blocks therefore
// materialize as per-(block, row) cut offsets into the parent arrays
// (graph/builder.hpp build_source_range_cuts) rather than copied adjacency:
// (K+1)·n extra cells buy the blocked traversal while arcs keep their global
// ids — edge_weight(e) and instr reads against the parent CSR stay correct
// under blocked execution, and no 2m-cell copy is paid.
//
// K selection: K = ceil(n · bytes_per_vertex / llc_budget), clamped to
// [1, max_blocks] — each block's live source-state slice fits the budget.
// The default budget is half the machine's detected LLC (util/numa.hpp).
//
// BlockedView satisfies the GraphView concept (out()/in()/degrees forward to
// the base view), so it slots into every view-templated kernel; edge_map.hpp
// overloads dense_pull/frontier_pull on it to run block-by-block — same
// functor, same PlainCtx zero-sync guarantee, bit-identical results — and
// forwards the push/sparse modes to the flat base CSRs unchanged. It also
// exposes the *pull-side* (in-CSR) CsrLike facade, so CsrLike-templated
// kernels (connected_components, pagerank_pull, sssp_delta) accept a
// BlockedView directly; on digraphs the facade is the in-CSR — use the
// GraphView-templated directed kernels there.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "engine/graph_view.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "util/check.hpp"
#include "util/numa.hpp"

namespace pushpull::engine {

struct BlockedOptions {
  // LLC budget one block's source-state slice must fit; 0 = half the
  // detected last-level cache (numa::default_llc_budget).
  std::size_t llc_budget_bytes = 0;
  // Width of the per-vertex state the pull round reads per source (PageRank
  // reads a double; BFS/CC read 4-byte labels — the default is conservative).
  std::size_t bytes_per_vertex = sizeof(double);
  // Upper bound on K: each extra block costs one O(n) destination sweep, so
  // past a point more blocks add overhead faster than locality.
  int max_blocks = 64;
  // >0: force K directly, ignoring the budget model (tests and sweeps).
  int num_blocks = 0;
};

template <GraphView Base>
class BlockedView {
 public:
  explicit BlockedView(const Base& base, BlockedOptions opt = {})
      : base_(base), out_(&base_.out()), in_(&base_.in()) {
    const vid_t n = in_->n();
    int k = opt.num_blocks;
    if (k <= 0) {
      std::size_t budget = opt.llc_budget_bytes != 0 ? opt.llc_budget_bytes
                                                     : numa::default_llc_budget();
      if (budget == 0) budget = 1;
      const std::size_t state =
          static_cast<std::size_t>(n) * opt.bytes_per_vertex;
      k = static_cast<int>((state + budget - 1) / budget);
    }
    k = std::clamp(k, 1, std::max(1, opt.max_blocks));
    // Even source ranges; when n < K the trailing blocks are empty (their
    // cut rows alias the row ends), which the executors handle like any
    // other empty segment.
    block_starts_.resize(static_cast<std::size_t>(k) + 1);
    const vid_t chunk = k > 0 ? (n + k - 1) / k : n;
    for (int b = 0; b <= k; ++b) {
      block_starts_[static_cast<std::size_t>(b)] =
          std::min<vid_t>(n, static_cast<vid_t>(b) * std::max<vid_t>(chunk, 1));
    }
    block_starts_.back() = n;
    cuts_ = build_source_range_cuts(*in_, block_starts_);
  }

  // --- GraphView surface (forwards to the base view) -------------------------
  const Csr& out() const noexcept { return *out_; }
  const Csr& in() const noexcept { return *in_; }
  vid_t n() const noexcept { return in_->n(); }
  eid_t num_arcs() const noexcept { return in_->num_arcs(); }
  vid_t out_degree(vid_t v) const noexcept { return base_.out_degree(v); }
  vid_t in_degree(vid_t v) const noexcept { return base_.in_degree(v); }
  static constexpr bool is_symmetric() noexcept { return Base::is_symmetric(); }
  const Base& base() const noexcept { return base_; }

  // --- block structure -------------------------------------------------------
  int num_blocks() const noexcept {
    return static_cast<int>(block_starts_.size()) - 1;
  }
  vid_t block_begin(int b) const noexcept {
    return block_starts_[static_cast<std::size_t>(b)];
  }
  vid_t block_end(int b) const noexcept {
    return block_starts_[static_cast<std::size_t>(b) + 1];
  }
  // Cut row b: per-destination first arc with source >= block_begin(b).
  // Block b scans [cut_row(b)[d], cut_row(b+1)[d]) of the in-CSR.
  const eid_t* cut_row(int b) const noexcept {
    return cuts_.data() + static_cast<std::size_t>(b) * static_cast<std::size_t>(n());
  }
  // Cut-array overhead: (K+1)·n cells on top of the parent CSR (the blocks
  // are cuts into the parent arrays, not copies).
  std::size_t representation_cells() const noexcept { return cuts_.size(); }
  // Arcs materialized in block b (for benches/tests).
  eid_t block_arcs(int b) const {
    const eid_t* lo = cut_row(b);
    const eid_t* hi = cut_row(b + 1);
    eid_t arcs = 0;
    for (vid_t d = 0; d < n(); ++d) {
      arcs += hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)];
    }
    return arcs;
  }

  // --- pull-side CsrLike facade (the in-CSR) ---------------------------------
  vid_t degree(vid_t v) const noexcept { return in_->degree(v); }
  std::span<const vid_t> neighbors(vid_t v) const noexcept {
    return in_->neighbors(v);
  }
  eid_t edge_begin(vid_t v) const noexcept { return in_->edge_begin(v); }
  eid_t edge_end(vid_t v) const noexcept { return in_->edge_end(v); }
  vid_t edge_target(eid_t e) const noexcept { return in_->edge_target(e); }
  weight_t edge_weight(eid_t e) const noexcept { return in_->edge_weight(e); }
  bool has_weights() const noexcept { return in_->has_weights(); }
  const std::vector<eid_t>& offsets() const noexcept { return in_->offsets(); }
  const std::vector<weight_t>& weight_array() const noexcept {
    return in_->weight_array();
  }

 private:
  Base base_;  // by value: the base views are pointer-sized wrappers
  const Csr* out_;
  const Csr* in_;
  std::vector<vid_t> block_starts_;  // K+1 boundaries over the source space
  std::vector<eid_t> cuts_;          // (K+1)·n per-(block, row) segment cuts
};

static_assert(GraphView<BlockedView<SymmetricView>>);
static_assert(GraphView<BlockedView<DigraphView>>);
static_assert(CsrLike<BlockedView<SymmetricView>>);

inline BlockedView<SymmetricView> blocked_view_of(const Csr& g,
                                                  BlockedOptions opt = {}) {
  return BlockedView<SymmetricView>(SymmetricView(g), opt);
}

inline BlockedView<DigraphView> blocked_view_of(const Digraph& g,
                                                BlockedOptions opt = {}) {
  return BlockedView<DigraphView>(DigraphView(g), opt);
}

}  // namespace pushpull::engine
