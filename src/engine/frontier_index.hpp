// Transposed frontier index for frontier-aware pull (Grossman & Kozyrakis,
// "A New Frontier for Pull-Based Graph Processing").
//
// Dense pull's waste at medium frontier densities is structural: it scans
// *every* in-arc of every candidate destination even when only a sliver of
// the sources could supply an update. The index fixes that by bucketing the
// sparse frontier by 64-id source block — one membership word per block plus
// the sorted list of touched blocks — so a pull loop can
//
//   (a) intersect a long in-arc row against the touched-block list (binary
//       search into the row per active block; CSR rows are sorted ascending —
//       a CsrLike contract), reading none of the arcs from inactive blocks,
//       and
//   (b) filter arcs inside an active block with a single AND.
//
// pull_edges_indexed (edge_map.hpp) picks walk (a) or a plain filtered scan
// per destination row from the row length vs the touched-block count.
//
// build() costs O(|F| + touched blocks): clear() re-zeroes only the touched
// words, so a round with a tiny frontier pays nothing for the (n/64)-word
// array after construction. The index is an over-approximation by design —
// the loop still calls the functor's update() for every arc whose source is
// active, and functors keep their own source predicates, so results are
// identical to a dense pull over the same functor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

class FrontierIndex {
 public:
  static constexpr int kBlockBits = 6;
  static constexpr vid_t kBlockSize = vid_t{1} << kBlockBits;

  explicit FrontierIndex(vid_t n)
      : words_((static_cast<std::size_t>(n) + kBlockSize - 1) >> kBlockBits,
               0) {}

  static constexpr vid_t block_of(vid_t v) noexcept { return v >> kBlockBits; }

  // First vertex id past v's block — where a zero-word skip resumes scanning.
  static constexpr vid_t block_end(vid_t v) noexcept {
    return ((v >> kBlockBits) + 1) << kBlockBits;
  }

  // Rebuilds the index from a sparse frontier. O(|F| + previously touched
  // blocks); single-threaded (the frontier is already materialized and the
  // caller sits between parallel rounds).
  void build(std::span<const vid_t> frontier) {
    clear();
    for (const vid_t v : frontier) {
      const std::size_t b = static_cast<std::size_t>(block_of(v));
      PP_DCHECK(b < words_.size());
      if (words_[b] == 0) touched_.push_back(b);
      words_[b] |= std::uint64_t{1} << (v & (kBlockSize - 1));
    }
    // Ascending block order: the block-intersection pull walk merges this
    // list against each sorted in-arc row, which keeps its update order (and
    // so e.g. BFS parent identity) identical to a full ascending arc scan.
    std::sort(touched_.begin(), touched_.end());
    size_ = static_cast<std::int64_t>(frontier.size());
  }

  void clear() noexcept {
    for (const std::size_t b : touched_) words_[b] = 0;
    touched_.clear();
    size_ = 0;
  }

  // Membership word of v's block; zero means no in-arc from the block can
  // supply an update.
  std::uint64_t word_for(vid_t v) const noexcept {
    return words_[static_cast<std::size_t>(block_of(v))];
  }

  bool test(vid_t v) const noexcept {
    return (word_for(v) >> (v & (kBlockSize - 1))) & 1;
  }

  std::int64_t size() const noexcept { return size_; }
  std::size_t touched_blocks() const noexcept { return touched_.size(); }

  // The active blocks, ascending — the outer list of the block-intersection
  // pull walk.
  std::span<const std::size_t> touched() const noexcept { return touched_; }

  std::uint64_t word_at(std::size_t block) const noexcept {
    return words_[block];
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::size_t> touched_;
  std::int64_t size_ = 0;
};

}  // namespace pushpull::engine
