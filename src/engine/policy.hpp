// Engine policies: the §5 acceleration strategies as composable, orthogonal
// axes (DESIGN.md §2).
//
// The paper's claim is that push vs. pull is one generic dichotomy with one
// switching controller (Generic-Switch) and a small set of acceleration
// strategies that apply uniformly across algorithms. The engine encodes that
// claim as a policy product:
//
//   direction  — ForcePush | ForcePull | GenericSwitch(α, β)
//   sync       — Atomic (CAS/FAA, float CAS loops lock-accounted)
//                | StripedLock (spinlock pool, arbitrary critical sections)
//                | plain thread-owned writes (pull modes always use these)
//   partition  — Flat | PartitionAware (Algorithm 8 local/remote split)
//   frontier   — FrontierExploit: sparse frontier-driven traversal vs. dense
//                full sweeps (the engine's sparse vs. dense map variants)
//   greedy     — GreedySwitch: drop to a sequential tail once the active set
//                falls below a threshold fraction (the caller runs the tail;
//                the engine supplies the decision)
//
// Every combination drives the same edge_map loops in edge_map.hpp; kernels
// select policies, they do not reimplement traversal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/direction.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

// The traversal loop shapes one edge_map call can take.
enum class Mode {
  SparsePush,  // iterate a sparse frontier, write along out-edges (k-filter out)
  DensePull,   // iterate all destinations, scan in-edges, early-break option
  SparsePull,  // iterate a sparse destination set, scan in-edges
  DensePush,   // iterate all sources, write along out-edges
  FrontierPull,  // dense destination sweep consulting a per-round transposed
                 // frontier index: whole 64-source blocks with no active
                 // member are skipped, the rest filtered per-arc (Grossman &
                 // Kozyrakis's frontier-indexed pull). Still PlainCtx.
  BlockedPull,   // dense/frontier pull over a BlockedView: the in-CSR is
                 // walked as K source-range column blocks so the scanned
                 // source window stays LLC-resident (engine/blocked_view.hpp).
                 // Same functor, same PlainCtx, bit-identical results.
};

inline const char* to_string(Mode m) {
  switch (m) {
    case Mode::SparsePush: return "sparse-push";
    case Mode::DensePull: return "dense-pull";
    case Mode::SparsePull: return "sparse-pull";
    case Mode::DensePush: return "dense-push";
    case Mode::FrontierPull: return "frontier-pull";
    case Mode::BlockedPull: return "blocked-pull";
  }
  return "?";
}

// Synchronization used by push-mode updates. Pull modes never synchronize —
// thread-owned writes are the defining property of pulling (§3.8) and the
// engine enforces it by construction (PlainCtx is the only pull context).
enum class Sync {
  Atomic,       // integer CAS/FAA; float accumulation = lock-accounted CAS loop
  StripedLock,  // spinlock pool keyed by destination vertex
  Plain,        // provably conflict-free push (a single-source round like
                // Prim's relaxation, or writes the partition makes exclusive);
                // same context as the PA local half. The writes still cross
                // ownership and are counted as writes, just not synchronized.
};

// Adjacency representation for push sweeps.
enum class PartitionPolicy {
  Flat,            // one CSR, every update pays the sync policy
  PartitionAware,  // Algorithm 8: local half plain, remote half synced
  NumaAware,       // Algorithm 8 at socket granularity: per-node first-touch
                   // segments (graph/partition_aware.hpp NumaAwareCsr), one
                   // pinned lane per node, node-local writes plain and
                   // cross-node writes synced (engine::dense_push_numa)
};

// Named policy bundles for benches and tests: the §5 strategy set as it
// appears in Figure 6 plus the two static directions.
enum class StrategyKind {
  StaticPush,
  StaticPull,
  GenericSwitch,   // GS: α/β-controlled direction flips per superstep
  GreedySwitch,    // GrS: GS + sequential tail under the threshold
  FrontierExploit, // FE: sparse frontier-driven maps (push until GS says pull)
  PartitionAware,  // PA: push with the local/remote split representation
};

const char* to_string(StrategyKind k);

// Parses "push|pull|gs|grs|fe|pa" (the bench `--policy` vocabulary).
// Aborts with a message listing the vocabulary on anything else.
StrategyKind parse_strategy(const std::string& name);

// "all" → every strategy, otherwise the one named policy.
std::vector<StrategyKind> parse_strategy_list(const std::string& name);

// Which loop shape a pull-direction superstep should take.
enum class PullShape {
  Dense,            // full in-arc sweep (early break pays at high density)
  FrontierIndexed,  // consult the transposed frontier index (medium density)
};

// Direction selection for one superstep, shared by every switching kernel.
// Wraps SwitchController with the strategy vocabulary so kernels write
// `policy.choose(...)` instead of hand-rolling the Beamer heuristic.
struct DirectionParams {
  double alpha = kSwitchAlpha;  // push→pull when active_work > total/α
  double beta = kSwitchBeta;    // pull→push when active_count < total/β
  double grs_threshold = 0.0;   // >0: suggest a sequential tail below this
  // Frontier-aware pull window: a pull superstep whose frontier supplies less
  // than total/γ of the arc mass uses the indexed loop instead of the full
  // dense sweep (above that, most source blocks are active and the index is
  // pure overhead). 0 disables the indexed path entirely.
  double gamma = 3.0;

  DirectionParams with_thresholds(const SwitchThresholds& t) const {
    DirectionParams p = *this;
    p.alpha = t.alpha_out;
    p.beta = t.beta_in;
    return p;
  }
};

// Derives the per-direction (α_out, β_in) pair from a view's source/sink
// structure (switch_defaults.hpp has the model). Constrained on the degree
// accessors rather than GraphView so Csr-likes qualify too.
template <class View>
  requires requires(const View& v, vid_t x) {
    v.n();
    v.num_arcs();
    v.out_degree(x);
    v.in_degree(x);
  }
SwitchThresholds per_direction_thresholds(const View& view,
                                          double alpha = kSwitchAlpha,
                                          double beta = kSwitchBeta) {
  // Fast path: views whose CSRs cache their nonzero-degree census (Csr does —
  // the count is a property of the adjacency structure, computed once per
  // graph) answer in O(1), hoisting the per-call O(n) reduction out of every
  // directed-BFS run. Views over CsrLikes without the cache (snapshot
  // overlays) keep the scan.
  std::int64_t out_sources = 0, in_sinks = 0;
  if constexpr (requires {
                  view.out().num_nonempty();
                  view.in().num_nonempty();
                }) {
    out_sources = view.out().num_nonempty();
    in_sinks = view.in().num_nonempty();
  } else {
    const vid_t n = view.n();
#pragma omp parallel for reduction(+ : out_sources, in_sinks) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      out_sources += view.out_degree(v) > 0 ? 1 : 0;
      in_sinks += view.in_degree(v) > 0 ? 1 : 0;
    }
  }
  return pushpull::per_direction_thresholds(
      static_cast<double>(view.num_arcs()), static_cast<double>(out_sources),
      static_cast<double>(in_sinks), alpha, beta);
}

class DirectionPolicy {
 public:
  using Params = DirectionParams;

  DirectionPolicy(StrategyKind kind, Params p = Params(),
                  Direction start = Direction::Push)
      : kind_(kind), params_(p), ctl_(p.alpha, p.beta, start) {}

  StrategyKind kind() const noexcept { return kind_; }
  const Params& params() const noexcept { return params_; }

  // Direction for the next superstep given this superstep's statistics.
  Direction choose(double active_work, double total_work, double active_count,
                   double total_count) noexcept {
    switch (kind_) {
      case StrategyKind::StaticPush:
      case StrategyKind::PartitionAware:
        return Direction::Push;
      case StrategyKind::StaticPull:
        return Direction::Pull;
      case StrategyKind::FrontierExploit:
        // FE keeps its direction fixed; only the frontier sparsity changes.
        return ctl_.current();
      case StrategyKind::GenericSwitch:
      case StrategyKind::GreedySwitch:
        return ctl_.step(active_work, total_work, active_count, total_count);
    }
    return Direction::Push;
  }

  Direction current() const noexcept {
    switch (kind_) {
      case StrategyKind::StaticPull: return Direction::Pull;
      case StrategyKind::StaticPush:
      case StrategyKind::PartitionAware: return Direction::Push;
      default: return ctl_.current();
    }
  }

  // Pull-flavor decision for a superstep that will pull: the indexed loop
  // wins while the frontier supplies a sub-γ share of the arc mass (few
  // source blocks active → whole-block skips dominate); at higher densities
  // the dense sweep's early break already touches nearly every block, so the
  // index is overhead. Callers that cannot supply a frontier (no sparse ids
  // in hand) simply don't ask.
  PullShape pull_shape(double active_work, double total_work) const noexcept {
    return (params_.gamma > 0.0 &&
            active_work * params_.gamma < total_work)
               ? PullShape::FrontierIndexed
               : PullShape::Dense;
  }

  // GreedySwitch decision: true once the active count falls below
  // threshold · total (and the strategy is GrS). The caller owns the
  // sequential tail; the engine owns only the decision.
  bool suggest_sequential(double active_count, double total_count) const noexcept {
    return kind_ == StrategyKind::GreedySwitch && params_.grs_threshold > 0.0 &&
           active_count < params_.grs_threshold * total_count;
  }

  void force(Direction d) noexcept { ctl_.force(d); }

 private:
  StrategyKind kind_;
  Params params_;
  SwitchController ctl_;
};

}  // namespace pushpull::engine
