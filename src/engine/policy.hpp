// Engine policies: the §5 acceleration strategies as composable, orthogonal
// axes (DESIGN.md §2).
//
// The paper's claim is that push vs. pull is one generic dichotomy with one
// switching controller (Generic-Switch) and a small set of acceleration
// strategies that apply uniformly across algorithms. The engine encodes that
// claim as a policy product:
//
//   direction  — ForcePush | ForcePull | GenericSwitch(α, β)
//   sync       — Atomic (CAS/FAA, float CAS loops lock-accounted)
//                | StripedLock (spinlock pool, arbitrary critical sections)
//                | plain thread-owned writes (pull modes always use these)
//   partition  — Flat | PartitionAware (Algorithm 8 local/remote split)
//   frontier   — FrontierExploit: sparse frontier-driven traversal vs. dense
//                full sweeps (the engine's sparse vs. dense map variants)
//   greedy     — GreedySwitch: drop to a sequential tail once the active set
//                falls below a threshold fraction (the caller runs the tail;
//                the engine supplies the decision)
//
// Every combination drives the same edge_map loops in edge_map.hpp; kernels
// select policies, they do not reimplement traversal.
#pragma once

#include <string>
#include <vector>

#include "core/direction.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

// The four traversal loop shapes one edge_map call can take.
enum class Mode {
  SparsePush,  // iterate a sparse frontier, write along out-edges (k-filter out)
  DensePull,   // iterate all destinations, scan in-edges, early-break option
  SparsePull,  // iterate a sparse destination set, scan in-edges (frontier-
               // aware pull — Grossman & Kozyrakis's "new frontier")
  DensePush,   // iterate all sources, write along out-edges
};

inline const char* to_string(Mode m) {
  switch (m) {
    case Mode::SparsePush: return "sparse-push";
    case Mode::DensePull: return "dense-pull";
    case Mode::SparsePull: return "sparse-pull";
    case Mode::DensePush: return "dense-push";
  }
  return "?";
}

// Synchronization used by push-mode updates. Pull modes never synchronize —
// thread-owned writes are the defining property of pulling (§3.8) and the
// engine enforces it by construction (PlainCtx is the only pull context).
enum class Sync {
  Atomic,       // integer CAS/FAA; float accumulation = lock-accounted CAS loop
  StripedLock,  // spinlock pool keyed by destination vertex
  Plain,        // provably conflict-free push (a single-source round like
                // Prim's relaxation, or writes the partition makes exclusive);
                // same context as the PA local half. The writes still cross
                // ownership and are counted as writes, just not synchronized.
};

// Adjacency representation for push sweeps.
enum class PartitionPolicy {
  Flat,            // one CSR, every update pays the sync policy
  PartitionAware,  // Algorithm 8: local half plain, remote half synced
};

// Named policy bundles for benches and tests: the §5 strategy set as it
// appears in Figure 6 plus the two static directions.
enum class StrategyKind {
  StaticPush,
  StaticPull,
  GenericSwitch,   // GS: α/β-controlled direction flips per superstep
  GreedySwitch,    // GrS: GS + sequential tail under the threshold
  FrontierExploit, // FE: sparse frontier-driven maps (push until GS says pull)
  PartitionAware,  // PA: push with the local/remote split representation
};

const char* to_string(StrategyKind k);

// Parses "push|pull|gs|grs|fe|pa" (the bench `--policy` vocabulary).
// Aborts with a message listing the vocabulary on anything else.
StrategyKind parse_strategy(const std::string& name);

// "all" → every strategy, otherwise the one named policy.
std::vector<StrategyKind> parse_strategy_list(const std::string& name);

// Direction selection for one superstep, shared by every switching kernel.
// Wraps SwitchController with the strategy vocabulary so kernels write
// `policy.choose(...)` instead of hand-rolling the Beamer heuristic.
struct DirectionParams {
  double alpha = 14.0;          // push→pull when active_work > total/α
  double beta = 24.0;           // pull→push when active_count < total/β
  double grs_threshold = 0.0;   // >0: suggest a sequential tail below this
};

class DirectionPolicy {
 public:
  using Params = DirectionParams;

  DirectionPolicy(StrategyKind kind, Params p = Params(),
                  Direction start = Direction::Push)
      : kind_(kind), params_(p), ctl_(p.alpha, p.beta, start) {}

  StrategyKind kind() const noexcept { return kind_; }
  const Params& params() const noexcept { return params_; }

  // Direction for the next superstep given this superstep's statistics.
  Direction choose(double active_work, double total_work, double active_count,
                   double total_count) noexcept {
    switch (kind_) {
      case StrategyKind::StaticPush:
      case StrategyKind::PartitionAware:
        return Direction::Push;
      case StrategyKind::StaticPull:
        return Direction::Pull;
      case StrategyKind::FrontierExploit:
        // FE keeps its direction fixed; only the frontier sparsity changes.
        return ctl_.current();
      case StrategyKind::GenericSwitch:
      case StrategyKind::GreedySwitch:
        return ctl_.step(active_work, total_work, active_count, total_count);
    }
    return Direction::Push;
  }

  Direction current() const noexcept {
    switch (kind_) {
      case StrategyKind::StaticPull: return Direction::Pull;
      case StrategyKind::StaticPush:
      case StrategyKind::PartitionAware: return Direction::Push;
      default: return ctl_.current();
    }
  }

  // GreedySwitch decision: true once the active count falls below
  // threshold · total (and the strategy is GrS). The caller owns the
  // sequential tail; the engine owns only the decision.
  bool suggest_sequential(double active_count, double total_count) const noexcept {
    return kind_ == StrategyKind::GreedySwitch && params_.grs_threshold > 0.0 &&
           active_count < params_.grs_threshold * total_count;
  }

  void force(Direction d) noexcept { ctl_.force(d); }

 private:
  StrategyKind kind_;
  Params params_;
  SwitchController ctl_;
};

}  // namespace pushpull::engine
