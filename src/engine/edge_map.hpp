// The direction-aware edge_map / vertex_map substrate (DESIGN.md §2).
//
// One traversal engine under every shared-memory kernel: BFS, SSSP-Δ, BC,
// PageRank and coloring conflict-detection in src/core/, the GAS engine in
// src/gas/ and the SpMV/SpMSpV kernels in src/la/ all run through the four
// loop shapes below. Kernels supply a small *functor* describing the per-edge
// state change; the engine supplies the loops, the frontier machinery (the
// k-filter via FrontierBuffers), the sync policy (through the update contexts
// of context.hpp) and uniform operation counting.
//
// Functor concept (all hooks optional except update):
//
//   struct F {
//     // pull modes: destination filter; scanning v is skipped/stopped when
//     // false. push modes: not used.
//     bool cond(vid_t v) const;
//     // push modes: source filter (dense push visits only passing sources).
//     bool source(vid_t s) const;               // or source(s, frontier_pos)
//     // per-source / per-destination payload computed once per iterated
//     // vertex and passed to update as the last argument.
//     auto source_data(Ctx&, vid_t s);          // push; or (ctx, s, pos)
//     auto dest_data(Ctx&, vid_t d);            // pull
//     // The state change for edge s→d (e indexes weights). Write through ctx
//     // only. Return true to put the written vertex (push: d, pull: d) into
//     // the output set.
//     bool update(Ctx&, vid_t s, vid_t d, eid_t e);
//     // pull modes: runs before v's in-neighbor scan (initialize the
//     // destination's accumulator in the same pass).
//     void begin_dest(Ctx&, vid_t d);
//     // pull modes: runs after v's in-neighbor scan; its return value
//     // replaces the per-edge returns for output-set membership.
//     bool finalize(Ctx&, vid_t d);
//     // pull modes: stop scanning v's in-neighbors after the first update
//     // that returns true (the §3.3 bottom-up early break).
//     static constexpr bool kBreakOnUpdate = true;
//   };
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "engine/blocked_view.hpp"
#include "engine/context.hpp"
#include "engine/frontier_index.hpp"
#include "engine/graph_view.hpp"
#include "engine/policy.hpp"
#include "engine/vertex_set.hpp"
#include "graph/csr.hpp"
#include "graph/partition_aware.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "sync/spinlock.hpp"
#include "util/check.hpp"
#include "util/numa.hpp"
#include "util/timer.hpp"

namespace pushpull::engine {

// Per-call knobs. `sync` picks the push context; pull modes always use
// thread-owned plain writes. Counter attribution: the engine itself issues
// code_region(region) once per iterated vertex and branch_cond() once per
// scanned edge; everything else is counted by the functor's ctx calls.
struct EdgeMapOptions {
  Sync sync = Sync::Atomic;
  bool track_output = true;   // build the output VertexSet
  bool dedup_output = false;  // push modes: bitmap test-and-set on output
  int region = 0;             // code_region id for the iTLB model
};

struct EdgeMapStats {
  Mode mode = Mode::SparsePush;
  std::int64_t updates = 0;  // number of update() calls returning true
  double seconds = 0.0;
};

// Reusable engine state: per-thread k-filter buffers, the striped lock pool,
// and the output-dedup bitmap. One Workspace per kernel invocation (it sizes
// to the graph); every edge_map call borrows it.
class Workspace {
 public:
  explicit Workspace(vid_t n, std::size_t lock_stripes = 4096)
      : n_(n), buffers_(omp_get_max_threads()), locks_(lock_stripes) {}

  vid_t n() const noexcept { return n_; }
  FrontierBuffers& buffers() noexcept { return buffers_; }
  SpinlockPool& locks() noexcept { return locks_; }

  // The dedup bitmap is lazy: construction stays O(threads), so per-call
  // Workspaces in thin adapters (la::spmv*) cost no O(n) allocation unless a
  // map actually requests dedup_output. Called by the engine (single-threaded
  // context) before any parallel region uses mark_once.
  void ensure_dedup() {
    if (seen_.empty()) seen_.assign(static_cast<std::size_t>(n_), 0);
  }

  // Test-and-set on the dedup bitmap; true when this call set the bit.
  bool mark_once(vid_t v) noexcept {
    return std::atomic_ref<std::uint8_t>(seen_[static_cast<std::size_t>(v)])
               .exchange(1, std::memory_order_relaxed) == 0;
  }

  void unmark_all(std::span<const vid_t> ids) noexcept {
    for (vid_t v : ids) seen_[static_cast<std::size_t>(v)] = 0;
  }

  // Lazy like the dedup bitmap: the O(n/64) word array exists only once a
  // kernel actually runs a frontier-indexed pull. Callers build() it from the
  // round's sparse frontier before the parallel sweep.
  FrontierIndex& frontier_index() {
    if (!index_) index_ = std::make_unique<FrontierIndex>(n_);
    return *index_;
  }

  // Byte-per-vertex scratch for the blocked pull executors: carries
  // per-destination state across block passes (break functors: "already
  // fired, skip later blocks"; multi-shot functors: "entered the output in an
  // earlier block"). Lazy for the same reason as the dedup bitmap; the
  // executor zeroes it before use, single-threaded.
  std::vector<std::uint8_t>& pull_flags() {
    if (pull_flags_.empty()) pull_flags_.assign(static_cast<std::size_t>(n_), 0);
    return pull_flags_;
  }

 private:
  vid_t n_;
  FrontierBuffers buffers_;
  SpinlockPool locks_;
  std::vector<std::uint8_t> seen_;
  std::unique_ptr<FrontierIndex> index_;
  std::vector<std::uint8_t> pull_flags_;
};

namespace detail {

template <class F>
inline bool pass_cond(F& f, vid_t v) {
  if constexpr (requires { f.cond(v); }) {
    return f.cond(v);
  } else {
    return true;
  }
}

template <class F>
inline bool pass_source(F& f, vid_t s, std::size_t pos) {
  if constexpr (requires { f.source(s, pos); }) {
    return f.source(s, pos);
  } else if constexpr (requires { f.source(s); }) {
    return f.source(s);
  } else {
    return true;
  }
}

template <class F>
inline constexpr bool break_on_update() {
  if constexpr (requires { F::kBreakOnUpdate; }) {
    return F::kBreakOnUpdate;
  } else {
    return false;
  }
}

// Scans s's out-edges, calling update (with the per-source payload when the
// functor defines one); pushes accepted targets into the k-filter buffers.
template <CsrLike G, class Ctx, class F, class Instr>
inline std::int64_t push_edges(const G& g, Workspace& ws, Ctx& ctx, F& f,
                               vid_t s, std::size_t pos, bool track, bool dedup,
                               Instr& instr) {
  std::int64_t hits = 0;
  const eid_t end = g.edge_end(s);
  auto visit = [&](auto&&... payload) {
    for (eid_t e = g.edge_begin(s); e < end; ++e) {
      const vid_t d = g.edge_target(e);
      instr.branch_cond();
      if (f.update(ctx, s, d, e, payload...)) {
        ++hits;
        if (track && (!dedup || ws.mark_once(d))) ws.buffers().push_local(d);
      }
    }
  };
  if constexpr (requires { f.source_data(ctx, s, pos); }) {
    visit(f.source_data(ctx, s, pos));
  } else if constexpr (requires { f.source_data(ctx, s); }) {
    visit(f.source_data(ctx, s));
  } else {
    visit();
  }
  return hits;
}

// Scans [e_begin, e_end) of d's in-arc row, calling update (with the
// per-destination payload when defined); early-breaks on the functor's
// kBreakOnUpdate. `first`/`last` gate the per-destination hooks so a blocked
// sweep (K row segments per destination) runs begin_dest exactly once, before
// any arc, and finalize exactly once, after all of them — the hook sequence a
// single flat call produces. A functor's dest_data (if any) is re-evaluated
// per segment, so it must be a pure read of destination state — true of every
// engine functor, since dest_data exists to snapshot the destination before
// its scan. Returns whether d enters the output set *as of this segment*.
template <CsrLike G, class Ctx, class F, class Instr>
inline std::pair<bool, std::int64_t> pull_edges_range(const G& in_csr,
                                                      Ctx& ctx, F& f, vid_t d,
                                                      eid_t e_begin, eid_t e_end,
                                                      bool first, bool last,
                                                      Instr& instr) {
  if constexpr (requires { f.begin_dest(ctx, d); }) {
    if (first) f.begin_dest(ctx, d);
  }
  bool out = false;
  std::int64_t hits = 0;
  auto visit = [&](auto&&... payload) {
    for (eid_t e = e_begin; e < e_end; ++e) {
      const vid_t s = in_csr.edge_target(e);
      instr.branch_cond();
      if (f.update(ctx, s, d, e, payload...)) {
        ++hits;
        out = true;
        if constexpr (break_on_update<F>()) break;
      }
    }
  };
  if constexpr (requires { f.dest_data(ctx, d); }) {
    visit(f.dest_data(ctx, d));
  } else {
    visit();
  }
  if constexpr (requires { f.finalize(ctx, d); }) {
    if (last) out = f.finalize(ctx, d);
  }
  return {out, hits};
}

// Scans d's whole in-arc row (the flat pull shapes). Returns whether d enters
// the output set.
template <CsrLike G, class Ctx, class F, class Instr>
inline std::pair<bool, std::int64_t> pull_edges(const G& in_csr, Ctx& ctx,
                                                F& f, vid_t d, Instr& instr) {
  return pull_edges_range(in_csr, ctx, f, d, in_csr.edge_begin(d),
                          in_csr.edge_end(d), /*first=*/true, /*last=*/true,
                          instr);
}

// Galloping search for the first arc index in (e, end) whose target is >= lim
// — the resume point after skipping an all-inactive 64-id source block.
// Exponential probe then binary search: short skips (the common case inside a
// clustered frontier) cost a couple of probes, long runs cost O(log run).
template <CsrLike G>
inline eid_t skip_past_block(const G& in_csr, eid_t e, eid_t end, vid_t lim) {
  eid_t lo = e;  // in_csr.edge_target(lo) < lim holds throughout
  eid_t step = 1;
  while (lo + step < end && in_csr.edge_target(lo + step) < lim) {
    lo += step;
    step <<= 1;
  }
  eid_t hi = lo + step < end ? lo + step : end;  // target(hi) >= lim or hi==end
  while (lo + 1 < hi) {
    const eid_t mid = lo + (hi - lo) / 2;
    if (in_csr.edge_target(mid) < lim) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

// Scans d's in-neighbors through the frontier index. Two walks, chosen per
// row — both visit the active arcs in ascending order, so results (and e.g.
// BFS first-parent identity under kBreakOnUpdate) are independent of the
// choice:
//
//   filter walk — linear over the row, one membership-word AND per arc.
//     O(row). Right when most blocks are active anyway (dense-ish frontier):
//     it degenerates to dense pull with a 64x smaller membership bitmap.
//   block walk — merge the sorted touched-block list against the sorted row,
//     galloping into the row for each active block and reading only the arcs
//     inside active blocks. O(touched · log row + active arcs). Right when
//     the frontier occupies few blocks: whole inactive runs are skipped
//     unread, which is where the Grossman-Kozyrakis win lives.
//
// update() runs only for arcs whose source bit is set either way. Hooks
// (dest_data/begin_dest/finalize, kBreakOnUpdate) mirror pull_edges_range,
// including the `first`/`last` gating for blocked row segments.
template <CsrLike G, class Ctx, class F, class Instr>
inline std::pair<bool, std::int64_t> pull_edges_indexed_range(
    const G& in_csr, const FrontierIndex& idx, Ctx& ctx, F& f, vid_t d,
    eid_t e_begin, eid_t e_end, bool first, bool last, Instr& instr) {
  if constexpr (requires { f.begin_dest(ctx, d); }) {
    if (first) f.begin_dest(ctx, d);
  }
  bool out = false;
  std::int64_t hits = 0;
  const eid_t end = e_end;
  auto visit = [&](auto&&... payload) {
    eid_t e = e_begin;
    // The block walk needs the row long enough to amortize its gallops: ~4
    // row arcs per touched block for the probes themselves, plus an absolute
    // floor — a short row streams through the filter walk faster than any
    // amount of skipping, prefetched sequential reads being nearly free.
    const bool use_blocks =
        static_cast<std::size_t>(end - e) >
        4 * idx.touched_blocks() + 64;
    if (use_blocks) {
      for (const std::size_t blk : idx.touched()) {
        if (e >= end) break;
        const vid_t lo = static_cast<vid_t>(blk) << FrontierIndex::kBlockBits;
        if (in_csr.edge_target(e) < lo) {
          e = skip_past_block(in_csr, e, end, lo);
          if (e >= end) break;
        }
        const std::uint64_t word = idx.word_at(blk);
        const vid_t hi = lo + FrontierIndex::kBlockSize;
        for (; e < end; ++e) {
          const vid_t s = in_csr.edge_target(e);
          if (s >= hi) break;
          instr.branch_cond();
          if (((word >> (s & (FrontierIndex::kBlockSize - 1))) & 1) != 0 &&
              f.update(ctx, s, d, e, payload...)) {
            ++hits;
            out = true;
            if constexpr (break_on_update<F>()) return;
          }
        }
      }
      return;
    }
    for (; e < end; ++e) {
      const vid_t s = in_csr.edge_target(e);
      const std::uint64_t word = idx.word_for(s);
      instr.branch_cond();
      if (((word >> (s & (FrontierIndex::kBlockSize - 1))) & 1) != 0 &&
          f.update(ctx, s, d, e, payload...)) {
        ++hits;
        out = true;
        if constexpr (break_on_update<F>()) return;
      }
    }
  };
  if constexpr (requires { f.dest_data(ctx, d); }) {
    visit(f.dest_data(ctx, d));
  } else {
    visit();
  }
  if constexpr (requires { f.finalize(ctx, d); }) {
    if (last) out = f.finalize(ctx, d);
  }
  return {out, hits};
}

// Whole-row indexed scan (the flat frontier_pull shape).
template <CsrLike G, class Ctx, class F, class Instr>
inline std::pair<bool, std::int64_t> pull_edges_indexed(
    const G& in_csr, const FrontierIndex& idx, Ctx& ctx, F& f, vid_t d,
    Instr& instr) {
  return pull_edges_indexed_range(in_csr, idx, ctx, f, d, in_csr.edge_begin(d),
                                  in_csr.edge_end(d), /*first=*/true,
                                  /*last=*/true, instr);
}

template <class Ctx, CsrLike G, class F, class Instr>
VertexSet sparse_push_impl(const G& g, Workspace& ws,
                           std::span<const vid_t> in, F& f,
                           const EdgeMapOptions& opt, Instr instr,
                           EdgeMapStats* stats) {
  WallTimer timer;
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    Ctx ctx(instr, ws.locks());
#pragma omp for schedule(dynamic, 64)
    for (std::size_t i = 0; i < in.size(); ++i) {
      const vid_t s = in[i];
      if (!pass_source(f, s, i)) continue;
      instr.code_region(opt.region);
      updates += push_edges(g, ws, ctx, f, s, i, opt.track_output,
                            opt.dedup_output, instr);
    }
  }
  VertexSet out(g.n());
  ws.buffers().merge_into(out.mutable_ids());
  if (opt.dedup_output) ws.unmark_all(out.ids());
  if (stats != nullptr) {
    stats->mode = Mode::SparsePush;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

template <class Ctx, CsrLike G, class F, class Instr>
VertexSet dense_push_impl(const G& g, Workspace& ws, const VertexSet* sources,
                          F& f, const EdgeMapOptions& opt, Instr instr,
                          EdgeMapStats* stats) {
  WallTimer timer;
  const vid_t n = g.n();
  const DenseFrontier* member = sources != nullptr ? &sources->dense() : nullptr;
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    Ctx ctx(instr, ws.locks());
#pragma omp for schedule(dynamic, 256)
    for (vid_t s = 0; s < n; ++s) {
      if (member != nullptr && !member->test(s)) continue;
      if (!pass_source(f, s, static_cast<std::size_t>(s))) continue;
      instr.code_region(opt.region);
      updates += push_edges(g, ws, ctx, f, s, static_cast<std::size_t>(s),
                            opt.track_output, opt.dedup_output, instr);
    }
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  if (opt.dedup_output) ws.unmark_all(out.ids());
  if (stats != nullptr) {
    stats->mode = Mode::DensePush;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

// Blocked dense/frontier pull core: serial outer loop over the view's K
// source-range blocks, one `omp for` destination sweep per block inside a
// single parallel region (the implicit barrier between blocks orders the
// cross-block flag handoff). Per destination, blocks arrive in ascending
// source order and pull_edges_range gates begin_dest/finalize to the
// first/last block, so the per-destination update sequence is exactly the
// flat sweep's — results are bit-identical, and the functor still only ever
// sees a PlainCtx (blocking moves arcs between loop iterations, never writes
// between threads).
template <bool Indexed, class Base, class F, class Instr>
VertexSet blocked_pull_impl(const BlockedView<Base>& bv, Workspace& ws,
                            const FrontierIndex* idx, F& f,
                            const EdgeMapOptions& opt, Instr instr,
                            EdgeMapStats* stats) {
  WallTimer timer;
  const Csr& in_csr = bv.in();
  const vid_t n = bv.n();
  const int k = bv.num_blocks();
  constexpr bool kBreak = break_on_update<F>();
  constexpr bool kFinal = requires(F& fn, PlainCtx<Instr>& c, vid_t dd) {
    fn.finalize(c, dd);
  };
  // Cross-block per-destination state. finalize functors need none (the last
  // block's finalize alone decides membership); break functors need a done
  // flag so later blocks skip fired destinations; plain multi-shot functors
  // need an OR of earlier blocks' membership for exactly-once output.
  const bool need_flags = k > 1 && !kFinal && (kBreak || opt.track_output);
  std::uint8_t* flags = nullptr;
  if (need_flags) {
    std::vector<std::uint8_t>& fl = ws.pull_flags();
    std::fill(fl.begin(), fl.end(), std::uint8_t{0});
    flags = fl.data();
  }
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    PlainCtx<Instr> ctx(instr, ws.locks());
    for (int b = 0; b < k; ++b) {
      const bool first = b == 0;
      const bool last = b == k - 1;
      const eid_t* lo = bv.cut_row(b);
      const eid_t* hi = bv.cut_row(b + 1);
#pragma omp for schedule(dynamic, 256)
      for (vid_t d = 0; d < n; ++d) {
        if (!pass_cond(f, d)) continue;
        if constexpr (kBreak) {
          if (flags != nullptr && flags[static_cast<std::size_t>(d)] != 0) {
            continue;  // fired in an earlier block
          }
        }
        instr.code_region(opt.region);
        std::pair<bool, std::int64_t> r;
        if constexpr (Indexed) {
          r = pull_edges_indexed_range(in_csr, *idx, ctx, f, d,
                                       lo[static_cast<std::size_t>(d)],
                                       hi[static_cast<std::size_t>(d)], first,
                                       last, instr);
        } else {
          r = pull_edges_range(in_csr, ctx, f, d,
                               lo[static_cast<std::size_t>(d)],
                               hi[static_cast<std::size_t>(d)], first, last,
                               instr);
        }
        updates += r.second;
        if constexpr (kFinal) {
          if (last && opt.track_output && r.first) ws.buffers().push_local(d);
        } else if constexpr (kBreak) {
          if (r.first) {
            if (flags != nullptr) flags[static_cast<std::size_t>(d)] = 1;
            if (opt.track_output) ws.buffers().push_local(d);
          }
        } else {
          if (last) {
            if (opt.track_output &&
                (r.first || (flags != nullptr &&
                             flags[static_cast<std::size_t>(d)] != 0))) {
              ws.buffers().push_local(d);
            }
          } else if (r.first && flags != nullptr) {
            flags[static_cast<std::size_t>(d)] = 1;
          }
        }
      }
      // The `omp for` barrier makes block b's flag writes visible to every
      // thread's block b+1 sweep.
    }
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  if (stats != nullptr) {
    stats->mode = Mode::BlockedPull;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

}  // namespace detail

// --- sparse push (frontier-driven, k-filter output) --------------------------

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet sparse_push(const G& g, Workspace& ws, std::span<const vid_t> in,
                      F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  if (opt.dedup_output) ws.ensure_dedup();
  switch (opt.sync) {
    case Sync::StripedLock:
      return detail::sparse_push_impl<LockCtx<Instr>>(g, ws, in, f, opt, instr,
                                                      stats);
    case Sync::Plain:
      return detail::sparse_push_impl<PlainCtx<Instr>>(g, ws, in, f, opt,
                                                       instr, stats);
    case Sync::Atomic:
    default:
      return detail::sparse_push_impl<AtomicCtx<Instr>>(g, ws, in, f, opt,
                                                        instr, stats);
  }
}

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet sparse_push(const G& g, Workspace& ws, const VertexSet& in, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_push(g, ws, in.ids(), std::forward<F>(f), opt, instr, stats);
}

// View-aware entry: push walks the view's *out*-CSR (§4.8 — the asymmetric
// dichotomy costs d̂_out when pushing).
template <GraphView View, class F, class Instr = NullInstr>
VertexSet sparse_push(const View& view, Workspace& ws, std::span<const vid_t> in,
                      F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_push(view.out(), ws, in, std::forward<F>(f), opt, instr, stats);
}

template <GraphView View, class F, class Instr = NullInstr>
VertexSet sparse_push(const View& view, Workspace& ws, const VertexSet& in,
                      F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_push(view.out(), ws, in.ids(), std::forward<F>(f), opt, instr,
                     stats);
}

// --- dense push (full source sweep, optional membership filter) --------------

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet dense_push(const G& g, Workspace& ws, const VertexSet* sources,
                     F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  if (opt.dedup_output) ws.ensure_dedup();
  switch (opt.sync) {
    case Sync::StripedLock:
      return detail::dense_push_impl<LockCtx<Instr>>(g, ws, sources, f, opt,
                                                     instr, stats);
    case Sync::Plain:
      return detail::dense_push_impl<PlainCtx<Instr>>(g, ws, sources, f, opt,
                                                      instr, stats);
    case Sync::Atomic:
    default:
      return detail::dense_push_impl<AtomicCtx<Instr>>(g, ws, sources, f, opt,
                                                       instr, stats);
  }
}

template <GraphView View, class F, class Instr = NullInstr>
VertexSet dense_push(const View& view, Workspace& ws, const VertexSet* sources,
                     F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  return dense_push(view.out(), ws, sources, std::forward<F>(f), opt, instr,
                    stats);
}

// --- dense pull (full destination sweep over in-edges) -----------------------

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet dense_pull(const G& in_csr, Workspace& ws, F&& f,
                     const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  WallTimer timer;
  const vid_t n = in_csr.n();
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    PlainCtx<Instr> ctx(instr, ws.locks());
#pragma omp for schedule(dynamic, 256)
    for (vid_t d = 0; d < n; ++d) {
      if (!detail::pass_cond(f, d)) continue;
      instr.code_region(opt.region);
      const auto [out, hits] = detail::pull_edges(in_csr, ctx, f, d, instr);
      updates += hits;
      if (opt.track_output && out) ws.buffers().push_local(d);
    }
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  if (stats != nullptr) {
    stats->mode = Mode::DensePull;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

// View-aware entry: pull walks the view's *in*-CSR (costs d̂_in on digraphs).
// Pull stays zero-sync on asymmetric graphs — the loop below still hands the
// functor a PlainCtx; only the scanned arc set changes.
template <GraphView View, class F, class Instr = NullInstr>
VertexSet dense_pull(const View& view, Workspace& ws, F&& f,
                     const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  return dense_pull(view.in(), ws, std::forward<F>(f), opt, instr, stats);
}

// --- sparse pull (frontier-aware pull over a given destination set) ----------

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet sparse_pull(const G& in_csr, Workspace& ws,
                      std::span<const vid_t> dests, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  WallTimer timer;
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    PlainCtx<Instr> ctx(instr, ws.locks());
#pragma omp for schedule(dynamic, 64)
    for (std::size_t i = 0; i < dests.size(); ++i) {
      const vid_t d = dests[i];
      if (!detail::pass_cond(f, d)) continue;
      instr.code_region(opt.region);
      const auto [out, hits] = detail::pull_edges(in_csr, ctx, f, d, instr);
      updates += hits;
      if (opt.track_output && out) ws.buffers().push_local(d);
    }
  }
  VertexSet out(in_csr.n());
  ws.buffers().merge_into(out.mutable_ids());
  if (stats != nullptr) {
    stats->mode = Mode::SparsePull;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet sparse_pull(const G& in_csr, Workspace& ws, const VertexSet& dests,
                      F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_pull(in_csr, ws, dests.ids(), std::forward<F>(f), opt, instr,
                     stats);
}

template <GraphView View, class F, class Instr = NullInstr>
VertexSet sparse_pull(const View& view, Workspace& ws,
                      std::span<const vid_t> dests, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_pull(view.in(), ws, dests, std::forward<F>(f), opt, instr,
                     stats);
}

template <GraphView View, class F, class Instr = NullInstr>
VertexSet sparse_pull(const View& view, Workspace& ws, const VertexSet& dests,
                      F&& f, const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_pull(view.in(), ws, dests.ids(), std::forward<F>(f), opt, instr,
                     stats);
}

// --- frontier-aware pull (dense destination sweep over an indexed frontier) --
//
// The medium-density pull shape: iterate every destination like dense_pull,
// but consult a transposed frontier index so only in-arcs whose source block
// holds an active vertex are read (frontier_index.hpp has the cost model).
// The index must over-approximate the sources whose update() could fire —
// e.g. the previous BFS level, CC's changed set — and functors keep their own
// source predicates, so the result is identical to dense_pull over the same
// functor. PlainCtx like every pull mode: zero atomics/locks by construction.
//
// Callers build the index from the round's sparse frontier first:
//   FrontierIndex& idx = ws.frontier_index();
//   idx.build(frontier.ids());
//   out = frontier_pull(g, ws, idx, functor, opt, instr);

template <CsrLike G, class F, class Instr = NullInstr>
VertexSet frontier_pull(const G& in_csr, Workspace& ws,
                        const FrontierIndex& idx, F&& f,
                        const EdgeMapOptions& opt = {}, Instr instr = {},
                        EdgeMapStats* stats = nullptr) {
  WallTimer timer;
  const vid_t n = in_csr.n();
  std::int64_t updates = 0;
#pragma omp parallel reduction(+ : updates)
  {
    PlainCtx<Instr> ctx(instr, ws.locks());
#pragma omp for schedule(dynamic, 256)
    for (vid_t d = 0; d < n; ++d) {
      if (!detail::pass_cond(f, d)) continue;
      instr.code_region(opt.region);
      const auto [out, hits] =
          detail::pull_edges_indexed(in_csr, idx, ctx, f, d, instr);
      updates += hits;
      if (opt.track_output && out) ws.buffers().push_local(d);
    }
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  if (stats != nullptr) {
    stats->mode = Mode::FrontierPull;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
  return out;
}

// View-aware entry: like dense_pull, walks the view's in-CSR; the index is
// over the same source-id space either way.
template <GraphView View, class F, class Instr = NullInstr>
VertexSet frontier_pull(const View& view, Workspace& ws,
                        const FrontierIndex& idx, F&& f,
                        const EdgeMapOptions& opt = {}, Instr instr = {},
                        EdgeMapStats* stats = nullptr) {
  return frontier_pull(view.in(), ws, idx, std::forward<F>(f), opt, instr,
                       stats);
}

// --- blocked pull (cache-blocked sweeps over a BlockedView) ------------------
//
// The dense pull-side sweeps run block-by-block when handed a BlockedView:
// the scanned source window stays LLC-resident per block (blocked_view.hpp
// has the model), the functor contract is unchanged, and results are
// bit-identical to the flat shapes. Still PlainCtx — the zero-sync pull
// invariant is preserved by construction. Stats report Mode::BlockedPull.

template <class Base, class F, class Instr = NullInstr>
VertexSet dense_pull(const BlockedView<Base>& bv, Workspace& ws, F&& f,
                     const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  return detail::blocked_pull_impl<false>(bv, ws, nullptr, f, opt, instr,
                                          stats);
}

template <class Base, class F, class Instr = NullInstr>
VertexSet frontier_pull(const BlockedView<Base>& bv, Workspace& ws,
                        const FrontierIndex& idx, F&& f,
                        const EdgeMapOptions& opt = {}, Instr instr = {},
                        EdgeMapStats* stats = nullptr) {
  return detail::blocked_pull_impl<true>(bv, ws, &idx, f, opt, instr, stats);
}

// Non-blocked shapes forward to the flat base CSRs: push walks the out-CSR,
// sparse pull the in-CSR — blocking only changes the dense pull-side sweeps.
// The explicit overloads also keep resolution unambiguous (BlockedView
// satisfies both CsrLike and GraphView, which neither generic entry beats).

template <class Base, class F, class Instr = NullInstr>
VertexSet sparse_push(const BlockedView<Base>& bv, Workspace& ws,
                      std::span<const vid_t> in, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_push(bv.out(), ws, in, std::forward<F>(f), opt, instr, stats);
}

template <class Base, class F, class Instr = NullInstr>
VertexSet sparse_push(const BlockedView<Base>& bv, Workspace& ws,
                      const VertexSet& in, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_push(bv.out(), ws, in.ids(), std::forward<F>(f), opt, instr,
                     stats);
}

template <class Base, class F, class Instr = NullInstr>
VertexSet dense_push(const BlockedView<Base>& bv, Workspace& ws,
                     const VertexSet* sources, F&& f,
                     const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  return dense_push(bv.out(), ws, sources, std::forward<F>(f), opt, instr,
                    stats);
}

template <class Base, class F, class Instr = NullInstr>
VertexSet sparse_pull(const BlockedView<Base>& bv, Workspace& ws,
                      std::span<const vid_t> dests, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_pull(bv.in(), ws, dests, std::forward<F>(f), opt, instr,
                     stats);
}

template <class Base, class F, class Instr = NullInstr>
VertexSet sparse_pull(const BlockedView<Base>& bv, Workspace& ws,
                      const VertexSet& dests, F&& f,
                      const EdgeMapOptions& opt = {}, Instr instr = {},
                      EdgeMapStats* stats = nullptr) {
  return sparse_pull(bv.in(), ws, dests.ids(), std::forward<F>(f), opt, instr,
                     stats);
}

// --- partition-aware dense push (Algorithm 8) --------------------------------
//
// Threads iterate exactly their own partition: the local adjacency half gets
// thread-owned plain writes (PlainCtx — local targets are owned by the
// updating thread by construction), a barrier, then the remote half pays the
// sync policy. Edge ids are not available in the split representation; the
// functor receives e = -1 and must carry weights itself if it needs them.
template <class F, class Instr = NullInstr>
void dense_push_pa(const PartitionAwareCsr& pa, Workspace& ws, F&& f,
                   const EdgeMapOptions& opt = {}, Instr instr = {},
                   EdgeMapStats* stats = nullptr) {
  WallTimer timer;
  const Partition1D& part = pa.partition();
  std::int64_t updates = 0;
#pragma omp parallel num_threads(part.parts()) reduction(+ : updates)
  {
    const int t = omp_get_thread_num();
    // One half of the split sweep: threads iterate exactly their own block.
    auto half = [&](auto& ctx, bool local, int region) {
      for (vid_t s = part.begin(t); s < part.end(t); ++s) {
        if (!detail::pass_source(f, s, static_cast<std::size_t>(s))) continue;
        instr.code_region(region);
        const std::span<const vid_t> targets =
            local ? pa.local_neighbors(s) : pa.remote_neighbors(s);
        auto run = [&](auto&&... payload) {
          for (vid_t d : targets) {
            instr.branch_cond();
            if (f.update(ctx, s, d, eid_t{-1}, payload...)) ++updates;
          }
        };
        if constexpr (requires { f.source_data(ctx, s); }) {
          run(f.source_data(ctx, s));
        } else {
          run();
        }
      }
    };
    {
      PlainCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/true, opt.region);
    }
#pragma omp barrier
    if (opt.sync == Sync::StripedLock) {
      LockCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/false, opt.region + 1);
    } else {
      AtomicCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/false, opt.region + 1);
    }
  }
  if (stats != nullptr) {
    stats->mode = Mode::DensePush;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
}

// --- NUMA-aware dense push (Algorithm 8 at socket granularity) ---------------
//
// PartitionPolicy::NumaAware: one OpenMP lane per NUMA node, each pinned to
// its node for the sweep (best-effort — a no-op without PUSHPULL_WITH_NUMA or
// on single-node machines, where the split still exercises the exact code
// path), iterating exactly the node's vertex range over the NumaAwareCsr's
// first-touch-allocated split adjacency. Node-local targets get thread-owned
// plain writes, a barrier, then cross-node targets pay the sync policy at
// region+1 — synced-op counts attribute cross-socket touches exactly the way
// dense_push_pa counts remote arcs. Edge ids are unavailable in the split
// representation; the functor receives e = -1, as with PA.
template <class F, class Instr = NullInstr>
void dense_push_numa(const NumaAwareCsr& ng, Workspace& ws, F&& f,
                     const EdgeMapOptions& opt = {}, Instr instr = {},
                     EdgeMapStats* stats = nullptr) {
  WallTimer timer;
  const Partition1D& part = ng.partition();
  std::int64_t updates = 0;
#pragma omp parallel num_threads(part.parts()) reduction(+ : updates)
  {
    const int t = omp_get_thread_num();
    numa::ScopedNodePin pin(t);
    auto half = [&](auto& ctx, bool local, int region) {
      for (vid_t s = part.begin(t); s < part.end(t); ++s) {
        if (!detail::pass_source(f, s, static_cast<std::size_t>(s))) continue;
        instr.code_region(region);
        const std::span<const vid_t> targets =
            local ? ng.local_neighbors(s) : ng.cross_neighbors(s);
        auto run = [&](auto&&... payload) {
          for (vid_t d : targets) {
            instr.branch_cond();
            if (f.update(ctx, s, d, eid_t{-1}, payload...)) ++updates;
          }
        };
        if constexpr (requires { f.source_data(ctx, s); }) {
          run(f.source_data(ctx, s));
        } else {
          run();
        }
      }
    };
    {
      PlainCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/true, opt.region);
    }
#pragma omp barrier
    if (opt.sync == Sync::StripedLock) {
      LockCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/false, opt.region + 1);
    } else {
      AtomicCtx<Instr> ctx(instr, ws.locks());
      half(ctx, /*local=*/false, opt.region + 1);
    }
  }
  if (stats != nullptr) {
    stats->mode = Mode::DensePush;
    stats->updates = updates;
    stats->seconds = timer.elapsed_s();
  }
}

// --- vertex map --------------------------------------------------------------

// f(ctx, v) -> bool; true puts v in the returned set. The default context is
// PlainCtx — a vertex map writes only the iterated (thread-owned) vertex.
// Maps whose per-vertex work writes *other* vertices' state (NodeIterator
// triangle counting credits the two far corners) opt into a synchronized
// context instead, so the sync policy and its operation accounting stay an
// engine property there too.
struct VertexMapOptions {
  bool track = true;         // build the output VertexSet
  bool synchronized = false; // false: PlainCtx; true: the `sync` context
  Sync sync = Sync::Atomic;  // context when synchronized
  int chunk = 0;             // 0: static schedule; >0: dynamic(chunk)
};

namespace detail {

template <class Ctx, class F, class Instr>
void vertex_map_impl(std::span<const vid_t> ids, Workspace& ws, F& f,
                     const VertexMapOptions& opt, Instr instr) {
#pragma omp parallel
  {
    Ctx ctx(instr, ws.locks());
    if (opt.chunk > 0) {
#pragma omp for schedule(dynamic, opt.chunk)
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (f(ctx, ids[i]) && opt.track) ws.buffers().push_local(ids[i]);
      }
    } else {
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (f(ctx, ids[i]) && opt.track) ws.buffers().push_local(ids[i]);
      }
    }
  }
}

// Dense variant: iterate [0, n) directly — no materialized id list.
template <class Ctx, class F, class Instr>
void vertex_map_dense_impl(vid_t n, Workspace& ws, F& f,
                           const VertexMapOptions& opt, Instr instr) {
#pragma omp parallel
  {
    Ctx ctx(instr, ws.locks());
    if (opt.chunk > 0) {
#pragma omp for schedule(dynamic, opt.chunk)
      for (vid_t v = 0; v < n; ++v) {
        if (f(ctx, v) && opt.track) ws.buffers().push_local(v);
      }
    } else {
#pragma omp for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        if (f(ctx, v) && opt.track) ws.buffers().push_local(v);
      }
    }
  }
}

}  // namespace detail

// Sparse vertex map: iterate an explicit id list (Borůvka's per-supervertex
// hook/shortcut rounds iterate the active list, not [0, n)).
template <class F, class Instr = NullInstr>
  requires(!std::convertible_to<F, VertexMapOptions>)
VertexSet vertex_map(vid_t n, Workspace& ws, std::span<const vid_t> ids, F&& f,
                     const VertexMapOptions& opt = {}, Instr instr = {}) {
  switch (opt.synchronized ? opt.sync : Sync::Atomic) {
    case Sync::StripedLock:
      detail::vertex_map_impl<LockCtx<Instr>>(ids, ws, f, opt, instr);
      break;
    case Sync::Atomic:
    default:
      if (opt.synchronized) {
        detail::vertex_map_impl<AtomicCtx<Instr>>(ids, ws, f, opt, instr);
      } else {
        detail::vertex_map_impl<PlainCtx<Instr>>(ids, ws, f, opt, instr);
      }
      break;
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  return out;
}

// Dense vertex map over [0, n).
template <class F, class Instr = NullInstr>
  requires(!std::convertible_to<F, VertexMapOptions>)
VertexSet vertex_map(vid_t n, Workspace& ws, F&& f,
                     const VertexMapOptions& opt, Instr instr = {}) {
  switch (opt.synchronized ? opt.sync : Sync::Atomic) {
    case Sync::StripedLock:
      detail::vertex_map_dense_impl<LockCtx<Instr>>(n, ws, f, opt, instr);
      break;
    case Sync::Atomic:
    default:
      if (opt.synchronized) {
        detail::vertex_map_dense_impl<AtomicCtx<Instr>>(n, ws, f, opt, instr);
      } else {
        detail::vertex_map_dense_impl<PlainCtx<Instr>>(n, ws, f, opt, instr);
      }
      break;
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  return out;
}

template <class F, class Instr = NullInstr>
  requires(!std::convertible_to<F, VertexMapOptions>)
VertexSet vertex_map(vid_t n, Workspace& ws, F&& f, bool track = true,
                     Instr instr = {}) {
#pragma omp parallel
  {
    PlainCtx<Instr> ctx(instr, ws.locks());
#pragma omp for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (f(ctx, v) && track) ws.buffers().push_local(v);
    }
  }
  VertexSet out(n);
  ws.buffers().merge_into(out.mutable_ids());
  return out;
}

}  // namespace pushpull::engine
