#include "engine/policy.hpp"

#include <cstdio>
#include <cstdlib>

namespace pushpull::engine {

const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::StaticPush: return "push";
    case StrategyKind::StaticPull: return "pull";
    case StrategyKind::GenericSwitch: return "gs";
    case StrategyKind::GreedySwitch: return "grs";
    case StrategyKind::FrontierExploit: return "fe";
    case StrategyKind::PartitionAware: return "pa";
  }
  return "?";
}

StrategyKind parse_strategy(const std::string& name) {
  if (name == "push") return StrategyKind::StaticPush;
  if (name == "pull") return StrategyKind::StaticPull;
  if (name == "gs") return StrategyKind::GenericSwitch;
  if (name == "grs") return StrategyKind::GreedySwitch;
  if (name == "fe") return StrategyKind::FrontierExploit;
  if (name == "pa") return StrategyKind::PartitionAware;
  std::fprintf(stderr,
               "unknown policy '%s' (expected push, pull, gs, grs, fe, pa or "
               "all)\n",
               name.c_str());
  std::exit(2);
}

std::vector<StrategyKind> parse_strategy_list(const std::string& name) {
  if (name == "all") {
    return {StrategyKind::StaticPush,     StrategyKind::StaticPull,
            StrategyKind::GenericSwitch,  StrategyKind::GreedySwitch,
            StrategyKind::FrontierExploit, StrategyKind::PartitionAware};
  }
  return {parse_strategy(name)};
}

}  // namespace pushpull::engine
