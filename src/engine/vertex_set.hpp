// VertexSet: the engine's frontier currency.
//
// One set, two representations — a sparse id list (what sparse push/pull
// iterate) and a dense byte-per-vertex bitmap (what dense modes and
// membership tests use) — converted lazily and cached. Mirrors the paper's
// frontier duality: the k-filter produces sparse lists, bottom-up steps
// consume dense maps, and the Generic-Switch flips between them.
#pragma once

#include <omp.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

class VertexSet {
 public:
  explicit VertexSet(vid_t n = 0) : n_(n) {}

  // Wraps an existing id list (no copy on rvalue).
  VertexSet(vid_t n, std::vector<vid_t> ids)
      : n_(n), sparse_(std::move(ids)) {}

  static VertexSet single(vid_t n, vid_t v) {
    PP_CHECK(v >= 0 && v < n);
    return VertexSet(n, std::vector<vid_t>{v});
  }

  static VertexSet all(vid_t n) {
    std::vector<vid_t> ids(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) ids[static_cast<std::size_t>(v)] = v;
    return VertexSet(n, std::move(ids));
  }

  vid_t universe() const noexcept { return n_; }
  std::size_t size() const noexcept { return sparse_.size(); }
  bool empty() const noexcept { return sparse_.empty(); }

  std::span<const vid_t> ids() const noexcept { return sparse_; }
  std::vector<vid_t>& mutable_ids() noexcept {
    dense_valid_ = false;
    return sparse_;
  }

  // Dense membership view, built on first use after any mutation.
  const DenseFrontier& dense() const {
    if (!dense_valid_) {
      if (!dense_) dense_ = std::make_unique<DenseFrontier>(n_);
      dense_->build_from(sparse_);
      dense_valid_ = true;
    }
    return *dense_;
  }

  bool test(vid_t v) const { return dense().test(v); }

  // Σ out-degrees of members — the GS work estimate for the next superstep.
  template <CsrLike G>
  double out_degree_sum(const G& g) const {
    double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
    for (std::size_t i = 0; i < sparse_.size(); ++i) {
      sum += static_cast<double>(g.degree(sparse_[i]));
    }
    return sum;
  }

  // View-aware work estimate: push cost on a digraph is the members'
  // *out*-degree mass, regardless of which CSR pull would scan.
  template <class View>
    requires requires(const View& v, vid_t x) { v.out_degree(x); }
  double out_degree_sum(const View& view) const {
    double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
    for (std::size_t i = 0; i < sparse_.size(); ++i) {
      sum += static_cast<double>(view.out_degree(sparse_[i]));
    }
    return sum;
  }

  void clear() {
    sparse_.clear();
    dense_valid_ = false;
  }

 private:
  vid_t n_ = 0;
  std::vector<vid_t> sparse_;
  mutable std::unique_ptr<DenseFrontier> dense_;
  mutable bool dense_valid_ = false;
};

}  // namespace pushpull::engine
