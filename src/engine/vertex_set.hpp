// VertexSet: the engine's frontier currency.
//
// One set, two representations — a sparse id list (what sparse push/pull
// iterate) and a dense byte-per-vertex bitmap (what dense modes and
// membership tests use) — converted lazily and cached. Mirrors the paper's
// frontier duality: the k-filter produces sparse lists, bottom-up steps
// consume dense maps, and the Generic-Switch flips between them.
//
// BucketedVertexSet below is the priority flavor (Julienne-style): an
// integer-keyed bucket structure for kernels that process vertices in key
// order — SSSP-Δ's distance buckets and k-core's peel-by-residual-degree both
// ride it instead of hand-rolling their own bucket arrays.
#pragma once

#include <omp.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

class VertexSet {
 public:
  explicit VertexSet(vid_t n = 0) : n_(n) {}

  // Wraps an existing id list (no copy on rvalue).
  VertexSet(vid_t n, std::vector<vid_t> ids)
      : n_(n), sparse_(std::move(ids)) {}

  static VertexSet single(vid_t n, vid_t v) {
    PP_CHECK(v >= 0 && v < n);
    return VertexSet(n, std::vector<vid_t>{v});
  }

  static VertexSet all(vid_t n) {
    std::vector<vid_t> ids(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) ids[static_cast<std::size_t>(v)] = v;
    return VertexSet(n, std::move(ids));
  }

  vid_t universe() const noexcept { return n_; }
  std::size_t size() const noexcept { return sparse_.size(); }
  bool empty() const noexcept { return sparse_.empty(); }

  std::span<const vid_t> ids() const noexcept { return sparse_; }
  std::vector<vid_t>& mutable_ids() noexcept {
    dense_valid_ = false;
    return sparse_;
  }

  // Dense membership view, built on first use after any mutation.
  const DenseFrontier& dense() const {
    if (!dense_valid_) {
      if (!dense_) dense_ = std::make_unique<DenseFrontier>(n_);
      dense_->build_from(sparse_);
      dense_valid_ = true;
    }
    return *dense_;
  }

  bool test(vid_t v) const { return dense().test(v); }

  // Σ out-degrees of members — the GS work estimate for the next superstep.
  // Excludes types that expose out_degree (views, including BlockedView,
  // which is CsrLike on its pull side only) so the view overload below wins
  // unambiguously and push cost is always the *out*-degree mass.
  template <CsrLike G>
    requires(!requires(const G& g2, vid_t x) { g2.out_degree(x); })
  double out_degree_sum(const G& g) const {
    double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
    for (std::size_t i = 0; i < sparse_.size(); ++i) {
      sum += static_cast<double>(g.degree(sparse_[i]));
    }
    return sum;
  }

  // View-aware work estimate: push cost on a digraph is the members'
  // *out*-degree mass, regardless of which CSR pull would scan.
  template <class View>
    requires requires(const View& v, vid_t x) { v.out_degree(x); }
  double out_degree_sum(const View& view) const {
    double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
    for (std::size_t i = 0; i < sparse_.size(); ++i) {
      sum += static_cast<double>(view.out_degree(sparse_[i]));
    }
    return sum;
  }

  void clear() {
    sparse_.clear();
    dense_valid_ = false;
  }

 private:
  vid_t n_ = 0;
  std::vector<vid_t> sparse_;
  mutable std::unique_ptr<DenseFrontier> dense_;
  mutable bool dense_valid_ = false;
};

// Julienne-style bucketed priority frontier.
//
// Vertices carry an integer key (a Δ-bucket index, a residual degree) and are
// processed in key order. Three properties make it cheap under churn:
//
//   lazy insertion — insert() appends blindly; duplicate and *stale* entries
//     (the vertex's key moved after it was enqueued) are allowed and filtered
//     only when their bucket is popped, against the caller's key function.
//   open window + overflow — only `open` consecutive buckets materialize as
//     append vectors; keys past the window land in one overflow bucket that
//     is re-bucketed (spill/refill) when the window is exhausted. Bounded
//     memory regardless of key range.
//   epoch-stamp dedup — pop_bucket() emits each vertex at most once per pop
//     by stamping it with the pop's epoch; no O(n) clears between pops.
//
// The caller supplies current keys as key_of(v, b) -> key_t, where b is the
// bucket being popped (or the window base during a refill): SSSP-Δ ignores b
// and returns bucket_of(dist[v]); k-core returns max(residual[v], b) so
// cascade-decremented vertices clamp into the bucket being peeled instead of
// falling behind it. kInfKey means "never schedule" (settled / peeled).
//
// Single-threaded by design: inserts and pops happen between parallel
// edge_map rounds, exactly where frontiers are materialized anyway.
class BucketedVertexSet {
 public:
  using key_t = std::int64_t;
  static constexpr key_t kInfKey = std::numeric_limits<key_t>::max();

  explicit BucketedVertexSet(vid_t n, int open_buckets = 64)
      : open_(static_cast<std::size_t>(open_buckets)),
        buckets_(static_cast<std::size_t>(open_buckets)),
        stamp_(static_cast<std::size_t>(n), 0) {
    PP_CHECK(open_buckets > 0);
  }

  // Lazy insert: appends v to the bucket for key k, or to the overflow bucket
  // when k falls past the open window. Keys below the window base belong to
  // already-processed buckets — the entry would be dropped as stale at pop
  // time anyway, so it is dropped here.
  void insert(vid_t v, key_t k) {
    if (k == kInfKey || k < base_) return;
    if (k < base_ + static_cast<key_t>(open_)) {
      buckets_[slot(k)].push_back(v);
    } else {
      overflow_.push_back(v);
    }
  }

  // Pops the smallest non-empty bucket: validates entries against key_of,
  // re-inserts entries whose key moved forward, dedups via epoch stamps, and
  // fills `out` with the unique members whose current key equals the popped
  // bucket. Returns that bucket's key, or kInfKey when the set is exhausted.
  // Subsequent insert()s may re-target the returned bucket (SSSP-Δ's inner
  // iterations); the next pop re-examines it first.
  template <class KeyFn>
  key_t pop_bucket(std::vector<vid_t>& out, KeyFn&& key_of) {
    out.clear();
    for (;;) {
      // Advance base_ over empty open buckets (the empty-bucket skip); when
      // the whole window is empty, refill it from the overflow bucket.
      std::size_t scanned = 0;
      while (scanned < open_ && buckets_[slot(base_)].empty()) {
        ++base_;
        ++scanned;
      }
      if (scanned == open_) {
        if (overflow_.empty()) return kInfKey;
        refill(key_of);
        continue;
      }
      const key_t b = base_;
      std::vector<vid_t>& bucket = buckets_[slot(b)];
      ++epoch_;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const vid_t v = bucket[i];
        if (stamp_[static_cast<std::size_t>(v)] == epoch_) continue;  // dup
        stamp_[static_cast<std::size_t>(v)] = epoch_;
        const key_t k = key_of(v, b);
        if (k == b) {
          out.push_back(v);
        } else if (k > b && k != kInfKey) {
          // Stale-high entry: its key moved forward since insertion —
          // re-enqueue at the true key (cannot land back in bucket b: the
          // stamp guard above runs once per vertex per pop, and insert below
          // targets a later bucket).
          ++stale_requeues_;
          if (k < base_ + static_cast<key_t>(open_)) {
            buckets_[slot(k)].push_back(v);
          } else {
            overflow_.push_back(v);
          }
        }
        // k < b or kInfKey: settled/peeled — dropped.
      }
      bucket.clear();
      if (!out.empty()) return b;
      // Every entry was stale: keep scanning from the same base.
    }
  }

  // Whether any entry (live or stale) is enqueued. Stale entries make this an
  // over-approximation of "work remains"; pop_bucket is the precise check.
  bool has_entries() const {
    if (!overflow_.empty()) return true;
    for (const auto& bkt : buckets_) {
      if (!bkt.empty()) return true;
    }
    return false;
  }

  // Introspection for tests and traces.
  key_t window_base() const noexcept { return base_; }
  std::size_t open_buckets() const noexcept { return open_; }
  std::size_t overflow_size() const noexcept { return overflow_.size(); }
  std::int64_t refills() const noexcept { return refills_; }
  std::int64_t stale_requeues() const noexcept { return stale_requeues_; }

 private:
  std::size_t slot(key_t k) const noexcept {
    return static_cast<std::size_t>(k % static_cast<key_t>(open_));
  }

  // Spill/refill: the open window is exhausted — find the smallest live key
  // in the overflow bucket, move the window there, and redistribute. Entries
  // still past the new window stay in overflow; settled entries are dropped.
  template <class KeyFn>
  void refill(KeyFn&& key_of) {
    ++refills_;
    key_t min_key = kInfKey;
    for (const vid_t v : overflow_) {
      const key_t k = key_of(v, base_);
      if (k >= base_ && k < min_key) min_key = k;
    }
    if (min_key == kInfKey) {
      overflow_.clear();
      return;
    }
    base_ = min_key;
    std::vector<vid_t> keep;
    for (const vid_t v : overflow_) {
      const key_t k = key_of(v, base_);
      if (k == kInfKey || k < base_) continue;
      if (k < base_ + static_cast<key_t>(open_)) {
        buckets_[slot(k)].push_back(v);
      } else {
        keep.push_back(v);
      }
    }
    overflow_ = std::move(keep);
  }

  std::size_t open_;
  std::vector<std::vector<vid_t>> buckets_;  // ring keyed by key % open_
  std::vector<vid_t> overflow_;
  std::vector<std::uint32_t> stamp_;
  key_t base_ = 0;
  std::uint32_t epoch_ = 0;
  std::int64_t refills_ = 0;
  std::int64_t stale_requeues_ = 0;
};

}  // namespace pushpull::engine
