// Graph views: the direction seam of the engine (§4.8, DESIGN.md §2).
//
// Every edge_map loop shape walks exactly one CSR: sparse/dense push iterate
// the *out*-edges of the active sources, dense/sparse pull iterate the
// *in*-edges of the updated destinations. On an undirected graph the two CSRs
// coincide; on a digraph they are different arrays (Digraph{out, in}), and the
// paper's cost bounds trade d̂_out against d̂_in. A GraphView tells the engine
// which CSR each loop shape must walk, so one edge_map substrate serves both:
//
//   SymmetricView — wraps a symmetric Csr; out() and in() alias the same CSR
//                   (the engine's pre-view behavior, bit for bit).
//   DigraphView   — wraps Digraph{out, in}; push walks g.out, pull walks g.in.
//                   Pull modes stay zero-atomic on digraphs too — the view
//                   changes *which* arcs are scanned, never the sync policy.
//   SnapshotView  — (graph/delta_graph.hpp) a point-in-time view of a mutable
//                   DeltaGraph; out()/in() return SnapshotCsr, a CsrLike that
//                   patches a sealed base CSR with a versioned overlay.
//
// The accessors therefore return *CsrLike* adjacency (graph/csr.hpp), not Csr
// concretely; every loop shape in edge_map.hpp is templated on that concept,
// so all three views run the same engine code.
//
// reversed() swaps the two CSRs, turning forward traversal functors into
// backward ones (SCC's backward reachability pass pushes along in-edges).
#pragma once

#include <concepts>

#include "graph/csr.hpp"
#include "util/check.hpp"

namespace pushpull::engine {

// What the engine requires of a graph view: the two CsrLike accessors plus
// the degree/arc counters the switching heuristics consume.
template <class V>
concept GraphView = requires(const V& v, vid_t x) {
  { v.out() } -> CsrLike;
  { v.in() } -> CsrLike;
  { v.n() } -> std::convertible_to<vid_t>;
  { v.num_arcs() } -> std::convertible_to<eid_t>;
  { v.out_degree(x) } -> std::convertible_to<vid_t>;
  { v.in_degree(x) } -> std::convertible_to<vid_t>;
  { v.is_symmetric() } -> std::convertible_to<bool>;
};

// Adapter for today's symmetric Csr: both directions alias the same CSR.
class SymmetricView {
 public:
  explicit SymmetricView(const Csr& g) noexcept : g_(&g) {}

  const Csr& out() const noexcept { return *g_; }
  const Csr& in() const noexcept { return *g_; }
  vid_t n() const noexcept { return g_->n(); }
  eid_t num_arcs() const noexcept { return g_->num_arcs(); }
  vid_t out_degree(vid_t v) const noexcept { return g_->degree(v); }
  vid_t in_degree(vid_t v) const noexcept { return g_->degree(v); }
  static constexpr bool is_symmetric() noexcept { return true; }

  SymmetricView reversed() const noexcept { return *this; }

 private:
  const Csr* g_;
};

// View over Digraph{out, in}: push walks out-arcs, pull walks in-arcs.
class DigraphView {
 public:
  explicit DigraphView(const Digraph& g) noexcept
      : DigraphView(g.out, g.in) {}

  // The two CSRs may come from anywhere (e.g. a degree-ordered orientation);
  // they must describe the same arc set.
  DigraphView(const Csr& out_csr, const Csr& in_csr) noexcept
      : out_(&out_csr), in_(&in_csr) {
    PP_DCHECK(out_->n() == in_->n());
    PP_DCHECK(out_->num_arcs() == in_->num_arcs());
  }

  const Csr& out() const noexcept { return *out_; }
  const Csr& in() const noexcept { return *in_; }
  vid_t n() const noexcept { return out_->n(); }
  eid_t num_arcs() const noexcept { return out_->num_arcs(); }
  vid_t out_degree(vid_t v) const noexcept { return out_->degree(v); }
  vid_t in_degree(vid_t v) const noexcept { return in_->degree(v); }
  static constexpr bool is_symmetric() noexcept { return false; }

  // Arc-reversed view: pushing on reversed() walks the in-CSR — backward
  // traversals reuse forward functors unchanged.
  DigraphView reversed() const noexcept { return DigraphView(*in_, *out_); }

 private:
  const Csr* out_;
  const Csr* in_;
};

static_assert(GraphView<SymmetricView>);
static_assert(GraphView<DigraphView>);

inline SymmetricView view_of(const Csr& g) noexcept { return SymmetricView(g); }
inline DigraphView view_of(const Digraph& g) noexcept { return DigraphView(g); }

}  // namespace pushpull::engine
