// Update contexts: the sync policy × instrumentation product in one place.
//
// Kernels express their per-edge state change once, through a context's
// primitives; the engine instantiates the functor with the context matching
// the traversal direction and sync policy:
//
//   PlainCtx   — thread-owned writes (all pull modes, PA-local push half).
//                No synchronization is *possible* through this context, which
//                is how the engine enforces §3.8's defining pull property
//                (test_instr_counts asserts zero atomics/locks in pull mode).
//   AtomicCtx  — push with hardware atomics: integer claim/min/add via
//                CAS/FAA (counted as atomics), floating-point accumulation
//                via a CAS loop (counted as a lock, §4.1's convention).
//   LockCtx    — push through a striped spinlock pool keyed by destination
//                (counted as locks); supports arbitrary critical sections,
//                which the GAS scatter phase needs for non-POD accumulators.
//
// Because every state change goes through exactly one of these, operation
// counting is attributed identically for every kernel the engine runs —
// reads/writes/atomics/locks mean the same thing in BFS, PR, BC, coloring,
// GAS and SpMV counter reports.
#pragma once

#include <cstdint>
#include <type_traits>

#include "graph/types.hpp"
#include "sync/atomics.hpp"
#include "sync/spinlock.hpp"

namespace pushpull::engine {

// Thread-owned updates: plain loads/stores, instrumented.
template <class Instr>
class PlainCtx {
 public:
  static constexpr bool kSynchronized = false;

  explicit PlainCtx(Instr& instr) noexcept : instr_(&instr) {}
  // Uniform construction with the synchronized contexts; the pool is unused.
  PlainCtx(Instr& instr, SpinlockPool&) noexcept : instr_(&instr) {}

  Instr& instr() noexcept { return *instr_; }

  // Instrumented shared-memory load (relaxed atomic: pull reads race with
  // remote writers by design; the value, not the ordering, is the point).
  template <class T>
  T load(const T& x) noexcept {
    instr_->read(&x, sizeof(T));
    return atomic_load(x);
  }

  template <class T>
  void store(T& x, T v) noexcept {
    instr_->write(&x, sizeof(T));
    atomic_store(x, v);
  }

  // x = min(x, v); true when lowered.
  template <class T>
  bool min(T& x, T v) noexcept {
    if (v < x) {
      instr_->write(&x, sizeof(T));
      atomic_store(x, v);
      return true;
    }
    return false;
  }

  template <class T, class U>
  void add(T& x, U v) noexcept {
    instr_->write(&x, sizeof(T));
    x = static_cast<T>(x + v);
  }

  // x += v, returning the *previous* value (the generalized-BFS ready-counter
  // decrement: whoever sees old == 1 dropped the counter to zero).
  template <class T>
  T fetch_add(T& x, T v) noexcept {
    instr_->write(&x, sizeof(T));
    const T old = x;
    x = static_cast<T>(old + v);
    return old;
  }

  // Claim x: if x == expected, set desired; true when this call claimed it.
  template <class T>
  bool claim(T& x, T expected, T desired) noexcept {
    if (x != expected) return false;
    instr_->write(&x, sizeof(T));
    atomic_store(x, desired);
    return true;
  }

  // word &= mask (availability-mask strike).
  void and_mask(std::uint64_t& word, std::uint64_t mask) noexcept {
    instr_->write(&word, sizeof(word));
    word &= mask;
  }

  // x = combine(x, v) for arbitrary ⊕ (semiring accumulate).
  template <class T, class Combine>
  void accumulate(T& x, T v, Combine&& combine) noexcept {
    instr_->write(&x, sizeof(T));
    x = combine(x, v);
  }

  // Arbitrary read-modify-write region keyed by destination index: plain.
  template <class Fn>
  void critical(std::size_t, Fn&& fn) noexcept {
    fn();
  }

 private:
  Instr* instr_;
};

// Push with hardware atomics.
template <class Instr>
class AtomicCtx {
 public:
  static constexpr bool kSynchronized = true;

  AtomicCtx(Instr& instr, SpinlockPool& locks) noexcept
      : instr_(&instr), locks_(&locks) {}

  Instr& instr() noexcept { return *instr_; }

  template <class T>
  T load(const T& x) noexcept {
    instr_->read(&x, sizeof(T));
    return atomic_load(x);
  }

  template <class T>
  void store(T& x, T v) noexcept {
    instr_->write(&x, sizeof(T));
    atomic_store(x, v);
  }

  template <class T>
  bool min(T& x, T v) noexcept {
    instr_->atomic(&x, sizeof(T));
    return atomic_min(x, v);
  }

  // Integer accumulation is one FAA (atomic-accounted); floating-point has no
  // hardware atomic and becomes a CAS loop the paper prices as a lock (§4.1).
  template <class T, class U>
  void add(T& x, U v) noexcept {
    if constexpr (std::is_integral_v<T>) {
      instr_->atomic(&x, sizeof(T));
      faa(x, static_cast<T>(v));
    } else {
      instr_->lock(&x);
      atomic_add(x, static_cast<T>(v));
    }
  }

  // FAA returning the previous value; integral only (atomic-accounted).
  template <class T>
  T fetch_add(T& x, T v) noexcept {
    static_assert(std::is_integral_v<T>);
    instr_->atomic(&x, sizeof(T));
    return faa(x, v);
  }

  template <class T>
  bool claim(T& x, T expected, T desired) noexcept {
    instr_->atomic(&x, sizeof(T));
    return cas(x, expected, desired);
  }

  void and_mask(std::uint64_t& word, std::uint64_t mask) noexcept {
    instr_->atomic(&word, sizeof(word));
    std::atomic_ref<std::uint64_t>(word).fetch_and(mask, std::memory_order_relaxed);
  }

  // Generic ⊕ accumulation: CAS loop; integer-width ⊕ counts as an atomic,
  // anything else follows the float-lock convention.
  template <class T, class Combine>
  void accumulate(T& x, T v, Combine&& combine) noexcept {
    if constexpr (std::is_integral_v<T>) {
      instr_->atomic(&x, sizeof(T));
    } else {
      instr_->lock(&x);
    }
    std::atomic_ref<T> ref(x);
    T cur = ref.load(std::memory_order_relaxed);
    for (;;) {
      const T combined = combine(cur, v);
      if (combined == cur) return;  // no change: skip the write
      if (ref.compare_exchange_weak(cur, combined, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        return;
      }
    }
  }

  // Arbitrary critical sections fall back to the striped pool — an atomic
  // cannot guard a non-POD update.
  template <class Fn>
  void critical(std::size_t key, Fn&& fn) noexcept {
    instr_->lock(&locks_->for_index(key));
    SpinGuard guard(locks_->for_index(key));
    fn();
  }

 private:
  Instr* instr_;
  SpinlockPool* locks_;
};

// Push through a striped spinlock pool: every primitive takes the lock of its
// target (hashed by address), does the plain update, releases. One lock
// acquisition is counted per primitive call.
template <class Instr>
class LockCtx {
 public:
  static constexpr bool kSynchronized = true;

  LockCtx(Instr& instr, SpinlockPool& locks) noexcept
      : instr_(&instr), locks_(&locks) {}

  Instr& instr() noexcept { return *instr_; }

  template <class T>
  T load(const T& x) noexcept {
    instr_->read(&x, sizeof(T));
    return atomic_load(x);
  }

  template <class T>
  void store(T& x, T v) noexcept {
    instr_->write(&x, sizeof(T));
    atomic_store(x, v);
  }

  template <class T>
  bool min(T& x, T v) noexcept {
    instr_->lock(&x);
    SpinGuard guard(lock_for(&x));
    if (v < x) {
      atomic_store(x, v);
      return true;
    }
    return false;
  }

  template <class T, class U>
  void add(T& x, U v) noexcept {
    instr_->lock(&x);
    SpinGuard guard(lock_for(&x));
    atomic_store(x, static_cast<T>(x + v));
  }

  template <class T>
  T fetch_add(T& x, T v) noexcept {
    instr_->lock(&x);
    SpinGuard guard(lock_for(&x));
    const T old = atomic_load(x);
    atomic_store(x, static_cast<T>(old + v));
    return old;
  }

  template <class T>
  bool claim(T& x, T expected, T desired) noexcept {
    instr_->lock(&x);
    SpinGuard guard(lock_for(&x));
    if (atomic_load(x) != expected) return false;
    atomic_store(x, desired);
    return true;
  }

  void and_mask(std::uint64_t& word, std::uint64_t mask) noexcept {
    instr_->lock(&word);
    SpinGuard guard(lock_for(&word));
    atomic_store(word, word & mask);
  }

  template <class T, class Combine>
  void accumulate(T& x, T v, Combine&& combine) noexcept {
    instr_->lock(&x);
    SpinGuard guard(lock_for(&x));
    atomic_store(x, combine(atomic_load(x), v));
  }

  template <class Fn>
  void critical(std::size_t key, Fn&& fn) noexcept {
    instr_->lock(&locks_->for_index(key));
    SpinGuard guard(locks_->for_index(key));
    fn();
  }

 private:
  Spinlock& lock_for(const void* p) noexcept {
    return locks_->for_index(reinterpret_cast<std::uintptr_t>(p) >> 3);
  }

  Instr* instr_;
  SpinlockPool* locks_;
};

}  // namespace pushpull::engine
