#include "graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pushpull {

EdgeList rmat_edges(int scale, int edge_factor, std::uint64_t seed, double a,
                    double b, double c) {
  PP_CHECK(scale >= 1 && scale < 31);
  PP_CHECK(edge_factor >= 1);
  const double d = 1.0 - a - b - c;
  PP_CHECK(a > 0 && b >= 0 && c >= 0 && d > 0);

  const vid_t n = vid_t{1} << scale;
  const eid_t m = static_cast<eid_t>(n) * edge_factor;
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (eid_t e = 0; e < m; ++e) {
    vid_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant choice: (0,0) w.p. a, (0,1) w.p. b, (1,0) w.p. c, else (1,1).
      int ubit = 0, vbit = 0;
      if (r < a) {
      } else if (r < a + b) {
        vbit = 1;
      } else if (r < a + b + c) {
        ubit = 1;
      } else {
        ubit = 1;
        vbit = 1;
      }
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    edges.push_back(Edge{u, v, 1.0f});
  }
  return edges;
}

EdgeList erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed) {
  PP_CHECK(n >= 2);
  const eid_t max_edges = static_cast<eid_t>(n) * (n - 1) / 2;
  PP_CHECK(m >= 0 && m <= max_edges);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<eid_t>(edges.size()) < m) {
    vid_t u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    vid_t v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
    if (seen.insert(key).second) edges.push_back(Edge{u, v, 1.0f});
  }
  return edges;
}

EdgeList grid2d_edges(vid_t rows, vid_t cols, double keep_prob,
                      std::uint64_t seed) {
  PP_CHECK(rows >= 1 && cols >= 1);
  PP_CHECK(keep_prob > 0.0 && keep_prob <= 1.0);
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.next_bool(keep_prob)) {
        edges.push_back(Edge{id(r, c), id(r, c + 1), 1.0f});
      }
      if (r + 1 < rows && rng.next_bool(keep_prob)) {
        edges.push_back(Edge{id(r, c), id(r + 1, c), 1.0f});
      }
    }
  }
  return edges;
}

EdgeList barabasi_albert_edges(vid_t n, int attach, std::uint64_t seed) {
  PP_CHECK(attach >= 1);
  PP_CHECK(n > attach);
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  // `targets` holds one entry per edge endpoint; sampling an element uniformly
  // is sampling a vertex proportionally to its degree.
  std::vector<vid_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);
  // Seed clique over the first attach+1 vertices.
  for (vid_t u = 0; u <= attach; ++u) {
    for (vid_t v = u + 1; v <= attach; ++v) {
      edges.push_back(Edge{u, v, 1.0f});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (vid_t v = static_cast<vid_t>(attach) + 1; v < n; ++v) {
    std::unordered_set<vid_t> chosen;
    while (static_cast<int>(chosen.size()) < attach) {
      const vid_t t = endpoints[rng.next_below(endpoints.size())];
      chosen.insert(t);
    }
    for (vid_t t : chosen) {
      edges.push_back(Edge{v, t, 1.0f});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return edges;
}

EdgeList watts_strogatz_edges(vid_t n, int k, double beta, std::uint64_t seed) {
  PP_CHECK(n >= 3);
  PP_CHECK(k >= 1 && 2 * k < n);
  PP_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (vid_t u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      vid_t v = static_cast<vid_t>((u + j) % n);
      if (rng.next_bool(beta)) {
        // Rewire to a uniform random non-self target; parallel edges are
        // collapsed later by the builder.
        v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (v == u) v = static_cast<vid_t>((v + 1) % n);
      }
      edges.push_back(Edge{u, v, 1.0f});
    }
  }
  return edges;
}

EdgeList path_edges(vid_t n) {
  EdgeList edges;
  for (vid_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, static_cast<vid_t>(v + 1), 1.0f});
  return edges;
}

EdgeList cycle_edges(vid_t n) {
  PP_CHECK(n >= 3);
  EdgeList edges = path_edges(n);
  edges.push_back(Edge{static_cast<vid_t>(n - 1), 0, 1.0f});
  return edges;
}

EdgeList star_edges(vid_t n) {
  PP_CHECK(n >= 2);
  EdgeList edges;
  for (vid_t v = 1; v < n; ++v) edges.push_back(Edge{0, v, 1.0f});
  return edges;
}

EdgeList complete_edges(vid_t n) {
  EdgeList edges;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) edges.push_back(Edge{u, v, 1.0f});
  }
  return edges;
}

EdgeList complete_bipartite_edges(vid_t a, vid_t b) {
  EdgeList edges;
  for (vid_t u = 0; u < a; ++u) {
    for (vid_t v = 0; v < b; ++v) {
      edges.push_back(Edge{u, static_cast<vid_t>(a + v), 1.0f});
    }
  }
  return edges;
}

EdgeList binary_tree_edges(int levels) {
  PP_CHECK(levels >= 1 && levels < 31);
  const vid_t n = (vid_t{1} << levels) - 1;
  EdgeList edges;
  for (vid_t v = 1; v < n; ++v) {
    edges.push_back(Edge{static_cast<vid_t>((v - 1) / 2), v, 1.0f});
  }
  return edges;
}

Csr make_undirected(vid_t n, EdgeList edges) {
  return build_csr(n, std::move(edges));
}

Csr make_undirected_weighted(vid_t n, EdgeList edges, weight_t lo, weight_t hi,
                             std::uint64_t seed) {
  BuildOptions opts;
  opts.keep_weights = true;
  return build_csr(n, with_uniform_weights(std::move(edges), lo, hi, seed), opts);
}

}  // namespace pushpull
