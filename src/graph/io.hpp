// Edge-list text I/O ("u v [w]" per line, '#' comments — the SNAP format)
// plus a compact binary CSR format for fast reloads.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull {

// Reads a SNAP-style whitespace-separated edge list. Lines starting with '#'
// are skipped. Returns the edges and sets `n` to 1 + the maximum vertex id.
EdgeList read_edge_list(const std::string& path, vid_t* n);

// Writes one "u v w" line per arc of the CSR (both directions for symmetric
// graphs), preceded by a "# pushpull edge list" header.
void write_edge_list(const std::string& path, const Csr& g);

// Binary CSR round-trip. Files carry a magic + version header (format v2);
// the reader rejects foreign, truncated, stale or trailing-garbage files with
// a diagnostic naming the file, and still accepts legacy v1 files (magic
// only, no version word) for old caches.
void write_csr_binary(const std::string& path, const Csr& g);
Csr read_csr_binary(const std::string& path);

// Binary Digraph round-trip (format v2 with its own magic): the out-CSR and
// in-CSR payloads back to back, so update-workload benches can checkpoint a
// directed graph without re-transposing. The reader applies the same
// diagnostics as read_csr_binary and then cross-validates that the stored
// in-CSR is exactly the transpose of the out-CSR (validate_digraph).
void write_digraph_binary(const std::string& path, const Digraph& g);
Digraph read_digraph_binary(const std::string& path);

}  // namespace pushpull
