#include "graph/analogs.hpp"

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace pushpull {

namespace {

// Applies the power-of-two scale knob to a base R-MAT scale.
int scaled(int base_log2, int scale) {
  const int s = base_log2 + scale;
  PP_CHECK(s >= 4 && s <= 26);
  return s;
}

Csr finish(vid_t n, EdgeList edges, bool weighted, std::uint64_t seed) {
  if (weighted) return make_undirected_weighted(n, std::move(edges), 1.0f, 64.0f, seed ^ 0xabcd);
  return make_undirected(n, std::move(edges));
}

}  // namespace

Csr orc_analog(int scale, bool weighted) {
  const int s = scaled(15, scale);  // default n = 32768
  return finish(vid_t{1} << s, rmat_edges(s, 16, /*seed=*/101), weighted, 101);
}

Csr pok_analog(int scale, bool weighted) {
  const int s = scaled(14, scale);  // default n = 16384
  return finish(vid_t{1} << s, rmat_edges(s, 9, /*seed=*/202), weighted, 202);
}

Csr ljn_analog(int scale, bool weighted) {
  const int s = scaled(15, scale);  // default n = 32768
  return finish(vid_t{1} << s, rmat_edges(s, 5, /*seed=*/303), weighted, 303);
}

Csr am_analog(int scale, bool weighted) {
  vid_t n = vid_t{1} << scaled(15, scale);  // default n = 32768
  return finish(n, barabasi_albert_edges(n, 2, /*seed=*/404), weighted, 404);
}

Csr rca_analog(int scale, bool weighted) {
  // Default 128 x 512 = 65536 vertices; thinned to d̄ ≈ 2.8 like roadNet-CA.
  int rows = 128, cols = 512;
  for (int i = 0; i < scale; ++i) (i % 2 == 0 ? cols : rows) *= 2;
  for (int i = 0; i > scale; --i) (i % 2 == 0 ? cols : rows) /= 2;
  PP_CHECK(rows >= 4 && cols >= 4);
  return finish(static_cast<vid_t>(rows) * cols,
                grid2d_edges(rows, cols, /*keep_prob=*/0.72, /*seed=*/505),
                weighted, 505);
}

Csr analog_by_name(const std::string& name, int scale, bool weighted) {
  if (name == "orc") return orc_analog(scale, weighted);
  if (name == "pok") return pok_analog(scale, weighted);
  if (name == "ljn") return ljn_analog(scale, weighted);
  if (name == "am") return am_analog(scale, weighted);
  if (name == "rca") return rca_analog(scale, weighted);
  PP_CHECK(false && "unknown analog graph name");
  return {};
}

const std::vector<std::string>& analog_names() {
  static const std::vector<std::string> names = {"orc", "pok", "ljn", "am", "rca"};
  return names;
}

}  // namespace pushpull
