#include "graph/analogs.hpp"

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace pushpull {

namespace {

// Applies the power-of-two scale knob to a base R-MAT scale.
int scaled(int base_log2, int scale) {
  const int s = base_log2 + scale;
  PP_CHECK(s >= 4 && s <= 26);
  return s;
}

Csr finish(vid_t n, EdgeList edges, bool weighted, std::uint64_t seed) {
  if (weighted) return make_undirected_weighted(n, std::move(edges), 1.0f, 64.0f, seed ^ 0xabcd);
  return make_undirected(n, std::move(edges));
}

// --seed override: 0 keeps the analog's builtin seed so the published
// defaults stay bit-identical.
std::uint64_t pick(std::uint64_t builtin, std::uint64_t seed) {
  return seed == 0 ? builtin : seed;
}

}  // namespace

Csr orc_analog(int scale, bool weighted, std::uint64_t seed) {
  const int s = scaled(15, scale);  // default n = 32768
  const std::uint64_t sd = pick(101, seed);
  return finish(vid_t{1} << s, rmat_edges(s, 16, sd), weighted, sd);
}

Csr pok_analog(int scale, bool weighted, std::uint64_t seed) {
  const int s = scaled(14, scale);  // default n = 16384
  const std::uint64_t sd = pick(202, seed);
  return finish(vid_t{1} << s, rmat_edges(s, 9, sd), weighted, sd);
}

Csr ljn_analog(int scale, bool weighted, std::uint64_t seed) {
  const int s = scaled(15, scale);  // default n = 32768
  const std::uint64_t sd = pick(303, seed);
  return finish(vid_t{1} << s, rmat_edges(s, 5, sd), weighted, sd);
}

Csr am_analog(int scale, bool weighted, std::uint64_t seed) {
  vid_t n = vid_t{1} << scaled(15, scale);  // default n = 32768
  const std::uint64_t sd = pick(404, seed);
  return finish(n, barabasi_albert_edges(n, 2, sd), weighted, sd);
}

Csr rca_analog(int scale, bool weighted, std::uint64_t seed) {
  // Default 128 x 512 = 65536 vertices; thinned to d̄ ≈ 2.8 like roadNet-CA.
  int rows = 128, cols = 512;
  for (int i = 0; i < scale; ++i) (i % 2 == 0 ? cols : rows) *= 2;
  for (int i = 0; i > scale; --i) (i % 2 == 0 ? cols : rows) /= 2;
  PP_CHECK(rows >= 4 && cols >= 4);
  const std::uint64_t sd = pick(505, seed);
  return finish(static_cast<vid_t>(rows) * cols,
                grid2d_edges(rows, cols, /*keep_prob=*/0.72, sd),
                weighted, sd);
}

Csr analog_by_name(const std::string& name, int scale, bool weighted,
                   std::uint64_t seed) {
  if (name == "orc") return orc_analog(scale, weighted, seed);
  if (name == "pok") return pok_analog(scale, weighted, seed);
  if (name == "ljn") return ljn_analog(scale, weighted, seed);
  if (name == "am") return am_analog(scale, weighted, seed);
  if (name == "rca") return rca_analog(scale, weighted, seed);
  PP_CHECK(false && "unknown analog graph name");
  return {};
}

const std::vector<std::string>& analog_names() {
  static const std::vector<std::string> names = {"orc", "pok", "ljn", "am", "rca"};
  return names;
}

}  // namespace pushpull
