#include "graph/partition_aware.hpp"

#include <omp.h>

#include <algorithm>

#include "util/check.hpp"

namespace pushpull {

PartitionAwareCsr::PartitionAwareCsr(const Csr& g, const Partition1D& part)
    : part_(part) {
  const vid_t n = g.n();
  PP_CHECK(part.n() == n);
  local_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  remote_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    for (vid_t u : g.neighbors(v)) {
      if (part.owner(u) == owner) {
        ++local_offsets_[static_cast<std::size_t>(v) + 1];
      } else {
        ++remote_offsets_[static_cast<std::size_t>(v) + 1];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    local_offsets_[v + 1] += local_offsets_[v];
    remote_offsets_[v + 1] += remote_offsets_[v];
  }
  local_adj_.resize(static_cast<std::size_t>(local_offsets_.back()));
  remote_adj_.resize(static_cast<std::size_t>(remote_offsets_.back()));
  std::vector<eid_t> lcur(local_offsets_.begin(), local_offsets_.end() - 1);
  std::vector<eid_t> rcur(remote_offsets_.begin(), remote_offsets_.end() - 1);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    for (vid_t u : g.neighbors(v)) {
      if (part.owner(u) == owner) {
        local_adj_[static_cast<std::size_t>(lcur[v]++)] = u;
      } else {
        remote_adj_[static_cast<std::size_t>(rcur[v]++)] = u;
      }
    }
  }
}

NumaAwareCsr::NumaAwareCsr(const Csr& g, int nodes)
    : n_(g.n()),
      part_(g.n(), nodes > 0 ? nodes : std::max(1, numa::topology().nodes)) {
  const vid_t n = n_;
  local_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  cross_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part_.owner(v);
    for (vid_t u : g.neighbors(v)) {
      if (part_.owner(u) == owner) {
        ++local_offsets_[static_cast<std::size_t>(v) + 1];
      } else {
        ++cross_offsets_[static_cast<std::size_t>(v) + 1];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    local_offsets_[v + 1] += local_offsets_[v];
    cross_offsets_[v + 1] += cross_offsets_[v];
  }
  local_adj_ = numa::FirstTouchArray<vid_t>(
      static_cast<std::size_t>(local_offsets_.back()));
  cross_adj_ = numa::FirstTouchArray<vid_t>(
      static_cast<std::size_t>(cross_offsets_.back()));
  // First-touch fill: one lane per node, pinned to its node (best-effort),
  // writes exactly its own vertex range's adjacency segments — both segments
  // of node p are contiguous because offsets are monotone over the 1D
  // partition, so the pages each lane commits are the pages its node's push
  // sweeps will read.
#pragma omp parallel num_threads(part_.parts())
  {
    const int p = omp_get_thread_num();
    numa::ScopedNodePin pin(p);
    for (vid_t v = part_.begin(p); v < part_.end(p); ++v) {
      eid_t lc = local_offsets_[static_cast<std::size_t>(v)];
      eid_t cc = cross_offsets_[static_cast<std::size_t>(v)];
      for (vid_t u : g.neighbors(v)) {
        if (part_.owner(u) == p) {
          local_adj_[static_cast<std::size_t>(lc++)] = u;
        } else {
          cross_adj_[static_cast<std::size_t>(cc++)] = u;
        }
      }
      PP_DCHECK(lc == local_offsets_[static_cast<std::size_t>(v) + 1]);
      PP_DCHECK(cc == cross_offsets_[static_cast<std::size_t>(v) + 1]);
    }
  }
}

}  // namespace pushpull
