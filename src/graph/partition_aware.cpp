#include "graph/partition_aware.hpp"

namespace pushpull {

PartitionAwareCsr::PartitionAwareCsr(const Csr& g, const Partition1D& part)
    : part_(part) {
  const vid_t n = g.n();
  PP_CHECK(part.n() == n);
  local_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  remote_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    for (vid_t u : g.neighbors(v)) {
      if (part.owner(u) == owner) {
        ++local_offsets_[static_cast<std::size_t>(v) + 1];
      } else {
        ++remote_offsets_[static_cast<std::size_t>(v) + 1];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    local_offsets_[v + 1] += local_offsets_[v];
    remote_offsets_[v + 1] += remote_offsets_[v];
  }
  local_adj_.resize(static_cast<std::size_t>(local_offsets_.back()));
  remote_adj_.resize(static_cast<std::size_t>(remote_offsets_.back()));
  std::vector<eid_t> lcur(local_offsets_.begin(), local_offsets_.end() - 1);
  std::vector<eid_t> rcur(remote_offsets_.begin(), remote_offsets_.end() - 1);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    for (vid_t u : g.neighbors(v)) {
      if (part.owner(u) == owner) {
        local_adj_[static_cast<std::size_t>(lcur[v]++)] = u;
      } else {
        remote_adj_[static_cast<std::size_t>(rcur[v]++)] = u;
      }
    }
  }
}

}  // namespace pushpull
