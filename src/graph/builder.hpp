// Edge-list → CSR builder.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull {

struct BuildOptions {
  // Insert the reverse of every edge so the CSR is symmetric (undirected
  // semantics, the paper's default §2.2).
  bool symmetrize = true;
  // Drop (v, v) edges.
  bool remove_self_loops = true;
  // Collapse parallel edges, keeping the minimum weight (relevant for MST).
  bool dedup = true;
  // Carry edge weights into the CSR.
  bool keep_weights = false;
};

// Builds a CSR with sorted adjacency lists from a loose edge list.
// `n` must be strictly greater than every endpoint id.
Csr build_csr(vid_t n, EdgeList edges, const BuildOptions& opts = {});

// Convenience for directed graphs: builds out-CSR from the edges as given
// (no symmetrization) and derives the in-CSR by transposition. The result is
// validated with validate_digraph before it is returned.
Digraph build_digraph(vid_t n, EdgeList edges, bool keep_weights = false);

// Full-control overload: `opts.symmetrize` is forced off (a symmetrized
// digraph is an undirected graph); self-loop/dedup/weight handling are the
// caller's. `name` labels the graph in corruption diagnostics.
Digraph build_digraph(vid_t n, EdgeList edges, BuildOptions opts,
                      const std::string& name = "digraph");

// Cross-validates a Digraph's two CSRs: same vertex count, same arc count,
// matching weight presence, every out-arc (u, v) present as in-arc (v, u) —
// i.e. `in` is exactly the transpose of `out`. Aborts with a diagnostic
// naming the graph (like the CSR-binary v2 errors) on any mismatch.
void validate_digraph(const Digraph& g, const std::string& name);

// Assigns uniformly random weights in [lo, hi) to an edge list (seeded).
EdgeList with_uniform_weights(EdgeList edges, weight_t lo, weight_t hi,
                              std::uint64_t seed);

}  // namespace pushpull
