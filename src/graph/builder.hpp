// Edge-list → CSR builder, plus the column-block cut construction consumed by
// the cache-blocked pull view (engine/blocked_view.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull {

struct BuildOptions {
  // Insert the reverse of every edge so the CSR is symmetric (undirected
  // semantics, the paper's default §2.2).
  bool symmetrize = true;
  // Drop (v, v) edges.
  bool remove_self_loops = true;
  // Collapse parallel edges, keeping the minimum weight (relevant for MST).
  bool dedup = true;
  // Carry edge weights into the CSR.
  bool keep_weights = false;
};

// Builds a CSR with sorted adjacency lists from a loose edge list.
// `n` must be strictly greater than every endpoint id.
Csr build_csr(vid_t n, EdgeList edges, const BuildOptions& opts = {});

// Convenience for directed graphs: builds out-CSR from the edges as given
// (no symmetrization) and derives the in-CSR by transposition. The result is
// validated with validate_digraph before it is returned.
Digraph build_digraph(vid_t n, EdgeList edges, bool keep_weights = false);

// Full-control overload: `opts.symmetrize` is forced off (a symmetrized
// digraph is an undirected graph); self-loop/dedup/weight handling are the
// caller's. `name` labels the graph in corruption diagnostics.
Digraph build_digraph(vid_t n, EdgeList edges, BuildOptions opts,
                      const std::string& name = "digraph");

// Cross-validates a Digraph's two CSRs: same vertex count, same arc count,
// matching weight presence, every out-arc (u, v) present as in-arc (v, u) —
// i.e. `in` is exactly the transpose of `out`. Aborts with a diagnostic
// naming the graph (like the CSR-binary v2 errors) on any mismatch.
void validate_digraph(const Digraph& g, const std::string& name);

// Assigns uniformly random weights in [lo, hi) to an edge list (seeded).
EdgeList with_uniform_weights(EdgeList edges, weight_t lo, weight_t hi,
                              std::uint64_t seed);

// Source-range column blocks over an in-CSR (the BlockedView construction,
// DESIGN.md §2 "Locality-aware views"). `block_starts` holds K+1 boundaries
// over the source-id space (block b covers sources [block_starts[b],
// block_starts[b+1]); block_starts.front() == 0, block_starts.back() == n).
// Because every adjacency row is sorted ascending, the arcs of row d whose
// sources fall in block b form one contiguous segment of the row — the block
// structure therefore materializes as per-(block, row) cut offsets into the
// *parent* arrays rather than copied adjacency, which preserves global arc
// ids (and thereby edge weights) under blocked execution for free.
//
// Returns cuts of size (K+1)·n, laid out row-major by block:
//   cuts[b·n + d]     = first arc of d's row with source >= block_starts[b]
//   cuts[(b+1)·n + d] = one past d's last arc with source < block_starts[b+1]
// so block b scans [cuts[b·n+d], cuts[(b+1)·n+d]) of the in-CSR. Row 0 equals
// edge_begin(d), row K equals edge_end(d). One merged pass per row: O(m + nK).
std::vector<eid_t> build_source_range_cuts(const Csr& in_csr,
                                           std::span<const vid_t> block_starts);

}  // namespace pushpull
