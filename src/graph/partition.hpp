// 1D vertex partitioning (§2.2): vertices are block-distributed over P
// threads/processes; t[v] denotes the owner of v. Pushing means a thread may
// write vertices it does not own; pulling means every write satisfies
// t[v] == t (§3.8).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace pushpull {

// Contiguous block partition: owner(v) = v / ceil(n/P), clamped.
class Partition1D {
 public:
  Partition1D() = default;

  Partition1D(vid_t n, int parts) : n_(n), parts_(parts) {
    PP_CHECK(n >= 0 && parts >= 1);
    chunk_ = (n + parts - 1) / parts;
    if (chunk_ == 0) chunk_ = 1;
  }

  int parts() const noexcept { return parts_; }
  vid_t n() const noexcept { return n_; }

  int owner(vid_t v) const noexcept {
    PP_DCHECK(v >= 0 && v < n_);
    const int p = static_cast<int>(v / chunk_);
    return p < parts_ ? p : parts_ - 1;
  }

  vid_t begin(int p) const noexcept {
    PP_DCHECK(p >= 0 && p < parts_);
    const vid_t b = static_cast<vid_t>(p) * chunk_;
    return b < n_ ? b : n_;
  }

  vid_t end(int p) const noexcept {
    PP_DCHECK(p >= 0 && p < parts_);
    if (p == parts_ - 1) return n_;
    const vid_t e = static_cast<vid_t>(p + 1) * chunk_;
    return e < n_ ? e : n_;
  }

  vid_t part_size(int p) const noexcept { return end(p) - begin(p); }

 private:
  vid_t n_ = 0;
  int parts_ = 1;
  vid_t chunk_ = 1;
};

// Border vertices B (§3.6): vertices with at least one neighbor owned by a
// different partition.
std::vector<vid_t> border_vertices(const Csr& g, const Partition1D& part);

// True iff u and v belong to different partitions.
inline bool is_cut_edge(const Partition1D& part, vid_t u, vid_t v) noexcept {
  return part.owner(u) != part.owner(v);
}

}  // namespace pushpull
