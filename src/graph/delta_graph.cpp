#include "graph/delta_graph.hpp"

#include <algorithm>

namespace pushpull {

// --- SnapshotCsr -------------------------------------------------------------

SnapshotCsr::SnapshotCsr(std::shared_ptr<const Csr> base,
                         std::vector<vid_t> touched,
                         std::vector<eid_t> patch_off,
                         std::vector<vid_t> patch_adj,
                         std::vector<weight_t> patch_w)
    : base_(std::move(base)),
      touched_(std::move(touched)),
      patch_off_(std::move(patch_off)),
      patch_adj_(std::move(patch_adj)),
      patch_w_(std::move(patch_w)) {
  PP_CHECK(base_ != nullptr);
  PP_CHECK(patch_off_.size() == touched_.size() + 1);
  PP_CHECK(patch_off_.front() == 0);
  PP_CHECK(patch_off_.back() == static_cast<eid_t>(patch_adj_.size()));
  PP_CHECK(patch_w_.empty() || patch_w_.size() == patch_adj_.size());
  PP_CHECK(std::is_sorted(touched_.begin(), touched_.end()));
  base_arcs_ = base_->num_arcs();
  arcs_ = base_arcs_ + static_cast<eid_t>(patch_adj_.size());
  for (std::size_t s = 0; s < touched_.size(); ++s) {
    arcs_ -= base_->degree(touched_[s]);
  }
}

bool SnapshotCsr::has_edge(vid_t u, vid_t v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

vid_t SnapshotCsr::max_degree() const noexcept {
  if (max_degree_cache_ >= 0) return max_degree_cache_;
  vid_t best = 0;
  for (vid_t v = 0; v < n(); ++v) best = std::max(best, degree(v));
  max_degree_cache_ = best;
  return best;
}

Csr SnapshotCsr::materialize() const {
  const vid_t nn = n();
  std::vector<eid_t> offsets(static_cast<std::size_t>(nn) + 1, 0);
  for (vid_t v = 0; v < nn; ++v) {
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] + degree(v);
  }
  std::vector<vid_t> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<weight_t> weights;
  if (has_weights()) weights.resize(adj.size());
  for (vid_t v = 0; v < nn; ++v) {
    const auto nb = neighbors(v);
    std::copy(nb.begin(), nb.end(),
              adj.begin() + static_cast<std::size_t>(offsets[v]));
    if (has_weights()) {
      const auto wv = this->weights(v);
      std::copy(wv.begin(), wv.end(),
                weights.begin() + static_cast<std::size_t>(offsets[v]));
    }
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

// --- DeltaGraph --------------------------------------------------------------

namespace {

// The builder's contract, verified once at the seam: sorted, duplicate-free
// adjacency (overlay merging and duplicate detection rely on it).
void check_base(const Csr& g) {
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      PP_CHECK(nb[i - 1] < nb[i] &&
               "DeltaGraph base must have sorted, duplicate-free adjacency");
    }
  }
}

}  // namespace

DeltaGraph::DeltaGraph(Csr base) : symmetric_(true) {
  check_base(base);
  n_ = base.n();
  out_.base = std::make_shared<const Csr>(std::move(base));
  in_.base = out_.base;
}

DeltaGraph::DeltaGraph(Digraph base) : symmetric_(false) {
  check_base(base.out);
  check_base(base.in);
  PP_CHECK(base.out.n() == base.in.n());
  PP_CHECK(base.out.num_arcs() == base.in.num_arcs());
  n_ = base.out.n();
  out_.base = std::make_shared<const Csr>(std::move(base.out));
  in_.base = std::make_shared<const Csr>(std::move(base.in));
}

epoch_t DeltaGraph::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

epoch_t DeltaGraph::oldest_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return oldest_epoch_;
}

bool DeltaGraph::arc_visible(const Side& side, vid_t u, vid_t v,
                             epoch_t e) const {
  const auto it = side.delta.find(u);
  if (it != side.delta.end()) {
    for (const OverlayArc& a : it->second.inserts) {
      if (a.to == v && a.born <= e && e < a.died) return true;
    }
    for (const Tombstone& t : it->second.removals) {
      if (t.to == v && t.died <= e) return false;
    }
  }
  const auto nb = side.base->neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

void DeltaGraph::stage_insert(Side& side, vid_t u, vid_t v, weight_t w,
                              epoch_t e) {
  auto& ov = side.delta[u];
  const OverlayArc arc{v, w, e, kNever};
  const auto pos = std::upper_bound(
      ov.inserts.begin(), ov.inserts.end(), arc,
      [](const OverlayArc& a, const OverlayArc& b) {
        return a.to != b.to ? a.to < b.to : a.born < b.born;
      });
  ov.inserts.insert(pos, arc);
}

void DeltaGraph::stage_remove(Side& side, vid_t u, vid_t v, epoch_t e) {
  auto& ov = side.delta[u];
  // A live overlay insert dies; otherwise the arc lives in the base and gets
  // a tombstone. (arc_visible guaranteed one of the two holds.)
  for (OverlayArc& a : ov.inserts) {
    if (a.to == v && a.born <= e && e < a.died) {
      a.died = e;
      return;
    }
  }
  const Tombstone tomb{v, e};
  const auto pos = std::upper_bound(
      ov.removals.begin(), ov.removals.end(), tomb,
      [](const Tombstone& a, const Tombstone& b) { return a.to < b.to; });
  ov.removals.insert(pos, tomb);
}

bool DeltaGraph::add_edge(vid_t u, vid_t v, weight_t w) {
  PP_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  std::lock_guard<std::mutex> lk(mu_);
  const epoch_t staged = epoch_ + 1;
  if (arc_visible(out_, u, v, staged)) return false;
  stage_insert(out_, u, v, w, staged);
  if (symmetric_) {
    if (u != v) stage_insert(out_, v, u, w, staged);
  } else {
    stage_insert(in_, v, u, w, staged);
  }
  pending_.push_back(EdgeUpdate{u, v, w, /*insert=*/true});
  return true;
}

bool DeltaGraph::remove_edge(vid_t u, vid_t v) {
  PP_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  std::lock_guard<std::mutex> lk(mu_);
  const epoch_t staged = epoch_ + 1;
  if (!arc_visible(out_, u, v, staged)) return false;
  stage_remove(out_, u, v, staged);
  if (symmetric_) {
    if (u != v) stage_remove(out_, v, u, staged);
  } else {
    stage_remove(in_, v, u, staged);
  }
  pending_.push_back(EdgeUpdate{u, v, 1.0f, /*insert=*/false});
  return true;
}

std::size_t DeltaGraph::pending_updates() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

epoch_t DeltaGraph::commit() {
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_.empty()) return epoch_;
  obs::ScopedSpan<obs::Tracer> span(tracer_, "commit", "storage");
  span.arg("updates", static_cast<double>(pending_.size()));
  ++epoch_;
  history_.push_back(UpdateBatch{epoch_, std::move(pending_)});
  pending_.clear();
  span.arg("epoch", static_cast<double>(epoch_));
  span.arg("overlay_entries", static_cast<double>(overlay_entries_locked()));
  return epoch_;
}

std::shared_ptr<const SnapshotCsr> DeltaGraph::materialize_side(
    const Side& side, epoch_t e) const {
  std::vector<vid_t> touched;
  touched.reserve(side.delta.size());
  for (const auto& [v, ov] : side.delta) {
    bool differs = false;
    for (const OverlayArc& a : ov.inserts) {
      if (a.born <= e && e < a.died) {
        differs = true;
        break;
      }
    }
    if (!differs) {
      for (const Tombstone& t : ov.removals) {
        if (t.died <= e) {
          differs = true;
          break;
        }
      }
    }
    if (differs) touched.push_back(v);
  }
  std::sort(touched.begin(), touched.end());

  const bool weighted = side.base->has_weights();
  std::vector<eid_t> patch_off{0};
  patch_off.reserve(touched.size() + 1);
  std::vector<vid_t> patch_adj;
  std::vector<weight_t> patch_w;
  for (const vid_t v : touched) {
    const VertexOverlay& ov = side.delta.at(v);
    // Merge the sorted base adjacency with the live overlay inserts, dropping
    // tombstoned base arcs. Both inputs are sorted by target; at any epoch at
    // most one of {base arc, overlay arc} per target is live, so the merged
    // list stays sorted and duplicate-free.
    const auto nb = side.base->neighbors(v);
    const auto wb =
        weighted ? side.base->weights(v) : std::span<const weight_t>{};
    std::size_t bi = 0;
    std::size_t oi = 0;
    auto dead = [&](vid_t to) {
      for (const Tombstone& t : ov.removals) {
        if (t.to == to) return t.died <= e;
        if (t.to > to) break;
      }
      return false;
    };
    auto next_live_insert = [&]() {
      while (oi < ov.inserts.size()) {
        const OverlayArc& a = ov.inserts[oi];
        if (a.born <= e && e < a.died) return true;
        ++oi;
      }
      return false;
    };
    for (;;) {
      // Advance past non-live inserts *before* comparing targets — a dead
      // insert must never win the merge and leak into the patch.
      const bool has_ins = next_live_insert();
      const bool has_base = bi < nb.size();
      if (!has_base && !has_ins) break;
      if (has_base && (!has_ins || nb[bi] <= ov.inserts[oi].to)) {
        if (!dead(nb[bi])) {
          patch_adj.push_back(nb[bi]);
          if (weighted) patch_w.push_back(wb[bi]);
        }
        ++bi;
      } else {
        patch_adj.push_back(ov.inserts[oi].to);
        if (weighted) patch_w.push_back(ov.inserts[oi].w);
        ++oi;
      }
    }
    patch_off.push_back(static_cast<eid_t>(patch_adj.size()));
  }
  return std::make_shared<const SnapshotCsr>(side.base, std::move(touched),
                                             std::move(patch_off),
                                             std::move(patch_adj),
                                             std::move(patch_w));
}

SnapshotView DeltaGraph::snapshot_locked(epoch_t e) const {
  PP_CHECK(e >= oldest_epoch_ &&
           "snapshot epoch predates the compaction floor");
  PP_CHECK(e <= epoch_ && "snapshot epoch not committed yet");
  auto out = materialize_side(out_, e);
  auto in = symmetric_ ? out : materialize_side(in_, e);
  return SnapshotView(std::move(out), std::move(in), e);
}

SnapshotView DeltaGraph::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshot_locked(epoch_);
}

SnapshotView DeltaGraph::snapshot(epoch_t e) const {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshot_locked(e);
}

void DeltaGraph::rebase_side(Side& side, std::shared_ptr<const Csr> new_base,
                             epoch_t at) {
  std::unordered_map<vid_t, VertexOverlay> rebased;
  for (auto& [v, ov] : side.delta) {
    VertexOverlay keep;
    for (const OverlayArc& a : ov.inserts) {
      if (a.born > at) {
        // Staged after the compaction point: carries over unchanged.
        keep.inserts.push_back(a);
      } else if (a.died > at) {
        // Folded into the new base; a pending death becomes a tombstone.
        if (a.died != kNever) keep.removals.push_back(Tombstone{a.to, a.died});
      }
      // born <= at && died <= at: lived and died before the new base — gone.
    }
    for (const Tombstone& t : ov.removals) {
      // Deaths at or before the compaction point are baked into the new
      // base (the arc is simply absent); later ones still apply.
      if (t.died > at) keep.removals.push_back(t);
    }
    if (!keep.inserts.empty() || !keep.removals.empty()) {
      std::sort(keep.inserts.begin(), keep.inserts.end(),
                [](const OverlayArc& a, const OverlayArc& b) {
                  return a.to != b.to ? a.to < b.to : a.born < b.born;
                });
      std::sort(keep.removals.begin(), keep.removals.end(),
                [](const Tombstone& a, const Tombstone& b) {
                  return a.to < b.to;
                });
      rebased.emplace(v, std::move(keep));
    }
  }
  side.base = std::move(new_base);
  side.delta = std::move(rebased);
}

void DeltaGraph::compact() {
  // Materialize at the current committed epoch under the lock (O(overlay)),
  // expand into a fresh CSR outside it (O(n + m)), then swap. Updates staged
  // or committed while the merge runs stay in the overlay via the rebase.
  std::unique_lock<std::mutex> lk(mu_);
  obs::ScopedSpan<obs::Tracer> span(tracer_, "compact", "storage");
  const epoch_t at = epoch_;
  if (oldest_epoch_ == at && out_.delta.empty() && in_.delta.empty()) return;
  span.arg("overlay_entries_before",
           static_cast<double>(overlay_entries_locked()));
  auto out_snap = materialize_side(out_, at);
  auto in_snap = symmetric_ ? nullptr : materialize_side(in_, at);
  lk.unlock();

  auto new_out = std::make_shared<const Csr>(out_snap->materialize());
  auto new_in =
      symmetric_ ? new_out : std::make_shared<const Csr>(in_snap->materialize());

  lk.lock();
  rebase_side(out_, new_out, at);
  if (symmetric_) {
    in_.base = out_.base;
  } else {
    rebase_side(in_, new_in, at);
  }
  oldest_epoch_ = at;
  span.arg("epoch", static_cast<double>(at));
  span.arg("overlay_entries_after",
           static_cast<double>(overlay_entries_locked()));
}

std::vector<UpdateBatch> DeltaGraph::batches_since(epoch_t since) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<UpdateBatch> out;
  for (const UpdateBatch& b : history_) {
    if (b.epoch > since) out.push_back(b);
  }
  return out;
}

std::size_t DeltaGraph::num_batches_since(epoch_t since) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t count = 0;
  for (const UpdateBatch& b : history_) {
    if (b.epoch > since) ++count;
  }
  return count;
}

eid_t DeltaGraph::num_arcs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return materialize_side(out_, epoch_)->num_arcs();
}

std::size_t DeltaGraph::overlay_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return overlay_entries_locked();
}

std::size_t DeltaGraph::overlay_entries_locked() const {
  std::size_t count = 0;
  for (const Side* side : {&out_, &in_}) {
    for (const auto& [v, ov] : side->delta) {
      count += ov.inserts.size() + ov.removals.size();
    }
  }
  return count;
}

std::vector<EdgeUpdate> flatten(const std::vector<UpdateBatch>& batches) {
  std::vector<EdgeUpdate> out;
  for (const UpdateBatch& b : batches) {
    out.insert(out.end(), b.updates.begin(), b.updates.end());
  }
  return out;
}

}  // namespace pushpull
