// Versioned mutable graph storage (ROADMAP: "Mutable graph storage +
// incremental recomputation").
//
// Every kernel in this repo traverses a frozen CSR; real serving workloads
// mutate the graph while queries run. DeltaGraph closes that gap with an
// LSM-flavored base/overlay split (cf. LSMGraph / LiveGraph):
//
//            writer ──► per-vertex overlay buffers (epoch-tagged)
//                         │ add_edge / remove_edge stage at epoch E+1
//                         │ commit()  ──► publishes epoch E+1
//                         ▼
//            sealed base CSR  +  overlay  ──snapshot(e)──►  SnapshotCsr
//                         ▲
//                         └── compact() merges overlay into a fresh base
//                             (live snapshots keep the old base alive)
//
// Epoch semantics: the base carries epoch `oldest_epoch()`; every commit()
// bumps the committed epoch by one and records its batch. A staged (not yet
// committed) operation is tagged epoch E+1 and is invisible to every
// snapshot until commit. snapshot(e) is valid for any epoch in
// [oldest_epoch(), epoch()] — compact() advances the floor.
//
// SnapshotCsr is a point-in-time view of one direction: vertices untouched
// by the overlay read straight from the sealed base (same spans, same edge
// ids — bit-for-bit the static layout); touched vertices read from a patched
// adjacency materialized at snapshot time, addressed by edge ids offset past
// the base arc range. SnapshotCsr models the CsrLike concept
// (graph/csr.hpp), and SnapshotView pairs two of them (out + in; aliased for
// symmetric graphs) to model the engine's GraphView concept — every edge_map
// loop shape and every core kernel runs on a snapshot unmodified.
//
// Thread model: one writer thread owns add_edge/remove_edge/commit/compact;
// snapshot() and the read-only queries may be called from any thread
// concurrently with the writer (a mutex guards the mutable state, and a
// materialized snapshot is immutable — readers never observe writer
// progress). compact() does its O(n + m) merge outside the lock, so writers
// and snapshotters stall only for the pointer swap.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace pushpull {

using epoch_t = std::int64_t;

// One logical update as the writer issued it (for a symmetric DeltaGraph the
// reverse arc is implied). Committed batches hand these to the incremental
// kernels (core/incremental.hpp) so they can re-propagate from the touched
// frontier instead of recomputing from scratch.
struct EdgeUpdate {
  vid_t u = 0;
  vid_t v = 0;
  weight_t w = 1.0f;
  bool insert = true;
};

// The updates one commit() published, tagged with the epoch it created.
struct UpdateBatch {
  epoch_t epoch = 0;
  std::vector<EdgeUpdate> updates;
};

// --- SnapshotCsr -------------------------------------------------------------

// One direction of a point-in-time snapshot: a sealed base CSR plus a patch
// arena holding the merged (base ∖ deletions ∪ insertions) adjacency of every
// vertex the overlay touched at this epoch. Edge ids < base.num_arcs() index
// the base arrays; ids ≥ base.num_arcs() index the arena. Adjacency lists
// stay sorted ascending, so has_edge keeps its O(log d̂) bound and kernels
// that exploit sorted neighbors (triangle counting) work unchanged.
class SnapshotCsr {
 public:
  SnapshotCsr() = default;

  // Assembled by DeltaGraph; `touched` sorted ascending, `patch_off` spans
  // `patch_adj` (and `patch_w` when the base is weighted).
  SnapshotCsr(std::shared_ptr<const Csr> base, std::vector<vid_t> touched,
              std::vector<eid_t> patch_off, std::vector<vid_t> patch_adj,
              std::vector<weight_t> patch_w);

  vid_t n() const noexcept { return base_->n(); }
  eid_t num_arcs() const noexcept { return arcs_; }
  eid_t m_undirected() const noexcept { return arcs_ / 2; }

  vid_t degree(vid_t v) const noexcept {
    const int s = slot(v);
    return s < 0 ? base_->degree(v)
                 : static_cast<vid_t>(patch_off_[s + 1] - patch_off_[s]);
  }

  std::span<const vid_t> neighbors(vid_t v) const noexcept {
    const int s = slot(v);
    if (s < 0) return base_->neighbors(v);
    return {patch_adj_.data() + patch_off_[s],
            static_cast<std::size_t>(patch_off_[s + 1] - patch_off_[s])};
  }

  bool has_weights() const noexcept { return base_->has_weights(); }

  std::span<const weight_t> weights(vid_t v) const noexcept {
    PP_DCHECK(has_weights());
    const int s = slot(v);
    if (s < 0) return base_->weights(v);
    return {patch_w_.data() + patch_off_[s],
            static_cast<std::size_t>(patch_off_[s + 1] - patch_off_[s])};
  }

  eid_t edge_begin(vid_t v) const noexcept {
    const int s = slot(v);
    return s < 0 ? base_->edge_begin(v) : base_arcs_ + patch_off_[s];
  }

  eid_t edge_end(vid_t v) const noexcept {
    const int s = slot(v);
    return s < 0 ? base_->edge_end(v) : base_arcs_ + patch_off_[s + 1];
  }

  vid_t edge_target(eid_t e) const noexcept {
    return e < base_arcs_ ? base_->edge_target(e)
                          : patch_adj_[static_cast<std::size_t>(e - base_arcs_)];
  }

  weight_t edge_weight(eid_t e) const noexcept {
    if (e < base_arcs_) return base_->edge_weight(e);
    return patch_w_.empty() ? 1.0f
                            : patch_w_[static_cast<std::size_t>(e - base_arcs_)];
  }

  // Offset array of the *base* — kernels pass these addresses to the
  // instrumentation model (e.g. PageRank charges one read for the neighbor's
  // degree lookup); the modeled working set is the base layout.
  const std::vector<eid_t>& offsets() const noexcept { return base_->offsets(); }

  bool has_edge(vid_t u, vid_t v) const noexcept;
  vid_t max_degree() const noexcept;
  double avg_degree() const noexcept {
    return n() == 0 ? 0.0 : static_cast<double>(arcs_) / n();
  }

  // Vertices whose adjacency differs from the sealed base (sorted).
  std::span<const vid_t> touched() const noexcept { return touched_; }
  const Csr& base() const noexcept { return *base_; }

  // Expands the patched view into a standalone CSR (compaction, checkpoints).
  Csr materialize() const;

 private:
  // Index into the patch arrays, or -1 when v reads from the base.
  int slot(vid_t v) const noexcept {
    // Binary search over the (typically small) touched list.
    std::size_t lo = 0, hi = touched_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (touched_[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < touched_.size() && touched_[lo] == v ? static_cast<int>(lo) : -1;
  }

  std::shared_ptr<const Csr> base_;
  eid_t base_arcs_ = 0;
  eid_t arcs_ = 0;
  std::vector<vid_t> touched_;
  std::vector<eid_t> patch_off_{0};
  std::vector<vid_t> patch_adj_;
  std::vector<weight_t> patch_w_;
  mutable vid_t max_degree_cache_ = -1;
};

static_assert(CsrLike<SnapshotCsr>);

// --- SnapshotView ------------------------------------------------------------

// A point-in-time GraphView over a DeltaGraph: push walks out(), pull walks
// in(); for a symmetric graph both alias one SnapshotCsr. Immutable after
// construction and safe to share across threads; holds shared ownership of
// its base CSR(s), so later commits and compactions never invalidate it.
class SnapshotView {
 public:
  SnapshotView(std::shared_ptr<const SnapshotCsr> out,
               std::shared_ptr<const SnapshotCsr> in, epoch_t epoch)
      : out_(std::move(out)), in_(std::move(in)), epoch_(epoch) {
    PP_CHECK(out_ != nullptr && in_ != nullptr);
    PP_CHECK(out_->n() == in_->n());
    PP_CHECK(out_->num_arcs() == in_->num_arcs());
  }

  const SnapshotCsr& out() const noexcept { return *out_; }
  const SnapshotCsr& in() const noexcept { return *in_; }
  vid_t n() const noexcept { return out_->n(); }
  eid_t num_arcs() const noexcept { return out_->num_arcs(); }
  vid_t out_degree(vid_t v) const noexcept { return out_->degree(v); }
  vid_t in_degree(vid_t v) const noexcept { return in_->degree(v); }
  bool is_symmetric() const noexcept { return out_ == in_; }

  // The committed epoch this snapshot observes.
  epoch_t epoch() const noexcept { return epoch_; }

  // Arc-reversed view: forward functors traverse backward, as with
  // DigraphView::reversed().
  SnapshotView reversed() const noexcept { return SnapshotView(in_, out_, epoch_); }

 private:
  std::shared_ptr<const SnapshotCsr> out_;
  std::shared_ptr<const SnapshotCsr> in_;
  epoch_t epoch_ = 0;
};

// --- DeltaGraph --------------------------------------------------------------

class DeltaGraph {
 public:
  // Symmetric store: add_edge(u, v) stages both arcs; out and in alias.
  // The base must have sorted, duplicate-free adjacency (the builder's
  // contract) — checked on construction.
  explicit DeltaGraph(Csr base);

  // Directed store: add_edge(u, v) stages arc u→v (and its transpose in the
  // in-side). Both CSRs checked as for the symmetric case.
  explicit DeltaGraph(Digraph base);

  DeltaGraph(const DeltaGraph&) = delete;
  DeltaGraph& operator=(const DeltaGraph&) = delete;

  vid_t n() const noexcept { return n_; }
  bool is_symmetric() const noexcept { return symmetric_; }

  // Latest committed epoch; the sealed base is oldest_epoch().
  epoch_t epoch() const;
  epoch_t oldest_epoch() const;

  // Stage an edge insertion at epoch()+1. Returns false (and stages nothing)
  // when the arc is already present in the staged state — duplicate arcs are
  // never stored. Self-loops are allowed. Endpoints must be < n(): the vertex
  // set is fixed at construction.
  bool add_edge(vid_t u, vid_t v, weight_t w = 1.0f);

  // Stage an edge removal at epoch()+1. Returns false when the arc is absent
  // from the staged state.
  bool remove_edge(vid_t u, vid_t v);

  // Number of staged (uncommitted) updates.
  std::size_t pending_updates() const;

  // Publish the staged updates as one batch, returning the new epoch. A
  // commit with nothing staged is a no-op returning the current epoch.
  epoch_t commit();

  // Point-in-time view at the latest committed epoch / at `e`. Aborts when
  // `e` predates the compaction floor or exceeds the committed epoch.
  SnapshotView snapshot() const;
  SnapshotView snapshot(epoch_t e) const;

  // Merge the committed overlay into a fresh sealed base at the current
  // committed epoch. Live SnapshotViews keep the old base alive; staged
  // (uncommitted) updates survive and re-anchor onto the new base. After
  // compaction, snapshots older than the compaction epoch can no longer be
  // taken. The heavy merge runs outside the lock (a writer may keep staging
  // concurrently); only the swap blocks readers.
  void compact();

  // Committed batches with epoch > `since`, oldest first. `since` at or
  // beyond epoch() yields an empty vector.
  std::vector<UpdateBatch> batches_since(epoch_t since) const;

  // How many commits landed after `since` — the serving layer's staleness
  // gauge: a query pinned to epoch e reports num_batches_since(e) as how far
  // behind the live graph its answer is. Cheaper than batches_since (no
  // update copies).
  std::size_t num_batches_since(epoch_t since) const;

  // Visible arc count at the latest committed epoch (symmetric graphs count
  // each edge twice, as Csr does).
  eid_t num_arcs() const;

  // Diagnostics: live overlay entries not yet folded into the base.
  std::size_t overlay_entries() const;

  // Attach a live tracer (nullptr detaches): commit() and compact() record
  // "storage" spans tagged with update and overlay-entry counts. DeltaGraph
  // is a concrete class, so unlike the templated kernels this hook is a
  // runtime pointer — the un-attached cost is one predictable branch per
  // commit/compact, nowhere near a hot path. The tracer must outlive the
  // attachment; calls follow the writer-thread discipline commit/compact
  // already require.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  static constexpr epoch_t kNever = std::numeric_limits<epoch_t>::max();

  // An arc the overlay inserted, alive in [born, died).
  struct OverlayArc {
    vid_t to;
    weight_t w;
    epoch_t born;
    epoch_t died;
  };

  // A base arc the overlay deleted, dead from `died` on.
  struct Tombstone {
    vid_t to;
    epoch_t died;
  };

  struct VertexOverlay {
    std::vector<OverlayArc> inserts;  // sorted by (to, born)
    std::vector<Tombstone> removals;  // sorted by to; at most one per target
  };

  struct Side {
    std::shared_ptr<const Csr> base;
    std::unordered_map<vid_t, VertexOverlay> delta;
  };

  // Is arc (u, v) of `side` visible at epoch e? (lock held)
  bool arc_visible(const Side& side, vid_t u, vid_t v, epoch_t e) const;
  // Stage arc (u, v) insertion/removal on one side at epoch e. (lock held)
  void stage_insert(Side& side, vid_t u, vid_t v, weight_t w, epoch_t e);
  void stage_remove(Side& side, vid_t u, vid_t v, epoch_t e);

  // Materialize one side at epoch e. (lock held)
  std::shared_ptr<const SnapshotCsr> materialize_side(const Side& side,
                                                      epoch_t e) const;
  SnapshotView snapshot_locked(epoch_t e) const;

  // Re-anchor one side's overlay onto a base sealed at epoch `at`. (lock held)
  void rebase_side(Side& side, std::shared_ptr<const Csr> new_base, epoch_t at);

  // Live overlay entries with the lock already held (commit/compact spans).
  std::size_t overlay_entries_locked() const;

  mutable std::mutex mu_;
  obs::Tracer* tracer_ = nullptr;
  vid_t n_ = 0;
  bool symmetric_ = true;
  epoch_t epoch_ = 0;         // latest committed
  epoch_t oldest_epoch_ = 0;  // the sealed base's epoch (compaction floor)
  Side out_;
  Side in_;  // symmetric: in_.base aliases out_.base and in_.delta stays empty
  std::vector<EdgeUpdate> pending_;
  std::vector<UpdateBatch> history_;
};

// Flattens committed batches into one update list (the shape the incremental
// kernels consume).
std::vector<EdgeUpdate> flatten(const std::vector<UpdateBatch>& batches);

}  // namespace pushpull
