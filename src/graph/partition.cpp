#include "graph/partition.hpp"

namespace pushpull {

std::vector<vid_t> border_vertices(const Csr& g, const Partition1D& part) {
  std::vector<vid_t> border;
  for (vid_t v = 0; v < g.n(); ++v) {
    for (vid_t u : g.neighbors(v)) {
      if (part.owner(u) != part.owner(v)) {
        border.push_back(v);
        break;
      }
    }
  }
  return border;
}

}  // namespace pushpull
