// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace pushpull {

// Vertex ids are 32-bit: the laptop-scale graphs in this reproduction stay
// well below 2^31 vertices, and compact ids matter for cache behaviour (the
// object of study). Edge ids are 64-bit so CSR offsets never overflow.
using vid_t = std::int32_t;
using eid_t = std::int64_t;

// Edge weights. The paper uses non-negative weights (§2.2).
using weight_t = float;

inline constexpr vid_t kInvalidVertex = -1;

// An edge in a loose edge list, the input to the CSR builder.
struct Edge {
  vid_t u = 0;
  vid_t v = 0;
  weight_t w = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

}  // namespace pushpull
