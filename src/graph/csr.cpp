#include "graph/csr.hpp"

#include <algorithm>

namespace pushpull {

bool Csr::has_edge(vid_t u, vid_t v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

vid_t Csr::max_degree() const noexcept {
  if (max_degree_cache_ < 0) {
    vid_t best = 0;
    for (vid_t v = 0; v < n(); ++v) best = std::max(best, degree(v));
    max_degree_cache_ = best;
  }
  return max_degree_cache_;
}

vid_t Csr::num_nonempty() const noexcept {
  if (num_nonempty_cache_ < 0) {
    vid_t count = 0;
    for (vid_t v = 0; v < n(); ++v) count += degree(v) > 0 ? 1 : 0;
    num_nonempty_cache_ = count;
  }
  return num_nonempty_cache_;
}

Csr transpose(const Csr& g) {
  const vid_t n = g.n();
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (eid_t e = 0; e < g.num_arcs(); ++e) {
    ++offsets[static_cast<std::size_t>(g.adj()[static_cast<std::size_t>(e)]) + 1];
  }
  for (vid_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<vid_t> adj(static_cast<std::size_t>(g.num_arcs()));
  std::vector<weight_t> weights;
  if (g.has_weights()) weights.resize(adj.size());
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const vid_t v = g.edge_target(e);
      const eid_t slot = cursor[v]++;
      adj[static_cast<std::size_t>(slot)] = u;
      if (!weights.empty()) weights[static_cast<std::size_t>(slot)] = g.edge_weight(e);
    }
  }
  // Slots were filled in increasing source order, so each in-list is sorted.
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

}  // namespace pushpull
