#include "graph/builder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pushpull {

namespace {

// Sorts edges by (u, v, w) and validates endpoint ranges.
void prepare(vid_t n, EdgeList& edges, const BuildOptions& opts) {
  for (const Edge& e : edges) {
    PP_CHECK(e.u >= 0 && e.u < n);
    PP_CHECK(e.v >= 0 && e.v < n);
  }
  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  }
  if (opts.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back(Edge{edges[i].v, edges[i].u, edges[i].w});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;  // duplicates keep the minimum weight
  });
  if (opts.dedup) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                edges.end());
  }
}

}  // namespace

Csr build_csr(vid_t n, EdgeList edges, const BuildOptions& opts) {
  PP_CHECK(n >= 0);
  prepare(n, edges, opts);

  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) ++offsets[static_cast<std::size_t>(e.u) + 1];
  for (vid_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<vid_t> adj(edges.size());
  std::vector<weight_t> weights;
  if (opts.keep_weights) weights.resize(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[i] = edges[i].v;
    if (opts.keep_weights) weights[i] = edges[i].w;
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

Digraph build_digraph(vid_t n, EdgeList edges, bool keep_weights) {
  BuildOptions opts;
  opts.keep_weights = keep_weights;
  return build_digraph(n, std::move(edges), opts);
}

Digraph build_digraph(vid_t n, EdgeList edges, BuildOptions opts,
                      const std::string& name) {
  opts.symmetrize = false;  // a symmetrized digraph is an undirected graph
  Digraph g = Digraph::from_out(build_csr(n, std::move(edges), opts));
  validate_digraph(g, name);
  return g;
}

namespace {

[[noreturn]] void digraph_fail(const std::string& name, const char* what) {
  std::fprintf(stderr, "validate_digraph(%s): %s\n", name.c_str(), what);
  PP_CHECK(false && "corrupt Digraph: in-CSR is not the transpose of out-CSR");
  std::abort();
}

}  // namespace

void validate_digraph(const Digraph& g, const std::string& name) {
  if (g.in.n() != g.out.n()) {
    digraph_fail(name, "vertex counts differ between out-CSR and in-CSR");
  }
  if (g.in.num_arcs() != g.out.num_arcs()) {
    digraph_fail(name, "arc counts differ between out-CSR and in-CSR");
  }
  if (g.in.has_weights() != g.out.has_weights()) {
    digraph_fail(name, "weight presence differs between out-CSR and in-CSR");
  }
  // Per-vertex in-degrees implied by the out-CSR must match the in-CSR...
  const vid_t n = g.out.n();
  std::vector<eid_t> in_deg(static_cast<std::size_t>(n), 0);
  for (eid_t e = 0; e < g.out.num_arcs(); ++e) {
    const vid_t v = g.out.edge_target(e);
    if (v < 0 || v >= n) {
      digraph_fail(name, "out-CSR adjacency holds a vertex id out of range");
    }
    ++in_deg[static_cast<std::size_t>(v)];
  }
  for (vid_t v = 0; v < n; ++v) {
    if (in_deg[static_cast<std::size_t>(v)] !=
        static_cast<eid_t>(g.in.degree(v))) {
      digraph_fail(name, "per-vertex in-degrees disagree with the out-CSR");
    }
  }
  // ...and the adjacency arrays must match the real transpose *as multisets
  // per row* — a membership probe would let duplicate arcs mask a spurious
  // in-arc, so compare against transpose(out) directly (O(m), and both
  // adjacency rows are sorted by construction).
  const Csr t = transpose(g.out);
  if (t.adj() != g.in.adj()) {
    digraph_fail(name, "in-CSR adjacency differs from transpose(out) "
                       "(not a transpose)");
  }
}

EdgeList with_uniform_weights(EdgeList edges, weight_t lo, weight_t hi,
                              std::uint64_t seed) {
  PP_CHECK(lo <= hi);
  Rng rng(seed);
  for (Edge& e : edges) e.w = rng.next_float(lo, hi);
  return edges;
}

std::vector<eid_t> build_source_range_cuts(
    const Csr& in_csr, std::span<const vid_t> block_starts) {
  const vid_t n = in_csr.n();
  const std::size_t nz = static_cast<std::size_t>(n);
  PP_CHECK(block_starts.size() >= 2);
  PP_CHECK(block_starts.front() == 0);
  PP_CHECK(block_starts.back() == n);
  const std::size_t k = block_starts.size() - 1;
  for (std::size_t b = 0; b + 1 < block_starts.size(); ++b) {
    PP_CHECK(block_starts[b] <= block_starts[b + 1]);
  }
  std::vector<eid_t> cuts((k + 1) * nz);
#pragma omp parallel for schedule(static)
  for (vid_t d = 0; d < n; ++d) {
    const eid_t end = in_csr.edge_end(d);
    eid_t e = in_csr.edge_begin(d);
    cuts[static_cast<std::size_t>(d)] = e;
    // One merged walk per row: rows are sorted ascending, so each boundary's
    // cut is found by advancing from the previous one.
    for (std::size_t b = 1; b < k; ++b) {
      const vid_t lim = block_starts[b];
      while (e < end && in_csr.edge_target(e) < lim) ++e;
      cuts[b * nz + static_cast<std::size_t>(d)] = e;
    }
    cuts[k * nz + static_cast<std::size_t>(d)] = end;
  }
  return cuts;
}

}  // namespace pushpull
