// Synthetic analogs of the paper's real-world graphs (Table 2).
//
// The original evaluation uses SNAP graphs: orkut (orc), pokec (pok),
// LiveJournal (ljn), amazon (am) and roadNet-CA (rca). This environment has
// no network access, so each graph is replaced by a seeded generator output
// from the same *structural class* at laptop scale (DESIGN.md §3):
//
//   name | paper (n, m, d̄, D)             | analog
//   -----+---------------------------------+---------------------------------
//   orc  | 3.07M, 117M, 39, 9   (social)   | R-MAT, skewed, d̄≈30, low D
//   pok  | 1.63M, 22.3M, 18.75, 11 (social)| R-MAT, skewed, d̄≈18, low D
//   ljn  | 3.99M, 34.6M, 8.67, 17 (social) | R-MAT, skewed, d̄≈9,  low D
//   am   | 262k, 900k, 3.43, 32 (purchase) | Barabási–Albert, d̄≈4, mid D
//   rca  | 1.96M, 2.76M, 1.4, 849 (road)   | thinned 2D grid, d̄≈2.8, huge D
//
// The push/pull performance differences the paper reports are driven by
// average degree, diameter and degree skew; the analogs span the same three
// regimes. `scale_num/scale_den` uniformly shrinks or grows the vertex counts
// so benchmarks can trade fidelity for runtime (the default targets tens of
// thousands of vertices — minutes of total bench time on a 2-core box).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace pushpull {

struct AnalogSpec {
  std::string name;     // paper's graph id with a '*' suffix, e.g. "orc*"
  std::string family;   // "social", "purchase", "road"
};

// Individual analogs. `scale` halves (negative) or doubles (positive) the
// vertex count per step relative to the default size; weighted variants draw
// uniform weights in [1, 64). `seed` = 0 keeps each analog's builtin seed
// (the published defaults stay bit-identical); any other value re-seeds the
// generator so benches can draw reproducible alternate instances (--seed).
Csr orc_analog(int scale = 0, bool weighted = false, std::uint64_t seed = 0);
Csr pok_analog(int scale = 0, bool weighted = false, std::uint64_t seed = 0);
Csr ljn_analog(int scale = 0, bool weighted = false, std::uint64_t seed = 0);
Csr am_analog(int scale = 0, bool weighted = false, std::uint64_t seed = 0);
Csr rca_analog(int scale = 0, bool weighted = false, std::uint64_t seed = 0);

// Returns the analog by paper name ("orc", "pok", "ljn", "am", "rca").
Csr analog_by_name(const std::string& name, int scale = 0, bool weighted = false,
                   std::uint64_t seed = 0);

// All five names in the paper's order.
const std::vector<std::string>& analog_names();

}  // namespace pushpull
