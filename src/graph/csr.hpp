// Compressed Sparse Row adjacency representation (§2.2).
//
// The neighbor arrays of all vertices form one contiguous array `adj`;
// `offsets` stores where each vertex's array begins — together n + 2m cells
// for an undirected graph, exactly the layout the paper analyzes. Adjacency
// lists are sorted, which the triangle-counting kernels exploit for O(log d̂)
// adjacency tests.
#pragma once

#include <concepts>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace pushpull {

// What a traversal loop needs from an adjacency structure: the read API of
// Csr, as a concept. Csr itself models it, and so does SnapshotCsr (a sealed
// base CSR patched by a versioned overlay, graph/delta_graph.hpp) — the
// engine's loop shapes and the core kernels are written against this concept,
// so a point-in-time snapshot of a mutating graph runs every kernel
// unmodified. Contract shared with Csr: per-vertex neighbor lists are sorted
// ascending, edge ids form one contiguous range [edge_begin(v), edge_end(v))
// per vertex, and edge_target/edge_weight accept any id from those ranges.
template <class G>
concept CsrLike = requires(const G& g, vid_t v, eid_t e) {
  { g.n() } -> std::convertible_to<vid_t>;
  { g.num_arcs() } -> std::convertible_to<eid_t>;
  { g.degree(v) } -> std::convertible_to<vid_t>;
  { g.neighbors(v) } -> std::convertible_to<std::span<const vid_t>>;
  { g.edge_begin(v) } -> std::convertible_to<eid_t>;
  { g.edge_end(v) } -> std::convertible_to<eid_t>;
  { g.edge_target(e) } -> std::convertible_to<vid_t>;
  { g.edge_weight(e) } -> std::convertible_to<weight_t>;
  { g.has_weights() } -> std::convertible_to<bool>;
};

class Csr {
 public:
  Csr() = default;

  Csr(std::vector<eid_t> offsets, std::vector<vid_t> adj,
      std::vector<weight_t> weights = {})
      : offsets_(std::move(offsets)), adj_(std::move(adj)), weights_(std::move(weights)) {
    PP_CHECK(!offsets_.empty());
    PP_CHECK(offsets_.front() == 0);
    PP_CHECK(offsets_.back() == static_cast<eid_t>(adj_.size()));
    PP_CHECK(weights_.empty() || weights_.size() == adj_.size());
  }

  // Number of vertices.
  vid_t n() const noexcept { return static_cast<vid_t>(offsets_.size()) - 1; }

  // Number of stored (directed) edges; an undirected graph built by the
  // default builder stores each edge twice, so m_undirected() = num_arcs()/2.
  eid_t num_arcs() const noexcept { return static_cast<eid_t>(adj_.size()); }
  eid_t m_undirected() const noexcept { return num_arcs() / 2; }

  vid_t degree(vid_t v) const noexcept {
    PP_DCHECK(v >= 0 && v < n());
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const vid_t> neighbors(vid_t v) const noexcept {
    PP_DCHECK(v >= 0 && v < n());
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  bool has_weights() const noexcept { return !weights_.empty(); }

  std::span<const weight_t> weights(vid_t v) const noexcept {
    PP_DCHECK(has_weights());
    PP_DCHECK(v >= 0 && v < n());
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  // Raw arrays for kernels that index edges directly.
  const std::vector<eid_t>& offsets() const noexcept { return offsets_; }
  const std::vector<vid_t>& adj() const noexcept { return adj_; }
  const std::vector<weight_t>& weight_array() const noexcept { return weights_; }

  eid_t edge_begin(vid_t v) const noexcept { return offsets_[v]; }
  eid_t edge_end(vid_t v) const noexcept { return offsets_[v + 1]; }
  vid_t edge_target(eid_t e) const noexcept { return adj_[static_cast<std::size_t>(e)]; }
  weight_t edge_weight(eid_t e) const noexcept {
    return weights_.empty() ? 1.0f : weights_[static_cast<std::size_t>(e)];
  }

  // O(log d(u)) adjacency test; requires sorted adjacency lists (the builder
  // guarantees this).
  bool has_edge(vid_t u, vid_t v) const noexcept;

  // Maximum degree d̂ (computed once, cached).
  vid_t max_degree() const noexcept;

  // Number of vertices with degree > 0 (computed once, cached). For an
  // out-CSR this counts the push *sources*, for an in-CSR the pull *sinks* —
  // the two inputs of the per-direction (α_out, β_in) refinement
  // (switch_defaults.hpp). Caching here hoists what used to be an O(n)
  // reduction out of every directed-BFS run (engine::per_direction_thresholds
  // consumes the cache through a requires-gated fast path).
  vid_t num_nonempty() const noexcept;

  // Average degree d̄ = num_arcs / n.
  double avg_degree() const noexcept {
    return n() == 0 ? 0.0 : static_cast<double>(num_arcs()) / n();
  }

 private:
  std::vector<eid_t> offsets_{0};
  std::vector<vid_t> adj_;
  std::vector<weight_t> weights_;
  mutable vid_t max_degree_cache_ = -1;
  mutable vid_t num_nonempty_cache_ = -1;
};

// Reverses all arcs: the in-CSR of a directed graph. For symmetric
// (undirected) graphs, transpose(g) has identical adjacency structure.
Csr transpose(const Csr& g);

// A directed graph: out-edges plus the transposed in-edges, as required by
// the directed push (out) / pull (in) distinction of §4.8.
struct Digraph {
  Csr out;
  Csr in;

  static Digraph from_out(Csr out_csr) {
    Digraph d;
    d.in = transpose(out_csr);
    d.out = std::move(out_csr);
    return d;
  }
};

}  // namespace pushpull
