// Seeded graph generators.
//
// The paper evaluates on (a) synthetic power-law Kronecker (R-MAT) graphs and
// Erdős–Rényi graphs with n ∈ {2^20..2^28}, d̄ ∈ {2^1..2^10}, and (b) SNAP
// real-world graphs spanning three sparsity regimes (§6, Table 2). This
// environment has no network access, so real graphs are replaced by seeded
// synthetic analogs from these generators (see analogs.hpp and DESIGN.md §3).
//
// All generators are deterministic given the seed.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull {

// --- Random families ------------------------------------------------------

// R-MAT / stochastic-Kronecker edges (Leskovec et al.): 2^scale vertices,
// edge_factor directed edges per vertex, recursive quadrant probabilities
// (a, b, c, d). Defaults are the Graph500 parameters.
EdgeList rmat_edges(int scale, int edge_factor, std::uint64_t seed,
                    double a = 0.57, double b = 0.19, double c = 0.19);

// Erdős–Rényi G(n, m): m distinct undirected edges drawn uniformly.
EdgeList erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed);

// Road-network-like graph: rows×cols 2D lattice where each lattice edge is
// kept with probability keep_prob. Low average degree (≤ 4·keep_prob), huge
// diameter — the `rca` regime.
EdgeList grid2d_edges(vid_t rows, vid_t cols, double keep_prob,
                      std::uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches to
// `attach` existing vertices chosen proportionally to degree. Produces the
// low-d̄, moderate-D regime of purchase networks (`am`).
EdgeList barabasi_albert_edges(vid_t n, int attach, std::uint64_t seed);

// Watts–Strogatz small world: ring lattice with k neighbors per side,
// each edge rewired with probability beta.
EdgeList watts_strogatz_edges(vid_t n, int k, double beta, std::uint64_t seed);

// --- Deterministic shapes (tests & examples) -------------------------------

EdgeList path_edges(vid_t n);
EdgeList cycle_edges(vid_t n);
EdgeList star_edges(vid_t n);              // vertex 0 is the hub
EdgeList complete_edges(vid_t n);
EdgeList complete_bipartite_edges(vid_t a, vid_t b);
EdgeList binary_tree_edges(int levels);    // 2^levels - 1 vertices

// --- Convenience: generator → weighted/unweighted undirected CSR -----------

Csr make_undirected(vid_t n, EdgeList edges);
Csr make_undirected_weighted(vid_t n, EdgeList edges, weight_t lo, weight_t hi,
                             std::uint64_t seed);

}  // namespace pushpull
