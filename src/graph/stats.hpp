// Graph statistics: the columns of the paper's Table 2 (n, m, d̄, D) plus
// structural checks used throughout the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull {

struct GraphStats {
  vid_t n = 0;
  eid_t m_undirected = 0;   // unique undirected edges
  double avg_degree = 0.0;  // d̄ = 2m/n for undirected graphs
  vid_t max_degree = 0;     // d̂
  vid_t pseudo_diameter = 0;  // lower bound on D via double BFS sweep
  vid_t components = 0;
};

GraphStats compute_stats(const Csr& g);

// True iff for every arc (u,v) the reverse arc (v,u) exists.
bool is_symmetric(const Csr& g);

// Number of connected components (undirected semantics).
vid_t count_components(const Csr& g);

// Component id per vertex, ids dense in [0, #components).
std::vector<vid_t> component_ids(const Csr& g);

// Double-sweep pseudo-diameter: BFS from `start`, then BFS from the farthest
// vertex found; returns the eccentricity of the second sweep. A standard
// lower bound that is tight on trees/grids and near-tight on small-world
// graphs — we report it as "D" in Table 2 just like most graph suites do.
vid_t pseudo_diameter(const Csr& g, vid_t start = 0);

// Histogram of degrees: hist[d] = #vertices with degree d.
std::vector<eid_t> degree_histogram(const Csr& g);

}  // namespace pushpull
