// Partition-Aware graph representation (§5, strategy PA).
//
// The adjacency array of each vertex v is split into a *local* part (neighbors
// owned by t[v]) and a *remote* part (neighbors owned by other threads). All
// local parts and all remote parts each form one contiguous array with their
// own offsets, growing the representation from n + 2m to 2n + 2m cells. The
// split lets push-based kernels update local neighbors with plain stores and
// reserve atomics for remote neighbors only (Algorithm 8).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace pushpull {

class PartitionAwareCsr {
 public:
  PartitionAwareCsr() = default;

  // Splits `g` according to `part`. The partition is stored by value; PA
  // kernels must use the same partition for thread-ownership decisions.
  PartitionAwareCsr(const Csr& g, const Partition1D& part);

  vid_t n() const noexcept { return static_cast<vid_t>(local_offsets_.size()) - 1; }
  const Partition1D& partition() const noexcept { return part_; }

  std::span<const vid_t> local_neighbors(vid_t v) const noexcept {
    return {local_adj_.data() + local_offsets_[v],
            static_cast<std::size_t>(local_offsets_[v + 1] - local_offsets_[v])};
  }

  std::span<const vid_t> remote_neighbors(vid_t v) const noexcept {
    return {remote_adj_.data() + remote_offsets_[v],
            static_cast<std::size_t>(remote_offsets_[v + 1] - remote_offsets_[v])};
  }

  vid_t degree(vid_t v) const noexcept {
    return static_cast<vid_t>(local_offsets_[v + 1] - local_offsets_[v] +
                              remote_offsets_[v + 1] - remote_offsets_[v]);
  }

  // Total representation cells: 2n + 2m (two offset arrays + split adjacency).
  std::size_t representation_cells() const noexcept {
    return local_offsets_.size() + remote_offsets_.size() + local_adj_.size() +
           remote_adj_.size();
  }

  eid_t num_local_arcs() const noexcept { return static_cast<eid_t>(local_adj_.size()); }
  eid_t num_remote_arcs() const noexcept { return static_cast<eid_t>(remote_adj_.size()); }

 private:
  Partition1D part_;
  std::vector<eid_t> local_offsets_{0};
  std::vector<vid_t> local_adj_;
  std::vector<eid_t> remote_offsets_{0};
  std::vector<vid_t> remote_adj_;
};

}  // namespace pushpull
