// Partition-Aware graph representations (§5, strategy PA).
//
// PartitionAwareCsr: the adjacency array of each vertex v is split into a
// *local* part (neighbors owned by t[v]) and a *remote* part (neighbors owned
// by other threads). All local parts and all remote parts each form one
// contiguous array with their own offsets, growing the representation from
// n + 2m to 2n + 2m cells. The split lets push-based kernels update local
// neighbors with plain stores and reserve atomics for remote neighbors only
// (Algorithm 8).
//
// NumaAwareCsr: the same split generalized to socket granularity
// (PartitionPolicy::NumaAware, DESIGN.md §2 "Locality-aware views"). The
// vertex space is 1D-partitioned over the machine's NUMA nodes, each node's
// adjacency segments live in first-touch storage written by a thread pinned
// to that node (so a first-touch NUMA policy places them on the owning
// socket's memory), and push kernels update node-local targets with plain
// stores while cross-node targets pay the sync policy (engine::
// dense_push_numa) — cross-*socket* arcs are attributed exactly the way PA
// attributes remote arcs. Pinning and placement are best-effort: without
// PUSHPULL_WITH_NUMA, or on a single-node machine, the structure (and any
// count invariants over it) is identical and placement is simply moot.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "util/numa.hpp"

namespace pushpull {

class PartitionAwareCsr {
 public:
  PartitionAwareCsr() = default;

  // Splits `g` according to `part`. The partition is stored by value; PA
  // kernels must use the same partition for thread-ownership decisions.
  PartitionAwareCsr(const Csr& g, const Partition1D& part);

  vid_t n() const noexcept { return static_cast<vid_t>(local_offsets_.size()) - 1; }
  const Partition1D& partition() const noexcept { return part_; }

  std::span<const vid_t> local_neighbors(vid_t v) const noexcept {
    return {local_adj_.data() + local_offsets_[v],
            static_cast<std::size_t>(local_offsets_[v + 1] - local_offsets_[v])};
  }

  std::span<const vid_t> remote_neighbors(vid_t v) const noexcept {
    return {remote_adj_.data() + remote_offsets_[v],
            static_cast<std::size_t>(remote_offsets_[v + 1] - remote_offsets_[v])};
  }

  vid_t degree(vid_t v) const noexcept {
    return static_cast<vid_t>(local_offsets_[v + 1] - local_offsets_[v] +
                              remote_offsets_[v + 1] - remote_offsets_[v]);
  }

  // Total representation cells: 2n + 2m (two offset arrays + split adjacency).
  std::size_t representation_cells() const noexcept {
    return local_offsets_.size() + remote_offsets_.size() + local_adj_.size() +
           remote_adj_.size();
  }

  eid_t num_local_arcs() const noexcept { return static_cast<eid_t>(local_adj_.size()); }
  eid_t num_remote_arcs() const noexcept { return static_cast<eid_t>(remote_adj_.size()); }

 private:
  Partition1D part_;
  std::vector<eid_t> local_offsets_{0};
  std::vector<vid_t> local_adj_;
  std::vector<eid_t> remote_offsets_{0};
  std::vector<vid_t> remote_adj_;
};

class NumaAwareCsr {
 public:
  NumaAwareCsr() = default;

  // Splits `g` over `nodes` NUMA domains; nodes <= 0 means the detected
  // topology's node count (util/numa.hpp). Tests pass an explicit count to
  // exercise multi-node structure on single-node machines.
  explicit NumaAwareCsr(const Csr& g, int nodes = 0);

  vid_t n() const noexcept { return n_; }
  int nodes() const noexcept { return part_.parts(); }
  const Partition1D& partition() const noexcept { return part_; }

  // Neighbors of v owned by v's own NUMA node.
  std::span<const vid_t> local_neighbors(vid_t v) const noexcept {
    const std::size_t i = static_cast<std::size_t>(v);
    return {local_adj_.data() + local_offsets_[i],
            static_cast<std::size_t>(local_offsets_[i + 1] - local_offsets_[i])};
  }

  // Neighbors of v owned by other NUMA nodes (the synced half).
  std::span<const vid_t> cross_neighbors(vid_t v) const noexcept {
    const std::size_t i = static_cast<std::size_t>(v);
    return {cross_adj_.data() + cross_offsets_[i],
            static_cast<std::size_t>(cross_offsets_[i + 1] - cross_offsets_[i])};
  }

  vid_t degree(vid_t v) const noexcept {
    const std::size_t i = static_cast<std::size_t>(v);
    return static_cast<vid_t>(local_offsets_[i + 1] - local_offsets_[i] +
                              cross_offsets_[i + 1] - cross_offsets_[i]);
  }

  eid_t num_local_arcs() const noexcept {
    return n_ > 0 ? local_offsets_[static_cast<std::size_t>(n_)] : 0;
  }
  eid_t num_cross_arcs() const noexcept {
    return n_ > 0 ? cross_offsets_[static_cast<std::size_t>(n_)] : 0;
  }

  // 2n + 2m cells, like PA — the split is the same, only the granularity and
  // the storage placement change.
  std::size_t representation_cells() const noexcept {
    return local_offsets_.size() + cross_offsets_.size() + local_adj_.size() +
           cross_adj_.size();
  }

 private:
  vid_t n_ = 0;
  Partition1D part_;
  // Offsets are shared read-mostly metadata (plain vectors); the adjacency
  // segments are the bulk and live in first-touch storage, each node's slice
  // written by its own pinned thread during construction.
  std::vector<eid_t> local_offsets_;
  std::vector<eid_t> cross_offsets_;
  numa::FirstTouchArray<vid_t> local_adj_;
  numa::FirstTouchArray<vid_t> cross_adj_;
};

}  // namespace pushpull
