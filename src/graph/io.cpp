#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "util/check.hpp"

namespace pushpull {

namespace {

// Legacy header (format v1): magic followed directly by the payload. Files in
// this format are still readable (see read_csr_binary) but no longer written.
constexpr std::uint64_t kMagicLegacy = 0x70757368'70756c6cULL;  // "pushpull"

// Current header: a distinct magic plus an explicit version word, so stale,
// truncated or foreign files fail with a diagnostic instead of being
// reinterpreted silently.
constexpr std::uint64_t kMagic = 0x70757368'70756c32ULL;  // "pushpul2"
constexpr std::uint32_t kVersion = 2;

// Digraph container (format v2): the same header discipline, then the out-CSR
// and in-CSR payloads back to back.
constexpr std::uint64_t kMagicDigraph = 0x70757368'70646732ULL;  // "pushpdg2"

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  std::fprintf(stderr, "read_csr_binary(%s): %s\n", path.c_str(), what);
  PP_CHECK(false && "corrupt or incompatible CSR binary");
  std::abort();
}

// One CSR payload: n, arcs, weighted byte, then the three arrays.
void write_csr_payload(std::ofstream& out, const Csr& g) {
  auto put = [&out](const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::int64_t n = g.n();
  const std::int64_t arcs = g.num_arcs();
  const std::uint8_t weighted = g.has_weights() ? 1 : 0;
  put(&n, sizeof n);
  put(&arcs, sizeof arcs);
  put(&weighted, sizeof weighted);
  put(g.offsets().data(), g.offsets().size() * sizeof(eid_t));
  put(g.adj().data(), g.adj().size() * sizeof(vid_t));
  if (weighted) put(g.weight_array().data(), g.weight_array().size() * sizeof(weight_t));
}

// Reads and structurally validates one CSR payload (trailing-byte checking is
// the caller's — a digraph file holds two payloads).
Csr read_csr_payload(std::ifstream& in, const std::string& path) {
  auto get = [&in, &path](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (!in.good()) io_fail(path, "truncated file (payload shorter than header promises)");
  };
  std::int64_t n = 0, arcs = 0;
  std::uint8_t weighted = 0;
  get(&n, sizeof n);
  get(&arcs, sizeof arcs);
  get(&weighted, sizeof weighted);
  if (n < 0 || arcs < 0 || weighted > 1) io_fail(path, "corrupt header fields");
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1);
  std::vector<vid_t> adj(static_cast<std::size_t>(arcs));
  get(offsets.data(), offsets.size() * sizeof(eid_t));
  get(adj.data(), adj.size() * sizeof(vid_t));
  std::vector<weight_t> weights;
  if (weighted) {
    weights.resize(static_cast<std::size_t>(arcs));
    get(weights.data(), weights.size() * sizeof(weight_t));
  }
  // Structural validation before handing the arrays to Csr (whose own checks
  // would abort without naming the file).
  if (offsets.front() != 0 || offsets.back() != arcs) {
    io_fail(path, "corrupt offsets (do not span the adjacency array)");
  }
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    if (offsets[v] > offsets[v + 1]) io_fail(path, "corrupt offsets (not monotone)");
  }
  for (vid_t u : adj) {
    if (u < 0 || u >= n) io_fail(path, "corrupt adjacency (vertex id out of range)");
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

}  // namespace

EdgeList read_edge_list(const std::string& path, vid_t* n) {
  std::ifstream in(path);
  PP_CHECK(in.good());
  EdgeList edges;
  vid_t max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) continue;
    ls >> w;  // optional weight
    PP_CHECK(u >= 0 && v >= 0);
    edges.push_back(Edge{static_cast<vid_t>(u), static_cast<vid_t>(v),
                         static_cast<weight_t>(w)});
    max_id = std::max({max_id, static_cast<vid_t>(u), static_cast<vid_t>(v)});
  }
  if (n != nullptr) *n = max_id + 1;
  return edges;
}

void write_edge_list(const std::string& path, const Csr& g) {
  std::ofstream out(path);
  PP_CHECK(out.good());
  out.precision(9);  // float max_digits10: exact text round-trip
  out << "# pushpull edge list: n=" << g.n() << " arcs=" << g.num_arcs() << "\n";
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      out << v << ' ' << nb[i];
      if (g.has_weights()) out << ' ' << g.weights(v)[i];
      out << '\n';
    }
  }
  PP_CHECK(out.good());
}

void write_csr_binary(const std::string& path, const Csr& g) {
  std::ofstream out(path, std::ios::binary);
  PP_CHECK(out.good());
  const std::uint64_t magic = kMagic;
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  write_csr_payload(out, g);
  PP_CHECK(out.good());
}

Csr read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PP_CHECK(in.good());
  auto get = [&in, &path](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (!in.good()) io_fail(path, "truncated file (payload shorter than header promises)");
  };
  std::uint64_t magic = 0;
  get(&magic, sizeof magic);
  if (magic == kMagic) {
    std::uint32_t version = 0;
    get(&version, sizeof version);
    if (version != kVersion) {
      io_fail(path, "unsupported format version (file written by a newer build?)");
    }
  } else if (magic != kMagicLegacy) {
    // Legacy v1 files (magic only, no version word) stay readable.
    io_fail(path, "bad magic: not a pushpull CSR binary");
  }
  Csr g = read_csr_payload(in, path);
  // The payload must end exactly here — trailing bytes mean a stale or
  // mismatched file.
  in.peek();
  if (!in.eof()) io_fail(path, "trailing bytes after payload");
  return g;
}

void write_digraph_binary(const std::string& path, const Digraph& g) {
  std::ofstream out(path, std::ios::binary);
  PP_CHECK(out.good());
  const std::uint64_t magic = kMagicDigraph;
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  write_csr_payload(out, g.out);
  write_csr_payload(out, g.in);
  PP_CHECK(out.good());
}

Digraph read_digraph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PP_CHECK(in.good());
  auto get = [&in, &path](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (!in.good()) io_fail(path, "truncated file (payload shorter than header promises)");
  };
  std::uint64_t magic = 0;
  get(&magic, sizeof magic);
  if (magic != kMagicDigraph) {
    if (magic == kMagic || magic == kMagicLegacy) {
      io_fail(path, "this is a symmetric CSR binary, not a digraph binary");
    }
    io_fail(path, "bad magic: not a pushpull digraph binary");
  }
  std::uint32_t version = 0;
  get(&version, sizeof version);
  if (version != kVersion) {
    io_fail(path, "unsupported format version (file written by a newer build?)");
  }
  Digraph g;
  g.out = read_csr_payload(in, path);
  g.in = read_csr_payload(in, path);
  in.peek();
  if (!in.eof()) io_fail(path, "trailing bytes after payload");
  // Cross-validate the stored pair: the in-CSR must be exactly the transpose
  // of the out-CSR, or every pull-mode kernel would silently scan wrong arcs.
  validate_digraph(g, path);
  return g;
}

}  // namespace pushpull
