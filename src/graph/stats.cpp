#include "graph/stats.hpp"

#include <algorithm>
#include <queue>

namespace pushpull {

namespace {

// Sequential BFS returning (distances, farthest vertex, eccentricity).
struct SweepResult {
  std::vector<vid_t> dist;
  vid_t farthest = kInvalidVertex;
  vid_t ecc = 0;
};

SweepResult bfs_sweep(const Csr& g, vid_t start) {
  SweepResult r;
  r.dist.assign(static_cast<std::size_t>(g.n()), kInvalidVertex);
  if (g.n() == 0) return r;
  std::queue<vid_t> q;
  r.dist[static_cast<std::size_t>(start)] = 0;
  q.push(start);
  r.farthest = start;
  while (!q.empty()) {
    const vid_t v = q.front();
    q.pop();
    const vid_t dv = r.dist[static_cast<std::size_t>(v)];
    if (dv > r.ecc) {
      r.ecc = dv;
      r.farthest = v;
    }
    for (vid_t u : g.neighbors(v)) {
      if (r.dist[static_cast<std::size_t>(u)] == kInvalidVertex) {
        r.dist[static_cast<std::size_t>(u)] = dv + 1;
        q.push(u);
      }
    }
  }
  return r;
}

}  // namespace

bool is_symmetric(const Csr& g) {
  for (vid_t v = 0; v < g.n(); ++v) {
    for (vid_t u : g.neighbors(v)) {
      if (!g.has_edge(u, v)) return false;
    }
  }
  return true;
}

std::vector<vid_t> component_ids(const Csr& g) {
  std::vector<vid_t> comp(static_cast<std::size_t>(g.n()), kInvalidVertex);
  vid_t next = 0;
  std::vector<vid_t> stack;
  for (vid_t s = 0; s < g.n(); ++s) {
    if (comp[static_cast<std::size_t>(s)] != kInvalidVertex) continue;
    comp[static_cast<std::size_t>(s)] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const vid_t v = stack.back();
      stack.pop_back();
      for (vid_t u : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(u)] == kInvalidVertex) {
          comp[static_cast<std::size_t>(u)] = next;
          stack.push_back(u);
        }
      }
    }
    ++next;
  }
  return comp;
}

vid_t count_components(const Csr& g) {
  const auto ids = component_ids(g);
  return ids.empty() ? 0 : *std::max_element(ids.begin(), ids.end()) + 1;
}

vid_t pseudo_diameter(const Csr& g, vid_t start) {
  if (g.n() == 0) return 0;
  const SweepResult first = bfs_sweep(g, start);
  const SweepResult second = bfs_sweep(g, first.farthest);
  return second.ecc;
}

std::vector<eid_t> degree_histogram(const Csr& g) {
  std::vector<eid_t> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (vid_t v = 0; v < g.n(); ++v) ++hist[static_cast<std::size_t>(g.degree(v))];
  return hist;
}

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.n = g.n();
  s.m_undirected = g.m_undirected();
  s.avg_degree = g.avg_degree();
  s.max_degree = g.max_degree();
  s.pseudo_diameter = pseudo_diameter(g);
  s.components = count_components(g);
  return s;
}

}  // namespace pushpull
