// Graph algorithms in algebraic (matrix-vector) form (§7.1), each runnable
// with the pull/CSR or push/CSC kernel so the dichotomy carries over to the
// linear-algebra abstraction.
#pragma once

#include <vector>

#include "core/direction.hpp"
#include "graph/csr.hpp"

namespace pushpull::la {

// PageRank as L steps of (+,×) SpMV: x ← base + f·A·(x ⊘ d).
std::vector<double> pagerank_la(const Csr& g, int iterations, double damping,
                                Direction dir);

// BFS as (∨,∧) frontier advances; push uses SpMSpV over the sparse frontier,
// pull uses dense SpMV rows. Returns hop distances (-1 = unreachable).
std::vector<vid_t> bfs_la(const Csr& g, vid_t root, Direction dir);

// SSSP as (min,+) Bellman-Ford rounds to fixpoint. Requires weights.
std::vector<weight_t> sssp_la(const Csr& g, vid_t root, Direction dir);

}  // namespace pushpull::la
