// Semirings for the algebraic formulation of graph algorithms (§7.1).
//
// A semiring supplies (⊕, ⊗, 0̄, 1̄); graph kernels become y = A ⊗ x
// matrix-vector products over the right semiring:
//   PageRank      — (+, ×) over double
//   SSSP          — (min, +) over float (tropical semiring)
//   BFS frontier  — (∨, ∧) over bool
#pragma once

#include <algorithm>
#include <limits>

namespace pushpull::la {

template <class T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T one() { return T{1}; }
  static constexpr T add(T a, T b) { return a + b; }
  static constexpr T mul(T a, T b) { return a * b; }
};

template <class T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return T{0}; }
  static constexpr T add(T a, T b) { return std::min(a, b); }
  static constexpr T mul(T a, T b) { return a + b; }
};

struct BoolOrAnd {
  using value_type = bool;
  static constexpr bool zero() { return false; }
  static constexpr bool one() { return true; }
  static constexpr bool add(bool a, bool b) { return a || b; }
  static constexpr bool mul(bool a, bool b) { return a && b; }
};

}  // namespace pushpull::la
