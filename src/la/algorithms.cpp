#include "la/algorithms.hpp"

#include <algorithm>

#include "la/semiring.hpp"
#include "la/spmv.hpp"
#include "util/check.hpp"

namespace pushpull::la {

std::vector<double> pagerank_la(const Csr& g, int iterations, double damping,
                                Direction dir) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> scaled(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int l = 0; l < iterations; ++l) {
    double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      const vid_t d = g.degree(v);
      scaled[static_cast<std::size_t>(v)] =
          d > 0 ? x[static_cast<std::size_t>(v)] / d : 0.0;
      if (d == 0) dangling += x[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    if (dir == Direction::Pull) {
      spmv_pull<PlusTimes<double>>(g, scaled, y);
    } else {
      std::fill(y.begin(), y.end(), 0.0);
      spmv_push<PlusTimes<double>>(g, scaled, y);
    }
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      x[static_cast<std::size_t>(v)] = base + damping * y[static_cast<std::size_t>(v)];
    }
  }
  return x;
}

std::vector<vid_t> bfs_la(const Csr& g, vid_t root, Direction dir) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  std::vector<vid_t> dist(static_cast<std::size_t>(n), -1);
  dist[static_cast<std::size_t>(root)] = 0;

  if (dir == Direction::Push) {
    // SpMSpV over the sparse frontier (CSC/push exploits frontier sparsity).
    SparseVec<bool> frontier;
    frontier.idx = {root};
    frontier.val = {true};
    std::vector<std::uint8_t> hit_storage(static_cast<std::size_t>(n), 0);
    std::vector<vid_t> touched;
    vid_t level = 0;
    while (frontier.nnz() > 0) {
      ++level;
      // bool vectors are bit-packed; use the byte array as the output.
      std::fill(hit_storage.begin(), hit_storage.end(), std::uint8_t{0});
      touched.clear();
#pragma omp parallel
      {
        std::vector<vid_t> local;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::size_t k = 0; k < frontier.nnz(); ++k) {
          const vid_t j = frontier.idx[k];
          for (vid_t i : g.neighbors(j)) {
            hit_storage[static_cast<std::size_t>(i)] = 1;  // (∨) accumulate
            local.push_back(i);
          }
        }
#pragma omp critical(pushpull_la_bfs_touched)
        touched.insert(touched.end(), local.begin(), local.end());
      }
      frontier.idx.clear();
      frontier.val.clear();
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
      for (vid_t i : touched) {
        if (hit_storage[static_cast<std::size_t>(i)] &&
            dist[static_cast<std::size_t>(i)] == -1) {
          dist[static_cast<std::size_t>(i)] = level;
          frontier.idx.push_back(i);
          frontier.val.push_back(true);
        }
      }
    }
  } else {
    // Dense (∨,∧) SpMV per level: pull cannot exploit frontier sparsity.
    std::vector<std::uint8_t> in_frontier(static_cast<std::size_t>(n), 0);
    in_frontier[static_cast<std::size_t>(root)] = 1;
    vid_t level = 0;
    bool any = true;
    while (any) {
      ++level;
      any = false;
#pragma omp parallel for schedule(dynamic, 256) reduction(|| : any)
      for (vid_t i = 0; i < n; ++i) {
        if (dist[static_cast<std::size_t>(i)] != -1) continue;
        bool reach = false;  // row reduction over in-neighbors
        for (vid_t j : g.neighbors(i)) {
          if (in_frontier[static_cast<std::size_t>(j)]) {
            reach = true;
            break;
          }
        }
        if (reach) {
          dist[static_cast<std::size_t>(i)] = level;
          any = true;
        }
      }
      if (!any) break;
#pragma omp parallel for schedule(static)
      for (vid_t i = 0; i < n; ++i) {
        in_frontier[static_cast<std::size_t>(i)] =
            dist[static_cast<std::size_t>(i)] == level ? 1 : 0;
      }
    }
  }
  return dist;
}

std::vector<weight_t> sssp_la(const Csr& g, vid_t root, Direction dir) {
  const vid_t n = g.n();
  PP_CHECK(g.has_weights());
  PP_CHECK(root >= 0 && root < n);
  using S = MinPlus<weight_t>;
  std::vector<weight_t> x(static_cast<std::size_t>(n), S::zero());
  std::vector<weight_t> y(static_cast<std::size_t>(n));
  x[static_cast<std::size_t>(root)] = 0;
  for (vid_t round = 0; round < n; ++round) {
    if (dir == Direction::Pull) {
      spmv_pull<S>(g, x, y, /*use_weights=*/true);
    } else {
      std::fill(y.begin(), y.end(), S::zero());
      spmv_push<S>(g, x, y, /*use_weights=*/true);
    }
    bool changed = false;
#pragma omp parallel for schedule(static) reduction(|| : changed)
    for (vid_t v = 0; v < n; ++v) {
      const weight_t relaxed =
          S::add(x[static_cast<std::size_t>(v)], y[static_cast<std::size_t>(v)]);
      if (relaxed < x[static_cast<std::size_t>(v)]) {
        x[static_cast<std::size_t>(v)] = relaxed;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return x;
}

}  // namespace pushpull::la
