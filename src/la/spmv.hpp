// Sparse matrix-vector products over semirings (§7.1) — thin adapters over
// engine/edge_map.
//
// The adjacency matrix A has A(i,j) = w(j→i). The paper's observation:
//
//   CSR layout (rows = in-edges)  → each output y[i] is reduced by one
//     thread over row i — this is PULLING (engine::dense_pull, PlainCtx,
//     no write conflicts),
//   CSC layout (cols = out-edges) → each thread scatters x[j] down column j
//     into many y[i] — this is PUSHING (engine::dense_push, AtomicCtx's
//     generic ⊕ CAS loop),
//   SpMSpV — when x is sparse (a BFS frontier), CSC/push skips all columns
//     with x[j] = 0̄ (engine::sparse_push over the nonzero column ids), while
//     CSR/pull cannot exploit the sparsity.
//
// For an undirected graph the CSR and CSC of A share one Csr object; for
// digraphs pass g.in (pull) / g.out (push).
#pragma once

#include <span>
#include <vector>

#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull::la {

// Generic atomic ⊕-accumulate via a CAS loop; S::value_type must be a
// trivially copyable 4- or 8-byte type (all semirings above qualify).
template <class S>
void atomic_accumulate(typename S::value_type& target,
                       typename S::value_type value) {
  using T = typename S::value_type;
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  for (;;) {
    const T combined = S::add(cur, value);
    if (combined == cur) return;  // no change, skip the write
    if (ref.compare_exchange_weak(cur, combined, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      return;
    }
  }
}

namespace detail {

template <class S>
struct SpmvRow {
  using T = typename S::value_type;
  const Csr* a;
  const T* x;
  T* y;
  bool use_weights;

  // Zero the output element in the same pass (row i is visited exactly once).
  template <class Ctx>
  void begin_dest(Ctx&, vid_t i) const {
    y[i] = S::zero();
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t j, vid_t i, eid_t e) const {
    const T aij = use_weights ? static_cast<T>(a->edge_weight(e)) : S::one();
    // Row reduction in edge order: same fold the scalar loop performed.
    ctx.accumulate(y[i], S::mul(aij, x[j]),
                   [](T acc, T v) { return S::add(acc, v); });
    return false;
  }
};

template <class S>
struct SpmvCol {
  using T = typename S::value_type;
  const Csr* a;
  const T* x;
  T* y;
  bool use_weights;

  bool source(vid_t j) const { return !(x[j] == S::zero()); }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t j, vid_t i, eid_t e) const {
    const T aij = use_weights ? static_cast<T>(a->edge_weight(e)) : S::one();
    ctx.accumulate(y[i], S::mul(aij, x[j]),
                   [](T acc, T v) { return S::add(acc, v); });
    return false;
  }
};

template <class S>
struct SpmspvCol {
  using T = typename S::value_type;
  const Csr* a;
  const T* xval;  // values parallel to the sparse index list
  T* y;
  bool use_weights;

  bool source(vid_t, std::size_t k) const { return !(xval[k] == S::zero()); }

  template <class Ctx>
  T source_data(Ctx&, vid_t, std::size_t k) const {
    return xval[k];
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t i, eid_t e, T xj) const {
    const T aij = use_weights ? static_cast<T>(a->edge_weight(e)) : S::one();
    ctx.accumulate(y[i], S::mul(aij, xj),
                   [](T acc, T v) { return S::add(acc, v); });
    return true;  // record i in the touched list
  }
};

}  // namespace detail

// y = A ⊗ x, pull/CSR: one reduction per output element, no conflicts.
// `use_weights`=false treats every stored edge as 1̄.
template <class S>
void spmv_pull(const Csr& in_csr, std::span<const typename S::value_type> x,
               std::span<typename S::value_type> y, bool use_weights = false) {
  const vid_t n = in_csr.n();
  PP_CHECK(x.size() == static_cast<std::size_t>(n));
  PP_CHECK(y.size() == static_cast<std::size_t>(n));
  PP_CHECK(!use_weights || in_csr.has_weights());
  engine::Workspace ws(n);  // O(threads): the dedup bitmap is lazy
  engine::EdgeMapOptions opt;
  opt.track_output = false;
  engine::dense_pull(in_csr, ws,
                     detail::SpmvRow<S>{&in_csr, x.data(), y.data(), use_weights},
                     opt);
}

// y = A ⊗ x, push/CSC: scatter down columns with atomic accumulation.
// Callers must pre-fill y with S::zero().
template <class S>
void spmv_push(const Csr& out_csr, std::span<const typename S::value_type> x,
               std::span<typename S::value_type> y, bool use_weights = false) {
  const vid_t n = out_csr.n();
  PP_CHECK(x.size() == static_cast<std::size_t>(n));
  PP_CHECK(y.size() == static_cast<std::size_t>(n));
  PP_CHECK(!use_weights || out_csr.has_weights());
  engine::Workspace ws(n);
  engine::EdgeMapOptions opt;
  opt.track_output = false;
  engine::dense_push(
      out_csr, ws, /*sources=*/nullptr,
      detail::SpmvCol<S>{&out_csr, x.data(), y.data(), use_weights}, opt);
}

// Sparse vector: indices with non-0̄ values.
template <class T>
struct SparseVec {
  std::vector<vid_t> idx;
  std::vector<T> val;

  std::size_t nnz() const noexcept { return idx.size(); }
};

// y = A ⊗ x for sparse x, push/CSC over the nonzero columns only.
// Touched output indices are appended to `touched` (may contain duplicates).
template <class S>
void spmspv_push(const Csr& out_csr,
                 const SparseVec<typename S::value_type>& x,
                 std::span<typename S::value_type> y,
                 std::vector<vid_t>& touched, bool use_weights = false) {
  PP_CHECK(y.size() == static_cast<std::size_t>(out_csr.n()));
  PP_CHECK(x.idx.size() == x.val.size());
  engine::Workspace ws(out_csr.n());
  engine::VertexSet out = engine::sparse_push(
      out_csr, ws, std::span<const vid_t>(x.idx),
      detail::SpmspvCol<S>{&out_csr, x.val.data(), y.data(), use_weights});
  touched = std::move(out.mutable_ids());
}

}  // namespace pushpull::la
