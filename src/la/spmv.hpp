// Sparse matrix-vector products over semirings (§7.1).
//
// The adjacency matrix A has A(i,j) = w(j→i). The paper's observation:
//
//   CSR layout (rows = in-edges)  → each output y[i] is reduced by one
//     thread over row i — this is PULLING (no write conflicts),
//   CSC layout (cols = out-edges) → each thread scatters x[j] down column j
//     into many y[i] — this is PUSHING (atomics / merge trees needed),
//   SpMSpV — when x is sparse (a BFS frontier), CSC/push skips all columns
//     with x[j] = 0̄, while CSR/pull cannot exploit the sparsity.
//
// For an undirected graph the CSR and CSC of A share one Csr object; for
// digraphs pass g.in (pull) / g.out (push).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull::la {

// Generic atomic ⊕-accumulate via a CAS loop; S::value_type must be a
// trivially copyable 4- or 8-byte type (all semirings above qualify).
template <class S>
void atomic_accumulate(typename S::value_type& target,
                       typename S::value_type value) {
  using T = typename S::value_type;
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  for (;;) {
    const T combined = S::add(cur, value);
    if (combined == cur) return;  // no change, skip the write
    if (ref.compare_exchange_weak(cur, combined, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      return;
    }
  }
}

// y = A ⊗ x, pull/CSR: one reduction per output element, no conflicts.
// `use_weights`=false treats every stored edge as 1̄.
template <class S>
void spmv_pull(const Csr& in_csr, std::span<const typename S::value_type> x,
               std::span<typename S::value_type> y, bool use_weights = false) {
  using T = typename S::value_type;
  const vid_t n = in_csr.n();
  PP_CHECK(x.size() == static_cast<std::size_t>(n));
  PP_CHECK(y.size() == static_cast<std::size_t>(n));
  PP_CHECK(!use_weights || in_csr.has_weights());
#pragma omp parallel for schedule(dynamic, 256)
  for (vid_t i = 0; i < n; ++i) {
    T acc = S::zero();
    for (eid_t e = in_csr.edge_begin(i); e < in_csr.edge_end(i); ++e) {
      const vid_t j = in_csr.edge_target(e);
      const T a = use_weights ? static_cast<T>(in_csr.edge_weight(e)) : S::one();
      acc = S::add(acc, S::mul(a, x[static_cast<std::size_t>(j)]));
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

// y = A ⊗ x, push/CSC: scatter down columns with atomic accumulation.
// Callers must pre-fill y with S::zero().
template <class S>
void spmv_push(const Csr& out_csr, std::span<const typename S::value_type> x,
               std::span<typename S::value_type> y, bool use_weights = false) {
  using T = typename S::value_type;
  const vid_t n = out_csr.n();
  PP_CHECK(x.size() == static_cast<std::size_t>(n));
  PP_CHECK(y.size() == static_cast<std::size_t>(n));
  PP_CHECK(!use_weights || out_csr.has_weights());
#pragma omp parallel for schedule(dynamic, 256)
  for (vid_t j = 0; j < n; ++j) {
    const T xj = x[static_cast<std::size_t>(j)];
    if (xj == S::zero()) continue;  // the push advantage: skip empty columns
    for (eid_t e = out_csr.edge_begin(j); e < out_csr.edge_end(j); ++e) {
      const vid_t i = out_csr.edge_target(e);
      const T a = use_weights ? static_cast<T>(out_csr.edge_weight(e)) : S::one();
      atomic_accumulate<S>(y[static_cast<std::size_t>(i)], S::mul(a, xj));
    }
  }
}

// Sparse vector: indices with non-0̄ values.
template <class T>
struct SparseVec {
  std::vector<vid_t> idx;
  std::vector<T> val;

  std::size_t nnz() const noexcept { return idx.size(); }
};

// y = A ⊗ x for sparse x, push/CSC over the nonzero columns only.
// Touched output indices are appended to `touched` (may contain duplicates).
template <class S>
void spmspv_push(const Csr& out_csr,
                 const SparseVec<typename S::value_type>& x,
                 std::span<typename S::value_type> y,
                 std::vector<vid_t>& touched, bool use_weights = false) {
  using T = typename S::value_type;
  PP_CHECK(y.size() == static_cast<std::size_t>(out_csr.n()));
  touched.clear();
#pragma omp parallel
  {
    std::vector<vid_t> local;
#pragma omp for schedule(dynamic, 64) nowait
    for (std::size_t k = 0; k < x.nnz(); ++k) {
      const vid_t j = x.idx[k];
      const T xj = x.val[k];
      if (xj == S::zero()) continue;
      for (eid_t e = out_csr.edge_begin(j); e < out_csr.edge_end(j); ++e) {
        const vid_t i = out_csr.edge_target(e);
        const T a = use_weights ? static_cast<T>(out_csr.edge_weight(e)) : S::one();
        atomic_accumulate<S>(y[static_cast<std::size_t>(i)], S::mul(a, xj));
        local.push_back(i);
      }
    }
#pragma omp critical(pushpull_la_spmspv_touched)
    touched.insert(touched.end(), local.begin(), local.end());
  }
}

}  // namespace pushpull::la
