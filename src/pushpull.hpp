// Umbrella header: the complete public API of libpushpull.
//
// Include this for everything, or pick the per-module headers below for
// faster compiles.
#pragma once

// Graph substrate.
#include "graph/analogs.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/delta_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/partition_aware.hpp"
#include "graph/stats.hpp"
#include "graph/types.hpp"

// Synchronization + instrumentation.
#include "perf/cache_sim.hpp"
#include "perf/counters.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"

// The direction-aware traversal engine (edge_map / vertex_map substrate).
#include "engine/context.hpp"
#include "engine/edge_map.hpp"
#include "engine/policy.hpp"
#include "engine/vertex_set.hpp"

// Core push/pull algorithms. (core/baselines/legacy_kernels.hpp — the frozen
// pre-engine loops — is deliberately NOT part of the public API; only the
// differential tests include it.)
#include "core/baselines/baselines.hpp"
#include "core/baselines/union_find.hpp"
#include "core/bc.hpp"
#include "core/bfs.hpp"
#include "core/coloring.hpp"
#include "core/connected_components.hpp"
#include "core/directed.hpp"
#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "core/generalized_bfs.hpp"
#include "core/incremental.hpp"
#include "core/kcore.hpp"
#include "core/mst_boruvka.hpp"
#include "core/mst_prim.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "core/triangle_count.hpp"

// Abstractions.
#include "gas/gas.hpp"
#include "gas/programs.hpp"
#include "la/algorithms.hpp"
#include "la/semiring.hpp"
#include "la/spmv.hpp"

// Distributed-memory emulation.
#include "dist/bc_dist.hpp"
#include "dist/bfs_dist.hpp"
#include "dist/frontier_dist.hpp"
#include "dist/pr_dist.hpp"
#include "dist/runtime.hpp"
#include "dist/sssp_dist.hpp"
#include "dist/tc_dist.hpp"
#include "dist/transport.hpp"
#include "dist/transport_emu.hpp"
#include "dist/transport_shm.hpp"

// Analysis.
#include "pram/model.hpp"
