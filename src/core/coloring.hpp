// Graph coloring (§3.6, §4.6, Algorithm 6) and the acceleration strategies
// of §5 that the paper demonstrates on it.
//
// Boman graph coloring (BGC): each iteration (1) greedily colors the vertices
// scheduled for (re)coloring inside every partition independently, then
// (2) verifies border vertices for cross-partition conflicts. Phase (2) is a
// single engine edge_map over the border set with one strike functor; the
// direction picks the loop shape and context:
//
//   push — engine::sparse_push + AtomicCtx: the winner's thread strikes the
//          *loser's* avail word and schedule flag (remote writes → integer
//          atomics / CAS),
//   pull — engine::sparse_pull + PlainCtx: each thread strikes only its *own*
//          vertices (thread-private writes, conflicts detected symmetrically).
//
// Strategies (§5), all policy compositions over the same engine calls
// (see coloring.cpp):
//   Frontier-Exploit (FE)  — wave coloring from a stable seed set; only the
//                            frontier's neighborhood is touched per iteration
//                            instead of all n vertices (sparse engine modes).
//   Generic-Switch (GS)    — FE that starts pushing and switches to pulling
//                            when conflicts begin to dominate the wave.
//   Greedy-Switch (GrS)    — FE that abandons parallelism entirely once the
//                            uncolored remainder is small (< 10% of n) and
//                            finishes with sequential greedy.
//   Conflict-Removal (CR)  — colors the border set sequentially first, then
//                            all partitions in parallel; conflict-free by
//                            construction (Algorithm 9).
#pragma once

#include <omp.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct ColoringOptions {
  int max_iterations = 50;       // L
  int max_colors = 0;            // C; 0 = auto (d̂ + L + 2)
  bool stop_on_converged = true; // false reproduces the paper's fixed-L runs
  int num_partitions = 0;        // 0 = omp_get_max_threads()
  double grs_threshold = 0.10;   // GrS: switch when uncolored < threshold·n
  double gs_ratio = 2.0;         // GS: switch when colored/conflicts < ratio
};

struct ColoringResult {
  std::vector<int> color;
  int iterations = 0;
  int colors_used = 0;
  std::vector<double> iter_times;         // wall seconds per iteration
  std::vector<std::int64_t> iter_conflicts;  // conflicts detected per iteration
};

namespace detail {

// Availability mask: bit c set ⇒ color c may still be used for the vertex.
class AvailMask {
 public:
  AvailMask(vid_t n, int colors)
      : words_per_(static_cast<std::size_t>((colors + 63) / 64)),
        colors_(colors),
        bits_(static_cast<std::size_t>(n) * words_per_, ~std::uint64_t{0}) {}

  int colors() const noexcept { return colors_; }

  // Mask that strikes color c from its word: word &= strike_mask(c).
  static std::uint64_t strike_mask(int c) noexcept {
    return ~(std::uint64_t{1} << (c % 64));
  }

  // Mutable word holding color c's bit — the engine contexts apply the strike
  // with the sync policy of the traversal direction (and_mask).
  std::uint64_t& word_ref(vid_t v, int c) noexcept {
    return bits_[word_index(v, c)];
  }

  void clear_bit(vid_t v, int c) noexcept {
    bits_[word_index(v, c)] &= strike_mask(c);
  }

  void clear_bit_atomic(vid_t v, int c) noexcept {
    std::atomic_ref<std::uint64_t>(bits_[word_index(v, c)])
        .fetch_and(strike_mask(c), std::memory_order_relaxed);
  }

  bool test(vid_t v, int c) const noexcept {
    return (bits_[word_index(v, c)] >> (c % 64)) & 1;
  }

  const std::uint64_t* row(vid_t v) const noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * words_per_;
  }

  std::size_t words_per_vertex() const noexcept { return words_per_; }

  const void* address_of(vid_t v, int c) const noexcept {
    return &bits_[word_index(v, c)];
  }

 private:
  std::size_t word_index(vid_t v, int c) const noexcept {
    PP_DCHECK(c >= 0 && c < colors_);
    return static_cast<std::size_t>(v) * words_per_ +
           static_cast<std::size_t>(c) / 64;
  }

  std::size_t words_per_;
  int colors_;
  std::vector<std::uint64_t> bits_;
};

// Smallest color allowed by `avail` and not used by any current neighbor.
// `scratch` is a caller-provided forbidden mask of words_per_vertex words.
template <class Instr>
int pick_color(const Csr& g, const AvailMask& avail, const std::vector<int>& color,
               vid_t v, std::vector<std::uint64_t>& scratch, Instr& instr) {
  const std::size_t words = avail.words_per_vertex();
  const std::uint64_t* row = avail.row(v);
  for (std::size_t w = 0; w < words; ++w) scratch[w] = row[w];
  for (vid_t u : g.neighbors(v)) {
    instr.read(&color[static_cast<std::size_t>(u)], sizeof(int));
    const int cu = atomic_load(color[static_cast<std::size_t>(u)]);
    instr.branch_cond();
    if (cu >= 0 && cu < avail.colors()) {
      scratch[static_cast<std::size_t>(cu) / 64] &=
          ~(std::uint64_t{1} << (cu % 64));
    }
  }
  for (std::size_t w = 0; w < words; ++w) {
    if (scratch[w] != 0) {
      const int c = static_cast<int>(w * 64) + __builtin_ctzll(scratch[w]);
      if (c < avail.colors()) return c;
    }
  }
  PP_CHECK(false && "coloring ran out of colors; raise ColoringOptions::max_colors");
  return -1;
}

int resolve_max_colors(const Csr& g, const ColoringOptions& opt);
int resolve_partitions(const ColoringOptions& opt);

// Cross-partition conflict detection, direction-agnostic: on an equal-color
// cut edge the smaller id wins and the loser's color is struck from its
// availability mask. The engine decides *who executes* the strike — push
// iterates sources (remote strike through AtomicCtx), pull iterates
// destinations (self-strike through PlainCtx) — with the same functor body.
struct ConflictStrike {
  const Partition1D* part;
  int* color;
  AvailMask* avail;
  std::uint8_t* need;
  bool iterate_sources;  // true: sparse_push over the border (push direction)

  // Color of the iterated border vertex, read once per vertex.
  template <class Ctx>
  int source_data(Ctx&, vid_t s) const {
    return color[s];
  }
  template <class Ctx>
  int dest_data(Ctx&, vid_t d) const {
    return color[d];
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t, int cv) const {
    if (part->owner(s) == part->owner(d)) return false;
    const vid_t other = iterate_sources ? d : s;
    if (ctx.load(color[other]) != cv) return false;
    if (s >= d) return false;  // the smaller id keeps its color
    // Strike the loser d: push reaches it remotely (atomics), pull only ever
    // strikes the iterated vertex itself (d == the pulled destination).
    ctx.and_mask(avail->word_ref(d, cv), AvailMask::strike_mask(cv));
    ctx.store(need[d], std::uint8_t{1});
    return true;
  }
};

}  // namespace detail

// --- Boman graph coloring (Algorithm 6) --------------------------------------

template <class Instr = NullInstr>
ColoringResult boman_color(const Csr& g, Direction dir, const ColoringOptions& opt = {},
                           Instr instr = {}) {
  const vid_t n = g.n();
  const int nparts = detail::resolve_partitions(opt);
  const int max_colors = detail::resolve_max_colors(g, opt);
  const Partition1D part(n, nparts);

  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  detail::AvailMask avail(n, max_colors);
  std::vector<std::uint8_t> need(static_cast<std::size_t>(n), 1);
  const std::vector<vid_t> border = border_vertices(g, part);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 41;
  emo.track_output = false;

  for (int l = 0; l < opt.max_iterations; ++l) {
    WallTimer iter_timer;

    // Phase 1: seq_color_partition(P) for every partition in parallel. This
    // is the greedy interior step of Algorithm 6 — partition-sequential by
    // construction, not a push/pull traversal.
#pragma omp parallel num_threads(nparts)
    {
      const int t = omp_get_thread_num();
      std::vector<std::uint64_t> scratch(avail.words_per_vertex());
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        instr.code_region(40);
        if (!need[static_cast<std::size_t>(v)]) continue;
        const int c = detail::pick_color(g, avail, r.color, v, scratch, instr);
        instr.write(&r.color[static_cast<std::size_t>(v)], sizeof(int));
        atomic_store(r.color[static_cast<std::size_t>(v)], c);
        need[static_cast<std::size_t>(v)] = 0;
      }
    }

    // Phase 2: fix_conflicts() over border vertices — one engine call.
    engine::EdgeMapStats stats;
    const detail::ConflictStrike strike{&part, r.color.data(), &avail,
                                        need.data(),
                                        dir == Direction::Push};
    if (dir == Direction::Push) {
      engine::sparse_push(g, ws, std::span<const vid_t>(border), strike, emo,
                          instr, &stats);
    } else {
      engine::sparse_pull(g, ws, std::span<const vid_t>(border), strike, emo,
                          instr, &stats);
    }

    r.iter_times.push_back(iter_timer.elapsed_s());
    r.iter_conflicts.push_back(stats.updates);
    ++r.iterations;
    if (opt.stop_on_converged && stats.updates == 0) break;
  }

  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

template <class Instr = NullInstr>
ColoringResult boman_color_push(const Csr& g, const ColoringOptions& opt = {},
                                Instr instr = {}) {
  return boman_color(g, Direction::Push, opt, instr);
}

template <class Instr = NullInstr>
ColoringResult boman_color_pull(const Csr& g, const ColoringOptions& opt = {},
                                Instr instr = {}) {
  return boman_color(g, Direction::Pull, opt, instr);
}

// --- Strategy implementations (compiled in coloring.cpp) ----------------------

// Frontier-Exploit with a fixed direction.
ColoringResult fe_color(const Csr& g, Direction dir, const ColoringOptions& opt = {});

// Frontier-Exploit + Generic-Switch (push until conflicts dominate, then pull).
ColoringResult gs_color(const Csr& g, const ColoringOptions& opt = {});

// Frontier-Exploit + Greedy-Switch (finish sequentially once < 10% remains).
ColoringResult grs_color(const Csr& g, const ColoringOptions& opt = {});

// Conflict-Removal: border first (sequential), partitions in parallel after.
ColoringResult cr_color(const Csr& g, const ColoringOptions& opt = {});

}  // namespace pushpull
