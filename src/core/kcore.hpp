// k-core decomposition by peel-by-degree over the bucketed frontier.
//
// Vertices sit in engine::BucketedVertexSet buckets keyed by residual degree;
// popping the smallest bucket k yields exactly the vertices whose residual
// fell to ≤ k once every smaller core is gone — their coreness is k. The
// decrement of surviving neighbors stays an engine sparse_push (AtomicCtx's
// integer FAA), and the decremented survivors re-enter the structure at
// max(residual, k): the clamp folds same-wave cascades back into the bucket
// being peeled (Julienne's k-core formulation). The old per-k dense
// vertex_map scan is gone — work per wave is O(|peeled| + their arcs), and
// empty degree ranges cost nothing (the empty-bucket skip).
//
// core[v] = the largest k such that v belongs to a subgraph in which every
// vertex has degree ≥ k. The pre-bucketed peel is frozen as legacy::kcore
// (core/baselines/legacy_kernels.hpp) and the two are asserted bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/vertex_set.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct KcoreResult {
  std::vector<vid_t> core;  // coreness per vertex
  vid_t max_core = 0;       // degeneracy of the graph
  int rounds = 0;           // peel waves (popped buckets) across all k
};

namespace detail {

struct KcorePeel {
  vid_t* residual;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    // Integer FAA; peeled neighbors may drive residual negative, which the
    // bucket clamp treats the same as "at the current k". Returning true
    // hands the decremented target back so it can be re-bucketed; the dead
    // are filtered at insertion.
    ctx.add(residual[d], vid_t{-1});
    return true;
  }
};

}  // namespace detail

template <class Instr = NullInstr>
KcoreResult kcore_decomposition(const Csr& g, Instr instr = {}) {
  using key_t = engine::BucketedVertexSet::key_t;
  const vid_t n = g.n();
  KcoreResult r;
  r.core.assign(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> residual(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(n), 1);
  for (vid_t v = 0; v < n; ++v) residual[static_cast<std::size_t>(v)] = g.degree(v);

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 72;
  emo.dedup_output = true;  // each decremented neighbor reported once per wave

  engine::BucketedVertexSet buckets(n);
  for (vid_t v = 0; v < n; ++v) {
    buckets.insert(v, static_cast<key_t>(residual[static_cast<std::size_t>(v)]));
  }
  // Clamping to the popped bucket k makes cascade-decremented vertices
  // (residual now < k) members of the wave being peeled instead of stale
  // entries behind the window; coreness is monotone in peel order, so the
  // clamp never misassigns. Dead vertices are never scheduled again.
  const auto key_of = [&](vid_t v, key_t b) {
    if (!alive[static_cast<std::size_t>(v)]) {
      return engine::BucketedVertexSet::kInfKey;
    }
    const key_t res = static_cast<key_t>(residual[static_cast<std::size_t>(v)]);
    return res > b ? res : b;
  };

  std::vector<vid_t> peel;
  key_t k;
  while ((k = buckets.pop_bucket(peel, key_of)) !=
         engine::BucketedVertexSet::kInfKey) {
    ++r.rounds;
    for (const vid_t v : peel) {
      alive[static_cast<std::size_t>(v)] = 0;
      r.core[static_cast<std::size_t>(v)] = static_cast<vid_t>(k);
    }
    const engine::VertexSet touched = engine::sparse_push(
        g, ws, std::span<const vid_t>(peel),
        detail::KcorePeel{residual.data()}, emo, instr);
    for (const vid_t v : touched.ids()) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      const key_t res = static_cast<key_t>(residual[static_cast<std::size_t>(v)]);
      buckets.insert(v, res > k ? res : k);
    }
  }
  for (vid_t c : r.core) r.max_core = std::max(r.max_core, c);
  return r;
}

}  // namespace pushpull
