// k-core decomposition by iterated peeling — the second free rider on the
// engine: the whole algorithm is a vertex_map filter (find vertices whose
// residual degree dropped below k, claim each exactly once through
// PlainCtx::claim on the thread-owned sweep) and a sparse_push (decrement the
// survivors' residual degrees with AtomicCtx's integer FAA).
//
// core[v] = the largest k such that v belongs to a subgraph in which every
// vertex has degree ≥ k.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct KcoreResult {
  std::vector<vid_t> core;  // coreness per vertex
  vid_t max_core = 0;       // degeneracy of the graph
  int rounds = 0;           // total peel rounds across all k
};

namespace detail {

struct KcorePeel {
  vid_t* residual;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    // Integer FAA; peeled neighbors may drive residual negative, which the
    // claim filter treats the same as "below k".
    ctx.add(residual[d], vid_t{-1});
    return false;
  }
};

}  // namespace detail

template <class Instr = NullInstr>
KcoreResult kcore_decomposition(const Csr& g, Instr instr = {}) {
  const vid_t n = g.n();
  KcoreResult r;
  r.core.assign(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> residual(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(n), 1);
  for (vid_t v = 0; v < n; ++v) residual[static_cast<std::size_t>(v)] = g.degree(v);

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 72;
  emo.track_output = false;

  vid_t remaining = n;
  vid_t k = 0;
  while (remaining > 0) {
    ++k;
    // Peel every vertex that cannot be in the k-core, cascading until stable.
    for (;;) {
      engine::VertexSet peeled = engine::vertex_map(
          n, ws,
          [&](auto& ctx, vid_t v) {
            if (!alive[static_cast<std::size_t>(v)]) return false;
            if (atomic_load(residual[static_cast<std::size_t>(v)]) >= k) return false;
            ctx.store(alive[static_cast<std::size_t>(v)], std::uint8_t{0});
            ctx.store(r.core[static_cast<std::size_t>(v)], k - 1);
            return true;
          },
          /*track=*/true, instr);
      if (peeled.empty()) break;
      ++r.rounds;
      remaining -= static_cast<vid_t>(peeled.size());
      engine::sparse_push(g, ws, peeled, detail::KcorePeel{residual.data()},
                          emo, instr);
    }
  }
  for (vid_t c : r.core) r.max_core = std::max(r.max_core, c);
  return r;
}

}  // namespace pushpull
