// Pre-refactor shared-memory kernels, frozen as differential baselines.
//
// These are the hand-rolled push/pull OpenMP loops that lived in core/bfs.hpp,
// sssp_delta.hpp, pagerank.hpp, bc.hpp and coloring.hpp before the engine
// refactor (PR 4) rebased the kernels onto engine/edge_map.hpp. They are kept
// verbatim in behavior (instrumentation hooks stripped) so the engine-based
// kernels can be asserted bit-identical against them across the graph zoo —
// see tests/test_engine_differential.cpp. Do not "improve" these: their value
// is that they never change.
#pragma once

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/coloring.hpp"
#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "core/pagerank.hpp"
#include "core/sssp_delta.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "graph/partition_aware.hpp"
#include "sync/atomics.hpp"
#include "sync/spinlock.hpp"
#include "util/check.hpp"

namespace pushpull::legacy {

// --- BFS ---------------------------------------------------------------------

struct BfsRef {
  std::vector<vid_t> dist;
  std::vector<vid_t> parent;
  int levels = 0;
};

inline BfsRef bfs_push(const Csr& g, vid_t root) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsRef r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  FrontierBuffers buffers(omp_get_max_threads());
  std::vector<vid_t> frontier{root};
  vid_t level = 0;
  while (!frontier.empty()) {
    ++level;
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const vid_t v = frontier[i];
      for (vid_t u : g.neighbors(v)) {
        if (atomic_load(r.dist[static_cast<std::size_t>(u)]) >= 0) continue;
        vid_t expected = -1;
        if (cas(r.dist[static_cast<std::size_t>(u)], expected, level)) {
          r.parent[static_cast<std::size_t>(u)] = v;
          buffers.push_local(u);
        }
      }
    }
    buffers.merge_into(frontier);
    ++r.levels;
  }
  return r;
}

inline BfsRef bfs_pull(const Csr& g, vid_t root) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsRef r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  vid_t level = 0;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    ++level;
    bool any = false;
#pragma omp parallel for schedule(dynamic, 256) reduction(|| : any)
    for (vid_t v = 0; v < n; ++v) {
      if (r.dist[static_cast<std::size_t>(v)] >= 0) continue;
      for (vid_t u : g.neighbors(v)) {
        if (r.dist[static_cast<std::size_t>(u)] == level - 1) {
          r.dist[static_cast<std::size_t>(v)] = level;
          r.parent[static_cast<std::size_t>(v)] = u;
          any = true;
          break;
        }
      }
    }
    advanced = any;
    if (advanced) ++r.levels;
  }
  return r;
}

// --- Δ-stepping SSSP ---------------------------------------------------------

inline constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();

inline std::int64_t next_bucket(const std::vector<weight_t>& d, weight_t delta,
                                std::int64_t b) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t v = 0; v < d.size(); ++v) {
    const std::int64_t bv = bucket_of(d[v], delta);
    if (bv > b && bv < best) best = bv;
  }
  return best;
}

inline std::vector<weight_t> sssp_delta_push(const Csr& g, vid_t src,
                                             weight_t delta) {
  PP_CHECK(g.has_weights());
  const vid_t n = g.n();
  std::vector<weight_t> dist(static_cast<std::size_t>(n), kInf);
  dist[static_cast<std::size_t>(src)] = 0;
  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> active_next(static_cast<std::size_t>(n), 0);

  std::int64_t b = 0;
  while (b != std::numeric_limits<std::int64_t>::max()) {
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      active[static_cast<std::size_t>(v)] =
          bucket_of(dist[static_cast<std::size_t>(v)], delta) == b ? 1 : 0;
    }
    bool bucket_changed = true;
    while (bucket_changed) {
      bucket_changed = false;
      bool changed = false;
#pragma omp parallel for schedule(dynamic, 128) reduction(|| : changed)
      for (vid_t v = 0; v < n; ++v) {
        if (!active[static_cast<std::size_t>(v)]) continue;
        active[static_cast<std::size_t>(v)] = 0;
        const weight_t dv = atomic_load(dist[static_cast<std::size_t>(v)]);
        const auto nb = g.neighbors(v);
        const auto wgt = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const vid_t w = nb[i];
          const weight_t nd = dv + wgt[i];
          if (nd < atomic_load(dist[static_cast<std::size_t>(w)])) {
            if (atomic_min(dist[static_cast<std::size_t>(w)], nd) &&
                bucket_of(nd, delta) == b) {
              atomic_store(active_next[static_cast<std::size_t>(w)], std::uint8_t{1});
              changed = true;
            }
          }
        }
      }
      if (changed) {
        bucket_changed = true;
        active.swap(active_next);
        std::fill(active_next.begin(), active_next.end(), std::uint8_t{0});
      }
    }
    b = next_bucket(dist, delta, b);
  }
  return dist;
}

inline std::vector<weight_t> sssp_delta_pull(const Csr& g, vid_t src,
                                             weight_t delta) {
  PP_CHECK(g.has_weights());
  const vid_t n = g.n();
  std::vector<weight_t> dist(static_cast<std::size_t>(n), kInf);
  dist[static_cast<std::size_t>(src)] = 0;
  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> active_next(static_cast<std::size_t>(n), 0);

  std::int64_t b = 0;
  while (b != std::numeric_limits<std::int64_t>::max()) {
    int itr = 0;
    bool bucket_changed = true;
    while (bucket_changed) {
      bucket_changed = false;
      bool changed = false;
#pragma omp parallel for schedule(dynamic, 128) reduction(|| : changed)
      for (vid_t v = 0; v < n; ++v) {
        const weight_t dv = dist[static_cast<std::size_t>(v)];
        if (bucket_of(dv, delta) < b) continue;
        weight_t best = dv;
        vid_t improved_from = kInvalidVertex;
        const auto nb = g.neighbors(v);
        const auto wgt = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const vid_t w = nb[i];
          const weight_t dw = atomic_load(dist[static_cast<std::size_t>(w)]);
          if (bucket_of(dw, delta) != b) continue;
          if (itr != 0 && !atomic_load(active[static_cast<std::size_t>(w)]) &&
              w != v) {
            continue;
          }
          const weight_t nd = dw + wgt[i];
          if (nd < best) {
            best = nd;
            improved_from = w;
          }
        }
        if (improved_from != kInvalidVertex) {
          atomic_store(dist[static_cast<std::size_t>(v)], best);
          if (bucket_of(best, delta) == b) {
            active_next[static_cast<std::size_t>(v)] = 1;
            changed = true;
          }
        }
      }
      ++itr;
      if (changed) bucket_changed = true;
      active.swap(active_next);
      std::fill(active_next.begin(), active_next.end(), std::uint8_t{0});
    }
    b = next_bucket(dist, delta, b);
  }
  return dist;
}

// --- k-core decomposition ----------------------------------------------------
//
// The pre-BucketedVertexSet peel (frozen from core/kcore.hpp when PR 8 rebased
// the kernel onto the bucketed frontier): for each threshold k, cascade-peel
// every vertex whose residual degree fell below k, decrementing neighbors'
// residuals, until stable. Same claim/decrement order-insensitivity as the
// engine version — coreness is a unique fixed point — so the rebased kernel is
// asserted bit-identical against this across the zoo.
inline std::vector<vid_t> kcore(const Csr& g) {
  const vid_t n = g.n();
  std::vector<vid_t> core(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> residual(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(n), 1);
  for (vid_t v = 0; v < n; ++v) residual[static_cast<std::size_t>(v)] = g.degree(v);

  vid_t remaining = n;
  vid_t k = 0;
  while (remaining > 0) {
    ++k;
    for (;;) {
      std::vector<vid_t> peeled;
      for (vid_t v = 0; v < n; ++v) {
        if (!alive[static_cast<std::size_t>(v)]) continue;
        if (residual[static_cast<std::size_t>(v)] >= k) continue;
        alive[static_cast<std::size_t>(v)] = 0;
        core[static_cast<std::size_t>(v)] = k - 1;
        peeled.push_back(v);
      }
      if (peeled.empty()) break;
      remaining -= static_cast<vid_t>(peeled.size());
      for (const vid_t v : peeled) {
        for (const vid_t u : g.neighbors(v)) {
          --residual[static_cast<std::size_t>(u)];
        }
      }
    }
  }
  return core;
}

// --- PageRank ----------------------------------------------------------------

inline double pr_dangling_mass(const Csr& g, const std::vector<double>& pr) {
  double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
  }
  return dangling;
}

inline std::vector<double> pagerank_pull(const Csr& g, const PageRankOptions& opt) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (vid_t u : g.neighbors(v)) {
        sum += pr[static_cast<std::size_t>(u)] / g.degree(u);
      }
      next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
    }
    pr.swap(next);
  }
  return pr;
}

inline std::vector<double> pagerank_push(const Csr& g, const PageRankOptions& opt) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel
    {
#pragma omp for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        const vid_t deg = g.degree(v);
        if (deg == 0) continue;
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : g.neighbors(v)) {
          atomic_add(next[static_cast<std::size_t>(u)], share);
        }
      }
#pragma omp for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        next[static_cast<std::size_t>(v)] += base;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

inline std::vector<double> pagerank_push_pa(const Csr& g, const PartitionAwareCsr& pa,
                                            const PageRankOptions& opt) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && pa.n() == n);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  const Partition1D& part = pa.partition();
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel num_threads(part.parts())
    {
      const int t = omp_get_thread_num();
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        const vid_t deg = pa.degree(v);
        if (deg == 0) continue;
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : pa.local_neighbors(v)) {
          next[static_cast<std::size_t>(u)] += share;
        }
      }
#pragma omp barrier
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        const vid_t deg = pa.degree(v);
        if (deg == 0) continue;
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : pa.remote_neighbors(v)) {
          atomic_add(next[static_cast<std::size_t>(u)], share);
        }
      }
#pragma omp barrier
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        next[static_cast<std::size_t>(v)] += base;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// --- Betweenness centrality --------------------------------------------------

inline std::vector<double> betweenness_centrality(const Csr& g,
                                                  const std::vector<vid_t>& srcs,
                                                  Direction forward,
                                                  Direction backward) {
  const vid_t n = g.n();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return bc;

  std::vector<vid_t> sources = srcs;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }

  std::vector<vid_t> dist(static_cast<std::size_t>(n));
  std::vector<std::int64_t> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> levels;
  FrontierBuffers buffers(omp_get_max_threads());

  for (vid_t s : sources) {
    std::fill(dist.begin(), dist.end(), vid_t{-1});
    std::fill(sigma.begin(), sigma.end(), std::int64_t{0});
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1;
    levels.clear();
    levels.push_back({s});

    vid_t level = 0;
    while (!levels.back().empty()) {
      const std::vector<vid_t>& frontier = levels.back();
      ++level;
      if (forward == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          const vid_t v = frontier[i];
          for (vid_t u : g.neighbors(v)) {
            vid_t du = atomic_load(dist[static_cast<std::size_t>(u)]);
            if (du == -1) {
              vid_t expected = -1;
              if (cas(dist[static_cast<std::size_t>(u)], expected, level)) {
                buffers.push_local(u);
              }
              du = atomic_load(dist[static_cast<std::size_t>(u)]);
            }
            if (du == level) {
              faa(sigma[static_cast<std::size_t>(u)],
                  sigma[static_cast<std::size_t>(v)]);
            }
          }
        }
      } else {
#pragma omp parallel for schedule(dynamic, 256)
        for (vid_t v = 0; v < n; ++v) {
          if (dist[static_cast<std::size_t>(v)] != -1) continue;
          std::int64_t paths = 0;
          for (vid_t u : g.neighbors(v)) {
            if (atomic_load(dist[static_cast<std::size_t>(u)]) == level - 1) {
              paths += sigma[static_cast<std::size_t>(u)];
            }
          }
          if (paths > 0) {
            dist[static_cast<std::size_t>(v)] = level;
            sigma[static_cast<std::size_t>(v)] = paths;
            buffers.push_local(v);
          }
        }
      }
      levels.emplace_back();
      buffers.merge_into(levels.back());
    }
    levels.pop_back();

    std::fill(delta.begin(), delta.end(), 0.0);
    for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
      if (backward == Direction::Pull) {
        const std::vector<vid_t>& lvl = levels[static_cast<std::size_t>(l)];
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < lvl.size(); ++i) {
          const vid_t v = lvl[i];
          double acc = 0.0;
          for (vid_t u : g.neighbors(v)) {
            if (dist[static_cast<std::size_t>(u)] == l + 1) {
              acc += static_cast<double>(sigma[static_cast<std::size_t>(v)]) /
                     static_cast<double>(sigma[static_cast<std::size_t>(u)]) *
                     (1.0 + delta[static_cast<std::size_t>(u)]);
            }
          }
          delta[static_cast<std::size_t>(v)] += acc;
        }
      } else {
        const std::vector<vid_t>& lvl = levels[static_cast<std::size_t>(l) + 1];
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < lvl.size(); ++i) {
          const vid_t w = lvl[i];
          const double contrib_base =
              (1.0 + delta[static_cast<std::size_t>(w)]) /
              static_cast<double>(sigma[static_cast<std::size_t>(w)]);
          for (vid_t v : g.neighbors(w)) {
            if (dist[static_cast<std::size_t>(v)] == l) {
              atomic_add(delta[static_cast<std::size_t>(v)],
                         static_cast<double>(sigma[static_cast<std::size_t>(v)]) *
                             contrib_base);
            }
          }
        }
      }
    }
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (v != s) bc[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
    }
  }

  if (sources.size() == static_cast<std::size_t>(n)) {
    for (double& x : bc) x /= 2.0;
  }
  return bc;
}

// --- Boman coloring (Algorithm 6) --------------------------------------------

inline ColoringResult boman_color(const Csr& g, Direction dir,
                                  const ColoringOptions& opt = {}) {
  const vid_t n = g.n();
  const int nparts = detail::resolve_partitions(opt);
  const int max_colors = detail::resolve_max_colors(g, opt);
  const Partition1D part(n, nparts);

  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  detail::AvailMask avail(n, max_colors);
  std::vector<std::uint8_t> need(static_cast<std::size_t>(n), 1);
  const std::vector<vid_t> border = border_vertices(g, part);
  NullInstr ni;

  for (int l = 0; l < opt.max_iterations; ++l) {
    std::int64_t conflicts = 0;
#pragma omp parallel num_threads(nparts)
    {
      const int t = omp_get_thread_num();
      std::vector<std::uint64_t> scratch(avail.words_per_vertex());
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        if (!need[static_cast<std::size_t>(v)]) continue;
        const int c = detail::pick_color(g, avail, r.color, v, scratch, ni);
        atomic_store(r.color[static_cast<std::size_t>(v)], c);
        need[static_cast<std::size_t>(v)] = 0;
      }
    }

#pragma omp parallel for schedule(dynamic, 64) reduction(+ : conflicts)
    for (std::size_t i = 0; i < border.size(); ++i) {
      const vid_t v = border[i];
      const int cv = r.color[static_cast<std::size_t>(v)];
      for (vid_t u : g.neighbors(v)) {
        if (part.owner(u) == part.owner(v)) continue;
        if (atomic_load(r.color[static_cast<std::size_t>(u)]) != cv) continue;
        if (dir == Direction::Push) {
          if (v < u) {
            avail.clear_bit_atomic(u, cv);
            atomic_store(need[static_cast<std::size_t>(u)], std::uint8_t{1});
            ++conflicts;
          }
        } else {
          if (v > u) {
            avail.clear_bit(v, cv);
            need[static_cast<std::size_t>(v)] = 1;
            ++conflicts;
          }
        }
      }
    }

    r.iter_conflicts.push_back(conflicts);
    ++r.iterations;
    if (opt.stop_on_converged && conflicts == 0) break;
  }

  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

// --- Directed PageRank (§4.8) ------------------------------------------------
//
// The pre-view directed kernels from core/directed.hpp (PR 5 rebased them onto
// engine::edge_map over DigraphView); frozen with instrumentation stripped.

inline std::vector<double> pagerank_digraph(const Digraph& g, int iterations,
                                            double damping, Direction dir) {
  const vid_t n = g.out.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < iterations; ++l) {
    double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (g.out.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;

    if (dir == Direction::Push) {
#pragma omp parallel
      {
#pragma omp for schedule(static)
        for (vid_t u = 0; u < n; ++u) {
          const vid_t deg = g.out.degree(u);
          if (deg == 0) continue;
          const double share = damping * pr[static_cast<std::size_t>(u)] / deg;
          for (vid_t v : g.out.neighbors(u)) {
            atomic_add(next[static_cast<std::size_t>(v)], share);
          }
        }
#pragma omp for schedule(static)
        for (vid_t v = 0; v < n; ++v) {
          next[static_cast<std::size_t>(v)] += base;
        }
      }
    } else {
#pragma omp parallel for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        double sum = 0.0;
        for (vid_t u : g.in.neighbors(v)) {
          sum += pr[static_cast<std::size_t>(u)] / g.out.degree(u);
        }
        next[static_cast<std::size_t>(v)] = base + damping * sum;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// --- Directed BFS (§4.8) -----------------------------------------------------

inline std::vector<vid_t> bfs_digraph(const Digraph& g, vid_t root,
                                      Direction dir) {
  const vid_t n = g.out.n();
  PP_CHECK(root >= 0 && root < n);
  std::vector<vid_t> dist(static_cast<std::size_t>(n), -1);
  dist[static_cast<std::size_t>(root)] = 0;

  if (dir == Direction::Push) {
    FrontierBuffers buffers(omp_get_max_threads());
    std::vector<vid_t> frontier{root};
    vid_t level = 0;
    while (!frontier.empty()) {
      ++level;
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        for (vid_t u : g.out.neighbors(frontier[i])) {
          if (atomic_load(dist[static_cast<std::size_t>(u)]) >= 0) continue;
          vid_t expected = -1;
          if (cas(dist[static_cast<std::size_t>(u)], expected, level)) {
            buffers.push_local(u);
          }
        }
      }
      buffers.merge_into(frontier);
    }
  } else {
    vid_t level = 0;
    bool advanced = true;
    while (advanced) {
      ++level;
      bool any = false;
#pragma omp parallel for schedule(dynamic, 256) reduction(|| : any)
      for (vid_t v = 0; v < n; ++v) {
        if (dist[static_cast<std::size_t>(v)] >= 0) continue;
        for (vid_t u : g.in.neighbors(v)) {
          if (dist[static_cast<std::size_t>(u)] == level - 1) {
            dist[static_cast<std::size_t>(v)] = level;
            any = true;
            break;
          }
        }
      }
      advanced = any;
    }
  }
  return dist;
}

// --- Generalized BFS (Algorithm 3) -------------------------------------------
//
// The two-phase push round (accumulate into every still-ready neighbor, then
// decrement) and the pull round with the counter-exhaustion break, as they
// stood before the edge_map rebase. With exact ready counts every required
// predecessor contributes exactly once, so both the two-phase original and
// the engine's fused per-edge round produce identical folds.

template <class T, class Op>
std::vector<T> generalized_bfs(const Csr& g, std::vector<int> ready,
                               std::vector<T> values,
                               std::vector<vid_t> frontier, Op op,
                               Direction dir) {
  const vid_t n = g.n();
  PP_CHECK(ready.size() == static_cast<std::size_t>(n));
  PP_CHECK(values.size() == static_cast<std::size_t>(n));
  FrontierBuffers buffers(omp_get_max_threads());
  DenseFrontier in_frontier(n);
  SpinlockPool locks(4096);

  while (!frontier.empty()) {
    if (dir == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const vid_t v = frontier[i];
        for (vid_t w : g.neighbors(v)) {
          if (atomic_load(ready[static_cast<std::size_t>(w)]) > 0) {
            SpinGuard guard(locks.for_index(static_cast<std::size_t>(w)));
            op(values[static_cast<std::size_t>(w)], values[static_cast<std::size_t>(v)]);
          }
        }
        for (vid_t w : g.neighbors(v)) {
          if (faa(ready[static_cast<std::size_t>(w)], -1) == 1) {
            buffers.push_local(w);
          }
        }
      }
    } else {
      in_frontier.build_from(frontier);
#pragma omp parallel for schedule(dynamic, 256)
      for (vid_t v = 0; v < n; ++v) {
        if (ready[static_cast<std::size_t>(v)] <= 0) continue;
        for (vid_t w : g.neighbors(v)) {
          if (!in_frontier.test(w)) continue;
          op(values[static_cast<std::size_t>(v)], values[static_cast<std::size_t>(w)]);
          if (--ready[static_cast<std::size_t>(v)] == 0) {
            buffers.push_local(v);
            break;
          }
        }
      }
    }
    buffers.merge_into(frontier);
  }
  return values;
}

// --- Borůvka MST (§4.7, Algorithm 7) -----------------------------------------
//
// The pre-engine implementation: hand-rolled FM push (atomic minimum into the
// neighbor components' slots) / FM pull (per-supervertex private minimum),
// OpenMP hook + pointer-jumping rounds, sequential merge. Packing and
// tie-break identical to the production kernel, so tree weights and edge
// lists must match bit for bit.

struct BoruvkaRef {
  std::vector<std::pair<vid_t, vid_t>> tree_edges;
  double total_weight = 0.0;
  int iterations = 0;
};

namespace detail {

constexpr std::uint64_t kNoEdge = std::numeric_limits<std::uint64_t>::max();

inline std::uint64_t boruvka_pack(weight_t w, eid_t canonical_arc) {
  const std::uint32_t wbits = std::bit_cast<std::uint32_t>(w);
  return (static_cast<std::uint64_t>(wbits) << 32) |
         static_cast<std::uint32_t>(canonical_arc);
}

}  // namespace detail

inline BoruvkaRef mst_boruvka(const Csr& g, Direction dir) {
  PP_CHECK(g.has_weights() || g.num_arcs() == 0);
  const vid_t n = g.n();
  BoruvkaRef result;
  if (n == 0) return result;

  std::vector<vid_t> arc_src(static_cast<std::size_t>(g.num_arcs()));
  std::vector<eid_t> canonical(static_cast<std::size_t>(g.num_arcs()));
  for (vid_t v = 0; v < n; ++v) {
    for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      arc_src[static_cast<std::size_t>(e)] = v;
    }
  }
#pragma omp parallel for schedule(dynamic, 256)
  for (vid_t v = 0; v < n; ++v) {
    for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      const vid_t w = g.edge_target(e);
      const auto nb = g.neighbors(w);
      const auto it = std::lower_bound(nb.begin(), nb.end(), v);
      const eid_t rev = g.edge_begin(w) + (it - nb.begin());
      canonical[static_cast<std::size_t>(e)] = std::min(e, rev);
    }
  }

  std::vector<vid_t> comp(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(n));
  std::vector<vid_t> active;
  for (vid_t v = 0; v < n; ++v) {
    comp[static_cast<std::size_t>(v)] = v;
    members[static_cast<std::size_t>(v)] = {v};
    active.push_back(v);
  }
  std::vector<std::uint64_t> min_edge(static_cast<std::size_t>(n), detail::kNoEdge);
  std::vector<vid_t> parent(static_cast<std::size_t>(n));

  while (true) {
    for (vid_t f : active) min_edge[static_cast<std::size_t>(f)] = detail::kNoEdge;
    if (dir == Direction::Pull) {
#pragma omp parallel for schedule(dynamic, 8)
      for (std::size_t i = 0; i < active.size(); ++i) {
        const vid_t f = active[i];
        std::uint64_t best = detail::kNoEdge;
        for (vid_t v : members[static_cast<std::size_t>(f)]) {
          for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
            if (comp[static_cast<std::size_t>(g.edge_target(e))] == f) continue;
            best = std::min(best, detail::boruvka_pack(
                                      g.edge_weight(e),
                                      canonical[static_cast<std::size_t>(e)]));
          }
        }
        min_edge[static_cast<std::size_t>(f)] = best;
      }
    } else {
#pragma omp parallel for schedule(dynamic, 8)
      for (std::size_t i = 0; i < active.size(); ++i) {
        const vid_t f = active[i];
        for (vid_t v : members[static_cast<std::size_t>(f)]) {
          for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
            const vid_t fw = comp[static_cast<std::size_t>(g.edge_target(e))];
            if (fw == f) continue;
            atomic_min(min_edge[static_cast<std::size_t>(fw)],
                       detail::boruvka_pack(g.edge_weight(e),
                                            canonical[static_cast<std::size_t>(e)]));
          }
        }
      }
    }

    bool any_merge = false;
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < active.size(); ++i) {
      const vid_t f = active[i];
      const std::uint64_t cand = min_edge[static_cast<std::size_t>(f)];
      if (cand == detail::kNoEdge) {
        parent[static_cast<std::size_t>(f)] = f;
        continue;
      }
      const eid_t arc = static_cast<eid_t>(cand & 0xffffffffULL);
      const vid_t ca = comp[static_cast<std::size_t>(arc_src[static_cast<std::size_t>(arc)])];
      const vid_t cb = comp[static_cast<std::size_t>(g.edge_target(arc))];
      parent[static_cast<std::size_t>(f)] = ca == f ? cb : ca;
    }
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < active.size(); ++i) {
      const vid_t f = active[i];
      const vid_t p = parent[static_cast<std::size_t>(f)];
      if (p != f && parent[static_cast<std::size_t>(p)] == f && f < p) {
        parent[static_cast<std::size_t>(f)] = f;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
#pragma omp parallel for schedule(static) reduction(|| : changed)
      for (std::size_t i = 0; i < active.size(); ++i) {
        const vid_t f = active[i];
        const vid_t p = parent[static_cast<std::size_t>(f)];
        const vid_t gp = parent[static_cast<std::size_t>(p)];
        if (p != gp) {
          parent[static_cast<std::size_t>(f)] = gp;
          changed = true;
        }
      }
    }

    std::vector<vid_t> next_active;
    for (vid_t f : active) {
      const vid_t root = parent[static_cast<std::size_t>(f)];
      if (root == f) {
        if (min_edge[static_cast<std::size_t>(f)] != detail::kNoEdge) {
          next_active.push_back(f);
        }
        continue;
      }
      any_merge = true;
      const eid_t arc =
          static_cast<eid_t>(min_edge[static_cast<std::size_t>(f)] & 0xffffffffULL);
      result.tree_edges.emplace_back(arc_src[static_cast<std::size_t>(arc)],
                                     g.edge_target(arc));
      result.total_weight += g.edge_weight(arc);
      auto& src = members[static_cast<std::size_t>(f)];
      auto& dst = members[static_cast<std::size_t>(root)];
      dst.insert(dst.end(), src.begin(), src.end());
      src.clear();
    }
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      comp[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
    }
    active.swap(next_active);
    ++result.iterations;
    if (!any_merge) break;
  }
  return result;
}

// --- Triangle counting (§4.2, Algorithm 2) -----------------------------------

inline std::vector<std::int64_t> triangle_count_pull(const Csr& g) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    std::int64_t local = 0;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (g.has_edge(nb[i], nb[j])) ++local;
      }
    }
    tc[static_cast<std::size_t>(v)] = local;
  }
  return tc;
}

inline std::vector<std::int64_t> triangle_count_push(const Csr& g) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (g.has_edge(nb[i], nb[j])) {
          faa(tc[static_cast<std::size_t>(nb[i])], std::int64_t{1});
          faa(tc[static_cast<std::size_t>(nb[j])], std::int64_t{1});
        }
      }
    }
  }
#pragma omp parallel for schedule(static)
  for (vid_t v = 0; v < g.n(); ++v) {
    tc[static_cast<std::size_t>(v)] /= 2;
  }
  return tc;
}

}  // namespace pushpull::legacy
