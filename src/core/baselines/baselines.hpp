// Sequential reference algorithms used to verify the parallel push/pull
// kernels. These favour obvious correctness over speed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace pushpull::baseline {

inline constexpr weight_t kInfWeight = std::numeric_limits<weight_t>::infinity();

// Sequential BFS: hop distances (kInvalidVertex ⇒ unreachable encoded as -1
// in the distance vector) and a valid parent array.
struct BfsRef {
  std::vector<vid_t> dist;    // -1 = unreachable
  std::vector<vid_t> parent;  // -1 = none/root
};
BfsRef bfs(const Csr& g, vid_t root);

// Dijkstra with a binary heap (weights required, non-negative).
std::vector<weight_t> dijkstra(const Csr& g, vid_t src);

// Bellman–Ford (handles the same non-negative inputs; O(nm)).
std::vector<weight_t> bellman_ford(const Csr& g, vid_t src);

// Kruskal: returns the total weight of the minimum spanning forest.
double kruskal_msf_weight(const Csr& g);

// Prim from each unvisited root: total minimum-spanning-forest weight.
double prim_msf_weight(const Csr& g);

// Greedy first-fit coloring in vertex order; returns colors.
std::vector<int> greedy_coloring(const Csr& g);

// True iff no edge joins two equal colors and every vertex is colored.
bool is_proper_coloring(const Csr& g, const std::vector<int>& color);

// Exact per-vertex triangle counts by brute force over vertex triples
// (use only on small graphs: O(n·d̂²) with sorted adjacency).
std::vector<std::int64_t> brute_force_triangles(const Csr& g);

// Exact betweenness centrality via sequential Brandes. For undirected graphs
// each unordered pair is counted once (result halved as usual).
std::vector<double> brandes_bc(const Csr& g);

}  // namespace pushpull::baseline
