#include "core/baselines/baselines.hpp"

#include <algorithm>
#include <queue>
#include <stack>

#include "core/baselines/union_find.hpp"
#include "util/check.hpp"

namespace pushpull::baseline {

BfsRef bfs(const Csr& g, vid_t root) {
  BfsRef r;
  r.dist.assign(static_cast<std::size_t>(g.n()), -1);
  r.parent.assign(static_cast<std::size_t>(g.n()), -1);
  PP_CHECK(root >= 0 && root < g.n());
  std::queue<vid_t> q;
  r.dist[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const vid_t v = q.front();
    q.pop();
    for (vid_t u : g.neighbors(v)) {
      if (r.dist[static_cast<std::size_t>(u)] < 0) {
        r.dist[static_cast<std::size_t>(u)] = r.dist[static_cast<std::size_t>(v)] + 1;
        r.parent[static_cast<std::size_t>(u)] = v;
        q.push(u);
      }
    }
  }
  return r;
}

std::vector<weight_t> dijkstra(const Csr& g, vid_t src) {
  PP_CHECK(g.has_weights());
  PP_CHECK(src >= 0 && src < g.n());
  std::vector<weight_t> dist(static_cast<std::size_t>(g.n()), kInfWeight);
  using Entry = std::pair<weight_t, vid_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0.0f, src);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const auto nb = g.neighbors(v);
    const auto w = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const weight_t nd = d + w[i];
      if (nd < dist[static_cast<std::size_t>(nb[i])]) {
        dist[static_cast<std::size_t>(nb[i])] = nd;
        pq.emplace(nd, nb[i]);
      }
    }
  }
  return dist;
}

std::vector<weight_t> bellman_ford(const Csr& g, vid_t src) {
  PP_CHECK(g.has_weights());
  std::vector<weight_t> dist(static_cast<std::size_t>(g.n()), kInfWeight);
  dist[static_cast<std::size_t>(src)] = 0;
  for (vid_t round = 0; round + 1 < g.n(); ++round) {
    bool changed = false;
    for (vid_t v = 0; v < g.n(); ++v) {
      if (dist[static_cast<std::size_t>(v)] == kInfWeight) continue;
      const auto nb = g.neighbors(v);
      const auto w = g.weights(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const weight_t nd = dist[static_cast<std::size_t>(v)] + w[i];
        if (nd < dist[static_cast<std::size_t>(nb[i])]) {
          dist[static_cast<std::size_t>(nb[i])] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

double kruskal_msf_weight(const Csr& g) {
  PP_CHECK(g.has_weights());
  struct E {
    weight_t w;
    vid_t u, v;
  };
  std::vector<E> edges;
  edges.reserve(static_cast<std::size_t>(g.num_arcs() / 2));
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    const auto w = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (v < nb[i]) edges.push_back(E{w[i], v, nb[i]});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const E& a, const E& b) { return a.w < b.w; });
  UnionFind uf(g.n());
  double total = 0.0;
  for (const E& e : edges) {
    if (uf.unite(e.u, e.v)) total += e.w;
  }
  return total;
}

double prim_msf_weight(const Csr& g) {
  PP_CHECK(g.has_weights());
  const vid_t n = g.n();
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  double total = 0.0;
  using Entry = std::pair<weight_t, vid_t>;
  for (vid_t root = 0; root < n; ++root) {
    if (in_tree[static_cast<std::size_t>(root)]) continue;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    in_tree[static_cast<std::size_t>(root)] = true;
    auto relax = [&](vid_t v) {
      const auto nb = g.neighbors(v);
      const auto w = g.weights(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (!in_tree[static_cast<std::size_t>(nb[i])]) pq.emplace(w[i], nb[i]);
      }
    };
    relax(root);
    while (!pq.empty()) {
      const auto [w, v] = pq.top();
      pq.pop();
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      in_tree[static_cast<std::size_t>(v)] = true;
      total += w;
      relax(v);
    }
  }
  return total;
}

std::vector<int> greedy_coloring(const Csr& g) {
  std::vector<int> color(static_cast<std::size_t>(g.n()), -1);
  std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
  for (vid_t v = 0; v < g.n(); ++v) {
    for (vid_t u : g.neighbors(v)) {
      const int cu = color[static_cast<std::size_t>(u)];
      if (cu >= 0 && cu < static_cast<int>(mark.size())) mark[static_cast<std::size_t>(cu)] = v;
    }
    int c = 0;
    while (mark[static_cast<std::size_t>(c)] == v) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

bool is_proper_coloring(const Csr& g, const std::vector<int>& color) {
  if (color.size() != static_cast<std::size_t>(g.n())) return false;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (color[static_cast<std::size_t>(v)] < 0) return false;
    for (vid_t u : g.neighbors(v)) {
      if (u != v && color[static_cast<std::size_t>(u)] == color[static_cast<std::size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::int64_t> brute_force_triangles(const Csr& g) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
  for (vid_t v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (g.has_edge(nb[i], nb[j])) ++tc[static_cast<std::size_t>(v)];
      }
    }
  }
  return tc;
}

std::vector<double> brandes_bc(const Csr& g) {
  const vid_t n = g.n();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  std::vector<vid_t> dist(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<vid_t> order;  // vertices in non-decreasing BFS distance
  order.reserve(static_cast<std::size_t>(n));
  for (vid_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), vid_t{-1});
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    std::queue<vid_t> q;
    q.push(s);
    while (!q.empty()) {
      const vid_t v = q.front();
      q.pop();
      order.push_back(v);
      for (vid_t u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
          q.push(u);
        }
        if (dist[static_cast<std::size_t>(u)] == dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(u)] += sigma[static_cast<std::size_t>(v)];
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const vid_t w = *it;
      for (vid_t v : g.neighbors(w)) {
        if (dist[static_cast<std::size_t>(v)] + 1 == dist[static_cast<std::size_t>(w)]) {
          delta[static_cast<std::size_t>(v)] +=
              sigma[static_cast<std::size_t>(v)] / sigma[static_cast<std::size_t>(w)] *
              (1.0 + delta[static_cast<std::size_t>(w)]);
        }
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  // Undirected: each pair (s,t) was counted twice.
  for (double& x : bc) x /= 2.0;
  return bc;
}

}  // namespace pushpull::baseline
