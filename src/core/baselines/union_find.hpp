// Union-find (disjoint set union) with path halving and union by size.
// Substrate for Kruskal and for the Boruvka merge phase.
#pragma once

#include <numeric>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace pushpull {

class UnionFind {
 public:
  explicit UnionFind(vid_t n)
      : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), vid_t{0});
  }

  vid_t find(vid_t v) noexcept {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      // Path halving.
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  // Returns true if u and v were in different sets (and are now merged).
  bool unite(vid_t u, vid_t v) noexcept {
    vid_t ru = find(u), rv = find(v);
    if (ru == rv) return false;
    if (size_[static_cast<std::size_t>(ru)] < size_[static_cast<std::size_t>(rv)]) {
      std::swap(ru, rv);
    }
    parent_[static_cast<std::size_t>(rv)] = ru;
    size_[static_cast<std::size_t>(ru)] += size_[static_cast<std::size_t>(rv)];
    return true;
  }

  bool same(vid_t u, vid_t v) noexcept { return find(u) == find(v); }

  vid_t set_size(vid_t v) noexcept { return size_[static_cast<std::size_t>(find(v))]; }

 private:
  std::vector<vid_t> parent_;
  std::vector<vid_t> size_;
};

}  // namespace pushpull
