// Borůvka minimum spanning tree (§3.7, §4.7, Algorithm 7).
//
// Every vertex starts as its own supervertex; each iteration selects the
// minimum-weight outgoing edge per supervertex, merges along those edges, and
// repeats until no supervertex has an outgoing edge. The paper distinguishes
// push and pull in the minimum-edge selection (Find-Minimum phase):
//
//   pull — the thread owning supervertex f scans the edges of f's member
//          vertices and keeps the minimum in its own min_edge[f]
//          (thread-private write; O(n²) read conflicts),
//   push — the thread owning f *overrides the neighboring supervertices'*
//          candidates: for every cut edge (v, w) it performs an atomic
//          minimum on min_edge[comp(w)] (CAS-accounted write conflicts).
//          Every cut edge is seen from both sides, so each supervertex's
//          minimum is fully determined by its neighbors' pushes.
//
// Candidates are packed as (weight bits << 32 | arc id), which makes the
// minimum unique and both variants bit-deterministic. The per-iteration
// phase breakdown (Find-Minimum, Build-Merge-Tree, Merge) reproduces
// Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/direction.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"

namespace pushpull {

struct BoruvkaPhaseTimes {
  double find_minimum_s = 0.0;
  double build_merge_tree_s = 0.0;
  double merge_s = 0.0;
};

struct BoruvkaResult {
  std::vector<std::pair<vid_t, vid_t>> tree_edges;
  double total_weight = 0.0;
  int iterations = 0;
  std::vector<BoruvkaPhaseTimes> phase_times;  // one entry per iteration
};

namespace detail {
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, NullInstr instr);
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CountingInstr instr);
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CacheSimInstr instr);
}  // namespace detail

template <class Instr = NullInstr>
BoruvkaResult mst_boruvka(const Csr& g, Direction dir, Instr instr = {}) {
  return detail::mst_boruvka_impl(g, dir, instr);
}

inline BoruvkaResult mst_boruvka_push(const Csr& g) {
  return mst_boruvka(g, Direction::Push);
}

inline BoruvkaResult mst_boruvka_pull(const Csr& g) {
  return mst_boruvka(g, Direction::Pull);
}

}  // namespace pushpull
