// Borůvka on the engine substrate (§3.7, §4.7, Algorithm 7; Figure 4 phases).
//
// The three phases of every iteration are engine rounds now:
//
//   Find-Minimum  push — one sparse_push over the member vertices of the
//                 active supervertices: every cut arc (v, w) performs an
//                 atomic minimum on min_edge[comp(w)] (CAS-accounted write
//                 conflicts, §4.7). Every cut edge is seen from both sides,
//                 so each slot still receives its true minimum.
//                 pull — two zero-sync pull maps: a sparse_pull over the same
//                 member vertices folds each vertex's best cut arc into its
//                 own cand[v] (thread-private), then a dense_pull over the
//                 per-iteration *membership CSR* (supervertex → members, an
//                 in-CSR like any other) min-reduces cand into min_edge[f].
//   Build-Merge-Tree — hook, 2-cycle break and pointer jumping are sparse
//                 vertex_map rounds over the active list.
//   Merge         — sequential component bookkeeping (list splicing + tree
//                 edge emission) plus a dense vertex_map relabeling comp.
//
// Candidates are packed as (weight bits << 32 | canonical arc id), which
// makes the minimum unique and both variants bit-deterministic — the engine
// rebase is asserted bit-identical against legacy::mst_boruvka in
// tests/test_mst.cpp.
#include "core/mst_boruvka.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <limits>

#include "engine/edge_map.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

namespace {

constexpr std::uint64_t kNoEdge = std::numeric_limits<std::uint64_t>::max();

// Packs (weight, canonical arc) so that unsigned comparison orders by weight
// first and breaks ties by the *undirected* edge identity. Using a canonical
// arc id (the smaller of the two directions) gives every component the same
// global total order on cut edges, which guarantees the Boruvka hooking
// graph contains no cycles longer than 2 — even with fully tied weights.
// Valid for non-negative finite floats, whose IEEE bit patterns are monotone
// under unsigned integer comparison.
std::uint64_t pack_candidate(weight_t w, eid_t canonical_arc) {
  PP_DCHECK(w >= 0);
  PP_DCHECK(canonical_arc >= 0 && canonical_arc < (eid_t{1} << 32));
  const std::uint32_t wbits = std::bit_cast<std::uint32_t>(w);
  return (static_cast<std::uint64_t>(wbits) << 32) |
         static_cast<std::uint32_t>(canonical_arc);
}

eid_t unpack_arc(std::uint64_t packed) {
  return static_cast<eid_t>(packed & 0xffffffffULL);
}

// FM push: cut arcs override the *neighbor* component's candidate slot
// (atomic minimum through the synchronized context).
template <class Graph>
struct FmPush {
  const Graph* g;
  const vid_t* comp;
  const eid_t* canonical;
  std::uint64_t* min_edge;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t e) const {
    const vid_t fs = comp[s];
    const vid_t fd = ctx.load(comp[d]);
    if (fd == fs) return false;
    ctx.instr().read(&g->weight_array()[static_cast<std::size_t>(e)],
                     sizeof(weight_t));
    ctx.min(min_edge[fd],
            pack_candidate(g->edge_weight(e),
                           canonical[static_cast<std::size_t>(e)]));
    return false;
  }
};

// FM pull, stage 1: each member vertex folds its best cut arc into its own
// cand[v] — thread-private, the defining pull property.
template <class Graph>
struct FmVertexPull {
  const Graph* g;
  const vid_t* comp;
  const eid_t* canonical;
  std::uint64_t* cand;

  template <class Ctx>
  void begin_dest(Ctx&, vid_t v) const {
    cand[v] = kNoEdge;
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t e) const {
    const vid_t fv = comp[v];
    const vid_t fu = ctx.load(comp[u]);
    if (fu == fv) return false;
    ctx.instr().read(&g->weight_array()[static_cast<std::size_t>(e)],
                     sizeof(weight_t));
    ctx.min(cand[v],
            pack_candidate(g->edge_weight(e),
                           canonical[static_cast<std::size_t>(e)]));
    return false;
  }
};

// FM pull, stage 2: min-reduce cand over the membership CSR. The iterated
// "vertex" is the index of a supervertex in the active list; its
// "in-neighbors" are the member vertices.
struct FmReduce {
  const vid_t* active;
  const std::uint64_t* cand;
  std::uint64_t* min_edge;

  template <class Ctx>
  void begin_dest(Ctx&, vid_t i) const {
    min_edge[active[i]] = kNoEdge;
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t member, vid_t i, eid_t) const {
    ctx.min(min_edge[active[i]], ctx.load(cand[member]));
    return false;
  }
};

template <class Instr>
BoruvkaResult run(const Csr& g, Direction dir, Instr instr) {
  PP_CHECK(g.has_weights() || g.num_arcs() == 0);
  PP_CHECK(g.num_arcs() < (eid_t{1} << 32));
  const vid_t n = g.n();
  BoruvkaResult result;
  if (n == 0) return result;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.track_output = false;

  // Arc source lookup and canonical (direction-independent) arc ids: one
  // vertex_map filling each vertex's (thread-owned) arc range.
  std::vector<vid_t> arc_src(static_cast<std::size_t>(g.num_arcs()));
  std::vector<eid_t> canonical(static_cast<std::size_t>(g.num_arcs()));
  engine::vertex_map(
      n, ws,
      [&](auto&, vid_t v) {
        for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
          arc_src[static_cast<std::size_t>(e)] = v;
          const vid_t w = g.edge_target(e);
          // Reverse arc: position of v in N(w) (sorted adjacency).
          const auto nb = g.neighbors(w);
          const auto it = std::lower_bound(nb.begin(), nb.end(), v);
          PP_DCHECK(it != nb.end() && *it == v);
          const eid_t rev = g.edge_begin(w) + (it - nb.begin());
          canonical[static_cast<std::size_t>(e)] = std::min(e, rev);
        }
        return false;
      },
      engine::VertexMapOptions{.track = false, .chunk = 256}, instr);

  std::vector<vid_t> comp(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(n));
  std::vector<vid_t> active;
  active.reserve(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    comp[static_cast<std::size_t>(v)] = v;
    members[static_cast<std::size_t>(v)] = {v};
    active.push_back(v);
  }

  std::vector<std::uint64_t> min_edge(static_cast<std::size_t>(n), kNoEdge);
  std::vector<std::uint64_t> cand(static_cast<std::size_t>(n), kNoEdge);
  std::vector<vid_t> parent(static_cast<std::size_t>(n));
  std::vector<vid_t> flat;  // member vertices of active supervertices
  flat.reserve(static_cast<std::size_t>(n));

  while (true) {
    BoruvkaPhaseTimes phases;

    // --- Phase 1: Find Minimum (FM) -------------------------------------
    {
      WallTimer t;
      // Flatten the active membership: the vertex set both FM directions map
      // over, and (for pull) the adjacency of the membership CSR.
      flat.clear();
      std::vector<eid_t> flat_off;
      flat_off.reserve(active.size() + 1);
      flat_off.push_back(0);
      for (vid_t f : active) {
        const auto& m = members[static_cast<std::size_t>(f)];
        flat.insert(flat.end(), m.begin(), m.end());
        flat_off.push_back(static_cast<eid_t>(flat.size()));
      }

      if (dir == Direction::Pull) {
        emo.region = 50;
        engine::sparse_pull(
            g, ws, std::span<const vid_t>(flat),
            FmVertexPull<Csr>{&g, comp.data(), canonical.data(), cand.data()},
            emo, instr);
        const Csr membership(std::move(flat_off), std::vector<vid_t>(flat));
        emo.region = 52;
        engine::dense_pull(
            membership, ws,
            FmReduce{active.data(), cand.data(), min_edge.data()}, emo, instr);
      } else {
        for (vid_t f : active) min_edge[static_cast<std::size_t>(f)] = kNoEdge;
        emo.region = 51;
        engine::sparse_push(
            g, ws, std::span<const vid_t>(flat),
            FmPush<Csr>{&g, comp.data(), canonical.data(), min_edge.data()},
            emo, instr);
      }
      phases.find_minimum_s = t.elapsed_s();
    }

    // --- Phase 2: Build Merge Tree (BMT) ----------------------------------
    bool any_merge = false;
    {
      WallTimer t;
      const std::span<const vid_t> active_span(active);
      // Hook every supervertex across its minimum edge. The canonical arc is
      // direction-free: the partner is whichever endpoint is not in f.
      engine::vertex_map(
          n, ws, active_span,
          [&](auto&, vid_t f) {
            const std::uint64_t c = min_edge[static_cast<std::size_t>(f)];
            if (c == kNoEdge) {
              parent[static_cast<std::size_t>(f)] = f;
              return false;
            }
            const eid_t arc = unpack_arc(c);
            const vid_t ca = comp[static_cast<std::size_t>(
                arc_src[static_cast<std::size_t>(arc)])];
            const vid_t cb = comp[static_cast<std::size_t>(g.edge_target(arc))];
            PP_DCHECK(ca == f || cb == f);
            parent[static_cast<std::size_t>(f)] = ca == f ? cb : ca;
            return false;
          },
          engine::VertexMapOptions{.track = false}, instr);
      // Break 2-cycles: the smaller endpoint becomes the root. Cycles longer
      // than 2 cannot occur thanks to the global edge order (see
      // pack_candidate).
      engine::vertex_map(
          n, ws, active_span,
          [&](auto&, vid_t f) {
            const vid_t p = parent[static_cast<std::size_t>(f)];
            if (p != f && parent[static_cast<std::size_t>(p)] == f && f < p) {
              parent[static_cast<std::size_t>(f)] = f;
            }
            return false;
          },
          engine::VertexMapOptions{.track = false}, instr);
      // Pointer jumping to full compression: rounds end when no parent moves.
      for (;;) {
        const engine::VertexSet changed = engine::vertex_map(
            n, ws, active_span,
            [&](auto&, vid_t f) {
              const vid_t p = parent[static_cast<std::size_t>(f)];
              const vid_t gp = parent[static_cast<std::size_t>(p)];
              if (p == gp) return false;
              parent[static_cast<std::size_t>(f)] = gp;
              return true;
            },
            engine::VertexMapOptions{.track = true}, instr);
        if (changed.empty()) break;
      }
      phases.build_merge_tree_s = t.elapsed_s();
    }

    // --- Phase 3: Merge (M) -------------------------------------------------
    {
      WallTimer t;
      std::vector<vid_t> next_active;
      for (vid_t f : active) {
        const vid_t root = parent[static_cast<std::size_t>(f)];
        if (root == f) {
          if (min_edge[static_cast<std::size_t>(f)] != kNoEdge) {
            next_active.push_back(f);
          }
          continue;
        }
        any_merge = true;
        // Record f's minimum edge in the MST (each non-root contributes
        // exactly one distinct edge of the merge forest).
        const eid_t arc = unpack_arc(min_edge[static_cast<std::size_t>(f)]);
        result.tree_edges.emplace_back(arc_src[static_cast<std::size_t>(arc)],
                                       g.edge_target(arc));
        result.total_weight += g.edge_weight(arc);
        // Move members into the root's list.
        auto& src = members[static_cast<std::size_t>(f)];
        auto& dst = members[static_cast<std::size_t>(root)];
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
        src.shrink_to_fit();
      }
      // Relabel vertices of merged components.
      engine::vertex_map(
          n, ws,
          [&](auto&, vid_t v) {
            comp[static_cast<std::size_t>(v)] =
                parent[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
            return false;
          },
          /*track=*/false, instr);
      active.swap(next_active);
      phases.merge_s = t.elapsed_s();
    }

    result.phase_times.push_back(phases);
    ++result.iterations;
    if (!any_merge) break;
  }
  return result;
}

}  // namespace

namespace detail {

BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, NullInstr instr) {
  return run(g, dir, instr);
}
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CountingInstr instr) {
  return run(g, dir, instr);
}
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CacheSimInstr instr) {
  return run(g, dir, instr);
}

}  // namespace detail

}  // namespace pushpull
