#include "core/mst_boruvka.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <limits>

#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

namespace {

constexpr std::uint64_t kNoEdge = std::numeric_limits<std::uint64_t>::max();

// Packs (weight, canonical arc) so that unsigned comparison orders by weight
// first and breaks ties by the *undirected* edge identity. Using a canonical
// arc id (the smaller of the two directions) gives every component the same
// global total order on cut edges, which guarantees the Boruvka hooking
// graph contains no cycles longer than 2 — even with fully tied weights.
// Valid for non-negative finite floats, whose IEEE bit patterns are monotone
// under unsigned integer comparison.
std::uint64_t pack_candidate(weight_t w, eid_t canonical_arc) {
  PP_DCHECK(w >= 0);
  PP_DCHECK(canonical_arc >= 0 && canonical_arc < (eid_t{1} << 32));
  const std::uint32_t wbits = std::bit_cast<std::uint32_t>(w);
  return (static_cast<std::uint64_t>(wbits) << 32) |
         static_cast<std::uint32_t>(canonical_arc);
}

eid_t unpack_arc(std::uint64_t packed) {
  return static_cast<eid_t>(packed & 0xffffffffULL);
}

template <class Instr>
BoruvkaResult run(const Csr& g, Direction dir, Instr instr) {
  PP_CHECK(g.has_weights() || g.num_arcs() == 0);
  PP_CHECK(g.num_arcs() < (eid_t{1} << 32));
  const vid_t n = g.n();
  BoruvkaResult result;
  if (n == 0) return result;

  // Arc source lookup and canonical (direction-independent) arc ids.
  std::vector<vid_t> arc_src(static_cast<std::size_t>(g.num_arcs()));
  std::vector<eid_t> canonical(static_cast<std::size_t>(g.num_arcs()));
  for (vid_t v = 0; v < n; ++v) {
    for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      arc_src[static_cast<std::size_t>(e)] = v;
    }
  }
#pragma omp parallel for schedule(dynamic, 256)
  for (vid_t v = 0; v < n; ++v) {
    for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      const vid_t w = g.edge_target(e);
      // Reverse arc: position of v in N(w) (sorted adjacency).
      const auto nb = g.neighbors(w);
      const auto it = std::lower_bound(nb.begin(), nb.end(), v);
      PP_DCHECK(it != nb.end() && *it == v);
      const eid_t rev = g.edge_begin(w) + (it - nb.begin());
      canonical[static_cast<std::size_t>(e)] = std::min(e, rev);
    }
  }

  std::vector<vid_t> comp(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(n));
  std::vector<vid_t> active;
  active.reserve(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    comp[static_cast<std::size_t>(v)] = v;
    members[static_cast<std::size_t>(v)] = {v};
    active.push_back(v);
  }

  std::vector<std::uint64_t> min_edge(static_cast<std::size_t>(n), kNoEdge);
  std::vector<vid_t> parent(static_cast<std::size_t>(n));

  while (true) {
    BoruvkaPhaseTimes phases;

    // --- Phase 1: Find Minimum (FM) -------------------------------------
    {
      WallTimer t;
      for (vid_t f : active) min_edge[static_cast<std::size_t>(f)] = kNoEdge;
      if (dir == Direction::Pull) {
        // Each supervertex picks its own minimum edge (thread-private write).
#pragma omp parallel for schedule(dynamic, 8)
        for (std::size_t i = 0; i < active.size(); ++i) {
          instr.code_region(50);
          const vid_t f = active[i];
          std::uint64_t best = kNoEdge;
          for (vid_t v : members[static_cast<std::size_t>(f)]) {
            for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
              const vid_t w = g.edge_target(e);
              instr.read(&comp[static_cast<std::size_t>(w)], sizeof(vid_t));
              instr.branch_cond();
              if (comp[static_cast<std::size_t>(w)] == f) continue;
              instr.read(&g.weight_array()[static_cast<std::size_t>(e)],
                         sizeof(weight_t));
              best = std::min(best,
                              pack_candidate(g.edge_weight(e),
                                             canonical[static_cast<std::size_t>(e)]));
            }
          }
          instr.write(&min_edge[static_cast<std::size_t>(f)], sizeof(std::uint64_t));
          min_edge[static_cast<std::size_t>(f)] = best;
        }
      } else {
        // Each supervertex overrides its *neighbors'* candidates (write
        // conflicts → CAS-accounted atomic minimum, §4.7). Every cut edge is
        // seen from both sides, so each slot still receives its true minimum.
#pragma omp parallel for schedule(dynamic, 8)
        for (std::size_t i = 0; i < active.size(); ++i) {
          instr.code_region(51);
          const vid_t f = active[i];
          for (vid_t v : members[static_cast<std::size_t>(f)]) {
            for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
              const vid_t w = g.edge_target(e);
              instr.read(&comp[static_cast<std::size_t>(w)], sizeof(vid_t));
              instr.branch_cond();
              const vid_t fw = comp[static_cast<std::size_t>(w)];
              if (fw == f) continue;
              instr.read(&g.weight_array()[static_cast<std::size_t>(e)],
                         sizeof(weight_t));
              const std::uint64_t cand = pack_candidate(
                  g.edge_weight(e), canonical[static_cast<std::size_t>(e)]);
              instr.atomic(&min_edge[static_cast<std::size_t>(fw)],
                           sizeof(std::uint64_t));
              atomic_min(min_edge[static_cast<std::size_t>(fw)], cand);
            }
          }
        }
      }
      phases.find_minimum_s = t.elapsed_s();
    }

    // --- Phase 2: Build Merge Tree (BMT) ----------------------------------
    bool any_merge = false;
    {
      WallTimer t;
      // Hook every supervertex across its minimum edge. The canonical arc is
      // direction-free: the partner is whichever endpoint is not in f.
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < active.size(); ++i) {
        const vid_t f = active[i];
        const std::uint64_t cand = min_edge[static_cast<std::size_t>(f)];
        if (cand == kNoEdge) {
          parent[static_cast<std::size_t>(f)] = f;
          continue;
        }
        const eid_t arc = unpack_arc(cand);
        const vid_t a = arc_src[static_cast<std::size_t>(arc)];
        const vid_t b = g.edge_target(arc);
        const vid_t ca = comp[static_cast<std::size_t>(a)];
        const vid_t cb = comp[static_cast<std::size_t>(b)];
        PP_DCHECK(ca == f || cb == f);
        parent[static_cast<std::size_t>(f)] = ca == f ? cb : ca;
      }
      // Break 2-cycles: the smaller endpoint becomes the root. Cycles longer
      // than 2 cannot occur thanks to the global edge order (see
      // pack_candidate).
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < active.size(); ++i) {
        const vid_t f = active[i];
        const vid_t p = parent[static_cast<std::size_t>(f)];
        if (p != f && parent[static_cast<std::size_t>(p)] == f && f < p) {
          parent[static_cast<std::size_t>(f)] = f;
        }
      }
      // Pointer jumping to full compression.
      bool changed = true;
      while (changed) {
        changed = false;
#pragma omp parallel for schedule(static) reduction(|| : changed)
        for (std::size_t i = 0; i < active.size(); ++i) {
          const vid_t f = active[i];
          const vid_t p = parent[static_cast<std::size_t>(f)];
          const vid_t gp = parent[static_cast<std::size_t>(p)];
          if (p != gp) {
            parent[static_cast<std::size_t>(f)] = gp;
            changed = true;
          }
        }
      }
      phases.build_merge_tree_s = t.elapsed_s();
    }

    // --- Phase 3: Merge (M) -------------------------------------------------
    {
      WallTimer t;
      std::vector<vid_t> next_active;
      for (vid_t f : active) {
        const vid_t root = parent[static_cast<std::size_t>(f)];
        if (root == f) {
          if (min_edge[static_cast<std::size_t>(f)] != kNoEdge) {
            next_active.push_back(f);
          }
          continue;
        }
        any_merge = true;
        // Record f's minimum edge in the MST (each non-root contributes
        // exactly one distinct edge of the merge forest).
        const eid_t arc = unpack_arc(min_edge[static_cast<std::size_t>(f)]);
        result.tree_edges.emplace_back(arc_src[static_cast<std::size_t>(arc)],
                                       g.edge_target(arc));
        result.total_weight += g.edge_weight(arc);
        // Move members into the root's list.
        auto& src = members[static_cast<std::size_t>(f)];
        auto& dst = members[static_cast<std::size_t>(root)];
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
        src.shrink_to_fit();
      }
      // Relabel vertices of merged components.
#pragma omp parallel for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        const vid_t f = comp[static_cast<std::size_t>(v)];
        comp[static_cast<std::size_t>(v)] = parent[static_cast<std::size_t>(f)];
      }
      active.swap(next_active);
      phases.merge_s = t.elapsed_s();
    }

    result.phase_times.push_back(phases);
    ++result.iterations;
    if (!any_merge) break;
  }
  return result;
}

}  // namespace

namespace detail {

BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, NullInstr instr) {
  return run(g, dir, instr);
}
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CountingInstr instr) {
  return run(g, dir, instr);
}
BoruvkaResult mst_boruvka_impl(const Csr& g, Direction dir, CacheSimInstr instr) {
  return run(g, dir, instr);
}

}  // namespace detail

}  // namespace pushpull
