// Generalized BFS (Algorithm 3, verbatim semantics), on the engine substrate.
//
// The paper defines BFS over (a) per-vertex *ready counters* — a vertex
// enters the frontier only after `ready[v]` of its neighbors have been in
// the frontier (1 = standard BFS; the in-degree of a DAG = the backward
// sweep of betweenness centrality) — and (b) a commutative, associative
// *accumulation operator* ⇐ that folds predecessor values into each vertex.
//
// Both directions are edge_map functors over a graph view (the semiring hook
// is the functor's captured `op`):
//
//   push — engine::sparse_push over out-arcs: each frontier vertex folds its
//          value into every still-ready neighbor (guarded by the striped-lock
//          critical section, lines 12-14) and decrements the neighbor's
//          counter with ctx.fetch_add; the update whose FAA returns 1 dropped
//          the counter to zero and enqueues the vertex (lines 15-17). The
//          engine's k-filter replaces the hand-rolled my_F merge (line 8).
//   pull — engine::dense_pull over in-arcs: every still-ready vertex scans
//          for frontier members, folds their values with thread-private
//          writes and decrements its own counter; kBreakOnUpdate stops the
//          scan the moment the counter is exhausted (lines 19-26).
//
// Both directions accumulate from a vertex only while its counter is
// positive, so with exact ready counts every required predecessor contributes
// exactly once — which also makes the engine's fused per-edge push round
// (fold + decrement per arc) fold-identical to the frozen two-phase original
// in core/baselines/legacy_kernels.hpp.
#pragma once

#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "engine/edge_map.hpp"
#include "engine/graph_view.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

template <class T>
struct GeneralizedBfsResult {
  std::vector<T> values;
  int levels = 0;
  std::vector<std::size_t> frontier_sizes;  // f_i per while-loop iteration
};

namespace detail {

template <class T, class Op>
struct GenBfsPush {
  int* ready;
  T* values;
  const Op* op;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    // Lines 12-14: fold into d only while its counter is positive. Every
    // pending predecessor (this one included) still counts toward ready[d],
    // so with exact counts the guard never drops a required contribution.
    if (ctx.load(ready[d]) > 0) {
      ctx.critical(static_cast<std::size_t>(d),
                   [&] { (*op)(values[d], values[s]); });
    }
    // Lines 15-17: whoever drops the counter to zero owns the enqueue.
    return ctx.fetch_add(ready[d], -1) == 1;
  }
};

template <class T, class Op>
struct GenBfsPull {
  int* ready;
  T* values;
  const Op* op;
  const DenseFrontier* in_frontier;

  static constexpr bool kBreakOnUpdate = true;

  bool cond(vid_t v) const { return ready[v] > 0; }

  template <class Ctx>
  bool update(Ctx&, vid_t u, vid_t v, eid_t) const {
    if (!in_frontier->test(u)) return false;
    // Thread-private: v is owned by the iterating thread in pull mode.
    (*op)(values[v], values[u]);
    return --ready[v] == 0;  // counter exhausted: break (mirrors push)
  }
};

// View-generic core; the public Csr/Digraph overloads wrap it.
template <engine::GraphView View, class T, class Op, class Instr>
GeneralizedBfsResult<T> generalized_bfs_impl(const View& view,
                                             std::vector<int> ready,
                                             std::vector<T> initial_values,
                                             std::vector<vid_t> initial_frontier,
                                             Op op, Direction dir, Instr instr) {
  const vid_t n = view.n();
  PP_CHECK(ready.size() == static_cast<std::size_t>(n));
  PP_CHECK(initial_values.size() == static_cast<std::size_t>(n));

  GeneralizedBfsResult<T> result;
  result.values = std::move(initial_values);
  std::vector<T>& values = result.values;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  engine::VertexSet frontier(n, std::move(initial_frontier));
  for (vid_t v : frontier.ids()) {
    PP_CHECK(ready[static_cast<std::size_t>(v)] == 0);
  }

  while (!frontier.empty()) {
    result.frontier_sizes.push_back(frontier.size());
    ++result.levels;
    if (dir == Direction::Push) {
      emo.region = 80;
      frontier = engine::sparse_push(
          view, ws, frontier,
          GenBfsPush<T, Op>{ready.data(), values.data(), &op}, emo, instr);
    } else {
      emo.region = 81;
      // The VertexSet's cached dense view is the membership bitmap the pull
      // functor scans; the functor only borrows it for this one map call.
      frontier = engine::dense_pull(
          view, ws,
          GenBfsPull<T, Op>{ready.data(), values.data(), &op,
                            &frontier.dense()},
          emo, instr);
    }
  }
  return result;
}

}  // namespace detail

// `op(target, source)` folds a frontier neighbor's value into the target's.
template <class T, class Op, class Instr = NullInstr>
GeneralizedBfsResult<T> generalized_bfs(const Csr& g, std::vector<int> ready,
                                        std::vector<T> initial_values,
                                        std::vector<vid_t> initial_frontier,
                                        Op op, Direction dir, Instr instr = {}) {
  return detail::generalized_bfs_impl(engine::SymmetricView(g), std::move(ready),
                                      std::move(initial_values),
                                      std::move(initial_frontier), op, dir,
                                      instr);
}

// Directed generalization (§4.8): push folds along *out*-arcs, pull gathers
// along *in*-arcs — ready counters on a DAG are in-degrees, making the
// topological wavefront explicit.
template <class T, class Op, class Instr = NullInstr>
GeneralizedBfsResult<T> generalized_bfs(const Digraph& g, std::vector<int> ready,
                                        std::vector<T> initial_values,
                                        std::vector<vid_t> initial_frontier,
                                        Op op, Direction dir, Instr instr = {}) {
  return detail::generalized_bfs_impl(engine::DigraphView(g), std::move(ready),
                                      std::move(initial_values),
                                      std::move(initial_frontier), op, dir,
                                      instr);
}

}  // namespace pushpull
