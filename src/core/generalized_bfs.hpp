// Generalized BFS (Algorithm 3, verbatim semantics).
//
// The paper defines BFS over (a) per-vertex *ready counters* — a vertex
// enters the frontier only after `ready[v]` of its neighbors have been in
// the frontier (1 = standard BFS; the in-degree of a DAG = the backward
// sweep of betweenness centrality) — and (b) a commutative, associative
// *accumulation operator* ⇐ that folds predecessor values into each vertex.
//
//   push — frontier vertices accumulate into every still-ready neighbor
//          (shared writes, guarded per-vertex) and decrement its counter
//          with FAA; the thread that drops a counter to zero appends the
//          vertex to its private my_F buffer (lines 10-17),
//   pull — every still-ready vertex scans its neighbors for frontier
//          members, folds their values locally and decrements its own
//          counter (lines 19-26).
//
// The frontiers are merged with the k-filter (FrontierBuffers::merge_into,
// line 8). Both directions accumulate from a vertex only while its counter
// is positive, so with exact ready counts every required predecessor
// contributes exactly once.
#pragma once

#include <omp.h>

#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "sync/spinlock.hpp"
#include "util/check.hpp"

namespace pushpull {

template <class T>
struct GeneralizedBfsResult {
  std::vector<T> values;
  int levels = 0;
  std::vector<std::size_t> frontier_sizes;  // f_i per while-loop iteration
};

// `op(target, source)` folds a frontier neighbor's value into the target's.
template <class T, class Op, class Instr = NullInstr>
GeneralizedBfsResult<T> generalized_bfs(const Csr& g, std::vector<int> ready,
                                        std::vector<T> initial_values,
                                        std::vector<vid_t> initial_frontier,
                                        Op op, Direction dir, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(ready.size() == static_cast<std::size_t>(n));
  PP_CHECK(initial_values.size() == static_cast<std::size_t>(n));

  GeneralizedBfsResult<T> result;
  result.values = std::move(initial_values);
  std::vector<T>& values = result.values;

  FrontierBuffers buffers(omp_get_max_threads());
  DenseFrontier in_frontier(n);
  std::vector<vid_t> frontier = std::move(initial_frontier);
  for (vid_t v : frontier) {
    PP_CHECK(ready[static_cast<std::size_t>(v)] == 0);
  }
  SpinlockPool locks(4096);

  while (!frontier.empty()) {
    result.frontier_sizes.push_back(frontier.size());
    ++result.levels;
    if (dir == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        instr.code_region(80);
        const vid_t v = frontier[i];
        // Lines 12-14: accumulate into every still-ready neighbor.
        for (vid_t w : g.neighbors(v)) {
          instr.read(&ready[static_cast<std::size_t>(w)], sizeof(int));
          instr.branch_cond();
          if (atomic_load(ready[static_cast<std::size_t>(w)]) > 0) {
            instr.lock(&values[static_cast<std::size_t>(w)]);
            SpinGuard guard(locks.for_index(static_cast<std::size_t>(w)));
            op(values[static_cast<std::size_t>(w)], values[static_cast<std::size_t>(v)]);
          }
        }
        // Lines 15-17: decrement; whoever reaches zero appends to my_F.
        for (vid_t w : g.neighbors(v)) {
          instr.atomic(&ready[static_cast<std::size_t>(w)], sizeof(int));
          if (faa(ready[static_cast<std::size_t>(w)], -1) == 1) {
            buffers.push_local(w);
          }
        }
      }
    } else {
      in_frontier.build_from(frontier);
      // Lines 19-26: still-ready vertices pull from frontier neighbors.
#pragma omp parallel for schedule(dynamic, 256)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(81);
        if (ready[static_cast<std::size_t>(v)] <= 0) continue;
        for (vid_t w : g.neighbors(v)) {
          instr.read(in_frontier.data() + w, 1);
          instr.branch_cond();
          if (!in_frontier.test(w)) continue;
          // Thread-private: v is owned by the iterating thread.
          op(values[static_cast<std::size_t>(v)], values[static_cast<std::size_t>(w)]);
          if (--ready[static_cast<std::size_t>(v)] == 0) {
            buffers.push_local(v);
            break;  // counter exhausted: stop accumulating (mirrors push)
          }
        }
      }
    }
    buffers.merge_into(frontier);
  }
  return result;
}

}  // namespace pushpull
