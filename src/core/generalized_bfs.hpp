// Generalized BFS (Algorithm 3, verbatim semantics), on the engine substrate.
//
// The paper defines BFS over (a) per-vertex *ready counters* — a vertex
// enters the frontier only after `ready[v]` of its neighbors have been in
// the frontier (1 = standard BFS; the in-degree of a DAG = the backward
// sweep of betweenness centrality) — and (b) a commutative, associative
// *accumulation operator* ⇐ that folds predecessor values into each vertex.
//
// Both directions are edge_map functors over a graph view (the semiring hook
// is the functor's captured `op`):
//
//   push — engine::sparse_push over out-arcs: each frontier vertex folds its
//          value into every still-ready neighbor (guarded by the striped-lock
//          critical section, lines 12-14) and decrements the neighbor's
//          counter with ctx.fetch_add; the update whose FAA returns 1 dropped
//          the counter to zero and enqueues the vertex (lines 15-17). The
//          engine's k-filter replaces the hand-rolled my_F merge (line 8).
//   pull — engine::dense_pull over in-arcs: every still-ready vertex scans
//          for frontier members, folds their values with thread-private
//          writes and decrements its own counter; kBreakOnUpdate stops the
//          scan the moment the counter is exhausted (lines 19-26).
//
// Both directions accumulate from a vertex only while its counter is
// positive, so with exact ready counts every required predecessor contributes
// exactly once — which also makes the engine's fused per-edge push round
// (fold + decrement per arc) fold-identical to the frozen two-phase original
// in core/baselines/legacy_kernels.hpp.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "core/switch_defaults.hpp"
#include "engine/edge_map.hpp"
#include "engine/graph_view.hpp"
#include "engine/policy.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

template <class T>
struct GeneralizedBfsResult {
  std::vector<T> values;
  int levels = 0;
  std::vector<std::size_t> frontier_sizes;  // f_i per while-loop iteration
};

namespace detail {

template <class T, class Op>
struct GenBfsPush {
  int* ready;
  T* values;
  const Op* op;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    // Lines 12-14: fold into d only while its counter is positive. Every
    // pending predecessor (this one included) still counts toward ready[d],
    // so with exact counts the guard never drops a required contribution.
    if (ctx.load(ready[d]) > 0) {
      ctx.critical(static_cast<std::size_t>(d),
                   [&] { (*op)(values[d], values[s]); });
    }
    // Lines 15-17: whoever drops the counter to zero owns the enqueue.
    return ctx.fetch_add(ready[d], -1) == 1;
  }
};

template <class T, class Op>
struct GenBfsPull {
  int* ready;
  T* values;
  const Op* op;
  const DenseFrontier* in_frontier;

  static constexpr bool kBreakOnUpdate = true;

  bool cond(vid_t v) const { return ready[v] > 0; }

  template <class Ctx>
  bool update(Ctx&, vid_t u, vid_t v, eid_t) const {
    if (!in_frontier->test(u)) return false;
    // Thread-private: v is owned by the iterating thread in pull mode.
    (*op)(values[v], values[u]);
    return --ready[v] == 0;  // counter exhausted: break (mirrors push)
  }
};

// View-generic core; the public Csr/Digraph overloads wrap it.
template <engine::GraphView View, class T, class Op, class Instr>
GeneralizedBfsResult<T> generalized_bfs_impl(const View& view,
                                             std::vector<int> ready,
                                             std::vector<T> initial_values,
                                             std::vector<vid_t> initial_frontier,
                                             Op op, Direction dir, Instr instr) {
  const vid_t n = view.n();
  PP_CHECK(ready.size() == static_cast<std::size_t>(n));
  PP_CHECK(initial_values.size() == static_cast<std::size_t>(n));

  GeneralizedBfsResult<T> result;
  result.values = std::move(initial_values);
  std::vector<T>& values = result.values;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  engine::VertexSet frontier(n, std::move(initial_frontier));
  for (vid_t v : frontier.ids()) {
    PP_CHECK(ready[static_cast<std::size_t>(v)] == 0);
  }

  while (!frontier.empty()) {
    result.frontier_sizes.push_back(frontier.size());
    ++result.levels;
    if (dir == Direction::Push) {
      emo.region = 80;
      frontier = engine::sparse_push(
          view, ws, frontier,
          GenBfsPush<T, Op>{ready.data(), values.data(), &op}, emo, instr);
    } else {
      emo.region = 81;
      // The VertexSet's cached dense view is the membership bitmap the pull
      // functor scans; the functor only borrows it for this one map call.
      frontier = engine::dense_pull(
          view, ws,
          GenBfsPull<T, Op>{ready.data(), values.data(), &op,
                            &frontier.dense()},
          emo, instr);
    }
  }
  return result;
}

}  // namespace detail

// `op(target, source)` folds a frontier neighbor's value into the target's.
template <class T, class Op, class Instr = NullInstr>
GeneralizedBfsResult<T> generalized_bfs(const Csr& g, std::vector<int> ready,
                                        std::vector<T> initial_values,
                                        std::vector<vid_t> initial_frontier,
                                        Op op, Direction dir, Instr instr = {}) {
  return detail::generalized_bfs_impl(engine::SymmetricView(g), std::move(ready),
                                      std::move(initial_values),
                                      std::move(initial_frontier), op, dir,
                                      instr);
}

// Directed generalization (§4.8): push folds along *out*-arcs, pull gathers
// along *in*-arcs — ready counters on a DAG are in-degrees, making the
// topological wavefront explicit.
template <class T, class Op, class Instr = NullInstr>
GeneralizedBfsResult<T> generalized_bfs(const Digraph& g, std::vector<int> ready,
                                        std::vector<T> initial_values,
                                        std::vector<vid_t> initial_frontier,
                                        Op op, Direction dir, Instr instr = {}) {
  return detail::generalized_bfs_impl(engine::DigraphView(g), std::move(ready),
                                      std::move(initial_values),
                                      std::move(initial_frontier), op, dir,
                                      instr);
}

// --- Multi-source entries (the serving layer's batched pass) -----------------
//
// The serving layer (src/serve/) merges k concurrent single-source queries
// arriving within a batching window into ONE edge_map pass. Both entries are
// instances of the generalized-BFS semiring scheme above, specialized so one
// sweep carries all k lanes:
//
//   multi_source_bfs  — T = a 64-bit lane mask, ⇐ = bitwise OR, ready ≡ 1.
//     A vertex's value is the set of sources that have reached it; the
//     frontier is the set of vertices whose mask grew last round, so lane l's
//     level of v is the round in which bit l first entered v's mask. Each
//     lane's levels are exactly bfs_levels(view, sources[l]) — BFS levels are
//     direction-independent and exact, so batching is invisible to callers.
//
//   multi_source_sssp — T = a k-vector of tentative distances, ⇐ = per-lane
//     (min, +). Label-correcting relaxation to quiescence: every lane
//     converges to the unique least fixpoint of
//     dist[v] = min over in-arcs (u,v) of (dist[u] + w(u,v)), which is the
//     same float fixpoint Δ-stepping settles (relaxation values are always
//     left-to-right path sums and min over floats is exact), so each lane is
//     bit-identical to sssp_delta(g, sources[l], Δ, ·).dist for any Δ.

// Per-lane BFS levels of one batched pass, lane-major: levels[l * n + v] is
// lane l's level of v (-1 = unreachable from sources[l]).
struct MultiSourceBfsResult {
  std::vector<vid_t> levels;
  int lanes = 0;
  int rounds = 0;
  std::vector<std::size_t> frontier_sizes;

  // Lane l's levels as a standalone vector (what bfs_levels would return).
  std::vector<vid_t> lane(int l, vid_t n) const {
    const std::size_t off = static_cast<std::size_t>(l) * n;
    return std::vector<vid_t>(levels.begin() + off, levels.begin() + off + n);
  }
};

struct MultiSourceBfsOptions {
  engine::StrategyKind strategy = engine::StrategyKind::GenericSwitch;
  double alpha = kSwitchAlpha;
  double beta = kSwitchBeta;
};

namespace detail {

// Push lane-merge: fold the source's lane mask into the destination's
// next-round mask. The critical section makes read-modify-write of next[d]
// atomic across lanes; exactly the update that finds next[d] == 0 (the first
// contributor this round) enqueues d, so the output frontier is duplicate-free
// without dedup bitmaps.
struct MsBfsPush {
  const std::uint64_t* cur;
  const std::uint64_t* seen;
  std::uint64_t* next;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    const std::uint64_t m = cur[s] & ~ctx.load(seen[d]);
    if (m == 0) return false;
    bool first = false;
    ctx.critical(static_cast<std::size_t>(d), [&] {
      const std::uint64_t add = m & ~next[d];
      if (add != 0) {
        first = next[d] == 0;
        next[d] |= add;
      }
    });
    return first;
  }
};

// Pull lane-merge: a not-yet-fully-seen vertex scans its in-neighbors and ORs
// in their frontier masks (cur[u] != 0 iff u was in last round's frontier).
// Thread-private writes — v is owned by the iterating thread — preserving the
// zero-sync pull property. No early break: all k lanes must accumulate.
struct MsBfsPull {
  const std::uint64_t* cur;
  const std::uint64_t* seen;
  std::uint64_t* next;
  std::uint64_t full;

  bool cond(vid_t v) const { return (seen[v] & full) != full; }

  template <class Ctx>
  bool update(Ctx&, vid_t u, vid_t v, eid_t) const {
    const std::uint64_t add = cur[u] & ~seen[v] & ~next[v];
    if (add == 0) return false;
    const bool first = next[v] == 0;
    next[v] |= add;
    return first;
  }
};

}  // namespace detail

// One level-synchronous pass carrying up to 64 sources; direction chosen per
// round by the strategy's α/β controller exactly like single-source BFS.
// Duplicate sources are fine (lanes are independent).
template <engine::GraphView View, class Instr = NullInstr>
MultiSourceBfsResult multi_source_bfs(const View& view,
                                      std::span<const vid_t> sources,
                                      const MultiSourceBfsOptions& opt = {},
                                      Instr instr = {}) {
  const vid_t n = view.n();
  const int k = static_cast<int>(sources.size());
  PP_CHECK(k >= 1 && k <= 64);

  MultiSourceBfsResult r;
  r.lanes = k;
  r.levels.assign(static_cast<std::size_t>(n) * k, vid_t{-1});
  const std::uint64_t full =
      k == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;

  std::vector<std::uint64_t> cur(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> init;
  for (int l = 0; l < k; ++l) {
    const vid_t s = sources[static_cast<std::size_t>(l)];
    PP_CHECK(s >= 0 && s < n);
    r.levels[static_cast<std::size_t>(l) * n + s] = 0;
    if (cur[static_cast<std::size_t>(s)] == 0) init.push_back(s);
    cur[static_cast<std::size_t>(s)] |= std::uint64_t{1} << l;
    seen[static_cast<std::size_t>(s)] |= std::uint64_t{1} << l;
  }

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  engine::DirectionPolicy policy(
      opt.strategy, engine::DirectionParams{opt.alpha, opt.beta});
  engine::VertexSet frontier(n, std::move(init));
  const double total_work = static_cast<double>(view.num_arcs());

  while (!frontier.empty()) {
    r.frontier_sizes.push_back(frontier.size());
    const Direction dir = policy.choose(
        frontier.out_degree_sum(view), total_work,
        static_cast<double>(frontier.size()), static_cast<double>(n));
    engine::VertexSet out(n);
    if (dir == Direction::Push) {
      emo.region = 84;
      out = engine::sparse_push(
          view, ws, frontier,
          detail::MsBfsPush{cur.data(), seen.data(), next.data()}, emo, instr);
    } else {
      emo.region = 85;
      out = engine::dense_pull(
          view, ws,
          detail::MsBfsPull{cur.data(), seen.data(), next.data(), full}, emo,
          instr);
    }
    ++r.rounds;
    // Round epilogue: retire the old frontier's masks, record the round as
    // the level of every newly-set lane bit, then promote next → cur.
    for (const vid_t v : frontier.ids()) cur[static_cast<std::size_t>(v)] = 0;
    const std::span<const vid_t> out_ids = out.ids();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < out_ids.size(); ++i) {
      const vid_t v = out_ids[i];
      std::uint64_t bits = next[static_cast<std::size_t>(v)];
      seen[static_cast<std::size_t>(v)] |= bits;
      while (bits != 0) {
        const int l = std::countr_zero(bits);
        r.levels[static_cast<std::size_t>(l) * n + v] =
            static_cast<vid_t>(r.rounds);
        bits &= bits - 1;
      }
    }
    cur.swap(next);  // old cur is all-zero again: next round's scratch
    frontier = std::move(out);
  }
  return r;
}

// Per-lane tentative distances of one batched SSSP pass, lane-major like
// MultiSourceBfsResult (+inf = unreachable).
struct MultiSourceSsspResult {
  std::vector<weight_t> dist;
  int lanes = 0;
  int rounds = 0;

  std::vector<weight_t> lane(int l, vid_t n) const {
    const std::size_t off = static_cast<std::size_t>(l) * n;
    return std::vector<weight_t>(dist.begin() + off, dist.begin() + off + n);
  }
};

namespace detail {

// k-lane push relaxation. Distances are vertex-major in the working array
// (the k lanes of one vertex are contiguous — one cache line serves every
// lane of an edge relaxation); converted to lane-major on return. Racy reads
// of the source lanes are safe: distances only decrease, so a stale (larger)
// read merely delays convergence and a fresh (smaller) read is itself a valid
// path sum.
template <CsrLike G>
struct MsSsspRelax {
  const G* g;
  weight_t* dist;  // vertex-major scratch: dist[v * k + l]
  int k;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t e) const {
    const weight_t w = g->edge_weight(e);
    weight_t* ds = dist + static_cast<std::size_t>(s) * k;
    weight_t* dd = dist + static_cast<std::size_t>(d) * k;
    bool improved = false;
    for (int l = 0; l < k; ++l) {
      const weight_t sv = atomic_load(ds[l]);
      if (sv == std::numeric_limits<weight_t>::infinity()) continue;
      const weight_t nd = sv + w;
      if (nd < ctx.load(dd[l]) && ctx.min(dd[l], nd)) improved = true;
    }
    return improved;
  }
};

}  // namespace detail

// Label-correcting k-lane SSSP: relax out-arcs of every vertex whose lane
// vector improved last round, until quiescence. Push-only (a pull variant
// would rescan every unsettled vertex's full in-row per round for all lanes,
// which §4.4 already prices as the losing direction at these densities).
// Non-negative weights required, as with Δ-stepping.
template <CsrLike G, class Instr = NullInstr>
MultiSourceSsspResult multi_source_sssp(const G& g,
                                        std::span<const vid_t> sources,
                                        Instr instr = {}) {
  PP_CHECK(g.has_weights());
  const vid_t n = g.n();
  const int k = static_cast<int>(sources.size());
  PP_CHECK(k >= 1 && k <= 64);

  constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();
  std::vector<weight_t> dist(static_cast<std::size_t>(n) * k, kInf);
  std::vector<vid_t> init;
  for (int l = 0; l < k; ++l) {
    const vid_t s = sources[static_cast<std::size_t>(l)];
    PP_CHECK(s >= 0 && s < n);
    if (dist[static_cast<std::size_t>(s) * k + l] != 0) {
      if (std::find(init.begin(), init.end(), s) == init.end()) {
        init.push_back(s);
      }
      dist[static_cast<std::size_t>(s) * k + l] = 0;
    }
  }

  MultiSourceSsspResult r;
  r.lanes = k;
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 86;
  emo.dedup_output = true;  // improved vertices enter the next frontier once

  engine::VertexSet frontier(n, std::move(init));
  while (!frontier.empty()) {
    frontier = engine::sparse_push(
        g, ws, frontier, detail::MsSsspRelax<G>{&g, dist.data(), k}, emo,
        instr);
    ++r.rounds;
  }

  // Transpose the vertex-major scratch into the lane-major result layout.
  r.dist.assign(static_cast<std::size_t>(n) * k, kInf);
  for (vid_t v = 0; v < n; ++v) {
    for (int l = 0; l < k; ++l) {
      r.dist[static_cast<std::size_t>(l) * n + v] =
          dist[static_cast<std::size_t>(v) * k + l];
    }
  }
  return r;
}

}  // namespace pushpull
