// Triangle Counting (§3.2, §4.2, Algorithm 2) — NodeIterator parallelization.
//
// For every vertex v, each unordered neighbor pair {w1, w2} ⊆ N(v) is tested
// for adjacency (binary search on the sorted lists). When the edge exists:
//
//   pull — the center increments its own tc[v] (thread-private write),
//   push — the center increments tc[w1] and tc[w2] (remote writes → FAA
//          atomics); every triangle is then counted twice per vertex, so the
//          final counts are halved, exactly as in Algorithm 2.
//
// Both variants produce tc[v] = number of triangles containing v.
// `triangle_count_fast` is the production kernel (degree-ordered
// merge-intersection, each triangle discovered once); it is used by examples
// and verified against the push/pull variants in the test suite.
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull {

namespace detail {

// Binary search with instrumented probes.
template <class Instr>
bool instr_has_edge(const Csr& g, vid_t u, vid_t v, Instr& instr) {
  const auto nb = g.neighbors(u);
  std::size_t lo = 0, hi = nb.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    instr.read(&nb[mid], sizeof(vid_t));
    instr.branch_cond();
    if (nb[mid] == v) return true;
    if (nb[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace detail

// Pull-based NodeIterator: only local writes.
template <class Instr = NullInstr>
std::vector<std::int64_t> triangle_count_pull(const Csr& g, Instr instr = {}) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < g.n(); ++v) {
    instr.code_region(20);
    const auto nb = g.neighbors(v);
    std::int64_t local = 0;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        instr.read(&nb[i], sizeof(vid_t));
        instr.read(&nb[j], sizeof(vid_t));
        instr.branch_cond();
        if (detail::instr_has_edge(g, nb[i], nb[j], instr)) ++local;
      }
    }
    instr.write(&tc[static_cast<std::size_t>(v)], sizeof(std::int64_t));
    tc[static_cast<std::size_t>(v)] = local;
  }
  return tc;
}

// Push-based NodeIterator: remote FAA increments, halved at the end.
template <class Instr = NullInstr>
std::vector<std::int64_t> triangle_count_push(const Csr& g, Instr instr = {}) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < g.n(); ++v) {
    instr.code_region(21);
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        instr.read(&nb[i], sizeof(vid_t));
        instr.read(&nb[j], sizeof(vid_t));
        instr.branch_cond();
        if (detail::instr_has_edge(g, nb[i], nb[j], instr)) {
          // Write conflicts on integer counters → FAA (§4.2).
          instr.atomic(&tc[static_cast<std::size_t>(nb[i])], sizeof(std::int64_t));
          faa(tc[static_cast<std::size_t>(nb[i])], std::int64_t{1});
          instr.atomic(&tc[static_cast<std::size_t>(nb[j])], sizeof(std::int64_t));
          faa(tc[static_cast<std::size_t>(nb[j])], std::int64_t{1});
        }
      }
    }
  }
  // Each triangle was counted twice per vertex (once from each of the other
  // two centers).
#pragma omp parallel for schedule(static)
  for (vid_t v = 0; v < g.n(); ++v) {
    PP_DCHECK(tc[static_cast<std::size_t>(v)] % 2 == 0);
    tc[static_cast<std::size_t>(v)] /= 2;
  }
  return tc;
}

// Production kernel: rank vertices by (degree, id); for every edge (u, v)
// with rank(u) < rank(v), intersect the higher-ranked tails of both lists.
// Discovers each triangle exactly once and credits all three corners.
std::vector<std::int64_t> triangle_count_fast(const Csr& g);

// Sum of per-vertex counts / 3 = number of distinct triangles.
std::int64_t total_triangles(const std::vector<std::int64_t>& tc);

}  // namespace pushpull
