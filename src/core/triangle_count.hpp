// Triangle Counting (§3.2, §4.2, Algorithm 2) on the engine substrate.
//
// The NodeIterator variants are vertex maps — the per-center unordered pair
// loop {w1, w2} ⊆ N(v) is the functor's work, the engine owns the sweep and
// the sync policy:
//
//   pull — engine::vertex_map (PlainCtx): the center increments its own
//          tc[v]; one thread-private write per vertex, zero atomics.
//   push — engine::vertex_map with a *synchronized* context (AtomicCtx): the
//          center increments tc[w1] and tc[w2] — remote writes → FAA atomics
//          (§4.2); every triangle is counted twice per vertex, so the final
//          counts are halved, exactly as in Algorithm 2.
//
// `triangle_count_fast` is the production kernel: the degree-ordered
// orientation is the out-half of a DigraphView (forward lists = out-CSR,
// backward lists = its transpose), and the kernel is one engine::dense_push
// over that out-CSR — push never walks in-arcs, so the backward half is
// never materialized — whose per-arc update merge-intersects the two
// forward lists: each triangle discovered once, all three corners credited
// with FAA.
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "engine/edge_map.hpp"
#include "engine/graph_view.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull {

namespace detail {

// Binary search with instrumented probes.
template <class Instr>
bool instr_has_edge(const Csr& g, vid_t u, vid_t v, Instr& instr) {
  const auto nb = g.neighbors(u);
  std::size_t lo = 0, hi = nb.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    instr.read(&nb[mid], sizeof(vid_t));
    instr.branch_cond();
    if (nb[mid] == v) return true;
    if (nb[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace detail

// Pull-based NodeIterator: only local writes.
template <class Instr = NullInstr>
std::vector<std::int64_t> triangle_count_pull(const Csr& g, Instr instr = {}) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
  engine::Workspace ws(g.n());
  engine::vertex_map(
      g.n(), ws,
      [&g, tcp = tc.data()](auto& ctx, vid_t v) {
        ctx.instr().code_region(20);
        const auto nb = g.neighbors(v);
        std::int64_t local = 0;
        for (std::size_t i = 0; i < nb.size(); ++i) {
          for (std::size_t j = i + 1; j < nb.size(); ++j) {
            ctx.instr().read(&nb[i], sizeof(vid_t));
            ctx.instr().read(&nb[j], sizeof(vid_t));
            ctx.instr().branch_cond();
            if (detail::instr_has_edge(g, nb[i], nb[j], ctx.instr())) ++local;
          }
        }
        ctx.store(tcp[static_cast<std::size_t>(v)], local);
        return false;
      },
      engine::VertexMapOptions{.track = false, .chunk = 64}, instr);
  return tc;
}

// Push-based NodeIterator: remote FAA increments, halved at the end.
template <class Instr = NullInstr>
std::vector<std::int64_t> triangle_count_push(const Csr& g, Instr instr = {}) {
  std::vector<std::int64_t> tc(static_cast<std::size_t>(g.n()), 0);
  engine::Workspace ws(g.n());
  engine::vertex_map(
      g.n(), ws,
      [&g, tcp = tc.data()](auto& ctx, vid_t v) {
        ctx.instr().code_region(21);
        const auto nb = g.neighbors(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          for (std::size_t j = i + 1; j < nb.size(); ++j) {
            ctx.instr().read(&nb[i], sizeof(vid_t));
            ctx.instr().read(&nb[j], sizeof(vid_t));
            ctx.instr().branch_cond();
            if (detail::instr_has_edge(g, nb[i], nb[j], ctx.instr())) {
              // Write conflicts on integer counters → FAA (§4.2).
              ctx.add(tcp[static_cast<std::size_t>(nb[i])], std::int64_t{1});
              ctx.add(tcp[static_cast<std::size_t>(nb[j])], std::int64_t{1});
            }
          }
        }
        return false;
      },
      engine::VertexMapOptions{.track = false, .synchronized = true,
                               .chunk = 64},
      instr);
  // Each triangle was counted twice per vertex (once from each of the other
  // two centers).
  engine::vertex_map(
      g.n(), ws,
      [tcp = tc.data()](auto&, vid_t v) {
        PP_DCHECK(tcp[static_cast<std::size_t>(v)] % 2 == 0);
        tcp[static_cast<std::size_t>(v)] /= 2;
        return false;
      },
      /*track=*/false, instr);
  return tc;
}

// Production kernel: rank vertices by (degree, id); the forward (higher-
// ranked) adjacency forms a degree-ordered DigraphView, and one dense_push
// over it intersects the forward lists of each arc's endpoints. Discovers
// each triangle exactly once and credits all three corners.
std::vector<std::int64_t> triangle_count_fast(const Csr& g);

// Sum of per-vertex counts / 3 = number of distinct triangles.
std::int64_t total_triangles(const std::vector<std::int64_t>& tc);

}  // namespace pushpull
