// Push/pull Prim (§3.7 refers the Prim/Kruskal variants to the paper's
// technical report; this is the Prim half), on the engine substrate.
//
// Prim grows one tree by repeatedly attaching the unreached vertex with the
// cheapest connecting edge. The paper's point stands: the algorithm is
// inherently sequential across rounds (which is why the evaluation uses
// Boruvka), but each round's *relaxation* still exhibits the dichotomy:
//
//   push — engine::sparse_push over the single-member frontier {u}: the
//          freshly attached vertex writes the keys of its unreached
//          neighbors. With one attach per round the writes are conflict-free,
//          which is exactly what Sync::Plain expresses — they still cross
//          ownership and are counted as writes, just not synchronized.
//   pull — engine::vertex_map: every unreached vertex probes whether u is
//          among its neighbors (O(log d̂) binary search — a per-vertex probe,
//          not an edge scan) and lowers its own key; thread-private writes,
//          the communication-heavy side.
//
// Handles disconnected graphs by seeding a new tree whenever the reachable
// set is exhausted (minimum spanning forest).
#pragma once

#include <omp.h>

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct PrimResult {
  double total_weight = 0.0;
  std::vector<vid_t> parent;  // tree parent; -1 for roots
  int rounds = 0;
};

namespace detail {

// One relaxation round, push side: u scatters its edge weights into the
// unreached neighbors' keys (conflict-free: a single source per round).
struct PrimRelax {
  const Csr* g;
  const std::uint8_t* in_tree;
  weight_t* key;
  vid_t* parent;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t e) const {
    if (in_tree[v]) return false;
    const weight_t wt = g->edge_weight(e);
    // Remote write: v is owned by another thread's block.
    if (ctx.min(key[v], wt)) {
      parent[v] = u;
    }
    return false;
  }
};

}  // namespace detail

template <class Instr = NullInstr>
PrimResult mst_prim(const Csr& g, Direction dir, Instr instr = {}) {
  PP_CHECK(g.has_weights() || g.num_arcs() == 0);
  const vid_t n = g.n();
  constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();

  PrimResult result;
  result.parent.assign(static_cast<std::size_t>(n), -1);
  std::vector<weight_t> key(static_cast<std::size_t>(n), kInf);
  std::vector<std::uint8_t> in_tree(static_cast<std::size_t>(n), 0);

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.track_output = false;
  emo.sync = engine::Sync::Plain;  // one source per round: conflict-free

  for (vid_t attached = 0; attached < n; ++attached) {
    ++result.rounds;
    // Select the cheapest unreached vertex (packed min-reduction).
    std::uint64_t best = UINT64_MAX;
#pragma omp parallel for reduction(min : best) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const std::uint32_t kbits =
          key[static_cast<std::size_t>(v)] == kInf
              ? 0xffffffffu
              : std::bit_cast<std::uint32_t>(key[static_cast<std::size_t>(v)]);
      const std::uint64_t packed =
          (static_cast<std::uint64_t>(kbits) << 32) | static_cast<std::uint32_t>(v);
      best = std::min(best, packed);
    }
    PP_DCHECK(best != UINT64_MAX);
    const vid_t u = static_cast<vid_t>(best & 0xffffffffu);
    in_tree[static_cast<std::size_t>(u)] = 1;
    if (key[static_cast<std::size_t>(u)] != kInf) {
      result.total_weight += key[static_cast<std::size_t>(u)];
    } else {
      result.parent[static_cast<std::size_t>(u)] = -1;  // new component root
    }

    if (dir == Direction::Push) {
      emo.region = 90;
      engine::sparse_push(
          g, ws, std::span<const vid_t>(&u, 1),
          detail::PrimRelax{&g, in_tree.data(), key.data(),
                            result.parent.data()},
          emo, instr);
    } else {
      // Every unreached vertex pulls: is u among my neighbors?
      engine::vertex_map(
          n, ws,
          [&](auto& ctx, vid_t v) {
            ctx.instr().code_region(91);
            if (in_tree[static_cast<std::size_t>(v)]) return false;
            const auto nb = g.neighbors(v);
            const auto it = std::lower_bound(nb.begin(), nb.end(), u);
            ctx.instr().read(&*nb.begin(), sizeof(vid_t));
            ctx.instr().branch_cond();
            if (it == nb.end() || *it != u) return false;
            const weight_t wt =
                g.weights(v)[static_cast<std::size_t>(it - nb.begin())];
            // Thread-private write: v updates its own key.
            if (ctx.min(key[static_cast<std::size_t>(v)], wt)) {
              result.parent[static_cast<std::size_t>(v)] = u;
            }
            return false;
          },
          engine::VertexMapOptions{.track = false, .chunk = 256}, instr);
    }
  }
  return result;
}

}  // namespace pushpull

