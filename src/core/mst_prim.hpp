// Push/pull Prim (§3.7 refers the Prim/Kruskal variants to the paper's
// technical report; this is the Prim half).
//
// Prim grows one tree by repeatedly attaching the unreached vertex with the
// cheapest connecting edge. The paper's point stands: the algorithm is
// inherently sequential across rounds (which is why the evaluation uses
// Boruvka), but each round's *relaxation* still exhibits the dichotomy:
//
//   push — the freshly attached vertex u writes the keys of its unreached
//          neighbors (t ≠ t[w]: remote writes; with one attach per round the
//          writes are conflict-free, but they still cross ownership and are
//          counted as such),
//   pull — every unreached vertex checks whether u is its neighbor and
//          lowers its own key (thread-private writes, O(n log d̂) reads per
//          round — the communication-heavy side).
//
// Handles disconnected graphs by seeding a new tree whenever the reachable
// set is exhausted (minimum spanning forest).
#pragma once

#include <omp.h>

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "core/direction.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct PrimResult {
  double total_weight = 0.0;
  std::vector<vid_t> parent;  // tree parent; -1 for roots
  int rounds = 0;
};

template <class Instr = NullInstr>
PrimResult mst_prim(const Csr& g, Direction dir, Instr instr = {}) {
  PP_CHECK(g.has_weights() || g.num_arcs() == 0);
  const vid_t n = g.n();
  constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();

  PrimResult result;
  result.parent.assign(static_cast<std::size_t>(n), -1);
  std::vector<weight_t> key(static_cast<std::size_t>(n), kInf);
  std::vector<std::uint8_t> in_tree(static_cast<std::size_t>(n), 0);

  for (vid_t attached = 0; attached < n; ++attached) {
    ++result.rounds;
    // Select the cheapest unreached vertex (packed min-reduction).
    std::uint64_t best = UINT64_MAX;
#pragma omp parallel for reduction(min : best) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const std::uint32_t kbits =
          key[static_cast<std::size_t>(v)] == kInf
              ? 0xffffffffu
              : std::bit_cast<std::uint32_t>(key[static_cast<std::size_t>(v)]);
      const std::uint64_t packed =
          (static_cast<std::uint64_t>(kbits) << 32) | static_cast<std::uint32_t>(v);
      best = std::min(best, packed);
    }
    PP_DCHECK(best != UINT64_MAX);
    const vid_t u = static_cast<vid_t>(best & 0xffffffffu);
    in_tree[static_cast<std::size_t>(u)] = 1;
    if (key[static_cast<std::size_t>(u)] != kInf) {
      result.total_weight += key[static_cast<std::size_t>(u)];
    } else {
      result.parent[static_cast<std::size_t>(u)] = -1;  // new component root
    }

    if (dir == Direction::Push) {
      // u pushes its edge weights into the unreached neighbors' keys.
      const auto nb = g.neighbors(u);
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < nb.size(); ++i) {
        instr.code_region(90);
        const vid_t v = nb[i];
        instr.branch_cond();
        if (in_tree[static_cast<std::size_t>(v)]) continue;
        const weight_t wt = g.weights(u)[i];
        if (wt < key[static_cast<std::size_t>(v)]) {
          // Remote write: v is owned by another thread's block.
          instr.write(&key[static_cast<std::size_t>(v)], sizeof(weight_t));
          key[static_cast<std::size_t>(v)] = wt;
          result.parent[static_cast<std::size_t>(v)] = u;
        }
      }
    } else {
      // Every unreached vertex pulls: is u among my neighbors?
#pragma omp parallel for schedule(dynamic, 256)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(91);
        if (in_tree[static_cast<std::size_t>(v)]) continue;
        const auto nb = g.neighbors(v);
        const auto it = std::lower_bound(nb.begin(), nb.end(), u);
        instr.read(&*nb.begin(), sizeof(vid_t));
        instr.branch_cond();
        if (it == nb.end() || *it != u) continue;
        const weight_t wt = g.weights(v)[static_cast<std::size_t>(it - nb.begin())];
        if (wt < key[static_cast<std::size_t>(v)]) {
          // Thread-private write: v updates its own key.
          instr.write(&key[static_cast<std::size_t>(v)], sizeof(weight_t));
          key[static_cast<std::size_t>(v)] = wt;
          result.parent[static_cast<std::size_t>(v)] = u;
        }
      }
    }
  }
  return result;
}

}  // namespace pushpull
