#include "core/directed.hpp"

namespace pushpull {

std::vector<double> pagerank_digraph_seq(const Digraph& g,
                                         const DirectedPageRankOptions& opt) {
  const vid_t n = g.out.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    double dangling = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      if (g.out.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    for (vid_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (vid_t u : g.in.neighbors(v)) {
        sum += pr[static_cast<std::size_t>(u)] / g.out.degree(u);
      }
      next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
    }
    pr.swap(next);
  }
  return pr;
}

}  // namespace pushpull
