#include "core/directed.hpp"

#include <numeric>
#include <utility>

namespace pushpull {

std::vector<double> pagerank_digraph_seq(const Digraph& g,
                                         const DirectedPageRankOptions& opt) {
  const vid_t n = g.out.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    double dangling = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      if (g.out.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    for (vid_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (vid_t u : g.in.neighbors(v)) {
        sum += pr[static_cast<std::size_t>(u)] / g.out.degree(u);
      }
      next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
    }
    pr.swap(next);
  }
  return pr;
}

namespace {

// Reachability closure from `seed` restricted to subproblem `sid`: rounds of
// sparse_push with the subproblem-filtered claim functor. Forward passes run
// over the view as given; backward passes receive view.reversed().
void reach_in_subproblem(const engine::DigraphView& view, engine::Workspace& ws,
                         vid_t seed, std::uint8_t* visited, const vid_t* sub,
                         vid_t sid) {
  engine::EdgeMapOptions emo;
  emo.region = 76;
  engine::VertexSet frontier = engine::VertexSet::single(view.n(), seed);
  while (!frontier.empty()) {
    frontier = engine::sparse_push(
        view, ws, frontier, detail::ReachClaim{visited, sub, sid}, emo);
  }
}

}  // namespace

std::vector<vid_t> scc_digraph(const Digraph& g) {
  const vid_t n = g.out.n();
  std::vector<vid_t> scc(static_cast<std::size_t>(n), -1);
  if (n == 0) return scc;
  PP_CHECK(g.in.n() == n);

  const engine::DigraphView view(g);
  engine::Workspace ws(n);
  std::vector<vid_t> sub(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> fw(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> bw(static_cast<std::size_t>(n), 0);

  // Explicit worklist of (subproblem id, member vertices): FW-BW recursion
  // can be path-deep on trivial-SCC graphs, so no call-stack recursion.
  std::vector<std::pair<vid_t, std::vector<vid_t>>> work;
  {
    std::vector<vid_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), vid_t{0});
    work.emplace_back(0, std::move(all));
  }
  vid_t next_sub = 1;
  vid_t comps = 0;

  while (!work.empty()) {
    auto [sid, verts] = std::move(work.back());
    work.pop_back();
    const vid_t pivot = verts.front();
    for (vid_t v : verts) {
      fw[static_cast<std::size_t>(v)] = 0;
      bw[static_cast<std::size_t>(v)] = 0;
    }
    fw[static_cast<std::size_t>(pivot)] = 1;
    bw[static_cast<std::size_t>(pivot)] = 1;
    reach_in_subproblem(view, ws, pivot, fw.data(), sub.data(), sid);
    reach_in_subproblem(view.reversed(), ws, pivot, bw.data(), sub.data(), sid);

    // SCC(pivot) = FW ∩ BW; the three remainders are independent subproblems.
    const vid_t comp_id = comps++;
    std::vector<vid_t> fw_only, bw_only, rest;
    for (vid_t v : verts) {
      const bool f = fw[static_cast<std::size_t>(v)] != 0;
      const bool b = bw[static_cast<std::size_t>(v)] != 0;
      if (f && b) {
        scc[static_cast<std::size_t>(v)] = comp_id;
      } else if (f) {
        fw_only.push_back(v);
      } else if (b) {
        bw_only.push_back(v);
      } else {
        rest.push_back(v);
      }
    }
    for (std::vector<vid_t>* part : {&fw_only, &bw_only, &rest}) {
      if (part->empty()) continue;
      const vid_t sid2 = next_sub++;
      for (vid_t v : *part) sub[static_cast<std::size_t>(v)] = sid2;
      work.emplace_back(sid2, std::move(*part));
    }
  }
  return scc;
}

}  // namespace pushpull
