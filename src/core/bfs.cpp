#include "core/bfs.hpp"

namespace pushpull {

bool validate_bfs(const Csr& g, vid_t root, const BfsResult& r) {
  const vid_t n = g.n();
  if (r.dist.size() != static_cast<std::size_t>(n) ||
      r.parent.size() != static_cast<std::size_t>(n)) {
    return false;
  }
  if (r.dist[static_cast<std::size_t>(root)] != 0) return false;
  if (r.parent[static_cast<std::size_t>(root)] != -1) return false;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t dv = r.dist[static_cast<std::size_t>(v)];
    const vid_t pv = r.parent[static_cast<std::size_t>(v)];
    if (dv < 0) {
      // Unreachable vertices must have no parent and no reachable neighbor.
      if (pv != -1) return false;
      for (vid_t u : g.neighbors(v)) {
        if (r.dist[static_cast<std::size_t>(u)] >= 0) return false;
      }
      continue;
    }
    if (v != root) {
      // Parent edge must exist and be exactly one level up.
      if (pv < 0 || pv >= n) return false;
      if (!g.has_edge(pv, v)) return false;
      if (r.dist[static_cast<std::size_t>(pv)] != dv - 1) return false;
    }
    // No edge may skip a level.
    for (vid_t u : g.neighbors(v)) {
      const vid_t du = r.dist[static_cast<std::size_t>(u)];
      if (du < 0) return false;  // neighbor of reachable vertex is reachable
      if (du > dv + 1 || dv > du + 1) return false;
    }
  }
  return true;
}

}  // namespace pushpull
