// Δ-Stepping single-source shortest paths (§3.4, §4.4, Algorithm 4), on the
// engine substrate.
//
// Vertices are grouped into buckets of width Δ by tentative distance and
// buckets are processed in order; within a bucket, relaxations repeat until
// the bucket stops changing (an *epoch* of inner iterations).
//
//   push — engine::dense_push over the active set: each active vertex relaxes
//          its out-edges; concurrent writes to d[w] resolve through
//          AtomicCtx::min (one CAS-accounted atomic per improving
//          relaxation). The engine's dedup bitmap plays active_next.
//   pull — engine::dense_pull: every unsettled vertex scans its neighbors for
//          members of the current bucket and relaxes *itself* through
//          PlainCtx (thread-private writes), re-reading all edges of all
//          unsettled vertices every inner iteration (the O((L/Δ)·m·l_Δ) read
//          conflicts of §4.4).
//
// Δ controls the tradeoff: Δ→∞ degenerates to Bellman-Ford (one big bucket),
// Δ→0 to Dijkstra-like settling. Figure 2c sweeps Δ.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct DeltaSteppingResult {
  std::vector<weight_t> dist;       // +inf = unreachable
  int epochs = 0;                   // number of processed buckets
  int inner_iterations = 0;         // total relaxation rounds
  std::vector<double> epoch_times;  // wall seconds per bucket epoch
};

// Δ-bucket arithmetic, public so the distributed Δ-stepping kernel
// (dist/sssp_dist.hpp) reuses exactly the same mapping instead of copying it:
// any divergence here would silently break the dist-vs-core equality tests.
inline constexpr weight_t kInfWeight = std::numeric_limits<weight_t>::infinity();

inline std::int64_t bucket_of(weight_t d, weight_t delta) noexcept {
  return d == kInfWeight ? std::numeric_limits<std::int64_t>::max()
                         : static_cast<std::int64_t>(d / delta);
}

namespace detail {

inline constexpr weight_t kInf = kInfWeight;

using pushpull::bucket_of;

// Smallest bucket index > b over all vertices; max() if none.
inline std::int64_t next_bucket(const std::vector<weight_t>& d, weight_t delta,
                                std::int64_t b) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for reduction(min : best) schedule(static)
  for (std::size_t v = 0; v < d.size(); ++v) {
    const std::int64_t bv = bucket_of(d[v], delta);
    if (bv > b && bv < best) best = bv;
  }
  return best;
}

// Push relaxation of one out-edge. Every improving CAS winner reports its
// target: the kernel routes same-bucket winners back into the running epoch
// and enqueues future-bucket winners into the BucketedVertexSet (positive
// weights make earlier-bucket landings impossible — nd > dv ≥ b·Δ).
template <CsrLike G>
struct SsspPushRelax {
  const G* g;
  weight_t* dist;
  weight_t delta;
  std::int64_t b;

  template <class Ctx>
  weight_t source_data(Ctx&, vid_t s) const {
    return atomic_load(dist[s]);
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t e, weight_t dv) const {
    const weight_t nd = dv + g->edge_weight(e);
    if (nd < ctx.load(dist[d])) {
      // Relaxation via CAS (write conflict, §4.4).
      if (ctx.min(dist[d], nd)) return true;
    }
    return false;
  }
};

// Pull relaxation: an unsettled vertex relaxes itself against bucket-b
// neighbors (only those that changed last round, after round 0). Arc ids stay
// global under every representation that reaches here (BlockedView blocks are
// cuts into the parent arrays), so indexing the weight array by e is safe.
template <CsrLike G>
struct SsspPullRelax {
  const G* g;
  weight_t* dist;
  const DenseFrontier* changed_last;  // null on the epoch's first round
  weight_t delta;
  std::int64_t b;

  bool cond(vid_t v) const { return bucket_of(dist[v], delta) >= b; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t w, vid_t v, eid_t e) const {
    const weight_t dw = ctx.load(dist[w]);
    if (bucket_of(dw, delta) != b) return false;
    if (changed_last != nullptr && !changed_last->test(w) && w != v) return false;
    ctx.instr().read(&g->weight_array()[static_cast<std::size_t>(e)],
                     sizeof(weight_t));
    const weight_t nd = dw + g->edge_weight(e);
    // Thread-private write: v is owned by the iterating thread.
    return ctx.min(dist[v], nd) && bucket_of(nd, delta) == b;
  }
};

}  // namespace detail

template <CsrLike G, class Instr = NullInstr>
DeltaSteppingResult sssp_delta_push(const G& g, vid_t src, weight_t delta,
                                    Instr instr = {}) {
  PP_CHECK(g.has_weights());
  PP_CHECK(src >= 0 && src < g.n());
  PP_CHECK(delta > 0);
  const vid_t n = g.n();
  DeltaSteppingResult r;
  r.dist.assign(static_cast<std::size_t>(n), detail::kInf);
  r.dist[static_cast<std::size_t>(src)] = 0;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 30;
  emo.dedup_output = true;  // the engine bitmap is Algorithm 4's active_next

  // The bucket structure IS the epoch driver: vertices are enqueued at their
  // tentative bucket the moment a relaxation wins, so finding the next
  // non-empty bucket is a pop instead of the old O(n) next_bucket reduction,
  // and the epoch's initial active set is the popped (validated, deduped)
  // bucket instead of an O(n) vertex_map filter. bucket_of maps +inf to
  // int64 max == kInfKey, so unreachable vertices are never scheduled.
  engine::BucketedVertexSet buckets(n);
  buckets.insert(src, 0);
  const auto key_of = [&](vid_t v, engine::BucketedVertexSet::key_t) {
    return bucket_of(r.dist[static_cast<std::size_t>(v)], delta);
  };

  std::vector<vid_t> members;
  std::int64_t b;
  while ((b = buckets.pop_bucket(members, key_of)) !=
         engine::BucketedVertexSet::kInfKey) {
    WallTimer epoch_timer;
    engine::VertexSet active(n, std::move(members));
    while (!active.empty()) {
      ++r.inner_iterations;
      engine::VertexSet out = engine::dense_push(
          g, ws, &active,
          detail::SsspPushRelax<G>{&g, r.dist.data(), delta, b}, emo, instr);
      // Split the improved targets: same-bucket winners re-activate within
      // this epoch (Algorithm 4's active_next), later-bucket winners enqueue
      // lazily — stale entries from further improvements are filtered at pop.
      active.clear();
      std::vector<vid_t>& next_ids = active.mutable_ids();
      for (const vid_t v : out.ids()) {
        const std::int64_t bv =
            bucket_of(r.dist[static_cast<std::size_t>(v)], delta);
        if (bv == b) {
          next_ids.push_back(v);
        } else {
          buckets.insert(v, bv);
        }
      }
    }
    r.epoch_times.push_back(epoch_timer.elapsed_s());
    ++r.epochs;
  }
  return r;
}

template <CsrLike G, class Instr = NullInstr>
DeltaSteppingResult sssp_delta_pull(const G& g, vid_t src, weight_t delta,
                                    Instr instr = {}) {
  PP_CHECK(g.has_weights());
  PP_CHECK(src >= 0 && src < g.n());
  PP_CHECK(delta > 0);
  const vid_t n = g.n();
  DeltaSteppingResult r;
  r.dist.assign(static_cast<std::size_t>(n), detail::kInf);
  r.dist[static_cast<std::size_t>(src)] = 0;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 31;

  std::int64_t b = 0;
  while (b != std::numeric_limits<std::int64_t>::max()) {
    WallTimer epoch_timer;
    engine::VertexSet changed(n);
    bool first_round = true;
    for (;;) {
      ++r.inner_iterations;
      engine::VertexSet out = engine::dense_pull(
          g, ws,
          detail::SsspPullRelax<G>{&g, r.dist.data(),
                                   first_round ? nullptr : &changed.dense(),
                                   delta, b},
          emo, instr);
      first_round = false;
      if (out.empty()) break;
      changed = std::move(out);
    }
    r.epoch_times.push_back(epoch_timer.elapsed_s());
    ++r.epochs;
    b = detail::next_bucket(r.dist, delta, b);
  }
  return r;
}

// Convenience dispatcher.
template <CsrLike G, class Instr = NullInstr>
DeltaSteppingResult sssp_delta(const G& g, vid_t src, weight_t delta,
                               Direction dir, Instr instr = {}) {
  return dir == Direction::Push ? sssp_delta_push(g, src, delta, instr)
                                : sssp_delta_pull(g, src, delta, instr);
}

}  // namespace pushpull
