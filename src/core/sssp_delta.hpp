// Δ-Stepping single-source shortest paths (§3.4, §4.4, Algorithm 4).
//
// Vertices are grouped into buckets of width Δ by tentative distance and
// buckets are processed in order; within a bucket, relaxations repeat until
// the bucket stops changing (an *epoch* of inner iterations).
//
//   push — each active vertex in the current bucket relaxes its out-edges:
//          concurrent writes to d[w] are resolved with CAS (atomic_min), one
//          CAS-accounted atomic per improving relaxation.
//   pull — every unsettled vertex scans its neighbors for members of the
//          current bucket and relaxes *itself*: writes are thread-private,
//          but all edges of all unsettled vertices are re-read every inner
//          iteration (the O((L/Δ)·m·l_Δ) read conflicts of §4.4).
//
// Δ controls the tradeoff: Δ→∞ degenerates to Bellman-Ford (one big bucket),
// Δ→0 to Dijkstra-like settling. Figure 2c sweeps Δ.
#pragma once

#include <omp.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/direction.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct DeltaSteppingResult {
  std::vector<weight_t> dist;       // +inf = unreachable
  int epochs = 0;                   // number of processed buckets
  int inner_iterations = 0;         // total relaxation rounds
  std::vector<double> epoch_times;  // wall seconds per bucket epoch
};

// Δ-bucket arithmetic, public so the distributed Δ-stepping kernel
// (dist/sssp_dist.hpp) reuses exactly the same mapping instead of copying it:
// any divergence here would silently break the dist-vs-core equality tests.
inline constexpr weight_t kInfWeight = std::numeric_limits<weight_t>::infinity();

inline std::int64_t bucket_of(weight_t d, weight_t delta) noexcept {
  return d == kInfWeight ? std::numeric_limits<std::int64_t>::max()
                         : static_cast<std::int64_t>(d / delta);
}

namespace detail {

inline constexpr weight_t kInf = kInfWeight;

using pushpull::bucket_of;

// Smallest bucket index > b over all vertices; max() if none.
inline std::int64_t next_bucket(const std::vector<weight_t>& d, weight_t delta,
                                std::int64_t b) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for reduction(min : best) schedule(static)
  for (std::size_t v = 0; v < d.size(); ++v) {
    const std::int64_t bv = bucket_of(d[v], delta);
    if (bv > b && bv < best) best = bv;
  }
  return best;
}

}  // namespace detail

template <class Instr = NullInstr>
DeltaSteppingResult sssp_delta_push(const Csr& g, vid_t src, weight_t delta,
                                    Instr instr = {}) {
  PP_CHECK(g.has_weights());
  PP_CHECK(src >= 0 && src < g.n());
  PP_CHECK(delta > 0);
  const vid_t n = g.n();
  DeltaSteppingResult r;
  r.dist.assign(static_cast<std::size_t>(n), detail::kInf);
  r.dist[static_cast<std::size_t>(src)] = 0;

  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> active_next(static_cast<std::size_t>(n), 0);

  std::int64_t b = 0;
  while (b != std::numeric_limits<std::int64_t>::max()) {
    WallTimer epoch_timer;
    // Initialize the epoch: all vertices currently in bucket b are active.
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      active[static_cast<std::size_t>(v)] =
          detail::bucket_of(r.dist[static_cast<std::size_t>(v)], delta) == b ? 1 : 0;
    }
    bool bucket_changed = true;
    while (bucket_changed) {
      ++r.inner_iterations;
      bucket_changed = false;
      bool changed = false;
#pragma omp parallel for schedule(dynamic, 128) reduction(|| : changed)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(30);
        if (!active[static_cast<std::size_t>(v)]) continue;
        active[static_cast<std::size_t>(v)] = 0;
        const weight_t dv = atomic_load(r.dist[static_cast<std::size_t>(v)]);
        const auto nb = g.neighbors(v);
        const auto wgt = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const vid_t w = nb[i];
          const weight_t nd = dv + wgt[i];
          instr.read(&r.dist[static_cast<std::size_t>(w)], sizeof(weight_t));
          instr.branch_cond();
          if (nd < atomic_load(r.dist[static_cast<std::size_t>(w)])) {
            // Relaxation via CAS (write conflict, §4.4).
            instr.atomic(&r.dist[static_cast<std::size_t>(w)], sizeof(weight_t));
            if (atomic_min(r.dist[static_cast<std::size_t>(w)], nd) &&
                detail::bucket_of(nd, delta) == b) {
              // w re-enters the current bucket: another inner iteration.
              atomic_store(active_next[static_cast<std::size_t>(w)], std::uint8_t{1});
              changed = true;
            }
          }
        }
      }
      if (changed) {
        bucket_changed = true;
        active.swap(active_next);
        std::fill(active_next.begin(), active_next.end(), std::uint8_t{0});
      }
    }
    r.epoch_times.push_back(epoch_timer.elapsed_s());
    ++r.epochs;
    b = detail::next_bucket(r.dist, delta, b);
  }
  return r;
}

template <class Instr = NullInstr>
DeltaSteppingResult sssp_delta_pull(const Csr& g, vid_t src, weight_t delta,
                                    Instr instr = {}) {
  PP_CHECK(g.has_weights());
  PP_CHECK(src >= 0 && src < g.n());
  PP_CHECK(delta > 0);
  const vid_t n = g.n();
  DeltaSteppingResult r;
  r.dist.assign(static_cast<std::size_t>(n), detail::kInf);
  r.dist[static_cast<std::size_t>(src)] = 0;

  // `active[w]` marks bucket-b vertices whose distance changed in the
  // previous inner iteration (the pull sources, line 24 of Algorithm 4).
  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> active_next(static_cast<std::size_t>(n), 0);

  std::int64_t b = 0;
  while (b != std::numeric_limits<std::int64_t>::max()) {
    WallTimer epoch_timer;
    int itr = 0;
    bool bucket_changed = true;
    while (bucket_changed) {
      ++r.inner_iterations;
      bucket_changed = false;
      bool changed = false;
#pragma omp parallel for schedule(dynamic, 128) reduction(|| : changed)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(31);
        const weight_t dv = r.dist[static_cast<std::size_t>(v)];
        // Unsettled vertices: everything not in a finished bucket. Vertices
        // inside bucket b may still improve via intra-bucket paths.
        if (detail::bucket_of(dv, delta) < b) continue;
        weight_t best = dv;
        vid_t improved_from = kInvalidVertex;
        const auto nb = g.neighbors(v);
        const auto wgt = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const vid_t w = nb[i];
          instr.read(&r.dist[static_cast<std::size_t>(w)], sizeof(weight_t));
          const weight_t dw = atomic_load(r.dist[static_cast<std::size_t>(w)]);
          instr.branch_cond();
          if (detail::bucket_of(dw, delta) != b) continue;
          if (itr != 0 && !atomic_load(active[static_cast<std::size_t>(w)]) &&
              w != v) {
            continue;
          }
          instr.read(&wgt[i], sizeof(weight_t));
          const weight_t nd = dw + wgt[i];
          instr.branch_cond();
          if (nd < best) {
            best = nd;
            improved_from = w;
          }
        }
        if (improved_from != kInvalidVertex) {
          // Thread-private write: v is owned by the iterating thread.
          instr.write(&r.dist[static_cast<std::size_t>(v)], sizeof(weight_t));
          atomic_store(r.dist[static_cast<std::size_t>(v)], best);
          if (detail::bucket_of(best, delta) == b) {
            active_next[static_cast<std::size_t>(v)] = 1;
            changed = true;
          }
        }
      }
      ++itr;
      if (changed) bucket_changed = true;
      active.swap(active_next);
      std::fill(active_next.begin(), active_next.end(), std::uint8_t{0});
    }
    r.epoch_times.push_back(epoch_timer.elapsed_s());
    ++r.epochs;
    b = detail::next_bucket(r.dist, delta, b);
  }
  return r;
}

// Convenience dispatcher.
template <class Instr = NullInstr>
DeltaSteppingResult sssp_delta(const Csr& g, vid_t src, weight_t delta,
                               Direction dir, Instr instr = {}) {
  return dir == Direction::Push ? sssp_delta_push(g, src, delta, instr)
                                : sssp_delta_pull(g, src, delta, instr);
}

}  // namespace pushpull
