#include "core/coloring.hpp"

#include <algorithm>

#include "core/baselines/baselines.hpp"
#include "core/frontier.hpp"

namespace pushpull {

namespace detail {

int resolve_max_colors(const Csr& g, const ColoringOptions& opt) {
  if (opt.max_colors > 0) return opt.max_colors;
  // Greedy needs at most d̂+1 colors; each conflict iteration can strike one
  // more availability bit, hence the + L headroom.
  const long long auto_c = static_cast<long long>(g.max_degree()) +
                           static_cast<long long>(opt.max_iterations) + 2;
  return static_cast<int>(std::min<long long>(auto_c, std::max<long long>(g.n(), 1)));
}

int resolve_partitions(const ColoringOptions& opt) {
  return opt.num_partitions > 0 ? opt.num_partitions : omp_get_max_threads();
}

namespace {

// Greedy maximal independent set in vertex order; members get color 0.
std::vector<vid_t> seed_stable_set(const Csr& g, std::vector<int>& color) {
  std::vector<vid_t> set;
  for (vid_t v = 0; v < g.n(); ++v) {
    bool free = true;
    for (vid_t u : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(u)] == 0) {
        free = false;
        break;
      }
    }
    if (free) {
      color[static_cast<std::size_t>(v)] = 0;
      set.push_back(v);
    }
  }
  return set;
}

// First-fit color respecting the current (partial) coloring.
int first_fit(const Csr& g, const std::vector<int>& color, vid_t v,
              std::vector<int>& mark, int stamp) {
  for (vid_t u : g.neighbors(v)) {
    const int cu = color[static_cast<std::size_t>(u)];
    if (cu >= 0 && cu < static_cast<int>(mark.size())) {
      mark[static_cast<std::size_t>(cu)] = stamp;
    }
  }
  int c = 0;
  while (mark[static_cast<std::size_t>(c)] == stamp) ++c;
  return c;
}

enum class FeMode { FixedPush, FixedPull, GenericSwitch, GreedySwitch };

ColoringResult fe_engine(const Csr& g, FeMode mode, const ColoringOptions& opt) {
  const vid_t n = g.n();
  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return r;

  std::vector<vid_t> frontier = seed_stable_set(g, r.color);
  vid_t colored = static_cast<vid_t>(frontier.size());
  int cur = 0;
  Direction dir = mode == FeMode::FixedPull ? Direction::Pull : Direction::Push;
  FrontierBuffers buffers(omp_get_max_threads());
  std::vector<vid_t> newly;

  while (colored < n) {
    WallTimer iter_timer;
    // Greedy-Switch: once the uncolored remainder is small, threads mostly
    // fight over the same vertices — finish sequentially (§5, GrS).
    if (mode == FeMode::GreedySwitch &&
        static_cast<double>(n - colored) < opt.grs_threshold * n) {
      std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
      int stamp = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (r.color[static_cast<std::size_t>(v)] >= 0) continue;
        r.color[static_cast<std::size_t>(v)] = first_fit(g, r.color, v, mark, stamp++);
        ++colored;
      }
      r.iter_times.push_back(iter_timer.elapsed_s());
      r.iter_conflicts.push_back(0);
      ++r.iterations;
      break;
    }

    const int wave_color = ++cur;
    // Claim phase.
    if (dir == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const vid_t v = frontier[i];
        for (vid_t u : g.neighbors(v)) {
          int expected = -1;
          if (atomic_load(r.color[static_cast<std::size_t>(u)]) == -1 &&
              cas(r.color[static_cast<std::size_t>(u)], expected, wave_color)) {
            buffers.push_local(u);
          }
        }
      }
    } else {
#pragma omp parallel for schedule(dynamic, 256)
      for (vid_t v = 0; v < n; ++v) {
        if (r.color[static_cast<std::size_t>(v)] != -1) continue;
        bool adjacent_to_frontier = false;
        bool wave_color_taken = false;
        for (vid_t u : g.neighbors(v)) {
          const int cu = atomic_load(r.color[static_cast<std::size_t>(u)]);
          if (cu == wave_color - 1) adjacent_to_frontier = true;
          if (cu == wave_color) wave_color_taken = true;
        }
        // Pull claims its own color and, unlike push, can already avoid
        // same-wave neighbors it observes — far fewer conflicts (§5, GS).
        if (adjacent_to_frontier && !wave_color_taken) {
          atomic_store(r.color[static_cast<std::size_t>(v)], wave_color);
          buffers.push_local(v);
        }
      }
    }
    buffers.merge_into(newly);

    // Disconnected remainder: seed the wave with the first uncolored vertex.
    if (newly.empty()) {
      for (vid_t v = 0; v < n; ++v) {
        if (r.color[static_cast<std::size_t>(v)] == -1) {
          r.color[static_cast<std::size_t>(v)] = wave_color;
          newly.push_back(v);
          break;
        }
      }
    }

    // Conflict fix among same-wave vertices: the larger id loses and is
    // uncolored again (it re-enters via a later wave with a fresh color).
    std::int64_t conflicts = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : conflicts)
    for (std::size_t i = 0; i < newly.size(); ++i) {
      const vid_t v = newly[i];
      for (vid_t u : g.neighbors(v)) {
        if (u < v &&
            atomic_load(r.color[static_cast<std::size_t>(u)]) == wave_color) {
          atomic_store(r.color[static_cast<std::size_t>(v)], -1);
          ++conflicts;
          break;
        }
      }
    }

    // Winners form the next frontier.
    frontier.clear();
    for (vid_t v : newly) {
      if (r.color[static_cast<std::size_t>(v)] == wave_color) {
        frontier.push_back(v);
        ++colored;
      }
    }

    r.iter_times.push_back(iter_timer.elapsed_s());
    r.iter_conflicts.push_back(conflicts);
    ++r.iterations;

    if (mode == FeMode::GenericSwitch && dir == Direction::Push) {
      // Switch once newly-colored vertices no longer dominate conflicts.
      const double ratio = static_cast<double>(frontier.size()) /
                           static_cast<double>(conflicts + 1);
      if (ratio < opt.gs_ratio) dir = Direction::Pull;
    }
    PP_CHECK(r.iterations <= 4 * n + 16);  // progress guard
  }

  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

}  // namespace
}  // namespace detail

ColoringResult fe_color(const Csr& g, Direction dir, const ColoringOptions& opt) {
  return detail::fe_engine(
      g, dir == Direction::Push ? detail::FeMode::FixedPush : detail::FeMode::FixedPull,
      opt);
}

ColoringResult gs_color(const Csr& g, const ColoringOptions& opt) {
  return detail::fe_engine(g, detail::FeMode::GenericSwitch, opt);
}

ColoringResult grs_color(const Csr& g, const ColoringOptions& opt) {
  return detail::fe_engine(g, detail::FeMode::GreedySwitch, opt);
}

ColoringResult cr_color(const Csr& g, const ColoringOptions& opt) {
  const vid_t n = g.n();
  const int nparts = detail::resolve_partitions(opt);
  const Partition1D part(n, nparts);

  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  WallTimer iter_timer;

  // Step 1: color the border set sequentially — no conflicts can be created
  // on cross-partition edges afterwards (both endpoints of any such edge are
  // border vertices).
  const std::vector<vid_t> border = border_vertices(g, part);
  {
    std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
    int stamp = 0;
    for (vid_t v : border) {
      r.color[static_cast<std::size_t>(v)] =
          detail::first_fit(g, r.color, v, mark, stamp++);
    }
  }

  // Step 2: every partition colors its interior in parallel; interior
  // vertices have all neighbors inside the partition or in the (already
  // colored, now read-only) border.
#pragma omp parallel num_threads(nparts)
  {
    const int t = omp_get_thread_num();
    std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
    int stamp = 0;
    for (vid_t v = part.begin(t); v < part.end(t); ++v) {
      if (r.color[static_cast<std::size_t>(v)] >= 0) continue;
      r.color[static_cast<std::size_t>(v)] =
          detail::first_fit(g, r.color, v, mark, stamp++);
    }
  }

  r.iter_times.push_back(iter_timer.elapsed_s());
  r.iter_conflicts.push_back(0);
  r.iterations = 1;
  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

}  // namespace pushpull
