#include "core/coloring.hpp"

#include <algorithm>

#include "core/baselines/baselines.hpp"
#include "engine/edge_map.hpp"
#include "engine/policy.hpp"

namespace pushpull {

namespace detail {

int resolve_max_colors(const Csr& g, const ColoringOptions& opt) {
  if (opt.max_colors > 0) return opt.max_colors;
  // Greedy needs at most d̂+1 colors; each conflict iteration can strike one
  // more availability bit, hence the + L headroom.
  const long long auto_c = static_cast<long long>(g.max_degree()) +
                           static_cast<long long>(opt.max_iterations) + 2;
  return static_cast<int>(std::min<long long>(auto_c, std::max<long long>(g.n(), 1)));
}

int resolve_partitions(const ColoringOptions& opt) {
  return opt.num_partitions > 0 ? opt.num_partitions : omp_get_max_threads();
}

namespace {

// Greedy maximal independent set in vertex order; members get color 0.
std::vector<vid_t> seed_stable_set(const Csr& g, std::vector<int>& color) {
  std::vector<vid_t> set;
  for (vid_t v = 0; v < g.n(); ++v) {
    bool free = true;
    for (vid_t u : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(u)] == 0) {
        free = false;
        break;
      }
    }
    if (free) {
      color[static_cast<std::size_t>(v)] = 0;
      set.push_back(v);
    }
  }
  return set;
}

// First-fit color respecting the current (partial) coloring.
int first_fit(const Csr& g, const std::vector<int>& color, vid_t v,
              std::vector<int>& mark, int stamp) {
  for (vid_t u : g.neighbors(v)) {
    const int cu = color[static_cast<std::size_t>(u)];
    if (cu >= 0 && cu < static_cast<int>(mark.size())) {
      mark[static_cast<std::size_t>(cu)] = stamp;
    }
  }
  int c = 0;
  while (mark[static_cast<std::size_t>(c)] == stamp) ++c;
  return c;
}

// Push claim: a frontier vertex grabs uncolored neighbors for this wave.
struct WaveClaimPush {
  int* color;
  int wave;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    if (atomic_load(color[d]) != -1) return false;
    return ctx.claim(color[d], -1, wave);
  }
};

// Pull claim, pass 1: an uncolored vertex records whether it borders the
// previous wave and whether this wave's color is already taken nearby
// (thread-private flag writes — v owns both scratch bytes).
struct WaveScanPull {
  int* color;
  std::uint8_t* adjacent;
  std::uint8_t* taken;
  int wave;

  bool cond(vid_t v) const { return color[v] == -1; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    const int cu = ctx.load(color[u]);
    if (cu == wave - 1) adjacent[v] = 1;
    if (cu == wave) taken[v] = 1;
    return false;
  }

  template <class Ctx>
  bool finalize(Ctx& ctx, vid_t v) const {
    // Pull claims its own color and, unlike push, can already avoid
    // same-wave neighbors it observes — far fewer conflicts (§5, GS).
    const bool claim = adjacent[v] != 0 && taken[v] == 0;
    if (claim) ctx.store(color[v], wave);
    adjacent[v] = 0;
    taken[v] = 0;
    return claim;
  }
};

// Conflict fix among same-wave vertices: the larger id loses and is uncolored
// again (it re-enters via a later wave with a fresh color).
struct WaveConflictFix {
  int* color;
  int wave;

  static constexpr bool kBreakOnUpdate = true;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (u < v && ctx.load(color[u]) == wave) {
      ctx.store(color[v], -1);
      return true;
    }
    return false;
  }
};

enum class FeMode { FixedPush, FixedPull, GenericSwitch, GreedySwitch };

// Frontier-Exploit wave coloring: every phase is an engine map; the modes
// differ only in the §5 policy driving them (fixed direction, GS flip, GrS
// sequential tail).
ColoringResult fe_engine(const Csr& g, FeMode mode, const ColoringOptions& opt) {
  const vid_t n = g.n();
  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return r;

  std::vector<vid_t> frontier = seed_stable_set(g, r.color);
  vid_t colored = static_cast<vid_t>(frontier.size());
  int cur = 0;
  Direction dir = mode == FeMode::FixedPull ? Direction::Pull : Direction::Push;
  engine::Workspace ws(n);
  std::vector<std::uint8_t> adjacent(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> taken(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> newly;

  while (colored < n) {
    WallTimer iter_timer;
    // Greedy-Switch: once the uncolored remainder is small, threads mostly
    // fight over the same vertices — finish sequentially (§5, GrS).
    if (mode == FeMode::GreedySwitch &&
        static_cast<double>(n - colored) < opt.grs_threshold * n) {
      std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
      int stamp = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (r.color[static_cast<std::size_t>(v)] >= 0) continue;
        r.color[static_cast<std::size_t>(v)] = first_fit(g, r.color, v, mark, stamp++);
        ++colored;
      }
      r.iter_times.push_back(iter_timer.elapsed_s());
      r.iter_conflicts.push_back(0);
      ++r.iterations;
      break;
    }

    const int wave_color = ++cur;
    // Claim phase: one engine map, loop shape picked by the direction.
    engine::VertexSet claimed(n);
    if (dir == Direction::Push) {
      claimed = engine::sparse_push(g, ws, std::span<const vid_t>(frontier),
                                    WaveClaimPush{r.color.data(), wave_color});
    } else {
      claimed = engine::dense_pull(
          g, ws,
          WaveScanPull{r.color.data(), adjacent.data(), taken.data(), wave_color});
    }
    newly = std::move(claimed.mutable_ids());

    // Disconnected remainder: seed the wave with the first uncolored vertex.
    if (newly.empty()) {
      for (vid_t v = 0; v < n; ++v) {
        if (r.color[static_cast<std::size_t>(v)] == -1) {
          r.color[static_cast<std::size_t>(v)] = wave_color;
          newly.push_back(v);
          break;
        }
      }
    }

    // Conflict fix over the newly claimed set (sparse pull: each loser
    // uncolors itself).
    engine::EdgeMapStats fix_stats;
    engine::EdgeMapOptions fix_opt;
    fix_opt.track_output = false;
    engine::sparse_pull(g, ws, std::span<const vid_t>(newly),
                        WaveConflictFix{r.color.data(), wave_color}, fix_opt,
                        NullInstr{}, &fix_stats);
    const std::int64_t conflicts = fix_stats.updates;

    // Winners form the next frontier.
    frontier.clear();
    for (vid_t v : newly) {
      if (r.color[static_cast<std::size_t>(v)] == wave_color) {
        frontier.push_back(v);
        ++colored;
      }
    }

    r.iter_times.push_back(iter_timer.elapsed_s());
    r.iter_conflicts.push_back(conflicts);
    ++r.iterations;

    if (mode == FeMode::GenericSwitch && dir == Direction::Push) {
      // Switch once newly-colored vertices no longer dominate conflicts.
      const double ratio = static_cast<double>(frontier.size()) /
                           static_cast<double>(conflicts + 1);
      if (ratio < opt.gs_ratio) dir = Direction::Pull;
    }
    PP_CHECK(r.iterations <= 4 * n + 16);  // progress guard
  }

  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

}  // namespace
}  // namespace detail

ColoringResult fe_color(const Csr& g, Direction dir, const ColoringOptions& opt) {
  return detail::fe_engine(
      g, dir == Direction::Push ? detail::FeMode::FixedPush : detail::FeMode::FixedPull,
      opt);
}

ColoringResult gs_color(const Csr& g, const ColoringOptions& opt) {
  return detail::fe_engine(g, detail::FeMode::GenericSwitch, opt);
}

ColoringResult grs_color(const Csr& g, const ColoringOptions& opt) {
  return detail::fe_engine(g, detail::FeMode::GreedySwitch, opt);
}

ColoringResult cr_color(const Csr& g, const ColoringOptions& opt) {
  const vid_t n = g.n();
  const int nparts = detail::resolve_partitions(opt);
  const Partition1D part(n, nparts);

  ColoringResult r;
  r.color.assign(static_cast<std::size_t>(n), -1);
  WallTimer iter_timer;

  // Step 1: color the border set sequentially — no conflicts can be created
  // on cross-partition edges afterwards (both endpoints of any such edge are
  // border vertices).
  const std::vector<vid_t> border = border_vertices(g, part);
  {
    std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
    int stamp = 0;
    for (vid_t v : border) {
      r.color[static_cast<std::size_t>(v)] =
          detail::first_fit(g, r.color, v, mark, stamp++);
    }
  }

  // Step 2: every partition colors its interior in parallel; interior
  // vertices have all neighbors inside the partition or in the (already
  // colored, now read-only) border.
#pragma omp parallel num_threads(nparts)
  {
    const int t = omp_get_thread_num();
    std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
    int stamp = 0;
    for (vid_t v = part.begin(t); v < part.end(t); ++v) {
      if (r.color[static_cast<std::size_t>(v)] >= 0) continue;
      r.color[static_cast<std::size_t>(v)] =
          detail::first_fit(g, r.color, v, mark, stamp++);
    }
  }

  r.iter_times.push_back(iter_timer.elapsed_s());
  r.iter_conflicts.push_back(0);
  r.iterations = 1;
  int max_c = -1;
  for (int c : r.color) max_c = std::max(max_c, c);
  r.colors_used = max_c + 1;
  return r;
}

}  // namespace pushpull
