// Connected components via label propagation — an engine client written
// against the abstraction alone (~60 lines of algorithm): min-label waves ride
// engine::sparse_push / dense_pull, and the §5 strategies come in as
// DirectionPolicy choices rather than new loops.
//
//   push — dense_push: every vertex re-pushes its label along out-edges each
//          round (AtomicCtx::min), touching all m arcs per round,
//   pull — dense_pull: every vertex re-derives its label from all neighbors
//          (PlainCtx), also all m arcs per round,
//   FE   — Frontier-Exploit: sparse_push over the vertices whose label
//          changed last round — only the frontier's neighborhood is touched,
//   GS   — FE that flips to a dense pull (changed-filtered) when the frontier
//          out-degree crosses the α threshold,
//   GrS  — FE that finishes the sub-threshold remainder with a sequential
//          worklist sweep (the engine supplies the decision, the tail is ~10
//          lines).
//
// The result is policy-invariant: comp[v] = smallest vertex id in v's
// component (asserted against the union-find baseline in the tests).
#pragma once

#include <vector>

#include "engine/edge_map.hpp"
#include "engine/policy.hpp"
#include "graph/csr.hpp"
#include "obs/trace.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct CcOptions {
  engine::StrategyKind strategy = engine::StrategyKind::GreedySwitch;
  double grs_threshold = 0.05;   // GrS: sequential tail below this fraction
  double alpha = kSwitchAlpha;   // GS work threshold
  double beta = kSwitchBeta;     // GS count threshold
  double gamma = 3.0;            // frontier-aware pull window; 0 disables
};

struct CcResult {
  std::vector<vid_t> comp;  // smallest vertex id in the component
  int rounds = 0;
  int sequential_tail_rounds = 0;  // GrS: 1 when the tail ran
  std::vector<Direction> round_dirs;
};

namespace detail {

struct CcPropagate {
  vid_t* comp;
  const DenseFrontier* changed;  // pull: only listen to last round's movers

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    if (changed != nullptr && !changed->test(s)) return false;
    return ctx.min(comp[d], atomic_load(comp[s]));
  }
};

}  // namespace detail

template <CsrLike G, class Instr = NullInstr, class TracerT = obs::NullTracer>
CcResult connected_components(const G& g, const CcOptions& opt = {},
                              Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = g.n();
  CcResult r;
  r.comp.resize(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) r.comp[static_cast<std::size_t>(v)] = v;
  if (n == 0) return r;

  engine::Workspace ws(n);
  engine::DirectionPolicy policy(
      opt.strategy, {opt.alpha, opt.beta, opt.grs_threshold, opt.gamma},
      Direction::Push);
  engine::EdgeMapOptions emo;
  emo.region = 70;
  emo.dedup_output = true;

  engine::VertexSet changed = engine::VertexSet::all(n);
  while (!changed.empty()) {
    const bool trace = obs::tracing(tracer);
    const double active_work = changed.out_degree_sum(g);
    const double active_count = static_cast<double>(changed.size());

    // Greedy-Switch: finish the small remainder with a sequential worklist.
    if (policy.suggest_sequential(active_count, static_cast<double>(n)) &&
        r.rounds > 0) {
      const std::uint64_t t0 = trace ? obs::now_ns() : 0;
      std::vector<vid_t> work(changed.ids().begin(), changed.ids().end());
      while (!work.empty()) {
        const vid_t v = work.back();
        work.pop_back();
        for (vid_t u : g.neighbors(v)) {
          if (r.comp[static_cast<std::size_t>(v)] < r.comp[static_cast<std::size_t>(u)]) {
            r.comp[static_cast<std::size_t>(u)] = r.comp[static_cast<std::size_t>(v)];
            work.push_back(u);
          }
        }
      }
      r.sequential_tail_rounds = 1;
      ++r.rounds;
      if (trace) {
        obs::RoundEvent ev;
        ev.kernel = "cc";
        ev.mode = "sequential-tail";
        ev.round = r.rounds;
        ev.frontier_size = static_cast<std::int64_t>(active_count);
        ev.active_work = static_cast<std::int64_t>(active_work);
        ev.total_work = static_cast<std::int64_t>(g.num_arcs());
        ev.total_count = n;
        ev.alpha = opt.alpha;
        ev.beta = opt.beta;
        ev.t0_ns = t0;
        ev.dur_ns = obs::now_ns() - t0;
        obs::record_round(tracer, ev);
      }
      break;
    }

    const Direction dir =
        policy.choose(active_work, static_cast<double>(g.num_arcs()),
                      active_count, static_cast<double>(n));
    const bool frontier_exploit =
        opt.strategy != engine::StrategyKind::StaticPush &&
        opt.strategy != engine::StrategyKind::StaticPull;
    engine::EdgeMapStats st;
    const std::uint64_t t0 = trace ? obs::now_ns() : 0;
    const CounterBlock c0 = trace ? obs::instr_snapshot(instr) : CounterBlock{};
    engine::EdgeMapStats* stp = trace ? &st : nullptr;
    if (dir == Direction::Push) {
      if (frontier_exploit) {
        // FE: only the changed set's neighborhood is touched this round.
        changed = engine::sparse_push(
            g, ws, changed, detail::CcPropagate{r.comp.data(), nullptr}, emo,
            instr, stp);
      } else {
        // Static push: all m arcs re-pushed every round.
        changed = engine::dense_push(g, ws, /*sources=*/nullptr,
                                     detail::CcPropagate{r.comp.data(), nullptr},
                                     emo, instr, stp);
      }
    } else if (frontier_exploit &&
               policy.pull_shape(active_work,
                                 static_cast<double>(g.num_arcs())) ==
                   engine::PullShape::FrontierIndexed) {
      // Medium-density pull: the changed set is exactly what CcPropagate
      // listens to, so the index filter replaces the per-arc bitmap test and
      // whole blocks with no movers are skipped unread.
      engine::FrontierIndex& idx = ws.frontier_index();
      idx.build(changed.ids());
      changed = engine::frontier_pull(
          g, ws, idx, detail::CcPropagate{r.comp.data(), nullptr}, emo, instr,
          stp);
    } else {
      changed = engine::dense_pull(
          g, ws,
          detail::CcPropagate{r.comp.data(),
                              frontier_exploit ? &changed.dense() : nullptr},
          emo, instr, stp);
    }
    r.round_dirs.push_back(dir);
    ++r.rounds;
    if (trace) {
      obs::RoundEvent ev;
      ev.kernel = "cc";
      ev.mode = engine::to_string(st.mode);
      ev.round = r.rounds;
      ev.frontier_size = static_cast<std::int64_t>(active_count);
      ev.active_work = static_cast<std::int64_t>(active_work);
      ev.total_work = static_cast<std::int64_t>(g.num_arcs());
      ev.total_count = n;
      ev.alpha = opt.alpha;
      ev.beta = opt.beta;
      ev.updates = st.updates;
      ev.t0_ns = t0;
      ev.dur_ns = obs::now_ns() - t0;
      ev.instr = obs::counter_delta(obs::instr_snapshot(instr), c0);
      obs::record_round(tracer, ev);
    }
  }
  return r;
}

}  // namespace pushpull
