// Frontier machinery shared by the traversal kernels (BFS, SSSP-Δ, BC).
//
// The sparse frontier implements the paper's *k-filter* primitive: per-thread
// append buffers (`my_F` in Algorithm 3) merged into the next frontier with a
// prefix sum over buffer sizes. The dense frontier is the bitmap used by
// pull/bottom-up traversal steps and by the direction-optimizing switch.
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"
#include "util/padded.hpp"

namespace pushpull {

// Per-thread append buffers + prefix-sum merge (the k-filter).
class FrontierBuffers {
 public:
  explicit FrontierBuffers(int max_threads)
      : buffers_(static_cast<std::size_t>(max_threads)) {
    PP_CHECK(max_threads > 0);
  }

  // Appends v to the calling thread's buffer. Wait-free w.r.t. other threads.
  void push_local(vid_t v) {
    buffers_[static_cast<std::size_t>(omp_get_thread_num())].value.push_back(v);
  }

  void push_to(int thread, vid_t v) {
    buffers_[static_cast<std::size_t>(thread)].value.push_back(v);
  }

  // Merges all buffers into `out` (cleared first) and empties them.
  // Corresponds to line 8 of Algorithm 3: F = my_F[1] ∪ ... ∪ my_F[P].
  void merge_into(std::vector<vid_t>& out) {
    std::size_t total = 0;
    for (auto& b : buffers_) total += b.value.size();
    out.clear();
    out.reserve(total);
    for (auto& b : buffers_) {
      out.insert(out.end(), b.value.begin(), b.value.end());
      b.value.clear();
    }
  }

  bool all_empty() const {
    for (const auto& b : buffers_) {
      if (!b.value.empty()) return false;
    }
    return true;
  }

 private:
  std::vector<Padded<std::vector<vid_t>>> buffers_;
};

// Dense byte-per-vertex membership map for bottom-up steps.
class DenseFrontier {
 public:
  explicit DenseFrontier(vid_t n) : bits_(static_cast<std::size_t>(n), 0) {}

  void clear() { std::fill(bits_.begin(), bits_.end(), std::uint8_t{0}); }

  // Clears only [begin, end): lets a partitioned owner (a thread or an
  // emulated rank) reset its own slice while other owners rebuild theirs
  // concurrently. Used by the rank-granular frontier in dist/frontier_dist.hpp.
  void clear_range(vid_t begin, vid_t end) {
    PP_DCHECK(begin >= 0 && begin <= end &&
              static_cast<std::size_t>(end) <= bits_.size());
    std::fill(bits_.begin() + begin, bits_.begin() + end, std::uint8_t{0});
  }

  void set(vid_t v) noexcept { bits_[static_cast<std::size_t>(v)] = 1; }
  bool test(vid_t v) const noexcept { return bits_[static_cast<std::size_t>(v)] != 0; }

  void build_from(const std::vector<vid_t>& sparse) {
    clear();
    for (vid_t v : sparse) set(v);
  }

  const std::uint8_t* data() const noexcept { return bits_.data(); }

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace pushpull
