// Delta-driven incremental recomputation over DeltaGraph snapshots
// (ROADMAP: "Mutable graph storage + incremental recomputation").
//
// Each kernel here takes the *post-update* snapshot, the committed update
// batch, and the previous fixpoint, and repairs the fixpoint instead of
// recomputing it — the SumInc-style delta pass (SNIPPETS.md Snippet 1):
// re-propagation starts only from the vertices the batch touched, and work
// radiates outward exactly as far as values keep changing.
//
//   BFS  — inserted arcs can only shorten distances: CAS-min relax waves
//          seeded at insertion tails. Deleted arcs can only lengthen them:
//          a deletion is harmless iff its head keeps an in-neighbor on the
//          previous level (then the old level is still achievable, and by
//          induction the whole labeling still is); otherwise fall back to a
//          full BFS.
//   CC   — min-label invariant: inserted edges merge components, so label
//          repair floods the smaller label from the insertion endpoints.
//          A deleted edge whose endpoints stay weakly connected in the new
//          graph cannot split anything (any old path can be patched through
//          the surviving connection); a disconnect is a monotone break —
//          labels would have to *grow* — so repair falls back to recompute.
//   PR   — the fixpoint factors as pr = β·s over the base-response system
//          s = 1 + f·Mᵀs (no dangling feedback), so the batch-induced global
//          dangling-mass shift is cancelled analytically by rescaling the
//          warm start with the closed-form β ratio; the leftover spiky error
//          is collapsed by per-vertex Aitken Δ² steps between certification
//          sweeps, which run to the L∞ < tol fixpoint. The certificate makes
//          the result comparable to a cold pagerank_converged run: both land
//          within tol·f/(1−f) of the true fixpoint, so they agree to ~7·tol
//          regardless of the warm start.
//
// Every kernel is differentially tested against full recompute on the same
// snapshot (tests/test_incremental.cpp); bench/update_workload.cpp measures
// the incremental-vs-full speedup per commit batch.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/connected_components.hpp"
#include "core/directed.hpp"
#include "engine/edge_map.hpp"
#include "engine/graph_view.hpp"
#include "graph/delta_graph.hpp"
#include "obs/trace.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct IncrementalOptions {
  double damping = 0.85;
  double tol = 1e-12;          // PR: stop when the L∞ sweep change < tol
  int max_iterations = 1000;   // PR: certification sweep cap
  int max_repair_rounds = 64;  // PR: Aitken sweep-pair rounds before handing
                               // off to the vanilla converged loop
};

struct IncrementalStats {
  bool fell_back = false;      // repair degenerated to full recompute
  int repair_rounds = 0;       // localized rounds (BFS/CC) or pushes (PR) run
  int certify_iterations = 0;  // PR: full sweeps after the localized phase
};

namespace detail {

// RAII repair span: one 'X' event per incremental kernel invocation, tagged
// with the outcome (mode = "incremental" or "fell-back") read from the stats
// the kernel filled — recorded at scope exit so every return path, including
// the fallback ones, is covered.
template <class TracerT>
class RepairSpan {
 public:
  RepairSpan(TracerT* t, const char* name,
             const IncrementalStats* st) noexcept {
    if (obs::tracing(t)) {
      t_ = t;
      name_ = name;
      st_ = st;
      t0_ = obs::now_ns();
    }
  }

  RepairSpan(const RepairSpan&) = delete;
  RepairSpan& operator=(const RepairSpan&) = delete;

  ~RepairSpan() {
    if (t_ == nullptr) return;
    obs::TraceEvent ev;
    ev.name = name_;
    ev.cat = "repair";
    ev.ts_ns = t0_;
    ev.dur_ns = obs::now_ns() - t0_;
    ev.mode = st_->fell_back ? "fell-back" : "incremental";
    ev.arg("fell_back", st_->fell_back ? 1.0 : 0.0)
        .arg("repair_rounds", static_cast<double>(st_->repair_rounds))
        .arg("certify_iterations",
             static_cast<double>(st_->certify_iterations));
    t_->record(ev);
  }

 private:
  TracerT* t_ = nullptr;
  const char* name_ = nullptr;
  const IncrementalStats* st_ = nullptr;
  std::uint64_t t0_ = 0;
};

}  // namespace detail

// --- Full-recompute comparators over a GraphView -----------------------------

// Level-synchronous BFS distances (-1 = unreachable) along arc direction.
template <engine::GraphView View, class Instr = NullInstr>
std::vector<vid_t> bfs_levels(const View& view, vid_t root, Instr instr = {}) {
  return bfs_digraph(view, root, Direction::Push, instr);
}

// Weakly-connected component labels: comp[v] = smallest vertex id reachable
// from v ignoring arc direction. On a symmetric view this is exactly
// connected_components(); on a digraph, min labels propagate along out- and
// in-arcs until a joint fixpoint.
template <engine::GraphView View, class Instr = NullInstr>
std::vector<vid_t> cc_labels(const View& view, Instr instr = {}) {
  if (view.is_symmetric()) return connected_components(view.out(), {}, instr).comp;
  const vid_t n = view.n();
  std::vector<vid_t> comp(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) comp[static_cast<std::size_t>(v)] = v;
  if (n == 0) return comp;
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 80;
  emo.dedup_output = true;
  engine::VertexSet changed = engine::VertexSet::all(n);
  while (!changed.empty()) {
    engine::VertexSet fwd = engine::sparse_push(
        view.out(), ws, changed, detail::CcPropagate{comp.data(), nullptr}, emo,
        instr);
    engine::VertexSet bwd = engine::sparse_push(
        view.in(), ws, changed, detail::CcPropagate{comp.data(), nullptr}, emo,
        instr);
    std::vector<vid_t> merged(fwd.ids().begin(), fwd.ids().end());
    merged.insert(merged.end(), bwd.ids().begin(), bwd.ids().end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    changed = engine::VertexSet(n, std::move(merged));
  }
  return comp;
}

struct PrFixpoint {
  std::vector<double> ranks;
  int iterations = 0;
  double residual = 0.0;  // final L∞ sweep change
};

// Jacobi PageRank iterated to the L∞ < tol fixpoint (same update rule and
// dangling redistribution as pagerank_digraph, but convergence-driven rather
// than a fixed L). `warm` seeds the iteration when non-empty — the
// incremental kernel's certification phase and the cold comparator are the
// same function, differing only in the start point.
template <engine::GraphView View, class Instr = NullInstr>
PrFixpoint pagerank_converged(const View& view,
                              const IncrementalOptions& opt = {},
                              std::vector<double> warm = {}, Instr instr = {}) {
  const vid_t n = view.n();
  PP_CHECK(n > 0);
  const auto& out = view.out();
  using OutG = std::remove_cvref_t<decltype(view.out())>;
  PrFixpoint fix;
  fix.ranks = warm.empty()
                  ? std::vector<double>(static_cast<std::size_t>(n), 1.0 / n)
                  : std::move(warm);
  PP_CHECK(fix.ranks.size() == static_cast<std::size_t>(n));
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 81;
  emo.track_output = false;
  while (fix.iterations < opt.max_iterations) {
    double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (out.degree(v) == 0) dangling += fix.ranks[static_cast<std::size_t>(v)];
    }
    const double base =
        (1.0 - opt.damping) / n + opt.damping * dangling / n;
    engine::dense_pull(view, ws,
                       detail::DirPrGather<OutG>{&out, fix.ranks.data(),
                                                 next.data(), base, opt.damping},
                       emo, instr);
    double delta = 0.0;
#pragma omp parallel for reduction(max : delta) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      const double d = next[static_cast<std::size_t>(v)] -
                       fix.ranks[static_cast<std::size_t>(v)];
      delta = std::max(delta, d < 0 ? -d : d);
    }
    fix.ranks.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
    ++fix.iterations;
    fix.residual = delta;
    if (delta < opt.tol) break;
  }
  return fix;
}

// --- Incremental BFS ---------------------------------------------------------

namespace detail {

// CAS-min distance relaxation that treats -1 as +inf: an improved source
// re-relaxes its out-arcs until every label is the true (new) distance.
struct BfsRelax {
  vid_t* dist;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    const vid_t nd = ctx.load(dist[s]) + 1;
    vid_t cur = ctx.load(dist[d]);
    while (cur < 0 || cur > nd) {
      if (ctx.claim(dist[d], cur, nd)) return true;
      cur = ctx.load(dist[d]);
    }
    return false;
  }
};

}  // namespace detail

// Repairs BFS levels after one committed batch. `prev` is the fixpoint on the
// pre-update snapshot; `view` is the post-update snapshot. Exact: the result
// equals bfs_levels(view, root).
template <engine::GraphView View, class Instr = NullInstr,
          class TracerT = obs::NullTracer>
std::vector<vid_t> incremental_bfs(const View& view,
                                   std::span<const EdgeUpdate> updates,
                                   vid_t root, const std::vector<vid_t>& prev,
                                   IncrementalStats* stats = nullptr,
                                   Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = view.n();
  PP_CHECK(root >= 0 && root < n);
  PP_CHECK(prev.size() == static_cast<std::size_t>(n));
  PP_CHECK(prev[static_cast<std::size_t>(root)] == 0);
  IncrementalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};
  const detail::RepairSpan<TracerT> span(tracer, "incremental_bfs", stats);
  std::vector<vid_t> dist = prev;

  // Deletions first (Ramalingam–Reps style): dropping the arc u→v can only
  // matter when it supplied v's level and no other in-neighbor still does.
  // Such orphans cascade — a vertex whose every level-supplying in-neighbor
  // went orphaned is orphaned too — and the affected region's new (weakly
  // larger) levels are then re-settled from its supported boundary with a
  // small heap. Work is proportional to the affected region; only a blast
  // radius rivaling the graph falls back to full recompute.
  std::vector<vid_t> orphans;  // also the scan stack
  std::vector<std::uint8_t> orphaned(static_cast<std::size_t>(n), 0);
  const auto orphan = [&](vid_t v) {
    if (dist[static_cast<std::size_t>(v)] < 1 ||
        orphaned[static_cast<std::size_t>(v)]) {
      return;
    }
    orphaned[static_cast<std::size_t>(v)] = 1;
    orphans.push_back(v);
  };
  const auto supported = [&](vid_t v) {
    const vid_t want = dist[static_cast<std::size_t>(v)] - 1;
    for (vid_t w : view.in().neighbors(v)) {
      if (!orphaned[static_cast<std::size_t>(w)] &&
          dist[static_cast<std::size_t>(w)] == want) {
        return true;
      }
    }
    return false;
  };
  const auto seed_orphan = [&](vid_t u, vid_t v) {
    if (dist[static_cast<std::size_t>(v)] >= 1 &&
        dist[static_cast<std::size_t>(u)] ==
            dist[static_cast<std::size_t>(v)] - 1 &&
        !supported(v)) {
      orphan(v);
    }
  };
  for (const EdgeUpdate& up : updates) {
    if (up.insert) continue;
    seed_orphan(up.u, up.v);
    if (view.is_symmetric()) seed_orphan(up.v, up.u);
  }
  for (std::size_t head = 0; head < orphans.size(); ++head) {
    if (orphans.size() > static_cast<std::size_t>(n) / 4) {
      if (stats != nullptr) stats->fell_back = true;
      return bfs_levels(view, root, instr);
    }
    const vid_t w = orphans[head];
    for (vid_t y : view.out().neighbors(w)) {
      if (!orphaned[static_cast<std::size_t>(y)] &&
          dist[static_cast<std::size_t>(y)] ==
              dist[static_cast<std::size_t>(w)] + 1 &&
          !supported(y)) {
        orphan(y);
      }
    }
  }
  if (!orphans.empty()) {
    // Re-settle the orphans in level order from their supported boundary.
    // Levels only grow under deletions, so a settled vertex is final.
    using HeapItem = std::pair<vid_t, vid_t>;  // (tentative level, vertex)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    for (vid_t v : orphans) {
      vid_t best = -1;
      for (vid_t w : view.in().neighbors(v)) {
        const vid_t dw = dist[static_cast<std::size_t>(w)];
        if (orphaned[static_cast<std::size_t>(w)] || dw < 0) continue;
        if (best < 0 || dw + 1 < best) best = dw + 1;
      }
      dist[static_cast<std::size_t>(v)] = -1;
      if (best >= 0) heap.emplace(best, v);
    }
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (!orphaned[static_cast<std::size_t>(v)]) continue;  // already settled
      orphaned[static_cast<std::size_t>(v)] = 0;
      dist[static_cast<std::size_t>(v)] = d;
      for (vid_t y : view.out().neighbors(v)) {
        if (orphaned[static_cast<std::size_t>(y)]) heap.emplace(d + 1, y);
      }
    }
    if (stats != nullptr) {
      stats->repair_rounds += static_cast<int>(orphans.size());
    }
  }

  // Insertions can only shorten distances: seed relax waves at every
  // insertion tail that is itself reachable (on a symmetric view the edge
  // carries both directions, so both endpoints seed). Re-settled orphans seed
  // too: the heap ran on the post-update snapshot, so an orphan can settle
  // *below* its previous level through an arc inserted this batch, and that
  // improvement has to reach its non-orphaned neighbors through the wave.
  std::vector<vid_t> seeds;
  for (const EdgeUpdate& up : updates) {
    if (!up.insert) continue;
    if (dist[static_cast<std::size_t>(up.u)] >= 0) seeds.push_back(up.u);
    if (view.is_symmetric() && dist[static_cast<std::size_t>(up.v)] >= 0) {
      seeds.push_back(up.v);
    }
  }
  for (const vid_t v : orphans) {
    if (dist[static_cast<std::size_t>(v)] >= 0) seeds.push_back(v);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  if (seeds.empty()) return dist;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 82;
  emo.dedup_output = true;
  engine::VertexSet frontier(n, std::move(seeds));
  while (!frontier.empty()) {
    frontier = engine::sparse_push(view.out(), ws, frontier,
                                   detail::BfsRelax{dist.data()}, emo, instr);
    if (stats != nullptr) ++stats->repair_rounds;
  }
  return dist;
}

// --- Incremental connected components ----------------------------------------

namespace detail {

enum class CcProbe {
  kConnected,  // found `to` — the deletion did not split anything
  kSplit,      // exhausted `from`'s side without reaching `to`; side in *members
  kBudget,     // budget ran out first — undecided
};

// Bounded sequential probe: walk weak arcs from `from` inside the old
// component (old labels bound the search) looking for `to`. On real graphs a
// surviving alternative path is two or three hops, so a tiny budget settles
// most deletions; when `from` sits in a small split-off piece the walk
// instead exhausts it and hands the caller its full member list for
// relabeling. Budget is spent per arc, so even a tiny budget makes progress
// through a hub's adjacency instead of refusing to look at it.
template <engine::GraphView View>
CcProbe cc_probe(const View& view, const std::vector<vid_t>& comp, vid_t from,
                 vid_t to, std::size_t budget, std::vector<vid_t>* members) {
  const vid_t label = comp[static_cast<std::size_t>(from)];
  std::vector<std::uint8_t> seen(comp.size(), 0);
  std::vector<vid_t> queue{from};
  seen[static_cast<std::size_t>(from)] = 1;
  bool found = false;
  std::size_t head = 0;
  for (; head < queue.size() && !found && budget > 0; ++head) {
    const vid_t x = queue[head];
    auto expand = [&](std::span<const vid_t> nbrs) {
      for (vid_t y : nbrs) {
        if (budget == 0 || found) return;
        --budget;
        if (seen[static_cast<std::size_t>(y)]) continue;
        if (comp[static_cast<std::size_t>(y)] != label) continue;
        seen[static_cast<std::size_t>(y)] = 1;
        if (y == to) {
          found = true;
          return;
        }
        queue.push_back(y);
      }
    };
    expand(view.out().neighbors(x));
    if (!view.is_symmetric() && !found) expand(view.in().neighbors(x));
  }
  if (found) return CcProbe::kConnected;
  // budget == 0 may have truncated the last expansion, so only a walk that
  // drained its queue with budget to spare has provably seen the whole side.
  if (head < queue.size() || budget == 0) return CcProbe::kBudget;
  *members = std::move(queue);
  return CcProbe::kSplit;
}

}  // namespace detail

// Repairs weak-CC labels after one committed batch. Exact: the result equals
// cc_labels(view).
template <engine::GraphView View, class Instr = NullInstr,
          class TracerT = obs::NullTracer>
std::vector<vid_t> incremental_cc(const View& view,
                                  std::span<const EdgeUpdate> updates,
                                  const std::vector<vid_t>& prev,
                                  IncrementalStats* stats = nullptr,
                                  Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = view.n();
  PP_CHECK(prev.size() == static_cast<std::size_t>(n));
  IncrementalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};
  const detail::RepairSpan<TracerT> span(tracer, "incremental_cc", stats);

  std::vector<vid_t> comp = prev;

  // Deletions: endpoints that stay weakly connected cannot split a component
  // (patch any old path through the surviving connection). Each deletion runs
  // a tiered probe — cheap local searches from either endpoint first, the big
  // budget only on failure — and a probe that exhausts one side without
  // reaching the other has enumerated a genuine split-off piece, which is
  // relabeled to its minimum id in place (the side holding the old component
  // minimum keeps its label, so the probe ladder hunts the other side). Pre-
  // update arcs never cross old labels, so the piece can only rejoin the rest
  // through edges inserted this batch, and those seed the merge flood below.
  // Only an undecidable deletion — the relabel-able side larger than the big
  // budget — falls back to full recompute.
  const std::size_t big_budget = std::max<std::size_t>(
      256, static_cast<std::size_t>(view.num_arcs()) / 8);
  for (const EdgeUpdate& up : updates) {
    if (up.insert || up.u == up.v) continue;
    if (comp[static_cast<std::size_t>(up.u)] !=
        comp[static_cast<std::size_t>(up.v)]) {
      continue;  // an earlier split this batch already separated them
    }
    // Probe attempts in rising cost; a split side that contains the old
    // component minimum keeps its label (the *other* side must be relabeled,
    // and a later attempt from the other endpoint enumerates exactly it).
    const std::pair<vid_t, std::size_t> attempts[4] = {
        {up.u, 256}, {up.v, 256}, {up.u, big_budget}, {up.v, big_budget}};
    bool decided = false;
    for (const auto& [from, budget] : attempts) {
      std::vector<vid_t> side;
      const detail::CcProbe r = detail::cc_probe(
          view, comp, from, from == up.u ? up.v : up.u, budget, &side);
      if (r == detail::CcProbe::kBudget) continue;
      if (r == detail::CcProbe::kSplit) {
        vid_t fresh = side[0];
        for (vid_t w : side) fresh = std::min(fresh, w);
        if (fresh == comp[static_cast<std::size_t>(side[0])]) continue;
        for (vid_t w : side) comp[static_cast<std::size_t>(w)] = fresh;
        if (stats != nullptr) ++stats->repair_rounds;
      }
      decided = true;  // connected, or the split side relabeled
      break;
    }
    if (!decided) {
      if (stats != nullptr) stats->fell_back = true;
      return cc_labels(view, instr);
    }
  }

  // Insertions only merge: flood the smaller label from the endpoints of
  // every inserted edge until the joint fixpoint.
  std::vector<vid_t> seeds;
  for (const EdgeUpdate& up : updates) {
    if (!up.insert) continue;
    seeds.push_back(up.u);
    seeds.push_back(up.v);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  if (seeds.empty()) return comp;

  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 83;
  emo.dedup_output = true;
  engine::VertexSet changed(n, std::move(seeds));
  while (!changed.empty()) {
    if (view.is_symmetric()) {
      changed = engine::sparse_push(view.out(), ws, changed,
                                    detail::CcPropagate{comp.data(), nullptr},
                                    emo, instr);
    } else {
      engine::VertexSet fwd = engine::sparse_push(
          view.out(), ws, changed, detail::CcPropagate{comp.data(), nullptr},
          emo, instr);
      engine::VertexSet bwd = engine::sparse_push(
          view.in(), ws, changed, detail::CcPropagate{comp.data(), nullptr},
          emo, instr);
      std::vector<vid_t> merged(fwd.ids().begin(), fwd.ids().end());
      merged.insert(merged.end(), bwd.ids().begin(), bwd.ids().end());
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      changed = engine::VertexSet(n, std::move(merged));
    }
    if (stats != nullptr) ++stats->repair_rounds;
  }
  return comp;
}

namespace detail {

// In-place Gaussian elimination with partial pivoting for the tiny (m ≤ 5)
// regularized Anderson normal equations; `lda` is the row stride of `a`.
// Returns false when a pivot underflows (window fully degenerate).
inline bool solve_spd(int m, double* a, int lda, const double* b, double* x) {
  double rhs[8];
  for (int i = 0; i < m; ++i) rhs[i] = b[i];
  for (int k = 0; k < m; ++k) {
    int piv = k;
    for (int r = k + 1; r < m; ++r) {
      if (std::abs(a[r * lda + k]) > std::abs(a[piv * lda + k])) piv = r;
    }
    if (std::abs(a[piv * lda + k]) < 1e-300) return false;
    if (piv != k) {
      for (int c = k; c < m; ++c) std::swap(a[k * lda + c], a[piv * lda + c]);
      std::swap(rhs[k], rhs[piv]);
    }
    for (int r = k + 1; r < m; ++r) {
      const double factor = a[r * lda + k] / a[k * lda + k];
      for (int c = k; c < m; ++c) a[r * lda + c] -= factor * a[k * lda + c];
      rhs[r] -= factor * rhs[k];
    }
  }
  for (int i = m - 1; i >= 0; --i) {
    double s = rhs[i];
    for (int c = i + 1; c < m; ++c) s -= a[i * lda + c] * x[c];
    x[i] = s / a[i * lda + i];
  }
  return true;
}

}  // namespace detail

// --- Incremental PageRank ----------------------------------------------------

// Repairs PageRank after one committed batch: an analytic global rescale
// re-anchors the warm start, then Aitken-accelerated certification sweeps run
// the whole vector to the L∞ < tol fixpoint. Matches a cold
// pagerank_converged(view) run to within ~2·tol·f/(1−f).
//
// Why not a localized frontier repair? A warm start converges to tol-grade
// residuals *slower* than a cold one here: the update-induced error rides the
// walk modes with |eigenvalue| ≈ 1 — mass shuffled between weak components by
// merge/split updates, and oscillations on near-bipartite low-degree
// structures — which decay at the worst-case rate f per sweep, while a cold
// uniform start barely excites them (uniform already carries each closed
// component's correct share, so cold error is dominated by fast-mixing smooth
// modes). And on a small-world graph a 1e-12-grade repair wave reaches the
// whole graph in a handful of hops, so arc-following locality saves nothing.
// Both slow families are instead removed structurally:
//
// (a) arcs never leave a weak component, so the damped chain conserves each
//     component's mass up to teleport inflow and dangling redistribution.
//     With β = (1−f)/n + f·(Σ_dangling pr)/n, component C's stationary mass
//     obeys  mass_C·(1−f) = β·|C| − f·dang_C  exactly. Rescaling the warm
//     vector per component to that budget (β and the scales solve in closed
//     form below) cancels every inter-component migration mode analytically
//     — no iteration ever has to carry them.
// (b) the leftover error still rides degenerate slow clusters — every closed
//     component contributes a walk eigenvalue at exactly +1 (stationary
//     redistribution) and every bipartite one at −1 — so the certification
//     sweeps run under Anderson acceleration: each step takes one genuine
//     Jacobi sweep g(x), then extrapolates through the least-squares
//     combination of the last kAndersonDepth residual differences (windowed
//     GMRES on I−g). A degenerate cluster is a single root of the implicit
//     residual polynomial, so the ±f families die together instead of
//     paying ~14 sweeps per decade each. Extrapolation never touches the
//     termination certificate — the loop only exits when a genuine sweep's
//     L∞ change is < tol, the same criterion the cold run uses, so the
//     ~2·tol·f/(1−f) differential bound is unconditional.
template <engine::GraphView View, class Instr = NullInstr,
          class TracerT = obs::NullTracer>
PrFixpoint incremental_pagerank(const View& view,
                                std::span<const EdgeUpdate> updates,
                                const std::vector<double>& prev,
                                const IncrementalOptions& opt = {},
                                IncrementalStats* stats = nullptr,
                                Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = view.n();
  PP_CHECK(n > 0);
  PP_CHECK(prev.size() == static_cast<std::size_t>(n));
  IncrementalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};
  const detail::RepairSpan<TracerT> span(tracer, "incremental_pagerank", stats);
  const auto& out = view.out();
  const double f = opt.damping;
  // The repair is global-analytic, so the update list itself is not walked;
  // it stays in the signature for interface symmetry with the other kernels.
  (void)updates;

  // Weak components of the post-update graph (labels are component-minimum
  // vertex ids), then each component's warm total mass and dangling mass.
  const std::vector<vid_t> comp = cc_labels(view, instr);
  std::vector<double> mass(static_cast<std::size_t>(n), 0.0);
  std::vector<double> dang(static_cast<std::size_t>(n), 0.0);
  std::vector<vid_t> csize(static_cast<std::size_t>(n), 0);
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t i = static_cast<std::size_t>(v);
    const std::size_t c = static_cast<std::size_t>(comp[i]);
    mass[c] += prev[i];
    if (out.degree(v) == 0) dang[c] += prev[i];
    ++csize[c];
  }

  // Self-consistent β and per-component scales: with x_C = scale_C·prev_C,
  // the budget mass_C·(1−f) = β·|C| − f·dang_C gives
  //   scale_C = β·|C| / ((1−f)·mass_C + f·dang_C),
  // and substituting the scaled dangling mass back into
  // β = (1−f)/n + f·Σ_C scale_C·dang_C / n leaves β alone on both sides.
  // mass_C ≥ |C|·(1−f)/n > 0, so every denominator is positive.
  double t = 0.0;
  for (vid_t c = 0; c < n; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    if (csize[i] == 0) continue;
    t += dang[i] * csize[i] / ((1.0 - f) * mass[i] + f * dang[i]);
  }
  const double beta = ((1.0 - f) / n) / (1.0 - f * t / n);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t i = static_cast<std::size_t>(v);
    const std::size_t c = static_cast<std::size_t>(comp[i]);
    const double scale = beta * csize[c] / ((1.0 - f) * mass[c] + f * dang[c]);
    x[i] = scale * prev[i];
  }

  // Anderson-accelerated certification. Each step costs one genuine sweep
  // g(x) plus O(kAndersonDepth·n) vector work; the mixing coefficients come
  // from an m×m normal-equation solve over the residual-difference window.
  constexpr int kAndersonDepth = 5;
  IncrementalOptions single = opt;
  single.max_iterations = 1;
  PrFixpoint fix;
  int sweeps = 0;
  const auto certified = [&]() {
    fix.iterations = sweeps;
    if (stats != nullptr) {
      stats->repair_rounds = sweeps;
      stats->certify_iterations = sweeps;
    }
  };
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<std::vector<double>> dxs, dfs;  // last m iterate/residual deltas
  std::vector<double> x_prev, f_prev, fvec(un);
  while (sweeps < opt.max_iterations &&
         sweeps < opt.max_repair_rounds) {
    fix = pagerank_converged(view, single, x, instr);  // g(x); keeps x alive
    ++sweeps;
    if (fix.residual < opt.tol) {
      certified();
      return fix;
    }
    for (std::size_t i = 0; i < un; ++i) fvec[i] = fix.ranks[i] - x[i];
    if (!x_prev.empty()) {
      std::vector<double> dx(un), df(un);
      for (std::size_t i = 0; i < un; ++i) {
        dx[i] = x[i] - x_prev[i];
        df[i] = fvec[i] - f_prev[i];
      }
      if (dxs.size() == kAndersonDepth) {
        dxs.erase(dxs.begin());
        dfs.erase(dfs.begin());
      }
      dxs.push_back(std::move(dx));
      dfs.push_back(std::move(df));
    }
    x_prev = x;
    f_prev = fvec;

    // γ = argmin ||f − Σ γ_j Δf_j||₂ via the (regularized) normal equations;
    // then x⁺ = x + f − Σ γ_j (Δx_j + Δf_j). With an empty window this is the
    // plain Picard step x⁺ = g(x).
    std::vector<double> xnext = std::move(fix.ranks);
    const int m = static_cast<int>(dxs.size());
    if (m > 0) {
      double gram[kAndersonDepth][kAndersonDepth];
      double rhs[kAndersonDepth];
      double diag_max = 0.0;
      for (int a = 0; a < m; ++a) {
        for (int b = a; b < m; ++b) {
          double dot = 0.0;
          for (std::size_t i = 0; i < un; ++i) dot += dfs[a][i] * dfs[b][i];
          gram[a][b] = gram[b][a] = dot;
        }
        diag_max = std::max(diag_max, gram[a][a]);
        double dot = 0.0;
        for (std::size_t i = 0; i < un; ++i) dot += dfs[a][i] * fvec[i];
        rhs[a] = dot;
      }
      // Tikhonov floor keeps near-parallel columns (converged directions)
      // from blowing up the solve instead of being ignored.
      for (int a = 0; a < m; ++a) gram[a][a] += 1e-10 * diag_max;
      double gamma[kAndersonDepth];
      bool solved = detail::solve_spd(m, &gram[0][0], kAndersonDepth, rhs,
                                      gamma);
      if (solved) {
        for (int a = 0; a < m; ++a) {
          const double g = gamma[a];
          if (g == 0.0) continue;
          for (std::size_t i = 0; i < un; ++i) {
            xnext[i] -= g * (dxs[a][i] + dfs[a][i]);
          }
        }
        for (std::size_t i = 0; i < un; ++i) {
          if (!std::isfinite(xnext[i])) {
            solved = false;
            break;
          }
        }
        if (!solved) {  // poisoned extrapolation: fall back to plain Picard
          for (std::size_t i = 0; i < un; ++i) xnext[i] = x_prev[i] + fvec[i];
        }
      }
    }
    x = std::move(xnext);
  }

  // Sweep budget exhausted without a certificate: hand the last genuinely
  // swept vector to the vanilla converged loop (identical to the cold path).
  fix = pagerank_converged(view, opt, std::move(x), instr);
  fix.iterations += sweeps;
  if (stats != nullptr) {
    stats->repair_rounds = sweeps;
    stats->certify_iterations = fix.iterations;
  }
  return fix;
}

}  // namespace pushpull
