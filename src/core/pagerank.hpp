// PageRank (§3.1, §4.1, Algorithm 1) in push, pull, and push+Partition-Aware
// (§5, Algorithm 8) variants.
//
// r(v) = (1-f)/|V| + f * Σ_{u ∈ N(v)} r(u)/d(u)
//
//   pull — t[v] accumulates r(u)/d(u) from every neighbor into its own
//          new_pr[v]: read conflicts only, no atomics or locks.
//   push — t[v] adds r(v)/d(v) into every neighbor's new_pr[u]: float write
//          conflicts; no CPU offers float atomics, so each update is a CAS
//          loop that the paper (and our instrumentation) accounts as a lock.
//   push+PA — the partition-aware representation splits each adjacency list
//          into thread-local and remote halves; local updates use plain
//          stores, only remote updates pay the lock (Algorithm 8).
//
// Mass from dangling (degree-0) vertices is redistributed uniformly each
// iteration so ranks always sum to 1 (checked by the test suite).
#pragma once

#include <omp.h>

#include <vector>

#include "graph/csr.hpp"
#include "graph/partition_aware.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull {

struct PageRankOptions {
  int iterations = 20;     // L
  double damping = 0.85;   // f
};

// Per-iteration wall times, filled if `iter_times != nullptr`.
using IterTimes = std::vector<double>;

namespace detail {

// Shared per-iteration epilogue: base term + dangling redistribution.
inline double pr_dangling_mass(const Csr& g, const std::vector<double>& pr) {
  double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
  }
  return dangling;
}

}  // namespace detail

// Pull-based PageRank: new_pr[v] += f·pr[u]/d(u) for u ∈ N(v)  (R-conflicts).
template <class Instr = NullInstr>
std::vector<double> pagerank_pull(const Csr& g, const PageRankOptions& opt,
                                  Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      instr.code_region(1);
      double sum = 0.0;
      for (vid_t u : g.neighbors(v)) {
        // Read conflict: pr[u] and d(u) of a vertex owned by another thread.
        instr.read(&pr[static_cast<std::size_t>(u)], sizeof(double));
        instr.read(&g.offsets()[static_cast<std::size_t>(u)], sizeof(eid_t));
        instr.branch_cond();
        sum += pr[static_cast<std::size_t>(u)] / g.degree(u);
      }
      instr.write(&next[static_cast<std::size_t>(v)], sizeof(double));
      next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
    }
    pr.swap(next);
  }
  return pr;
}

// Push-based PageRank: new_pr[u] += f·pr[v]/d(v)  (W-conflicts on floats →
// CAS-loop "locks").
template <class Instr = NullInstr>
std::vector<double> pagerank_push(const Csr& g, const PageRankOptions& opt,
                                  Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel
    {
#pragma omp for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(2);
        const vid_t deg = g.degree(v);
        if (deg == 0) continue;
        instr.read(&pr[static_cast<std::size_t>(v)], sizeof(double));
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : g.neighbors(v)) {
          instr.branch_cond();
          // Float write conflict → lock-accounted CAS loop (§4.1).
          instr.lock(&next[static_cast<std::size_t>(u)]);
          atomic_add(next[static_cast<std::size_t>(u)], share);
        }
      }
#pragma omp for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        instr.write(&next[static_cast<std::size_t>(v)], sizeof(double));
        next[static_cast<std::size_t>(v)] += base;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Push+Partition-Awareness (Algorithm 8): local neighbors first with plain
// stores, a barrier, then remote neighbors with lock-accounted updates.
// Threads iterate exactly their own partition so local writes cannot race.
template <class Instr = NullInstr>
std::vector<double> pagerank_push_pa(const Csr& g, const PartitionAwareCsr& pa,
                                     const PageRankOptions& opt, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && pa.n() == n);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  const Partition1D& part = pa.partition();
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
#pragma omp parallel num_threads(part.parts())
    {
      const int t = omp_get_thread_num();
      // Part 1: local updates, no synchronization (plain read/write).
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        instr.code_region(3);
        const vid_t deg = pa.degree(v);
        if (deg == 0) continue;
        instr.read(&pr[static_cast<std::size_t>(v)], sizeof(double));
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : pa.local_neighbors(v)) {
          instr.branch_cond();
          instr.write(&next[static_cast<std::size_t>(u)], sizeof(double));
          next[static_cast<std::size_t>(u)] += share;
        }
      }
#pragma omp barrier
      // Part 2: remote updates with lock-accounted atomic adds.
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        instr.code_region(4);
        const vid_t deg = pa.degree(v);
        if (deg == 0) continue;
        const double share = opt.damping * pr[static_cast<std::size_t>(v)] / deg;
        for (vid_t u : pa.remote_neighbors(v)) {
          instr.branch_cond();
          instr.lock(&next[static_cast<std::size_t>(u)]);
          atomic_add(next[static_cast<std::size_t>(u)], share);
        }
      }
#pragma omp barrier
      for (vid_t v = part.begin(t); v < part.end(t); ++v) {
        instr.write(&next[static_cast<std::size_t>(v)], sizeof(double));
        next[static_cast<std::size_t>(v)] += base;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Sequential reference (power iteration, identical update rule).
std::vector<double> pagerank_seq(const Csr& g, const PageRankOptions& opt);

}  // namespace pushpull
