// PageRank (§3.1, §4.1, Algorithm 1) in push, pull, and push+Partition-Aware
// (§5, Algorithm 8) variants, on the engine substrate.
//
// r(v) = (1-f)/|V| + f * Σ_{u ∈ N(v)} r(u)/d(u)
//
//   pull — engine::dense_pull: t[v] accumulates r(u)/d(u) from every neighbor
//          into its own new_pr[v] through PlainCtx: read conflicts only, no
//          atomics or locks.
//   push — engine::dense_push: t[v] adds r(v)/d(v) into every neighbor's
//          new_pr[u] through AtomicCtx: float write conflicts; no CPU offers
//          float atomics, so each update is a CAS loop that the paper (and
//          the context's accounting) prices as a lock.
//   push+PA — engine::dense_push_pa over the partition-aware representation:
//          local updates ride PlainCtx (plain stores), only remote updates
//          pay the lock (Algorithm 8).
//
// One functor expresses the rank transfer; the direction and sync policy pick
// which context it writes through. Mass from dangling (degree-0) vertices is
// redistributed uniformly each iteration so ranks always sum to 1.
#pragma once

#include <vector>

#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "graph/partition_aware.hpp"
#include "obs/trace.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct PageRankOptions {
  int iterations = 20;     // L
  double damping = 0.85;   // f
};

// Per-iteration wall times, filled if `iter_times != nullptr`.
using IterTimes = std::vector<double>;

namespace detail {

// Shared per-iteration epilogue: base term + dangling redistribution.
template <CsrLike G>
inline double pr_dangling_mass(const G& g, const std::vector<double>& pr) {
  double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
  for (vid_t v = 0; v < g.n(); ++v) {
    if (g.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
  }
  return dangling;
}

// Pull: fold r(u)/d(u) into new_pr[v] in neighbor order, then scale once —
// the accumulation order matches the pre-engine kernel bit for bit.
template <CsrLike G>
struct PrGather {
  const G* g;
  const double* pr;
  double* next;
  double base;
  double damping;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    const double pu = ctx.load(pr[u]);
    // Read conflict: the neighbor's degree lives in another thread's block.
    ctx.instr().read(&g->offsets()[static_cast<std::size_t>(u)], sizeof(eid_t));
    ctx.add(next[v], pu / g->degree(u));
    return false;
  }

  template <class Ctx>
  bool finalize(Ctx& ctx, vid_t v) const {
    ctx.store(next[v], base + damping * next[v]);
    return false;
  }
};

// Push: scatter f·r(s)/d(s) into each neighbor's accumulator. Works for both
// the flat CSR (AtomicCtx everywhere) and the PA split (PlainCtx local half,
// AtomicCtx remote half) — degree comes from the representation in use.
template <class Rep>
struct PrScatter {
  const Rep* rep;
  const double* pr;
  double* next;
  double damping;

  bool source(vid_t s) const { return rep->degree(s) > 0; }

  template <class Ctx>
  double source_data(Ctx& ctx, vid_t s) const {
    return damping * ctx.load(pr[s]) / rep->degree(s);
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t, double share) const {
    ctx.add(next[d], share);
    return false;
  }
};

}  // namespace detail

namespace detail {

// PR iterations are fixed-direction full sweeps; the RoundEvent still earns
// its keep in a trace (per-iteration wall time + instr deltas line up against
// BFS/CC lanes).
template <class TracerT>
inline void record_pr_round(TracerT* tracer, const char* mode, int iter,
                            std::int64_t n, std::int64_t m,
                            const engine::EdgeMapStats& st, std::uint64_t t0,
                            const CounterBlock& delta) {
  if constexpr (TracerT::kEnabled) {
    obs::RoundEvent ev;
    ev.kernel = "pagerank";
    ev.mode = mode;
    ev.round = iter;
    ev.frontier_size = n;  // dense sweep: every vertex is active
    ev.active_work = m;
    ev.total_work = m;
    ev.total_count = n;
    ev.updates = st.updates;
    ev.t0_ns = t0;
    ev.dur_ns = obs::now_ns() - t0;
    ev.instr = delta;
    obs::record_round(tracer, ev);
  } else {
    (void)tracer, (void)mode, (void)iter, (void)n, (void)m, (void)st, (void)t0,
        (void)delta;
  }
}

}  // namespace detail

// Pull-based PageRank: new_pr[v] += f·pr[u]/d(u) for u ∈ N(v)  (R-conflicts).
template <CsrLike G, class Instr = NullInstr, class TracerT = obs::NullTracer>
std::vector<double> pagerank_pull(const G& g, const PageRankOptions& opt,
                                  Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 1;
  emo.track_output = false;
  for (int l = 0; l < opt.iterations; ++l) {
    const bool trace = obs::tracing(tracer);
    const std::uint64_t t0 = trace ? obs::now_ns() : 0;
    const CounterBlock c0 = trace ? obs::instr_snapshot(instr) : CounterBlock{};
    engine::EdgeMapStats st;
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    engine::dense_pull(
        g, ws,
        detail::PrGather<G>{&g, pr.data(), next.data(), base, opt.damping},
        emo, instr, trace ? &st : nullptr);
    if (trace) {
      detail::record_pr_round(
          tracer, engine::to_string(st.mode), l + 1, n, g.num_arcs(), st, t0,
          obs::counter_delta(obs::instr_snapshot(instr), c0));
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Push-based PageRank: new_pr[u] += f·pr[v]/d(v)  (W-conflicts on floats →
// CAS-loop "locks").
template <CsrLike G, class Instr = NullInstr, class TracerT = obs::NullTracer>
std::vector<double> pagerank_push(const G& g, const PageRankOptions& opt,
                                  Instr instr = {}, TracerT* tracer = nullptr) {
  const vid_t n = g.n();
  PP_CHECK(n > 0);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 2;
  emo.track_output = false;
  for (int l = 0; l < opt.iterations; ++l) {
    const bool trace = obs::tracing(tracer);
    const std::uint64_t t0 = trace ? obs::now_ns() : 0;
    const CounterBlock c0 = trace ? obs::instr_snapshot(instr) : CounterBlock{};
    engine::EdgeMapStats st;
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    engine::dense_push(
        g, ws, /*sources=*/nullptr,
        detail::PrScatter<G>{&g, pr.data(), next.data(), opt.damping}, emo,
        instr, trace ? &st : nullptr);
    if (trace) {
      detail::record_pr_round(
          tracer, engine::to_string(st.mode), l + 1, n, g.num_arcs(), st, t0,
          obs::counter_delta(obs::instr_snapshot(instr), c0));
    }
    engine::vertex_map(
        n, ws,
        [&](auto& ctx, vid_t v) {
          ctx.add(next[static_cast<std::size_t>(v)], base);
          return false;
        },
        /*track=*/false, instr);
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Push+Partition-Awareness (Algorithm 8): local neighbors first with plain
// stores, a barrier, then remote neighbors with lock-accounted updates.
// Threads iterate exactly their own partition so local writes cannot race.
template <class Instr = NullInstr>
std::vector<double> pagerank_push_pa(const Csr& g, const PartitionAwareCsr& pa,
                                     const PageRankOptions& opt, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && pa.n() == n);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 3;  // local half; the engine tags the remote half region+1
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    engine::dense_push_pa(
        pa, ws,
        detail::PrScatter<PartitionAwareCsr>{&pa, pr.data(), next.data(),
                                             opt.damping},
        emo, instr);
    engine::vertex_map(
        n, ws,
        [&](auto& ctx, vid_t v) {
          ctx.add(next[static_cast<std::size_t>(v)], base);
          return false;
        },
        /*track=*/false, instr);
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Push+NUMA-Awareness (PartitionPolicy::NumaAware): the PA recipe at socket
// granularity — one pinned lane per NUMA node over first-touch adjacency,
// node-local scatters plain, cross-node scatters lock-accounted. Identical
// arithmetic to pagerank_push_pa with a parts-per-node partition; only the
// lane/memory placement differs.
template <class Instr = NullInstr>
std::vector<double> pagerank_push_numa(const Csr& g, const NumaAwareCsr& ng,
                                       const PageRankOptions& opt,
                                       Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && ng.n() == n);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 3;  // local half; the engine tags the cross half region+1
  for (int l = 0; l < opt.iterations; ++l) {
    const double dangling = detail::pr_dangling_mass(g, pr);
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;
    engine::dense_push_numa(
        ng, ws,
        detail::PrScatter<NumaAwareCsr>{&ng, pr.data(), next.data(),
                                        opt.damping},
        emo, instr);
    engine::vertex_map(
        n, ws,
        [&](auto& ctx, vid_t v) {
          ctx.add(next[static_cast<std::size_t>(v)], base);
          return false;
        },
        /*track=*/false, instr);
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Sequential reference (power iteration, identical update rule).
std::vector<double> pagerank_seq(const Csr& g, const PageRankOptions& opt);

}  // namespace pushpull
