// Betweenness Centrality (§3.5, §4.5, Algorithm 5) — parallel Brandes.
//
// For each source s, a forward level-synchronous BFS computes shortest-path
// counts σ, then a backward sweep over the BFS levels accumulates the
// dependencies δ_s(v) = Σ_{w: v ∈ pred(s,w)} σ_sv/σ_sw · (1 + δ_s(w)).
//
// Both phases exist in push and pull flavors:
//   forward push  — frontier vertices claim unvisited neighbors with CAS and
//                   add σ contributions with integer FAA (atomics),
//   forward pull  — unvisited vertices adopt the level and sum σ from their
//                   frontier neighbors (thread-private writes, no atomics),
//   backward push — each vertex pushes partial centrality to its
//                   predecessors; the accumuland is a float, so each update
//                   is a lock-accounted CAS loop (the paper's key point:
//                   pushing turns int conflicts into float conflicts here),
//   backward pull — each vertex pulls partial centrality from its successors
//                   (reads only, writes its own δ).
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct BcOptions {
  // Sources to process; empty = all vertices (exact BC).
  std::vector<vid_t> sources;
  Direction forward = Direction::Push;
  Direction backward = Direction::Push;
};

struct BcResult {
  std::vector<double> bc;
  double forward_s = 0.0;   // total time in the first (counting) BFS phase
  double backward_s = 0.0;  // total time in the second (accumulation) phase
};

template <class Instr = NullInstr>
BcResult betweenness_centrality(const Csr& g, const BcOptions& opt = {},
                                Instr instr = {}) {
  const vid_t n = g.n();
  BcResult result;
  result.bc.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  std::vector<vid_t> sources = opt.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }

  std::vector<vid_t> dist(static_cast<std::size_t>(n));
  std::vector<std::int64_t> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> levels;
  FrontierBuffers buffers(omp_get_max_threads());

  for (vid_t s : sources) {
    PP_CHECK(s >= 0 && s < n);
    // ----- Phase 1: forward BFS computing σ ------------------------------
    WallTimer fwd_timer;
    std::fill(dist.begin(), dist.end(), vid_t{-1});
    std::fill(sigma.begin(), sigma.end(), std::int64_t{0});
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1;
    levels.clear();
    levels.push_back({s});

    vid_t level = 0;
    while (!levels.back().empty()) {
      const std::vector<vid_t>& frontier = levels.back();
      ++level;
      if (opt.forward == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          instr.code_region(60);
          const vid_t v = frontier[i];
          for (vid_t u : g.neighbors(v)) {
            instr.branch_cond();
            vid_t du = atomic_load(dist[static_cast<std::size_t>(u)]);
            if (du == -1) {
              vid_t expected = -1;
              instr.atomic(&dist[static_cast<std::size_t>(u)], sizeof(vid_t));
              if (cas(dist[static_cast<std::size_t>(u)], expected, level)) {
                buffers.push_local(u);
              }
              du = atomic_load(dist[static_cast<std::size_t>(u)]);
            }
            if (du == level) {
              // Integer path-count accumulation → FAA (⇐pred, §4.5).
              instr.atomic(&sigma[static_cast<std::size_t>(u)],
                           sizeof(std::int64_t));
              faa(sigma[static_cast<std::size_t>(u)],
                  sigma[static_cast<std::size_t>(v)]);
            }
          }
        }
      } else {
#pragma omp parallel for schedule(dynamic, 256)
        for (vid_t v = 0; v < n; ++v) {
          instr.code_region(61);
          if (dist[static_cast<std::size_t>(v)] != -1) continue;
          std::int64_t paths = 0;
          for (vid_t u : g.neighbors(v)) {
            instr.read(&dist[static_cast<std::size_t>(u)], sizeof(vid_t));
            instr.branch_cond();
            if (atomic_load(dist[static_cast<std::size_t>(u)]) == level - 1) {
              instr.read(&sigma[static_cast<std::size_t>(u)], sizeof(std::int64_t));
              paths += sigma[static_cast<std::size_t>(u)];
            }
          }
          if (paths > 0) {
            // Thread-private writes: v is owned by the iterating thread.
            instr.write(&dist[static_cast<std::size_t>(v)], sizeof(vid_t));
            instr.write(&sigma[static_cast<std::size_t>(v)], sizeof(std::int64_t));
            dist[static_cast<std::size_t>(v)] = level;
            sigma[static_cast<std::size_t>(v)] = paths;
            buffers.push_local(v);
          }
        }
      }
      levels.emplace_back();
      buffers.merge_into(levels.back());
    }
    levels.pop_back();  // drop the empty terminating frontier
    result.forward_s += fwd_timer.elapsed_s();

    // ----- Phase 2: backward dependency accumulation ----------------------
    WallTimer bwd_timer;
    std::fill(delta.begin(), delta.end(), 0.0);
    for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
      if (opt.backward == Direction::Pull) {
        const std::vector<vid_t>& lvl = levels[static_cast<std::size_t>(l)];
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < lvl.size(); ++i) {
          instr.code_region(62);
          const vid_t v = lvl[i];
          double acc = 0.0;
          for (vid_t u : g.neighbors(v)) {
            instr.read(&dist[static_cast<std::size_t>(u)], sizeof(vid_t));
            instr.branch_cond();
            if (dist[static_cast<std::size_t>(u)] == l + 1) {
              instr.read(&delta[static_cast<std::size_t>(u)], sizeof(double));
              acc += static_cast<double>(sigma[static_cast<std::size_t>(v)]) /
                     static_cast<double>(sigma[static_cast<std::size_t>(u)]) *
                     (1.0 + delta[static_cast<std::size_t>(u)]);
            }
          }
          instr.write(&delta[static_cast<std::size_t>(v)], sizeof(double));
          delta[static_cast<std::size_t>(v)] += acc;
        }
      } else {
        const std::vector<vid_t>& lvl = levels[static_cast<std::size_t>(l) + 1];
#pragma omp parallel for schedule(dynamic, 64)
        for (std::size_t i = 0; i < lvl.size(); ++i) {
          instr.code_region(63);
          const vid_t w = lvl[i];
          const double contrib_base =
              (1.0 + delta[static_cast<std::size_t>(w)]) /
              static_cast<double>(sigma[static_cast<std::size_t>(w)]);
          for (vid_t v : g.neighbors(w)) {
            instr.read(&dist[static_cast<std::size_t>(v)], sizeof(vid_t));
            instr.branch_cond();
            if (dist[static_cast<std::size_t>(v)] == l) {
              // Float write conflict → lock-accounted CAS loop (§4.5).
              instr.lock(&delta[static_cast<std::size_t>(v)]);
              atomic_add(delta[static_cast<std::size_t>(v)],
                         static_cast<double>(sigma[static_cast<std::size_t>(v)]) *
                             contrib_base);
            }
          }
        }
      }
    }
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (v != s) result.bc[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
    }
    result.backward_s += bwd_timer.elapsed_s();
  }

  // Undirected graphs: each (s, t) pair contributes twice.
  const bool exact_all_sources = sources.size() == static_cast<std::size_t>(n);
  if (exact_all_sources) {
    for (double& x : result.bc) x /= 2.0;
  }
  return result;
}

}  // namespace pushpull
