// Betweenness Centrality (§3.5, §4.5, Algorithm 5) — parallel Brandes, on the
// engine substrate.
//
// For each source s, a forward level-synchronous BFS computes shortest-path
// counts σ, then a backward sweep over the BFS levels accumulates the
// dependencies δ_s(v) = Σ_{w: v ∈ pred(s,w)} σ_sv/σ_sw · (1 + δ_s(w)).
//
// Both phases exist in push and pull flavors, each one engine call per level:
//   forward push  — sparse_push: frontier vertices claim unvisited neighbors
//                   (AtomicCtx::claim) and add σ contributions with integer
//                   FAA (AtomicCtx::add on int64 → atomics),
//   forward pull  — dense_pull: unvisited vertices adopt the level and sum σ
//                   from their frontier neighbors (PlainCtx, no atomics),
//   backward push — sparse_push over the deeper level: each vertex pushes
//                   partial centrality to its predecessors; the accumuland is
//                   a float, so AtomicCtx::add prices each update as a lock
//                   (the paper's key point: pushing turns int conflicts into
//                   float conflicts here),
//   backward pull — sparse_pull over the shallower level: each vertex pulls
//                   partial centrality from its successors (reads only,
//                   writes its own δ).
#pragma once

#include <cstdint>
#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct BcOptions {
  // Sources to process; empty = all vertices (exact BC).
  std::vector<vid_t> sources;
  Direction forward = Direction::Push;
  Direction backward = Direction::Push;
};

struct BcResult {
  std::vector<double> bc;
  double forward_s = 0.0;   // total time in the first (counting) BFS phase
  double backward_s = 0.0;  // total time in the second (accumulation) phase
};

namespace detail {

struct BcForwardPush {
  vid_t* dist;
  std::int64_t* sigma;
  vid_t level;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t v, vid_t u, eid_t) const {
    bool claimed = false;
    vid_t du = atomic_load(dist[u]);
    if (du == -1) {
      if (ctx.claim(dist[u], vid_t{-1}, level)) claimed = true;
      du = atomic_load(dist[u]);
    }
    if (du == level) {
      // Integer path-count accumulation → FAA (⇐pred, §4.5). σ(v) is
      // finalized: levels are synchronous.
      ctx.add(sigma[u], sigma[v]);
    }
    return claimed;
  }
};

struct BcForwardPull {
  vid_t* dist;
  std::int64_t* sigma;
  vid_t level;

  bool cond(vid_t v) const { return dist[v] == -1; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (ctx.load(dist[u]) != level - 1) return false;
    ctx.instr().read(&sigma[u], sizeof(std::int64_t));
    // Thread-private accumulation: v is owned by the iterating thread and
    // starts at σ = 0, so the in-order fold matches the register sum.
    ctx.add(sigma[v], sigma[u]);
    return true;
  }

  template <class Ctx>
  bool finalize(Ctx& ctx, vid_t v) const {
    if (sigma[v] <= 0) return false;
    ctx.store(dist[v], level);
    return true;
  }
};

struct BcBackwardPush {
  const vid_t* dist;
  const std::int64_t* sigma;
  double* delta;
  int l;

  template <class Ctx>
  double source_data(Ctx&, vid_t w) const {
    return (1.0 + delta[w]) / static_cast<double>(sigma[w]);
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t v, eid_t, double contrib_base) const {
    if (ctx.load(dist[v]) != l) return false;
    // Float write conflict → lock-accounted CAS loop (§4.5).
    ctx.add(delta[v], static_cast<double>(sigma[v]) * contrib_base);
    return false;
  }
};

struct BcBackwardPull {
  const vid_t* dist;
  const std::int64_t* sigma;
  double* delta;
  int l;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (ctx.load(dist[u]) != l + 1) return false;
    ctx.instr().read(&delta[u], sizeof(double));
    ctx.add(delta[v], static_cast<double>(sigma[v]) /
                          static_cast<double>(sigma[u]) * (1.0 + delta[u]));
    return false;
  }
};

}  // namespace detail

template <class Instr = NullInstr>
BcResult betweenness_centrality(const Csr& g, const BcOptions& opt = {},
                                Instr instr = {}) {
  const vid_t n = g.n();
  BcResult result;
  result.bc.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  std::vector<vid_t> sources = opt.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }

  std::vector<vid_t> dist(static_cast<std::size_t>(n));
  std::vector<std::int64_t> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<std::vector<vid_t>> levels;
  engine::Workspace ws(n);
  engine::EdgeMapOptions fwd_opt;
  engine::EdgeMapOptions bwd_opt;
  bwd_opt.track_output = false;

  for (vid_t s : sources) {
    PP_CHECK(s >= 0 && s < n);
    // ----- Phase 1: forward BFS computing σ ------------------------------
    WallTimer fwd_timer;
    std::fill(dist.begin(), dist.end(), vid_t{-1});
    std::fill(sigma.begin(), sigma.end(), std::int64_t{0});
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1;
    levels.clear();
    levels.push_back({s});

    vid_t level = 0;
    while (!levels.back().empty()) {
      ++level;
      engine::VertexSet next(n);
      if (opt.forward == Direction::Push) {
        fwd_opt.region = 60;
        next = engine::sparse_push(
            g, ws, std::span<const vid_t>(levels.back()),
            detail::BcForwardPush{dist.data(), sigma.data(), level}, fwd_opt,
            instr);
      } else {
        fwd_opt.region = 61;
        next = engine::dense_pull(
            g, ws, detail::BcForwardPull{dist.data(), sigma.data(), level},
            fwd_opt, instr);
      }
      levels.push_back(std::move(next.mutable_ids()));
    }
    levels.pop_back();  // drop the empty terminating frontier
    result.forward_s += fwd_timer.elapsed_s();

    // ----- Phase 2: backward dependency accumulation ----------------------
    WallTimer bwd_timer;
    std::fill(delta.begin(), delta.end(), 0.0);
    for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
      if (opt.backward == Direction::Pull) {
        bwd_opt.region = 62;
        engine::sparse_pull(
            g, ws, std::span<const vid_t>(levels[static_cast<std::size_t>(l)]),
            detail::BcBackwardPull{dist.data(), sigma.data(), delta.data(), l},
            bwd_opt, instr);
      } else {
        bwd_opt.region = 63;
        engine::sparse_push(
            g, ws,
            std::span<const vid_t>(levels[static_cast<std::size_t>(l) + 1]),
            detail::BcBackwardPush{dist.data(), sigma.data(), delta.data(), l},
            bwd_opt, instr);
      }
    }
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (v != s) result.bc[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
    }
    result.backward_s += bwd_timer.elapsed_s();
  }

  // Undirected graphs: each (s, t) pair contributes twice.
  const bool exact_all_sources = sources.size() == static_cast<std::size_t>(n);
  if (exact_all_sources) {
    for (double& x : result.bc) x /= 2.0;
  }
  return result;
}

}  // namespace pushpull
