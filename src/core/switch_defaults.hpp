// The direction-switch default constants and their per-direction refinement.
//
// One source of truth for the Beamer direction-optimizing thresholds (α = 14,
// β = 24) that every switching surface shares: core DirOptParams, the engine's
// DirectionParams, the directed DigraphBfsOptions, CcOptions and the dist
// FrontierHeuristic all default from here instead of each repeating the
// literals.
//
// On digraphs the dichotomy is asymmetric (§4.8): pushing pays the frontier's
// *out*-arc mass, pulling scans the unvisited set's *in*-arcs, and the two
// degree estimates d̂_out and d̂_in differ on skewed graphs. SwitchThresholds
// carries a separate (α_out, β_in) pair and per_direction_thresholds derives
// it from the view's source/sink structure, so a sink-heavy digraph enters
// pull earlier (its fat sinks make bottom-up parent discovery cheap and
// top-down CAS contention expensive) and leaves it later, while a symmetric
// view reproduces the classic single-pair behavior bit for bit.
#pragma once

#include <algorithm>

namespace pushpull {

// Generic-Switch defaults (§5): push→pull when active_work > total_work/α,
// pull→push when active_count < total_count/β.
inline constexpr double kSwitchAlpha = 14.0;
inline constexpr double kSwitchBeta = 24.0;

// Per-direction switch thresholds: α_out gates the push→pull flip in units of
// out-arc work, β_in gates the pull→push flip in destination counts.
struct SwitchThresholds {
  double alpha_out = kSwitchAlpha;
  double beta_in = kSwitchBeta;
};

// Scales (α, β) by the view's direction skew r = d̂_in / d̂_out, where
// d̂_out = m / #{v : out_degree(v) > 0} (mean degree over push *sources*) and
// d̂_in = m / #{v : in_degree(v) > 0} (mean degree over pull *sinks*). Since
// Σ out-degrees = Σ in-degrees = m, plain per-vertex averages are always
// equal — the skew lives in how many vertices carry the arcs on each side.
// r > 1 means arcs concentrate on few sinks: a pull round amortizes better
// (α_out grows — flip to pull sooner) and stays profitable longer (β_in
// grows — the pull→push count threshold total/β_in shrinks). r is clamped to
// [1/8, 8] so a degenerate view (one hub, no sinks) cannot push a threshold
// past the useful range. Symmetric graphs give r = 1: the scaled pair equals
// (α, β) exactly, which the differential tests rely on.
inline SwitchThresholds per_direction_thresholds(double arcs,
                                                 double out_sources,
                                                 double in_sinks,
                                                 double alpha = kSwitchAlpha,
                                                 double beta = kSwitchBeta) {
  SwitchThresholds t{alpha, beta};
  if (arcs <= 0 || out_sources <= 0 || in_sinks <= 0) return t;
  const double r = std::clamp(out_sources / in_sinks, 1.0 / 8.0, 8.0);
  t.alpha_out = alpha * r;
  t.beta_in = beta * r;
  return t;
}

}  // namespace pushpull
