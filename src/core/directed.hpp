// Directed-graph push/pull kernels (§4.8), on the engine substrate.
//
// On digraphs the dichotomy becomes asymmetric: pushing iterates the
// *outgoing* arcs of the active vertices while pulling iterates the
// *incoming* arcs of the updated vertices, so the cost bounds trade d̂_out
// against d̂_in. engine::DigraphView carries that asymmetry into edge_map —
// sparse/dense push walk Digraph::out, dense/sparse pull walk Digraph::in —
// and the kernels below are plain functors plus policy choices, exactly like
// their undirected counterparts in core/pagerank.hpp and core/bfs.hpp. Pull
// keeps its defining zero-sync property on digraphs: the view changes which
// arcs are scanned, never the update context.
//
// Beyond the §4.8 pair (PageRank, BFS) this header adds the directed riders
// the seam makes cheap: a strategy-driven BFS (push/pull/GS/GrS/FE via
// DirectionPolicy), forward/backward reachability, and an FW-BW SCC
// decomposition whose backward passes run the *same* claim functor over
// view.reversed().
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "engine/graph_view.hpp"
#include "engine/policy.hpp"
#include "graph/csr.hpp"
#include "obs/trace.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"

namespace pushpull {

struct DirectedPageRankOptions {
  int iterations = 20;
  double damping = 0.85;
};

namespace detail {

// Push: every non-dangling u adds f·r(u)/d_out(u) into each out-neighbor's
// accumulator. Float conflicts → lock-accounted CAS loops (§4.1): one lock
// per out-arc, which test_directed pins exactly.
template <CsrLike G>
struct DirPrScatter {
  const G* out;
  const double* pr;
  double* next;
  double damping;

  bool source(vid_t s) const { return out->degree(s) != 0; }

  template <class Ctx>
  double source_data(Ctx&, vid_t s) const {
    return damping * pr[s] / out->degree(s);
  }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t, double share) const {
    ctx.add(next[d], share);
    return false;
  }
};

// Pull: v folds f·r(u)/d_out(u) over its in-neighbors into its own
// accumulator (PlainCtx — read conflicts only; exactly one counted read per
// in-arc, the §4.8 cost shape test_directed pins).
template <CsrLike G>
struct DirPrGather {
  const G* out;
  const double* pr;
  double* next;
  double base;
  double damping;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    const double pu = ctx.load(pr[u]);
    next[v] += pu / out->degree(u);
    return false;
  }

  template <class Ctx>
  bool finalize(Ctx& ctx, vid_t v) const {
    ctx.store(next[v], base + damping * next[v]);
    return false;
  }
};

// Directed BFS push: claim an unvisited out-neighbor with CAS.
struct DirBfsClaim {
  vid_t* dist;
  vid_t level;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    if (ctx.load(dist[d]) >= 0) return false;
    return ctx.claim(dist[d], vid_t{-1}, level);
  }
};

// Directed BFS pull: an unvisited vertex adopts the first *in*-neighbor on
// the previous level; thread-private writes only.
struct DirBfsAdopt {
  vid_t* dist;
  vid_t level;

  static constexpr bool kBreakOnUpdate = true;

  bool cond(vid_t v) const { return dist[v] < 0; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (ctx.load(dist[u]) != level - 1) return false;
    ctx.store(dist[v], level);
    return true;
  }
};

}  // namespace detail

// Directed PageRank: rank flows along arc direction, r(v) depends on the
// in-neighbors' ranks scaled by their *out*-degrees. Dangling vertices
// (out-degree 0) redistribute uniformly.
template <engine::GraphView View, class Instr = NullInstr>
std::vector<double> pagerank_digraph(const View& view,
                                     const DirectedPageRankOptions& opt,
                                     Direction dir, Instr instr = {}) {
  const vid_t n = view.n();
  PP_CHECK(n > 0);
  const auto& out = view.out();
  using OutG = std::remove_cvref_t<decltype(view.out())>;
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.track_output = false;
  for (int l = 0; l < opt.iterations; ++l) {
    double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (out.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;

    if (dir == Direction::Push) {
      emo.region = 70;
      engine::dense_push(
          view, ws, /*sources=*/nullptr,
          detail::DirPrScatter<OutG>{&out, pr.data(), next.data(), opt.damping},
          emo, instr);
      engine::vertex_map(
          n, ws,
          [&](auto& ctx, vid_t v) {
            ctx.add(next[static_cast<std::size_t>(v)], base);
            return false;
          },
          /*track=*/false, instr);
    } else {
      emo.region = 71;
      engine::dense_pull(view, ws,
                         detail::DirPrGather<OutG>{&out, pr.data(), next.data(),
                                                   base, opt.damping},
                         emo, instr);
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

template <class Instr = NullInstr>
std::vector<double> pagerank_digraph(const Digraph& g,
                                     const DirectedPageRankOptions& opt,
                                     Direction dir, Instr instr = {}) {
  PP_CHECK(g.in.n() == g.out.n());
  return pagerank_digraph(engine::DigraphView(g), opt, dir, instr);
}

// Sequential reference (pull formulation, serial).
std::vector<double> pagerank_digraph_seq(const Digraph& g,
                                         const DirectedPageRankOptions& opt);

// Directed BFS along arc direction.
//   push — frontier vertices claim unvisited *out*-neighbors with CAS,
//   pull — unvisited vertices scan their *in*-neighbors for frontier members.
template <engine::GraphView View, class Instr = NullInstr>
std::vector<vid_t> bfs_digraph(const View& view, vid_t root, Direction dir,
                               Instr instr = {}) {
  const vid_t n = view.n();
  PP_CHECK(root >= 0 && root < n);
  std::vector<vid_t> dist(static_cast<std::size_t>(n), -1);
  dist[static_cast<std::size_t>(root)] = 0;
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;

  if (dir == Direction::Push) {
    emo.region = 72;
    engine::VertexSet frontier = engine::VertexSet::single(n, root);
    vid_t level = 0;
    while (!frontier.empty()) {
      ++level;
      frontier = engine::sparse_push(
          view, ws, frontier, detail::DirBfsClaim{dist.data(), level}, emo,
          instr);
    }
  } else {
    emo.region = 73;
    vid_t level = 0;
    for (;;) {
      ++level;
      const engine::VertexSet claimed = engine::dense_pull(
          view, ws, detail::DirBfsAdopt{dist.data(), level}, emo, instr);
      if (claimed.empty()) break;
    }
  }
  return dist;
}

template <class Instr = NullInstr>
std::vector<vid_t> bfs_digraph(const Digraph& g, vid_t root, Direction dir,
                               Instr instr = {}) {
  return bfs_digraph(engine::DigraphView(g), root, dir, instr);
}

// --- Strategy-driven directed BFS (§5 over DigraphView) ----------------------

struct DigraphBfsOptions {
  engine::StrategyKind strategy = engine::StrategyKind::GenericSwitch;
  double alpha = kSwitchAlpha;  // push→pull when frontier out-arcs > m/α
  double beta = kSwitchBeta;    // pull→push when frontier size < n/β
  double grs_threshold = 0.0;   // GrS: sequential tail below this fraction
  // Per-direction refinement (§4.8): scale (α, β) by the view's d̂_in/d̂_out
  // skew so sink-heavy digraphs flip to pull sooner and leave it later
  // (switch_defaults.hpp has the model). Symmetric views scale by exactly 1.
  bool per_direction = true;
  // Frontier-aware pull window; 0 disables the indexed pull path.
  double gamma = 3.0;
};

struct DigraphBfsResult {
  std::vector<vid_t> dist;
  int levels = 0;
  int sequential_tail_levels = 0;  // GrS: levels finished by the serial tail
  std::vector<Direction> level_dirs;
};

// One BFS, five §5 strategies: static push, static pull, Generic-Switch,
// Greedy-Switch (serial worklist tail), Frontier-Exploit — all the same two
// functors over DigraphView, direction chosen per level by DirectionPolicy.
template <engine::GraphView View, class Instr = NullInstr,
          class TracerT = obs::NullTracer>
DigraphBfsResult bfs_digraph_strategy(const View& view, vid_t root,
                                      const DigraphBfsOptions& opt = {},
                                      Instr instr = {},
                                      TracerT* tracer = nullptr) {
  const vid_t n = view.n();
  PP_CHECK(root >= 0 && root < n);
  DigraphBfsResult r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  engine::Workspace ws(n);
  engine::DirectionParams params{opt.alpha, opt.beta, opt.grs_threshold,
                                 opt.gamma};
  if (opt.per_direction) {
    params = params.with_thresholds(
        engine::per_direction_thresholds(view, opt.alpha, opt.beta));
  }
  engine::DirectionPolicy policy(opt.strategy, params, Direction::Push);
  engine::EdgeMapOptions emo;
  emo.region = 74;
  engine::VertexSet frontier = engine::VertexSet::single(n, root);
  double frontier_out_arcs = view.out_degree(root);
  vid_t level = 0;

  while (!frontier.empty()) {
    const bool trace = obs::tracing(tracer);
    const std::int64_t frontier_size = frontier.size();

    // Greedy-Switch: finish the sub-threshold remainder with a sequential
    // FIFO sweep (the engine supplies the decision, the caller the tail).
    if (policy.suggest_sequential(static_cast<double>(frontier.size()),
                                  static_cast<double>(n)) &&
        level > 0) {
      const std::uint64_t t0 = trace ? obs::now_ns() : 0;
      std::vector<vid_t> queue(frontier.ids().begin(), frontier.ids().end());
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const vid_t v = queue[head];
        for (vid_t u : view.out().neighbors(v)) {
          if (r.dist[static_cast<std::size_t>(u)] < 0) {
            r.dist[static_cast<std::size_t>(u)] =
                r.dist[static_cast<std::size_t>(v)] + 1;
            queue.push_back(u);
          }
        }
      }
      r.sequential_tail_levels = 1;
      ++r.levels;
      if (trace) {
        obs::RoundEvent ev;
        ev.kernel = "bfs-digraph";
        ev.mode = "sequential-tail";
        ev.round = static_cast<int>(level + 1);
        ev.frontier_size = frontier_size;
        ev.active_work = static_cast<std::int64_t>(frontier_out_arcs);
        ev.total_work = static_cast<std::int64_t>(view.num_arcs());
        ev.total_count = n;
        ev.alpha = policy.params().alpha;
        ev.beta = policy.params().beta;
        ev.t0_ns = t0;
        ev.dur_ns = obs::now_ns() - t0;
        obs::record_round(tracer, ev);
      }
      break;
    }

    ++level;
    const double active_work = frontier_out_arcs;
    const Direction dir = policy.choose(
        frontier_out_arcs, static_cast<double>(view.num_arcs()),
        static_cast<double>(frontier.size()), static_cast<double>(n));
    engine::EdgeMapStats st;
    engine::EdgeMapStats* stp = trace ? &st : nullptr;
    const std::uint64_t t0 = trace ? obs::now_ns() : 0;
    const CounterBlock c0 = trace ? obs::instr_snapshot(instr) : CounterBlock{};
    if (dir == Direction::Push) {
      frontier = engine::sparse_push(
          view, ws, frontier, detail::DirBfsClaim{r.dist.data(), level}, emo,
          instr, stp);
    } else if (policy.pull_shape(active_work,
                                 static_cast<double>(view.num_arcs())) ==
               engine::PullShape::FrontierIndexed) {
      // Medium-density bottom-up: the previous level (the current frontier)
      // is exactly the set DirBfsAdopt listens to, so the indexed sweep
      // claims the same vertices as a dense pull would.
      engine::FrontierIndex& idx = ws.frontier_index();
      idx.build(frontier.ids());
      frontier = engine::frontier_pull(
          view, ws, idx, detail::DirBfsAdopt{r.dist.data(), level}, emo, instr,
          stp);
    } else {
      frontier = engine::dense_pull(
          view, ws, detail::DirBfsAdopt{r.dist.data(), level}, emo, instr, stp);
    }
    frontier_out_arcs = frontier.out_degree_sum(view);
    r.level_dirs.push_back(dir);
    ++r.levels;
    if (trace) {
      obs::RoundEvent ev;
      ev.kernel = "bfs-digraph";
      ev.mode = engine::to_string(st.mode);
      ev.round = static_cast<int>(level);
      ev.frontier_size = frontier_size;
      ev.active_work = static_cast<std::int64_t>(active_work);
      ev.total_work = static_cast<std::int64_t>(view.num_arcs());
      ev.total_count = n;
      ev.alpha = policy.params().alpha;
      ev.beta = policy.params().beta;
      ev.updates = st.updates;
      ev.t0_ns = t0;
      ev.dur_ns = obs::now_ns() - t0;
      ev.instr = obs::counter_delta(obs::instr_snapshot(instr), c0);
      obs::record_round(tracer, ev);
    }
  }
  return r;
}

template <class Instr = NullInstr, class TracerT = obs::NullTracer>
DigraphBfsResult bfs_digraph_strategy(const Digraph& g, vid_t root,
                                      const DigraphBfsOptions& opt = {},
                                      Instr instr = {},
                                      TracerT* tracer = nullptr) {
  return bfs_digraph_strategy(engine::DigraphView(g), root, opt, instr, tracer);
}

// --- Reachability ------------------------------------------------------------

namespace detail {

// Claim an unvisited target, optionally restricted to one FW-BW subproblem.
struct ReachClaim {
  std::uint8_t* visited;
  const vid_t* sub = nullptr;  // nullptr: unrestricted
  vid_t sid = 0;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t, vid_t d, eid_t) const {
    if (sub != nullptr && sub[d] != sid) return false;
    if (ctx.load(visited[d])) return false;
    return ctx.claim(visited[d], std::uint8_t{0}, std::uint8_t{1});
  }
};

// Pull flavor: an unvisited vertex adopts reachability from any visited
// in-neighbor (monotone — rounds repeat until a sweep claims nothing).
struct ReachAdopt {
  std::uint8_t* visited;

  static constexpr bool kBreakOnUpdate = true;

  bool cond(vid_t v) const { return visited[v] == 0; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (!ctx.load(visited[u])) return false;
    ctx.store(visited[v], std::uint8_t{1});
    return true;
  }
};

}  // namespace detail

// Vertices reachable from `root` along arc direction (1 = reachable).
//   push — frontier rounds of sparse_push over out-arcs,
//   pull — dense_pull sweeps over in-arcs until no vertex flips.
template <engine::GraphView View, class Instr = NullInstr>
std::vector<std::uint8_t> reachability_digraph(const View& view, vid_t root,
                                               Direction dir, Instr instr = {}) {
  const vid_t n = view.n();
  PP_CHECK(root >= 0 && root < n);
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(root)] = 1;
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.region = 75;

  if (dir == Direction::Push) {
    engine::VertexSet frontier = engine::VertexSet::single(n, root);
    while (!frontier.empty()) {
      frontier = engine::sparse_push(
          view, ws, frontier, detail::ReachClaim{visited.data()}, emo, instr);
    }
  } else {
    for (;;) {
      const engine::VertexSet claimed = engine::dense_pull(
          view, ws, detail::ReachAdopt{visited.data()}, emo, instr);
      if (claimed.empty()) break;
    }
  }
  return visited;
}

template <class Instr = NullInstr>
std::vector<std::uint8_t> reachability_digraph(const Digraph& g, vid_t root,
                                               Direction dir, Instr instr = {}) {
  return reachability_digraph(engine::DigraphView(g), root, dir, instr);
}

// Strongly connected components via forward-backward reachability (the
// SCC-forward passes ride the same ReachClaim functor; the backward pass
// pushes over view.reversed(), i.e. along in-arcs). Returns a component id
// per vertex in [0, #scc).
std::vector<vid_t> scc_digraph(const Digraph& g);

}  // namespace pushpull
