// Directed-graph push/pull variants (§4.8).
//
// On digraphs the dichotomy becomes asymmetric: pushing iterates the
// *outgoing* arcs of the active vertices while pulling iterates the
// *incoming* arcs of the updated vertices, so the cost bounds trade d̂_out
// against d̂_in. The Digraph type carries both CSRs (out + transposed in);
// these kernels are the directed counterparts of core/pagerank.hpp and
// core/bfs.hpp.
#pragma once

#include <omp.h>

#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull {

struct DirectedPageRankOptions {
  int iterations = 20;
  double damping = 0.85;
};

// Directed PageRank: rank flows along arc direction, r(v) depends on the
// in-neighbors' ranks scaled by their *out*-degrees. Dangling vertices
// (out-degree 0) redistribute uniformly.
//
//   push — every u adds f·r(u)/d_out(u) into each out-neighbor's new rank
//          (float conflicts → lock-accounted CAS loops; cost scales with
//          out-degree structure),
//   pull — every v sums f·r(u)/d_out(u) over its in-neighbors (read-only on
//          shared state; cost scales with in-degree structure).
template <class Instr = NullInstr>
std::vector<double> pagerank_digraph(const Digraph& g,
                                     const DirectedPageRankOptions& opt,
                                     Direction dir, Instr instr = {}) {
  const vid_t n = g.out.n();
  PP_CHECK(n > 0);
  PP_CHECK(g.in.n() == n);
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l < opt.iterations; ++l) {
    double dangling = 0.0;
#pragma omp parallel for reduction(+ : dangling) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      if (g.out.degree(v) == 0) dangling += pr[static_cast<std::size_t>(v)];
    }
    const double base = (1.0 - opt.damping) / n + opt.damping * dangling / n;

    if (dir == Direction::Push) {
#pragma omp parallel
      {
#pragma omp for schedule(static)
        for (vid_t u = 0; u < n; ++u) {
          instr.code_region(70);
          const vid_t deg = g.out.degree(u);
          if (deg == 0) continue;
          const double share = opt.damping * pr[static_cast<std::size_t>(u)] / deg;
          for (vid_t v : g.out.neighbors(u)) {
            instr.branch_cond();
            instr.lock(&next[static_cast<std::size_t>(v)]);
            atomic_add(next[static_cast<std::size_t>(v)], share);
          }
        }
#pragma omp for schedule(static)
        for (vid_t v = 0; v < n; ++v) {
          instr.write(&next[static_cast<std::size_t>(v)], sizeof(double));
          next[static_cast<std::size_t>(v)] += base;
        }
      }
    } else {
#pragma omp parallel for schedule(static)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(71);
        double sum = 0.0;
        for (vid_t u : g.in.neighbors(v)) {
          instr.read(&pr[static_cast<std::size_t>(u)], sizeof(double));
          instr.branch_cond();
          sum += pr[static_cast<std::size_t>(u)] / g.out.degree(u);
        }
        next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
      }
    }
    pr.swap(next);
    std::fill(next.begin(), next.end(), 0.0);
  }
  return pr;
}

// Sequential reference (pull formulation, serial).
std::vector<double> pagerank_digraph_seq(const Digraph& g,
                                         const DirectedPageRankOptions& opt);

// Directed BFS along arc direction.
//   push — frontier vertices claim unvisited *out*-neighbors with CAS,
//   pull — unvisited vertices scan their *in*-neighbors for frontier members.
template <class Instr = NullInstr>
std::vector<vid_t> bfs_digraph(const Digraph& g, vid_t root, Direction dir,
                               Instr instr = {}) {
  const vid_t n = g.out.n();
  PP_CHECK(root >= 0 && root < n);
  std::vector<vid_t> dist(static_cast<std::size_t>(n), -1);
  dist[static_cast<std::size_t>(root)] = 0;

  if (dir == Direction::Push) {
    FrontierBuffers buffers(omp_get_max_threads());
    std::vector<vid_t> frontier{root};
    vid_t level = 0;
    while (!frontier.empty()) {
      ++level;
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        instr.code_region(72);
        for (vid_t u : g.out.neighbors(frontier[i])) {
          instr.branch_cond();
          if (atomic_load(dist[static_cast<std::size_t>(u)]) >= 0) continue;
          vid_t expected = -1;
          instr.atomic(&dist[static_cast<std::size_t>(u)], sizeof(vid_t));
          if (cas(dist[static_cast<std::size_t>(u)], expected, level)) {
            buffers.push_local(u);
          }
        }
      }
      buffers.merge_into(frontier);
    }
  } else {
    vid_t level = 0;
    bool advanced = true;
    while (advanced) {
      ++level;
      bool any = false;
#pragma omp parallel for schedule(dynamic, 256) reduction(|| : any)
      for (vid_t v = 0; v < n; ++v) {
        instr.code_region(73);
        if (dist[static_cast<std::size_t>(v)] >= 0) continue;
        for (vid_t u : g.in.neighbors(v)) {
          instr.read(&dist[static_cast<std::size_t>(u)], sizeof(vid_t));
          instr.branch_cond();
          if (dist[static_cast<std::size_t>(u)] == level - 1) {
            dist[static_cast<std::size_t>(v)] = level;
            any = true;
            break;
          }
        }
      }
      advanced = any;
    }
  }
  return dist;
}

}  // namespace pushpull
