#include "core/triangle_count.hpp"

#include <algorithm>
#include <numeric>

namespace pushpull {

std::vector<std::int64_t> triangle_count_fast(const Csr& g) {
  const vid_t n = g.n();
  std::vector<std::int64_t> tc(static_cast<std::size_t>(n), 0);

  // Degree ordering: rank(v) < rank(u) iff (d(v), v) < (d(u), u). Orienting
  // every edge from lower to higher rank bounds each forward list by
  // O(sqrt(m)), the standard arboricity argument.
  std::vector<vid_t> rank(static_cast<std::size_t>(n));
  {
    std::vector<vid_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), vid_t{0});
    std::sort(order.begin(), order.end(), [&g](vid_t a, vid_t b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) < g.degree(b);
      return a < b;
    });
    for (vid_t i = 0; i < n; ++i) rank[static_cast<std::size_t>(order[i])] = i;
  }

  // Forward adjacency (higher-ranked neighbors), id-sorted because the source
  // lists are id-sorted.
  std::vector<eid_t> fwd_off(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : g.neighbors(v)) {
      if (rank[static_cast<std::size_t>(u)] > rank[static_cast<std::size_t>(v)]) {
        ++fwd_off[static_cast<std::size_t>(v) + 1];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) fwd_off[v + 1] += fwd_off[v];
  std::vector<vid_t> fwd(static_cast<std::size_t>(fwd_off.back()));
  {
    std::vector<eid_t> cur(fwd_off.begin(), fwd_off.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      for (vid_t u : g.neighbors(v)) {
        if (rank[static_cast<std::size_t>(u)] > rank[static_cast<std::size_t>(v)]) {
          fwd[static_cast<std::size_t>(cur[v]++)] = u;
        }
      }
    }
  }

#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < n; ++v) {
    const vid_t* v_begin = fwd.data() + fwd_off[v];
    const vid_t* v_end = fwd.data() + fwd_off[v + 1];
    for (const vid_t* pu = v_begin; pu != v_end; ++pu) {
      const vid_t u = *pu;
      const vid_t* a = v_begin;
      const vid_t* b = fwd.data() + fwd_off[u];
      const vid_t* b_end = fwd.data() + fwd_off[u + 1];
      while (a != v_end && b != b_end) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          const vid_t w = *a;
          faa(tc[static_cast<std::size_t>(v)], std::int64_t{1});
          faa(tc[static_cast<std::size_t>(u)], std::int64_t{1});
          faa(tc[static_cast<std::size_t>(w)], std::int64_t{1});
          ++a;
          ++b;
        }
      }
    }
  }
  return tc;
}

std::int64_t total_triangles(const std::vector<std::int64_t>& tc) {
  std::int64_t sum = 0;
  for (std::int64_t c : tc) sum += c;
  PP_CHECK(sum % 3 == 0);
  return sum / 3;
}

}  // namespace pushpull
