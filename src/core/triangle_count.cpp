#include "core/triangle_count.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace pushpull {

namespace {

// Per-arc update of the degree-ordered intersection push: for the oriented
// arc (v, u), every w in fwd(v) ∩ fwd(u) closes a triangle {v, u, w} — FAA
// all three corners through the synchronized context.
struct FastIntersect {
  const Csr* fwd;
  std::int64_t* tc;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t v, vid_t u, eid_t) const {
    const auto av = fwd->neighbors(v);
    const auto au = fwd->neighbors(u);
    const vid_t* a = av.data();
    const vid_t* a_end = av.data() + av.size();
    const vid_t* b = au.data();
    const vid_t* b_end = au.data() + au.size();
    while (a != a_end && b != b_end) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        const vid_t w = *a;
        ctx.add(tc[static_cast<std::size_t>(v)], std::int64_t{1});
        ctx.add(tc[static_cast<std::size_t>(u)], std::int64_t{1});
        ctx.add(tc[static_cast<std::size_t>(w)], std::int64_t{1});
        ++a;
        ++b;
      }
    }
    return false;
  }
};

}  // namespace

std::vector<std::int64_t> triangle_count_fast(const Csr& g) {
  const vid_t n = g.n();
  std::vector<std::int64_t> tc(static_cast<std::size_t>(n), 0);

  // Degree ordering: rank(v) < rank(u) iff (d(v), v) < (d(u), u). Orienting
  // every edge from lower to higher rank bounds each forward list by
  // O(sqrt(m)), the standard arboricity argument.
  std::vector<vid_t> rank(static_cast<std::size_t>(n));
  {
    std::vector<vid_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), vid_t{0});
    std::sort(order.begin(), order.end(), [&g](vid_t a, vid_t b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) < g.degree(b);
      return a < b;
    });
    for (vid_t i = 0; i < n; ++i) rank[static_cast<std::size_t>(order[i])] = i;
  }

  // Forward adjacency (higher-ranked neighbors), id-sorted because the source
  // lists are id-sorted. This *is* a digraph: the orientation's out-CSR.
  std::vector<eid_t> fwd_off(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t u : g.neighbors(v)) {
      if (rank[static_cast<std::size_t>(u)] > rank[static_cast<std::size_t>(v)]) {
        ++fwd_off[static_cast<std::size_t>(v) + 1];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) fwd_off[v + 1] += fwd_off[v];
  std::vector<vid_t> fwd(static_cast<std::size_t>(fwd_off.back()));
  {
    std::vector<eid_t> cur(fwd_off.begin(), fwd_off.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      for (vid_t u : g.neighbors(v)) {
        if (rank[static_cast<std::size_t>(u)] > rank[static_cast<std::size_t>(v)]) {
          fwd[static_cast<std::size_t>(cur[v]++)] = u;
        }
      }
    }
  }

  // One dense push over the degree-ordered orientation: the engine sweeps
  // every oriented arc (v, u); the functor intersects the two forward tails.
  // The orientation is the out-half of a DigraphView — and push only ever
  // walks out-arcs, so the in-CSR (the backward lists) is never materialized.
  const Csr oriented(std::move(fwd_off), std::move(fwd));
  engine::Workspace ws(n);
  engine::EdgeMapOptions emo;
  emo.track_output = false;
  engine::dense_push(oriented, ws, /*sources=*/nullptr,
                     FastIntersect{&oriented, tc.data()}, emo);
  return tc;
}

std::int64_t total_triangles(const std::vector<std::int64_t>& tc) {
  std::int64_t sum = 0;
  for (std::int64_t c : tc) sum += c;
  PP_CHECK(sum % 3 == 0);
  return sum / 3;
}

}  // namespace pushpull
