// Breadth-First Search (§3.3, §4.3, Algorithm 3).
//
//   push — the classical top-down BFS: threads expand the frontier and claim
//          unvisited neighbors with CAS (integer atomics, O(m) of them).
//   pull — the bottom-up BFS: every unvisited vertex scans its neighbors for
//          a parent in the frontier; writes are thread-private (no atomics)
//          at the price of O(D·m) read conflicts.
//   direction-optimizing — the Beamer-style switch (an instance of the
//          paper's Generic-Switch strategy, §5): top-down while the frontier
//          is small, bottom-up when the frontier's out-edge count exceeds
//          m/alpha, back to top-down when the frontier shrinks below n/beta.
#pragma once

#include <omp.h>

#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "graph/csr.hpp"
#include "perf/instr.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct BfsResult {
  std::vector<vid_t> dist;    // hop distance; -1 = unreachable
  std::vector<vid_t> parent;  // BFS-tree parent; -1 = root/unreachable
  int levels = 0;             // number of non-empty frontiers processed
  std::vector<double> level_times;  // wall seconds per level
  std::vector<Direction> level_dirs;  // direction used per level
};

// --- Top-down (push) ---------------------------------------------------------

template <class Instr = NullInstr>
BfsResult bfs_push(const Csr& g, vid_t root, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsResult r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  FrontierBuffers buffers(omp_get_max_threads());
  std::vector<vid_t> frontier{root};
  vid_t level = 0;
  while (!frontier.empty()) {
    WallTimer timer;
    ++level;
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      instr.code_region(10);
      const vid_t v = frontier[i];
      for (vid_t u : g.neighbors(v)) {
        instr.read(&r.dist[static_cast<std::size_t>(u)], sizeof(vid_t));
        instr.branch_cond();
        if (atomic_load(r.dist[static_cast<std::size_t>(u)]) >= 0) continue;
        // Claim u with a CAS; exactly one pushing thread wins.
        vid_t expected = -1;
        instr.atomic(&r.dist[static_cast<std::size_t>(u)], sizeof(vid_t));
        if (cas(r.dist[static_cast<std::size_t>(u)], expected, level)) {
          instr.write(&r.parent[static_cast<std::size_t>(u)], sizeof(vid_t));
          r.parent[static_cast<std::size_t>(u)] = v;
          buffers.push_local(u);
        }
      }
    }
    buffers.merge_into(frontier);
    r.level_times.push_back(timer.elapsed_s());
    r.level_dirs.push_back(Direction::Push);
    ++r.levels;
  }
  return r;
}

// --- Bottom-up (pull) ----------------------------------------------------------

template <class Instr = NullInstr>
BfsResult bfs_pull(const Csr& g, vid_t root, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsResult r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  vid_t level = 0;
  bool advanced = true;
  while (advanced) {
    WallTimer timer;
    advanced = false;
    ++level;
    bool any = false;
#pragma omp parallel for schedule(dynamic, 256) reduction(|| : any)
    for (vid_t v = 0; v < n; ++v) {
      instr.code_region(11);
      if (r.dist[static_cast<std::size_t>(v)] >= 0) continue;
      for (vid_t u : g.neighbors(v)) {
        // Read conflict: u's distance is owned by another thread.
        instr.read(&r.dist[static_cast<std::size_t>(u)], sizeof(vid_t));
        instr.branch_cond();
        if (r.dist[static_cast<std::size_t>(u)] == level - 1) {
          // Thread-private writes: v is owned by the iterating thread.
          instr.write(&r.dist[static_cast<std::size_t>(v)], sizeof(vid_t));
          instr.write(&r.parent[static_cast<std::size_t>(v)], sizeof(vid_t));
          r.dist[static_cast<std::size_t>(v)] = level;
          r.parent[static_cast<std::size_t>(v)] = u;
          any = true;
          break;
        }
      }
    }
    advanced = any;
    if (advanced) {
      r.level_times.push_back(timer.elapsed_s());
      r.level_dirs.push_back(Direction::Pull);
      ++r.levels;
    }
  }
  return r;
}

// --- Direction-optimizing (Generic-Switch) -------------------------------------

struct DirOptParams {
  double alpha = 14.0;  // push→pull when frontier out-edges > m/alpha
  double beta = 24.0;   // pull→push when frontier size < n/beta
};

template <class Instr = NullInstr>
BfsResult bfs_direction_optimizing(const Csr& g, vid_t root,
                                   const DirOptParams& p = {}, Instr instr = {}) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsResult r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;

  FrontierBuffers buffers(omp_get_max_threads());
  std::vector<vid_t> frontier{root};
  double frontier_out_edges = g.degree(root);
  SwitchController ctl(p.alpha, p.beta, Direction::Push);
  vid_t level = 0;

  while (!frontier.empty()) {
    WallTimer timer;
    ++level;
    const Direction dir =
        ctl.step(frontier_out_edges, static_cast<double>(g.num_arcs()),
                 static_cast<double>(frontier.size()), static_cast<double>(n));
    if (dir == Direction::Push) {
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        instr.code_region(12);
        const vid_t v = frontier[i];
        for (vid_t u : g.neighbors(v)) {
          instr.branch_cond();
          if (atomic_load(r.dist[static_cast<std::size_t>(u)]) >= 0) continue;
          vid_t expected = -1;
          instr.atomic(&r.dist[static_cast<std::size_t>(u)], sizeof(vid_t));
          if (cas(r.dist[static_cast<std::size_t>(u)], expected, level)) {
            r.parent[static_cast<std::size_t>(u)] = v;
            buffers.push_local(u);
          }
        }
      }
      buffers.merge_into(frontier);
    } else {
      // Bottom-up step: recompute the frontier as "vertices at `level`".
#pragma omp parallel
      {
#pragma omp for schedule(dynamic, 256)
        for (vid_t v = 0; v < n; ++v) {
          instr.code_region(13);
          if (r.dist[static_cast<std::size_t>(v)] >= 0) continue;
          for (vid_t u : g.neighbors(v)) {
            instr.read(&r.dist[static_cast<std::size_t>(u)], sizeof(vid_t));
            instr.branch_cond();
            if (r.dist[static_cast<std::size_t>(u)] == level - 1) {
              r.dist[static_cast<std::size_t>(v)] = level;
              r.parent[static_cast<std::size_t>(v)] = u;
              buffers.push_local(v);
              break;
            }
          }
        }
      }
      buffers.merge_into(frontier);
    }
    frontier_out_edges = 0;
#pragma omp parallel for reduction(+ : frontier_out_edges) schedule(static)
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      frontier_out_edges += g.degree(frontier[i]);
    }
    r.level_times.push_back(timer.elapsed_s());
    r.level_dirs.push_back(dir);
    ++r.levels;
  }
  return r;
}

// Validates a BFS result against graph structure: distances are consistent
// along tree edges, every edge differs by at most one level, reachability
// matches. Returns true if the tree is a valid BFS tree.
bool validate_bfs(const Csr& g, vid_t root, const BfsResult& r);

}  // namespace pushpull
