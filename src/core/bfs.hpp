// Breadth-First Search (§3.3, §4.3, Algorithm 3), on the engine substrate.
//
//   push — the classical top-down BFS: engine::sparse_push expands the
//          frontier; the functor claims unvisited neighbors through
//          AtomicCtx::claim (integer CAS, O(m) atomics).
//   pull — the bottom-up BFS: engine::dense_pull scans every unvisited
//          vertex's neighbors for a parent in the previous level; writes go
//          through PlainCtx (thread-private, no atomics) at the price of
//          O(D·m) read conflicts; kBreakOnUpdate gives the §3.3 early break.
//   direction-optimizing — the Beamer-style switch (the paper's
//          Generic-Switch, §5): SwitchController flips between the same two
//          edge_map calls — top-down while the frontier is small, bottom-up
//          when its out-edge count exceeds m/alpha, back below n/beta.
//
// The traversal loops, frontier machinery and counter attribution live in
// engine/edge_map.hpp; this file only supplies the two BFS functors.
#pragma once

#include <vector>

#include "core/direction.hpp"
#include "engine/edge_map.hpp"
#include "graph/csr.hpp"
#include "obs/trace.hpp"
#include "perf/instr.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull {

struct BfsResult {
  std::vector<vid_t> dist;    // hop distance; -1 = unreachable
  std::vector<vid_t> parent;  // BFS-tree parent; -1 = root/unreachable
  int levels = 0;             // number of non-empty frontiers processed
  std::vector<double> level_times;  // wall seconds per level
  std::vector<Direction> level_dirs;  // direction used per level
};

namespace detail {

// Push: claim an unvisited neighbor with CAS; exactly one winner stores the
// parent and enqueues d.
struct BfsPushClaim {
  vid_t* dist;
  vid_t* parent;
  vid_t level;

  template <class Ctx>
  bool update(Ctx& ctx, vid_t s, vid_t d, eid_t) const {
    if (ctx.load(dist[d]) >= 0) return false;
    if (ctx.claim(dist[d], vid_t{-1}, level)) {
      ctx.store(parent[d], s);
      return true;
    }
    return false;
  }
};

// Pull: an unvisited vertex adopts the first in-neighbor on the previous
// level; thread-private writes only.
struct BfsPullAdopt {
  vid_t* dist;
  vid_t* parent;
  vid_t level;

  static constexpr bool kBreakOnUpdate = true;

  bool cond(vid_t v) const { return dist[v] < 0; }

  template <class Ctx>
  bool update(Ctx& ctx, vid_t u, vid_t v, eid_t) const {
    if (ctx.load(dist[u]) != level - 1) return false;
    ctx.store(dist[v], level);
    ctx.store(parent[v], u);
    return true;
  }
};

template <CsrLike G>
inline BfsResult bfs_init(const G& g, vid_t root) {
  const vid_t n = g.n();
  PP_CHECK(root >= 0 && root < n);
  BfsResult r;
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent.assign(static_cast<std::size_t>(n), -1);
  r.dist[static_cast<std::size_t>(root)] = 0;
  return r;
}

}  // namespace detail

// --- Top-down (push) ---------------------------------------------------------

template <CsrLike G, class Instr = NullInstr>
BfsResult bfs_push(const G& g, vid_t root, Instr instr = {}) {
  BfsResult r = detail::bfs_init(g, root);
  engine::Workspace ws(g.n());
  engine::VertexSet frontier = engine::VertexSet::single(g.n(), root);
  engine::EdgeMapOptions opt;
  opt.region = 10;
  vid_t level = 0;
  while (!frontier.empty()) {
    WallTimer timer;
    ++level;
    frontier = engine::sparse_push(
        g, ws, frontier,
        detail::BfsPushClaim{r.dist.data(), r.parent.data(), level}, opt, instr);
    r.level_times.push_back(timer.elapsed_s());
    r.level_dirs.push_back(Direction::Push);
    ++r.levels;
  }
  return r;
}

// --- Bottom-up (pull) ----------------------------------------------------------

template <CsrLike G, class Instr = NullInstr>
BfsResult bfs_pull(const G& g, vid_t root, Instr instr = {}) {
  BfsResult r = detail::bfs_init(g, root);
  engine::Workspace ws(g.n());
  engine::EdgeMapOptions opt;
  opt.region = 11;
  vid_t level = 0;
  for (;;) {
    WallTimer timer;
    ++level;
    const engine::VertexSet claimed = engine::dense_pull(
        g, ws, detail::BfsPullAdopt{r.dist.data(), r.parent.data(), level},
        opt, instr);
    if (claimed.empty()) break;
    r.level_times.push_back(timer.elapsed_s());
    r.level_dirs.push_back(Direction::Pull);
    ++r.levels;
  }
  return r;
}

// --- Direction-optimizing (Generic-Switch) -------------------------------------

struct DirOptParams {
  double alpha = kSwitchAlpha;  // push→pull when frontier out-edges > m/alpha
  double beta = kSwitchBeta;    // pull→push when frontier size < n/beta
  // Frontier-aware pull window (engine::DirectionParams::gamma): a pull level
  // whose frontier holds under total/γ of the arc mass consults the
  // transposed frontier index instead of sweeping every in-arc. 0 disables.
  double gamma = 3.0;
};

template <CsrLike G, class Instr = NullInstr, class TracerT = obs::NullTracer>
BfsResult bfs_direction_optimizing(const G& g, vid_t root,
                                   const DirOptParams& p = {}, Instr instr = {},
                                   TracerT* tracer = nullptr) {
  const vid_t n = g.n();
  BfsResult r = detail::bfs_init(g, root);
  engine::Workspace ws(n);
  engine::VertexSet frontier = engine::VertexSet::single(n, root);
  double frontier_out_edges = g.degree(root);
  engine::DirectionPolicy policy(engine::StrategyKind::GenericSwitch,
                                 {p.alpha, p.beta, 0.0, p.gamma},
                                 Direction::Push);
  engine::EdgeMapOptions opt;
  vid_t level = 0;

  while (!frontier.empty()) {
    WallTimer timer;
    ++level;
    const bool trace = obs::tracing(tracer);
    const std::int64_t frontier_size = frontier.size();
    const double active_work = frontier_out_edges;
    const double total_work = static_cast<double>(g.num_arcs());
    const Direction dir =
        policy.choose(frontier_out_edges, total_work,
                      static_cast<double>(frontier.size()), static_cast<double>(n));
    engine::EdgeMapStats st;
    engine::EdgeMapStats* stp = trace ? &st : nullptr;
    const std::uint64_t t0 = trace ? obs::now_ns() : 0;
    const CounterBlock c0 = trace ? obs::instr_snapshot(instr) : CounterBlock{};
    if (dir == Direction::Push) {
      opt.region = 12;
      frontier = engine::sparse_push(
          g, ws, frontier,
          detail::BfsPushClaim{r.dist.data(), r.parent.data(), level}, opt,
          instr, stp);
    } else if (policy.pull_shape(active_work, total_work) ==
               engine::PullShape::FrontierIndexed) {
      // Bottom-up over the indexed frontier: the previous level is exactly
      // the set BfsPullAdopt listens to (dist == level-1), so skipped blocks
      // can never hide a parent and the adopted parent is the same first
      // in-neighbor the dense sweep would find.
      opt.region = 13;
      engine::FrontierIndex& idx = ws.frontier_index();
      idx.build(frontier.ids());
      frontier = engine::frontier_pull(
          g, ws, idx,
          detail::BfsPullAdopt{r.dist.data(), r.parent.data(), level}, opt,
          instr, stp);
    } else {
      // Bottom-up step: the engine's dense pull recomputes the frontier as
      // "vertices claimed at `level`".
      opt.region = 13;
      frontier = engine::dense_pull(
          g, ws, detail::BfsPullAdopt{r.dist.data(), r.parent.data(), level},
          opt, instr, stp);
    }
    frontier_out_edges = frontier.out_degree_sum(g);
    r.level_times.push_back(timer.elapsed_s());
    r.level_dirs.push_back(dir);
    ++r.levels;
    if (trace) {
      obs::RoundEvent ev;
      ev.kernel = "bfs";
      ev.mode = engine::to_string(st.mode);
      ev.round = static_cast<int>(level);
      ev.frontier_size = frontier_size;
      ev.active_work = static_cast<std::int64_t>(active_work);
      ev.total_work = static_cast<std::int64_t>(g.num_arcs());
      ev.total_count = n;
      ev.alpha = p.alpha;
      ev.beta = p.beta;
      ev.updates = st.updates;
      ev.t0_ns = t0;
      ev.dur_ns = obs::now_ns() - t0;
      ev.instr = obs::counter_delta(obs::instr_snapshot(instr), c0);
      obs::record_round(tracer, ev);
    }
  }
  return r;
}

// Validates a BFS result against graph structure: distances are consistent
// along tree edges, every edge differs by at most one level, reachability
// matches. Returns true if the tree is a valid BFS tree.
bool validate_bfs(const Csr& g, vid_t root, const BfsResult& r);

}  // namespace pushpull
