// The push-pull dichotomy (§3.8) as a first-class type, plus the generic
// switching controller used by the acceleration strategies (§5).
#pragma once

#include <string>

#include "core/switch_defaults.hpp"
#include "util/check.hpp"

namespace pushpull {

// Direction of updates:
//   Push — a thread t may modify vertices it does not own (∃ t⤳v, t ≠ t[v]);
//          requires atomics/locks on the shared state.
//   Pull — every modification satisfies t = t[v]; thread-private writes only.
enum class Direction { Push, Pull };

inline const char* to_string(Direction d) {
  return d == Direction::Push ? "push" : "pull";
}

// Generic-Switch (GS, §5): a reusable controller that decides when to flip
// between pushing and pulling based on a work estimate ratio. Instances
// encode the Beamer-style direction-optimizing BFS heuristic as well as the
// coloring switch (colored-to-conflicts ratio).
class SwitchController {
 public:
  // alpha: switch Push→Pull when active_work > total_work / alpha.
  // beta:  switch Pull→Push when active_count < total_count / beta.
  SwitchController(double alpha, double beta, Direction start = Direction::Push)
      : alpha_(alpha), beta_(beta), dir_(start) {
    PP_CHECK(alpha > 0 && beta > 0);
  }

  // Per-direction pair (switch_defaults.hpp): α_out gates push→pull in
  // out-arc work units, β_in gates pull→push in destination counts.
  explicit SwitchController(const SwitchThresholds& t,
                            Direction start = Direction::Push)
      : SwitchController(t.alpha_out, t.beta_in, start) {}

  Direction current() const noexcept { return dir_; }

  // Feeds the controller one step's statistics; returns the direction to use
  // for the *next* step.
  Direction step(double active_work, double total_work, double active_count,
                 double total_count) noexcept {
    if (dir_ == Direction::Push && active_work > total_work / alpha_) {
      dir_ = Direction::Pull;
    } else if (dir_ == Direction::Pull && active_count < total_count / beta_) {
      dir_ = Direction::Push;
    }
    return dir_;
  }

  void force(Direction d) noexcept { dir_ = d; }

 private:
  double alpha_;
  double beta_;
  Direction dir_;
};

}  // namespace pushpull
