// Rank-partitioned frontier machinery for the distributed traversal kernels
// (BFS, Δ-stepping SSSP, BC — §3.8, Figure 3).
//
// Mirrors the shared-memory frontier pair of core/frontier.hpp at rank
// granularity:
//
//   CombiningBuffers<T>  — per-destination-rank sparse append lanes with
//                          per-destination-*vertex* combining: the distributed
//                          analog of Algorithm 3's per-thread `my_F` buffers,
//                          fused with the message-combining optimization that
//                          makes two-sided traversal traffic cheap. Each
//                          destination vertex occupies exactly one entry per
//                          superstep (duplicates merge via min / sum), and the
//                          exchange ships one alltoallv lane per destination
//                          rank — O(P) messages instead of O(cut edges).
//   DenseFrontierWindow  — a byte-per-vertex membership window (the core
//                          DenseFrontier bitmap behind a counted one-sided
//                          interface) for pull-direction rounds: the owner
//                          writes its slice locally, remote probes are counted
//                          rma_gets.
//   DistFrontier         — the frontier proper: a sorted owned vertex list per
//                          rank, the dense window kept in sync, a global
//                          emptiness/size test via allreduce_sum, and a
//                          direction-optimization heuristic (the core
//                          SwitchController) that flips sparse/dense per
//                          superstep from the allreduced frontier size and
//                          out-degree mass — the Beamer switch at rank
//                          granularity.
//
// All DistFrontier operations marked *collective* must be called by every
// rank of the world in the same order (with possibly empty local arguments);
// they embed the barriers that make slice updates visible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/direction.hpp"
#include "core/frontier.hpp"
#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"
#include "util/padded.hpp"

namespace pushpull::dist {

// Sparse = iterate the frontier members (push/msg-passing expansion);
// Dense = iterate the unvisited vertices and probe the membership window
// (pull/bottom-up expansion).
enum class FrontierMode { Sparse, Dense };

inline const char* to_string(FrontierMode m) {
  return m == FrontierMode::Sparse ? "sparse" : "dense";
}

// Per-destination-rank staging of (destination vertex, payload) entries with
// per-destination-vertex combining. `slot_` maps a staged vertex to its lane
// position (owner(v) fixes the lane), so re-staging the same vertex within a
// superstep merges payloads instead of growing the message.
template <class T>
class CombiningBuffers {
 public:
  struct Entry {
    vid_t v;
    T val;
  };
  static_assert(std::is_trivially_copyable_v<T>);

  CombiningBuffers(const Partition1D& part, int nranks)
      : part_(&part), lanes_(static_cast<std::size_t>(nranks)),
        slot_(static_cast<std::size_t>(part.n()), -1) {
    PP_CHECK(nranks >= 1);
  }

  // Stages `val` for destination vertex v; duplicates merge with
  // comb(T& staged, const T& incoming) — min for BFS parents and SSSP
  // tentative distances, sum for BC σ/δ contributions.
  template <class Combine>
  void stage(vid_t v, const T& val, Combine&& comb) {
    std::int32_t& s = slot_[static_cast<std::size_t>(v)];
    auto& lane = lanes_[static_cast<std::size_t>(part_->owner(v))];
    if (s >= 0) {
      comb(lane[static_cast<std::size_t>(s)].val, val);
    } else {
      s = static_cast<std::int32_t>(lane.size());
      lane.push_back(Entry{v, val});
    }
  }

  bool all_empty() const {
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  // Collective: ships every lane to its destination rank (the self lane stays
  // in memory and is free, empty lanes are skipped by the runtime) and resets
  // the staging state. Entries from *different* source ranks are not merged —
  // applying them is the receiver's job, which holds the authoritative state.
  std::vector<Entry> exchange(Rank& rank) {
    std::vector<Entry> in = rank.alltoallv(lanes_);
    for (auto& lane : lanes_) {
      for (const Entry& e : lane) slot_[static_cast<std::size_t>(e.v)] = -1;
      lane.clear();
    }
    return in;
  }

 private:
  const Partition1D* part_;
  std::vector<std::vector<Entry>> lanes_;
  std::vector<std::int32_t> slot_;
};

// The core DenseFrontier byte-per-vertex bitmap behind a counted one-sided
// interface: element v belongs to owner(v); probing or setting a remote
// element is charged as one RMA op, local accesses are attributed but free
// (same convention as Window<T>). The bytes live in the World's shared arena
// so process-backed ranks probe the same memory; writes and probes of a
// superstep are separated by DistFrontier's collective barriers.
class DenseFrontierWindow {
 public:
  DenseFrontierWindow(World& world, vid_t n, const Partition1D& part)
      : bits_(world.shared_array<std::uint8_t>(static_cast<std::size_t>(n))),
        part_(&part) {}

  void set(Rank& rank, vid_t v) {
    rank.count_put(part_->owner(v) != rank.id());
    bits_[static_cast<std::size_t>(v)] = 1;
  }

  bool test(Rank& rank, vid_t v) const {
    rank.count_get(part_->owner(v) != rank.id());
    return bits_[static_cast<std::size_t>(v)] != 0;
  }

  // Owner-side maintenance (uncounted, like zeroing a Window's raw slice).
  void clear_owned(const Rank& rank) {
    std::fill(bits_.begin() + part_->begin(rank.id()),
              bits_.begin() + part_->end(rank.id()), std::uint8_t{0});
  }

  std::span<const std::uint8_t> raw() const noexcept { return bits_; }

 private:
  std::span<std::uint8_t> bits_;
  const Partition1D* part_;
};

// Direction-optimization thresholds (the Beamer constants, shared with every
// other switching surface via core/switch_defaults.hpp). Namespace-scope so
// it can serve as an in-class default argument below.
struct FrontierHeuristic {
  double alpha = kSwitchAlpha;  // sparse→dense when frontier out-edges > m/alpha
  double beta = kSwitchBeta;    // dense→sparse when frontier size < n/beta
};

// Rank-partitioned frontier: each rank holds the sorted list of frontier
// vertices it owns, all ranks agree on the global size / out-degree mass via
// allreduce, and every rank independently (but identically, from the same
// allreduced inputs) steps the sparse/dense switch.
class DistFrontier {
 public:
  using Heuristic = FrontierHeuristic;

  DistFrontier(World& world, const Csr& g, const Partition1D& part,
               Heuristic h = {})
      : g_(&g), part_(&part), bitmap_(world, g.n(), part),
        ranks_(static_cast<std::size_t>(world.nranks())) {
    // Per-direction refinement of (α, β) from the graph's source/sink
    // structure (switch_defaults.hpp). The dist kernels run on symmetrized
    // Csr graphs, where #out-sources == #in-sinks and the scale factor is
    // exactly 1 — the seam is threaded so an asymmetric dist graph inherits
    // the skewed pair the moment one exists.
    const std::int64_t nonzero = g.num_nonempty();
    const SwitchThresholds t = per_direction_thresholds(
        static_cast<double>(g.num_arcs()), static_cast<double>(nonzero),
        static_cast<double>(nonzero), h.alpha, h.beta);
    for (auto& p : ranks_) {
      p.value.ctl = SwitchController(t, Direction::Push);
    }
  }

  // This rank's owned slice of the current frontier, sorted ascending.
  const std::vector<vid_t>& owned(const Rank& rank) const {
    return state(rank).owned;
  }

  // Counted membership probe against the current frontier's dense window.
  bool test(Rank& rank, vid_t v) const { return bitmap_.test(rank, v); }

  FrontierMode mode(const Rank& rank) const { return state(rank).mode; }
  bool globally_empty(const Rank& rank) const { return global_size(rank) == 0; }
  std::uint64_t global_size(const Rank& rank) const {
    return static_cast<std::uint64_t>(state(rank).global_size);
  }
  double global_out_degree(const Rank& rank) const {
    return state(rank).global_out_degree;
  }

  // Collective: installs `next` (each vertex owned by the caller; sorted and
  // deduplicated here) as this rank's slice of the next frontier, refreshes
  // the dense window, allreduces the global frontier size and out-degree
  // mass, and steps the sparse/dense heuristic. The leading barrier (counted:
  // it is real synchronization the superstep needs) guarantees every rank is
  // done probing the old window before any slice changes.
  void advance(Rank& rank, std::vector<vid_t> next) {
    PerRank& st = state(rank);
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    rank.barrier();
    bitmap_.clear_owned(rank);
    double out_degree = 0.0;
    for (vid_t v : next) {
      PP_DCHECK(part_->owner(v) == rank.id());
      bitmap_.set(rank, v);
      out_degree += static_cast<double>(g_->degree(v));
    }
    st.owned = std::move(next);
    st.global_size = rank.allreduce_sum(static_cast<double>(st.owned.size()));
    st.global_out_degree = rank.allreduce_sum(out_degree);
    const Direction d =
        st.ctl.step(st.global_out_degree, static_cast<double>(g_->num_arcs()),
                    st.global_size, static_cast<double>(g_->n()));
    st.mode = d == Direction::Pull ? FrontierMode::Dense : FrontierMode::Sparse;
  }

 private:
  struct PerRank {
    std::vector<vid_t> owned;
    SwitchController ctl{SwitchThresholds{}, Direction::Push};
    FrontierMode mode = FrontierMode::Sparse;
    double global_size = 0.0;
    double global_out_degree = 0.0;
  };

  PerRank& state(const Rank& rank) {
    return ranks_[static_cast<std::size_t>(rank.id())].value;
  }
  const PerRank& state(const Rank& rank) const {
    return ranks_[static_cast<std::size_t>(rank.id())].value;
  }

  const Csr* g_;
  const Partition1D* part_;
  DenseFrontierWindow bitmap_;
  std::vector<Padded<PerRank>> ranks_;
};

}  // namespace pushpull::dist
