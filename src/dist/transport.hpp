// The transport seam of the distributed runtime (DESIGN.md §3).
//
// `World`/`Rank`/`Window<T>` (dist/runtime.hpp) are a thin façade over this
// interface: everything that actually moves bytes between ranks — barriers,
// collective scratch, personalized all-to-all, eager two-sided messaging,
// and the memory that one-sided windows live in — is a Transport method, and
// nothing above the façade may assume how ranks are realized. Two backends
// implement it:
//
//   EmuTransport (transport_emu.hpp)  — ranks are std::threads in one
//       process; communication time is *modeled* from RankStats counters.
//   ShmTransport (transport_shm.hpp)  — ranks are forked processes sharing a
//       POSIX MAP_SHARED segment; communication time is *measured* wall
//       clock, and the §4.1 float-accumulate lock protocol is emulated with
//       real process-shared locks.
//
// The façade keeps all counter attribution (RankStats) and all collective
// protocols (allreduce slot-fold, message counting) backend-independent, so
// the two backends produce identical counters for identical runs. A future
// MPI or socket backend slots in by implementing this interface alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/check.hpp"

namespace pushpull::dist {

// Which backend realizes the ranks of a World. Chosen once, at World
// construction; algorithm code never branches on it.
enum class BackendKind {
  Emu,  // thread-per-rank emulation, modeled CommCosts time
  Shm,  // process-per-rank over POSIX shared memory, wall-clock time
};

inline const char* to_string(BackendKind k) {
  return k == BackendKind::Emu ? "emu" : "shm";
}

// One rank's outgoing payload for one destination in an alltoallv exchange.
struct ByteLane {
  const void* data = nullptr;
  std::size_t bytes = 0;
};

// Window-operation classes a transport may charge differently (§4.1/§4.2):
// Acc is the lock-protocol class (float accumulate / accumulate-min), Faa
// the NIC fast path, Put/Get the one-sided transfer primitives.
enum class RemoteOpClass { Put, Get, Acc, Faa };

// Emulated interconnect service times, microseconds of real origin-side time
// per *remote* operation — the same §4.1/§4.2 relative magnitudes as the
// CommCosts model (runtime.hpp), realized as busy-wait by backends whose
// ranks otherwise share silicon. A blocking MPI op occupies the origin for
// its wire round trips; on a box where a "remote" atomic is a ~30ns cache
// transaction, spinning the class's service time is what makes measured wall
// clock carry the paper's asymmetry instead of the memory system's. Local
// operations are never charged (the counter convention). Zero everything to
// measure raw shared-memory time.
struct WireDelays {
  double us_per_msg = 10.0;    // two-sided injection + matching overhead
  double us_per_byte = 0.005;  // payload bandwidth
  double us_per_put = 0.5;
  double us_per_get = 0.8;
  double us_per_acc = 3.0;     // lock protocol (§4.1)
  double us_per_faa = 0.3;     // hardware fast path (§4.2)

  double op_us(RemoteOpClass c) const {
    switch (c) {
      case RemoteOpClass::Put: return us_per_put;
      case RemoteOpClass::Get: return us_per_get;
      case RemoteOpClass::Acc: return us_per_acc;
      case RemoteOpClass::Faa: return us_per_faa;
    }
    return 0.0;
  }
};

// Process-wide default consulted by backends at World construction.
inline WireDelays& default_wire_delays() {
  static WireDelays delays;
  return delays;
}

// Exit status a process-backed rank uses to report a *soft* failure: the
// rank function completed (so peers are not stuck in a barrier) but a test
// probe flagged an assertion failure. Transports translate it into a thrown
// exception after every rank has been reaped.
inline constexpr int kRankSoftFailExit = 42;

// Optional probe consulted by process-backed transports after the rank
// function returns; its result becomes the child's exit status. Lets a test
// harness (tests/dist_test_common.hpp) turn in-rank gtest failures into a
// parent-visible World::run failure. Must be a capture-free function.
using RankStatusProbe = int (*)();
inline RankStatusProbe& rank_status_probe() {
  static RankStatusProbe probe = nullptr;
  return probe;
}

// Backend contract. All collective methods (barrier, alltoallv) must be
// called by every rank in the same order; send/drain are point-to-point with
// barrier-separated phases (the façade documents the exact semantics).
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual BackendKind kind() const noexcept = 0;
  int nranks() const noexcept { return nranks_; }

  // Zeroed storage readable and writable by every rank (and, for process
  // backends, by the parent after run()). Windows, result slices, and the
  // façade's RankStats array live here. Call only from the controlling
  // process, not from inside a rank function.
  virtual void* shared_alloc(std::size_t bytes, std::size_t align) = 0;

  // SPMD entry point: fn(rank_id) runs once per rank, concurrently. Also
  // accumulates each rank's wall-clock time into rank_wall_us(). Throws on
  // rank failure (process backends) after reaping every rank.
  virtual void run(const std::function<void(int)>& fn) = 0;

  // Rendezvous of all ranks. Uncounted here: the façade attributes counted
  // barriers and embeds this one in its collective protocols.
  virtual void barrier(int rank) = 0;

  // Collective reduction: every rank contributes `value`, every rank gets
  // the fold over all contributions in rank order (deterministic — every
  // backend folds slot 0, 1, ..., P-1). The façade layers the message
  // counting on top.
  virtual double allreduce(int rank, double value, bool take_min) = 0;

  // Personalized all-to-all: lanes[d] is `rank`'s payload for destination d
  // (nranks lanes, possibly empty). Appends the concatenation of every
  // source's lane for `rank`, in source order, to `in` (cleared first).
  // Collective; lanes must stay valid until it returns.
  virtual void alltoallv(int rank, const ByteLane* lanes,
                         std::vector<std::byte>& in) = 0;

  // Eager two-sided send into dest's inbox; drain empties the caller's own
  // inbox (cleared first, `in` receives the accumulated bytes). The caller
  // provides phase separation via barriers.
  virtual void send(int rank, int dest, const void* data, std::size_t bytes) = 0;
  virtual void drain(int rank, std::vector<std::byte>& in) = 0;

  // Charges one remote window op of the given class: a no-op on emu (whose
  // time is modeled from the counters), an origin-side busy-wait of the
  // class's WireDelays service time on shm. The façade calls this for every
  // network-crossing op it attributes, never for local ones.
  virtual void charge_remote(RemoteOpClass cls) { (void)cls; }

  // The §4.1 lock protocol for window read-modify-writes with no hardware
  // atomic (accumulate / accumulate-min). The emu backend's CAS loops
  // already serialize its threads, so its implementation is a no-op; the shm
  // backend takes a real process-shared striped lock.
  virtual void rmw_lock(std::size_t element) { (void)element; }
  virtual void rmw_unlock(std::size_t element) { (void)element; }

  // Per-rank wall-clock microseconds accumulated over run() calls. For the
  // emu backend this measures oversubscribed threads (scheduler noise — the
  // modeled CommCosts time is the meaningful metric); for shm it is the real
  // per-process time the benches report.
  virtual const double* rank_wall_us() const noexcept = 0;

 protected:
  explicit Transport(int nranks) : nranks_(nranks) { PP_CHECK(nranks >= 1); }

  int nranks_;
};

}  // namespace pushpull::dist
