// Distributed-memory Triangle Counting over the emulated runtime (§4.2,
// Figure 3). NodeIterator semantics: every rank tests, for each of its owned
// centers v, all unordered neighbor pairs {w1, w2} ⊆ N(v) for adjacency.
//
//   Pushing-RMA  — adjacency lists of remote pair-heads are fetched (one get
//                  per head), and each discovered pair increments tc[w1] and
//                  tc[w2] with an integer FAA — the hardware fast path, so
//                  the per-hit cost is tiny (the paper's point for TC).
//                  Every vertex's counter ends up doubled and is halved at
//                  the end, exactly like the shared-memory push kernel.
//   Pulling-RMA  — same remote list fetches, but each hit increments only
//                  the local tc[v]: gets only, no atomics at all.
//   Msg-Passing  — a rank cannot test a remote pair itself without the
//                  remote list, so it ships the query (w1, w2, v) to the
//                  owner of w1, who tests locally and routes the +1 for v
//                  back as a second message round. Both rounds flush through
//                  bounded per-destination buffers of `mp_buffer_entries`
//                  entries — the many small messages are why Figure 3 shows
//                  both RMA variants beating Msg-Passing for TC.
//
// All variants reproduce tc[v] = number of triangles containing v, equal to
// the shared-memory triangle_count_fast output.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

struct DistTcOptions {
  DistVariant variant = DistVariant::PushRma;
  BackendKind backend = BackendKind::Emu;
  // Msg-Passing flushes a destination's buffer whenever it holds this many
  // entries (the eager-protocol payload bound); small values force many
  // mid-run flushes.
  std::size_t mp_buffer_entries = 64;
  CommCosts costs{};
};

struct DistTcResult {
  std::vector<std::int64_t> tc;     // per-vertex triangle counts
  RankStats total;                  // counters summed over ranks
  double max_comm_us = 0.0;         // slowest rank's modeled communication
  double max_rank_wall_us = 0.0;    // slowest rank's measured wall clock
  std::uint64_t max_rank_edge_ops = 0;  // slowest rank's pair tests
};

namespace detail {

// Adjacency query shipped to the owner of w1: "is (w1, w2) an edge? If so,
// credit center v." Plain aggregate of three vids so it round-trips through
// the byte-level inboxes.
struct TcQuery {
  vid_t w1;
  vid_t w2;
  vid_t v;
};

// Per-destination send buffers with a bounded flush path.
template <class T>
class BoundedBuffers {
 public:
  BoundedBuffers(Rank& rank, std::size_t capacity)
      : rank_(rank), capacity_(capacity == 0 ? 1 : capacity),
        lanes_(static_cast<std::size_t>(rank.nranks())) {}

  void add(int dest, const T& item) {
    auto& lane = lanes_[static_cast<std::size_t>(dest)];
    lane.push_back(item);
    if (lane.size() >= capacity_) flush(dest);
  }

  void flush(int dest) {
    auto& lane = lanes_[static_cast<std::size_t>(dest)];
    if (lane.empty()) return;
    rank_.send(dest, lane.data(), lane.size());
    lane.clear();
  }

  void flush_all() {
    for (int d = 0; d < rank_.nranks(); ++d) flush(d);
  }

 private:
  Rank& rank_;
  std::size_t capacity_;
  std::vector<std::vector<T>> lanes_;
};

// Models fetching N(w1) before testing its pairs: one counted (and, on real
// backends, wire-charged) get when the pair-head is owned by another rank, a
// local read otherwise.
inline void count_adjacency_fetch(Rank& rank, const Partition1D& part, vid_t head) {
  rank.count_get(part.owner(head) != rank.id());
}

}  // namespace detail

inline DistTcResult triangle_count_dist(const Csr& g, int nranks,
                                        const DistTcOptions& opt = DistTcOptions{}) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && nranks >= 1);

  World world(nranks, opt.backend);
  const Partition1D part(n, nranks);

  DistTcResult res;
  // Result slice every owner publishes into (shared: ranks may be processes).
  const std::span<std::int64_t> tc_out =
      world.shared_array<std::int64_t>(static_cast<std::size_t>(n));
  // Only push needs a window (for the remote FAAs); pull and MP write
  // owner-local counters straight into the result slice (disjoint slices
  // per rank).
  std::optional<Window<std::int64_t>> tc_win;
  if (opt.variant == DistVariant::PushRma) {
    tc_win.emplace(world, static_cast<std::size_t>(n));
  }

  world.run([&](Rank& rank) {
    const int me = rank.id();
    const vid_t vbeg = part.begin(me);
    const vid_t vend = part.end(me);

    switch (opt.variant) {
      case DistVariant::PushRma: {
        for (vid_t v = vbeg; v < vend; ++v) {
          const auto nb = g.neighbors(v);
          for (std::size_t i = 0; i + 1 < nb.size(); ++i) {
            detail::count_adjacency_fetch(rank, part, nb[i]);
            for (std::size_t j = i + 1; j < nb.size(); ++j) {
              ++rank.stats().edge_ops;
              if (g.has_edge(nb[i], nb[j])) {
                tc_win->faa(rank, static_cast<std::size_t>(nb[i]), std::int64_t{1});
                tc_win->faa(rank, static_cast<std::size_t>(nb[j]), std::int64_t{1});
              }
            }
          }
        }
        rank.barrier();  // all remote FAAs landed
        // Each triangle credited each corner twice (once per other center).
        for (vid_t v = vbeg; v < vend; ++v) {
          const std::int64_t doubled = tc_win->raw()[static_cast<std::size_t>(v)];
          PP_DCHECK(doubled % 2 == 0);
          tc_out[static_cast<std::size_t>(v)] = doubled / 2;
        }
        break;
      }
      case DistVariant::PullRma: {
        for (vid_t v = vbeg; v < vend; ++v) {
          const auto nb = g.neighbors(v);
          std::int64_t local = 0;
          for (std::size_t i = 0; i + 1 < nb.size(); ++i) {
            detail::count_adjacency_fetch(rank, part, nb[i]);
            for (std::size_t j = i + 1; j < nb.size(); ++j) {
              ++rank.stats().edge_ops;
              if (g.has_edge(nb[i], nb[j])) ++local;
            }
          }
          tc_out[static_cast<std::size_t>(v)] = local;
        }
        break;
      }
      case DistVariant::MsgPassing: {
        // Round 1: test pairs whose head is local; ship the rest to the
        // head's owner through the bounded flush path.
        detail::BoundedBuffers<detail::TcQuery> queries(rank, opt.mp_buffer_entries);
        for (vid_t v = vbeg; v < vend; ++v) {
          const auto nb = g.neighbors(v);
          for (std::size_t i = 0; i + 1 < nb.size(); ++i) {
            const vid_t w1 = nb[i];
            const int head_owner = part.owner(w1);
            for (std::size_t j = i + 1; j < nb.size(); ++j) {
              ++rank.stats().edge_ops;
              if (head_owner == me) {
                if (g.has_edge(w1, nb[j])) ++tc_out[static_cast<std::size_t>(v)];
              } else {
                queries.add(head_owner, detail::TcQuery{w1, nb[j], v});
              }
            }
          }
        }
        queries.flush_all();
        rank.barrier();  // all queries delivered

        const auto inbound = rank.template drain<detail::TcQuery>();
        rank.barrier();  // every inbox drained before round-2 sends begin

        // Round 2: answer queries locally; route hits back to the center's
        // owner as bare vertex ids.
        detail::BoundedBuffers<vid_t> hits(rank, opt.mp_buffer_entries);
        for (const detail::TcQuery& q : inbound) {
          if (!g.has_edge(q.w1, q.w2)) continue;
          if (part.owner(q.v) == me) {
            ++tc_out[static_cast<std::size_t>(q.v)];
          } else {
            hits.add(part.owner(q.v), q.v);
          }
        }
        hits.flush_all();
        rank.barrier();  // all hits delivered

        for (vid_t v : rank.template drain<vid_t>()) {
          ++tc_out[static_cast<std::size_t>(v)];
        }
        break;
      }
    }
    rank.barrier();
  });

  res.tc.assign(tc_out.begin(), tc_out.end());
  res.total = world.total_stats();
  res.max_comm_us = world.max_modeled_comm_us(opt.costs);
  res.max_rank_edge_ops = world.max_edge_ops();
  res.max_rank_wall_us = world.max_rank_wall_us();
  return res;
}

}  // namespace pushpull::dist
