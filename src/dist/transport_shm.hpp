// Process-per-rank backend over POSIX shared memory (DESIGN.md §3).
//
// Real multi-process execution of the same SPMD programs the emulation runs:
// the World maps one anonymous MAP_SHARED segment up front, forks one child
// per rank, and every cross-rank structure — windows, result slices, the
// RankStats array, collective scratch, alltoallv staging, inboxes — lives in
// that segment. Everything else a rank touches (the graph, per-rank frontier
// state, combining lanes) is copy-on-write private, exactly as it would be
// on a real distributed machine.
//
//   barrier      pthread_barrier_t with PTHREAD_PROCESS_SHARED
//   allreduce    slot write / barrier / deterministic fold; slots are
//                double-buffered by call parity so one barrier per call
//                suffices (phase p is rewritten only two collectives later,
//                by which point every reader has passed a later barrier)
//   alltoallv    copy lanes into a per-rank staging region, publish
//                (offset, bytes) per destination, barrier, receivers copy
//                out; staging and metadata are double-buffered like the
//                reduction slots, so the exchange costs one barrier — the
//                same synchronization count as a one-sided superstep flush
//   send/drain   spinlock-guarded bounded inbox per rank
//   atomics      std::atomic_ref / std::atomic_flag on the shared mapping
//                (address-free on every supported platform)
//   rmw_lock     process-shared striped spinlocks emulating the §4.1
//                lock protocol around remote accumulates
//   wire time    every *remote* operation busy-waits its WireDelays service
//                time at the origin (transport.hpp): ranks on one box share
//                silicon, so a "remote" atomic would otherwise be a ~30ns
//                cache transaction and every variant would tie — the spin is
//                what a blocking MPI op does to its origin during the wire
//                round trips, and it is what makes the paper's §4.1/§4.2
//                asymmetry real in the measured numbers
//   timing      real: each child accumulates its own wall-clock microseconds
//                (compute + synchronization + emulated wire time) into a
//                shared slot; the model stays computable from the
//                (identical) counters for side-by-side reporting
//
// Failure containment: a rank that dies mid-superstep (abort, signal) would
// leave its peers blocked in a barrier, so the parent reaps with
// waitpid(-1), kills the survivors on the first hard failure, and throws.
// Soft failures (kRankSoftFailExit from the rank_status_probe hook) let all
// ranks finish before run() throws.
#pragma once

#include <unistd.h>

#if defined(_POSIX_THREAD_PROCESS_SHARED) && defined(_POSIX_BARRIERS) && \
    _POSIX_THREAD_PROCESS_SHARED > 0 && _POSIX_BARRIERS > 0
#define PUSHPULL_SHM_TRANSPORT 1
#else
#define PUSHPULL_SHM_TRANSPORT 0
#endif

#if PUSHPULL_SHM_TRANSPORT
#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <time.h>

#include <cerrno>
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/transport.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull::dist {

// True when this platform can run the process backend (process-shared
// pthread barriers + anonymous shared mappings). Callers gate World
// construction and tests skip gracefully when false.
inline bool shm_backend_available() noexcept {
  return PUSHPULL_SHM_TRANSPORT != 0;
}

// Segment reserved per shm World. Virtual reservation only — pages are
// backed on first touch, so the default is deliberately generous: half goes
// to the window/result arena, a quarter each to alltoallv staging and
// inboxes (split evenly across ranks).
inline constexpr std::size_t kDefaultShmSegmentBytes = std::size_t{512} << 20;

#if PUSHPULL_SHM_TRANSPORT

class ShmTransport final : public Transport {
 public:
  ShmTransport(int nranks, std::size_t segment_bytes)
      : Transport(nranks), wire_(default_wire_delays()) {
    const std::size_t p = static_cast<std::size_t>(nranks);
    // Fixed-offset layout; every region is computed before the mapping is
    // created so children inherit identical addresses.
    std::size_t off = 0;
    const auto take = [&off](std::size_t bytes, std::size_t align) {
      off = align_up(off, align);
      const std::size_t at = off;
      off += bytes;
      return at;
    };
    const std::size_t control_off = take(sizeof(Control), alignof(Control));
    const std::size_t reduce_off = take(2 * p * sizeof(double), alignof(double));
    const std::size_t wall_off = take(p * sizeof(double), alignof(double));
    const std::size_t rmw_off =
        take(kRmwStripes * sizeof(SpinLock), alignof(SpinLock));
    const std::size_t meta_off =
        take(2 * p * p * sizeof(LaneMeta), alignof(LaneMeta));
    const std::size_t fixed = align_up(off, kPageBytes);

    PP_CHECK(segment_bytes > fixed + 8 * kPageBytes * p);
    const std::size_t quarter = (segment_bytes - fixed) / 4;
    staging_cap_ = align_up(quarter / (2 * p), 64) - 64;  // per phase
    inbox_cap_ = 2 * staging_cap_;
    const std::size_t staging_off = fixed;
    staging_stride_ = align_up(2 * staging_cap_, kPageBytes);
    const std::size_t inbox_off = staging_off + p * staging_stride_;
    inbox_stride_ = align_up(sizeof(InboxHeader) + inbox_cap_, kPageBytes);
    arena_off_ = inbox_off + p * inbox_stride_;
    PP_CHECK(arena_off_ < segment_bytes);
    segment_bytes_ = segment_bytes;

    void* base = ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    PP_CHECK(base != MAP_FAILED);
    base_ = static_cast<std::byte*>(base);

    control_ = new (base_ + control_off) Control();
    reduce_slots_ = new (base_ + reduce_off) double[2 * p]();
    wall_us_ = new (base_ + wall_off) double[p]();
    rmw_locks_ = new (base_ + rmw_off) SpinLock[kRmwStripes]();
    a2a_meta_ = new (base_ + meta_off) LaneMeta[2 * p * p]();
    staging_base_ = base_ + staging_off;
    inbox_base_ = base_ + inbox_off;
    for (int r = 0; r < nranks; ++r) new (inbox_header(r)) InboxHeader();

    pthread_barrierattr_t attr;
    PP_CHECK(pthread_barrierattr_init(&attr) == 0);
    PP_CHECK(pthread_barrierattr_setpshared(&attr, PTHREAD_PROCESS_SHARED) == 0);
    PP_CHECK(pthread_barrier_init(&control_->barrier, &attr,
                                  static_cast<unsigned>(nranks)) == 0);
    pthread_barrierattr_destroy(&attr);
  }

  ~ShmTransport() override {
    pthread_barrier_destroy(&control_->barrier);
    ::munmap(base_, segment_bytes_);
  }

  BackendKind kind() const noexcept override { return BackendKind::Shm; }

  void* shared_alloc(std::size_t bytes, std::size_t align) override {
    bump_ = align_up(bump_, align);
    if (arena_off_ + bump_ + bytes > segment_bytes_) {
      std::fprintf(stderr,
                   "shm arena exhausted (%zu B requested, %zu B segment); "
                   "construct World with a larger shm segment\n",
                   bytes, segment_bytes_);
      std::abort();
    }
    void* p = base_ + arena_off_ + bump_;
    bump_ += bytes;
    return p;  // fresh anonymous pages are already zero
  }

  void run(const std::function<void(int)>& fn) override {
    std::fflush(nullptr);  // children must not re-flush inherited buffers
    std::vector<pid_t> pids(static_cast<std::size_t>(nranks_), -1);
    for (int r = 0; r < nranks_; ++r) {
      const pid_t pid = ::fork();
      PP_CHECK(pid >= 0);
      if (pid == 0) {
        int status = 0;
        try {
          WallTimer t;
          fn(r);
          wall_us_[static_cast<std::size_t>(r)] += t.elapsed_us();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "shm rank %d: %s\n", r, e.what());
          status = 1;
        } catch (...) {
          std::fprintf(stderr, "shm rank %d: unknown exception\n", r);
          status = 1;
        }
        if (status == 0 && rank_status_probe() != nullptr) {
          status = rank_status_probe()();
        }
        std::fflush(nullptr);
        ::_exit(status);
      }
      pids[static_cast<std::size_t>(r)] = pid;
    }

    // Reap in completion order so a crashed rank (peers now blocked in a
    // barrier forever) is noticed promptly and the survivors are killed.
    // Non-blocking per-pid waits, never waitpid(-1): an embedding process
    // may own unrelated children whose statuses must not be consumed.
    bool soft_fail = false;
    std::string hard_fail;
    int remaining = nranks_;
    while (remaining > 0) {
      bool progressed = false;
      for (int r = 0; r < nranks_; ++r) {
        const pid_t pid = pids[static_cast<std::size_t>(r)];
        if (pid <= 0) continue;
        int status = 0;
        const pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == 0) continue;  // still running
        progressed = true;
        pids[static_cast<std::size_t>(r)] = -1;
        --remaining;
        if (got < 0) {
          // EINTR cannot happen with WNOHANG; ECHILD means something else
          // reaped our rank — its verdict is lost, treat as a hard failure.
          if (hard_fail.empty()) {
            hard_fail = "shm rank " + std::to_string(r) +
                        " was reaped out from under the transport (waitpid: " +
                        std::to_string(errno) + ")";
          }
        } else if (WIFEXITED(status)) {
          const int code = WEXITSTATUS(status);
          if (code == kRankSoftFailExit) {
            soft_fail = true;
          } else if (code != 0 && hard_fail.empty()) {
            hard_fail = "shm rank " + std::to_string(r) + " exited with code " +
                        std::to_string(code);
          }
        } else if (WIFSIGNALED(status) && hard_fail.empty()) {
          hard_fail = "shm rank " + std::to_string(r) + " killed by signal " +
                      std::to_string(WTERMSIG(status));
        }
        if (!hard_fail.empty()) {
          for (pid_t p : pids) {
            if (p > 0) ::kill(p, SIGKILL);
          }
        }
      }
      if (!progressed && remaining > 0) {
        // Idle poll interval; run() durations are milliseconds and up, so
        // 0.2 ms of reap latency is noise.
        struct timespec ts = {0, 200000};
        ::nanosleep(&ts, nullptr);
      }
    }
    if (!hard_fail.empty()) throw std::runtime_error(hard_fail);
    if (soft_fail) {
      throw std::runtime_error(
          "shm rank(s) reported in-rank assertion failures (see rank output)");
    }
  }

  void barrier(int) override {
    const int rc = pthread_barrier_wait(&control_->barrier);
    PP_CHECK(rc == 0 || rc == PTHREAD_BARRIER_SERIAL_THREAD);
  }

  void charge_remote(RemoteOpClass cls) override { spin_us(wire_.op_us(cls)); }

  // Double-buffered one-barrier collectives. Safety argument for reusing
  // phase p two calls later: a rank reads phase-p data strictly before it
  // enters the *next* collective's barrier, and phase p is rewritten only
  // after that next barrier completes — i.e. after every rank has entered
  // it, hence after every phase-p read. Ranks run SPMD (same collective
  // sequence), which the façade already requires.
  double allreduce(int rank, double value, bool take_min) override {
    double* slots =
        reduce_slots_ + static_cast<std::size_t>(red_phase_) *
                            static_cast<std::size_t>(nranks_);
    red_phase_ ^= 1;  // per-process copy; all ranks flip in lockstep
    // One reduction-tree injection per rank (the façade's cost convention).
    if (nranks_ > 1) spin_us(wire_.us_per_msg + 8 * wire_.us_per_byte);
    slots[rank] = value;
    barrier(rank);
    double acc = slots[0];
    for (int r = 1; r < nranks_; ++r) {
      acc = take_min ? std::min(acc, slots[r]) : acc + slots[r];
    }
    return acc;
  }

  void alltoallv(int rank, const ByteLane* lanes, std::vector<std::byte>& in) override {
    const std::size_t phase = static_cast<std::size_t>(a2a_phase_);
    a2a_phase_ ^= 1;  // per-process copy; all ranks flip in lockstep
    std::byte* stage = staging(rank) + phase * staging_cap_;
    std::size_t off = 0;
    for (int d = 0; d < nranks_; ++d) {
      const ByteLane& lane = lanes[d];
      if (off + lane.bytes > staging_cap_) overflow("alltoallv staging");
      if (lane.bytes > 0) std::memcpy(stage + off, lane.data, lane.bytes);
      if (d != rank && lane.bytes > 0) {
        spin_us(wire_.us_per_msg +
                static_cast<double>(lane.bytes) * wire_.us_per_byte);
      }
      lane_meta(phase, rank, d) = LaneMeta{off, lane.bytes};
      off += lane.bytes;
    }
    barrier(rank);
    in.clear();
    std::size_t total = 0;
    for (int s = 0; s < nranks_; ++s) total += lane_meta(phase, s, rank).bytes;
    in.resize(total);
    std::size_t w = 0;
    for (int s = 0; s < nranks_; ++s) {
      const LaneMeta& m = lane_meta(phase, s, rank);
      if (m.bytes > 0) {
        std::memcpy(in.data() + w, staging(s) + phase * staging_cap_ + m.offset,
                    m.bytes);
      }
      w += m.bytes;
    }
  }

  void send(int rank, int dest, const void* data, std::size_t bytes) override {
    if (dest != rank) {
      spin_us(wire_.us_per_msg + static_cast<double>(bytes) * wire_.us_per_byte);
    }
    InboxHeader* h = inbox_header(dest);
    h->lock.lock();
    if (h->size + bytes > inbox_cap_) {
      h->lock.unlock();
      overflow("inbox");
    }
    std::memcpy(inbox_data(dest) + h->size, data, bytes);
    h->size += bytes;
    h->lock.unlock();
  }

  void drain(int rank, std::vector<std::byte>& in) override {
    InboxHeader* h = inbox_header(rank);
    h->lock.lock();
    in.assign(inbox_data(rank), inbox_data(rank) + h->size);
    h->size = 0;
    h->lock.unlock();
  }

  void rmw_lock(std::size_t element) override {
    rmw_locks_[element & (kRmwStripes - 1)].lock();
  }
  void rmw_unlock(std::size_t element) override {
    rmw_locks_[element & (kRmwStripes - 1)].unlock();
  }

  const double* rank_wall_us() const noexcept override { return wall_us_; }

 private:
  static constexpr std::size_t kPageBytes = 4096;
  static constexpr std::size_t kRmwStripes = 1024;  // power of two

  // Process-shared spinlock; ranks heavily outnumber cores, so yield.
  struct SpinLock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
    void lock() noexcept {
      while (flag.test_and_set(std::memory_order_acquire)) ::sched_yield();
    }
    void unlock() noexcept { flag.clear(std::memory_order_release); }
  };

  struct Control {
    pthread_barrier_t barrier;
  };

  struct LaneMeta {
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };

  struct InboxHeader {
    SpinLock lock;
    std::size_t size = 0;
  };

  static constexpr std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  // Origin-blocking wire emulation: a blocking one-sided op or message
  // injection occupies the calling rank for its service time.
  static void spin_us(double us) {
    if (us <= 0.0) return;
    WallTimer t;
    while (t.elapsed_us() < us) {
    }
  }

  [[noreturn]] void overflow(const char* what) const {
    std::fprintf(stderr,
                 "shm %s overflow (cap %zu B); construct World with a larger "
                 "shm segment\n",
                 what, staging_cap_);
    std::abort();
  }

  std::byte* staging(int rank) const {
    return staging_base_ + static_cast<std::size_t>(rank) * staging_stride_;
  }
  LaneMeta& lane_meta(std::size_t phase, int src, int dest) const {
    const std::size_t p = static_cast<std::size_t>(nranks_);
    return a2a_meta_[phase * p * p + static_cast<std::size_t>(src) * p +
                     static_cast<std::size_t>(dest)];
  }
  InboxHeader* inbox_header(int rank) const {
    return reinterpret_cast<InboxHeader*>(
        inbox_base_ + static_cast<std::size_t>(rank) * inbox_stride_);
  }
  std::byte* inbox_data(int rank) const {
    return reinterpret_cast<std::byte*>(inbox_header(rank)) + sizeof(InboxHeader);
  }

  std::byte* base_ = nullptr;
  std::size_t segment_bytes_ = 0;
  Control* control_ = nullptr;
  double* reduce_slots_ = nullptr;
  double* wall_us_ = nullptr;
  SpinLock* rmw_locks_ = nullptr;
  LaneMeta* a2a_meta_ = nullptr;
  std::byte* staging_base_ = nullptr;
  std::size_t staging_cap_ = 0;
  std::size_t staging_stride_ = 0;
  std::byte* inbox_base_ = nullptr;
  std::size_t inbox_cap_ = 0;
  std::size_t inbox_stride_ = 0;
  std::size_t arena_off_ = 0;
  std::size_t bump_ = 0;  // parent-side cursor; ranks never allocate
  int red_phase_ = 0;     // per-process collective parities (SPMD lockstep)
  int a2a_phase_ = 0;
  WireDelays wire_;
};

#else  // !PUSHPULL_SHM_TRANSPORT

// Stub so World code compiles on platforms without process-shared
// primitives; construction is rejected (shm_backend_available() is false).
class ShmTransport final : public Transport {
 public:
  ShmTransport(int nranks, std::size_t) : Transport(nranks) {
    PP_CHECK(!"shm backend unavailable on this platform");
  }
  BackendKind kind() const noexcept override { return BackendKind::Shm; }
  void* shared_alloc(std::size_t, std::size_t) override { return nullptr; }
  void run(const std::function<void(int)>&) override {}
  void barrier(int) override {}
  double allreduce(int, double value, bool) override { return value; }
  void alltoallv(int, const ByteLane*, std::vector<std::byte>&) override {}
  void send(int, int, const void*, std::size_t) override {}
  void drain(int, std::vector<std::byte>&) override {}
  const double* rank_wall_us() const noexcept override { return nullptr; }
};

#endif  // PUSHPULL_SHM_TRANSPORT

}  // namespace pushpull::dist
