// Distributed-memory BFS over the emulated runtime (§3.8, §4.3, Figure 3).
//
// Level-synchronous BFS on a 1D vertex partition, built on the distributed
// frontier (dist/frontier_dist.hpp). Claims are packed (level, parent) int64
// words resolved by MIN, which makes parents deterministic across variants
// and rank counts: a vertex's parent is always its *minimum* frontier
// neighbor at the previous level.
//
//   Pushing-RMA  — every frontier edge issues a blind MPI_Accumulate(MIN)
//                  into the target's claim word: one lock-protocol remote op
//                  per cut edge (the pusher cannot test "visited?" remotely
//                  without paying a get).
//   Pulling-RMA  — bottom-up rounds: every unvisited owned vertex probes its
//                  in-neighbors against the dense frontier window; each probe
//                  of a remote bit is a counted get, writes stay owner-local.
//   Msg-Passing  — frontier edges whose target is remote are combined per
//                  destination vertex (min parent) and shipped as one
//                  alltoallv lane per destination rank; owners claim locally.
//
// With `direction_optimizing` set, sparse rounds use the variant's own
// expansion and dense rounds always use the bitmap-probing pull expansion —
// the Beamer switch driven by DistFrontier's allreduced counts. Levels and
// distances are invariant under the switch.
//
// For directed graphs pass the transposed in-CSR as `in` (pull rounds scan
// in-neighbors); by default `in = &g`, correct for symmetric graphs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dist/frontier_dist.hpp"
#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

struct BfsDistOptions {
  DistVariant variant = DistVariant::MsgPassing;
  BackendKind backend = BackendKind::Emu;
  // Per-superstep sparse/dense switching. Meaningful for PushRma and
  // MsgPassing; PullRma runs every round dense regardless.
  bool direction_optimizing = false;
  DistFrontier::Heuristic heuristic{};
  CommCosts costs{};
  // > 0 enables the World's superstep log with this per-rank capacity; the
  // closed records come back in BfsDistResult::supersteps (works on both
  // backends — the log lives in shared memory).
  std::size_t superstep_trace = 0;
};

struct BfsDistResult {
  std::vector<vid_t> dist;    // hop distance; -1 = unreachable
  std::vector<vid_t> parent;  // min-parent BFS tree; -1 = root/unreachable
  int levels = 0;             // non-empty frontiers processed
  std::vector<FrontierMode> level_modes;  // expansion mode per level
  RankStats total;
  double max_comm_us = 0.0;
  double max_rank_wall_us = 0.0;
  std::uint64_t max_rank_edge_ops = 0;
  // Per-rank superstep records (empty unless opt.superstep_trace > 0).
  std::vector<std::vector<SuperstepRecord>> supersteps;
};

namespace detail {

// Unvisited claim word: larger than any packed (level, parent).
inline constexpr std::int64_t kUnclaimed = std::numeric_limits<std::int64_t>::max();

// Packs (level, parent) so that int64 MIN orders first by level, then by
// parent id. parent = -1 (the root) packs as the largest parent value, which
// is irrelevant: the root's claim is pre-installed at level 0.
inline std::int64_t pack_claim(vid_t level, vid_t parent) noexcept {
  return (static_cast<std::int64_t>(level) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(parent));
}
inline vid_t claim_level(std::int64_t packed) noexcept {
  return static_cast<vid_t>(packed >> 32);
}
inline vid_t claim_parent(std::int64_t packed) noexcept {
  return static_cast<vid_t>(static_cast<std::int32_t>(packed & 0xffffffff));
}

}  // namespace detail

inline BfsDistResult bfs_dist(const Csr& g, vid_t root, int nranks,
                              const BfsDistOptions& opt = {},
                              const Csr* in = nullptr) {
  const Csr& gin = in ? *in : g;
  const vid_t n = g.n();
  PP_CHECK(n > 0 && nranks >= 1);
  PP_CHECK(root >= 0 && root < n);
  PP_CHECK(gin.n() == n);

  World world(nranks, opt.backend);
  if (opt.superstep_trace > 0) world.enable_superstep_trace(opt.superstep_trace);
  const Partition1D part(n, nranks);
  DistFrontier frontier(world, g, part, opt.heuristic);
  Window<std::int64_t> claim(world, static_cast<std::size_t>(n));
  std::fill(claim.raw().begin(), claim.raw().end(), detail::kUnclaimed);
  claim.raw()[static_cast<std::size_t>(root)] =
      detail::pack_claim(0, kInvalidVertex);

  // Owner-published result slices and rank-0 level metadata; shared so
  // process-backed ranks reach the controlling process. A BFS has at most n
  // non-empty levels.
  const std::span<vid_t> dist_out =
      world.shared_array<vid_t>(static_cast<std::size_t>(n));
  const std::span<vid_t> parent_out =
      world.shared_array<vid_t>(static_cast<std::size_t>(n));
  const std::span<FrontierMode> mode_out =
      world.shared_array<FrontierMode>(static_cast<std::size_t>(n) + 1);
  const std::span<std::int32_t> levels_out = world.shared_array<std::int32_t>(1);
  std::fill(dist_out.begin(), dist_out.end(), vid_t{-1});
  std::fill(parent_out.begin(), parent_out.end(), vid_t{-1});

  world.run([&](Rank& rank) {
    const int me = rank.id();
    const vid_t vbeg = part.begin(me);
    const vid_t vend = part.end(me);
    const std::span<std::int64_t> craw = claim.raw();
    CombiningBuffers<vid_t> lanes(part, nranks);  // payload: proposed parent

    frontier.advance(rank, part.owner(root) == me ? std::vector<vid_t>{root}
                                                  : std::vector<vid_t>{});
    vid_t level = 0;
    while (!frontier.globally_empty(rank)) {
      ++level;
      const bool dense =
          opt.variant == DistVariant::PullRma ||
          (opt.direction_optimizing &&
           frontier.mode(rank) == FrontierMode::Dense);
      if (me == 0) {
        mode_out[static_cast<std::size_t>(levels_out[0]++)] =
            dense ? FrontierMode::Dense : FrontierMode::Sparse;
      }
      std::vector<vid_t> next;

      if (dense) {
        // Bottom-up: unvisited owned vertices scan their in-neighbors for a
        // frontier member; the first hit in the sorted in-list is the minimum
        // parent, matching the sparse variants' MIN-combined claims.
        for (vid_t v = vbeg; v < vend; ++v) {
          if (craw[static_cast<std::size_t>(v)] != detail::kUnclaimed) continue;
          for (vid_t u : gin.neighbors(v)) {
            ++rank.stats().edge_ops;
            if (frontier.test(rank, u)) {
              craw[static_cast<std::size_t>(v)] = detail::pack_claim(level, u);
              next.push_back(v);
              break;
            }
          }
        }
      } else if (opt.variant == DistVariant::PushRma) {
        for (vid_t v : frontier.owned(rank)) {
          const std::int64_t packed = detail::pack_claim(level, v);
          for (vid_t u : g.neighbors(v)) {
            ++rank.stats().edge_ops;
            claim.accumulate_min(rank, static_cast<std::size_t>(u), packed);
          }
        }
        rank.barrier();  // all remote claims landed
        for (vid_t v = vbeg; v < vend; ++v) {
          const std::int64_t c = craw[static_cast<std::size_t>(v)];
          if (c != detail::kUnclaimed && detail::claim_level(c) == level) {
            next.push_back(v);
          }
        }
      } else {  // MsgPassing sparse round
        const auto claim_min = [](vid_t& a, vid_t b) { a = std::min(a, b); };
        for (vid_t v : frontier.owned(rank)) {
          for (vid_t u : g.neighbors(v)) {
            ++rank.stats().edge_ops;
            if (part.owner(u) == me) {
              std::int64_t& c = craw[static_cast<std::size_t>(u)];
              if (c == detail::kUnclaimed) {
                c = detail::pack_claim(level, v);
                next.push_back(u);
              } else if (detail::claim_level(c) == level) {
                c = std::min(c, detail::pack_claim(level, v));
              }
            } else {
              lanes.stage(u, v, claim_min);
            }
          }
        }
        for (const auto& e : lanes.exchange(rank)) {
          std::int64_t& c = craw[static_cast<std::size_t>(e.v)];
          if (c == detail::kUnclaimed) {
            c = detail::pack_claim(level, e.val);
            next.push_back(e.v);
          } else if (detail::claim_level(c) == level) {
            c = std::min(c, detail::pack_claim(level, e.val));
          }
        }
      }
      frontier.advance(rank, std::move(next));
    }

    // Owner publishes its slice of the result.
    for (vid_t v = vbeg; v < vend; ++v) {
      const std::int64_t c = craw[static_cast<std::size_t>(v)];
      if (c == detail::kUnclaimed) continue;
      dist_out[static_cast<std::size_t>(v)] = detail::claim_level(c);
      parent_out[static_cast<std::size_t>(v)] = detail::claim_parent(c);
    }
  });

  BfsDistResult res;
  res.dist.assign(dist_out.begin(), dist_out.end());
  res.parent.assign(parent_out.begin(), parent_out.end());
  res.levels = levels_out[0];
  res.level_modes.assign(mode_out.begin(),
                         mode_out.begin() + levels_out[0]);
  res.total = world.total_stats();
  res.max_comm_us = world.max_modeled_comm_us(opt.costs);
  res.max_rank_edge_ops = world.max_edge_ops();
  res.max_rank_wall_us = world.max_rank_wall_us();
  if (opt.superstep_trace > 0) {
    res.supersteps.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const auto recs = world.superstep_records(r);
      res.supersteps[static_cast<std::size_t>(r)].assign(recs.begin(),
                                                         recs.end());
    }
  }
  return res;
}

}  // namespace pushpull::dist
