// Thread-per-rank emulation backend (DESIGN.md §3) — the original in-process
// runtime behind the Transport seam, behavior-preserving.
//
// Every rank is a plain std::thread; the container is heavily oversubscribed
// (more ranks than cores), so the barrier sleeps on a condition variable
// instead of spinning. "Shared" allocations are ordinary heap memory (one
// address space), the alltoallv is zero-copy (receivers read the senders'
// lane buffers directly between two barriers), and inboxes are mutex-guarded
// byte vectors. Wall-clock time of oversubscribed threads would measure the
// scheduler, not the algorithm — reported communication time for this
// backend is the CommCosts model applied to the façade's RankStats counters.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/transport.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pushpull::dist {

class EmuTransport final : public Transport {
 public:
  explicit EmuTransport(int nranks)
      : Transport(nranks),
        red_slots_(static_cast<std::size_t>(nranks), 0.0),
        wall_us_(static_cast<std::size_t>(nranks), 0.0),
        a2a_slots_(static_cast<std::size_t>(nranks), nullptr) {
    inboxes_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) inboxes_.push_back(std::make_unique<Inbox>());
  }

  BackendKind kind() const noexcept override { return BackendKind::Emu; }

  void* shared_alloc(std::size_t bytes, std::size_t align) override {
    if (bytes == 0) bytes = 1;
    allocs_.emplace_back(
        static_cast<std::byte*>(::operator new(bytes, std::align_val_t{align})),
        Deleter{align});
    std::memset(allocs_.back().get(), 0, bytes);
    return allocs_.back().get();
  }

  void run(const std::function<void(int)>& fn) override {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
      threads.emplace_back([this, r, &fn] {
        WallTimer t;
        fn(r);
        wall_us_[static_cast<std::size_t>(r)] += t.elapsed_us();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  void barrier(int) override {
    std::unique_lock<std::mutex> lk(bar_mu_);
    const std::uint64_t phase = bar_phase_;
    if (++bar_arrived_ == nranks_) {
      bar_arrived_ = 0;
      ++bar_phase_;
      bar_cv_.notify_all();
    } else {
      bar_cv_.wait(lk, [&] { return bar_phase_ != phase; });
    }
  }

  // Slot-write / barrier / fold / barrier: the trailing barrier keeps the
  // slots alive until every rank has read them. Every rank folds the same
  // slot order, so the result is deterministic.
  double allreduce(int rank, double value, bool take_min) override {
    red_slots_[static_cast<std::size_t>(rank)] = value;
    barrier(rank);
    double acc = red_slots_.front();
    for (std::size_t r = 1; r < red_slots_.size(); ++r) {
      acc = take_min ? std::min(acc, red_slots_[r]) : acc + red_slots_[r];
    }
    barrier(rank);
    return acc;
  }

  // Zero-copy: each rank publishes a pointer to its lane descriptors, and
  // receivers read the senders' buffers directly. The trailing barrier keeps
  // every sender's lanes alive until every receiver is done.
  void alltoallv(int rank, const ByteLane* lanes, std::vector<std::byte>& in) override {
    a2a_slots_[static_cast<std::size_t>(rank)] = lanes;
    barrier(rank);
    in.clear();
    std::size_t total = 0;
    for (int s = 0; s < nranks_; ++s) {
      total += a2a_slots_[static_cast<std::size_t>(s)][rank].bytes;
    }
    in.resize(total);
    std::size_t off = 0;
    for (int s = 0; s < nranks_; ++s) {
      const ByteLane& lane = a2a_slots_[static_cast<std::size_t>(s)][rank];
      if (lane.bytes > 0) std::memcpy(in.data() + off, lane.data, lane.bytes);
      off += lane.bytes;
    }
    barrier(rank);
  }

  void send(int, int dest, const void* data, std::size_t bytes) override {
    auto& inbox = *inboxes_[static_cast<std::size_t>(dest)];
    std::lock_guard<std::mutex> lk(inbox.mu);
    const std::size_t off = inbox.bytes.size();
    inbox.bytes.resize(off + bytes);
    std::memcpy(inbox.bytes.data() + off, data, bytes);
  }

  void drain(int rank, std::vector<std::byte>& in) override {
    auto& inbox = *inboxes_[static_cast<std::size_t>(rank)];
    std::lock_guard<std::mutex> lk(inbox.mu);
    in.assign(inbox.bytes.begin(), inbox.bytes.end());
    inbox.bytes.clear();
  }

  const double* rank_wall_us() const noexcept override { return wall_us_.data(); }

 private:
  struct Inbox {
    std::mutex mu;
    std::vector<std::byte> bytes;
  };

  struct Deleter {
    std::size_t align;
    void operator()(std::byte* p) const {
      ::operator delete(p, std::align_val_t{align});
    }
  };

  std::vector<std::unique_ptr<std::byte, Deleter>> allocs_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<double> red_slots_;
  std::vector<double> wall_us_;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_arrived_ = 0;
  std::uint64_t bar_phase_ = 0;

  std::vector<const ByteLane*> a2a_slots_;
};

}  // namespace pushpull::dist
