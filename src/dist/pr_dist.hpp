// Distributed-memory PageRank over the emulated runtime (§3.8, Figure 3).
//
// Vertices are 1D block-partitioned across ranks; rank values live in a
// one-sided window (double-buffered by iteration parity, so no global swap is
// needed). The three variants communicate the same contributions differently:
//
//   Pushing-RMA  — every edge whose target is remote issues a float
//                  MPI_Accumulate into the owner's window: per-edge remote
//                  lock-protocol traffic, the paper's worst case for PR.
//   Pulling-RMA  — every remote in-neighbor costs a *pair* of gets (its rank
//                  value and its degree), i.e. two round trips per edge.
//   Msg-Passing  — contributions are combined per destination vertex and
//                  exchanged with one alltoallv lane per destination rank per
//                  iteration: O(P) messages instead of O(m/P) remote ops,
//                  which is why Figure 3 shows MP beating Pushing-RMA by >10x.
//
// All variants implement the identical update rule as pagerank_seq (including
// uniform redistribution of dangling mass, via an allreduce of the per-rank
// dangling sums), so results agree with the shared-memory kernels to 1e-9.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

struct DistPrResult {
  std::vector<double> pr;           // final rank vector, all vertices
  RankStats total;                  // counters summed over ranks
  double max_comm_us = 0.0;         // slowest rank's modeled communication
  double max_rank_wall_us = 0.0;    // slowest rank's measured wall clock
  std::uint64_t max_rank_edge_ops = 0;  // slowest rank's compute proxy
};

namespace detail {

// One combined contribution for a remote destination vertex.
struct PrContribution {
  vid_t v;
  double value;
};

}  // namespace detail

inline DistPrResult pagerank_dist(const Csr& g, int nranks, int iters, double damping,
                                  DistVariant variant, const CommCosts& costs = CommCosts{},
                                  BackendKind backend = BackendKind::Emu) {
  const vid_t n = g.n();
  PP_CHECK(n > 0 && nranks >= 1 && iters >= 0);

  World world(nranks, backend);
  const Partition1D part(n, nranks);
  // Double-buffered rank windows: iteration l reads bufs[l%2], writes
  // bufs[(l+1)%2]. Degrees are mirrored into a window so the pull variant's
  // paired rank+degree fetches go through counted gets.
  Window<double> buf_a(world, static_cast<std::size_t>(n));
  Window<double> buf_b(world, static_cast<std::size_t>(n));
  Window<double> deg_win(world, static_cast<std::size_t>(n));
  std::fill(buf_a.raw().begin(), buf_a.raw().end(), 1.0 / n);
  for (vid_t v = 0; v < n; ++v) {
    deg_win.raw()[static_cast<std::size_t>(v)] = static_cast<double>(g.degree(v));
  }

  world.run([&](Rank& rank) {
    const int me = rank.id();
    const vid_t vbeg = part.begin(me);
    const vid_t vend = part.end(me);

    // Msg-Passing scratch, hoisted out of the iteration loop: the combine
    // vector and the per-destination lanes are reused (and re-zeroed /
    // cleared) every iteration instead of reallocated.
    std::vector<double> contrib;
    std::vector<std::vector<detail::PrContribution>> out;
    if (variant == DistVariant::MsgPassing) {
      contrib.resize(static_cast<std::size_t>(n));
      out.resize(static_cast<std::size_t>(nranks));
    }

    for (int l = 0; l < iters; ++l) {
      Window<double>& cur = (l % 2 == 0) ? buf_a : buf_b;
      Window<double>& nxt = (l % 2 == 0) ? buf_b : buf_a;
      const std::span<double> curv = cur.raw();
      const std::span<double> nxtv = nxt.raw();

      // Owner zeroes its slice of the target buffer; the allreduce below
      // doubles as the barrier that makes the zeroes visible before any rank
      // starts accumulating into remote slices.
      for (vid_t v = vbeg; v < vend; ++v) nxtv[static_cast<std::size_t>(v)] = 0.0;

      double local_dangling = 0.0;
      for (vid_t v = vbeg; v < vend; ++v) {
        if (g.degree(v) == 0) local_dangling += curv[static_cast<std::size_t>(v)];
      }
      const double dangling = rank.allreduce_sum(local_dangling);
      const double base = (1.0 - damping) / n + damping * dangling / n;

      switch (variant) {
        case DistVariant::PushRma: {
          for (vid_t v = vbeg; v < vend; ++v) {
            const vid_t deg = g.degree(v);
            if (deg == 0) continue;
            const double share = damping * curv[static_cast<std::size_t>(v)] / deg;
            for (vid_t u : g.neighbors(v)) {
              ++rank.stats().edge_ops;
              nxt.accumulate(rank, static_cast<std::size_t>(u), share);
            }
          }
          rank.barrier();  // all remote accumulates landed
          for (vid_t v = vbeg; v < vend; ++v) nxtv[static_cast<std::size_t>(v)] += base;
          break;
        }
        case DistVariant::PullRma: {
          for (vid_t v = vbeg; v < vend; ++v) {
            double sum = 0.0;
            for (vid_t u : g.neighbors(v)) {
              ++rank.stats().edge_ops;
              // Paired fetches: the neighbor's rank value and its degree.
              const double ru = cur.get(rank, static_cast<std::size_t>(u));
              const double du = deg_win.get(rank, static_cast<std::size_t>(u));
              sum += ru / du;
            }
            nxtv[static_cast<std::size_t>(v)] = base + damping * sum;
          }
          break;
        }
        case DistVariant::MsgPassing: {
          // Combine all contributions of this rank's vertices per destination
          // vertex, then exchange one lane per destination rank.
          std::fill(contrib.begin(), contrib.end(), 0.0);
          for (auto& lane : out) lane.clear();
          for (vid_t v = vbeg; v < vend; ++v) {
            const vid_t deg = g.degree(v);
            if (deg == 0) continue;
            const double share = curv[static_cast<std::size_t>(v)] / deg;
            for (vid_t u : g.neighbors(v)) {
              ++rank.stats().edge_ops;
              contrib[static_cast<std::size_t>(u)] += share;
            }
          }
          for (vid_t v = vbeg; v < vend; ++v) {
            nxtv[static_cast<std::size_t>(v)] += contrib[static_cast<std::size_t>(v)];
          }
          for (int d = 0; d < nranks; ++d) {
            if (d == me) continue;
            for (vid_t u = part.begin(d); u < part.end(d); ++u) {
              const double c = contrib[static_cast<std::size_t>(u)];
              if (c != 0.0) out[static_cast<std::size_t>(d)].push_back({u, c});
            }
          }
          const auto in = rank.alltoallv(out);
          for (const detail::PrContribution& m : in) {
            nxtv[static_cast<std::size_t>(m.v)] += m.value;
          }
          for (vid_t v = vbeg; v < vend; ++v) {
            nxtv[static_cast<std::size_t>(v)] =
                base + damping * nxtv[static_cast<std::size_t>(v)];
          }
          break;
        }
      }
      rank.barrier();  // iteration epoch: writes visible before parity flips
    }
  });

  DistPrResult res;
  const std::span<const double> final_pr =
      (iters % 2 == 0) ? buf_a.raw() : buf_b.raw();
  res.pr.assign(final_pr.begin(), final_pr.end());
  res.total = world.total_stats();
  res.max_comm_us = world.max_modeled_comm_us(costs);
  res.max_rank_edge_ops = world.max_edge_ops();
  res.max_rank_wall_us = world.max_rank_wall_us();
  return res;
}

}  // namespace pushpull::dist
