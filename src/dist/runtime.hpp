// Distributed-memory runtime façade (§3.8, §6; DESIGN.md §3).
//
// The paper's distributed experiments compare three communication styles on
// top of a 1D vertex partition: one-sided *pushing* (MPI_Accumulate / FAA),
// one-sided *pulling* (MPI_Get), and two-sided *message passing* with
// per-destination combining. `World`/`Rank`/`Window<T>` reproduce those
// tradeoffs as a thin façade over a pluggable Transport backend
// (dist/transport.hpp), selected once at World construction:
//
//   World(n, BackendKind::Emu)  thread-per-rank emulation; reported
//                               communication time is the CommCosts model
//                               applied to RankStats counters (the container
//                               has 1-2 cores — wall time of oversubscribed
//                               threads would measure the scheduler).
//   World(n, BackendKind::Shm)  forked processes over POSIX shared memory;
//                               windows use real process-shared atomics, the
//                               float-accumulate lock protocol is a real
//                               striped lock, and per-rank wall-clock time
//                               is measured.
//
// The façade owns everything backend-independent: counter attribution
// (RankStats, identical across backends), the allreduce slot-fold protocol,
// message counting, and the Window ownership/counting rules. Cross-rank
// state (windows, result slices) must come from World::shared_array so it is
// visible to process-backed ranks; everything else a rank touches is private.
//
// The cost model encodes the paper's central asymmetry: a floating-point
// MPI_Accumulate runs a lock-protocol (remote lock, get, add, put, unlock —
// §4.1), while an integer fetch-and-add maps to the NIC/hardware fast path
// (§4.2); messages pay a fixed injection/matching overhead plus bandwidth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "dist/transport.hpp"
#include "dist/transport_emu.hpp"
#include "dist/transport_shm.hpp"
#include "graph/partition.hpp"
#include "obs/trace.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

// Which communication style a distributed kernel uses (§3.8).
enum class DistVariant {
  PushRma,     // one-sided writes into remote windows (accumulate / FAA)
  PullRma,     // one-sided reads of remote windows (get)
  MsgPassing,  // two-sided, contributions combined per destination rank
};

inline const char* to_string(DistVariant v) {
  switch (v) {
    case DistVariant::PushRma: return "push-rma";
    case DistVariant::PullRma: return "pull-rma";
    case DistVariant::MsgPassing: return "msg-passing";
  }
  return "unknown";
}

// Per-operation costs in microseconds. Calibrated to the relative magnitudes
// the paper reports for a Cray Aries interconnect (§6): the float-accumulate
// lock protocol is an order of magnitude above the integer FAA fast path, and
// a matched two-sided message costs far more than any single RMA op.
struct CommCosts {
  double us_per_msg = 10.0;    // two-sided injection + matching overhead
  double us_per_byte = 0.005;  // ~200 MB/s effective payload bandwidth
  double us_per_put = 0.5;     // MPI_Put
  double us_per_get = 0.8;     // MPI_Get round trip
  double us_per_acc = 3.0;     // MPI_Accumulate on floats: lock protocol (§4.1)
  double us_per_faa = 0.3;     // integer fetch-and-add fast path (§4.2)
  double us_per_barrier = 5.0; // dissemination barrier
};

// Communication counters for one rank. Local window accesses are tracked
// separately from remote ones and carry no modeled cost: only operations that
// would cross the network are charged. Counters are backend-independent —
// the same run produces the same counts on emu and shm ranks.
struct RankStats {
  std::uint64_t barriers = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t rma_puts = 0;
  std::uint64_t rma_gets = 0;
  std::uint64_t rma_accs = 0;
  std::uint64_t rma_faas = 0;
  std::uint64_t local_puts = 0;
  std::uint64_t local_gets = 0;
  std::uint64_t local_accs = 0;
  std::uint64_t local_faas = 0;
  // Receive side of the two-sided protocol: inbox drains and the bytes they
  // returned. Not modeled (the sender already paid the wire charge) but
  // essential telemetry — a rank whose drains return empty is starved, one
  // whose drained bytes dwarf its sent bytes is a hotspot.
  std::uint64_t drains = 0;
  std::uint64_t bytes_drained = 0;
  // Compute proxy filled by the distributed kernels: edges (PR) or neighbor
  // pairs (TC) processed by this rank.
  std::uint64_t edge_ops = 0;

  double modeled_comm_us(const CommCosts& c) const {
    return static_cast<double>(msgs_sent) * c.us_per_msg +
           static_cast<double>(bytes_sent) * c.us_per_byte +
           static_cast<double>(rma_puts) * c.us_per_put +
           static_cast<double>(rma_gets) * c.us_per_get +
           static_cast<double>(rma_accs) * c.us_per_acc +
           static_cast<double>(rma_faas) * c.us_per_faa +
           static_cast<double>(barriers) * c.us_per_barrier;
  }

  RankStats& operator+=(const RankStats& o) {
    barriers += o.barriers;
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    rma_puts += o.rma_puts;
    rma_gets += o.rma_gets;
    rma_accs += o.rma_accs;
    rma_faas += o.rma_faas;
    local_puts += o.local_puts;
    local_gets += o.local_gets;
    local_accs += o.local_accs;
    local_faas += o.local_faas;
    drains += o.drains;
    bytes_drained += o.bytes_drained;
    edge_ops += o.edge_ops;
    return *this;
  }
};

// Field-wise `after - before`, for per-superstep counter deltas. Counters
// are monotone within a rank, so the subtraction never wraps.
inline RankStats rank_stats_delta(const RankStats& after,
                                  const RankStats& before) {
  RankStats d;
  d.barriers = after.barriers - before.barriers;
  d.msgs_sent = after.msgs_sent - before.msgs_sent;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.rma_puts = after.rma_puts - before.rma_puts;
  d.rma_gets = after.rma_gets - before.rma_gets;
  d.rma_accs = after.rma_accs - before.rma_accs;
  d.rma_faas = after.rma_faas - before.rma_faas;
  d.local_puts = after.local_puts - before.local_puts;
  d.local_gets = after.local_gets - before.local_gets;
  d.local_accs = after.local_accs - before.local_accs;
  d.local_faas = after.local_faas - before.local_faas;
  d.drains = after.drains - before.drains;
  d.bytes_drained = after.bytes_drained - before.bytes_drained;
  d.edge_ops = after.edge_ops - before.edge_ops;
  return d;
}

// --- Superstep trace ---------------------------------------------------------
//
// Optional per-rank superstep log, closed at every Rank::barrier() — the
// universal superstep boundary of all distributed kernels here. Storage comes
// from World::shared_array, so it works identically on both backends: emu
// ranks (threads) and shm ranks (forked processes) write their own slot, and
// the controlling process reads the records after run() returns (thread join
// / process wait gives the happens-before; never read mid-run). Timestamps
// are steady_clock (CLOCK_MONOTONIC), which is consistent across forked
// processes on Linux, so per-rank lanes line up on one timeline.

inline constexpr int kSuperstepLanes = 8;

// One barrier-to-barrier interval of one rank.
struct SuperstepRecord {
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  RankStats delta;  // counters this interval accumulated
  // Bytes sent per destination rank (send + alltoallv lanes); destinations
  // >= kSuperstepLanes fold into the last lane.
  std::uint64_t lane_bytes[kSuperstepLanes] = {};
};

// Per-rank bookkeeping between barriers (shared memory, written only by the
// owning rank).
struct SuperstepCursor {
  RankStats prev;
  std::uint64_t prev_t_ns = 0;
  std::uint64_t count = 0;    // records closed so far
  std::uint64_t dropped = 0;  // intervals past capacity
  std::uint64_t lane_bytes[kSuperstepLanes] = {};
};

class Rank;

// Owns the transport and hands each rank a Rank handle. All shared state —
// including the RankStats array — is allocated through the transport so
// process-backed ranks and the controlling process see the same memory.
class World {
 public:
  explicit World(int nranks, BackendKind backend = BackendKind::Emu,
                 std::size_t shm_segment_bytes = kDefaultShmSegmentBytes)
      : nranks_(nranks) {
    PP_CHECK(nranks >= 1);
    if (backend == BackendKind::Shm) {
      PP_CHECK(shm_backend_available());
      transport_ = std::make_unique<ShmTransport>(nranks, shm_segment_bytes);
    } else {
      transport_ = std::make_unique<EmuTransport>(nranks);
    }
    stats_ = shared_array<RankStats>(static_cast<std::size_t>(nranks)).data();
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int nranks() const noexcept { return nranks_; }
  BackendKind backend() const noexcept { return transport_->kind(); }
  Transport& transport() noexcept { return *transport_; }

  // Zero-initialized cross-rank storage for windows, bitmaps, and result
  // slices. Call from the controlling process (before or between runs),
  // never from inside a rank function.
  template <class T>
  std::span<T> shared_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    T* p = static_cast<T*>(
        transport_->shared_alloc(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (p + i) T{};
    return {p, count};
  }

  // SPMD entry point: fn(Rank&) runs once on every rank, concurrently.
  template <class F>
  void run(F&& fn);

  const RankStats& stats(int r) const {
    PP_CHECK(r >= 0 && r < nranks_);
    return stats_[static_cast<std::size_t>(r)];
  }

  RankStats total_stats() const {
    RankStats t;
    for (int r = 0; r < nranks_; ++r) t += stats_[static_cast<std::size_t>(r)];
    return t;
  }

  double max_modeled_comm_us(const CommCosts& c) const {
    double m = 0.0;
    for (int r = 0; r < nranks_; ++r) {
      m = std::max(m, stats_[static_cast<std::size_t>(r)].modeled_comm_us(c));
    }
    return m;
  }

  std::uint64_t max_edge_ops() const {
    std::uint64_t m = 0;
    for (int r = 0; r < nranks_; ++r) {
      m = std::max(m, stats_[static_cast<std::size_t>(r)].edge_ops);
    }
    return m;
  }

  // Slowest rank's measured wall-clock time, accumulated over run() calls.
  // Meaningful for the shm backend; for emu it measures oversubscribed
  // threads (use max_modeled_comm_us instead).
  double max_rank_wall_us() const {
    const double* w = transport_->rank_wall_us();
    double m = 0.0;
    for (int r = 0; r < nranks_; ++r) m = std::max(m, w[r]);
    return m;
  }

  // Turn on the per-rank superstep log. Call from the controlling process
  // before run(); each rank can close up to `capacity` records per World
  // (further barriers count as dropped). Storage is shared, so forked shm
  // ranks write records the parent reads back after run().
  void enable_superstep_trace(std::size_t capacity = 256) {
    PP_CHECK(capacity >= 1);
    ss_capacity_ = capacity;
    ss_cursors_ = shared_array<SuperstepCursor>(
                      static_cast<std::size_t>(nranks_))
                      .data();
    ss_records_ =
        shared_array<SuperstepRecord>(static_cast<std::size_t>(nranks_) *
                                      capacity)
            .data();
  }

  bool superstep_trace_enabled() const noexcept {
    return ss_cursors_ != nullptr;
  }

  // Records closed by rank r so far. Read after run() returns — the join
  // (emu) / wait (shm) in Transport::run is the happens-before edge.
  std::span<const SuperstepRecord> superstep_records(int r) const {
    PP_CHECK(r >= 0 && r < nranks_);
    if (ss_cursors_ == nullptr) return {};
    const SuperstepCursor& cur = ss_cursors_[static_cast<std::size_t>(r)];
    return {ss_records_ + static_cast<std::size_t>(r) * ss_capacity_,
            static_cast<std::size_t>(cur.count)};
  }

  std::uint64_t superstep_dropped(int r) const {
    PP_CHECK(r >= 0 && r < nranks_);
    return ss_cursors_ == nullptr
               ? 0
               : ss_cursors_[static_cast<std::size_t>(r)].dropped;
  }

 private:
  friend class Rank;

  int nranks_;
  std::unique_ptr<Transport> transport_;
  RankStats* stats_ = nullptr;
  SuperstepCursor* ss_cursors_ = nullptr;
  SuperstepRecord* ss_records_ = nullptr;
  std::size_t ss_capacity_ = 0;
};

// A rank's handle to the world: identity, synchronization, collectives, and
// two-sided messaging. All methods are called from the rank's own
// thread/process. Counter attribution lives here, above the transport, so
// both backends count identically.
class Rank {
 public:
  Rank(World& world, int id)
      : world_(&world), id_(id),
        stats_(&world.stats_[static_cast<std::size_t>(id)]) {
    // Anchor superstep 0 at rank entry so the first barrier closes a record
    // spanning actual rank work, not World setup.
    if (world_->ss_cursors_ != nullptr) {
      SuperstepCursor& cur = cursor();
      cur.prev = *stats_;
      cur.prev_t_ns = obs::now_ns();
      for (std::uint64_t& b : cur.lane_bytes) b = 0;
    }
  }

  int id() const noexcept { return id_; }
  int nranks() const noexcept { return world_->nranks_; }
  RankStats& stats() noexcept { return *stats_; }
  Transport& transport() noexcept { return *world_->transport_; }

  void barrier() {
    ++stats_->barriers;
    if (world_->ss_cursors_ != nullptr) close_superstep();
    world_->transport_->barrier(id_);
  }

  // Attribution + wire charge for one window-class operation: remote ops
  // count against the rma_* counters and pay the transport's emulated wire
  // service time; local ops count separately and are free. Window<T> and the
  // storage-less probes (dense frontier bitmap, TC's modeled adjacency
  // fetches) all funnel through here so both backends count identically.
  void count_put(bool remote) {
    count_op(remote, stats_->local_puts, stats_->rma_puts, RemoteOpClass::Put);
  }
  void count_get(bool remote) {
    count_op(remote, stats_->local_gets, stats_->rma_gets, RemoteOpClass::Get);
  }
  void count_acc(bool remote) {
    count_op(remote, stats_->local_accs, stats_->rma_accs, RemoteOpClass::Acc);
  }
  void count_faa(bool remote) {
    count_op(remote, stats_->local_faas, stats_->rma_faas, RemoteOpClass::Faa);
  }

  // Sum-allreduce over all ranks. Modeled as one message per rank (the
  // reduction tree's injection); free when the world has a single rank.
  // Restricted to floating-point: the reduction scratch is double, which
  // would silently round integer contributions above 2^53.
  template <class T>
  T allreduce_sum(T v) {
    return allreduce<T>(v, /*take_min=*/false);
  }

  // Min-allreduce over all ranks; same cost model. Used by the distributed
  // Δ-stepping kernel to agree on the next non-empty bucket.
  template <class T>
  T allreduce_min(T v) {
    return allreduce<T>(v, /*take_min=*/true);
  }

  // Personalized all-to-all: out[d] is this rank's payload for destination d.
  // Returns the concatenation of every source's payload for this rank. Only
  // non-empty lanes to *other* ranks count as sent messages.
  template <class T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    PP_CHECK(static_cast<int>(out.size()) == world_->nranks_);
    std::vector<ByteLane> lanes(out.size());
    for (int d = 0; d < world_->nranks_; ++d) {
      const auto& lane = out[static_cast<std::size_t>(d)];
      lanes[static_cast<std::size_t>(d)] = {lane.data(), lane.size() * sizeof(T)};
      if (d != id_ && !lane.empty()) {
        ++stats_->msgs_sent;
        stats_->bytes_sent += lane.size() * sizeof(T);
        note_lane_bytes(d, lane.size() * sizeof(T));
      }
    }
    std::vector<std::byte> bytes;
    world_->transport_->alltoallv(id_, lanes.data(), bytes);
    return from_bytes<T>(bytes);
  }

  // Two-sided send: `count` elements are delivered into dest's inbox
  // immediately (eager protocol); the receiver picks them up with drain<T>().
  template <class T>
  void send(int dest, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    PP_CHECK(dest >= 0 && dest < world_->nranks_);
    const std::size_t nbytes = count * sizeof(T);
    world_->transport_->send(id_, dest, data, nbytes);
    // Self-sends stay in memory; only network-crossing traffic is charged.
    if (dest != id_) {
      ++stats_->msgs_sent;
      stats_->bytes_sent += nbytes;
      note_lane_bytes(dest, nbytes);
    }
  }

  // Empties this rank's inbox, reinterpreting the accumulated bytes as T.
  // Callers are responsible (via barriers) for ensuring all in-flight sends
  // of this phase have landed and that one phase never mixes element types.
  template <class T>
  std::vector<T> drain() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes;
    world_->transport_->drain(id_, bytes);
    ++stats_->drains;
    stats_->bytes_drained += bytes.size();
    return from_bytes<T>(bytes);
  }

 private:
  // Backend-provided slot-fold reduction; only multi-rank worlds are
  // charged. Every backend folds contributions in rank order, so the result
  // is deterministic and identical across backends.
  template <class T>
  T allreduce(T v, bool take_min) {
    static_assert(std::is_floating_point_v<T>);
    const double acc =
        world_->transport_->allreduce(id_, static_cast<double>(v), take_min);
    if (world_->nranks_ > 1) {
      ++stats_->msgs_sent;
      stats_->bytes_sent += sizeof(T);
    }
    return static_cast<T>(acc);
  }

  SuperstepCursor& cursor() noexcept {
    return world_->ss_cursors_[static_cast<std::size_t>(id_)];
  }

  void note_lane_bytes(int dest, std::size_t nbytes) {
    if (world_->ss_cursors_ == nullptr) return;
    const int lane = dest < kSuperstepLanes ? dest : kSuperstepLanes - 1;
    cursor().lane_bytes[lane] += nbytes;
  }

  // Close the barrier-to-barrier interval ending now: one SuperstepRecord
  // carrying the counter deltas and per-destination bytes since the last
  // barrier (or rank entry). Past capacity the interval is dropped, but the
  // cursor still advances so later records stay correctly anchored.
  void close_superstep() {
    SuperstepCursor& cur = cursor();
    const std::uint64_t now = obs::now_ns();
    if (cur.count < world_->ss_capacity_) {
      SuperstepRecord& rec =
          world_->ss_records_[static_cast<std::size_t>(id_) *
                                  world_->ss_capacity_ +
                              cur.count];
      rec.t0_ns = cur.prev_t_ns;
      rec.t1_ns = now;
      rec.delta = rank_stats_delta(*stats_, cur.prev);
      for (int l = 0; l < kSuperstepLanes; ++l) {
        rec.lane_bytes[l] = cur.lane_bytes[l];
      }
      ++cur.count;
    } else {
      ++cur.dropped;
    }
    cur.prev = *stats_;
    cur.prev_t_ns = now;
    for (std::uint64_t& b : cur.lane_bytes) b = 0;
  }

  void count_op(bool remote, std::uint64_t& local, std::uint64_t& remote_ctr,
                RemoteOpClass cls) {
    if (remote) {
      ++remote_ctr;
      world_->transport_->charge_remote(cls);
    } else {
      ++local;
    }
  }

  template <class T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& bytes) {
    PP_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  World* world_;
  int id_;
  RankStats* stats_;
};

template <class F>
void World::run(F&& fn) {
  transport_->run([this, &fn](int r) {
    Rank rank(*this, r);
    fn(rank);
  });
}

// A one-sided window: element i lives on the rank that owns i under the same
// 1D block partition the kernels use. Storage comes from the World's shared
// arena so process-backed ranks address the same memory. Accesses go through
// a Rank handle so local and remote operations are attributed to the
// caller's counters; all element accesses are atomic, and accumulate/faa are
// atomic read-modify-write so concurrent remote updates from many ranks are
// safe. Float accumulates additionally run the transport's §4.1 lock
// protocol (a real striped lock on shm, a no-op on emu where the CAS loop
// already serializes threads).
template <class T>
class Window {
 public:
  Window(World& world, std::size_t n)
      : transport_(&world.transport()), data_(world.shared_array<T>(n)),
        part_(static_cast<vid_t>(n), world.nranks()) {}

  int owner(std::size_t i) const noexcept {
    return part_.owner(static_cast<vid_t>(i));
  }

  void put(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    rank.count_put(owner(i) != rank.id());
    atomic_store(data_[i], value);
  }

  T get(Rank& rank, std::size_t i) {
    PP_DCHECK(i < data_.size());
    rank.count_get(owner(i) != rank.id());
    return atomic_load(data_[i]);
  }

  // MPI_Accumulate(SUM): the lock-protocol op class the cost model charges
  // heavily (§4.1). A *remote* accumulate additionally runs the transport's
  // lock protocol — remote lock, read-modify-write, unlock — which is a real
  // process-shared lock on shm and a no-op on emu; local accumulates and the
  // underlying atomicity (CAS loop for floats, atomic add for integers) are
  // backend-independent. Mirrors the counter convention: only operations
  // that would cross the network pay the op-class cost.
  void accumulate(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    const bool remote = owner(i) != rank.id();
    rank.count_acc(remote);
    if (remote) transport_->rmw_lock(i);
    if constexpr (std::is_floating_point_v<T>) {
      atomic_add(data_[i], value);
    } else {
      pushpull::faa(data_[i], value);
    }
    if (remote) transport_->rmw_unlock(i);
  }

  // MPI_Accumulate(MIN): the traversal kernels' one-sided claim/relax
  // primitive (BFS level claims, SSSP distance relaxations). Like the SUM
  // accumulate above, this is the lock-protocol op class (§4.1) — MIN is not
  // a NIC fast-path op — so it is counted through the acc counters and runs
  // the remote lock protocol for every element type.
  void accumulate_min(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    const bool remote = owner(i) != rank.id();
    rank.count_acc(remote);
    if (remote) transport_->rmw_lock(i);
    pushpull::atomic_min(data_[i], value);
    if (remote) transport_->rmw_unlock(i);
  }

  // Integer fetch-and-add (MPI_Fetch_and_op): the hardware fast path.
  T faa(Rank& rank, std::size_t i, T value)
    requires std::is_integral_v<T>
  {
    PP_DCHECK(i < data_.size());
    rank.count_faa(owner(i) != rank.id());
    return pushpull::faa(data_[i], value);
  }

  std::span<T> raw() noexcept { return data_; }
  std::span<const T> raw() const noexcept { return data_; }
  const Partition1D& partition() const noexcept { return part_; }

 private:
  Transport* transport_;
  std::span<T> data_;
  Partition1D part_;
};

}  // namespace pushpull::dist
