// In-process emulation of an MPI-like distributed-memory runtime (§3.8, §6).
//
// The paper's distributed experiments compare three communication styles on
// top of a 1D vertex partition: one-sided *pushing* (MPI_Accumulate / FAA),
// one-sided *pulling* (MPI_Get), and two-sided *message passing* with
// per-destination combining. This module reproduces those tradeoffs on a
// single machine (DESIGN.md §3): every rank is a plain std::thread, windows
// are shared arrays with atomic element access, and each rank's communication
// is *counted* per operation. Reported "communication time" is the CommCosts
// model applied to those counters, not wall time — the container has 1-2
// cores, so wall time of oversubscribed threads would measure the scheduler,
// not the algorithm.
//
// The cost model encodes the paper's central asymmetry: a floating-point
// MPI_Accumulate runs a lock-protocol (remote lock, get, add, put, unlock —
// §4.1), while an integer fetch-and-add maps to the NIC/hardware fast path
// (§4.2); messages pay a fixed injection/matching overhead plus bandwidth.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "graph/partition.hpp"
#include "sync/atomics.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

// Which communication style a distributed kernel uses (§3.8).
enum class DistVariant {
  PushRma,     // one-sided writes into remote windows (accumulate / FAA)
  PullRma,     // one-sided reads of remote windows (get)
  MsgPassing,  // two-sided, contributions combined per destination rank
};

inline const char* to_string(DistVariant v) {
  switch (v) {
    case DistVariant::PushRma: return "push-rma";
    case DistVariant::PullRma: return "pull-rma";
    case DistVariant::MsgPassing: return "msg-passing";
  }
  return "unknown";
}

// Per-operation costs in microseconds. Calibrated to the relative magnitudes
// the paper reports for a Cray Aries interconnect (§6): the float-accumulate
// lock protocol is an order of magnitude above the integer FAA fast path, and
// a matched two-sided message costs far more than any single RMA op.
struct CommCosts {
  double us_per_msg = 10.0;    // two-sided injection + matching overhead
  double us_per_byte = 0.005;  // ~200 MB/s effective payload bandwidth
  double us_per_put = 0.5;     // MPI_Put
  double us_per_get = 0.8;     // MPI_Get round trip
  double us_per_acc = 3.0;     // MPI_Accumulate on floats: lock protocol (§4.1)
  double us_per_faa = 0.3;     // integer fetch-and-add fast path (§4.2)
  double us_per_barrier = 5.0; // dissemination barrier
};

// Communication counters for one rank. Local window accesses are tracked
// separately from remote ones and carry no modeled cost: only operations that
// would cross the network are charged.
struct RankStats {
  std::uint64_t barriers = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t rma_puts = 0;
  std::uint64_t rma_gets = 0;
  std::uint64_t rma_accs = 0;
  std::uint64_t rma_faas = 0;
  std::uint64_t local_puts = 0;
  std::uint64_t local_gets = 0;
  std::uint64_t local_accs = 0;
  std::uint64_t local_faas = 0;
  // Compute proxy filled by the distributed kernels: edges (PR) or neighbor
  // pairs (TC) processed by this rank.
  std::uint64_t edge_ops = 0;

  double modeled_comm_us(const CommCosts& c) const {
    return static_cast<double>(msgs_sent) * c.us_per_msg +
           static_cast<double>(bytes_sent) * c.us_per_byte +
           static_cast<double>(rma_puts) * c.us_per_put +
           static_cast<double>(rma_gets) * c.us_per_get +
           static_cast<double>(rma_accs) * c.us_per_acc +
           static_cast<double>(rma_faas) * c.us_per_faa +
           static_cast<double>(barriers) * c.us_per_barrier;
  }

  RankStats& operator+=(const RankStats& o) {
    barriers += o.barriers;
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    rma_puts += o.rma_puts;
    rma_gets += o.rma_gets;
    rma_accs += o.rma_accs;
    rma_faas += o.rma_faas;
    local_puts += o.local_puts;
    local_gets += o.local_gets;
    local_accs += o.local_accs;
    local_faas += o.local_faas;
    edge_ops += o.edge_ops;
    return *this;
  }
};

class Rank;

// Spawns one thread per rank and hands each a Rank handle. The container is
// heavily oversubscribed (more ranks than cores), so the internal barrier
// sleeps on a condition variable instead of spinning.
class World {
 public:
  explicit World(int nranks) : nranks_(nranks), stats_(static_cast<std::size_t>(nranks)) {
    PP_CHECK(nranks >= 1);
    inboxes_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) inboxes_.push_back(std::make_unique<Inbox>());
    red_slots_.resize(static_cast<std::size_t>(nranks), 0.0);
    a2a_slots_.resize(static_cast<std::size_t>(nranks), nullptr);
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int nranks() const noexcept { return nranks_; }

  // SPMD entry point: fn(Rank&) runs once on every rank, concurrently.
  template <class F>
  void run(F&& fn);

  const RankStats& stats(int r) const {
    PP_CHECK(r >= 0 && r < nranks_);
    return stats_[static_cast<std::size_t>(r)];
  }

  RankStats total_stats() const {
    RankStats t;
    for (const RankStats& s : stats_) t += s;
    return t;
  }

  double max_modeled_comm_us(const CommCosts& c) const {
    double m = 0.0;
    for (const RankStats& s : stats_) m = std::max(m, s.modeled_comm_us(c));
    return m;
  }

  std::uint64_t max_edge_ops() const {
    std::uint64_t m = 0;
    for (const RankStats& s : stats_) m = std::max(m, s.edge_ops);
    return m;
  }

 private:
  friend class Rank;

  struct Inbox {
    std::mutex mu;
    std::vector<std::byte> bytes;
  };

  // Internal barrier used both by Rank::barrier() (counted) and by the
  // collectives (uncounted: their cost is modeled through msgs/bytes).
  void barrier_wait() {
    std::unique_lock<std::mutex> lk(bar_mu_);
    const std::uint64_t phase = bar_phase_;
    if (++bar_arrived_ == nranks_) {
      bar_arrived_ = 0;
      ++bar_phase_;
      bar_cv_.notify_all();
    } else {
      bar_cv_.wait(lk, [&] { return bar_phase_ != phase; });
    }
  }

  int nranks_;
  std::vector<RankStats> stats_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_arrived_ = 0;
  std::uint64_t bar_phase_ = 0;

  // Scratch for allreduce / alltoallv; protected by the barrier protocol.
  std::vector<double> red_slots_;
  std::vector<const void*> a2a_slots_;
};

// A rank's handle to the world: identity, synchronization, collectives, and
// two-sided messaging. All methods are called from the rank's own thread.
class Rank {
 public:
  Rank(World& world, int id)
      : world_(&world), id_(id), stats_(&world.stats_[static_cast<std::size_t>(id)]) {}

  int id() const noexcept { return id_; }
  int nranks() const noexcept { return world_->nranks_; }
  RankStats& stats() noexcept { return *stats_; }

  void barrier() {
    ++stats_->barriers;
    world_->barrier_wait();
  }

  // Sum-allreduce over all ranks. Modeled as one message per rank (the
  // reduction tree's injection); free when the world has a single rank.
  // Restricted to floating-point: the reduction scratch is double, which
  // would silently round integer contributions above 2^53.
  template <class T>
  T allreduce_sum(T v) {
    return allreduce<T>(v, [](double a, double b) { return a + b; });
  }

  // Min-allreduce over all ranks; same cost model. Used by the distributed
  // Δ-stepping kernel to agree on the next non-empty bucket.
  template <class T>
  T allreduce_min(T v) {
    return allreduce<T>(v, [](double a, double b) { return std::min(a, b); });
  }

  // Personalized all-to-all: out[d] is this rank's payload for destination d.
  // Returns the concatenation of every source's payload for this rank. Only
  // non-empty lanes to *other* ranks count as sent messages.
  template <class T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    PP_CHECK(static_cast<int>(out.size()) == world_->nranks_);
    for (int d = 0; d < world_->nranks_; ++d) {
      const auto& lane = out[static_cast<std::size_t>(d)];
      if (d != id_ && !lane.empty()) {
        ++stats_->msgs_sent;
        stats_->bytes_sent += lane.size() * sizeof(T);
      }
    }
    world_->a2a_slots_[static_cast<std::size_t>(id_)] = &out;
    world_->barrier_wait();
    std::vector<T> in;
    for (int s = 0; s < world_->nranks_; ++s) {
      const auto* src = static_cast<const std::vector<std::vector<T>>*>(
          world_->a2a_slots_[static_cast<std::size_t>(s)]);
      const auto& lane = (*src)[static_cast<std::size_t>(id_)];
      in.insert(in.end(), lane.begin(), lane.end());
    }
    world_->barrier_wait();  // every rank done reading before `out` buffers die
    return in;
  }

  // Two-sided send: `count` elements are delivered into dest's inbox
  // immediately (eager protocol); the receiver picks them up with drain<T>().
  template <class T>
  void send(int dest, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    PP_CHECK(dest >= 0 && dest < world_->nranks_);
    const std::size_t nbytes = count * sizeof(T);
    auto& inbox = *world_->inboxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lk(inbox.mu);
      const std::size_t off = inbox.bytes.size();
      inbox.bytes.resize(off + nbytes);
      std::memcpy(inbox.bytes.data() + off, data, nbytes);
    }
    // Self-sends stay in memory; only network-crossing traffic is charged.
    if (dest != id_) {
      ++stats_->msgs_sent;
      stats_->bytes_sent += nbytes;
    }
  }

  // Empties this rank's inbox, reinterpreting the accumulated bytes as T.
  // Callers are responsible (via barriers) for ensuring all in-flight sends
  // of this phase have landed and that one phase never mixes element types.
  template <class T>
  std::vector<T> drain() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto& inbox = *world_->inboxes_[static_cast<std::size_t>(id_)];
    std::lock_guard<std::mutex> lk(inbox.mu);
    PP_CHECK(inbox.bytes.size() % sizeof(T) == 0);
    std::vector<T> out(inbox.bytes.size() / sizeof(T));
    std::memcpy(out.data(), inbox.bytes.data(), inbox.bytes.size());
    inbox.bytes.clear();
    return out;
  }

 private:
  // Shared slot-write / barrier / fold / barrier protocol of the allreduce
  // collectives. The trailing barrier keeps the slots alive until every rank
  // has read them; only multi-rank worlds are charged.
  template <class T, class Fold>
  T allreduce(T v, Fold&& fold) {
    static_assert(std::is_floating_point_v<T>);
    world_->red_slots_[static_cast<std::size_t>(id_)] = static_cast<double>(v);
    world_->barrier_wait();
    double acc = world_->red_slots_.front();
    for (std::size_t r = 1; r < world_->red_slots_.size(); ++r) {
      acc = fold(acc, world_->red_slots_[r]);
    }
    world_->barrier_wait();
    if (world_->nranks_ > 1) {
      ++stats_->msgs_sent;
      stats_->bytes_sent += sizeof(T);
    }
    return static_cast<T>(acc);
  }

  World* world_;
  int id_;
  RankStats* stats_;
};

template <class F>
void World::run(F&& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn] {
      Rank rank(*this, r);
      fn(rank);
    });
  }
  for (std::thread& t : threads) t.join();
}

// A one-sided window: element i lives on the rank that owns i under the same
// 1D block partition the kernels use. Accesses go through a Rank handle so
// local and remote operations are attributed to the caller's counters; all
// element accesses are atomic, and accumulate/faa are atomic read-modify-write
// so concurrent remote updates from many ranks are safe.
template <class T>
class Window {
 public:
  Window(std::size_t n, int nranks)
      : data_(n, T{}), part_(static_cast<vid_t>(n), nranks) {
    PP_CHECK(nranks >= 1);
  }

  int owner(std::size_t i) const noexcept {
    return part_.owner(static_cast<vid_t>(i));
  }

  void put(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    count(rank, i, rank.stats().local_puts, rank.stats().rma_puts);
    atomic_store(data_[i], value);
  }

  T get(Rank& rank, std::size_t i) {
    PP_DCHECK(i < data_.size());
    count(rank, i, rank.stats().local_gets, rank.stats().rma_gets);
    return atomic_load(data_[i]);
  }

  // MPI_Accumulate(SUM). For floating-point T this is the CAS-loop lock
  // protocol the cost model charges heavily; for integers it is a plain
  // atomic add.
  void accumulate(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    count(rank, i, rank.stats().local_accs, rank.stats().rma_accs);
    if constexpr (std::is_floating_point_v<T>) {
      atomic_add(data_[i], value);
    } else {
      pushpull::faa(data_[i], value);
    }
  }

  // MPI_Accumulate(MIN): the traversal kernels' one-sided claim/relax
  // primitive (BFS level claims, SSSP distance relaxations). Like the SUM
  // accumulate above, this is the lock-protocol op class (§4.1) — MIN is not
  // a NIC fast-path op — so it is counted through the acc counters for every
  // element type.
  void accumulate_min(Rank& rank, std::size_t i, T value) {
    PP_DCHECK(i < data_.size());
    count(rank, i, rank.stats().local_accs, rank.stats().rma_accs);
    pushpull::atomic_min(data_[i], value);
  }

  // Integer fetch-and-add (MPI_Fetch_and_op): the hardware fast path.
  T faa(Rank& rank, std::size_t i, T value)
    requires std::is_integral_v<T>
  {
    PP_DCHECK(i < data_.size());
    count(rank, i, rank.stats().local_faas, rank.stats().rma_faas);
    return pushpull::faa(data_[i], value);
  }

  std::vector<T>& raw() noexcept { return data_; }
  const std::vector<T>& raw() const noexcept { return data_; }
  const Partition1D& partition() const noexcept { return part_; }

 private:
  void count(Rank& rank, std::size_t i, std::uint64_t& local, std::uint64_t& remote) const {
    (owner(i) == rank.id() ? local : remote) += 1;
  }

  std::vector<T> data_;
  Partition1D part_;
};

}  // namespace pushpull::dist
