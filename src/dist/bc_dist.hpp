// Distributed-memory Betweenness Centrality over the emulated runtime
// (§3.8, §4.5, Figure 3) — rank-parallel Brandes.
//
// Per source: a level-synchronous forward BFS computes shortest-path counts
// σ (frontier managed by DistFrontier), then a backward sweep over the
// recorded levels accumulates dependencies δ. Both phases exist in all three
// communication styles, and the paper's §4.5 asymmetry is visible in the
// counters: the forward push accumulates *integer* σ with the FAA fast path,
// while the backward push accumulates *float* dependency shares through the
// lock-protocol accumulate.
//
//   Pushing-RMA  — forward: frontier edges FAA σ contributions into a
//                  staging window; owners claim any vertex with a non-zero
//                  stage (so no separate claim op is needed). backward:
//                  deeper-level vertices blindly accumulate their coefficient
//                  (1+δ_w)/σ_w into every in-neighbor's staging slot (float
//                  acc); owners apply σ_v · stage to exactly the vertices one
//                  level up.
//   Pulling-RMA  — forward: unvisited owned vertices read remote (level, σ)
//                  pairs; backward: level-l vertices read remote (level,
//                  coefficient) pairs. Counted gets, owner-local writes.
//   Msg-Passing  — both phases combine contributions per destination vertex
//                  (sum) and exchange one alltoallv lane per destination
//                  rank.
//
// With `direction_optimizing` set, the forward phase flips per superstep
// between the variant's own sparse expansion and the pulling (bottom-up)
// expansion, driven by DistFrontier's allreduced frontier size and
// out-degree mass — the Beamer switch on Brandes' σ-counting BFS. σ values
// are exact integer sums, so they are invariant under the switch. The
// backward sweep keeps the variant's own communication style.
//
// Results match the shared-memory betweenness_centrality to 1e-9 (float
// accumulation order differs across rank counts). Sources semantics mirror
// core/bc.hpp: empty = all vertices, and the final halving applies exactly
// when all vertices are sources (undirected double-counting).
//
// For directed graphs pass the transposed in-CSR as `in` (forward pull and
// the backward push/combine walk in-neighbors); default `in = &g` is correct
// for symmetric graphs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/frontier_dist.hpp"
#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

struct BcDistOptions {
  DistVariant variant = DistVariant::MsgPassing;
  BackendKind backend = BackendKind::Emu;
  // Sources to process; empty = all vertices (exact BC, halved like core).
  std::vector<vid_t> sources;
  // Forward-phase sparse/dense switching (meaningful for PushRma and
  // MsgPassing; PullRma's forward phase is always dense).
  bool direction_optimizing = false;
  DistFrontier::Heuristic heuristic{};
  CommCosts costs{};
};

struct BcDistResult {
  std::vector<double> bc;
  int dense_rounds = 0;   // forward supersteps expanded bottom-up (pull)
  int sparse_rounds = 0;  // forward supersteps expanded in the variant's style
  RankStats total;
  double max_comm_us = 0.0;
  double max_rank_wall_us = 0.0;
  std::uint64_t max_rank_edge_ops = 0;
};

inline BcDistResult betweenness_centrality_dist(const Csr& g, int nranks,
                                                const BcDistOptions& opt = {},
                                                const Csr* in = nullptr) {
  const Csr& gin = in ? *in : g;
  const vid_t n = g.n();
  PP_CHECK(nranks >= 1);
  BcDistResult res;
  res.bc.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return res;
  PP_CHECK(gin.n() == n);

  std::vector<vid_t> sources = opt.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }

  World world(nranks, opt.backend);
  const Partition1D part(n, nranks);
  DistFrontier frontier(world, g, part, opt.heuristic);
  Window<vid_t> lvl(world, static_cast<std::size_t>(n));      // BFS level
  Window<std::int64_t> sigma(world, static_cast<std::size_t>(n));
  Window<std::int64_t> sigma_next(world, static_cast<std::size_t>(n));
  Window<double> coef(world, static_cast<std::size_t>(n));    // (1+δ)/σ
  Window<double> dep(world, static_cast<std::size_t>(n));     // backward stage
  std::vector<double> delta(static_cast<std::size_t>(n), 0.0);  // owner-local
  // Owner-published result slice and rank-0 forward round counters
  // (dense, sparse); shared so process-backed ranks reach the parent.
  const std::span<double> bc_out =
      world.shared_array<double>(static_cast<std::size_t>(n));
  const std::span<std::int32_t> rounds_out = world.shared_array<std::int32_t>(2);

  world.run([&](Rank& rank) {
    const int me = rank.id();
    const vid_t vbeg = part.begin(me);
    const vid_t vend = part.end(me);
    const std::span<vid_t> L = lvl.raw();
    const std::span<std::int64_t> S = sigma.raw();
    const std::span<std::int64_t> SN = sigma_next.raw();
    const std::span<double> C = coef.raw();
    const std::span<double> D = dep.raw();
    CombiningBuffers<std::int64_t> fwd_lanes(part, nranks);  // σ contributions
    CombiningBuffers<double> bwd_lanes(part, nranks);        // δ coefficients
    std::vector<std::vector<vid_t>> levels;  // owned frontier per level
    const auto sum_i64 = [](std::int64_t& a, std::int64_t b) { a += b; };
    const auto sum_f64 = [](double& a, double b) { a += b; };

    for (vid_t s : sources) {
      PP_CHECK(s >= 0 && s < n);
      // All remote reads of the previous source's state are done before any
      // owner resets its slice.
      rank.barrier();
      for (vid_t v = vbeg; v < vend; ++v) {
        const auto i = static_cast<std::size_t>(v);
        L[i] = -1;
        S[i] = 0;
        SN[i] = 0;
        C[i] = 0.0;
        D[i] = 0.0;
        delta[i] = 0.0;
      }
      const bool own_src = part.owner(s) == me;
      if (own_src) {
        L[static_cast<std::size_t>(s)] = 0;
        S[static_cast<std::size_t>(s)] = 1;
      }
      levels.clear();
      frontier.advance(rank, own_src ? std::vector<vid_t>{s}
                                     : std::vector<vid_t>{});

      // ----- Forward phase: level-synchronous σ-counting BFS ---------------
      vid_t level = 0;
      while (!frontier.globally_empty(rank)) {
        levels.push_back(frontier.owned(rank));
        ++level;
        const bool dense =
            opt.variant == DistVariant::PullRma ||
            (opt.direction_optimizing &&
             frontier.mode(rank) == FrontierMode::Dense);
        if (me == 0) ++rounds_out[dense ? 0 : 1];
        std::vector<vid_t> next;
        // Claims any owned vertex whose σ stage is non-zero: contributions
        // only ever target the next level, so a non-zero stage on an
        // unvisited vertex *is* the claim, and stages on visited vertices
        // are stale and discarded.
        const auto finalize = [&] {
          for (vid_t v = vbeg; v < vend; ++v) {
            const auto i = static_cast<std::size_t>(v);
            if (SN[i] == 0) continue;
            if (L[i] == -1) {
              L[i] = level;
              S[i] = SN[i];
              next.push_back(v);
            }
            SN[i] = 0;
          }
        };

        if (dense) {
          // Bottom-up: unvisited owned vertices pull (level, σ) pairs from
          // their in-neighbors; writes stay owner-local.
          for (vid_t v = vbeg; v < vend; ++v) {
            if (L[static_cast<std::size_t>(v)] != -1) continue;
            std::int64_t paths = 0;
            for (vid_t u : gin.neighbors(v)) {
              ++rank.stats().edge_ops;
              if (lvl.get(rank, static_cast<std::size_t>(u)) == level - 1) {
                paths += sigma.get(rank, static_cast<std::size_t>(u));
              }
            }
            if (paths > 0) {
              // Atomic (counted local) puts: other ranks concurrently probe
              // these slots with one-sided gets.
              lvl.put(rank, static_cast<std::size_t>(v), level);
              sigma.put(rank, static_cast<std::size_t>(v), paths);
              next.push_back(v);
            }
          }
        } else if (opt.variant == DistVariant::PushRma) {
          for (vid_t v : frontier.owned(rank)) {
            const std::int64_t sv = S[static_cast<std::size_t>(v)];
            for (vid_t u : g.neighbors(v)) {
              ++rank.stats().edge_ops;
              sigma_next.faa(rank, static_cast<std::size_t>(u), sv);
            }
          }
          rank.barrier();  // all σ FAAs landed
          finalize();
        } else {  // MsgPassing sparse round
          for (vid_t v : frontier.owned(rank)) {
            const std::int64_t sv = S[static_cast<std::size_t>(v)];
            for (vid_t u : g.neighbors(v)) {
              ++rank.stats().edge_ops;
              if (part.owner(u) == me) {
                SN[static_cast<std::size_t>(u)] += sv;
              } else {
                fwd_lanes.stage(u, sv, sum_i64);
              }
            }
          }
          for (const auto& e : fwd_lanes.exchange(rank)) {
            SN[static_cast<std::size_t>(e.v)] += e.val;
          }
          finalize();
        }
        frontier.advance(rank, std::move(next));
      }

      // ----- Backward phase: dependency accumulation over the levels -------
      for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
        const auto& here = levels[static_cast<std::size_t>(l)];
        const auto& deeper = levels[static_cast<std::size_t>(l) + 1];
        // Publish the deeper level's coefficients and zero the staging slice
        // before any rank starts pushing into it.
        for (vid_t w : deeper) {
          const auto i = static_cast<std::size_t>(w);
          C[i] = (1.0 + delta[i]) / static_cast<double>(S[i]);
        }
        if (opt.variant != DistVariant::PullRma) {
          for (vid_t v : here) D[static_cast<std::size_t>(v)] = 0.0;
        }
        rank.barrier();

        switch (opt.variant) {
          case DistVariant::PushRma: {
            for (vid_t w : deeper) {
              const double cw = C[static_cast<std::size_t>(w)];
              for (vid_t v : gin.neighbors(w)) {
                ++rank.stats().edge_ops;
                // Blind float accumulate (§4.1 lock protocol): the pusher
                // cannot test the target's level remotely; owners discard
                // stages outside level l.
                dep.accumulate(rank, static_cast<std::size_t>(v), cw);
              }
            }
            rank.barrier();  // all dependency shares landed
            for (vid_t v : here) {
              const auto i = static_cast<std::size_t>(v);
              delta[i] += static_cast<double>(S[i]) * D[i];
            }
            break;
          }
          case DistVariant::PullRma: {
            for (vid_t v : here) {
              const auto i = static_cast<std::size_t>(v);
              double acc = 0.0;
              for (vid_t w : g.neighbors(v)) {
                ++rank.stats().edge_ops;
                if (lvl.get(rank, static_cast<std::size_t>(w)) == l + 1) {
                  acc += coef.get(rank, static_cast<std::size_t>(w));
                }
              }
              delta[i] += static_cast<double>(S[i]) * acc;
            }
            break;
          }
          case DistVariant::MsgPassing: {
            for (vid_t w : deeper) {
              const double cw = C[static_cast<std::size_t>(w)];
              for (vid_t v : gin.neighbors(w)) {
                ++rank.stats().edge_ops;
                if (part.owner(v) == me) {
                  D[static_cast<std::size_t>(v)] += cw;
                } else {
                  bwd_lanes.stage(v, cw, sum_f64);
                }
              }
            }
            for (const auto& e : bwd_lanes.exchange(rank)) {
              D[static_cast<std::size_t>(e.v)] += e.val;
            }
            for (vid_t v : here) {
              const auto i = static_cast<std::size_t>(v);
              delta[i] += static_cast<double>(S[i]) * D[i];
            }
            break;
          }
        }
      }

      for (vid_t v = vbeg; v < vend; ++v) {
        if (v != s) bc_out[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
      }
    }

    // Undirected all-sources BC counts each (s, t) pair twice (core/bc.hpp
    // convention, mirrored exactly).
    if (sources.size() == static_cast<std::size_t>(n)) {
      for (vid_t v = vbeg; v < vend; ++v) bc_out[static_cast<std::size_t>(v)] /= 2.0;
    }
  });

  res.bc.assign(bc_out.begin(), bc_out.end());
  res.dense_rounds = rounds_out[0];
  res.sparse_rounds = rounds_out[1];
  res.total = world.total_stats();
  res.max_comm_us = world.max_modeled_comm_us(opt.costs);
  res.max_rank_edge_ops = world.max_edge_ops();
  res.max_rank_wall_us = world.max_rank_wall_us();
  return res;
}

}  // namespace pushpull::dist
