// Distributed-memory Δ-stepping SSSP over the dist runtime (§3.8, §4.4,
// Figure 3).
//
// Vertices are 1D block-partitioned; tentative distances live in a one-sided
// float window. Buckets of width Δ are processed in order, globally agreed on
// with an allreduce-min; within a bucket, relaxation rounds repeat until the
// allreduced active-set size (tracked by DistFrontier) reaches zero. Bucket
// arithmetic is the shared-memory `bucket_of` — the dist and core kernels
// compute the identical fixpoint, so distances match exactly.
//
//   Pushing-RMA  — each active vertex relaxes its out-edges with a blind
//                  MPI_Accumulate(MIN) per edge (float min = lock protocol,
//                  §4.1); owners detect improvements by rescanning their
//                  slice against a shadow copy.
//   Pulling-RMA  — each unsettled owned vertex scans its in-neighbors,
//                  paying one counted get per edge for the remote distance,
//                  and relaxes itself (owner-local writes only).
//   Msg-Passing  — relaxations of remote targets are combined per
//                  destination vertex (keeping only the minimum candidate)
//                  and exchanged as one alltoallv lane per destination rank.
//
// With `direction_optimizing` set, sparse rounds use the variant's own
// relaxation and dense rounds switch to the pulling expansion (every
// unsettled owned vertex rescans its in-neighbors in bucket b) — the Beamer
// switch driven by DistFrontier's allreduced active-set size and out-degree
// mass, now at bucket-relaxation granularity. The pull round relaxes from
// *all* bucket-b vertices, a superset of the active set, so the extra
// relaxations are no-ops and the fixpoint (and the final distances) are
// invariant under the switch. PullRma runs every round dense regardless.
//
// For directed graphs pass the transposed in-CSR (with weights) as `in`;
// by default `in = &g`, correct for symmetric graphs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/sssp_delta.hpp"
#include "dist/frontier_dist.hpp"
#include "dist/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace pushpull::dist {

struct SsspDistOptions {
  DistVariant variant = DistVariant::MsgPassing;
  BackendKind backend = BackendKind::Emu;
  weight_t delta = 4.0f;  // bucket width Δ
  // Per-round sparse/dense switching (meaningful for PushRma and MsgPassing;
  // PullRma is always dense).
  bool direction_optimizing = false;
  DistFrontier::Heuristic heuristic{};
  CommCosts costs{};
};

struct SsspDistResult {
  std::vector<weight_t> dist;  // +inf = unreachable
  int epochs = 0;              // processed buckets
  int inner_iterations = 0;    // global relaxation rounds
  int dense_rounds = 0;        // rounds relaxed in the pulling direction
  int sparse_rounds = 0;       // rounds relaxed in the variant's own direction
  RankStats total;
  double max_comm_us = 0.0;
  double max_rank_wall_us = 0.0;
  std::uint64_t max_rank_edge_ops = 0;
};

inline SsspDistResult sssp_dist(const Csr& g, vid_t src, int nranks,
                                const SsspDistOptions& opt = {},
                                const Csr* in = nullptr) {
  const Csr& gin = in ? *in : g;
  const vid_t n = g.n();
  PP_CHECK(n > 0 && nranks >= 1);
  PP_CHECK(src >= 0 && src < n);
  PP_CHECK(g.has_weights() && gin.has_weights());
  PP_CHECK(opt.delta > 0);
  PP_CHECK(gin.n() == n);

  World world(nranks, opt.backend);
  const Partition1D part(n, nranks);
  DistFrontier frontier(world, g, part, opt.heuristic);  // active-set bookkeeping
  Window<weight_t> dwin(world, static_cast<std::size_t>(n));
  std::fill(dwin.raw().begin(), dwin.raw().end(), kInfWeight);
  dwin.raw()[static_cast<std::size_t>(src)] = 0.0f;

  // Rank-0 round bookkeeping, shared so process-backed ranks reach the
  // controlling process: epochs, inner rounds, dense/sparse round counts.
  const std::span<std::int32_t> meta_out = world.shared_array<std::int32_t>(4);

  constexpr double kNoBucket = std::numeric_limits<double>::infinity();

  world.run([&](Rank& rank) {
    const int me = rank.id();
    const vid_t vbeg = part.begin(me);
    const vid_t vend = part.end(me);
    const std::span<weight_t> d = dwin.raw();
    CombiningBuffers<weight_t> lanes(part, nranks);  // payload: candidate dist
    std::vector<weight_t> shadow(static_cast<std::size_t>(vend - vbeg));
    const auto relax_min = [](weight_t& a, weight_t b) { a = std::min(a, b); };

    std::int64_t b = 0;  // bucket 0 is globally non-empty: it holds src
    while (true) {
      // Epoch init: owned vertices currently in bucket b are active.
      std::vector<vid_t> active;
      for (vid_t v = vbeg; v < vend; ++v) {
        if (bucket_of(d[static_cast<std::size_t>(v)], opt.delta) == b) {
          active.push_back(v);
        }
      }
      frontier.advance(rank, std::move(active));
      if (me == 0) ++meta_out[0];

      while (!frontier.globally_empty(rank)) {
        const bool dense =
            opt.variant == DistVariant::PullRma ||
            (opt.direction_optimizing &&
             frontier.mode(rank) == FrontierMode::Dense);
        if (me == 0) {
          ++meta_out[1];
          ++meta_out[dense ? 2 : 3];
        }
        std::vector<vid_t> next_active;

        if (dense) {
          // Pulling round: every unsettled owned vertex rescans its
          // in-neighbors for bucket-b sources and relaxes itself.
          for (vid_t v = vbeg; v < vend; ++v) {
            const weight_t dv = d[static_cast<std::size_t>(v)];
            if (bucket_of(dv, opt.delta) < b) continue;  // settled
            weight_t best = dv;
            const auto nb = gin.neighbors(v);
            const auto wgt = gin.weights(v);
            for (std::size_t i = 0; i < nb.size(); ++i) {
              ++rank.stats().edge_ops;
              const weight_t du =
                  dwin.get(rank, static_cast<std::size_t>(nb[i]));
              if (bucket_of(du, opt.delta) != b) continue;
              best = std::min(best, du + wgt[i]);
            }
            if (best < dv) {
              dwin.put(rank, static_cast<std::size_t>(v), best);
              if (bucket_of(best, opt.delta) == b) next_active.push_back(v);
            }
          }
        } else if (opt.variant == DistVariant::PushRma) {
          for (vid_t v = vbeg; v < vend; ++v) {
            shadow[static_cast<std::size_t>(v - vbeg)] =
                d[static_cast<std::size_t>(v)];
          }
          // Fence (MPI_Win_fence semantics): every rank's shadow snapshot
          // is taken before any accumulate lands, or an early remote
          // relaxation could hide inside the snapshot and never activate
          // its target.
          rank.barrier();
          for (vid_t v : frontier.owned(rank)) {
            // Atomic read: this rank's own vertices are themselves targets
            // of concurrent remote accumulates.
            const weight_t dv = atomic_load(d[static_cast<std::size_t>(v)]);
            const auto nb = g.neighbors(v);
            const auto wgt = g.weights(v);
            for (std::size_t i = 0; i < nb.size(); ++i) {
              ++rank.stats().edge_ops;
              dwin.accumulate_min(rank, static_cast<std::size_t>(nb[i]),
                                  dv + wgt[i]);
            }
          }
          rank.barrier();  // all remote relaxations landed
          for (vid_t v = vbeg; v < vend; ++v) {
            const weight_t dv = d[static_cast<std::size_t>(v)];
            if (dv < shadow[static_cast<std::size_t>(v - vbeg)] &&
                bucket_of(dv, opt.delta) == b) {
              next_active.push_back(v);
            }
          }
        } else {  // MsgPassing sparse round
          for (vid_t v : frontier.owned(rank)) {
            const weight_t dv = d[static_cast<std::size_t>(v)];
            const auto nb = g.neighbors(v);
            const auto wgt = g.weights(v);
            for (std::size_t i = 0; i < nb.size(); ++i) {
              ++rank.stats().edge_ops;
              const vid_t u = nb[i];
              const weight_t nd = dv + wgt[i];
              if (part.owner(u) == me) {
                weight_t& du = d[static_cast<std::size_t>(u)];
                if (nd < du) {
                  du = nd;
                  if (bucket_of(nd, opt.delta) == b) next_active.push_back(u);
                }
              } else {
                lanes.stage(u, nd, relax_min);
              }
            }
          }
          for (const auto& e : lanes.exchange(rank)) {
            weight_t& du = d[static_cast<std::size_t>(e.v)];
            if (e.val < du) {
              du = e.val;
              if (bucket_of(e.val, opt.delta) == b) next_active.push_back(e.v);
            }
          }
        }
        frontier.advance(rank, std::move(next_active));
      }

      // Globally agree on the next non-empty bucket.
      double local_next = kNoBucket;
      for (vid_t v = vbeg; v < vend; ++v) {
        const weight_t dv = d[static_cast<std::size_t>(v)];
        if (dv == kInfWeight) continue;
        const std::int64_t bv = bucket_of(dv, opt.delta);
        if (bv > b) local_next = std::min(local_next, static_cast<double>(bv));
      }
      const double gnext = rank.allreduce_min(local_next);
      if (gnext == kNoBucket) break;
      b = static_cast<std::int64_t>(gnext);
    }
  });

  SsspDistResult res;
  const std::span<const weight_t> final_d = dwin.raw();
  res.dist.assign(final_d.begin(), final_d.end());
  res.epochs = meta_out[0];
  res.inner_iterations = meta_out[1];
  res.dense_rounds = meta_out[2];
  res.sparse_rounds = meta_out[3];
  res.total = world.total_stats();
  res.max_comm_us = world.max_modeled_comm_us(opt.costs);
  res.max_rank_edge_ops = world.max_edge_ops();
  res.max_rank_wall_us = world.max_rank_wall_us();
  return res;
}

}  // namespace pushpull::dist
