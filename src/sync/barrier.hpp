// Sense-reversing spin barrier.
//
// Used by the distributed-memory emulation (src/dist) where ranks are plain
// std::threads outside any OpenMP region, and by the Partition-Awareness
// strategy (§5) which needs a lightweight barrier between the local-update and
// remote-update phases.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/check.hpp"

namespace pushpull {

class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) : participants_(participants) {
    PP_CHECK(participants > 0);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const std::uint64_t phase = phase_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  int participants() const noexcept { return participants_; }

 private:
  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace pushpull
