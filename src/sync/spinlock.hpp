// Test-and-test-and-set spinlock.
//
// The paper resolves floating-point write conflicts with locks (no CPU offers
// float atomics, §4.1); this is the lock we use for those code paths. It is
// deliberately simple: the evaluation cares about *how many* lock acquisitions
// each algorithm variant issues, which the instrumentation layer counts at the
// call sites.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace pushpull {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) {}             // lock state is never copied
  Spinlock& operator=(const Spinlock&) { return *this; }

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard.
class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& l) noexcept : lock_(l) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

// A fixed pool of spinlocks indexed by hashing an address/vertex id. Gives
// fine-grained locking over large arrays without one lock per element.
class SpinlockPool {
 public:
  explicit SpinlockPool(std::size_t size = 1024) : locks_(size) {}

  Spinlock& for_index(std::size_t i) noexcept { return locks_[i % locks_.size()]; }

 private:
  std::vector<Spinlock> locks_;
};

}  // namespace pushpull
