// Atomic primitives used by the push-based algorithm variants (§2.3).
//
// The paper uses two CPU atomics: Fetch-and-Add (FAA) and Compare-and-Swap
// (CAS), both on integers. Floating-point accumulation has no hardware atomic
// and is implemented as a CAS loop — the paper accounts for each such update
// as a *lock* rather than an atomic, and our instrumentation call sites follow
// that convention.
//
// All helpers operate on plain array elements through std::atomic_ref, so the
// sequential baselines and the pull variants can use the same unsynchronized
// storage.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace pushpull {

// Fetch-and-Add: increments *target by arg, returns the previous value.
template <class T>
  requires std::is_integral_v<T>
inline T faa(T& target, T arg) noexcept {
  return std::atomic_ref<T>(target).fetch_add(arg, std::memory_order_relaxed);
}

// Compare-and-Swap: if target == expected, set target = desired and return
// true; otherwise update expected with the observed value and return false.
template <class T>
inline bool cas(T& target, T& expected, T desired) noexcept {
  return std::atomic_ref<T>(target).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

// Atomically sets target = min(target, value). Returns true if this call
// lowered the stored value (i.e. the caller won the relaxation).
template <class T>
inline bool atomic_min(T& target, T value) noexcept {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

// Atomic floating-point accumulation via a CAS loop. The paper models this as
// lock-based because no CPU offers a float FAA (§4.1); callers should count it
// through Instr::lock_acquire.
template <class T>
  requires std::is_floating_point_v<T>
inline void atomic_add(T& target, T value) noexcept {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + value, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
  }
}

// Atomic load/store with relaxed ordering, for flag arrays shared between
// threads where the enclosing algorithm provides ordering via barriers.
template <class T>
inline T atomic_load(const T& target) noexcept {
  return std::atomic_ref<const T>(target).load(std::memory_order_relaxed);
}

template <class T>
inline void atomic_store(T& target, T value) noexcept {
  std::atomic_ref<T>(target).store(value, std::memory_order_relaxed);
}

}  // namespace pushpull
