// GAS vertex programs for the two algorithms the paper discusses under the
// GAS abstraction (§7.4): SSSP and graph coloring.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "gas/gas.hpp"
#include "graph/csr.hpp"

namespace pushpull::gas {

// SSSP (§7.4): each vertex keeps the best known distance; gather produces
// d(u) + w(u,v); apply relaxes. Converges to exact shortest paths
// (Bellman-Ford fixpoint).
class SsspProgram {
 public:
  using accum_t = weight_t;

  SsspProgram(vid_t n, vid_t source)
      : dist_(static_cast<std::size_t>(n),
              std::numeric_limits<weight_t>::infinity()) {
    dist_[static_cast<std::size_t>(source)] = 0;
  }

  accum_t identity() const { return std::numeric_limits<weight_t>::infinity(); }

  accum_t gather(vid_t /*v*/, vid_t u, weight_t w) const {
    return dist_[static_cast<std::size_t>(u)] + w;
  }

  void combine(accum_t& into, const accum_t& from) const {
    if (from < into) into = from;
  }

  bool apply(vid_t v, const accum_t& acc) {
    if (acc < dist_[static_cast<std::size_t>(v)]) {
      dist_[static_cast<std::size_t>(v)] = acc;
      return true;
    }
    return false;
  }

  const std::vector<weight_t>& distances() const { return dist_; }

 private:
  std::vector<weight_t> dist_;
};

// Greedy coloring (§7.4): the accumulator carries one fact — whether a
// *smaller-id* neighbor currently holds v's color. apply() then recolors v
// to the smallest color free in its full current neighborhood (reading the
// neighborhood in apply keeps push-mode correct: the gather stream only
// covers *active* neighbors, which is not enough to pick a safe color).
// The smaller-id asymmetry guarantees termination: vertex 0 never moves,
// and inductively each vertex stabilizes once its smaller neighbors have.
class ColoringProgram {
 public:
  // 1 = conflict with a smaller-id neighbor (int, not bool: std::vector<bool>
  // proxies cannot bind to accum_t& in the engine).
  using accum_t = int;

  explicit ColoringProgram(const Csr& g)
      : g_(&g), color_(static_cast<std::size_t>(g.n()), 0) {}

  accum_t identity() const { return 0; }

  accum_t gather(vid_t v, vid_t u, weight_t /*w*/) const {
    return u < v && color_[static_cast<std::size_t>(u)] ==
                        color_[static_cast<std::size_t>(v)]
               ? 1
               : 0;
  }

  void combine(accum_t& into, const accum_t& from) const { into |= from; }

  bool apply(vid_t v, const accum_t& conflicted) {
    if (conflicted == 0) return false;
    // First-fit over the full current neighborhood.
    std::vector<bool> used(static_cast<std::size_t>(g_->degree(v)) + 2, false);
    for (vid_t u : g_->neighbors(v)) {
      const int cu = color_[static_cast<std::size_t>(u)];
      if (cu >= 0 && cu < static_cast<int>(used.size())) {
        used[static_cast<std::size_t>(cu)] = true;
      }
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color_[static_cast<std::size_t>(v)] = c;
    return true;
  }

  const std::vector<int>& colors() const { return color_; }

 private:
  const Csr* g_;
  std::vector<int> color_;
};

// Convenience wrappers.
std::vector<weight_t> gas_sssp(const Csr& g, vid_t source, Direction dir);
std::vector<int> gas_coloring(const Csr& g, Direction dir);

}  // namespace pushpull::gas
